// Example: scalar offset assignment — the complementary optimization
// (paper references [4, 5]).
//
// Takes a scalar access sequence (variable names on the command line,
// or a built-in demo sequence), computes memory layouts with Liao's
// heuristic and the tie-break variant, and compares their costs with
// declaration order; then shows the effect of spreading the variables
// over k address registers (GOA).
//
//   $ ./soa_layout                       # demo sequence
//   $ ./soa_layout a b c a d b a c d b   # your own sequence
#include <algorithm>
#include <iostream>
#include <vector>

#include "soa/goa.hpp"
#include "soa/liao.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace dspaddr;

  std::vector<std::string> names;
  if (argc > 1) {
    for (int i = 1; i < argc; ++i) {
      names.emplace_back(argv[i]);
    }
  } else {
    // The kind of expression sequence SOA papers use as a motivator:
    // c = a + b; f = d + e; b = d + a; ...
    for (const char* n :
         {"a", "b", "c", "d", "e", "f", "d", "a", "b", "c", "e", "f",
          "a", "d", "b", "e", "c", "f", "a", "b"}) {
      names.emplace_back(n);
    }
  }
  const soa::ScalarSequence seq = soa::ScalarSequence::from_names(names);
  std::cout << "Sequence of " << seq.size() << " accesses to "
            << seq.variable_count() << " variables.\n\n";

  const soa::Layout identity = soa::identity_layout(seq.variable_count());
  const soa::Layout liao = soa::liao_layout(seq, soa::SoaTieBreak::kNone);
  const soa::Layout tiebreak =
      soa::liao_layout(seq, soa::SoaTieBreak::kLeupers);

  support::Table table({"layout", "cost (non-adjacent transitions)"});
  table.add_row({"declaration order",
                 std::to_string(soa::layout_cost(seq, identity))});
  table.add_row({"Liao greedy",
                 std::to_string(soa::layout_cost(seq, liao))});
  table.add_row({"Liao + tie-break",
                 std::to_string(soa::layout_cost(seq, tiebreak))});
  table.write(std::cout);

  std::cout << "\nTie-break layout (address -> variable):\n";
  std::vector<std::string> by_address(seq.variable_count());
  // Recover names in first-appearance order for display.
  std::vector<std::string> id_to_name;
  for (const std::string& name : names) {
    if (std::find(id_to_name.begin(), id_to_name.end(), name) ==
        id_to_name.end()) {
      id_to_name.push_back(name);
    }
  }
  for (soa::VarId v = 0; v < seq.variable_count(); ++v) {
    by_address[static_cast<std::size_t>(tiebreak[v])] = id_to_name[v];
  }
  for (std::size_t address = 0; address < by_address.size(); ++address) {
    std::cout << "  mem[" << address << "] = " << by_address[address]
              << '\n';
  }

  std::cout << "\nGeneral offset assignment (k address registers):\n";
  support::Table goa_table({"k", "total cost"});
  for (std::size_t k = 1; k <= 4; ++k) {
    goa_table.add_row(
        {std::to_string(k),
         std::to_string(soa::goa_allocate(seq, k).total_cost)});
  }
  goa_table.write(std::cout);
  return 0;
}
