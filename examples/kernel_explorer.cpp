// Example: explore every built-in DSP kernel (or one given by name or
// as a .kern file) across allocator configurations.
//
//   $ ./kernel_explorer               # all built-in kernels, summary
//   $ ./kernel_explorer fir           # one kernel, detailed
//   $ ./kernel_explorer my_kernel.kern
#include <fstream>
#include <iostream>
#include <sstream>

#include "agu/codegen.hpp"
#include "agu/metrics.hpp"
#include "core/allocator.hpp"
#include "ir/kernels.hpp"
#include "ir/layout.hpp"
#include "ir/parser.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

namespace {

using namespace dspaddr;

void print_summary() {
  support::Table table({"kernel", "accesses", "K~", "cost K=2",
                        "cost K=4", "speed red. K=4"});
  for (const ir::Kernel& kernel : ir::builtin_kernels()) {
    const ir::AccessSequence seq = ir::lower(kernel);

    core::ProblemConfig wide;
    wide.modify_range = 1;
    wide.registers = seq.size();
    const auto unconstrained = core::RegisterAllocator(wide).run(seq);

    const auto cost_at = [&](std::size_t k) {
      core::ProblemConfig config;
      config.modify_range = 1;
      config.registers = k;
      return core::RegisterAllocator(config).run(seq).cost();
    };

    core::ProblemConfig k4;
    k4.modify_range = 1;
    k4.registers = 4;
    const auto comparison = agu::compare_addressing(kernel, k4);

    table.add_row({
        kernel.name(),
        std::to_string(seq.size()),
        unconstrained.stats().k_tilde.has_value()
            ? std::to_string(*unconstrained.stats().k_tilde)
            : std::string("-"),
        std::to_string(cost_at(2)),
        std::to_string(cost_at(4)),
        support::format_percent(comparison.speed_reduction_percent),
    });
  }
  table.write(std::cout);
  std::cout << "\nRun with a kernel name (e.g. 'fir') or a .kern file "
               "for the full breakdown.\n";
}

void print_details(const ir::Kernel& kernel) {
  std::cout << "Kernel " << kernel.name();
  if (!kernel.description().empty()) {
    std::cout << " — " << kernel.description();
  }
  std::cout << "\n\n" << ir::to_text(kernel) << '\n';

  const ir::AccessSequence seq = ir::lower(kernel);
  for (const std::size_t k : {1u, 2u, 4u}) {
    core::ProblemConfig config;
    config.modify_range = 1;
    config.registers = k;
    const core::Allocation a = core::RegisterAllocator(config).run(seq);
    std::cout << "--- K = " << k << " ---\n"
              << a.to_string(seq)
              << agu::generate_code(seq, a).to_string() << '\n';
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    print_summary();
    return 0;
  }
  const std::string argument = argv[1];
  try {
    if (argument.size() > 5 &&
        argument.substr(argument.size() - 5) == ".kern") {
      std::ifstream file(argument);
      if (!file) {
        std::cerr << "cannot open " << argument << '\n';
        return 1;
      }
      std::ostringstream content;
      content << file.rdbuf();
      for (const ir::Kernel& kernel :
           ir::parse_kernels(content.str())) {
        print_details(kernel);
      }
    } else {
      print_details(ir::builtin_kernel(argument));
    }
  } catch (const dspaddr::Error& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
