// Quickstart: the paper's worked example (Fig. 1), end to end.
//
// Builds the access sequence of section 2, prints the zero-cost graph
// model, runs both allocator phases for a 2-register AGU, generates the
// address program and replays it on the simulator.
//
//   $ ./quickstart
#include <iostream>

#include "agu/codegen.hpp"
#include "agu/simulator.hpp"
#include "core/access_graph.hpp"
#include "core/allocator.hpp"
#include "ir/access_sequence.hpp"

int main() {
  using namespace dspaddr;

  // for (i = 2; i <= N; i++) {
  //   A[i+1]; A[i]; A[i+2]; A[i-1]; A[i+1]; A[i]; A[i-2];
  // }
  const ir::AccessSequence seq =
      ir::AccessSequence::from_offsets({1, 0, 2, -1, 1, 0, -2});

  std::cout << "=== Access pattern (offsets w.r.t. loop variable) ===\n";
  for (std::size_t i = 0; i < seq.size(); ++i) {
    std::cout << "  a_" << (i + 1) << ": A[i"
              << (seq[i].offset >= 0 ? "+" : "")
              << seq[i].offset << "]\n";
  }

  // The graph model of Fig. 1: an edge (a_i, a_j) means a_j's address
  // is a free post-modify away from a_i's (|distance| <= M).
  const core::CostModel model{/*modify_range=*/1,
                              core::WrapPolicy::kCyclic};
  const core::AccessGraph graph(seq, model);
  std::cout << "\n=== Zero-cost graph (M = 1), cf. Fig. 1 ===\n";
  for (const auto& [from, to] : graph.intra().edges()) {
    std::cout << "  (a_" << (from + 1) << ", a_" << (to + 1) << ")\n";
  }

  // Two-phase allocation for an AGU with K = 2 address registers.
  core::ProblemConfig config;
  config.modify_range = 1;
  config.registers = 2;
  config.phase1.mode = core::Phase1Options::Mode::kExact;
  const core::Allocation allocation =
      core::RegisterAllocator(config).run(seq);

  std::cout << "\n=== Phase 1 ===\n"
            << "  K~ (virtual registers for a zero-cost allocation): "
            << *allocation.stats().k_tilde << "\n"
            << "  matching lower bound: "
            << allocation.stats().lower_bound << "\n";

  std::cout << "\n=== Phase 2 (merge to K = 2 registers) ===\n"
            << allocation.to_string(seq);

  // Generate and execute the address program.
  const agu::Program program = agu::generate_code(seq, allocation);
  std::cout << "\n=== Generated address code ===\n"
            << program.to_string();

  const agu::SimResult result = agu::Simulator{}.run(program, seq, 100);
  std::cout << "\n=== Simulation (100 iterations) ===\n"
            << "  addresses verified: "
            << (result.verified ? "yes" : "NO") << "\n"
            << "  extra address instructions: "
            << result.extra_instructions << " (predicted "
            << 100 * allocation.cost() << ")\n";
  return result.verified ? 0 : 1;
}
