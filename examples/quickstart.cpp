// Quickstart: the paper's worked example (Fig. 1), end to end.
//
// Builds the access sequence of section 2, prints the zero-cost graph
// model, then hands the kernel to the engine — the library's public
// API, which runs both allocator phases for a 2-register AGU, plans
// modify registers, generates the address program and replays it on
// the simulator. A second identical request demonstrates the engine's
// fingerprint cache.
//
//   $ ./quickstart
#include <iostream>

#include "core/access_graph.hpp"
#include "engine/engine.hpp"
#include "ir/kernels.hpp"
#include "ir/layout.hpp"

int main() {
  using namespace dspaddr;

  // for (i = 2; i <= N; i++) {
  //   A[i+1]; A[i]; A[i+2]; A[i-1]; A[i+1]; A[i]; A[i-2];
  // }
  const ir::Kernel kernel = ir::builtin_kernel("paper_example");
  const ir::AccessSequence seq = ir::lower(kernel);

  std::cout << "=== Access pattern (offsets w.r.t. loop variable) ===\n";
  for (std::size_t i = 0; i < seq.size(); ++i) {
    std::cout << "  a_" << (i + 1) << ": A[i"
              << (seq[i].offset >= 0 ? "+" : "")
              << seq[i].offset << "]\n";
  }

  // The graph model of Fig. 1: an edge (a_i, a_j) means a_j's address
  // is a free post-modify away from a_i's (|distance| <= M).
  const core::CostModel model{/*modify_range=*/1,
                              core::WrapPolicy::kCyclic};
  const core::AccessGraph graph(seq, model);
  std::cout << "\n=== Zero-cost graph (M = 1), cf. Fig. 1 ===\n";
  for (const auto& [from, to] : graph.intra().edges()) {
    std::cout << "  (a_" << (from + 1) << ", a_" << (to + 1) << ")\n";
  }

  // The whole pipeline through the engine, for an AGU with K = 2
  // address registers and no modify registers.
  engine::Engine engine;
  engine::Request request;
  request.kernel = kernel;
  request.machine.name = "example2";
  request.machine.set_address_registers(2);
  request.machine.set_modify_registers(0);
  request.machine.set_modify_range(1);
  request.iterations = 100;

  const engine::Result result = engine.run(request);
  if (!result.ok()) {
    std::cerr << "pipeline failed in " << engine::stage_name(
                     result.error->stage)
              << ": " << result.error->message << "\n";
    return 1;
  }

  std::cout << "\n=== Phase 1 ===\n"
            << "  K~ (virtual registers for a zero-cost allocation): "
            << *result.k_tilde << "\n"
            << "  matching lower bound: " << result.stats.lower_bound
            << "\n";

  std::cout << "\n=== Phase 2 (merge to K = 2 registers) ===\n"
            << result.allocation_text;

  std::cout << "\n=== Generated address code ===\n"
            << result.program.to_string();

  std::cout << "\n=== Simulation (100 iterations) ===\n"
            << "  addresses verified: "
            << (result.verified ? "yes" : "NO") << "\n"
            << "  extra address instructions: "
            << result.sim.extra_instructions << " (predicted "
            << 100 * result.allocation_cost << ")\n";

  // Identical request again: answered from the fingerprint cache.
  const engine::Result repeat = engine.run(request);
  const engine::CacheStats stats = engine.cache_stats();
  std::cout << "\n=== Engine cache ===\n"
            << "  repeat request was a cache "
            << (repeat.cache_hit ? "hit" : "miss") << " ("
            << stats.hits << " hit(s), " << stats.misses
            << " miss(es))\n";
  return result.verified && repeat.cache_hit ? 0 : 1;
}
