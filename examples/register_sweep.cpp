// Example: how addressing cost degrades as address registers get
// scarce — the trade-off at the heart of the paper.
//
// For one fixed random access pattern, sweeps K from K~ (free) down to
// 1 and prints the per-iteration cost of the paper's allocator and of
// the naive baseline, showing where cost-guided merging pays off.
//
//   $ ./register_sweep [N] [M] [seed]
#include <cstdlib>
#include <iostream>

#include "baselines/baselines.hpp"
#include "core/allocator.hpp"
#include "eval/patterns.hpp"
#include "support/stats.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace dspaddr;

  const std::size_t n =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 30;
  const std::int64_t m = argc > 2 ? std::atoll(argv[2]) : 1;
  const std::uint64_t seed =
      argc > 3 ? static_cast<std::uint64_t>(std::atoll(argv[3])) : 7;

  support::Rng rng(seed);
  eval::PatternSpec spec;
  spec.accesses = n;
  spec.offset_range = 10;
  const ir::AccessSequence seq = eval::generate_pattern(spec, rng);

  std::cout << "Random pattern: N = " << n << ", offsets in [-10, 10], "
            << "M = " << m << ", seed = " << seed << "\n\n";

  // Find K~ first (phase 1 alone, enough registers).
  core::ProblemConfig probe;
  probe.modify_range = m;
  probe.registers = n;
  const core::Allocation unconstrained =
      core::RegisterAllocator(probe).run(seq);
  const std::size_t k_tilde =
      unconstrained.stats().k_tilde.value_or(unconstrained.register_count());
  std::cout << "K~ = " << k_tilde
            << " virtual registers give a zero-cost allocation.\n\n";

  support::Table table(
      {"K", "path-merge cost", "naive cost", "reduction"});
  for (std::size_t k = k_tilde; k >= 1; --k) {
    core::ProblemConfig config;
    config.modify_range = m;
    config.registers = k;
    const int merged = core::RegisterAllocator(config).run(seq).cost();
    const int naive = baselines::naive_allocate(seq, config).cost();
    table.add_row({
        std::to_string(k),
        std::to_string(merged),
        std::to_string(naive),
        naive > 0 ? support::format_percent(
                        support::percent_reduction(naive, merged))
                  : std::string("-"),
    });
  }
  table.write(std::cout);
  std::cout << "\nAt K = K~ both are free; the gap opens as the "
               "register constraint bites.\n";
  return 0;
}
