// Example: optimizing a FIR filter's address computations.
//
// Loads the FIR kernel from its textual description (the same format
// users can ship in .kern files), lowers it onto the linear data
// memory, allocates address registers for a range of AGU sizes, and
// reports the code-size / speed effect of the optimization versus a
// compiler that recomputes every address.
//
//   $ ./fir_filter
#include <iostream>

#include "agu/codegen.hpp"
#include "agu/metrics.hpp"
#include "agu/simulator.hpp"
#include "core/allocator.hpp"
#include "ir/layout.hpp"
#include "ir/parser.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

namespace {

constexpr const char* kFirText = R"(
# FIR filter tap loop: acc += h[j] * x[i - j]
# h is scanned forward, the signal window backwards.
kernel fir "16-tap FIR filter inner loop"
array h 16
array x 64
iterations 16
dataops 1
access h 0 stride 1
access x 0 stride -1
end
)";

}  // namespace

int main() {
  using namespace dspaddr;

  const ir::Kernel kernel = ir::parse_kernel(kFirText);
  const ir::AccessSequence seq = ir::lower(kernel);

  std::cout << "Kernel: " << kernel.name() << " — "
            << kernel.description() << "\n"
            << "Accesses per iteration: " << seq.size() << "\n\n";

  support::Table table({"K", "M", "cost/iter", "size red.", "speed red.",
                        "sim verified"});
  for (const std::size_t k : {1u, 2u, 4u}) {
    for (const std::int64_t m : {1, 2}) {
      core::ProblemConfig config;
      config.modify_range = m;
      config.registers = k;
      const core::Allocation a =
          core::RegisterAllocator(config).run(seq);
      const agu::AddressingComparison c =
          agu::compare_addressing(kernel, config);

      const agu::Program p = agu::generate_code(seq, a);
      const agu::SimResult r = agu::Simulator{}.run(
          p, seq, static_cast<std::uint64_t>(kernel.iterations()));

      table.add_row({
          std::to_string(k),
          std::to_string(m),
          std::to_string(a.cost()),
          support::format_percent(c.size_reduction_percent),
          support::format_percent(c.speed_reduction_percent),
          r.verified ? "yes" : "NO",
      });
    }
  }
  table.write(std::cout);

  std::cout << "\nAddress code for K = 2, M = 1:\n";
  core::ProblemConfig config;
  config.modify_range = 1;
  config.registers = 2;
  const core::Allocation a = core::RegisterAllocator(config).run(seq);
  std::cout << agu::generate_code(seq, a).to_string();
  return 0;
}
