// Example: squeezing the last unit costs out with AGU extensions.
//
// Starts from a register-starved allocation of the paper's example,
// then shows two levers beyond the paper's core technique:
//   1. modify registers — load the hot over-range distances into MRs so
//      the AGU post-modifies through them for free;
//   2. loop unrolling — amortize wrap transitions across copies.
// Every variant is executed on the AGU simulator.
//
//   $ ./agu_extensions
#include <iostream>

#include "agu/codegen.hpp"
#include "agu/simulator.hpp"
#include "core/allocator.hpp"
#include "core/modify_registers.hpp"
#include "ir/unroll.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

int main() {
  using namespace dspaddr;

  const auto seq =
      ir::AccessSequence::from_offsets({1, 0, 2, -1, 1, 0, -2});
  core::ProblemConfig config;
  config.modify_range = 1;
  config.registers = 2;  // register-starved: K < K~ = 3
  config.phase1.mode = core::Phase1Options::Mode::kExact;

  const core::Allocation base = core::RegisterAllocator(config).run(seq);
  std::cout << "Paper example, K = 2: cost " << base.cost()
            << " unit-cost address computations per iteration.\n\n";

  support::Table table({"variant", "cost/original iteration",
                        "sim extra instrs (100 iters)", "verified"});

  const auto simulate = [](const ir::AccessSequence& s,
                           const agu::Program& p) {
    return agu::Simulator{}.run(p, s, 100);
  };

  {
    const agu::Program p = agu::generate_code(seq, base);
    const agu::SimResult r = simulate(seq, p);
    table.add_row({"baseline (paper technique)",
                   std::to_string(base.cost()),
                   std::to_string(r.extra_instructions),
                   r.verified ? "yes" : "NO"});
  }

  for (const std::size_t mrs : {1u, 2u}) {
    const auto plan = core::plan_modify_registers(seq, base, mrs);
    const agu::Program p = agu::generate_code(seq, base, plan);
    const agu::SimResult r = simulate(seq, p);
    table.add_row({"+ " + std::to_string(mrs) + " modify register" +
                       (mrs > 1 ? "s" : ""),
                   std::to_string(plan.residual_cost),
                   std::to_string(r.extra_instructions),
                   r.verified ? "yes" : "NO"});
  }

  {
    constexpr std::size_t kFactor = 2;
    const ir::AccessSequence unrolled = ir::unroll(seq, kFactor);
    const core::Allocation a =
        core::RegisterAllocator(config).run(unrolled);
    const agu::Program p = agu::generate_code(unrolled, a);
    const agu::SimResult r = agu::Simulator{}.run(p, unrolled, 50);
    table.add_row({"unrolled x2 (50 unrolled iters)",
                   support::format_fixed(
                       static_cast<double>(a.cost()) / kFactor, 1),
                   std::to_string(r.extra_instructions),
                   r.verified ? "yes" : "NO"});
  }

  table.write(std::cout);
  std::cout << "\nModify registers eliminate unit costs whose distance "
               "repeats; unrolling trades code size for fewer wrap "
               "updates per original iteration.\n";
  return 0;
}
