// dspaddr_opt — command-line address-computation optimizer.
//
// The tool a downstream user actually runs: feed it a kernel (C-like
// loop file, mini-language file, or a built-in kernel name), pick an
// AGU (explicit -K/-M/--mrs or a catalog --machine), and get the
// allocation, the generated address program and the simulator verdict.
// The pipeline itself runs through engine::Engine — the same API the
// dspaddr CLI, the batch runner and `dspaddr serve` sit on.
//
//   $ ./dspaddr_opt fir
//   $ ./dspaddr_opt -K 2 -M 1 loop.c --asm --sim 100
//   $ ./dspaddr_opt --machine adsp218x kernel.kern
//   $ ./dspaddr_opt --unroll 2 fir
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "engine/engine.hpp"
#include "ir/kernels.hpp"
#include "ir/loop_parser.hpp"
#include "ir/parser.hpp"
#include "ir/unroll.hpp"
#include "support/strings.hpp"

namespace {

using namespace dspaddr;

struct CliOptions {
  std::string input;
  std::size_t registers = 4;
  std::int64_t modify_range = 1;
  std::size_t modify_registers = 0;
  std::size_t unroll_factor = 1;
  std::uint64_t simulate_iterations = 0;
  bool print_asm = false;
};

[[noreturn]] void usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0
      << " [options] <file.c|file.kern|builtin-kernel-name>\n"
         "  -K <n>            address registers (default 4)\n"
         "  -M <n>            free post-modify range (default 1)\n"
         "  --mrs <n>         modify registers (default 0)\n"
         "  --machine <name>  AGU from the catalog ("
      << support::join(agu::builtin_machine_names(), ", ")
      << ")\n"
         "  --unroll <u>      unroll the loop before allocating\n"
         "  --sim <T>         simulate T iterations and verify\n"
         "  --asm             print the generated address program\n";
  std::exit(2);
}

std::string read_file(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    std::cerr << "error: cannot open " << path << '\n';
    std::exit(1);
  }
  std::ostringstream content;
  content << file.rdbuf();
  return content.str();
}

bool ends_with(const std::string& text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(),
                      suffix) == 0;
}

ir::Kernel load_kernel(const std::string& input) {
  if (ends_with(input, ".c") || ends_with(input, ".loop")) {
    return ir::parse_c_loop(read_file(input), "cli_loop");
  }
  if (ends_with(input, ".kern")) {
    return ir::parse_kernel(read_file(input));
  }
  return ir::builtin_kernel(input);
}

CliOptions parse_cli(int argc, char** argv) {
  CliOptions options;
  const auto next_value = [&](int& i) -> std::string {
    if (i + 1 >= argc) usage(argv[0]);
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-K") {
      options.registers =
          static_cast<std::size_t>(std::stoll(next_value(i)));
    } else if (arg == "-M") {
      options.modify_range = std::stoll(next_value(i));
    } else if (arg == "--mrs") {
      options.modify_registers =
          static_cast<std::size_t>(std::stoll(next_value(i)));
    } else if (arg == "--machine") {
      const agu::AguSpec machine = agu::builtin_machine(next_value(i));
      options.registers = machine.address_registers();
      options.modify_range = machine.modify_range();
      options.modify_registers = machine.modify_registers();
    } else if (arg == "--unroll") {
      options.unroll_factor =
          static_cast<std::size_t>(std::stoll(next_value(i)));
    } else if (arg == "--sim") {
      options.simulate_iterations =
          static_cast<std::uint64_t>(std::stoll(next_value(i)));
    } else if (arg == "--asm") {
      options.print_asm = true;
    } else if (!arg.empty() && arg[0] == '-') {
      usage(argv[0]);
    } else if (options.input.empty()) {
      options.input = arg;
    } else {
      usage(argv[0]);
    }
  }
  if (options.input.empty()) usage(argv[0]);
  return options;
}

}  // namespace

int main(int argc, char** argv) {
  const CliOptions options = parse_cli(argc, argv);
  try {
    ir::Kernel kernel = load_kernel(options.input);
    if (options.unroll_factor > 1) {
      kernel = ir::unroll(kernel, options.unroll_factor);
    }

    engine::Request request;
    request.kernel = kernel;
    request.machine.name = "cli";
    request.machine.set_address_registers(options.registers);
    request.machine.set_modify_range(options.modify_range);
    request.machine.set_modify_registers(options.modify_registers);
    // The fixed pass sequence simulates before computing metrics; when
    // the user did not ask for a simulation, one iteration keeps that
    // stage O(1) instead of O(kernel iterations).
    request.iterations =
        options.simulate_iterations > 0 ? options.simulate_iterations : 1;

    engine::Engine engine;
    const engine::Result result = engine.run(request);
    if (!result.ok()) {
      std::cerr << "error in " << engine::stage_name(result.error->stage)
                << ": " << result.error->message << '\n';
      return 1;
    }

    std::cout << "kernel " << kernel.name() << ": " << result.accesses
              << " accesses/iteration, " << kernel.iterations()
              << " iterations\n"
              << "AGU: K = " << options.registers
              << ", M = " << options.modify_range
              << ", MRs = " << options.modify_registers << "\n\n";
    if (result.k_tilde.has_value()) {
      std::cout << "K~ = " << *result.k_tilde
                << " (zero-cost needs that many registers)\n";
    }
    std::cout << result.allocation_text << '\n';

    if (!result.plan.values.empty()) {
      std::cout << "modify registers:";
      for (std::size_t m = 0; m < result.plan.values.size(); ++m) {
        std::cout << "  MR" << m << " = " << result.plan.values[m].value
                  << " (covers " << result.plan.values[m].covered << ")";
      }
      std::cout << "\nresidual cost " << result.plan.residual_cost
                << " per iteration\n\n";
    }

    std::cout << "vs compiler-style addressing: size -"
              << support::format_percent(result.size_reduction_percent)
              << ", cycles -"
              << support::format_percent(result.speed_reduction_percent)
              << "\n";

    if (options.print_asm) {
      std::cout << '\n' << result.program.to_string();
    }
    if (options.simulate_iterations > 0) {
      std::cout << "\nsimulated " << options.simulate_iterations
                << " iterations: "
                << (result.verified ? "addresses verified"
                                    : "VERIFICATION FAILED: " +
                                          result.sim.failure)
                << ", " << result.sim.extra_instructions
                << " extra address instructions\n";
      return result.verified ? 0 : 1;
    }
    return 0;
  } catch (const dspaddr::Error& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
