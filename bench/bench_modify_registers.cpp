// Experiment T9 (extension) — modify-register ablation.
//
// Real DSP AGUs pair address registers with modify registers whose
// contents post-modify an AR for free at any distance. This bench
// quantifies how many of the allocation's remaining unit-cost address
// computations a simple frequency-greedy MR plan eliminates, across
// register pressure and MR counts — on random patterns and on the
// kernel suite. Every row is cross-checked by the simulator (residual
// must equal simulated extra instructions).
#include <benchmark/benchmark.h>

#include <iostream>

#include "agu/codegen.hpp"
#include "agu/simulator.hpp"
#include "core/modify_registers.hpp"
#include "eval/patterns.hpp"
#include "ir/kernels.hpp"
#include "ir/layout.hpp"
#include "support/stats.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

namespace {

using namespace dspaddr;

void print_random_pattern_table() {
  constexpr std::size_t kTrials = 60;
  support::Table table({"N", "K", "cost (no MR)", "1 MR", "2 MRs",
                        "4 MRs", "covered by 2 MRs"});
  for (const std::size_t n : {20u, 40u}) {
    for (const std::size_t k : {2u, 4u}) {
      std::vector<support::RunningStats> residual(5);
      support::RunningStats base;
      support::Rng rng(0x3E6 ^ (n * 13) ^ k);
      for (std::size_t trial = 0; trial < kTrials; ++trial) {
        eval::PatternSpec spec;
        spec.accesses = n;
        spec.offset_range = 10;
        const ir::AccessSequence seq = eval::generate_pattern(spec, rng);
        core::ProblemConfig config;
        config.modify_range = 1;
        config.registers = k;
        const core::Allocation a =
            core::RegisterAllocator(config).run(seq);
        base.add(a.cost());
        for (const std::size_t mrs : {1u, 2u, 4u}) {
          const auto plan = core::plan_modify_registers(seq, a, mrs);
          residual[mrs].add(plan.residual_cost);
        }
      }
      table.add_row({
          std::to_string(n),
          std::to_string(k),
          support::format_fixed(base.mean(), 2),
          support::format_fixed(residual[1].mean(), 2),
          support::format_fixed(residual[2].mean(), 2),
          support::format_fixed(residual[4].mean(), 2),
          support::format_percent(support::percent_reduction(
              base.mean(), residual[2].mean())),
      });
    }
  }
  std::cout << "T9a: modify-register post-pass on random patterns ("
            << kTrials << " trials per row, M = 1)\n\n";
  table.write(std::cout);
  std::cout << '\n';
}

void print_kernel_table() {
  support::Table table({"kernel", "K", "cost", "2 MRs residual",
                        "sim verified"});
  for (const ir::Kernel& kernel : ir::builtin_kernels()) {
    core::ProblemConfig config;
    config.modify_range = 1;
    config.registers = 2;
    const ir::AccessSequence seq = ir::lower(kernel);
    const core::Allocation a = core::RegisterAllocator(config).run(seq);
    const auto plan = core::plan_modify_registers(seq, a, 2);
    const agu::Program p = agu::generate_code(seq, a, plan);
    const std::uint64_t iterations =
        static_cast<std::uint64_t>(kernel.iterations());
    const agu::SimResult r = agu::Simulator{}.run(p, seq, iterations);
    const bool consistent =
        r.verified &&
        r.extra_instructions ==
            iterations * static_cast<std::uint64_t>(plan.residual_cost);
    table.add_row({
        kernel.name(),
        "2",
        std::to_string(a.cost()),
        std::to_string(plan.residual_cost),
        consistent ? "yes" : "NO",
    });
  }
  std::cout << "T9b: modify registers on the kernel suite (M = 1, "
               "K = 2, 2 MRs)\n\n";
  table.write(std::cout);
  std::cout << "\nEvery 'sim verified' row must read 'yes'.\n\n";
}

void BM_PlanModifyRegisters(benchmark::State& state) {
  support::Rng rng(6);
  eval::PatternSpec spec;
  spec.accesses = static_cast<std::size_t>(state.range(0));
  spec.offset_range = 10;
  const ir::AccessSequence seq = eval::generate_pattern(spec, rng);
  core::ProblemConfig config;
  config.modify_range = 1;
  config.registers = 2;
  const core::Allocation a = core::RegisterAllocator(config).run(seq);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::plan_modify_registers(seq, a, 4).residual_cost);
  }
}
BENCHMARK(BM_PlanModifyRegisters)->Arg(32)->Arg(256);

}  // namespace

int main(int argc, char** argv) {
  print_random_pattern_table();
  print_kernel_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
