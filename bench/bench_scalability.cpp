// Experiment T7 — scalability of the two-phase heuristic. The paper's
// selling point over exact formulations is that it handles register
// constraints *and* inter-iteration dependencies while remaining a fast
// heuristic; this bench shows wall-clock behaviour as N grows well
// beyond the sizes of the statistical experiment (phase 1 in heuristic
// mode beyond the exact-search window, as in the auto configuration).
#include <benchmark/benchmark.h>

#include <chrono>
#include <iostream>

#include "core/allocator.hpp"
#include "eval/patterns.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

namespace {

using namespace dspaddr;

void print_scaling_table() {
  support::Table table({"N", "K", "K~ (upper bd)", "merges", "cost",
                        "time (ms)"});
  for (const std::size_t n : {100u, 250u, 500u, 1000u, 2000u}) {
    for (const std::size_t k : {4u, 16u}) {
      support::Rng rng(0x5CA1E ^ n);
      eval::PatternSpec spec;
      spec.accesses = n;
      spec.offset_range = static_cast<std::int64_t>(n) / 4;
      const ir::AccessSequence seq = eval::generate_pattern(spec, rng);

      core::ProblemConfig config;
      config.modify_range = 1;
      config.registers = k;

      const auto start = std::chrono::steady_clock::now();
      const core::Allocation a =
          core::RegisterAllocator(config).run(seq);
      const auto stop = std::chrono::steady_clock::now();
      const double ms =
          std::chrono::duration<double, std::milli>(stop - start).count();

      table.add_row({
          std::to_string(n),
          std::to_string(k),
          a.stats().k_tilde.has_value()
              ? std::to_string(*a.stats().k_tilde)
              : std::string("-"),
          std::to_string(a.stats().merges),
          std::to_string(a.cost()),
          support::format_fixed(ms, 2),
      });
    }
  }
  std::cout << "T7: allocator scalability (uniform patterns, M = 1, "
               "phase 1 auto)\n\n";
  table.write(std::cout);
  std::cout << '\n';
}

void BM_AllocatorEndToEnd(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  support::Rng rng(0xBEEF ^ n);
  eval::PatternSpec spec;
  spec.accesses = n;
  spec.offset_range = static_cast<std::int64_t>(n) / 4;
  const ir::AccessSequence seq = eval::generate_pattern(spec, rng);
  core::ProblemConfig config;
  config.modify_range = 1;
  config.registers = 8;
  const core::RegisterAllocator allocator(config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(allocator.run(seq).cost());
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_AllocatorEndToEnd)
    ->Arg(50)
    ->Arg(100)
    ->Arg(200)
    ->Arg(400)
    ->Arg(800)
    ->Complexity();

}  // namespace

int main(int argc, char** argv) {
  print_scaling_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
