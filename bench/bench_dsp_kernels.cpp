// Experiment T2 — the code-size / speed claim the paper cites from
// Liem et al. [1]: "Experimental studies for realistic DSP programs
// indicate possible improvements up to 30 % and 60 % in code size and
// speed due to optimized array index computation, as compared to code
// compiled by a regular C compiler."
//
// For every built-in DSP kernel this bench compares the naive build
// (explicit per-access address recomputation) against the AGU-optimized
// build under the single-issue machine model of agu/metrics.hpp and
// prints size and speed reductions. The shape to reproduce: sizeable
// double-digit reductions, speed gain exceeding size gain, best cases
// near the cited 30 % / 60 %.
#include <benchmark/benchmark.h>

#include <iostream>

#include "agu/metrics.hpp"
#include "ir/kernels.hpp"
#include "ir/layout.hpp"
#include "support/stats.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

namespace {

using namespace dspaddr;

void print_kernel_table(std::size_t registers) {
  support::Table table({"kernel", "N", "iters", "base size", "opt size",
                        "size red.", "base cycles", "opt cycles",
                        "speed red."});
  support::RunningStats size_reduction;
  support::RunningStats speed_reduction;

  core::ProblemConfig config;
  config.modify_range = 1;
  config.registers = registers;

  for (const ir::Kernel& kernel : ir::builtin_kernels()) {
    const agu::AddressingComparison c =
        agu::compare_addressing(kernel, config);
    size_reduction.add(c.size_reduction_percent);
    speed_reduction.add(c.speed_reduction_percent);
    table.add_row({
        kernel.name(),
        std::to_string(kernel.accesses().size()),
        std::to_string(kernel.iterations()),
        std::to_string(c.baseline.size_words),
        std::to_string(c.optimized.size_words),
        support::format_percent(c.size_reduction_percent),
        std::to_string(c.baseline.cycles),
        std::to_string(c.optimized.cycles),
        support::format_percent(c.speed_reduction_percent),
    });
  }
  std::cout << "T2: optimized AGU addressing vs compiler-style "
               "recomputation, K = "
            << registers << ", M = 1\n\n";
  table.write(std::cout);
  std::cout << "\nmean size reduction  "
            << support::format_percent(size_reduction.mean())
            << "  (max " << support::format_percent(size_reduction.max())
            << ")   [paper/Liem: up to 30 %]\n"
            << "mean speed reduction "
            << support::format_percent(speed_reduction.mean())
            << "  (max " << support::format_percent(speed_reduction.max())
            << ")   [paper/Liem: up to 60 %]\n\n";
}

void BM_CompareAddressing(benchmark::State& state) {
  const ir::Kernel kernel = ir::fir_kernel(16, 64);
  core::ProblemConfig config;
  config.modify_range = 1;
  config.registers = 4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        agu::compare_addressing(kernel, config).speed_reduction_percent);
  }
}
BENCHMARK(BM_CompareAddressing);

}  // namespace

int main(int argc, char** argv) {
  print_kernel_table(4);
  print_kernel_table(2);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
