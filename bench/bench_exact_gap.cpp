// Experiment T8 (extension) — quality of the two-phase heuristic
// against the exact optimum, and the anytime B&B against the legacy
// incumbent-only DFS it replaced.
//
// The paper evaluates its heuristic only against a *naive* allocator;
// this bench adds the missing upper reference: an exact
// branch-and-bound over all register assignments (core/exact.hpp). For
// small instances it reports the mean heuristic and optimal costs, the
// mean relative gap, and how often the heuristic is exactly optimal —
// quantifying how much of the naive-to-optimal interval the two-phase
// scheme actually captures.
//
// The solver table then quantifies the rebuild: per (N, K, family) it
// runs the legacy DFS (bounds and dominance off) and the pruned search
// under the same node cap, reporting solve rates, mean nodes explored,
// the node-reduction factor, and checking that both report identical
// optimal costs whenever both complete.
//
// Two further tables exercise the parallel and tiled solvers on real
// unrolled workloads (workloads/*.kern):
//  * the anytime ladder — heuristic vs tiled vs full exact on the
//    50–200-access kernels the tiled mode exists for;
//  * the scaling table — prefixes of the unrolled stencil at growing N
//    under a fixed wall-clock budget, sequential vs parallel, with the
//    max proven N per jobs level and a gate (the parallel solver must
//    prove at least as deep as the sequential one);
//  * the steal table — the deep-unbalanced skewed-strided family at
//    jobs 1/2/8, reporting splits, steals, the steal rate and the
//    worker-idle fraction, with a throughput gate (jobs=8 must match
//    jobs=1 nodes/sec on hosts with >= 4 hardware threads — this is
//    the workload work-stealing exists for).
// Pass --scaling-csv=PATH to also write every scaling and steal row
// (nodes/sec, max proven N, steal diagnostics) as one CSV artifact for
// CI, and --quick to shrink the tables to a CI-budget smoke run.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "baselines/baselines.hpp"
#include "core/allocator.hpp"
#include "core/exact.hpp"
#include "core/tiled.hpp"
#include "eval/patterns.hpp"
#include "ir/layout.hpp"
#include "ir/parser.hpp"
#include "support/csv.hpp"
#include "support/stats.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

namespace {

using namespace dspaddr;

// --quick shrinks every table to a CI-budget smoke run: same gates,
// same output markers, fewer sizes and trials.
bool g_quick = false;

void print_gap_table() {
  const std::size_t kTrials = g_quick ? 10 : 40;
  const core::CostModel model{1, core::WrapPolicy::kCyclic};

  support::Table table({"N", "K", "naive", "heuristic", "optimal",
                        "heuristic optimal in", "captured"});
  const std::vector<std::size_t> sizes =
      g_quick ? std::vector<std::size_t>{8, 12}
              : std::vector<std::size_t>{8, 10, 12, 14};
  for (const std::size_t n : sizes) {
    for (const std::size_t k : {2u, 3u}) {
      support::RunningStats naive_stats, heuristic_stats, optimal_stats;
      std::size_t hit_optimal = 0;
      support::Rng rng(0xE8ac7 ^ (n * 1009) ^ k);
      for (std::size_t trial = 0; trial < kTrials; ++trial) {
        eval::PatternSpec spec;
        spec.accesses = n;
        spec.offset_range = 6;
        const ir::AccessSequence seq = eval::generate_pattern(spec, rng);

        core::ProblemConfig config;
        config.modify_range = 1;
        config.registers = k;
        config.phase1.mode = core::Phase1Options::Mode::kExact;
        const int heuristic =
            core::RegisterAllocator(config).run(seq).cost();
        const int naive = baselines::naive_allocate(seq, config).cost();
        const core::ExactResult exact =
            core::exact_min_cost_allocation(seq, model, k);

        naive_stats.add(naive);
        heuristic_stats.add(heuristic);
        optimal_stats.add(exact.cost);
        if (heuristic == exact.cost) ++hit_optimal;
      }
      // Fraction of the naive-to-optimal interval the heuristic closes.
      const double interval =
          naive_stats.mean() - optimal_stats.mean();
      const double captured =
          interval > 0.0
              ? 100.0 * (naive_stats.mean() - heuristic_stats.mean()) /
                    interval
              : 100.0;
      table.add_row({
          std::to_string(n),
          std::to_string(k),
          support::format_fixed(naive_stats.mean(), 2),
          support::format_fixed(heuristic_stats.mean(), 2),
          support::format_fixed(optimal_stats.mean(), 2),
          support::format_percent(100.0 * hit_optimal / kTrials, 0),
          support::format_percent(captured, 0),
      });
    }
  }
  std::cout << "T8: two-phase heuristic vs exact optimum (" << kTrials
            << " uniform patterns per row, M = 1)\n\n";
  table.write(std::cout);
  std::cout << "\n'captured' = share of the naive-to-optimal cost "
               "interval closed by the heuristic.\n\n";
}

void print_solver_table() {
  const std::size_t kTrials = g_quick ? 3 : 10;
  // Enough for the pruned search on every instance below; the legacy
  // DFS aborts on most N >= 16 instances under the same cap.
  constexpr std::uint64_t kNodeCap = 3'000'000;
  const core::CostModel model{1, core::WrapPolicy::kCyclic};

  support::Table table({"N", "K", "family", "solved old", "solved new",
                        "nodes old", "nodes new", "node reduction"});
  std::size_t cost_mismatches = 0;
  const std::vector<std::size_t> sizes =
      g_quick ? std::vector<std::size_t>{12, 16}
              : std::vector<std::size_t>{12, 16, 20};
  for (const std::size_t n : sizes) {
    for (const std::size_t k : {2u, 4u}) {
      for (const eval::PatternFamily family :
           {eval::PatternFamily::kUniform,
            eval::PatternFamily::kSortedNoise}) {
        support::Rng rng(0x50C4 ^ (n * 7919) ^ (k * 104729) ^
                         static_cast<std::uint64_t>(family));
        std::size_t solved_old = 0;
        std::size_t solved_new = 0;
        double nodes_old = 0.0;
        double nodes_new = 0.0;
        for (std::size_t trial = 0; trial < kTrials; ++trial) {
          eval::PatternSpec spec;
          spec.accesses = n;
          spec.offset_range = 8;
          spec.family = family;
          const ir::AccessSequence seq = eval::generate_pattern(spec, rng);

          core::ExactOptions legacy;
          legacy.max_nodes = kNodeCap;
          legacy.use_bounds = false;
          legacy.use_dominance = false;
          const core::ExactResult old_style =
              core::exact_min_cost_allocation(seq, model, k, legacy);

          core::ExactOptions pruned;
          pruned.max_nodes = kNodeCap;
          const core::ExactResult new_style =
              core::exact_min_cost_allocation(seq, model, k, pruned);

          if (old_style.proven) ++solved_old;
          if (new_style.proven) ++solved_new;
          nodes_old += static_cast<double>(old_style.nodes);
          nodes_new += static_cast<double>(new_style.nodes);
          if (old_style.proven && new_style.proven &&
              old_style.cost != new_style.cost) {
            ++cost_mismatches;
          }
        }
        const double reduction =
            nodes_new > 0.0 ? nodes_old / nodes_new : 0.0;
        table.add_row({
            std::to_string(n),
            std::to_string(k),
            eval::to_string(family),
            std::to_string(solved_old) + "/" + std::to_string(kTrials),
            std::to_string(solved_new) + "/" + std::to_string(kTrials),
            support::format_fixed(nodes_old / kTrials, 0),
            support::format_fixed(nodes_new / kTrials, 0),
            support::format_fixed(reduction, 1) + "x",
        });
      }
    }
  }
  std::cout << "Anytime B&B vs legacy DFS (" << kTrials
            << " patterns per row, M = 1, node cap " << kNodeCap << ")\n\n";
  table.write(std::cout);
  std::cout << "\n'solved' = instances proven optimal within the cap; "
               "'node reduction' = legacy/pruned mean nodes.\n"
            << "cost mismatches on co-solved instances: "
            << cost_mismatches << " (must be 0)\n\n";
}

// ------------------------------------------------------------------
// Real-workload tables: the anytime ladder and the parallel scaling
// gate, both on the unrolled kernels in workloads/.

ir::AccessSequence load_workload(const std::string& file) {
  const std::string path =
      std::string(DSPADDR_SOURCE_DIR) + "/workloads/" + file;
  std::ifstream in(path);
  if (!in.good()) {
    std::cerr << "missing workload file " << path << "\n";
    std::exit(1);
  }
  std::ostringstream text;
  text << in.rdbuf();
  return ir::lower(ir::parse_kernel(text.str()));
}

ir::AccessSequence sequence_prefix(const ir::AccessSequence& seq,
                                   std::size_t n) {
  std::vector<ir::Access> accesses(seq.accesses().begin(),
                                   seq.accesses().begin() +
                                       static_cast<std::ptrdiff_t>(n));
  return ir::AccessSequence(std::move(accesses));
}

/// Wall-clock budget per solve in the workload tables. Small enough to
/// keep the smoke run quick, large enough that the sequential solver
/// proves the mid sizes — the interesting frontier.
constexpr std::int64_t kWorkloadBudgetMs = 250;

void print_workload_ladder() {
  constexpr std::size_t kRegisters = 3;
  const core::CostModel model{1, core::WrapPolicy::kCyclic};
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());

  support::Table table({"workload", "N", "K", "heuristic", "tiled",
                        "windows proven", "exact", "exact status"});
  for (const char* file :
       {"fir64_unroll4.kern", "stencil3x3_unroll8.kern"}) {
    const ir::AccessSequence seq = load_workload(file);

    core::ProblemConfig config;
    config.modify_range = 1;
    config.registers = kRegisters;
    config.phase2.mode = core::Phase2Options::Mode::kHeuristic;
    const int heuristic = core::RegisterAllocator(config).run(seq).cost();

    core::TiledOptions tiled_options;
    tiled_options.time_budget_ms = kWorkloadBudgetMs;
    const core::TiledResult tiled = core::tiled_min_cost_allocation(
        seq, model, kRegisters, tiled_options);

    core::ExactOptions exact_options;
    exact_options.time_budget_ms = kWorkloadBudgetMs;
    exact_options.max_nodes = 1'000'000'000;
    exact_options.jobs = hw;
    const core::ExactResult exact =
        core::exact_min_cost_allocation(seq, model, kRegisters,
                                        exact_options);

    table.add_row({
        file,
        std::to_string(seq.size()),
        std::to_string(kRegisters),
        std::to_string(heuristic),
        std::to_string(tiled.cost),
        std::to_string(tiled.windows_proven) + "/" +
            std::to_string(tiled.windows),
        std::to_string(exact.cost),
        exact.proven ? "proven"
                     : "gap " + std::to_string(exact.gap()),
    });
  }
  std::cout << "Anytime ladder on unrolled workloads (K = 3, M = 1, "
            << kWorkloadBudgetMs << " ms budget per solver)\n\n";
  table.write(std::cout);
  std::cout << "\nheuristic = paper's two-phase merge; tiled = windowed "
               "exact + stitching;\nexact = full anytime search at jobs="
            << hw << ".\n\n";
}

/// One scaling measurement: the exact solver on one instance (workload
/// prefix or generated pattern) at a fixed wall-clock budget. Rows
/// from the scaling and steal tables share the CSV artifact.
struct ScalingRow {
  std::string workload;
  std::size_t n = 0;
  std::size_t jobs = 0;
  core::ExactResult result;
  double nodes_per_sec = 0.0;
  double wall_seconds = 0.0;
  std::size_t max_proven_n = 0;
};

/// Stolen-per-donated ratio: how much of the published work thieves
/// actually picked up (the rest was popped back by the donor).
double steal_rate(const core::ExactResult& result) {
  return result.splits == 0
             ? 0.0
             : static_cast<double>(result.steals) /
                   static_cast<double>(result.splits);
}

/// Fraction of worker-seconds the pool spent parked rather than
/// searching: 1 - busy / (jobs * wall). Negative clamp guards clock
/// granularity. Meaningless for the sequential path (no pool).
double idle_fraction(const ScalingRow& row) {
  if (row.jobs <= 1 || row.wall_seconds <= 0.0) {
    return 0.0;
  }
  const double busy =
      static_cast<double>(row.result.worker_busy_us) / 1e6;
  const double capacity =
      static_cast<double>(row.jobs) * row.wall_seconds;
  return std::max(0.0, 1.0 - busy / capacity);
}

void write_scaling_csv(const std::string& csv_path,
                       const std::vector<ScalingRow>& rows) {
  if (csv_path.empty()) return;
  support::CsvWriter csv({"workload", "n", "k", "jobs", "budget_ms",
                          "proven", "cost", "lower_bound", "nodes",
                          "nodes_per_sec", "subtree_tasks", "splits",
                          "steals", "steal_attempts", "steal_rate",
                          "idle_frac", "table_cap_hits",
                          "max_proven_n"});
  for (const ScalingRow& row : rows) {
    csv.add_row({
        row.workload,
        std::to_string(row.n),
        "3",
        std::to_string(row.jobs),
        std::to_string(kWorkloadBudgetMs),
        row.result.proven ? "yes" : "no",
        std::to_string(row.result.cost),
        std::to_string(row.result.lower_bound),
        std::to_string(row.result.nodes),
        support::format_fixed(row.nodes_per_sec, 0),
        std::to_string(row.result.subtree_tasks),
        std::to_string(row.result.splits),
        std::to_string(row.result.steals),
        std::to_string(row.result.steal_attempts),
        support::format_fixed(steal_rate(row.result), 3),
        support::format_fixed(idle_fraction(row), 3),
        std::to_string(row.result.table_cap_hits),
        std::to_string(row.max_proven_n),
    });
  }
  std::ofstream out(csv_path);
  if (!out.good()) {
    std::cerr << "cannot write scaling CSV to " << csv_path << "\n";
    std::exit(1);
  }
  csv.write(out);
  std::cout << "scaling CSV written to " << csv_path << " ("
            << rows.size() << " rows)\n\n";
}

void print_scaling_table(std::vector<ScalingRow>& csv_rows) {
  constexpr std::size_t kRegisters = 3;
  const char* kWorkload = "stencil3x3_unroll8.kern";
  const core::CostModel model{1, core::WrapPolicy::kCyclic};
  const ir::AccessSequence full = load_workload(kWorkload);
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());

  std::vector<ScalingRow> rows;
  std::size_t max_proven_seq = 0;
  std::size_t max_proven_par = 0;
  std::size_t cost_mismatches = 0;
  support::Table table({"N", "jobs", "proven", "cost", "nodes",
                        "nodes/sec", "subtree tasks"});
  const std::vector<std::size_t> sizes =
      g_quick ? std::vector<std::size_t>{24, 40, 56}
              : std::vector<std::size_t>{24, 32, 40, 48, 56, 64, 72};
  for (const std::size_t n : sizes) {
    if (n > full.size()) continue;
    const ir::AccessSequence seq = sequence_prefix(full, n);
    ScalingRow seq_row, par_row;
    for (const std::size_t jobs : {std::size_t{1}, std::size_t{8}}) {
      core::ExactOptions options;
      options.time_budget_ms = kWorkloadBudgetMs;
      options.max_nodes = 1'000'000'000;
      options.jobs = jobs;
      const auto start = std::chrono::steady_clock::now();
      ScalingRow row;
      row.workload = kWorkload;
      row.n = n;
      row.jobs = jobs;
      row.result =
          core::exact_min_cost_allocation(seq, model, kRegisters, options);
      row.wall_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      row.nodes_per_sec =
          row.wall_seconds > 0.0
              ? static_cast<double>(row.result.nodes) / row.wall_seconds
              : 0.0;
      if (row.result.proven) {
        if (jobs == 1) {
          max_proven_seq = std::max(max_proven_seq, n);
        } else {
          max_proven_par = std::max(max_proven_par, n);
        }
      }
      (jobs == 1 ? seq_row : par_row) = row;
      table.add_row({
          std::to_string(n),
          std::to_string(jobs),
          row.result.proven ? "yes" : "no",
          std::to_string(row.result.cost),
          std::to_string(row.result.nodes),
          support::format_fixed(row.nodes_per_sec / 1e6, 2) + "M",
          std::to_string(row.result.subtree_tasks),
      });
      rows.push_back(std::move(row));
    }
    // Proven costs are the optimum — any jobs-level disagreement is a
    // solver bug, not a tuning artifact.
    if (seq_row.result.proven && par_row.result.proven &&
        seq_row.result.cost != par_row.result.cost) {
      ++cost_mismatches;
    }
  }

  std::cout << "Parallel scaling on " << kWorkload << " prefixes (K = "
            << kRegisters << ", M = 1, " << kWorkloadBudgetMs
            << " ms budget, " << hw << " hardware threads)\n\n";
  table.write(std::cout);
  std::cout << "\nmax proven N: sequential " << max_proven_seq
            << ", parallel " << max_proven_par << "\n";
  std::cout << "proven-cost mismatches across jobs levels: "
            << cost_mismatches << " (must be 0)\n";
  // The gate the CI smoke job greps for: parallelism must never lose
  // proof depth. Sub-4-thread hosts cannot show a win (the subtree
  // tasks just time-slice one core), so the gate is informational
  // there, like bench_serve's throughput gate.
  if (max_proven_par >= max_proven_seq && cost_mismatches == 0) {
    std::cout << "scaling gate: parallel max proven N " << max_proven_par
              << " >= sequential " << max_proven_seq << " (OK)\n\n";
  } else if (hw < 4) {
    std::cout << "scaling gate not enforced (" << hw
              << " hardware threads)\n\n";
  } else {
    std::cout << "scaling gate: parallel max proven N " << max_proven_par
              << " < sequential " << max_proven_seq << " (REGRESSION)\n\n";
  }

  for (ScalingRow& row : rows) {
    row.max_proven_n = row.jobs == 1 ? max_proven_seq : max_proven_par;
    csv_rows.push_back(std::move(row));
  }
}

/// The work-stealing table: the deep-unbalanced skewed-strided family
/// (long dominant ramps, rare far jumps — one subtree dwarfs its
/// siblings, so a static decomposition starves every worker but one)
/// at jobs 1, 2 and 8, with the schedule diagnostics that show the
/// scheduler actually moved work: splits, steals, the steal rate and
/// the worker-idle fraction.
void print_steal_table(std::vector<ScalingRow>& csv_rows) {
  constexpr std::size_t kRegisters = 3;
  const core::CostModel model{1, core::WrapPolicy::kCyclic};
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());

  support::Table table({"N", "jobs", "proven", "cost", "nodes",
                        "nodes/sec", "splits", "steals", "steal rate",
                        "idle frac"});
  std::size_t cost_mismatches = 0;
  double seq_nodes_per_sec = 0.0;
  double par_nodes_per_sec = 0.0;
  std::size_t measurements = 0;
  const std::vector<std::size_t> sizes =
      g_quick ? std::vector<std::size_t>{28, 34}
              : std::vector<std::size_t>{28, 34, 40};
  for (const std::size_t n : sizes) {
    support::Rng rng(0x57EA1 ^ (n * 7919));
    eval::PatternSpec spec;
    spec.accesses = n;
    spec.offset_range = 8;
    spec.family = eval::PatternFamily::kSkewedStrided;
    const ir::AccessSequence seq = eval::generate_pattern(spec, rng);

    int proven_cost = 0;
    bool have_proven_cost = false;
    for (const std::size_t jobs :
         {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
      core::ExactOptions options;
      options.time_budget_ms = kWorkloadBudgetMs;
      options.max_nodes = 1'000'000'000;
      options.jobs = jobs;
      const auto start = std::chrono::steady_clock::now();
      ScalingRow row;
      row.workload = "skewed-strided";
      row.n = n;
      row.jobs = jobs;
      row.result =
          core::exact_min_cost_allocation(seq, model, kRegisters, options);
      row.wall_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      row.nodes_per_sec =
          row.wall_seconds > 0.0
              ? static_cast<double>(row.result.nodes) / row.wall_seconds
              : 0.0;
      if (row.result.proven) {
        if (have_proven_cost && row.result.cost != proven_cost) {
          ++cost_mismatches;
        }
        proven_cost = row.result.cost;
        have_proven_cost = true;
        row.max_proven_n = n;
      }
      if (jobs == 1) {
        seq_nodes_per_sec += row.nodes_per_sec;
        ++measurements;
      } else if (jobs == 8) {
        par_nodes_per_sec += row.nodes_per_sec;
      }
      table.add_row({
          std::to_string(n),
          std::to_string(jobs),
          row.result.proven ? "yes" : "no",
          std::to_string(row.result.cost),
          std::to_string(row.result.nodes),
          support::format_fixed(row.nodes_per_sec / 1e6, 2) + "M",
          std::to_string(row.result.splits),
          std::to_string(row.result.steals),
          support::format_fixed(steal_rate(row.result), 2),
          jobs == 1 ? "-" : support::format_fixed(idle_fraction(row), 2),
      });
      csv_rows.push_back(std::move(row));
    }
  }

  const double seq_mean =
      measurements > 0 ? seq_nodes_per_sec / measurements : 0.0;
  const double par_mean =
      measurements > 0 ? par_nodes_per_sec / measurements : 0.0;
  std::cout << "Work-stealing on deep-unbalanced skewed-strided trees "
               "(K = "
            << kRegisters << ", M = 1, " << kWorkloadBudgetMs
            << " ms budget, " << hw << " hardware threads)\n\n";
  table.write(std::cout);
  std::cout << "\nsteal rate = steals / splits (thief pickup share); "
               "idle frac = parked worker-seconds / capacity.\n";
  std::cout << "proven-cost mismatches across jobs levels: "
            << cost_mismatches << " (must be 0)\n";
  std::cout << "mean nodes/sec: jobs=1 "
            << support::format_fixed(seq_mean / 1e6, 2) << "M, jobs=8 "
            << support::format_fixed(par_mean / 1e6, 2) << "M\n";
  // The CI gate: with real cores behind the pool, stealing must not
  // lose throughput on the very family it targets. Single-core hosts
  // time-slice the workers, so the gate is informational there.
  if (cost_mismatches == 0 && par_mean >= seq_mean) {
    std::cout << "steal scaling gate: jobs=8 nodes/sec >= jobs=1 (OK)\n\n";
  } else if (hw < 4) {
    std::cout << "steal scaling gate not enforced (" << hw
              << " hardware threads)\n\n";
  } else {
    std::cout << "steal scaling gate: jobs=8 "
              << support::format_fixed(par_mean / 1e6, 2)
              << "M < jobs=1 "
              << support::format_fixed(seq_mean / 1e6, 2)
              << "M nodes/sec (REGRESSION)\n\n";
  }
}

void BM_ExactAllocator(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  support::Rng rng(5);
  eval::PatternSpec spec;
  spec.accesses = n;
  spec.offset_range = 6;
  const ir::AccessSequence seq = eval::generate_pattern(spec, rng);
  const core::CostModel model{1, core::WrapPolicy::kCyclic};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::exact_min_cost_allocation(seq, model, 2).cost);
  }
}
BENCHMARK(BM_ExactAllocator)->Arg(8)->Arg(12)->Arg(16);

void BM_ExactAllocatorLegacy(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  support::Rng rng(5);
  eval::PatternSpec spec;
  spec.accesses = n;
  spec.offset_range = 6;
  const ir::AccessSequence seq = eval::generate_pattern(spec, rng);
  const core::CostModel model{1, core::WrapPolicy::kCyclic};
  core::ExactOptions legacy;
  legacy.use_bounds = false;
  legacy.use_dominance = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::exact_min_cost_allocation(seq, model, 2, legacy).cost);
  }
}
BENCHMARK(BM_ExactAllocatorLegacy)->Arg(8)->Arg(12)->Arg(16);

}  // namespace

int main(int argc, char** argv) {
  // Pull out our own flags before Google Benchmark sees (and rejects)
  // them.
  std::string scaling_csv;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    constexpr const char* kFlag = "--scaling-csv=";
    if (std::strncmp(argv[i], kFlag, std::strlen(kFlag)) == 0) {
      scaling_csv = argv[i] + std::strlen(kFlag);
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      g_quick = true;
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;

  print_gap_table();
  print_solver_table();
  print_workload_ladder();
  std::vector<ScalingRow> csv_rows;
  print_scaling_table(csv_rows);
  print_steal_table(csv_rows);
  write_scaling_csv(scaling_csv, csv_rows);
  if (g_quick) {
    // The microbenchmarks add nothing the tables have not already
    // gated on; skip them inside the CI time budget.
    return 0;
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
