// Experiment T8 (extension) — quality of the two-phase heuristic
// against the exact optimum, and the anytime B&B against the legacy
// incumbent-only DFS it replaced.
//
// The paper evaluates its heuristic only against a *naive* allocator;
// this bench adds the missing upper reference: an exact
// branch-and-bound over all register assignments (core/exact.hpp). For
// small instances it reports the mean heuristic and optimal costs, the
// mean relative gap, and how often the heuristic is exactly optimal —
// quantifying how much of the naive-to-optimal interval the two-phase
// scheme actually captures.
//
// The solver table then quantifies the rebuild: per (N, K, family) it
// runs the legacy DFS (bounds and dominance off) and the pruned search
// under the same node cap, reporting solve rates, mean nodes explored,
// the node-reduction factor, and checking that both report identical
// optimal costs whenever both complete.
#include <benchmark/benchmark.h>

#include <iostream>

#include "baselines/baselines.hpp"
#include "core/exact.hpp"
#include "eval/patterns.hpp"
#include "support/stats.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

namespace {

using namespace dspaddr;

void print_gap_table() {
  constexpr std::size_t kTrials = 40;
  const core::CostModel model{1, core::WrapPolicy::kCyclic};

  support::Table table({"N", "K", "naive", "heuristic", "optimal",
                        "heuristic optimal in", "captured"});
  for (const std::size_t n : {8u, 10u, 12u, 14u}) {
    for (const std::size_t k : {2u, 3u}) {
      support::RunningStats naive_stats, heuristic_stats, optimal_stats;
      std::size_t hit_optimal = 0;
      support::Rng rng(0xE8ac7 ^ (n * 1009) ^ k);
      for (std::size_t trial = 0; trial < kTrials; ++trial) {
        eval::PatternSpec spec;
        spec.accesses = n;
        spec.offset_range = 6;
        const ir::AccessSequence seq = eval::generate_pattern(spec, rng);

        core::ProblemConfig config;
        config.modify_range = 1;
        config.registers = k;
        config.phase1.mode = core::Phase1Options::Mode::kExact;
        const int heuristic =
            core::RegisterAllocator(config).run(seq).cost();
        const int naive = baselines::naive_allocate(seq, config).cost();
        const core::ExactResult exact =
            core::exact_min_cost_allocation(seq, model, k);

        naive_stats.add(naive);
        heuristic_stats.add(heuristic);
        optimal_stats.add(exact.cost);
        if (heuristic == exact.cost) ++hit_optimal;
      }
      // Fraction of the naive-to-optimal interval the heuristic closes.
      const double interval =
          naive_stats.mean() - optimal_stats.mean();
      const double captured =
          interval > 0.0
              ? 100.0 * (naive_stats.mean() - heuristic_stats.mean()) /
                    interval
              : 100.0;
      table.add_row({
          std::to_string(n),
          std::to_string(k),
          support::format_fixed(naive_stats.mean(), 2),
          support::format_fixed(heuristic_stats.mean(), 2),
          support::format_fixed(optimal_stats.mean(), 2),
          support::format_percent(100.0 * hit_optimal / kTrials, 0),
          support::format_percent(captured, 0),
      });
    }
  }
  std::cout << "T8: two-phase heuristic vs exact optimum (" << kTrials
            << " uniform patterns per row, M = 1)\n\n";
  table.write(std::cout);
  std::cout << "\n'captured' = share of the naive-to-optimal cost "
               "interval closed by the heuristic.\n\n";
}

void print_solver_table() {
  constexpr std::size_t kTrials = 10;
  // Enough for the pruned search on every instance below; the legacy
  // DFS aborts on most N >= 16 instances under the same cap.
  constexpr std::uint64_t kNodeCap = 3'000'000;
  const core::CostModel model{1, core::WrapPolicy::kCyclic};

  support::Table table({"N", "K", "family", "solved old", "solved new",
                        "nodes old", "nodes new", "node reduction"});
  std::size_t cost_mismatches = 0;
  for (const std::size_t n : {12u, 16u, 20u}) {
    for (const std::size_t k : {2u, 4u}) {
      for (const eval::PatternFamily family :
           {eval::PatternFamily::kUniform,
            eval::PatternFamily::kSortedNoise}) {
        support::Rng rng(0x50C4 ^ (n * 7919) ^ (k * 104729) ^
                         static_cast<std::uint64_t>(family));
        std::size_t solved_old = 0;
        std::size_t solved_new = 0;
        double nodes_old = 0.0;
        double nodes_new = 0.0;
        for (std::size_t trial = 0; trial < kTrials; ++trial) {
          eval::PatternSpec spec;
          spec.accesses = n;
          spec.offset_range = 8;
          spec.family = family;
          const ir::AccessSequence seq = eval::generate_pattern(spec, rng);

          core::ExactOptions legacy;
          legacy.max_nodes = kNodeCap;
          legacy.use_bounds = false;
          legacy.use_dominance = false;
          const core::ExactResult old_style =
              core::exact_min_cost_allocation(seq, model, k, legacy);

          core::ExactOptions pruned;
          pruned.max_nodes = kNodeCap;
          const core::ExactResult new_style =
              core::exact_min_cost_allocation(seq, model, k, pruned);

          if (old_style.proven) ++solved_old;
          if (new_style.proven) ++solved_new;
          nodes_old += static_cast<double>(old_style.nodes);
          nodes_new += static_cast<double>(new_style.nodes);
          if (old_style.proven && new_style.proven &&
              old_style.cost != new_style.cost) {
            ++cost_mismatches;
          }
        }
        const double reduction =
            nodes_new > 0.0 ? nodes_old / nodes_new : 0.0;
        table.add_row({
            std::to_string(n),
            std::to_string(k),
            eval::to_string(family),
            std::to_string(solved_old) + "/" + std::to_string(kTrials),
            std::to_string(solved_new) + "/" + std::to_string(kTrials),
            support::format_fixed(nodes_old / kTrials, 0),
            support::format_fixed(nodes_new / kTrials, 0),
            support::format_fixed(reduction, 1) + "x",
        });
      }
    }
  }
  std::cout << "Anytime B&B vs legacy DFS (" << kTrials
            << " patterns per row, M = 1, node cap " << kNodeCap << ")\n\n";
  table.write(std::cout);
  std::cout << "\n'solved' = instances proven optimal within the cap; "
               "'node reduction' = legacy/pruned mean nodes.\n"
            << "cost mismatches on co-solved instances: "
            << cost_mismatches << " (must be 0)\n\n";
}

void BM_ExactAllocator(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  support::Rng rng(5);
  eval::PatternSpec spec;
  spec.accesses = n;
  spec.offset_range = 6;
  const ir::AccessSequence seq = eval::generate_pattern(spec, rng);
  const core::CostModel model{1, core::WrapPolicy::kCyclic};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::exact_min_cost_allocation(seq, model, 2).cost);
  }
}
BENCHMARK(BM_ExactAllocator)->Arg(8)->Arg(12)->Arg(16);

void BM_ExactAllocatorLegacy(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  support::Rng rng(5);
  eval::PatternSpec spec;
  spec.accesses = n;
  spec.offset_range = 6;
  const ir::AccessSequence seq = eval::generate_pattern(spec, rng);
  const core::CostModel model{1, core::WrapPolicy::kCyclic};
  core::ExactOptions legacy;
  legacy.use_bounds = false;
  legacy.use_dominance = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::exact_min_cost_allocation(seq, model, 2, legacy).cost);
  }
}
BENCHMARK(BM_ExactAllocatorLegacy)->Arg(8)->Arg(12)->Arg(16);

}  // namespace

int main(int argc, char** argv) {
  print_gap_table();
  print_solver_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
