// Portfolio racing vs the fixed strategy grid, with two hard gates.
//
// For every builtin kernel (at minimal2's K=2, M=1, where strategies
// genuinely disagree):
//  * the whole fixed (layout, strategy) grid runs through one shared
//    engine and the best fixed cost is recorded;
//  * a cold `auto`/`auto` race runs through a fresh portfolio — GATE:
//    the race winner's cost must be <= the best fixed cost on every
//    kernel (with no deadline the race runs every candidate to
//    completion or sound bound-cancellation, so a worse winner means
//    the selection logic is broken);
//  * a second, warm request hits the learned short-circuit — GATE: it
//    must actually short-circuit (exactly one strategy executed) and
//    its wall clock must stay within 1.5x the best fixed strategy's
//    own solve (plus a small absolute slack for timer noise; a broken
//    short-circuit re-races the full candidate set and lands an order
//    of magnitude above this line).
//
// The per-kernel table is written as CSV (--csv=FILE) for the CI
// artifact, and the process exits nonzero on any gate violation.
//
// Usage: bench_portfolio --csv=portfolio.csv [gbench flags]
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "agu/machines.hpp"
#include "engine/engine.hpp"
#include "engine/portfolio.hpp"
#include "engine/strategy.hpp"
#include "ir/kernels.hpp"
#include "support/table.hpp"

namespace {

using namespace dspaddr;
using Clock = std::chrono::steady_clock;

constexpr const char* kMachine = "minimal2";

engine::Request base_request(const ir::Kernel& kernel) {
  engine::Request request;
  request.kernel = kernel;
  request.machine = agu::builtin_machine(kMachine);
  // Allocation cost is what the gates compare; stop after planning.
  request.stop_after = engine::Stage::kPlan;
  return request;
}

std::uint64_t us_since(Clock::time_point start) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            start)
          .count());
}

/// Median-of-reps wall clock of one callable, in microseconds.
template <typename Fn>
std::uint64_t median_us(Fn&& fn, int reps) {
  std::vector<std::uint64_t> samples;
  samples.reserve(reps);
  for (int i = 0; i < reps; ++i) {
    const Clock::time_point start = Clock::now();
    fn();
    samples.push_back(us_since(start));
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

struct KernelRow {
  std::string kernel;
  std::size_t candidates = 0;
  std::string best_fixed_pair;
  int best_fixed_cost = 0;
  std::string auto_pair;
  int auto_cost = 0;
  std::uint64_t cold_race_us = 0;
  std::uint64_t warm_auto_us = 0;
  std::uint64_t best_fixed_us = 0;
  bool short_circuit = false;
  bool cost_ok = false;
  bool warm_ok = false;
};

int run_portfolio_table(const std::string& csv_path) {
  const engine::StrategyRegistry& registry =
      engine::StrategyRegistry::builtin();
  const std::vector<std::string> layouts = registry.layout_names();
  const std::vector<std::string> strategies = registry.allocation_names();

  // One cached engine for the fixed grid: like production traffic,
  // repeated cells are hits, and the race below re-derives the same
  // costs independently.
  engine::Engine grid_engine(engine::Engine::Options{1024});

  // Timer-noise slack of the warm gate: the solves here are tens of
  // microseconds, so a fixed floor keeps scheduler jitter from failing
  // CI while a re-raced warm path (candidates x one solve) still lands
  // far above the line.
  constexpr std::uint64_t kWarmSlackUs = 2000;
  constexpr int kTimingReps = 5;

  std::vector<KernelRow> rows;
  std::size_t cost_violations = 0;
  std::size_t warm_violations = 0;
  std::size_t errors = 0;

  for (const ir::Kernel& kernel : ir::builtin_kernels()) {
    KernelRow row;
    row.kernel = kernel.name();
    row.candidates = layouts.size() * strategies.size();

    // Best fixed pair, canonical layout-major order breaking ties.
    row.best_fixed_cost = std::numeric_limits<int>::max();
    for (const std::string& layout : layouts) {
      for (const std::string& strategy : strategies) {
        engine::Request request = base_request(kernel);
        request.layout = layout;
        request.strategy = strategy;
        const engine::Result result = grid_engine.run(request);
        if (!result.ok()) {
          std::cerr << layout << "/" << strategy << " failed on "
                    << kernel.name() << ": " << result.error->message
                    << "\n";
          ++errors;
          continue;
        }
        if (result.allocation_cost < row.best_fixed_cost) {
          row.best_fixed_cost = result.allocation_cost;
          row.best_fixed_pair = layout + "/" + strategy;
        }
      }
    }

    // Cold race, then the warm short-circuit, on an uncached engine so
    // the warm timing measures a real solve rather than a cache probe.
    engine::Engine race_engine(engine::Engine::Options{0});
    engine::PortfolioOptions options;
    options.jobs = std::max(1u, std::thread::hardware_concurrency());
    options.rerace_interval = 0;  // timing reps must stay short-circuits
    engine::Portfolio portfolio(race_engine, options);

    engine::Request auto_request = base_request(kernel);
    auto_request.layout = engine::kAutoStrategy;
    auto_request.strategy = engine::kAutoStrategy;

    engine::PortfolioReport cold_report;
    const Clock::time_point cold_start = Clock::now();
    const engine::Result cold = portfolio.run(auto_request, &cold_report);
    row.cold_race_us = us_since(cold_start);
    if (!cold.ok()) {
      std::cerr << "auto race failed on " << kernel.name() << ": "
                << cold.error->message << "\n";
      ++errors;
      rows.push_back(row);
      continue;
    }
    row.auto_cost = cold.allocation_cost;
    row.auto_pair = cold_report.winner_layout + "/" +
                    cold_report.winner_strategy;
    row.cost_ok = row.auto_cost <= row.best_fixed_cost;
    if (!row.cost_ok) {
      std::cerr << "VIOLATION: auto cost " << row.auto_cost << " > best "
                << "fixed " << row.best_fixed_cost << " ("
                << row.best_fixed_pair << ") on " << kernel.name() << "\n";
      ++cost_violations;
    }

    engine::PortfolioReport warm_report;
    row.warm_auto_us = median_us(
        [&] { portfolio.run(auto_request, &warm_report); }, kTimingReps);
    row.short_circuit = warm_report.short_circuit;

    engine::Request fixed_request = base_request(kernel);
    fixed_request.layout = cold_report.winner_layout;
    fixed_request.strategy = cold_report.winner_strategy;
    row.best_fixed_us = median_us(
        [&] {
          benchmark::DoNotOptimize(
              race_engine.run(fixed_request).allocation_cost);
        },
        kTimingReps);

    row.warm_ok = row.short_circuit &&
                  row.warm_auto_us <=
                      row.best_fixed_us + row.best_fixed_us / 2 +
                          kWarmSlackUs;
    if (!row.warm_ok) {
      std::cerr << "VIOLATION: warm auto "
                << (row.short_circuit ? "" : "did not short-circuit; ")
                << row.warm_auto_us << "us vs best fixed "
                << row.best_fixed_us << "us on " << kernel.name() << "\n";
      ++warm_violations;
    }
    rows.push_back(row);
  }

  support::Table table({"kernel", "best fixed", "cost", "auto winner",
                        "cost", "race us", "warm us", "fixed us", "sc",
                        "gates"});
  for (const KernelRow& row : rows) {
    table.add_row({row.kernel, row.best_fixed_pair,
                   std::to_string(row.best_fixed_cost), row.auto_pair,
                   std::to_string(row.auto_cost),
                   std::to_string(row.cold_race_us),
                   std::to_string(row.warm_auto_us),
                   std::to_string(row.best_fixed_us),
                   row.short_circuit ? "yes" : "no",
                   row.cost_ok && row.warm_ok ? "ok" : "FAIL"});
  }
  std::cout << "portfolio racing: auto vs the fixed grid on " << kMachine
            << ", all builtin kernels\n\n";
  table.write(std::cout);
  std::cout << "\nauto cost <= best fixed on every kernel: "
            << (cost_violations == 0 ? "OK" : "VIOLATED")
            << "\nwarm auto short-circuits within 1.5x best fixed: "
            << (warm_violations == 0 ? "OK" : "VIOLATED");
  if (errors != 0) {
    std::cout << " (" << errors << " racer error(s))";
  }
  std::cout << "\n\n";

  if (!csv_path.empty()) {
    std::ofstream csv(csv_path, std::ios::trunc);
    csv << "kernel,candidates,best_fixed_pair,best_fixed_cost,auto_pair,"
           "auto_cost,cold_race_us,warm_auto_us,best_fixed_us,"
           "short_circuit,cost_gate,warm_gate\n";
    for (const KernelRow& row : rows) {
      csv << row.kernel << "," << row.candidates << ","
          << row.best_fixed_pair << "," << row.best_fixed_cost << ","
          << row.auto_pair << "," << row.auto_cost << ","
          << row.cold_race_us << "," << row.warm_auto_us << ","
          << row.best_fixed_us << ","
          << (row.short_circuit ? "yes" : "no") << ","
          << (row.cost_ok ? "ok" : "fail") << ","
          << (row.warm_ok ? "ok" : "fail") << "\n";
    }
    std::cout << "  per-kernel portfolio CSV written to " << csv_path
              << "\n\n";
  }
  return cost_violations == 0 && warm_violations == 0 && errors == 0 ? 0
                                                                     : 1;
}

void BM_PortfolioColdRace(benchmark::State& state) {
  const ir::Kernel kernel = ir::biquad_kernel();
  for (auto _ : state) {
    engine::Engine engine(engine::Engine::Options{0});
    engine::Portfolio portfolio(engine);
    engine::Request request = base_request(kernel);
    request.layout = engine::kAutoStrategy;
    request.strategy = engine::kAutoStrategy;
    benchmark::DoNotOptimize(portfolio.run(request).allocation_cost);
  }
}
BENCHMARK(BM_PortfolioColdRace);

void BM_PortfolioWarmShortCircuit(benchmark::State& state) {
  const ir::Kernel kernel = ir::biquad_kernel();
  engine::Engine engine(engine::Engine::Options{0});
  engine::PortfolioOptions options;
  options.rerace_interval = 0;
  engine::Portfolio portfolio(engine, options);
  engine::Request request = base_request(kernel);
  request.layout = engine::kAutoStrategy;
  request.strategy = engine::kAutoStrategy;
  portfolio.run(request);  // learn once
  for (auto _ : state) {
    benchmark::DoNotOptimize(portfolio.run(request).allocation_cost);
  }
}
BENCHMARK(BM_PortfolioWarmShortCircuit);

}  // namespace

int main(int argc, char** argv) {
  std::string csv_path;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    constexpr const char* kCsv = "--csv=";
    if (std::strncmp(argv[i], kCsv, std::strlen(kCsv)) == 0) {
      csv_path = argv[i] + std::strlen(kCsv);
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  const int gate = run_portfolio_table(csv_path);
  if (gate != 0) {
    return gate;
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
