// Engine throughput: requests/sec with the fingerprint cache cold vs
// warm — the number that justifies memoizing the pipeline for
// repeated-kernel traffic (sweep grids, the serve loop).
//
// BM_EngineColdCache clears the cache every iteration, so each run
// pays the full pass sequence. BM_EngineWarmCache pre-warms one engine
// and replays the same request mix; every run is a lookup + copy. The
// printed summary reports the resulting speedup on the repeated-kernel
// workload (expected well beyond 5x — the exact phase-2 search alone
// costs milliseconds, a hit costs microseconds).
#include <benchmark/benchmark.h>

#include <chrono>
#include <iostream>
#include <vector>

#include "agu/machines.hpp"
#include "engine/engine.hpp"
#include "ir/kernels.hpp"

namespace {

using namespace dspaddr;

/// The repeated-kernel workload: every builtin kernel against two
/// catalog AGUs, solved to proven optimality and simulated for a
/// realistic block length — the shape of one serve client sweeping the
/// catalog.
std::vector<engine::Request> workload() {
  std::vector<engine::Request> requests;
  for (const ir::Kernel& kernel : ir::builtin_kernels()) {
    for (const char* machine : {"minimal2", "wide4"}) {
      engine::Request request;
      request.kernel = kernel;
      request.machine = agu::builtin_machine(machine);
      request.phase2.mode = core::Phase2Options::Mode::kExact;
      request.iterations = 4096;
      requests.push_back(request);
    }
  }
  return requests;
}

void BM_EngineColdCache(benchmark::State& state) {
  const std::vector<engine::Request> requests = workload();
  engine::Engine engine;
  std::size_t processed = 0;
  for (auto _ : state) {
    state.PauseTiming();
    engine.clear_cache();
    state.ResumeTiming();
    for (const engine::Request& request : requests) {
      benchmark::DoNotOptimize(engine.run(request));
    }
    processed += requests.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(processed));
}
BENCHMARK(BM_EngineColdCache)->Unit(benchmark::kMillisecond);

void BM_EngineWarmCache(benchmark::State& state) {
  const std::vector<engine::Request> requests = workload();
  engine::Engine engine(
      engine::Engine::Options{2 * requests.size()});
  for (const engine::Request& request : requests) {
    engine.run(request);
  }
  std::size_t processed = 0;
  for (auto _ : state) {
    for (const engine::Request& request : requests) {
      benchmark::DoNotOptimize(engine.run(request));
    }
    processed += requests.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(processed));
}
BENCHMARK(BM_EngineWarmCache)->Unit(benchmark::kMillisecond);

/// One-shot summary: measured cold vs warm requests/sec and the
/// speedup, printed before the benchmark table.
void print_speedup_summary() {
  using Clock = std::chrono::steady_clock;
  const std::vector<engine::Request> requests = workload();

  engine::Engine cold(engine::Engine::Options{0});
  const auto cold_start = Clock::now();
  constexpr int kColdRounds = 3;
  for (int round = 0; round < kColdRounds; ++round) {
    for (const engine::Request& request : requests) {
      cold.run(request);
    }
  }
  const double cold_s =
      std::chrono::duration<double>(Clock::now() - cold_start).count();
  const double cold_rps =
      kColdRounds * static_cast<double>(requests.size()) / cold_s;

  engine::Engine warm(engine::Engine::Options{2 * requests.size()});
  for (const engine::Request& request : requests) {
    warm.run(request);
  }
  const auto warm_start = Clock::now();
  constexpr int kWarmRounds = 50;
  for (int round = 0; round < kWarmRounds; ++round) {
    for (const engine::Request& request : requests) {
      warm.run(request);
    }
  }
  const double warm_s =
      std::chrono::duration<double>(Clock::now() - warm_start).count();
  const double warm_rps =
      kWarmRounds * static_cast<double>(requests.size()) / warm_s;

  const engine::CacheStats stats = warm.cache_stats();
  std::cout << "=== Engine cache speedup (repeated-kernel workload, "
            << requests.size() << " requests/round) ===\n"
            << "  cold: " << static_cast<std::int64_t>(cold_rps)
            << " req/s\n"
            << "  warm: " << static_cast<std::int64_t>(warm_rps)
            << " req/s  (" << stats.hits << " hits / " << stats.misses
            << " misses)\n"
            << "  speedup: " << warm_rps / cold_rps << "x  "
            << (warm_rps > 5.0 * cold_rps ? "(> 5x: OK)"
                                          : "(< 5x: REGRESSION)")
            << "\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  print_speedup_summary();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
