// The strategy matrix: every registered allocation strategy across the
// builtin kernel suite, through the engine's pluggable pipeline.
//
// Two outputs:
//  * a cost table (kernel x strategy, at the bench machine's K/M) with
//    a hard assertion per cell that the paper's two-phase allocator
//    never loses to the naive arbitrary-merge baseline — the paper's
//    headline claim, checked across the whole suite on every CI run
//    (the process exits nonzero on a violation);
//  * throughput benchmarks of Engine::run per strategy, so a strategy
//    whose cost advantage is bought with pathological runtime shows up.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <iostream>
#include <map>

#include "agu/machines.hpp"
#include "engine/engine.hpp"
#include "engine/strategy.hpp"
#include "ir/kernels.hpp"
#include "support/table.hpp"

namespace {

using namespace dspaddr;

/// One engine for the whole bench: repeated (kernel, strategy) cells
/// are cache hits, like production traffic.
engine::Engine& shared_engine() {
  static engine::Engine engine(engine::Engine::Options{1024});
  return engine;
}

engine::Result run_cell(const ir::Kernel& kernel,
                        const std::string& strategy) {
  engine::Request request;
  request.kernel = kernel;
  request.machine = agu::builtin_machine("minimal2");
  request.strategy = strategy;
  // Allocation cost is what the table compares; skip simulation.
  request.stop_after = engine::Stage::kPlan;
  return shared_engine().run(request);
}

void print_strategy_table() {
  const std::vector<std::string> strategies =
      engine::StrategyRegistry::builtin().allocation_names();
  std::vector<std::string> header{"kernel"};
  header.insert(header.end(), strategies.begin(), strategies.end());
  support::Table table(std::move(header));

  std::size_t violations = 0;
  std::size_t errors = 0;
  for (const ir::Kernel& kernel : ir::builtin_kernels()) {
    std::map<std::string, int> cost;
    std::vector<std::string> row{kernel.name()};
    for (const std::string& strategy : strategies) {
      const engine::Result result = run_cell(kernel, strategy);
      if (!result.ok()) {
        std::cerr << "strategy " << strategy << " failed on "
                  << kernel.name() << ": " << result.error->message
                  << "\n";
        ++errors;
        row.push_back("err");
        continue;
      }
      cost[strategy] = result.allocation_cost;
      row.push_back(std::to_string(result.allocation_cost));
    }
    table.add_row(std::move(row));
    // The paper's claim, as a hard gate: cost-guided merging never
    // loses to arbitrary merging on the same phase-1 cover.
    if (cost.count("two-phase") && cost.count("naive") &&
        cost["two-phase"] > cost["naive"]) {
      std::cerr << "VIOLATION: two-phase (" << cost["two-phase"]
                << ") > naive (" << cost["naive"] << ") on "
                << kernel.name() << "\n";
      ++violations;
    }
  }

  std::cout << "strategy matrix: allocation cost/iteration on minimal2 "
               "(K=2, M=1), all builtin kernels\n\n";
  table.write(std::cout);
  std::cout << "\ntwo-phase <= naive on every kernel: "
            << (violations == 0 ? "OK" : "VIOLATED");
  if (errors != 0) {
    // An errored cell skipped its comparison: fail distinctly so CI
    // logs point at the strategy error, not the cost-ordering claim.
    std::cout << " (" << errors << " strategy error(s))";
  }
  std::cout << "\n\n";
  if (violations != 0 || errors != 0) {
    std::exit(1);
  }
}

void BM_StrategyColdRun(benchmark::State& state,
                        const std::string& strategy) {
  const ir::Kernel kernel = ir::biquad_kernel();
  const agu::AguSpec machine = agu::builtin_machine("minimal2");
  for (auto _ : state) {
    engine::Engine engine(engine::Engine::Options{0});  // no cache
    engine::Request request;
    request.kernel = kernel;
    request.machine = machine;
    request.strategy = strategy;
    request.stop_after = engine::Stage::kPlan;
    benchmark::DoNotOptimize(engine.run(request).allocation_cost);
  }
}

void register_strategy_benchmarks() {
  for (const std::string& strategy :
       engine::StrategyRegistry::builtin().allocation_names()) {
    benchmark::RegisterBenchmark(
        ("BM_StrategyColdRun/" + strategy).c_str(),
        [strategy](benchmark::State& state) {
          BM_StrategyColdRun(state, strategy);
        });
  }
}

}  // namespace

int main(int argc, char** argv) {
  print_strategy_table();
  register_strategy_benchmarks();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
