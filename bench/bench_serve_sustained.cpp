// Sustained mixed hot/cold serving benchmark over the two-tier cache:
// one engine, a persistent result store underneath, and (by default)
// one million requests drawn from a workload corpus — the load shape a
// long-lived serve process sees, not the cold micro-latency the other
// benches measure.
//
// Traffic mix: 99% of requests re-draw uniformly from a fixed corpus
// (every builtin kernel x K x M), 1% mint a never-seen synthetic
// kernel. The RAM tier is deliberately sized *below* the corpus, so
// evicted entries keep coming back from the disk tier and all three
// answer paths — cold compute, RAM hit, store hit — stay exercised for
// the whole run. Per-tier latency lands in obs::Histogram instruments
// (the same ones serve exports), so the numbers here are measured by
// the shipped metrics layer, not by bench-only code.
//
// Prints throughput and per-tier p50/p95/p99, gates that every tier
// was actually observed ("tiers: OK") and that a store-served answer
// is byte-identical to a fresh computation ("byte-identity: OK"), and
// optionally writes the per-tier table as CSV:
//
//   bench_serve_sustained --requests=1000000 --csv=sustained.csv
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "agu/machines.hpp"
#include "engine/engine.hpp"
#include "engine/serialize.hpp"
#include "ir/kernels.hpp"
#include "obs/metrics.hpp"
#include "store/result_store.hpp"

namespace {

using namespace dspaddr;

/// The hot corpus: every builtin kernel at K in {1..4}, M in {0..2}.
std::vector<engine::Request> build_corpus() {
  std::vector<engine::Request> corpus;
  for (const ir::Kernel& kernel : ir::builtin_kernels()) {
    for (int registers = 1; registers <= 4; ++registers) {
      for (int modify_range = 0; modify_range <= 2; ++modify_range) {
        engine::Request request;
        request.kernel = kernel;
        request.machine = agu::builtin_machine("wide4");
        request.machine.set_address_registers(
            static_cast<std::size_t>(registers));
        request.machine.set_modify_range(modify_range);
        request.iterations = 64;
        corpus.push_back(request);
      }
    }
  }
  return corpus;
}

/// A never-seen-before request: a small synthetic kernel whose access
/// offsets encode `serial`, so every call mints a fresh fingerprint.
engine::Request make_cold_request(std::uint64_t serial) {
  ir::Kernel kernel("cold_" + std::to_string(serial), "synthetic cold");
  kernel.add_array("A", 1 << 20);
  kernel.set_iterations(16);
  const std::int64_t base =
      static_cast<std::int64_t>((serial * 8) % ((1 << 20) - 64));
  for (int j = 0; j < 6; ++j) {
    kernel.add_access("A", base + j * ((serial % 7) + 1), 1, j == 5);
  }
  engine::Request request;
  request.kernel = std::move(kernel);
  request.machine = agu::builtin_machine("wide4");
  request.iterations = 16;
  return request;
}

struct TierReport {
  const char* name;
  obs::HistogramSnapshot latency;
};

std::uint64_t now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Where the benchmark keeps its scratch log.
std::string testing_store_path() {
  const char* tmp = std::getenv("TMPDIR");
  std::string dir = tmp != nullptr ? tmp : "/tmp";
  if (!dir.empty() && dir.back() != '/') {
    dir += '/';
  }
  return dir + "dspaddr_bench_sustained.log";
}

void run_sustained(std::uint64_t requests, const std::string& csv_path) {
  const std::string store_path = testing_store_path();
  std::remove(store_path.c_str());
  const std::vector<engine::Request> corpus = build_corpus();

  // "Previous boot": compute the whole corpus once and persist it,
  // then close the log so the measured engine recovers it through the
  // mmap read path like a real restart would.
  {
    engine::Engine::Options options;
    options.store = std::make_shared<store::ResultStore>(
        store::ResultStore::Options{store_path, false});
    engine::Engine seeder(std::move(options));
    for (const engine::Request& request : corpus) {
      seeder.run(request);
    }
  }

  // Byte-identity reference: corpus[0] computed with no store at all.
  std::string reference;
  {
    engine::Engine fresh;
    reference = engine::result_to_json_line(fresh.run(corpus[0]));
  }

  engine::Engine::Options options;
  options.cache_capacity = corpus.size() / 3;  // force steady eviction
  options.store = std::make_shared<store::ResultStore>(
      store::ResultStore::Options{store_path, false});
  engine::Engine engine(std::move(options));

  obs::Registry tiers;
  obs::Histogram& cold_us = tiers.histogram("cold");
  obs::Histogram& ram_us = tiers.histogram("ram_hit");
  obs::Histogram& store_us = tiers.histogram("store_hit");

  bool byte_identical = true;
  std::mt19937_64 rng(20260808);
  std::uint64_t cold_serial = 0;
  const std::uint64_t start_us = now_us();
  for (std::uint64_t i = 0; i < requests; ++i) {
    const bool mint = i % 100 == 99;
    engine::Request minted;
    std::size_t corpus_index = 0;
    if (mint) {
      minted = make_cold_request(cold_serial++);
    } else {
      corpus_index = rng() % corpus.size();
    }
    const engine::Request& actual = mint ? minted : corpus[corpus_index];

    const std::uint64_t t0 = now_us();
    const engine::Result result = engine.run(actual);
    const std::uint64_t dt = now_us() - t0;
    if (result.cache_hit) {
      ram_us.record_us(dt);
    } else if (result.store_hit) {
      store_us.record_us(dt);
      // Spot-check: the store-served answer for corpus[0] renders
      // exactly like the storeless reference.
      if (byte_identical && !mint && corpus_index == 0) {
        byte_identical = engine::result_to_json_line(result) == reference;
      }
    } else {
      cold_us.record_us(dt);
    }
  }
  const double elapsed_s =
      static_cast<double>(now_us() - start_us) / 1e6;
  const double rps = static_cast<double>(requests) / elapsed_s;

  const TierReport reports[] = {
      {"cold", cold_us.snapshot()},
      {"ram_hit", ram_us.snapshot()},
      {"store_hit", store_us.snapshot()},
  };

  std::cout << "=== Sustained mixed serving (" << requests
            << " requests, corpus " << corpus.size() << ", RAM tier "
            << corpus.size() / 3 << " entries) ===\n";
  std::cout << "  throughput: " << static_cast<std::int64_t>(rps)
            << " req/s (" << elapsed_s << " s total)\n";
  bool all_tiers = true;
  for (const TierReport& tier : reports) {
    const obs::HistogramSnapshot& h = tier.latency;
    std::cout << "  " << tier.name << ": count=" << h.count
              << " p50=" << h.percentile_us(50)
              << "us p95=" << h.percentile_us(95)
              << "us p99=" << h.percentile_us(99) << "us max=" << h.max_us
              << "us\n";
    all_tiers = all_tiers && h.count > 0;
  }
  std::cout << "  tiers: " << (all_tiers ? "OK" : "MISSING-TIER")
            << "  byte-identity: " << (byte_identical ? "OK" : "MISMATCH")
            << "\n\n";

  if (!csv_path.empty()) {
    std::ofstream csv(csv_path, std::ios::trunc);
    csv << "tier,count,p50_us,p95_us,p99_us,max_us,sum_us\n";
    for (const TierReport& tier : reports) {
      const obs::HistogramSnapshot& h = tier.latency;
      csv << tier.name << "," << h.count << "," << h.percentile_us(50)
          << "," << h.percentile_us(95) << "," << h.percentile_us(99)
          << "," << h.max_us << "," << h.sum_us << "\n";
    }
    csv << "total," << requests << ",,,,," << "\n";
    csv << "throughput_rps," << static_cast<std::int64_t>(rps)
        << ",,,,,\n";
    std::cout << "  per-tier latency CSV written to " << csv_path
              << "\n\n";
  }

  std::remove(store_path.c_str());
}

/// The harness-visible benchmark: mixed traffic against a pre-seeded
/// two-tier engine, items/sec = requests/sec.
void BM_SustainedMixedTraffic(benchmark::State& state) {
  const std::string store_path = testing_store_path();
  std::remove(store_path.c_str());
  const std::vector<engine::Request> corpus = build_corpus();
  {
    engine::Engine::Options options;
    options.store = std::make_shared<store::ResultStore>(
        store::ResultStore::Options{store_path, false});
    engine::Engine seeder(std::move(options));
    for (const engine::Request& request : corpus) {
      seeder.run(request);
    }
  }
  engine::Engine::Options options;
  options.cache_capacity = corpus.size() / 3;
  options.store = std::make_shared<store::ResultStore>(
      store::ResultStore::Options{store_path, false});
  engine::Engine engine(std::move(options));

  std::mt19937_64 rng(7);
  std::int64_t processed = 0;
  for (auto _ : state) {
    const engine::Result result = engine.run(corpus[rng() % corpus.size()]);
    benchmark::DoNotOptimize(result.allocation_cost);
    ++processed;
  }
  state.SetItemsProcessed(processed);
  std::remove(store_path.c_str());
}
BENCHMARK(BM_SustainedMixedTraffic)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  // Pull out our own flags before Google Benchmark sees (and rejects)
  // them.
  std::uint64_t requests = 1'000'000;
  std::string csv_path;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    constexpr const char* kRequests = "--requests=";
    constexpr const char* kCsv = "--csv=";
    if (std::strncmp(argv[i], kRequests, std::strlen(kRequests)) == 0) {
      requests = std::strtoull(argv[i] + std::strlen(kRequests), nullptr, 10);
    } else if (std::strncmp(argv[i], kCsv, std::strlen(kCsv)) == 0) {
      csv_path = argv[i] + std::strlen(kCsv);
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;

  run_sustained(requests, csv_path);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
