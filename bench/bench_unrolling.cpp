// Experiment T10 (extension) — interaction of loop unrolling with
// address-register allocation.
//
// Replicating an allocation across u copies shows the OPTIMAL cost per
// original iteration can never rise with unrolling (property-tested in
// test_ir_unroll.cpp against the exact allocator). The interesting
// empirical question is how the two-phase HEURISTIC behaves: unrolled
// bodies are longer and give greedy merging more chances to commit
// early mistakes, so the heuristic typically tracks linear scaling
// within a few percent rather than profiting. The table quantifies
// that gap — a caveat for compilers that unroll before allocating.
#include <benchmark/benchmark.h>

#include <iostream>

#include "core/allocator.hpp"
#include "eval/patterns.hpp"
#include "ir/kernels.hpp"
#include "ir/layout.hpp"
#include "ir/unroll.hpp"
#include "support/stats.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

namespace {

using namespace dspaddr;

double cost_per_original_iteration(const ir::AccessSequence& seq,
                                   std::size_t factor, std::size_t k) {
  core::ProblemConfig config;
  config.modify_range = 1;
  config.registers = k;
  const ir::AccessSequence body =
      factor == 1 ? seq : ir::unroll(seq, factor);
  const int cost = core::RegisterAllocator(config).run(body).cost();
  return static_cast<double>(cost) / static_cast<double>(factor);
}

void print_random_table() {
  constexpr std::size_t kTrials = 40;
  support::Table table({"N", "K", "u=1", "u=2", "u=4", "u=8",
                        "reduction u=4 vs u=1"});
  for (const std::size_t n : {10u, 20u}) {
    for (const std::size_t k : {2u, 4u}) {
      std::vector<support::RunningStats> per_factor(4);
      support::Rng rng(0x0110 ^ (n * 31) ^ k);
      for (std::size_t trial = 0; trial < kTrials; ++trial) {
        eval::PatternSpec spec;
        spec.accesses = n;
        spec.offset_range = 8;
        const ir::AccessSequence seq = eval::generate_pattern(spec, rng);
        const std::size_t factors[] = {1, 2, 4, 8};
        for (std::size_t f = 0; f < 4; ++f) {
          per_factor[f].add(
              cost_per_original_iteration(seq, factors[f], k));
        }
      }
      table.add_row({
          std::to_string(n),
          std::to_string(k),
          support::format_fixed(per_factor[0].mean(), 2),
          support::format_fixed(per_factor[1].mean(), 2),
          support::format_fixed(per_factor[2].mean(), 2),
          support::format_fixed(per_factor[3].mean(), 2),
          support::format_percent(support::percent_reduction(
              per_factor[0].mean(), per_factor[2].mean())),
      });
    }
  }
  std::cout << "T10a: addressing cost per ORIGINAL iteration vs unroll "
               "factor (random patterns, "
            << kTrials << " trials per row, M = 1)\n\n";
  table.write(std::cout);
  std::cout << "\nThe optimum can only improve with u (see the exact-"
               "allocator property test); small negative 'reductions' "
               "here measure the heuristic's loss on longer "
               "sequences.\n\n";
}

void print_kernel_table() {
  support::Table table({"kernel", "u=1", "u=2", "u=4"});
  for (const ir::Kernel& kernel : ir::builtin_kernels()) {
    if (kernel.iterations() % 4 != 0) continue;  // need divisibility
    std::vector<std::string> row{kernel.name()};
    for (const std::size_t factor : {1u, 2u, 4u}) {
      const ir::Kernel body =
          factor == 1 ? kernel : ir::unroll(kernel, factor);
      core::ProblemConfig config;
      config.modify_range = 1;
      config.registers = 4;
      const int cost =
          core::RegisterAllocator(config).run(ir::lower(body)).cost();
      row.push_back(support::format_fixed(
          static_cast<double>(cost) / static_cast<double>(factor), 2));
    }
    table.add_row(std::move(row));
  }
  std::cout << "T10b: kernel suite, cost per original iteration "
               "(M = 1, K = 4)\n\n";
  table.write(std::cout);
  std::cout << '\n';
}

void BM_AllocateUnrolled(benchmark::State& state) {
  support::Rng rng(8);
  eval::PatternSpec spec;
  spec.accesses = 16;
  spec.offset_range = 8;
  const ir::AccessSequence seq = eval::generate_pattern(spec, rng);
  const ir::AccessSequence unrolled =
      ir::unroll(seq, static_cast<std::size_t>(state.range(0)));
  core::ProblemConfig config;
  config.modify_range = 1;
  config.registers = 4;
  const core::RegisterAllocator allocator(config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(allocator.run(unrolled).cost());
  }
}
BENCHMARK(BM_AllocateUnrolled)->Arg(1)->Arg(4)->Arg(16);

}  // namespace

int main(int argc, char** argv) {
  print_random_table();
  print_kernel_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
