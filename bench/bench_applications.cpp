// Experiment T12 (extension of T2) — whole-program code size and speed
// across multi-loop DSP applications.
//
// [1] reports its 30 % / 60 % improvements on complete DSP programs;
// this bench aggregates the per-loop comparison over the built-in
// application catalog (equalizer, modem front end, image pipeline,
// spectral analyzer) and over AGU sizes, showing how the program-level
// numbers emerge from loop-level allocations.
#include <benchmark/benchmark.h>

#include <iostream>

#include "agu/metrics.hpp"
#include "ir/application.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

namespace {

using namespace dspaddr;

void print_application_table(std::size_t registers) {
  support::Table table({"application", "loops", "base size", "opt size",
                        "size red.", "base cycles", "opt cycles",
                        "speed red."});
  core::ProblemConfig config;
  config.modify_range = 1;
  config.registers = registers;

  for (const ir::Application& app : ir::builtin_applications()) {
    const agu::AddressingComparison c =
        agu::compare_addressing(app, config);
    table.add_row({
        app.name(),
        std::to_string(app.size()),
        std::to_string(c.baseline.size_words),
        std::to_string(c.optimized.size_words),
        support::format_percent(c.size_reduction_percent),
        std::to_string(c.baseline.cycles),
        std::to_string(c.optimized.cycles),
        support::format_percent(c.speed_reduction_percent),
    });
  }
  std::cout << "T12: whole-program addressing optimization, K = "
            << registers << ", M = 1\n\n";
  table.write(std::cout);
  std::cout << '\n';
}

void BM_CompareApplication(benchmark::State& state) {
  const ir::Application app = ir::modem_frontend_app();
  core::ProblemConfig config;
  config.modify_range = 1;
  config.registers = 4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        agu::compare_addressing(app, config).speed_reduction_percent);
  }
}
BENCHMARK(BM_CompareApplication);

}  // namespace

int main(int argc, char** argv) {
  print_application_table(8);
  print_application_table(2);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
