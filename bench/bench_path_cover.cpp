// Experiment T3 — phase 1 machinery (paper section 3.1): the number of
// virtual registers K~ computed by branch-and-bound, bracketed by the
// matching lower bound (Araujo et al. [2]) and the greedy upper bound.
//
// The paper claims the procedure is fast because "based on these
// bounds, one can quickly decide whether or not a certain graph edge
// must be included in the path cover". The table shows, per pattern
// size, how tight the bounds are (mean LB / K~ / UB, how often LB = K~,
// how often UB = K~) and how many search nodes the exact search
// explores; google-benchmark times all three computations.
#include <benchmark/benchmark.h>

#include <iostream>

#include "core/branch_and_bound.hpp"
#include "eval/patterns.hpp"
#include "support/stats.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

namespace {

using namespace dspaddr;

void print_bounds_table() {
  constexpr std::size_t kTrials = 50;
  support::Table table({"N", "M", "LB mean", "K~ mean", "UB mean",
                        "LB tight", "UB tight", "search nodes (mean)"});

  for (const std::size_t n : {8u, 12u, 16u, 20u, 24u}) {
    for (const std::int64_t m : {1, 2}) {
      support::RunningStats lb_stats, kt_stats, ub_stats, node_stats;
      std::size_t lb_tight = 0;
      std::size_t ub_tight = 0;
      support::Rng rng(0xC0FFEE ^ (n * 131) ^ static_cast<std::size_t>(m));
      for (std::size_t trial = 0; trial < kTrials; ++trial) {
        eval::PatternSpec spec;
        spec.accesses = n;
        spec.offset_range = 8;
        const ir::AccessSequence seq = eval::generate_pattern(spec, rng);
        const core::AccessGraph graph(
            seq, core::CostModel{m, core::WrapPolicy::kCyclic});
        core::Phase1Options options;
        options.mode = core::Phase1Options::Mode::kExact;
        const core::Phase1Result r =
            core::compute_min_register_cover(graph, options);
        if (!r.k_tilde.has_value()) continue;
        lb_stats.add(static_cast<double>(r.lower_bound));
        kt_stats.add(static_cast<double>(*r.k_tilde));
        if (r.upper_bound.has_value()) {
          ub_stats.add(static_cast<double>(*r.upper_bound));
          if (*r.upper_bound == *r.k_tilde) ++ub_tight;
        }
        if (r.lower_bound == *r.k_tilde) ++lb_tight;
        node_stats.add(static_cast<double>(r.search_nodes));
      }
      table.add_row({
          std::to_string(n),
          std::to_string(m),
          support::format_fixed(lb_stats.mean(), 2),
          support::format_fixed(kt_stats.mean(), 2),
          support::format_fixed(ub_stats.mean(), 2),
          support::format_percent(100.0 * lb_tight / kTrials, 0),
          support::format_percent(100.0 * ub_tight / kTrials, 0),
          support::format_fixed(node_stats.mean(), 0),
      });
    }
  }
  std::cout << "T3: phase-1 bounds and exact K~ (branch-and-bound), "
            << kTrials << " uniform patterns per row\n\n";
  table.write(std::cout);
  std::cout << "\nLB = matching bound on the intra-iteration DAG; "
               "UB = greedy zero-cost cover.\n\n";
}

ir::AccessSequence pattern_of_size(std::size_t n) {
  support::Rng rng(42);
  eval::PatternSpec spec;
  spec.accesses = n;
  spec.offset_range = 8;
  return eval::generate_pattern(spec, rng);
}

void BM_MatchingLowerBound(benchmark::State& state) {
  const auto seq = pattern_of_size(static_cast<std::size_t>(state.range(0)));
  const core::AccessGraph graph(
      seq, core::CostModel{1, core::WrapPolicy::kCyclic});
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::lower_bound_registers(graph));
  }
}
BENCHMARK(BM_MatchingLowerBound)->Arg(16)->Arg(64)->Arg(256);

void BM_GreedyUpperBound(benchmark::State& state) {
  const auto seq = pattern_of_size(static_cast<std::size_t>(state.range(0)));
  const core::AccessGraph graph(
      seq, core::CostModel{1, core::WrapPolicy::kCyclic});
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::greedy_zero_cost_cover(graph));
  }
}
BENCHMARK(BM_GreedyUpperBound)->Arg(16)->Arg(64)->Arg(256);

void BM_BranchAndBoundExact(benchmark::State& state) {
  const auto seq = pattern_of_size(static_cast<std::size_t>(state.range(0)));
  const core::AccessGraph graph(
      seq, core::CostModel{1, core::WrapPolicy::kCyclic});
  core::Phase1Options options;
  options.mode = core::Phase1Options::Mode::kExact;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::compute_min_register_cover(graph, options).k_tilde);
  }
}
BENCHMARK(BM_BranchAndBoundExact)->Arg(12)->Arg(16)->Arg(20);

}  // namespace

int main(int argc, char** argv) {
  print_bounds_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
