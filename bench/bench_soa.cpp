// Experiment T6 — the complementary scalar-variable optimization the
// paper positions itself against (section 1): "It is complementary to
// work done on optimized addressing of scalar program variables
// [4, 5]."
//
// Simple offset assignment (Liao, PLDI'95) and the tie-break refinement
// (Leupers/Marwedel, ICCAD'96) versus declaration-order and random
// layouts, plus general offset assignment over k address registers.
#include <benchmark/benchmark.h>

#include <iostream>

#include "soa/goa.hpp"
#include "soa/liao.hpp"
#include "support/stats.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

namespace {

using namespace dspaddr;

soa::ScalarSequence random_scalar_sequence(support::Rng& rng,
                                           std::size_t variables,
                                           std::size_t length) {
  std::vector<soa::VarId> accesses(length);
  for (auto& a : accesses) {
    a = static_cast<soa::VarId>(rng.index(variables));
  }
  return soa::ScalarSequence(std::move(accesses), variables);
}

void print_soa_table() {
  constexpr std::size_t kTrials = 60;
  support::Table table({"vars", "accesses", "identity", "random",
                        "liao", "liao+tiebreak", "liao red. vs identity"});
  for (const auto& [variables, length] :
       std::vector<std::pair<std::size_t, std::size_t>>{
           {6, 30}, {10, 60}, {16, 120}, {24, 200}}) {
    support::RunningStats identity, random, liao, tiebreak;
    support::Rng rng(0x50A ^ (variables * 977));
    for (std::size_t trial = 0; trial < kTrials; ++trial) {
      const auto seq = random_scalar_sequence(rng, variables, length);
      identity.add(static_cast<double>(
          soa::layout_cost(seq, soa::identity_layout(variables))));
      const soa::Layout rand_layout = soa::random_layout(variables, rng);
      random.add(
          static_cast<double>(soa::layout_cost(seq, rand_layout)));
      liao.add(static_cast<double>(soa::layout_cost(
          seq, soa::liao_layout(seq, soa::SoaTieBreak::kNone))));
      tiebreak.add(static_cast<double>(soa::layout_cost(
          seq, soa::liao_layout(seq, soa::SoaTieBreak::kLeupers))));
    }
    table.add_row({
        std::to_string(variables),
        std::to_string(length),
        support::format_fixed(identity.mean(), 2),
        support::format_fixed(random.mean(), 2),
        support::format_fixed(liao.mean(), 2),
        support::format_fixed(tiebreak.mean(), 2),
        support::format_percent(support::percent_reduction(
            identity.mean(), liao.mean())),
    });
  }
  std::cout << "T6a: simple offset assignment (" << kTrials
            << " random sequences per row, auto-inc/dec range 1)\n\n";
  table.write(std::cout);
  std::cout << '\n';
}

void print_goa_table() {
  constexpr std::size_t kTrials = 30;
  support::Table table({"vars", "accesses", "k=1 (SOA)", "k=2", "k=3",
                        "k=4"});
  for (const auto& [variables, length] :
       std::vector<std::pair<std::size_t, std::size_t>>{{8, 60},
                                                        {14, 120}}) {
    std::vector<support::RunningStats> stats(4);
    support::Rng rng(0x60A ^ (variables * 31));
    for (std::size_t trial = 0; trial < kTrials; ++trial) {
      const auto seq = random_scalar_sequence(rng, variables, length);
      for (std::size_t k = 1; k <= 4; ++k) {
        stats[k - 1].add(static_cast<double>(
            soa::goa_allocate(seq, k).total_cost));
      }
    }
    table.add_row({
        std::to_string(variables),
        std::to_string(length),
        support::format_fixed(stats[0].mean(), 2),
        support::format_fixed(stats[1].mean(), 2),
        support::format_fixed(stats[2].mean(), 2),
        support::format_fixed(stats[3].mean(), 2),
    });
  }
  std::cout << "T6b: general offset assignment over k address registers ("
            << kTrials << " random sequences per row)\n\n";
  table.write(std::cout);
  std::cout << "\nExpected: cost falls monotonically with k "
               "(more address registers never hurt).\n\n";
}

void BM_LiaoLayout(benchmark::State& state) {
  support::Rng rng(4);
  const auto seq = random_scalar_sequence(
      rng, static_cast<std::size_t>(state.range(0)),
      static_cast<std::size_t>(state.range(0)) * 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        soa::liao_layout(seq, soa::SoaTieBreak::kLeupers));
  }
}
BENCHMARK(BM_LiaoLayout)->Arg(8)->Arg(32)->Arg(128);

void BM_GoaAllocate(benchmark::State& state) {
  support::Rng rng(4);
  const auto seq = random_scalar_sequence(rng, 12, 100);
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(soa::goa_allocate(seq, k).total_cost);
  }
}
BENCHMARK(BM_GoaAllocate)->Arg(2)->Arg(4);

}  // namespace

int main(int argc, char** argv) {
  print_soa_table();
  print_goa_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
