// Experiment T4 — ablation of the phase-2 pair-selection rule (paper
// section 3.2): "it is reasonable to select that pair (P_i, P_j) of
// paths for merging, such that C(P_i ⊕ P_j) is minimal among all
// pairs."
//
// Contenders on identical phase-1 covers:
//   min-merged-cost — the paper's rule,
//   min-delta       — minimize the cost *increase* instead,
//   first-pair      — the paper's naive baseline,
//   random-pair     — arbitrary merges, averaged over seeds.
// The table shows the mean final cost per (N, K); the paper's rule must
// never lose, and the arbitrary rules must trail clearly.
#include <benchmark/benchmark.h>

#include <iostream>

#include "core/access_graph.hpp"
#include "core/branch_and_bound.hpp"
#include "core/merging.hpp"
#include "eval/patterns.hpp"
#include "support/stats.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

namespace {

using namespace dspaddr;

const core::CostModel kModel{1, core::WrapPolicy::kCyclic};

double mean_cost_for_strategy(core::MergeStrategy strategy, std::size_t n,
                              std::size_t k, std::size_t trials) {
  support::RunningStats stats;
  support::Rng rng(0xAB1E ^ (n * 7) ^ (k * 131));
  for (std::size_t trial = 0; trial < trials; ++trial) {
    eval::PatternSpec spec;
    spec.accesses = n;
    spec.offset_range = 10;
    const ir::AccessSequence seq = eval::generate_pattern(spec, rng);
    const core::AccessGraph graph(seq, kModel);
    const auto cover = core::compute_min_register_cover(graph).cover;

    core::MergeOptions options;
    options.strategy = strategy;
    options.seed = trial + 1;
    const auto merged =
        core::merge_to_register_limit(seq, kModel, cover, k, options);
    stats.add(static_cast<double>(core::total_cost(seq, merged, kModel)));
  }
  return stats.mean();
}

void print_strategy_table() {
  constexpr std::size_t kTrials = 60;
  const std::vector<core::MergeStrategy> strategies{
      core::MergeStrategy::kMinMergedCost,
      core::MergeStrategy::kMinDelta,
      core::MergeStrategy::kFirstPair,
      core::MergeStrategy::kRandomPair,
  };

  std::vector<std::string> header{"N", "K"};
  for (const auto strategy : strategies) {
    header.push_back(core::to_string(strategy));
  }
  support::Table table(std::move(header));

  for (const std::size_t n : {20u, 40u, 80u}) {
    for (const std::size_t k : {1u, 2u, 4u, 8u}) {
      std::vector<std::string> row{std::to_string(n), std::to_string(k)};
      for (const auto strategy : strategies) {
        row.push_back(support::format_fixed(
            mean_cost_for_strategy(strategy, n, k, kTrials), 2));
      }
      table.add_row(std::move(row));
    }
    table.add_rule();
  }
  std::cout << "T4: phase-2 merge-selection ablation (mean final cost, "
            << kTrials << " uniform patterns per cell, M = 1)\n\n";
  table.write(std::cout);
  std::cout << "\nExpected: the two cost-guided rules (the paper's "
               "min-merged-cost and the min-delta variant) stay within a "
               "few percent of each other and far below the arbitrary "
               "first-pair / random-pair baselines.\n\n";
}

void BM_MergeStrategy(benchmark::State& state) {
  const auto strategy =
      static_cast<core::MergeStrategy>(state.range(0));
  support::Rng rng(77);
  eval::PatternSpec spec;
  spec.accesses = 60;
  spec.offset_range = 10;
  const ir::AccessSequence seq = eval::generate_pattern(spec, rng);
  const core::AccessGraph graph(seq, kModel);
  const auto cover = core::compute_min_register_cover(graph).cover;
  core::MergeOptions options;
  options.strategy = strategy;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::merge_to_register_limit(seq, kModel, cover, 2, options));
  }
}
BENCHMARK(BM_MergeStrategy)
    ->Arg(static_cast<int>(core::MergeStrategy::kMinMergedCost))
    ->Arg(static_cast<int>(core::MergeStrategy::kFirstPair));

}  // namespace

int main(int argc, char** argv) {
  print_strategy_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
