// Experiment T1 — the paper's Results section (section 4):
// "We have determined the number of unit-cost address computations for
//  random access patterns and a variety of parameters N, M, and K. As a
//  result, we have observed that the address register allocation
//  determined by path merging reduces the addressing cost by about 40 %
//  on the average, as compared to the 'naive' solution."
//
// This bench regenerates that statistic: for every (N, M, K) cell of
// the grid it prints the mean unit-cost count of the naive
// (arbitrary-merge) allocator, of the path-merging heuristic, and the
// percentage reduction; the grand average is the paper's headline
// number. Timing of the two allocators is reported via google-benchmark
// afterwards.
#include <benchmark/benchmark.h>

#include <iostream>

#include "baselines/baselines.hpp"
#include "eval/experiment.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

namespace {

using namespace dspaddr;

void print_sweep_table() {
  eval::SweepConfig config = eval::SweepConfig::paper_grid();
  const eval::SweepResult result = eval::run_random_pattern_sweep(config);

  support::Table table({"N", "M", "K", "K~ (mean)", "naive cost",
                        "path-merge cost", "reduction"});
  std::size_t previous_n = 0;
  for (const eval::CellResult& cell : result.cells) {
    if (previous_n != 0 && cell.cell.accesses != previous_n) {
      table.add_rule();
    }
    previous_n = cell.cell.accesses;
    table.add_row({
        std::to_string(cell.cell.accesses),
        std::to_string(cell.cell.modify_range),
        std::to_string(cell.cell.registers),
        support::format_fixed(cell.k_tilde.mean(), 1),
        support::format_fixed(cell.naive_cost.mean(), 2),
        support::format_fixed(cell.merged_cost.mean(), 2),
        support::format_percent(cell.mean_reduction_percent),
    });
  }
  std::cout << "T1: random access patterns, path merging vs naive "
               "allocator\n"
            << "(" << config.trials << " seeded trials per cell)\n\n";
  table.write(std::cout);
  std::cout << "\nGrand average reduction (cells with nonzero naive "
               "cost): "
            << support::format_percent(
                   result.grand_mean_reduction_percent)
            << "   [paper: ~40 %]\n\n";
}

void BM_PathMergeAllocator(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  support::Rng rng(1234);
  eval::PatternSpec spec;
  spec.accesses = n;
  spec.offset_range = 10;
  const ir::AccessSequence seq = eval::generate_pattern(spec, rng);
  core::ProblemConfig config;
  config.modify_range = 1;
  config.registers = 4;
  const core::RegisterAllocator allocator(config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(allocator.run(seq).cost());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_PathMergeAllocator)->Arg(10)->Arg(50)->Arg(100);

void BM_NaiveAllocator(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  support::Rng rng(1234);
  eval::PatternSpec spec;
  spec.accesses = n;
  spec.offset_range = 10;
  const ir::AccessSequence seq = eval::generate_pattern(spec, rng);
  core::ProblemConfig config;
  config.modify_range = 1;
  config.registers = 4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        baselines::naive_allocate(seq, config).cost());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_NaiveAllocator)->Arg(10)->Arg(50)->Arg(100);

}  // namespace

int main(int argc, char** argv) {
  print_sweep_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
