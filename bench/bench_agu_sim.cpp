// Experiment T5 — soundness of the zero-cost / unit-cost partitioning
// (paper section 2) demonstrated on executable code: for every kernel
// and for random patterns, the AGU simulator executes the generated
// address program and the observed extra address instructions must
// equal (allocation cost) x (iterations), with every USE seeing the
// demanded address.
#include <benchmark/benchmark.h>

#include <iostream>

#include "agu/codegen.hpp"
#include "agu/simulator.hpp"
#include "core/allocator.hpp"
#include "eval/patterns.hpp"
#include "ir/kernels.hpp"
#include "ir/layout.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

namespace {

using namespace dspaddr;

void print_kernel_validation_table() {
  support::Table table({"kernel", "K", "analytic cost", "iterations",
                        "extra instrs (sim)", "predicted", "verified"});
  for (const ir::Kernel& kernel : ir::builtin_kernels()) {
    for (const std::size_t k : {2u, 4u}) {
      core::ProblemConfig config;
      config.modify_range = 1;
      config.registers = k;
      const ir::AccessSequence seq = ir::lower(kernel);
      const core::Allocation a =
          core::RegisterAllocator(config).run(seq);
      const agu::Program p = agu::generate_code(seq, a);
      const std::uint64_t iterations =
          static_cast<std::uint64_t>(kernel.iterations());
      const agu::SimResult r = agu::Simulator{}.run(p, seq, iterations);
      const std::uint64_t predicted =
          iterations * static_cast<std::uint64_t>(a.cost());
      table.add_row({
          kernel.name(),
          std::to_string(k),
          std::to_string(a.cost()),
          std::to_string(iterations),
          std::to_string(r.extra_instructions),
          std::to_string(predicted),
          (r.verified && r.extra_instructions == predicted) ? "yes"
                                                            : "NO",
      });
    }
  }
  std::cout << "T5: simulator vs analytic cost model (M = 1)\n\n";
  table.write(std::cout);
  std::cout << "\nEvery row must read 'yes': the simulator-counted "
               "extra address instructions equal cost x iterations and "
               "all addresses verified.\n\n";
}

void BM_SimulatorThroughput(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  support::Rng rng(9);
  eval::PatternSpec spec;
  spec.accesses = n;
  spec.offset_range = 10;
  const ir::AccessSequence seq = eval::generate_pattern(spec, rng);
  core::ProblemConfig config;
  config.modify_range = 1;
  config.registers = 4;
  const core::Allocation a = core::RegisterAllocator(config).run(seq);
  const agu::Program p = agu::generate_code(seq, a);
  const agu::Simulator simulator;
  constexpr std::uint64_t kIterations = 256;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        simulator.run(p, seq, kIterations).extra_instructions);
  }
  state.SetItemsProcessed(
      state.iterations() *
      static_cast<std::int64_t>(kIterations * seq.size()));
}
BENCHMARK(BM_SimulatorThroughput)->Arg(8)->Arg(32)->Arg(128);

void BM_Codegen(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  support::Rng rng(9);
  eval::PatternSpec spec;
  spec.accesses = n;
  spec.offset_range = 10;
  const ir::AccessSequence seq = eval::generate_pattern(spec, rng);
  core::ProblemConfig config;
  config.modify_range = 1;
  config.registers = 4;
  const core::Allocation a = core::RegisterAllocator(config).run(seq);
  for (auto _ : state) {
    benchmark::DoNotOptimize(agu::generate_code(seq, a).body.size());
  }
}
BENCHMARK(BM_Codegen)->Arg(8)->Arg(128);

}  // namespace

int main(int argc, char** argv) {
  print_kernel_validation_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
