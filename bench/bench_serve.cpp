// Serve pipeline throughput: JSON-lines requests/sec through
// cli::run_serve at --jobs 1 / 4 / 8 on a cache-miss-heavy workload —
// the number that justifies the pipelined reader → TaskPool → ordered
// writer architecture over the old sequential read-eval-print loop.
//
// Every request in the workload is distinct (kernel × K × M with the
// exact phase-2 solver) and the cache is disabled, so each line pays
// the full pass sequence: the measured speedup is pure pipeline
// parallelism, not memoization. The printed summary reports jobs=8 vs
// jobs=1 and flags < 2x as a regression — on hosts with fewer than 4
// hardware threads the gate is informational only, since the scaling
// physically cannot happen there.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cli/serve.hpp"
#include "ir/kernels.hpp"

namespace {

using namespace dspaddr;

/// The cache-miss-heavy workload: every builtin kernel across K in
/// {1,2,3,4} and M in {0,1,2}, exact phase 2, a moderate simulated
/// block — no two lines share a fingerprint.
std::string workload_jsonl(std::size_t* line_count) {
  std::ostringstream lines;
  std::size_t count = 0;
  for (const ir::Kernel& kernel : ir::builtin_kernels()) {
    for (int registers = 1; registers <= 4; ++registers) {
      for (int modify_range = 0; modify_range <= 2; ++modify_range) {
        lines << "{\"builtin\":\"" << kernel.name()
              << "\",\"registers\":" << registers
              << ",\"modify_range\":" << modify_range
              << ",\"phase2\":\"exact\",\"iterations\":2048}\n";
        ++count;
      }
    }
  }
  *line_count = count;
  return lines.str();
}

/// One full serve session over the workload; returns requests/sec.
double serve_requests_per_second(const std::string& input,
                                 std::size_t lines, std::size_t jobs) {
  cli::ServeOptions options;
  options.cache_capacity = 0;  // every request recomputes
  options.jobs = jobs;
  std::istringstream in(input);
  std::ostringstream out;
  const auto start = std::chrono::steady_clock::now();
  cli::run_serve(in, out, options);
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start)
          .count();
  return static_cast<double>(lines) / seconds;
}

void BM_ServePipeline(benchmark::State& state) {
  std::size_t lines = 0;
  const std::string input = workload_jsonl(&lines);
  const std::size_t jobs = static_cast<std::size_t>(state.range(0));
  std::size_t processed = 0;
  for (auto _ : state) {
    cli::ServeOptions options;
    options.cache_capacity = 0;
    options.jobs = jobs;
    std::istringstream in(input);
    std::ostringstream out;
    cli::run_serve(in, out, options);
    benchmark::DoNotOptimize(out);
    processed += lines;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(processed));
}
BENCHMARK(BM_ServePipeline)->Arg(1)->Arg(4)->Arg(8)->Unit(
    benchmark::kMillisecond);

/// One-shot summary printed before the benchmark table: requests/sec
/// per jobs level and the jobs=8 vs jobs=1 speedup gate.
void print_speedup_summary() {
  std::size_t lines = 0;
  const std::string input = workload_jsonl(&lines);

  std::cout << "=== Serve pipeline throughput (cache-miss workload, "
            << lines << " distinct requests) ===\n";
  double rps1 = 0.0;
  double rps8 = 0.0;
  for (const std::size_t jobs : {std::size_t{1}, std::size_t{4},
                                 std::size_t{8}}) {
    const double rps = serve_requests_per_second(input, lines, jobs);
    std::cout << "  jobs=" << jobs << ": "
              << static_cast<std::int64_t>(rps) << " req/s\n";
    if (jobs == 1) {
      rps1 = rps;
    }
    if (jobs == 8) {
      rps8 = rps;
    }
  }
  const double speedup = rps8 / rps1;
  const unsigned hardware = std::thread::hardware_concurrency();
  std::cout << "  speedup (jobs=8 vs jobs=1): " << speedup << "x  ";
  if (hardware < 4) {
    std::cout << "(" << hardware
              << "-core host: 2x gate not enforced)\n\n";
  } else {
    std::cout << (speedup >= 2.0 ? "(>= 2x: OK)" : "(< 2x: REGRESSION)")
              << "\n\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  print_speedup_summary();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
