// Experiment T11 (extension) — the kernel suite across AGU
// configurations modeled after real DSP families.
//
// The paper's parameters (K, M) plus the modify-register count span the
// practical AGU design space; this bench shows, per kernel, the
// per-iteration addressing cost that remains on each machine model —
// i.e. where extra address registers pay off and where modify
// registers do. Every cell is simulator-verified.
#include <benchmark/benchmark.h>

#include <iostream>

#include "agu/machines.hpp"
#include "ir/kernels.hpp"
#include "support/stats.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

namespace {

using namespace dspaddr;

void print_machine_table() {
  const auto machines = agu::builtin_machines();
  std::vector<std::string> header{"kernel"};
  for (const agu::AguSpec& machine : machines) {
    header.push_back(machine.name);
  }
  support::Table table(std::move(header));

  std::vector<support::RunningStats> per_machine(machines.size());
  bool all_verified = true;
  for (const ir::Kernel& kernel : ir::builtin_kernels()) {
    std::vector<std::string> row{kernel.name()};
    for (std::size_t m = 0; m < machines.size(); ++m) {
      const agu::MachineRunReport report =
          agu::run_on_machine(kernel, machines[m]);
      all_verified = all_verified && report.verified;
      per_machine[m].add(report.residual_cost);
      row.push_back(std::to_string(report.residual_cost) +
                    (report.verified ? "" : " !"));
    }
    table.add_row(std::move(row));
  }
  std::vector<std::string> mean_row{"MEAN"};
  for (const auto& stats : per_machine) {
    mean_row.push_back(support::format_fixed(stats.mean(), 2));
  }
  table.add_rule();
  table.add_row(std::move(mean_row));

  std::cout << "T11: residual addressing cost per iteration across AGU "
               "models (simulator-verified: "
            << (all_verified ? "all" : "FAILURES PRESENT") << ")\n\n";
  for (const agu::AguSpec& machine : machines) {
    std::cout << "  " << machine.name
              << ": K=" << machine.address_registers()
              << ", MRs=" << machine.modify_registers()
              << ", M=" << machine.modify_range() << " — "
              << machine.description << '\n';
  }
  std::cout << '\n';
  table.write(std::cout);
  std::cout << '\n';
}

void BM_RunOnMachine(benchmark::State& state) {
  const ir::Kernel kernel = ir::filter2d_3x3_kernel(32);
  const auto machines = agu::builtin_machines();
  const agu::AguSpec machine =
      machines[static_cast<std::size_t>(state.range(0)) % machines.size()];
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        agu::run_on_machine(kernel, machine).residual_cost);
  }
}
BENCHMARK(BM_RunOnMachine)->Arg(0)->Arg(2)->Arg(4);

}  // namespace

int main(int argc, char** argv) {
  print_machine_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
