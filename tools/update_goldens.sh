#!/usr/bin/env bash
# Regenerates tests/golden/*.csv from the dspaddr CLI.
#
# The goldens pin the batch CSV schema and the default-path results; the
# EngineParity tests diff freshly computed sweeps against them byte for
# byte. Rerun this script (and eyeball the git diff!) whenever the CSV
# schema or the default pipeline's numbers intentionally change.
#
# usage: tools/update_goldens.sh [build-dir]   (default: build)
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build}"
dspaddr="$build/dspaddr"

if [[ ! -x "$dspaddr" ]]; then
  echo "error: $dspaddr not built (cmake --build $build)" >&2
  exit 1
fi

# The builtin grid of EngineParity.BuiltinGridMatchesGoldenCsv.
"$dspaddr" batch \
  --builtin fir,biquad,matmul \
  --machines minimal2,wide4,adsp218x \
  --registers 1,2,4 \
  --modify-range 1,2 \
  --jobs 4 \
  --out "$repo/tests/golden/batch_small_grid.csv"

# The workload grid of EngineParity.WorkloadGridMatchesGoldenCsv
# (every workload file across the whole machine catalog).
"$dspaddr" batch \
  --kernel "$repo/workloads/fir16.kern" \
  --kernel "$repo/workloads/gradient.c" \
  --kernel "$repo/workloads/paper_example.c" \
  --kernel "$repo/workloads/smooth3.c" \
  --kernel "$repo/workloads/stereo_mix.kern" \
  --jobs 4 \
  --out "$repo/tests/golden/batch_workloads.csv"

# The registry-wide grid of EngineParity.MachineRegistryGridMatchesGoldenCsv
# (builtin catalog plus every shipped file-only .machine target, so the
# declarative loader's asymmetric windows, free widths and pre-modify
# addressing are all pinned byte for byte).
"$dspaddr" batch \
  --builtin fir,biquad \
  --machine-file "$repo/workloads/machines/msp430x.machine" \
  --machine-file "$repo/workloads/machines/arm946e.machine" \
  --machine-file "$repo/workloads/machines/dsp56300.machine" \
  --machine-file "$repo/workloads/machines/arm946e_wb.machine" \
  --jobs 4 \
  --out "$repo/tests/golden/batch_machines_grid.csv"

echo "regenerated:"
git -C "$repo" --no-pager diff --stat -- tests/golden || true
