// Entry point of the dspaddr command-line tool.
#include <iostream>
#include <string>
#include <vector>

#include "cli/app.hpp"

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  return dspaddr::cli::run_cli(args, std::cout, std::cerr);
}
