#include "core/branch_and_bound.hpp"

#include <gtest/gtest.h>

#include "core/validate.hpp"
#include "eval/patterns.hpp"
#include "support/rng.hpp"

namespace dspaddr::core {
namespace {

using ir::Access;
using ir::AccessSequence;

void expect_zero_cost_cover(const AccessSequence& seq,
                            const CostModel& model,
                            const std::vector<Path>& cover) {
  validate_allocation(seq, cover, cover.size());
  EXPECT_EQ(total_cost(seq, cover, model), 0);
}

TEST(Phase1, EmptySequenceNeedsNoRegisters) {
  const AccessGraph g(AccessSequence{}, CostModel{1, WrapPolicy::kCyclic});
  const Phase1Result r = compute_min_register_cover(g);
  EXPECT_EQ(r.k_tilde, std::size_t{0});
  EXPECT_TRUE(r.exact);
  EXPECT_TRUE(r.cover.empty());
}

TEST(Phase1, SingleAccessNeedsOneRegister) {
  const auto seq = AccessSequence::from_offsets({5});
  const AccessGraph g(seq, CostModel{1, WrapPolicy::kCyclic});
  const Phase1Result r = compute_min_register_cover(g);
  EXPECT_EQ(r.k_tilde, std::size_t{1});
  expect_zero_cost_cover(seq, g.model(), r.cover);
}

TEST(Phase1, MonotoneRampIsOneRegister) {
  const auto seq = AccessSequence::from_offsets({0, 1, 2, 3, 4});
  const AccessGraph g(seq, CostModel{1, WrapPolicy::kAcyclic});
  const Phase1Result r = compute_min_register_cover(g);
  EXPECT_EQ(r.k_tilde, std::size_t{1});
  EXPECT_TRUE(r.exact);
}

TEST(Phase1, PaperExampleAcyclicNeedsTwoRegisters) {
  // Cover {(a_1,a_3,a_5,a_6), (a_2,a_4,a_7)} shows 2 suffice when the
  // loop back-edge is not charged; the matching bound shows 2 are
  // necessary.
  const auto seq = AccessSequence::from_offsets({1, 0, 2, -1, 1, 0, -2});
  const AccessGraph g(seq, CostModel{1, WrapPolicy::kAcyclic});
  const Phase1Result r = compute_min_register_cover(g);
  EXPECT_EQ(r.k_tilde, std::size_t{2});
  EXPECT_EQ(r.lower_bound, 2u);
  EXPECT_TRUE(r.exact);
  expect_zero_cost_cover(seq, g.model(), r.cover);
}

TEST(Phase1, PaperExampleCyclicNeedsThreeRegisters) {
  // With the steady-state wrap charged, any path containing a_7 other
  // than the singleton cannot close for free, and the remaining six
  // accesses admit no single zero-cost cyclic path; three registers
  // (e.g. (a_1,a_3,a_5), (a_2,a_4,a_6), (a_7)) are optimal.
  const auto seq = AccessSequence::from_offsets({1, 0, 2, -1, 1, 0, -2});
  const AccessGraph g(seq, CostModel{1, WrapPolicy::kCyclic});
  Phase1Options options;
  options.mode = Phase1Options::Mode::kExact;
  const Phase1Result r = compute_min_register_cover(g, options);
  EXPECT_EQ(r.k_tilde, std::size_t{3});
  EXPECT_TRUE(r.exact);
  expect_zero_cost_cover(seq, g.model(), r.cover);
  EXPECT_GE(*r.k_tilde, r.lower_bound);
}

TEST(Phase1, GreedyUpperBoundIsValidCover) {
  const auto seq = AccessSequence::from_offsets({1, 0, 2, -1, 1, 0, -2});
  const AccessGraph g(seq, CostModel{1, WrapPolicy::kCyclic});
  const auto greedy = greedy_zero_cost_cover(g);
  ASSERT_TRUE(greedy.has_value());
  expect_zero_cost_cover(seq, g.model(), *greedy);
}

TEST(Phase1, HeuristicModeSkipsSearch) {
  const auto seq = AccessSequence::from_offsets({1, 0, 2, -1, 1, 0, -2});
  const AccessGraph g(seq, CostModel{1, WrapPolicy::kCyclic});
  Phase1Options options;
  options.mode = Phase1Options::Mode::kHeuristic;
  const Phase1Result r = compute_min_register_cover(g, options);
  EXPECT_EQ(r.search_nodes, 0u);
  ASSERT_TRUE(r.k_tilde.has_value());
  expect_zero_cost_cover(seq, g.model(), r.cover);
  // The heuristic may be off optimum but never below the bound.
  EXPECT_GE(*r.k_tilde, r.lower_bound);
}

TEST(Phase1, StrideBeyondRangeMakesZeroCostInfeasible) {
  // Every access advances by 3 per iteration but M = 1: even singleton
  // paths cost one update, so no zero-cost cover exists.
  const auto seq = AccessSequence::from_offsets({0, 10, 20}, 3);
  const AccessGraph g(seq, CostModel{1, WrapPolicy::kCyclic});
  Phase1Options options;
  options.mode = Phase1Options::Mode::kExact;
  const Phase1Result r = compute_min_register_cover(g, options);
  EXPECT_FALSE(r.k_tilde.has_value());
  EXPECT_TRUE(r.exact);
  // Fallback cover still covers everything.
  validate_allocation(seq, r.cover, r.cover.size());
}

TEST(Phase1, LargeStrideCanStillCloseInPairs) {
  // Stride 2, M = 1: singletons cost (distance 2), but a pair with
  // offsets o and o+1 closes: wrap distance = o + 2 - (o+1) = 1.
  const auto seq = AccessSequence::from_offsets({0, 1}, 2);
  const AccessGraph g(seq, CostModel{1, WrapPolicy::kCyclic});
  Phase1Options options;
  options.mode = Phase1Options::Mode::kExact;
  const Phase1Result r = compute_min_register_cover(g, options);
  ASSERT_TRUE(r.k_tilde.has_value());
  EXPECT_EQ(*r.k_tilde, 1u);
  expect_zero_cost_cover(seq, g.model(), r.cover);
}

TEST(Phase1, WiderModifyRangeNeverNeedsMoreRegisters) {
  const auto seq = AccessSequence::from_offsets({3, -1, 4, 1, -5, 9, 2, -6});
  Phase1Options options;
  options.mode = Phase1Options::Mode::kExact;
  std::size_t previous = seq.size() + 1;
  for (std::int64_t m : {1, 2, 4, 8, 16}) {
    const AccessGraph g(seq, CostModel{m, WrapPolicy::kCyclic});
    const Phase1Result r = compute_min_register_cover(g, options);
    ASSERT_TRUE(r.k_tilde.has_value()) << "M = " << m;
    EXPECT_LE(*r.k_tilde, previous) << "M = " << m;
    previous = *r.k_tilde;
  }
}

/// Oracle: exact minimum zero-cost cyclic cover by exhaustive
/// assignment (tiny N).
std::optional<std::size_t> brute_force_k_tilde(const AccessSequence& seq,
                                               const CostModel& model) {
  const std::size_t n = seq.size();
  std::vector<std::size_t> assignment(n, 0);
  std::optional<std::size_t> best;
  while (true) {
    std::vector<std::vector<std::size_t>> groups(n);
    for (std::size_t i = 0; i < n; ++i) {
      groups[assignment[i]].push_back(i);
    }
    std::vector<Path> paths;
    for (auto& group : groups) {
      if (!group.empty()) paths.emplace_back(std::move(group));
    }
    if (total_cost(seq, paths, model) == 0) {
      if (!best.has_value() || paths.size() < *best) best = paths.size();
    }
    std::size_t digit = 0;
    while (digit < n) {
      if (++assignment[digit] < n) break;
      assignment[digit] = 0;
      ++digit;
    }
    if (digit == n) break;
  }
  return best;
}

class Phase1PropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Phase1PropertyTest, BranchAndBoundMatchesBruteForce) {
  support::Rng rng(GetParam());
  const std::size_t n = 2 + rng.index(6);  // up to 7 accesses
  std::vector<std::int64_t> offsets(n);
  for (auto& o : offsets) {
    o = rng.uniform_int(-4, 4);
  }
  const auto seq = AccessSequence::from_offsets(offsets);
  const CostModel model{1 + rng.uniform_int(0, 1), WrapPolicy::kCyclic};
  const AccessGraph g(seq, model);

  Phase1Options options;
  options.mode = Phase1Options::Mode::kExact;
  const Phase1Result r = compute_min_register_cover(g, options);
  const auto oracle = brute_force_k_tilde(seq, model);

  ASSERT_TRUE(r.exact);
  ASSERT_EQ(r.k_tilde.has_value(), oracle.has_value());
  if (oracle.has_value()) {
    EXPECT_EQ(*r.k_tilde, *oracle);
    expect_zero_cost_cover(seq, model, r.cover);
    EXPECT_GE(*r.k_tilde, r.lower_bound);
    if (r.upper_bound.has_value()) {
      EXPECT_LE(*r.k_tilde, *r.upper_bound);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, Phase1PropertyTest,
                         ::testing::Range<std::uint64_t>(0, 60));

class Phase1BoundsSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Phase1BoundsSweep, BoundsBracketKTildeOnMediumPatterns) {
  support::Rng rng(GetParam() * 7919 + 13);
  eval::PatternSpec spec;
  spec.accesses = 16 + rng.index(8);
  spec.offset_range = 8;
  const auto seq = eval::generate_pattern(spec, rng);
  const AccessGraph g(seq, CostModel{1, WrapPolicy::kCyclic});

  Phase1Options options;
  options.mode = Phase1Options::Mode::kExact;
  const Phase1Result r = compute_min_register_cover(g, options);
  ASSERT_TRUE(r.k_tilde.has_value());
  EXPECT_GE(*r.k_tilde, r.lower_bound);
  ASSERT_TRUE(r.upper_bound.has_value());
  EXPECT_LE(*r.k_tilde, *r.upper_bound);
  expect_zero_cost_cover(seq, g.model(), r.cover);
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, Phase1BoundsSweep,
                         ::testing::Range<std::uint64_t>(0, 20));

}  // namespace
}  // namespace dspaddr::core
