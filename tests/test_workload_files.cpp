// Every workload file shipped in workloads/ must parse, allocate and
// simulate cleanly — the repo's own samples may never rot.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "agu/codegen.hpp"
#include "agu/simulator.hpp"
#include "core/allocator.hpp"
#include "ir/layout.hpp"
#include "ir/loop_parser.hpp"
#include "ir/parser.hpp"

namespace dspaddr {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream file(path);
  EXPECT_TRUE(file.good()) << "missing workload file " << path
                           << " (run tests from the build tree; paths "
                              "are relative to the repo root)";
  std::ostringstream content;
  content << file.rdbuf();
  return content.str();
}

void check_kernel(const ir::Kernel& kernel) {
  const ir::AccessSequence seq = ir::lower(kernel);
  ASSERT_FALSE(seq.empty());
  core::ProblemConfig config;
  config.modify_range = 1;
  config.registers = 2;
  const core::Allocation a = core::RegisterAllocator(config).run(seq);
  const agu::Program p = agu::generate_code(seq, a);
  const agu::SimResult r = agu::Simulator{}.run(
      p, seq, static_cast<std::uint64_t>(kernel.iterations()));
  EXPECT_TRUE(r.verified) << kernel.name() << ": " << r.failure;
}

const std::string kRoot = std::string(DSPADDR_SOURCE_DIR) + "/workloads/";

TEST(WorkloadFiles, PaperExampleC) {
  const ir::Kernel k =
      ir::parse_c_loop(read_file(kRoot + "paper_example.c"), "paper");
  EXPECT_EQ(k.accesses().size(), 7u);
  EXPECT_EQ(k.iterations(), 32);
  check_kernel(k);
}

TEST(WorkloadFiles, Smooth3C) {
  const ir::Kernel k =
      ir::parse_c_loop(read_file(kRoot + "smooth3.c"), "smooth3");
  EXPECT_EQ(k.accesses().size(), 4u);
  EXPECT_TRUE(k.accesses().back().is_write);
  check_kernel(k);
}

TEST(WorkloadFiles, GradientC) {
  const ir::Kernel k =
      ir::parse_c_loop(read_file(kRoot + "gradient.c"), "gradient");
  EXPECT_EQ(k.accesses().size(), 6u);
  EXPECT_EQ(k.data_ops(), 2);
  check_kernel(k);
}

TEST(WorkloadFiles, Fir16Kern) {
  const ir::Kernel k = ir::parse_kernel(read_file(kRoot + "fir16.kern"));
  EXPECT_EQ(k.name(), "fir16");
  check_kernel(k);
}

TEST(WorkloadFiles, StereoMixKern) {
  const ir::Kernel k =
      ir::parse_kernel(read_file(kRoot + "stereo_mix.kern"));
  EXPECT_EQ(k.accesses()[0].stride, 2);
  check_kernel(k);
}

}  // namespace
}  // namespace dspaddr
