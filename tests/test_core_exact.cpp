#include "core/exact.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <vector>

#include "core/allocator.hpp"
#include "core/validate.hpp"
#include "eval/patterns.hpp"
#include "support/rng.hpp"

namespace dspaddr::core {
namespace {

using ir::AccessSequence;

const CostModel kM1{1, WrapPolicy::kCyclic};

TEST(ExactAllocator, EmptySequence) {
  const ExactResult r = exact_min_cost_allocation(AccessSequence{}, kM1, 2);
  EXPECT_EQ(r.cost, 0);
  EXPECT_TRUE(r.proven);
  EXPECT_TRUE(r.paths.empty());
}

TEST(ExactAllocator, RejectsZeroRegisters) {
  const auto seq = AccessSequence::from_offsets({0});
  EXPECT_THROW(exact_min_cost_allocation(seq, kM1, 0),
               dspaddr::InvalidArgument);
}

TEST(ExactAllocator, SingleRegisterCostIsForced) {
  // With K = 1 there is exactly one partition; exact == that cost.
  const auto seq = AccessSequence::from_offsets({1, 0, 2, -1, 1, 0, -2});
  const ExactResult r = exact_min_cost_allocation(seq, kM1, 1);
  EXPECT_TRUE(r.proven);
  EXPECT_EQ(r.cost, 5);  // 4 intra over-range steps + wrap
}

TEST(ExactAllocator, PaperExampleLadder) {
  const auto seq = AccessSequence::from_offsets({1, 0, 2, -1, 1, 0, -2});
  const std::vector<std::pair<std::size_t, int>> ladder{
      {1, 5}, {2, 2}, {3, 0}, {7, 0}};
  for (const auto& [k, expected] : ladder) {
    const ExactResult r = exact_min_cost_allocation(seq, kM1, k);
    EXPECT_TRUE(r.proven) << "K = " << k;
    EXPECT_EQ(r.cost, expected) << "K = " << k;
    validate_allocation(seq, r.paths, k);
  }
}

TEST(ExactAllocator, HeuristicIsOptimalOnPaperExample) {
  // The two-phase heuristic hits the exact optimum on the worked
  // example for every K — the example was chosen to showcase it.
  const auto seq = AccessSequence::from_offsets({1, 0, 2, -1, 1, 0, -2});
  for (std::size_t k = 1; k <= 4; ++k) {
    ProblemConfig config;
    config.modify_range = 1;
    config.registers = k;
    config.phase1.mode = Phase1Options::Mode::kExact;
    const int heuristic = RegisterAllocator(config).run(seq).cost();
    const int exact = exact_min_cost_allocation(seq, kM1, k).cost;
    EXPECT_EQ(heuristic, exact) << "K = " << k;
  }
}

TEST(ExactAllocator, NodeCapDegradesGracefully) {
  support::Rng rng(5);
  eval::PatternSpec spec;
  spec.accesses = 12;
  spec.offset_range = 6;
  const auto seq = eval::generate_pattern(spec, rng);
  ExactOptions options;
  options.max_nodes = 10;  // far too small to finish
  options.use_bounds = false;  // keep the search from finishing anyway
  options.use_dominance = false;
  const ExactResult r = exact_min_cost_allocation(seq, kM1, 3, options);
  EXPECT_FALSE(r.proven);
  // Still a valid allocation (the greedy incumbent at worst) with a
  // reported anytime gap against the admissible root bound.
  validate_allocation(seq, r.paths, 3);
  EXPECT_LE(r.lower_bound, r.cost);
  EXPECT_EQ(r.gap(), r.cost - r.lower_bound);
  EXPECT_GE(r.gap(), 0);
}

TEST(ExactAllocator, ProvenResultReportsZeroGap) {
  const auto seq = AccessSequence::from_offsets({1, 0, 2, -1, 1, 0, -2});
  const ExactResult r = exact_min_cost_allocation(seq, kM1, 2);
  ASSERT_TRUE(r.proven);
  EXPECT_EQ(r.lower_bound, r.cost);
  EXPECT_EQ(r.gap(), 0);
}

TEST(ExactAllocator, ProvesTwentyAccessPatternsAcrossFamilies) {
  // The old incumbent-only DFS aborted on most 20-access instances;
  // the bounded search must prove all of them within the default node
  // budget (acceptance criterion of the anytime rebuild).
  const std::vector<eval::PatternFamily> families = {
      eval::PatternFamily::kUniform, eval::PatternFamily::kClustered,
      eval::PatternFamily::kStrided, eval::PatternFamily::kSortedNoise};
  for (const eval::PatternFamily family : families) {
    for (const std::size_t k : {2u, 4u}) {
      support::Rng rng(0xF00D ^ (static_cast<std::uint64_t>(family) << 8) ^
                       k);
      for (std::size_t trial = 0; trial < 3; ++trial) {
        eval::PatternSpec spec;
        spec.accesses = 20;
        spec.offset_range = 8;
        spec.family = family;
        const auto seq = eval::generate_pattern(spec, rng);
        const ExactResult r = exact_min_cost_allocation(seq, kM1, k);
        EXPECT_TRUE(r.proven)
            << eval::to_string(family) << " K=" << k << " trial " << trial;
        validate_allocation(seq, r.paths, k);
      }
    }
  }
}

TEST(ExactAllocator, WarmStartNeverWorsensAndStaysValid) {
  support::Rng rng(77);
  eval::PatternSpec spec;
  spec.accesses = 14;
  spec.offset_range = 6;
  const auto seq = eval::generate_pattern(spec, rng);

  ProblemConfig config;
  config.modify_range = 1;
  config.registers = 2;
  config.phase2.mode = Phase2Options::Mode::kHeuristic;
  const Allocation heuristic = RegisterAllocator(config).run(seq);

  ExactOptions options;
  options.warm_start = heuristic.paths();
  const ExactResult r = exact_min_cost_allocation(seq, kM1, 2, options);
  EXPECT_LE(r.cost, heuristic.cost());
  validate_allocation(seq, r.paths, 2);
}

TEST(ExactAllocator, HugeSequenceDegradesWithoutDenseBounds) {
  // Above SuffixBounds::kDenseLimit the O(N^2) tables are skipped and
  // the search must still return a valid incumbent under the node cap
  // instead of exhausting memory up front.
  support::Rng rng(8);
  eval::PatternSpec spec;
  spec.accesses = 1500;
  spec.offset_range = 50;
  const auto seq = eval::generate_pattern(spec, rng);
  ExactOptions options;
  options.max_nodes = 5'000;
  const ExactResult r = exact_min_cost_allocation(seq, kM1, 4, options);
  EXPECT_FALSE(r.proven);
  validate_allocation(seq, r.paths, 4);
  EXPECT_EQ(r.lower_bound, 0);  // trivial bounds in effect
  EXPECT_EQ(r.gap(), r.cost);
}

TEST(ExactAllocator, RejectsMalformedWarmStart) {
  const auto seq = AccessSequence::from_offsets({0, 1, 2, 3});

  ExactOptions incomplete;
  incomplete.warm_start = {Path({0, 1})};  // misses accesses 2 and 3
  EXPECT_THROW(exact_min_cost_allocation(seq, kM1, 1, incomplete),
               dspaddr::InvalidArgument);

  // Overlapping paths fill every assignment slot but double-count the
  // shared access; a cover check alone would let the double-counted
  // cost seed an unachievable incumbent.
  ExactOptions overlapping;
  overlapping.warm_start = {Path({0, 1, 2}), Path({1, 3})};
  EXPECT_THROW(exact_min_cost_allocation(seq, kM1, 2, overlapping),
               dspaddr::InvalidArgument);

  ExactOptions out_of_range;
  out_of_range.warm_start = {Path({0, 1, 2, 3, 9})};
  EXPECT_THROW(exact_min_cost_allocation(seq, kM1, 1, out_of_range),
               dspaddr::InvalidArgument);
}

TEST(ExactAllocator, TimeBudgetExpiryKeepsValidIncumbent) {
  // A wall-clock abort must behave exactly like the node cap: best
  // incumbent kept, proven=false, non-negative anytime gap. The
  // instance is far too hard for a 1 ms budget on any machine (the
  // clock is read every ~1024 nodes, so the search stops at the first
  // batch boundary past the deadline).
  support::Rng rng(0xBD6);
  eval::PatternSpec spec;
  spec.accesses = 64;
  spec.offset_range = 8;
  spec.family = eval::PatternFamily::kSortedNoise;
  const auto seq = eval::generate_pattern(spec, rng);
  ExactOptions options;
  options.time_budget_ms = 1;
  options.max_nodes = std::numeric_limits<std::uint64_t>::max();
  const ExactResult r = exact_min_cost_allocation(seq, kM1, 3, options);
  EXPECT_FALSE(r.proven);
  validate_allocation(seq, r.paths, 3);
  EXPECT_EQ(total_cost(seq, r.paths, kM1), r.cost);
  EXPECT_LE(r.lower_bound, r.cost);
  EXPECT_GE(r.gap(), 0);
}

TEST(ExactAllocator, TableCapSaturationIsCountedWithoutChangingTheCost) {
  support::Rng rng(91);
  eval::PatternSpec spec;
  spec.accesses = 18;
  spec.offset_range = 8;
  const auto seq = eval::generate_pattern(spec, rng);

  const ExactResult roomy = exact_min_cost_allocation(seq, kM1, 3);
  ASSERT_TRUE(roomy.proven);
  EXPECT_EQ(roomy.table_cap_hits, 0u);

  // A 4-entry table saturates immediately; lookups past the cap are
  // counted, and the search stays exact (only less pruned).
  ExactOptions tiny;
  tiny.table_cap = 4;
  const ExactResult capped = exact_min_cost_allocation(seq, kM1, 3, tiny);
  ASSERT_TRUE(capped.proven);
  EXPECT_GT(capped.table_cap_hits, 0u);
  EXPECT_EQ(capped.cost, roomy.cost);
  EXPECT_GE(capped.nodes, roomy.nodes);
}

TEST(ExactAllocator, PinnedPrefixIsHonoredAndCosted) {
  const auto seq = AccessSequence::from_offsets({1, 0, 2, -1, 1, 0, -2});
  ExactOptions options;
  options.pinned_prefix = {0, 0, 1};
  const ExactResult r = exact_min_cost_allocation(seq, kM1, 2, options);
  ASSERT_TRUE(r.proven);
  validate_allocation(seq, r.paths, 2);
  // Accesses 0 and 1 share a register; access 2 is on a different one.
  for (const Path& path : r.paths) {
    const std::vector<std::size_t>& accesses = path.indices();
    const auto has = [&accesses](std::size_t i) {
      return std::find(accesses.begin(), accesses.end(), i) !=
             accesses.end();
    };
    EXPECT_EQ(has(0), has(1));
    if (has(0)) EXPECT_FALSE(has(2));
  }
  // Pinning can only restrict the search space.
  const ExactResult free_search = exact_min_cost_allocation(seq, kM1, 2);
  EXPECT_GE(r.cost, free_search.cost);
}

TEST(ExactAllocator, FullyPinnedSequenceEvaluatesThatAssignment) {
  const auto seq = AccessSequence::from_offsets({1, 0, 2, -1});
  ExactOptions options;
  options.pinned_prefix = {0, 1, 0, 1};
  const ExactResult r = exact_min_cost_allocation(seq, kM1, 2, options);
  ASSERT_TRUE(r.proven);
  EXPECT_EQ(r.cost, total_cost(seq, r.paths, kM1));
  // The searched space is the single pinned assignment.
  ASSERT_EQ(r.paths.size(), 2u);
  EXPECT_EQ(r.paths[0].indices(), (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(r.paths[1].indices(), (std::vector<std::size_t>{1, 3}));
}

TEST(ExactAllocator, RejectsMalformedPinnedPrefix) {
  const auto seq = AccessSequence::from_offsets({0, 1, 2});

  ExactOptions skips_fresh_rule;
  skips_fresh_rule.pinned_prefix = {1};  // register 1 before register 0
  EXPECT_THROW(exact_min_cost_allocation(seq, kM1, 2, skips_fresh_rule),
               dspaddr::InvalidArgument);

  ExactOptions out_of_range;
  out_of_range.pinned_prefix = {0, 1, 2};  // register 2 with K = 2
  EXPECT_THROW(exact_min_cost_allocation(seq, kM1, 2, out_of_range),
               dspaddr::InvalidArgument);

  ExactOptions too_long;
  too_long.pinned_prefix = {0, 0, 0, 0};
  EXPECT_THROW(exact_min_cost_allocation(seq, kM1, 2, too_long),
               dspaddr::InvalidArgument);
}

/// Oracle: full enumeration of register assignments (tiny N, small K).
int brute_force_min_cost(const AccessSequence& seq, const CostModel& model,
                         std::size_t k) {
  const std::size_t n = seq.size();
  std::vector<std::size_t> assignment(n, 0);
  int best = std::numeric_limits<int>::max();
  while (true) {
    std::vector<std::vector<std::size_t>> groups(k);
    for (std::size_t i = 0; i < n; ++i) {
      groups[assignment[i]].push_back(i);
    }
    std::vector<Path> paths;
    for (auto& g : groups) {
      if (!g.empty()) paths.emplace_back(std::move(g));
    }
    best = std::min(best, total_cost(seq, paths, model));
    std::size_t digit = 0;
    while (digit < n) {
      if (++assignment[digit] < k) break;
      assignment[digit] = 0;
      ++digit;
    }
    if (digit == n) break;
  }
  return best;
}

class ExactPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExactPropertyTest, MatchesBruteForceEnumeration) {
  support::Rng rng(GetParam() * 911 + 3);
  const std::size_t n = 2 + rng.index(6);  // up to 7
  const std::size_t k = 1 + rng.index(3);  // up to 3
  std::vector<std::int64_t> offsets(n);
  for (auto& o : offsets) {
    o = rng.uniform_int(-4, 4);
  }
  const auto seq = AccessSequence::from_offsets(offsets);
  // Modify ranges spanning the builtin machine catalog (M in 1..4).
  const CostModel model{1 + rng.uniform_int(0, 3), WrapPolicy::kCyclic};

  const ExactResult r = exact_min_cost_allocation(seq, model, k);
  ASSERT_TRUE(r.proven);
  EXPECT_EQ(r.cost, brute_force_min_cost(seq, model, k));
  EXPECT_EQ(total_cost(seq, r.paths, model), r.cost);
  validate_allocation(seq, r.paths, k);
}

TEST_P(ExactPropertyTest, HeuristicNeverBeatsExact) {
  support::Rng rng(GetParam() * 389 + 21);
  eval::PatternSpec spec;
  spec.accesses = 6 + rng.index(8);  // up to 13
  spec.offset_range = 5;
  const auto seq = eval::generate_pattern(spec, rng);
  const std::size_t k = 1 + rng.index(3);

  ProblemConfig config;
  config.modify_range = 1;
  config.registers = k;
  config.phase1.mode = Phase1Options::Mode::kExact;
  const int heuristic = RegisterAllocator(config).run(seq).cost();

  const ExactResult exact = exact_min_cost_allocation(seq, kM1, k);
  ASSERT_TRUE(exact.proven);
  EXPECT_GE(heuristic, exact.cost);
}

TEST_P(ExactPropertyTest, ExactIsAtMostAllocatorAcrossMachineGrid) {
  // exact_min_cost_allocation(...).cost <= RegisterAllocator::run(...)
  // .cost() over a machines-like K x M grid, every pattern family.
  support::Rng rng(GetParam() * 677 + 5);
  eval::PatternSpec spec;
  spec.accesses = 6 + rng.index(7);  // up to 12
  spec.offset_range = 6;
  spec.family = static_cast<eval::PatternFamily>(GetParam() % 4);
  const auto seq = eval::generate_pattern(spec, rng);

  for (const std::int64_t m : {1, 2, 4}) {
    for (const std::size_t k : {1u, 2u, 4u}) {
      ProblemConfig config;
      config.modify_range = m;
      config.registers = k;
      config.phase2.mode = Phase2Options::Mode::kHeuristic;
      const int heuristic = RegisterAllocator(config).run(seq).cost();

      const CostModel model{m, WrapPolicy::kCyclic};
      const ExactResult exact = exact_min_cost_allocation(seq, model, k);
      ASSERT_TRUE(exact.proven) << "M=" << m << " K=" << k;
      EXPECT_LE(exact.cost, heuristic) << "M=" << m << " K=" << k;
      validate_allocation(seq, exact.paths, k);
    }
  }
}

TEST_P(ExactPropertyTest, PrunedSearchAgreesWithLegacyDfs) {
  // The bounds + dominance + symmetry machinery must never change the
  // proven optimum, only how fast it is reached; and it must reach it
  // with no more nodes than the legacy incumbent-only DFS.
  support::Rng rng(GetParam() * 1201 + 7);
  eval::PatternSpec spec;
  spec.accesses = 6 + rng.index(6);  // up to 11: legacy still finishes
  spec.offset_range = 5;
  spec.family = static_cast<eval::PatternFamily>(GetParam() % 4);
  const auto seq = eval::generate_pattern(spec, rng);
  const std::size_t k = 1 + rng.index(3);

  ExactOptions legacy;
  legacy.use_bounds = false;
  legacy.use_dominance = false;
  const ExactResult old_style =
      exact_min_cost_allocation(seq, kM1, k, legacy);
  const ExactResult pruned = exact_min_cost_allocation(seq, kM1, k);
  ASSERT_TRUE(old_style.proven);
  ASSERT_TRUE(pruned.proven);
  EXPECT_EQ(pruned.cost, old_style.cost);
  EXPECT_LE(pruned.nodes, old_style.nodes);
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, ExactPropertyTest,
                         ::testing::Range<std::uint64_t>(0, 30));

}  // namespace
}  // namespace dspaddr::core
