#include "core/exact.hpp"

#include <gtest/gtest.h>

#include "core/allocator.hpp"
#include "core/validate.hpp"
#include "eval/patterns.hpp"
#include "support/rng.hpp"

namespace dspaddr::core {
namespace {

using ir::AccessSequence;

const CostModel kM1{1, WrapPolicy::kCyclic};

TEST(ExactAllocator, EmptySequence) {
  const ExactResult r = exact_min_cost_allocation(AccessSequence{}, kM1, 2);
  EXPECT_EQ(r.cost, 0);
  EXPECT_TRUE(r.proven);
  EXPECT_TRUE(r.paths.empty());
}

TEST(ExactAllocator, RejectsZeroRegisters) {
  const auto seq = AccessSequence::from_offsets({0});
  EXPECT_THROW(exact_min_cost_allocation(seq, kM1, 0),
               dspaddr::InvalidArgument);
}

TEST(ExactAllocator, SingleRegisterCostIsForced) {
  // With K = 1 there is exactly one partition; exact == that cost.
  const auto seq = AccessSequence::from_offsets({1, 0, 2, -1, 1, 0, -2});
  const ExactResult r = exact_min_cost_allocation(seq, kM1, 1);
  EXPECT_TRUE(r.proven);
  EXPECT_EQ(r.cost, 5);  // 4 intra over-range steps + wrap
}

TEST(ExactAllocator, PaperExampleLadder) {
  const auto seq = AccessSequence::from_offsets({1, 0, 2, -1, 1, 0, -2});
  const std::vector<std::pair<std::size_t, int>> ladder{
      {1, 5}, {2, 2}, {3, 0}, {7, 0}};
  for (const auto& [k, expected] : ladder) {
    const ExactResult r = exact_min_cost_allocation(seq, kM1, k);
    EXPECT_TRUE(r.proven) << "K = " << k;
    EXPECT_EQ(r.cost, expected) << "K = " << k;
    validate_allocation(seq, r.paths, k);
  }
}

TEST(ExactAllocator, HeuristicIsOptimalOnPaperExample) {
  // The two-phase heuristic hits the exact optimum on the worked
  // example for every K — the example was chosen to showcase it.
  const auto seq = AccessSequence::from_offsets({1, 0, 2, -1, 1, 0, -2});
  for (std::size_t k = 1; k <= 4; ++k) {
    ProblemConfig config;
    config.modify_range = 1;
    config.registers = k;
    config.phase1.mode = Phase1Options::Mode::kExact;
    const int heuristic = RegisterAllocator(config).run(seq).cost();
    const int exact = exact_min_cost_allocation(seq, kM1, k).cost;
    EXPECT_EQ(heuristic, exact) << "K = " << k;
  }
}

TEST(ExactAllocator, NodeCapDegradesGracefully) {
  support::Rng rng(5);
  eval::PatternSpec spec;
  spec.accesses = 12;
  spec.offset_range = 6;
  const auto seq = eval::generate_pattern(spec, rng);
  ExactOptions options;
  options.max_nodes = 10;  // far too small to finish
  const ExactResult r = exact_min_cost_allocation(seq, kM1, 3, options);
  EXPECT_FALSE(r.proven);
  // Still a valid allocation (the greedy incumbent at worst).
  validate_allocation(seq, r.paths, 3);
}

/// Oracle: full enumeration of register assignments (tiny N, small K).
int brute_force_min_cost(const AccessSequence& seq, const CostModel& model,
                         std::size_t k) {
  const std::size_t n = seq.size();
  std::vector<std::size_t> assignment(n, 0);
  int best = std::numeric_limits<int>::max();
  while (true) {
    std::vector<std::vector<std::size_t>> groups(k);
    for (std::size_t i = 0; i < n; ++i) {
      groups[assignment[i]].push_back(i);
    }
    std::vector<Path> paths;
    for (auto& g : groups) {
      if (!g.empty()) paths.emplace_back(std::move(g));
    }
    best = std::min(best, total_cost(seq, paths, model));
    std::size_t digit = 0;
    while (digit < n) {
      if (++assignment[digit] < k) break;
      assignment[digit] = 0;
      ++digit;
    }
    if (digit == n) break;
  }
  return best;
}

class ExactPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExactPropertyTest, MatchesBruteForceEnumeration) {
  support::Rng rng(GetParam() * 911 + 3);
  const std::size_t n = 2 + rng.index(6);  // up to 7
  const std::size_t k = 1 + rng.index(3);  // up to 3
  std::vector<std::int64_t> offsets(n);
  for (auto& o : offsets) {
    o = rng.uniform_int(-4, 4);
  }
  const auto seq = AccessSequence::from_offsets(offsets);
  const CostModel model{1 + rng.uniform_int(0, 1), WrapPolicy::kCyclic};

  const ExactResult r = exact_min_cost_allocation(seq, model, k);
  ASSERT_TRUE(r.proven);
  EXPECT_EQ(r.cost, brute_force_min_cost(seq, model, k));
  EXPECT_EQ(total_cost(seq, r.paths, model), r.cost);
  validate_allocation(seq, r.paths, k);
}

TEST_P(ExactPropertyTest, HeuristicNeverBeatsExact) {
  support::Rng rng(GetParam() * 389 + 21);
  eval::PatternSpec spec;
  spec.accesses = 6 + rng.index(8);  // up to 13
  spec.offset_range = 5;
  const auto seq = eval::generate_pattern(spec, rng);
  const std::size_t k = 1 + rng.index(3);

  ProblemConfig config;
  config.modify_range = 1;
  config.registers = k;
  config.phase1.mode = Phase1Options::Mode::kExact;
  const int heuristic = RegisterAllocator(config).run(seq).cost();

  const ExactResult exact = exact_min_cost_allocation(seq, kM1, k);
  ASSERT_TRUE(exact.proven);
  EXPECT_GE(heuristic, exact.cost);
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, ExactPropertyTest,
                         ::testing::Range<std::uint64_t>(0, 30));

}  // namespace
}  // namespace dspaddr::core
