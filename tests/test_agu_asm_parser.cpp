#include "agu/asm_parser.hpp"

#include <gtest/gtest.h>

#include "agu/codegen.hpp"
#include "agu/simulator.hpp"
#include "core/allocator.hpp"
#include "core/modify_registers.hpp"
#include "eval/patterns.hpp"
#include "ir/kernels.hpp"
#include "ir/layout.hpp"
#include "support/rng.hpp"

namespace dspaddr::agu {
namespace {

TEST(AsmParser, ParsesMinimalProgram) {
  const Program p = parse_program(R"(
; setup
  LDAR AR0, #1
; loop body
  USE AR0  ; a_1, post-modify +1
)");
  EXPECT_EQ(p.register_count, 1u);
  ASSERT_EQ(p.setup.size(), 1u);
  EXPECT_EQ(p.setup[0].op, Opcode::kLdar);
  EXPECT_EQ(p.setup[0].value, 1);
  ASSERT_EQ(p.body.size(), 1u);
  EXPECT_EQ(p.body[0].op, Opcode::kUse);
  EXPECT_EQ(p.body[0].access, 0u);
  EXPECT_EQ(p.body[0].value, 1);
}

TEST(AsmParser, ParsesAllOpcodes) {
  const Program p = parse_program(R"(
; setup
  LDAR AR1, #-5
  LDMR MR0, #42
; loop body
  USE AR1  ; a_2
  ADAR AR1, #-3
  USE AR1  ; a_3, post-modify +MR0
  RELOAD AR1, &a_2 (next iteration)
)");
  EXPECT_EQ(p.register_count, 2u);
  EXPECT_EQ(p.modify_register_count, 1u);
  ASSERT_EQ(p.body.size(), 4u);
  EXPECT_EQ(p.body[1].op, Opcode::kAdar);
  EXPECT_EQ(p.body[1].value, -3);
  EXPECT_EQ(p.body[2].mr, 0);
  EXPECT_EQ(p.body[3].op, Opcode::kReload);
  EXPECT_TRUE(p.body[3].next_iteration);
  EXPECT_EQ(p.body[3].access, 1u);
}

TEST(AsmParser, ErrorsCarryLineNumbers) {
  const auto expect_error_line = [](std::string_view text,
                                    std::size_t line) {
    try {
      parse_program(text);
      FAIL() << "expected ParseError for: " << text;
    } catch (const ir::ParseError& e) {
      EXPECT_EQ(e.line(), line) << e.what();
    }
  };
  expect_error_line("; setup\nFROB AR0, #1\n", 2);
  expect_error_line("; setup\nLDAR AR0 #1\n", 2);        // missing comma
  expect_error_line("; setup\nLDAR ARx, #1\n", 2);       // bad register
  expect_error_line("; setup\nLDAR AR0, #1 junk\n", 2);  // trailing
  expect_error_line("; intro\n", 1);                     // bad marker
  expect_error_line("LDAR AR0, #1\n", 1);                // no sections
  expect_error_line("; loop body\nUSE AR0  ; a_0\n", 2);  // 1-based ids
}

TEST(AsmParser, RoundTripsGeneratedPrograms) {
  const auto seq =
      ir::AccessSequence::from_offsets({1, 0, 2, -1, 1, 0, -2});
  core::ProblemConfig config;
  config.modify_range = 1;
  config.registers = 2;
  const core::Allocation a = core::RegisterAllocator(config).run(seq);
  const Program original = generate_code(seq, a);
  const Program reparsed = parse_program(original.to_string());
  EXPECT_EQ(reparsed.setup, original.setup);
  EXPECT_EQ(reparsed.body, original.body);
  EXPECT_EQ(reparsed.register_count, original.register_count);
}

TEST(AsmParser, RoundTripsMrPrograms) {
  const auto seq = ir::AccessSequence::from_offsets({0, 5, 10, 15});
  core::ProblemConfig config;
  config.modify_range = 1;
  config.registers = 1;
  const core::Allocation a = core::RegisterAllocator(config).run(seq);
  const auto plan = core::plan_modify_registers(seq, a, 2);
  const Program original = generate_code(seq, a, plan);
  const Program reparsed = parse_program(original.to_string());
  EXPECT_EQ(reparsed.setup, original.setup);
  EXPECT_EQ(reparsed.body, original.body);
  EXPECT_EQ(reparsed.modify_register_count,
            original.modify_register_count);
}

TEST(AsmParser, HandEditedProgramRunsOnSimulator) {
  // A hand-written address program for offsets 0, 5 with M = 1: the
  // author chose an MR instead of ADARs.
  const auto seq = ir::AccessSequence::from_offsets({0, 5});
  const Program p = parse_program(R"(
; setup
  LDAR AR0, #0
  LDMR MR0, #5
  LDMR MR1, #-4
; loop body
  USE AR0  ; a_1, post-modify +MR0
  USE AR0  ; a_2, post-modify +MR1
)");
  const SimResult r = Simulator{}.run(p, seq, 10);
  EXPECT_TRUE(r.verified) << r.failure;
  EXPECT_EQ(r.extra_instructions, 0u);
}

class AsmRoundTripPropertyTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AsmRoundTripPropertyTest, TextIsAFaithfulEncoding) {
  support::Rng rng(GetParam() * 271 + 9);
  eval::PatternSpec spec;
  spec.accesses = 3 + rng.index(20);
  spec.offset_range = 1 + rng.uniform_int(0, 12);
  spec.family = static_cast<eval::PatternFamily>(rng.index(4));
  const auto seq = eval::generate_pattern(spec, rng);

  core::ProblemConfig config;
  config.modify_range = 1 + rng.uniform_int(0, 2);
  config.registers = 1 + rng.index(4);
  const core::Allocation a = core::RegisterAllocator(config).run(seq);
  const auto plan = core::plan_modify_registers(seq, a, rng.index(3));
  const Program original = generate_code(seq, a, plan);
  const Program reparsed = parse_program(original.to_string());

  EXPECT_EQ(reparsed.setup, original.setup);
  EXPECT_EQ(reparsed.body, original.body);

  // And the reparsed program still executes correctly.
  const SimResult r = Simulator{}.run(reparsed, seq, 7);
  EXPECT_TRUE(r.verified) << r.failure;
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, AsmRoundTripPropertyTest,
                         ::testing::Range<std::uint64_t>(0, 25));

}  // namespace
}  // namespace dspaddr::agu
