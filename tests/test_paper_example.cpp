// Experiment FIG1: the worked example of the paper, end to end.
//
// Section 2 introduces the loop with accesses A[i+1], A[i], A[i+2],
// A[i-1], A[i+1], A[i], A[i-2] and M = 1, models it as the graph of
// Fig. 1, and claims the subsequence (a_1, a_3, a_5, a_6) is realizable
// by one register with auto-increment/decrement only. This file pins
// down every number the example implies.
#include <gtest/gtest.h>

#include "agu/codegen.hpp"
#include "agu/simulator.hpp"
#include "baselines/baselines.hpp"
#include "core/access_graph.hpp"
#include "core/allocator.hpp"
#include "ir/kernels.hpp"
#include "ir/layout.hpp"

namespace dspaddr {
namespace {

const auto kSeq =
    ir::AccessSequence::from_offsets({1, 0, 2, -1, 1, 0, -2});

TEST(PaperExample, KernelLowersToFigureOffsets) {
  const ir::AccessSequence lowered = ir::lower(ir::paper_example_kernel());
  // The kernel uses a single array, so lowering shifts all offsets by
  // the same base; distances (the quantity that matters) must match the
  // raw figure offsets exactly.
  ASSERT_EQ(lowered.size(), kSeq.size());
  for (std::size_t i = 0; i + 1 < kSeq.size(); ++i) {
    EXPECT_EQ(lowered.intra_distance(i, i + 1),
              kSeq.intra_distance(i, i + 1));
  }
}

TEST(PaperExample, GraphHasElevenZeroCostEdges) {
  const core::AccessGraph g(kSeq,
                            core::CostModel{1, core::WrapPolicy::kCyclic});
  EXPECT_EQ(g.intra().edge_count(), 11u);
}

TEST(PaperExample, NarrativePathIsRealizableByOneRegister) {
  // (a_1, a_3, a_5, a_6) with offsets 1, 2, 1, 0: +1, -1, -1 moves.
  const core::Path narrative({0, 2, 4, 5});
  const core::CostModel model{1, core::WrapPolicy::kCyclic};
  EXPECT_EQ(core::path_intra_cost(kSeq, narrative, model), 0);
}

TEST(PaperExample, KTildeIsTwoAcyclicThreeCyclic) {
  core::Phase1Options exact;
  exact.mode = core::Phase1Options::Mode::kExact;

  const core::AccessGraph acyclic(
      kSeq, core::CostModel{1, core::WrapPolicy::kAcyclic});
  EXPECT_EQ(core::compute_min_register_cover(acyclic, exact).k_tilde,
            std::size_t{2});

  const core::AccessGraph cyclic(
      kSeq, core::CostModel{1, core::WrapPolicy::kCyclic});
  EXPECT_EQ(core::compute_min_register_cover(cyclic, exact).k_tilde,
            std::size_t{3});
}

TEST(PaperExample, CostLadderAcrossRegisterCounts) {
  // K >= 3 free, K = 2 costs 2, K = 1 costs 5 (forced single path).
  const std::vector<std::pair<std::size_t, int>> ladder{
      {7, 0}, {4, 0}, {3, 0}, {2, 2}, {1, 5}};
  for (const auto& [k, expected_cost] : ladder) {
    core::ProblemConfig config;
    config.modify_range = 1;
    config.registers = k;
    config.phase1.mode = core::Phase1Options::Mode::kExact;
    const core::Allocation a =
        core::RegisterAllocator(config).run(kSeq);
    EXPECT_EQ(a.cost(), expected_cost) << "K = " << k;
  }
}

TEST(PaperExample, HeuristicBeatsNaiveUnderPressure) {
  core::ProblemConfig config;
  config.modify_range = 1;
  config.registers = 2;
  config.phase1.mode = core::Phase1Options::Mode::kExact;
  const auto merged = core::RegisterAllocator(config).run(kSeq);
  const auto naive = baselines::naive_allocate(kSeq, config);
  EXPECT_LE(merged.cost(), naive.cost());
}

TEST(PaperExample, GeneratedCodeExecutesCorrectlyForAllK) {
  for (std::size_t k = 1; k <= 4; ++k) {
    core::ProblemConfig config;
    config.modify_range = 1;
    config.registers = k;
    const core::Allocation a = core::RegisterAllocator(config).run(kSeq);
    const agu::Program p = agu::generate_code(kSeq, a);
    const agu::SimResult r = agu::Simulator{}.run(p, kSeq, 32);
    EXPECT_TRUE(r.verified) << "K = " << k << ": " << r.failure;
    EXPECT_EQ(r.extra_instructions,
              32u * static_cast<std::uint64_t>(a.cost()))
        << "K = " << k;
  }
}

}  // namespace
}  // namespace dspaddr
