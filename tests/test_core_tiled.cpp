// The tiled solver is the middle rung of the anytime ladder: exact per
// window, heuristic across boundaries, a full proof when one window
// covers the sequence. These tests pin the ladder ordering, the
// stitching validity, and the per-window stats.
#include <gtest/gtest.h>

#include <cstdint>

#include "core/allocator.hpp"
#include "core/exact.hpp"
#include "core/tiled.hpp"
#include "core/validate.hpp"
#include "eval/patterns.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace dspaddr::core {
namespace {

using ir::AccessSequence;

const CostModel kM1{1, WrapPolicy::kCyclic};

AccessSequence pattern(std::size_t accesses, std::uint64_t seed) {
  support::Rng rng(seed);
  eval::PatternSpec spec;
  spec.accesses = accesses;
  spec.offset_range = 8;
  spec.family = eval::PatternFamily::kSortedNoise;
  return eval::generate_pattern(spec, rng);
}

TEST(Tiled, SingleWindowIsAFullProofMatchingExact) {
  const AccessSequence seq = pattern(14, 21);
  TiledOptions options;
  options.tile_width = 32;  // wider than the sequence: one window
  const TiledResult tiled = tiled_min_cost_allocation(seq, kM1, 3, options);
  const ExactResult exact = exact_min_cost_allocation(seq, kM1, 3);
  ASSERT_TRUE(exact.proven);
  EXPECT_TRUE(tiled.proven);
  EXPECT_EQ(tiled.windows, 1u);
  EXPECT_EQ(tiled.windows_proven, 1u);
  EXPECT_EQ(tiled.cost, exact.cost);
  validate_allocation(seq, tiled.paths, 3);
}

TEST(Tiled, MultiWindowStitchingIsValidAndCosted) {
  const AccessSequence seq = pattern(60, 23);
  TiledOptions options;
  options.tile_width = 16;
  options.tile_overlap = 4;
  const TiledResult r = tiled_min_cost_allocation(seq, kM1, 3, options);
  EXPECT_GT(r.windows, 1u);
  EXPECT_FALSE(r.proven);  // stitched, not globally proven
  validate_allocation(seq, r.paths, 3);
  EXPECT_EQ(total_cost(seq, r.paths, kM1), r.cost);
  EXPECT_LE(r.windows_proven, r.windows);
  if (r.windows_proven == r.windows) {
    EXPECT_EQ(r.window_gap_total, 0);
  }
}

TEST(Tiled, LadderOrderingHeuristicTiledExact) {
  // heuristic >= tiled (>= exact when it proves): each rung spends
  // more search and may only improve the cost.
  const AccessSequence seq = pattern(48, 29);
  ProblemConfig config;
  config.modify_range = 1;
  config.registers = 3;

  config.phase2.mode = Phase2Options::Mode::kHeuristic;
  const Allocation heuristic = RegisterAllocator(config).run(seq);

  config.phase2.mode = Phase2Options::Mode::kTiled;
  const Allocation tiled = RegisterAllocator(config).run(seq);

  EXPECT_LE(tiled.cost(), heuristic.cost());
  EXPECT_GT(tiled.stats().phase2_windows, 0u);
}

TEST(Tiled, AllocatorSurfacesWindowStats) {
  const AccessSequence seq = pattern(40, 31);
  ProblemConfig config;
  config.modify_range = 1;
  config.registers = 3;
  config.phase2.mode = Phase2Options::Mode::kTiled;
  config.phase2.tile_width = 12;
  config.phase2.tile_overlap = 3;
  const Allocation a = RegisterAllocator(config).run(seq);
  const AllocationStats& stats = a.stats();
  EXPECT_GT(stats.phase2_windows, 1u);
  EXPECT_LE(stats.phase2_windows_proven, stats.phase2_windows);
}

TEST(Tiled, ParallelWindowsMatchSequentialWhenProven) {
  const AccessSequence seq = pattern(44, 37);
  TiledOptions serial_options;
  serial_options.tile_width = 14;
  serial_options.tile_overlap = 4;
  TiledOptions parallel_options = serial_options;
  parallel_options.jobs = 4;
  const TiledResult serial =
      tiled_min_cost_allocation(seq, kM1, 3, serial_options);
  const TiledResult parallel =
      tiled_min_cost_allocation(seq, kM1, 3, parallel_options);
  // Window-level proofs make the sweep deterministic: every window is
  // solved to in-window optimality with the same pinned boundary, so
  // the stitched costs agree.
  ASSERT_EQ(serial.windows_proven, serial.windows);
  ASSERT_EQ(parallel.windows_proven, parallel.windows);
  EXPECT_EQ(parallel.cost, serial.cost);
  validate_allocation(seq, parallel.paths, 3);
}

TEST(Tiled, FixedSweepReportsTheConstantWindowWidths) {
  const AccessSequence seq = pattern(60, 43);
  TiledOptions options;
  options.tile_width = 16;
  options.tile_overlap = 4;
  const TiledResult r = tiled_min_cost_allocation(seq, kM1, 3, options);
  ASSERT_EQ(r.window_widths.size(), r.windows);
  ASSERT_GT(r.windows, 1u);
  // Every window is tile_width wide except possibly the final stub.
  for (std::size_t w = 0; w + 1 < r.window_widths.size(); ++w) {
    EXPECT_EQ(r.window_widths[w], 16u) << "window " << w;
  }
  EXPECT_LE(r.window_widths.back(), 16u);
}

TEST(Tiled, AutoWidthSweepIsValidAndRecordsItsDecisions) {
  const AccessSequence seq = pattern(70, 47);
  TiledOptions options;
  options.tile_width = 12;
  options.tile_overlap = 4;
  options.auto_width = true;
  options.min_width = 10;
  options.max_width = 24;
  const TiledResult r = tiled_min_cost_allocation(seq, kM1, 3, options);
  EXPECT_GT(r.windows, 1u);
  ASSERT_EQ(r.window_widths.size(), r.windows);
  for (const std::size_t width : r.window_widths) {
    EXPECT_LE(width, 24u);
    EXPECT_GE(width, 2u);
  }
  validate_allocation(seq, r.paths, 3);
  EXPECT_EQ(total_cost(seq, r.paths, kM1), r.cost);
}

TEST(Tiled, AutoWidthIsDeterministicWithoutAClock) {
  // With no wall budget and one worker the tuner's inputs (nodes per
  // window, proof status) are pure functions of the problem, so two
  // sweeps make identical decisions.
  const AccessSequence seq = pattern(64, 53);
  TiledOptions options;
  options.tile_width = 12;
  options.tile_overlap = 4;
  options.auto_width = true;
  const TiledResult first = tiled_min_cost_allocation(seq, kM1, 3, options);
  const TiledResult second = tiled_min_cost_allocation(seq, kM1, 3, options);
  EXPECT_EQ(first.window_widths, second.window_widths);
  EXPECT_EQ(first.cost, second.cost);
  EXPECT_EQ(first.nodes, second.nodes);
  EXPECT_EQ(first.windows_proven, second.windows_proven);
}

TEST(Tiled, AutoWidthNarrowsWhenWindowsStopProving) {
  // A starving node budget leaves windows unproven; the tuner must
  // react by narrowing toward min_width, never below it.
  const AccessSequence seq = pattern(80, 59);
  TiledOptions options;
  options.tile_width = 24;
  options.tile_overlap = 4;
  options.auto_width = true;
  options.min_width = 10;
  options.max_width = 32;
  options.max_nodes = 400;  // a handful of nodes per window
  const TiledResult r = tiled_min_cost_allocation(seq, kM1, 3, options);
  ASSERT_GT(r.windows, 1u);
  ASSERT_EQ(r.window_widths.size(), r.windows);
  EXPECT_LT(r.windows_proven, r.windows);
  // The opening window cannot prove 24 accesses on ~100 nodes, so the
  // very next window must already be narrower (and the tuner never
  // exceeds max_width anywhere).
  EXPECT_LT(r.window_widths[1], r.window_widths[0]);
  for (const std::size_t width : r.window_widths) {
    EXPECT_LE(width, 32u);
  }
  validate_allocation(seq, r.paths, 3);
}

TEST(Tiled, AllocatorSurfacesAutoWindowWidths) {
  const AccessSequence seq = pattern(56, 61);
  ProblemConfig config;
  config.modify_range = 1;
  config.registers = 3;
  config.phase2.mode = Phase2Options::Mode::kTiled;
  config.phase2.tile_width = 12;
  config.phase2.tile_overlap = 3;
  config.phase2.tile_width_auto = true;
  const Allocation a = RegisterAllocator(config).run(seq);
  const AllocationStats& stats = a.stats();
  EXPECT_GT(stats.phase2_windows, 1u);
  EXPECT_EQ(stats.phase2_window_widths.size(), stats.phase2_windows);
}

TEST(Tiled, AutoWidthRejectsInvertedBounds) {
  const AccessSequence seq = pattern(20, 67);
  TiledOptions options;
  options.auto_width = true;
  options.min_width = 24;
  options.max_width = 12;
  EXPECT_THROW(tiled_min_cost_allocation(seq, kM1, 3, options),
               dspaddr::InvalidArgument);
}

TEST(Tiled, RejectsDegenerateOptions) {
  const AccessSequence seq = pattern(10, 41);
  TiledOptions narrow;
  narrow.tile_width = 1;
  EXPECT_THROW(tiled_min_cost_allocation(seq, kM1, 2, narrow),
               dspaddr::InvalidArgument);
  TiledOptions fat_overlap;
  fat_overlap.tile_width = 8;
  fat_overlap.tile_overlap = 8;
  EXPECT_THROW(tiled_min_cost_allocation(seq, kM1, 2, fat_overlap),
               dspaddr::InvalidArgument);
  const TiledOptions defaults;
  EXPECT_THROW(tiled_min_cost_allocation(seq, kM1, 0, defaults),
               dspaddr::InvalidArgument);
}

}  // namespace
}  // namespace dspaddr::core
