#include <gtest/gtest.h>

#include "soa/goa.hpp"
#include "soa/liao.hpp"
#include "soa/scalar_sequence.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace dspaddr::soa {
namespace {

ScalarSequence random_sequence(support::Rng& rng, std::size_t variables,
                               std::size_t length) {
  std::vector<VarId> accesses(length);
  for (auto& a : accesses) {
    a = static_cast<VarId>(rng.index(variables));
  }
  return ScalarSequence(std::move(accesses), variables);
}

bool is_permutation_layout(const Layout& layout) {
  std::vector<bool> seen(layout.size(), false);
  for (std::int64_t offset : layout) {
    if (offset < 0 || offset >= static_cast<std::int64_t>(layout.size())) {
      return false;
    }
    if (seen[static_cast<std::size_t>(offset)]) return false;
    seen[static_cast<std::size_t>(offset)] = true;
  }
  return true;
}

TEST(ScalarSequence, FromNamesAssignsIdsInFirstAppearanceOrder) {
  const auto seq = ScalarSequence::from_names({"a", "b", "a", "c", "b"});
  EXPECT_EQ(seq.variable_count(), 3u);
  EXPECT_EQ(seq.accesses(), (std::vector<VarId>{0, 1, 0, 2, 1}));
}

TEST(ScalarSequence, RejectsOutOfRangeVariable) {
  EXPECT_THROW(ScalarSequence({0, 3}, 2), dspaddr::InvalidArgument);
}

TEST(ScalarSequence, FrequenciesCountAccesses) {
  const auto seq = ScalarSequence({0, 1, 0, 2, 0}, 3);
  EXPECT_EQ(seq.frequencies(), (std::vector<std::size_t>{3, 1, 1}));
}

TEST(ScalarSequence, ProjectKeepsOrder) {
  const auto seq = ScalarSequence({0, 1, 2, 0, 1}, 3);
  const auto projected = seq.project({true, false, true});
  EXPECT_EQ(projected.accesses(), (std::vector<VarId>{0, 2, 0}));
}

TEST(WeightedAccessGraph, CountsAdjacencies) {
  // a b a b c: (a,b) adjacent 3 times, (b,c) once.
  const auto seq = ScalarSequence({0, 1, 0, 1, 2}, 3);
  const WeightedAccessGraph g(seq);
  EXPECT_EQ(g.weight(0, 1), 3);
  EXPECT_EQ(g.weight(1, 0), 3);  // symmetric
  EXPECT_EQ(g.weight(1, 2), 1);
  EXPECT_EQ(g.weight(0, 2), 0);
  EXPECT_EQ(g.weight(1, 1), 0);  // self-adjacency ignored
  EXPECT_EQ(g.edges().size(), 2u);
}

TEST(LayoutCost, CountsFarTransitions) {
  const auto seq = ScalarSequence({0, 1, 2, 0}, 3);
  // Layout a=0, b=1, c=2: a->b free, b->c free, c->a distance 2: cost 1.
  EXPECT_EQ(layout_cost(seq, identity_layout(3)), 1);
  // Layout a=2, b=1, c=0: a->b free, b->c free, c->a distance 2: cost 1.
  EXPECT_EQ(layout_cost(seq, {2, 1, 0}), 1);
}

TEST(LayoutCost, RepeatedVariableIsFree) {
  const auto seq = ScalarSequence({0, 0, 0}, 1);
  EXPECT_EQ(layout_cost(seq, identity_layout(1)), 0);
}

TEST(Liao, ProducesPermutationLayout) {
  support::Rng rng(3);
  const auto seq = random_sequence(rng, 8, 40);
  const Layout layout = liao_layout(seq);
  EXPECT_TRUE(is_permutation_layout(layout));
}

TEST(Liao, ChainSequenceGetsZeroCost) {
  // a b c d walked monotonically: a path layout makes every transition
  // adjacent.
  const auto seq = ScalarSequence({0, 1, 2, 3, 2, 1, 0, 1, 2, 3}, 4);
  const Layout layout = liao_layout(seq);
  EXPECT_EQ(layout_cost(seq, layout), 0);
}

TEST(Liao, BeatsIdentityOnShuffledNames) {
  // A sequence designed so declaration order is bad: pairs (0,2) and
  // (1,3) are the hot adjacencies.
  const auto seq = ScalarSequence({0, 2, 0, 2, 1, 3, 1, 3}, 4);
  const Layout layout = liao_layout(seq);
  EXPECT_LT(layout_cost(seq, layout),
            layout_cost(seq, identity_layout(4)));
}

TEST(Liao, TieBreakNeverInvalidatesLayout) {
  support::Rng rng(17);
  for (int trial = 0; trial < 10; ++trial) {
    const auto seq = random_sequence(rng, 6, 30);
    const Layout plain = liao_layout(seq, SoaTieBreak::kNone);
    const Layout tiebreak = liao_layout(seq, SoaTieBreak::kLeupers);
    EXPECT_TRUE(is_permutation_layout(plain));
    EXPECT_TRUE(is_permutation_layout(tiebreak));
  }
}

TEST(RandomLayout, IsSeededPermutation) {
  support::Rng rng1(5);
  support::Rng rng2(5);
  const Layout a = random_layout(10, rng1);
  const Layout b = random_layout(10, rng2);
  EXPECT_EQ(a, b);
  EXPECT_TRUE(is_permutation_layout(a));
}

TEST(ExactSoa, RejectsLargeInstances) {
  support::Rng rng(1);
  const auto seq = random_sequence(rng, 12, 20);
  EXPECT_THROW(exact_soa_cost(seq), dspaddr::InvalidArgument);
}

class SoaPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SoaPropertyTest, LiaoIsNeverBelowExactOptimum) {
  support::Rng rng(GetParam() * 37 + 1);
  const std::size_t variables = 3 + rng.index(4);  // 3..6
  const auto seq = random_sequence(rng, variables, 10 + rng.index(20));
  const std::int64_t exact = exact_soa_cost(seq);
  for (SoaTieBreak tb : {SoaTieBreak::kNone, SoaTieBreak::kLeupers}) {
    const std::int64_t heuristic = layout_cost(seq, liao_layout(seq, tb));
    EXPECT_GE(heuristic, exact);
    // Liao is provably within the optimum plus the uncovered weight;
    // sanity: never worse than the identity *and* random by a lot —
    // concretely, never worse than identity + sequence length.
    EXPECT_LE(heuristic,
              static_cast<std::int64_t>(seq.size()));
  }
}

TEST_P(SoaPropertyTest, GoaPartitionCostsAreConsistent) {
  support::Rng rng(GetParam() * 53 + 9);
  const std::size_t variables = 4 + rng.index(4);
  const auto seq = random_sequence(rng, variables, 15 + rng.index(25));
  const std::size_t k = 1 + rng.index(3);

  const GoaResult result = goa_allocate(seq, k);
  ASSERT_EQ(result.register_of.size(), variables);
  for (std::uint32_t reg : result.register_of) {
    EXPECT_LT(reg, k);
  }
  EXPECT_EQ(result.total_cost,
            partition_cost(seq, result.register_of, k,
                           SoaTieBreak::kLeupers));
}

TEST_P(SoaPropertyTest, MoreRegistersNeverHurtGoa) {
  support::Rng rng(GetParam() * 71 + 2);
  const auto seq = random_sequence(rng, 6, 24);
  std::int64_t previous = -1;
  for (std::size_t k = 1; k <= 3; ++k) {
    const std::int64_t cost = goa_allocate(seq, k).total_cost;
    if (previous >= 0) {
      EXPECT_LE(cost, previous) << "k = " << k;
    }
    previous = cost;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, SoaPropertyTest,
                         ::testing::Range<std::uint64_t>(0, 25));

TEST(Goa, SingleRegisterEqualsSoa) {
  support::Rng rng(23);
  const auto seq = random_sequence(rng, 5, 20);
  const GoaResult result = goa_allocate(seq, 1);
  EXPECT_EQ(result.total_cost,
            layout_cost(seq, liao_layout(seq, SoaTieBreak::kLeupers)));
}

TEST(Goa, HeuristicWithinExactOnTinyInstances) {
  support::Rng rng(31);
  for (int trial = 0; trial < 5; ++trial) {
    const auto seq = random_sequence(rng, 5, 16);
    const std::size_t k = 2;
    const std::int64_t exact =
        exact_goa_cost(seq, k, SoaTieBreak::kLeupers);
    const std::int64_t heuristic = goa_allocate(seq, k).total_cost;
    EXPECT_GE(heuristic, exact);
  }
}

TEST(Goa, RejectsZeroRegisters) {
  const auto seq = ScalarSequence({0}, 1);
  EXPECT_THROW(goa_allocate(seq, 0), dspaddr::InvalidArgument);
}

TEST(Goa, ExactRejectsHugeStateSpace) {
  support::Rng rng(2);
  const auto seq = random_sequence(rng, 30, 40);
  EXPECT_THROW(exact_goa_cost(seq, 4), dspaddr::InvalidArgument);
}

}  // namespace
}  // namespace dspaddr::soa
