#include "graph/matching.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "support/rng.hpp"

namespace dspaddr::graph {
namespace {

using EdgeList = std::vector<std::pair<std::uint32_t, std::uint32_t>>;

/// Exhaustive maximum matching size by trying every edge subset (tiny
/// instances only) — the oracle for the property test.
std::size_t brute_force_matching(std::size_t left, std::size_t right,
                                 const EdgeList& edges) {
  std::size_t best = 0;
  const std::size_t subsets = std::size_t{1} << edges.size();
  for (std::size_t mask = 0; mask < subsets; ++mask) {
    std::vector<bool> used_left(left, false);
    std::vector<bool> used_right(right, false);
    std::size_t size = 0;
    bool valid = true;
    for (std::size_t e = 0; e < edges.size() && valid; ++e) {
      if (!(mask & (std::size_t{1} << e))) continue;
      const auto [u, v] = edges[e];
      if (used_left[u] || used_right[v]) {
        valid = false;
      } else {
        used_left[u] = used_right[v] = true;
        ++size;
      }
    }
    if (valid) best = std::max(best, size);
  }
  return best;
}

/// A matching must pair each vertex at most once and be mutually
/// consistent.
void expect_valid_matching(const MatchingResult& m, std::size_t left,
                           std::size_t right, const EdgeList& edges) {
  std::size_t pairs = 0;
  for (std::uint32_t u = 0; u < left; ++u) {
    const std::uint32_t v = m.match_left[u];
    if (v == MatchingResult::kUnmatched) continue;
    ASSERT_LT(v, right);
    EXPECT_EQ(m.match_right[v], u);
    EXPECT_TRUE(std::find(edges.begin(), edges.end(),
                          std::make_pair(u, v)) != edges.end());
    ++pairs;
  }
  EXPECT_EQ(pairs, m.size);
}

TEST(HopcroftKarp, EmptyGraph) {
  const auto m = hopcroft_karp(3, 3, {});
  EXPECT_EQ(m.size, 0u);
}

TEST(HopcroftKarp, PerfectMatchingOnIdentity) {
  EdgeList edges{{0, 0}, {1, 1}, {2, 2}};
  const auto m = hopcroft_karp(3, 3, edges);
  EXPECT_EQ(m.size, 3u);
  expect_valid_matching(m, 3, 3, edges);
}

TEST(HopcroftKarp, RequiresAugmentingPaths) {
  // The greedy matching 0-0 blocks 1; an augmenting path fixes it.
  EdgeList edges{{0, 0}, {0, 1}, {1, 0}};
  const auto m = hopcroft_karp(2, 2, edges);
  EXPECT_EQ(m.size, 2u);
  expect_valid_matching(m, 2, 2, edges);
}

TEST(HopcroftKarp, StarGraphMatchesOne) {
  EdgeList edges{{0, 0}, {0, 1}, {0, 2}, {0, 3}};
  const auto m = hopcroft_karp(1, 4, edges);
  EXPECT_EQ(m.size, 1u);
}

TEST(HopcroftKarp, CompleteBipartiteIsMinSide) {
  EdgeList edges;
  for (std::uint32_t u = 0; u < 3; ++u) {
    for (std::uint32_t v = 0; v < 5; ++v) {
      edges.emplace_back(u, v);
    }
  }
  EXPECT_EQ(hopcroft_karp(3, 5, edges).size, 3u);
}

TEST(HopcroftKarp, RejectsOutOfRangeEdge) {
  EXPECT_THROW(hopcroft_karp(1, 1, {{1, 0}}), InvalidArgument);
  EXPECT_THROW(hopcroft_karp(1, 1, {{0, 2}}), InvalidArgument);
}

class MatchingPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(MatchingPropertyTest, AgreesWithBruteForceOnRandomGraphs) {
  support::Rng rng(GetParam());
  const std::size_t left = 1 + rng.index(4);
  const std::size_t right = 1 + rng.index(4);
  EdgeList edges;
  for (std::uint32_t u = 0; u < left; ++u) {
    for (std::uint32_t v = 0; v < right; ++v) {
      if (rng.bernoulli(0.4)) edges.emplace_back(u, v);
    }
  }
  if (edges.size() > 14) edges.resize(14);  // keep the oracle tractable
  const auto m = hopcroft_karp(left, right, edges);
  expect_valid_matching(m, left, right, edges);
  EXPECT_EQ(m.size, brute_force_matching(left, right, edges));
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, MatchingPropertyTest,
                         ::testing::Range<std::uint64_t>(0, 40));

}  // namespace
}  // namespace dspaddr::graph
