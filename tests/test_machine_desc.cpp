#include "agu/machine_desc.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "agu/machines.hpp"
#include "eval/batch.hpp"
#include "ir/kernels.hpp"
#include "support/check.hpp"
#include "support/strings.hpp"

namespace dspaddr::agu {
namespace {

const std::string kMachinesDir =
    std::string(DSPADDR_SOURCE_DIR) + "/workloads/machines/";

std::string slurp(const std::string& path) {
  std::ifstream file(path);
  EXPECT_TRUE(file.good()) << "cannot open " << path;
  std::ostringstream out;
  out << file.rdbuf();
  return out.str();
}

// ----------------------------------------------------------------- parse

TEST(MachineDesc, ParsesFullDirectiveSet) {
  const std::string text =
      "# a comment\n"
      "machine demo\n"
      "description Demo AGU   with spaces\n"
      "class r address 4\n"
      "class n modify 2\n"
      "class ix index 1\n"
      "modify-range -1 3\n"
      "inc 4 8\n"
      "dec 16\n"
      "addressing pre\n";
  const std::vector<MachineSpec> specs = parse_machines(text, "demo");
  ASSERT_EQ(specs.size(), 1u);
  const MachineSpec& spec = specs[0];
  EXPECT_EQ(spec.name, "demo");
  EXPECT_EQ(spec.description, "Demo AGU   with spaces");
  ASSERT_EQ(spec.classes.size(), 3u);
  EXPECT_EQ(spec.classes[0], (RegisterClass{"r", RegClassKind::kAddress, 4}));
  EXPECT_EQ(spec.classes[1], (RegisterClass{"n", RegClassKind::kModify, 2}));
  EXPECT_EQ(spec.classes[2], (RegisterClass{"ix", RegClassKind::kIndex, 1}));
  EXPECT_EQ(spec.address_registers(), 4u);
  EXPECT_EQ(spec.modify_registers(), 3u);  // modify + index classes
  EXPECT_EQ(spec.modify_lo, -1);
  EXPECT_EQ(spec.modify_hi, 3);
  EXPECT_EQ(spec.modify_range(), 3);
  EXPECT_EQ(spec.free_widths, (std::vector<std::int64_t>{-16, 4, 8}));
  EXPECT_EQ(spec.addressing, Addressing::kPreModify);
}

TEST(MachineDesc, DefaultsAreMinimal) {
  const auto specs = parse_machines("machine bare\n", "t");
  ASSERT_EQ(specs.size(), 1u);
  EXPECT_EQ(specs[0].address_registers(), 1u);
  EXPECT_EQ(specs[0].modify_registers(), 0u);
  EXPECT_EQ(specs[0].modify_lo, -1);
  EXPECT_EQ(specs[0].modify_hi, 1);
  EXPECT_EQ(specs[0].addressing, Addressing::kPostModify);
}

TEST(MachineDesc, SymmetricModifyRangeShorthand) {
  const auto specs =
      parse_machines("machine m\nmodify-range 3\n", "t");
  EXPECT_EQ(specs[0].modify_lo, -3);
  EXPECT_EQ(specs[0].modify_hi, 3);
}

TEST(MachineDesc, SeveralMachinesPerFile) {
  const auto specs = parse_machines(
      "machine a\n\nmachine b\nclass r address 2\n", "t");
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_EQ(specs[0].name, "a");
  EXPECT_EQ(specs[1].name, "b");
  EXPECT_EQ(specs[1].address_registers(), 2u);
}

// Each malformed input must fail with one loud `origin:line:` message.
void expect_diagnostic(const std::string& text, const std::string& needle) {
  try {
    parse_machines(text, "bad.machine");
    FAIL() << "expected InvalidArgument for: " << text;
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_EQ(what.find("bad.machine:"), 0u)
        << "diagnostic '" << what << "' lacks the file:line prefix";
    EXPECT_NE(what.find(needle), std::string::npos)
        << "diagnostic '" << what << "' lacks '" << needle << "'";
    EXPECT_EQ(what.find('\n'), std::string::npos)
        << "diagnostic must be a single line: " << what;
  }
}

TEST(MachineDesc, MalformedFilesDiagnoseLoudly) {
  expect_diagnostic("machine m\nfrobnicate 3\n", "unknown directive");
  expect_diagnostic("class r address 4\n", "before 'machine'");
  expect_diagnostic("machine m\nmodify-range 2 -2\n",
                    "inverted modify range");
  expect_diagnostic("machine m\nmodify-range 1 2\n", "must contain 0");
  expect_diagnostic("machine m\nclass r address 0\n",
                    "register count >= 1");
  expect_diagnostic("machine m\nclass r pointer 4\n",
                    "unknown register class kind");
  expect_diagnostic("machine m\nclass r address 2\nclass r modify 1\n",
                    "duplicate register class");
  expect_diagnostic("machine m\ninc 0\n", "integers >= 1");
  expect_diagnostic("machine m\naddressing sideways\n", "post or pre");
  expect_diagnostic("machine m\nmachine m\n", "duplicate machine");
  // Zero address registers is a validation failure attributed to the
  // machine's opening line.
  expect_diagnostic("machine m\nclass n modify 4\n", "address register");
}

TEST(MachineDesc, EmptyInputIsAnError) {
  EXPECT_THROW(parse_machines("# only comments\n", "empty.machine"),
               InvalidArgument);
}

// ------------------------------------------------------------ round trips

TEST(MachineDesc, TextRoundTripsEveryBuiltin) {
  for (const MachineSpec& spec : MachineRegistry::builtin().all()) {
    SCOPED_TRACE(spec.name);
    const auto reparsed = parse_machines(machine_to_text(spec), "rt");
    ASSERT_EQ(reparsed.size(), 1u);
    EXPECT_EQ(reparsed[0], spec);
  }
}

TEST(MachineDesc, TextRoundTripsRichSpec) {
  const auto specs = parse_machines(
      "machine rich\ndescription all the axes\nclass a address 3\n"
      "class m modify 2\nmodify-range 0 2\ninc 4\ndec 8\n"
      "addressing pre\n",
      "t");
  const auto reparsed = parse_machines(machine_to_text(specs[0]), "rt");
  ASSERT_EQ(reparsed.size(), 1u);
  EXPECT_EQ(reparsed[0], specs[0]);
}

TEST(MachineDesc, JsonRoundTripsEveryBuiltin) {
  for (const MachineSpec& spec : MachineRegistry::builtin().all()) {
    SCOPED_TRACE(spec.name);
    EXPECT_EQ(machine_from_json(machine_to_json(spec)), spec);
  }
}

TEST(MachineDesc, JsonAcceptsLegacyFlatForm) {
  const support::JsonValue json = support::JsonValue::parse(
      R"({"registers": 4, "modify_registers": 2, "modify_range": 2})");
  const MachineSpec spec = machine_from_json(json);
  EXPECT_EQ(spec.address_registers(), 4u);
  EXPECT_EQ(spec.modify_registers(), 2u);
  EXPECT_EQ(spec.modify_lo, -2);
  EXPECT_EQ(spec.modify_hi, 2);
}

TEST(MachineDesc, JsonRejectsUnknownFields) {
  const support::JsonValue json =
      support::JsonValue::parse(R"({"registers": 4, "wheels": 3})");
  EXPECT_THROW(machine_from_json(json), InvalidArgument);
}

// -------------------------------------------------------------- registry

TEST(MachineRegistryTest, BuiltinCatalogMatchesLegacyApi) {
  EXPECT_EQ(MachineRegistry::builtin().names(), builtin_machine_names());
  EXPECT_EQ(MachineRegistry::builtin().all(), builtin_machines());
}

TEST(MachineRegistryTest, AddReplacesInPlaceByName) {
  MachineRegistry registry = MachineRegistry::with_builtins();
  const std::vector<std::string> before = registry.names();
  MachineSpec replacement = registry.get("wide4");
  replacement.set_address_registers(16);
  registry.add(replacement);
  EXPECT_EQ(registry.names(), before) << "replacement must keep the slot";
  EXPECT_EQ(registry.get("wide4").address_registers(), 16u);
}

TEST(MachineRegistryTest, GetUnknownListsKnownNames) {
  try {
    MachineRegistry::builtin().get("pdp11");
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("pdp11"), std::string::npos);
    EXPECT_NE(what.find("tms320c25"), std::string::npos);
  }
}

TEST(MachineRegistryTest, LoadFileLayersOverCatalog) {
  MachineRegistry registry = MachineRegistry::with_builtins();
  const std::size_t before = registry.size();
  EXPECT_EQ(registry.load_file(kMachinesDir + "dsp56300.machine"), 1u);
  EXPECT_EQ(registry.size(), before + 1);
  const MachineSpec spec = registry.get("dsp56300");
  EXPECT_EQ(spec.modify_lo, -1);
  EXPECT_EQ(spec.modify_hi, 3);
  EXPECT_EQ(spec.modify_registers(), 8u);
}

// --------------------------------------------------- builtin file parity

// Every builtin ships as a .machine file; loading that file must yield
// the embedded catalog spec exactly — same spec, same canonical bytes,
// and byte-identical pipeline results.
TEST(MachineFileParity, ShippedFilesMatchEmbeddedCatalog) {
  for (const MachineSpec& builtin : MachineRegistry::builtin().all()) {
    SCOPED_TRACE(builtin.name);
    const std::string path = kMachinesDir + builtin.name + ".machine";
    const std::vector<MachineSpec> loaded = load_machine_file(path);
    ASSERT_EQ(loaded.size(), 1u);
    EXPECT_EQ(loaded[0], builtin);
    EXPECT_EQ(slurp(path), machine_to_text(builtin))
        << path << " is not in canonical form";
  }
}

TEST(MachineFileParity, FileLoadedRunsAreByteIdentical) {
  const ir::Kernel kernel = ir::builtin_kernel("paper_example");
  for (const MachineSpec& builtin : MachineRegistry::builtin().all()) {
    SCOPED_TRACE(builtin.name);
    const MachineSpec loaded =
        load_machine_file(kMachinesDir + builtin.name + ".machine")[0];
    const MachineRunReport a = run_on_machine(kernel, builtin);
    const MachineRunReport b = run_on_machine(kernel, loaded);
    EXPECT_EQ(a.allocation_cost, b.allocation_cost);
    EXPECT_EQ(a.residual_cost, b.residual_cost);
    EXPECT_EQ(a.verified, b.verified);
  }
}

TEST(MachineFileParity, FileLoadedBatchRowsAreByteIdentical) {
  eval::BatchConfig embedded;
  embedded.kernels = {ir::builtin_kernel("fir")};
  embedded.machines = MachineRegistry::builtin().all();
  eval::BatchConfig from_files = embedded;
  from_files.machines.clear();
  for (const MachineSpec& builtin : MachineRegistry::builtin().all()) {
    from_files.machines.push_back(
        load_machine_file(kMachinesDir + builtin.name + ".machine")[0]);
  }
  const std::string a = eval::batch_to_csv(eval::run_batch(embedded))
                            .to_string();
  const std::string b = eval::batch_to_csv(eval::run_batch(from_files))
                            .to_string();
  EXPECT_EQ(a, b);
}

// ----------------------------------------- windows, widths, pre-modify

TEST(MachineSpecSemantics, AsymmetricWindowIsDirectional) {
  const MachineSpec spec =
      load_machine_file(kMachinesDir + "msp430x.machine")[0];
  const core::CostModel model = spec.cost_model();
  EXPECT_TRUE(model.free_distance(0));
  EXPECT_TRUE(model.free_distance(1));
  EXPECT_FALSE(model.free_distance(-1))
      << "post-increment-only machines cannot step backwards for free";
  EXPECT_TRUE(model.free_distance(2)) << "dedicated inc width";
  EXPECT_FALSE(model.free_distance(-2));
}

TEST(MachineSpecSemantics, FreeWidthsReachOutsideTheWindow) {
  const MachineSpec spec =
      load_machine_file(kMachinesDir + "arm946e.machine")[0];
  const core::CostModel model = spec.cost_model();
  EXPECT_TRUE(model.free_distance(4));
  EXPECT_TRUE(model.free_distance(-4));
  EXPECT_FALSE(model.free_distance(3));
  EXPECT_FALSE(model.free_distance(5));
}

TEST(MachineSpecSemantics, SettersPreserveUnrelatedAxes) {
  MachineSpec spec = load_machine_file(kMachinesDir + "dsp56300.machine")[0];
  spec.set_address_registers(4);
  EXPECT_EQ(spec.address_registers(), 4u);
  EXPECT_EQ(spec.modify_lo, -1) << "window must survive a K override";
  EXPECT_EQ(spec.modify_hi, 3);
  EXPECT_EQ(spec.modify_registers(), 8u);
}

TEST(MachineSpecSemantics, FileMachinesVerifyEndToEnd) {
  const char* files[] = {"msp430x.machine", "arm946e.machine",
                         "dsp56300.machine", "arm946e_wb.machine"};
  for (const ir::Kernel& kernel : ir::builtin_kernels()) {
    for (const char* file : files) {
      SCOPED_TRACE(kernel.name() + std::string(" on ") + file);
      const MachineSpec spec = load_machine_file(kMachinesDir + file)[0];
      const MachineRunReport report = run_on_machine(kernel, spec);
      EXPECT_TRUE(report.verified);
      EXPECT_GE(report.allocation_cost, report.residual_cost);
    }
  }
}

TEST(MachineSpecSemantics, PreModifyMatchesPostModifyCosts) {
  // Pre- vs. post-modify changes when the update happens, not how many
  // updates there are: with identical resources both addressing styles
  // must verify at the same analytic cost.
  const ir::Kernel kernel = ir::builtin_kernel("paper_example");
  MachineSpec pre = load_machine_file(kMachinesDir + "arm946e_wb.machine")[0];
  MachineSpec post = pre;
  post.addressing = Addressing::kPostModify;
  const MachineRunReport a = run_on_machine(kernel, pre);
  const MachineRunReport b = run_on_machine(kernel, post);
  EXPECT_TRUE(a.verified);
  EXPECT_TRUE(b.verified);
  EXPECT_EQ(a.allocation_cost, b.allocation_cost);
  EXPECT_EQ(a.residual_cost, b.residual_cost);
}

// --------------------------------------------------------- structural key

TEST(MachineStructuralKey, IgnoresDecorationButNotResources) {
  const MachineSpec base = builtin_machine("dsp56002");
  MachineSpec renamed = base;
  renamed.name = "elsewhere";
  renamed.description = "different text";
  renamed.classes[0].name = "p";
  EXPECT_EQ(renamed.structural_key(), base.structural_key());

  MachineSpec asymmetric = base;
  asymmetric.modify_lo = 0;  // same M magnitude, different window
  EXPECT_NE(asymmetric.structural_key(), base.structural_key());

  MachineSpec widths = base;
  widths.free_widths = {4};
  EXPECT_NE(widths.structural_key(), base.structural_key());

  MachineSpec pre = base;
  pre.addressing = Addressing::kPreModify;
  EXPECT_NE(pre.structural_key(), base.structural_key());
}

}  // namespace
}  // namespace dspaddr::agu
