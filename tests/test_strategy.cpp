// The pluggable strategy registry and its engine integration: layout
// placement, allocation baselines, fingerprint separation (no two
// strategies may ever share a cache entry), and the default path's
// equivalence with the pre-registry pipeline.
#include <gtest/gtest.h>

#include <cstdlib>
#include <set>

#include "agu/machines.hpp"
#include "engine/engine.hpp"
#include "engine/fingerprint.hpp"
#include "engine/serialize.hpp"
#include "engine/strategy.hpp"
#include "ir/kernels.hpp"
#include "ir/layout.hpp"
#include "support/check.hpp"

namespace dspaddr {
namespace {

engine::Request paper_request(std::size_t registers = 2) {
  engine::Request request;
  request.kernel = ir::builtin_kernel("paper_example");
  request.machine.name = "custom";
  request.machine.set_address_registers(registers);
  request.machine.set_modify_registers(0);
  request.machine.set_modify_range(1);
  return request;
}

// -------------------------------------------------------------- registry

TEST(StrategyRegistry, BuiltinCatalogIsComplete) {
  const engine::StrategyRegistry& registry =
      engine::StrategyRegistry::builtin();
  EXPECT_EQ(registry.layout_names(),
            (std::vector<std::string>{"contiguous", "declaration-padded",
                                      "soa-liao", "goa"}));
  EXPECT_EQ(registry.allocation_names(),
            (std::vector<std::string>{"two-phase", "exact", "naive",
                                      "random-merge", "round-robin",
                                      "greedy-online"}));
  for (const std::string& name : registry.layout_names()) {
    const engine::LayoutStrategy* strategy = registry.layout(name);
    ASSERT_NE(strategy, nullptr) << name;
    EXPECT_EQ(strategy->name(), name);
    EXPECT_FALSE(strategy->description().empty());
  }
  for (const std::string& name : registry.allocation_names()) {
    const engine::AllocationStrategy* strategy = registry.allocation(name);
    ASSERT_NE(strategy, nullptr) << name;
    EXPECT_EQ(strategy->name(), name);
    EXPECT_FALSE(strategy->description().empty());
  }
  EXPECT_EQ(registry.layout(engine::kDefaultLayout),
            registry.layout("contiguous"));
  EXPECT_EQ(registry.allocation(engine::kDefaultStrategy),
            registry.allocation("two-phase"));
}

TEST(StrategyRegistry, UnknownNamesReturnNull) {
  const engine::StrategyRegistry& registry =
      engine::StrategyRegistry::builtin();
  EXPECT_EQ(registry.layout("bogus"), nullptr);
  EXPECT_EQ(registry.allocation("bogus"), nullptr);
  EXPECT_NE(engine::known_layout_names().find("soa-liao"),
            std::string::npos);
  EXPECT_NE(engine::known_strategy_names().find("greedy-online"),
            std::string::npos);
}

namespace {

class ReverseLayout final : public engine::LayoutStrategy {
public:
  std::string_view name() const override { return "reverse"; }
  std::string_view description() const override {
    return "declaration order, reversed";
  }
  ir::ArrayLayout place(const ir::Kernel& kernel,
                        const agu::AguSpec&) const override {
    ir::ArrayLayout layout;
    std::int64_t next = 0;
    for (auto it = kernel.arrays().rbegin(); it != kernel.arrays().rend();
         ++it) {
      layout.place(it->name, next);
      next += it->size;
    }
    return layout;
  }
};

}  // namespace

TEST(StrategyRegistry, PrivateRegistriesAreExtensible) {
  engine::StrategyRegistry registry;
  registry.add_layout(std::make_unique<ReverseLayout>());
  EXPECT_NE(registry.layout("reverse"), nullptr);
  // Duplicate names are rejected.
  EXPECT_THROW(registry.add_layout(std::make_unique<ReverseLayout>()),
               Error);
  // The builtin registry is unaffected.
  EXPECT_EQ(engine::StrategyRegistry::builtin().layout("reverse"), nullptr);
}

// --------------------------------------------------------------- layouts

ir::Kernel two_array_kernel() {
  ir::Kernel kernel("pair", "two arrays");
  kernel.add_array("a", 4).add_array("b", 6).set_iterations(4);
  kernel.add_access("a", 0).add_access("b", 0).add_access("a", 1);
  return kernel;
}

TEST(LayoutStrategies, ContiguousMatchesIrDefault) {
  const ir::Kernel kernel = two_array_kernel();
  const agu::AguSpec machine = agu::builtin_machine("minimal2");
  const ir::ArrayLayout layout =
      engine::StrategyRegistry::builtin().layout("contiguous")->place(
          kernel, machine);
  EXPECT_EQ(layout.base_of("a"), 0);
  EXPECT_EQ(layout.base_of("b"), 4);
  EXPECT_EQ(ir::layout_extent(kernel, layout), 10);
}

TEST(LayoutStrategies, DeclarationPaddedInsertsGuardWords) {
  const ir::Kernel kernel = two_array_kernel();
  const agu::AguSpec machine = agu::builtin_machine("minimal2");
  const ir::ArrayLayout layout =
      engine::StrategyRegistry::builtin()
          .layout("declaration-padded")
          ->place(kernel, machine);
  EXPECT_EQ(layout.base_of("a"), 0);
  EXPECT_EQ(layout.base_of("b"), 5);  // 4 + 1 guard word
  EXPECT_EQ(ir::layout_extent(kernel, layout), 11);
}

TEST(LayoutStrategies, EveryLayoutPlacesEveryArrayExactlyOnce) {
  // Each strategy must produce a valid, hole-consistent placement:
  // every declared array placed, no two arrays overlapping.
  ir::Kernel kernel("multi", "five arrays");
  kernel.set_iterations(2);
  for (const char* name : {"a", "b", "c", "d", "e"}) {
    kernel.add_array(name, 3);
  }
  // Access pattern with cross-array structure for soa/goa to chew on.
  for (const char* name : {"a", "c", "a", "b", "e", "d", "c", "a"}) {
    kernel.add_access(name, 0);
  }
  const agu::AguSpec machine = agu::builtin_machine("minimal2");
  for (const std::string& name :
       engine::StrategyRegistry::builtin().layout_names()) {
    SCOPED_TRACE(name);
    const ir::ArrayLayout layout =
        engine::StrategyRegistry::builtin().layout(name)->place(kernel,
                                                                machine);
    std::set<std::int64_t> words;
    for (const ir::ArrayDecl& array : kernel.arrays()) {
      ASSERT_TRUE(layout.contains(array.name));
      for (std::int64_t w = 0; w < array.size; ++w) {
        EXPECT_TRUE(words.insert(layout.base_of(array.name) + w).second)
            << "overlap at word " << layout.base_of(array.name) + w;
      }
    }
    EXPECT_GE(ir::layout_extent(kernel, layout),
              static_cast<std::int64_t>(words.size()));
  }
}

TEST(LayoutStrategies, SoaLiaoKeepsFrequentNeighboursAdjacent) {
  // b and c alternate; a is touched once. SOA must place b next to c.
  ir::Kernel kernel("alt", "alternating pair");
  kernel.add_array("a", 2).add_array("b", 2).add_array("c", 2);
  kernel.set_iterations(2);
  for (int i = 0; i < 4; ++i) {
    kernel.add_access("b", 0).add_access("c", 0);
  }
  kernel.add_access("a", 0);
  const ir::ArrayLayout layout =
      engine::StrategyRegistry::builtin().layout("soa-liao")->place(
          kernel, agu::builtin_machine("minimal2"));
  const std::int64_t gap =
      std::abs(layout.base_of("b") - layout.base_of("c"));
  EXPECT_EQ(gap, 2) << "b and c must be adjacent (one array apart)";
}

TEST(LayoutStrategies, LayoutsAreDeterministic) {
  const ir::Kernel kernel = ir::builtin_kernel("biquad");
  const agu::AguSpec machine = agu::builtin_machine("wide4");
  for (const std::string& name :
       engine::StrategyRegistry::builtin().layout_names()) {
    SCOPED_TRACE(name);
    const engine::LayoutStrategy* strategy =
        engine::StrategyRegistry::builtin().layout(name);
    const ir::ArrayLayout first = strategy->place(kernel, machine);
    const ir::ArrayLayout second = strategy->place(kernel, machine);
    for (const ir::ArrayDecl& array : kernel.arrays()) {
      EXPECT_EQ(first.base_of(array.name), second.base_of(array.name));
    }
  }
}

// ----------------------------------------------------- engine integration

TEST(EngineStrategies, DefaultRequestMatchesExplicitDefaults) {
  engine::Engine engine(engine::Engine::Options{0});
  const engine::Result implicit = engine.run(paper_request());
  engine::Request explicit_request = paper_request();
  explicit_request.layout = "contiguous";
  explicit_request.strategy = "two-phase";
  const engine::Result explicit_result = engine.run(explicit_request);
  EXPECT_EQ(engine::result_to_json_line(implicit),
            engine::result_to_json_line(explicit_result));
  EXPECT_EQ(implicit.layout, "contiguous");
  EXPECT_EQ(implicit.strategy, "two-phase");
  EXPECT_EQ(implicit.layout_extent, 64);
}

TEST(EngineStrategies, NaiveIsWorseThanTwoPhaseOnThePaperExample) {
  // The paper's Fig. 1 comparison: cost-guided merging reaches 2,
  // arbitrary merging 4, on the same phase-1 cover (K = 2, M = 1).
  engine::Engine engine;
  const engine::Result two_phase = engine.run(paper_request());
  engine::Request naive_request = paper_request();
  naive_request.strategy = "naive";
  const engine::Result naive = engine.run(naive_request);
  ASSERT_TRUE(two_phase.ok());
  ASSERT_TRUE(naive.ok());
  EXPECT_EQ(two_phase.allocation_cost, 2);
  EXPECT_EQ(naive.allocation_cost, 4);
  EXPECT_GE(naive.allocation_cost, two_phase.allocation_cost);
  // Both simulate and verify: a baseline's program is still correct,
  // just more expensive.
  EXPECT_TRUE(two_phase.verified);
  EXPECT_TRUE(naive.verified);
}

TEST(EngineStrategies, TwoStrategiesNeverShareACacheEntry) {
  // The acceptance gate: run two strategies on one kernel through one
  // engine — zero spurious hits, distinct entries, distinct costs.
  engine::Engine engine;
  const engine::Result first = engine.run(paper_request());
  engine::Request naive_request = paper_request();
  naive_request.strategy = "naive";
  const engine::Result second = engine.run(naive_request);
  EXPECT_FALSE(first.cache_hit);
  EXPECT_FALSE(second.cache_hit);
  const engine::CacheStats stats = engine.cache_stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_NE(first.allocation_cost, second.allocation_cost);

  // Reruns of each strategy hit their own entries and echo the right
  // strategy back.
  const engine::Result first_again = engine.run(paper_request());
  const engine::Result second_again = engine.run(naive_request);
  EXPECT_TRUE(first_again.cache_hit);
  EXPECT_TRUE(second_again.cache_hit);
  EXPECT_EQ(first_again.strategy, "two-phase");
  EXPECT_EQ(second_again.strategy, "naive");
  EXPECT_EQ(first_again.allocation_cost, first.allocation_cost);
  EXPECT_EQ(second_again.allocation_cost, second.allocation_cost);
}

TEST(EngineStrategies, FingerprintSeparatesEveryStrategyPair) {
  // Even on a single-array kernel, where every layout lowers to the
  // same sequence, each (layout, strategy) pair must fingerprint
  // differently.
  const engine::Request base = paper_request();
  const ir::AccessSequence seq = ir::lower(base.kernel);
  std::set<std::string> keys;
  std::size_t pairs = 0;
  for (const std::string& layout :
       engine::StrategyRegistry::builtin().layout_names()) {
    for (const std::string& strategy :
         engine::StrategyRegistry::builtin().allocation_names()) {
      engine::Request request = base;
      request.layout = layout;
      request.strategy = strategy;
      keys.insert(engine::request_fingerprint(request, seq));
      ++pairs;
    }
  }
  EXPECT_EQ(keys.size(), pairs);
}

TEST(EngineStrategies, UnknownLayoutFailsTheLowerStage) {
  engine::Engine engine;
  engine::Request request = paper_request();
  request.layout = "bogus";
  const engine::Result result = engine.run(request);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error->stage, engine::Stage::kLower);
  EXPECT_NE(result.error->message.find("bogus"), std::string::npos);
  EXPECT_NE(result.error->message.find("contiguous"), std::string::npos);
}

TEST(EngineStrategies, UnknownStrategyFailsTheAllocateStage) {
  engine::Engine engine;
  engine::Request request = paper_request();
  request.strategy = "bogus";
  const engine::Result result = engine.run(request);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error->stage, engine::Stage::kAllocate);
  EXPECT_NE(result.error->message.find("two-phase"), std::string::npos);
  // The lower stage completed normally.
  EXPECT_TRUE(result.stage_done(engine::Stage::kLower));
  EXPECT_GT(result.accesses, 0u);
}

TEST(EngineStrategies, EveryPairRunsTheFullPipelineVerified) {
  // The whole N x M matrix on a multi-array kernel: every combination
  // must produce a simulator-verified program.
  engine::Engine engine;
  engine::Request base;
  base.kernel = ir::builtin_kernel("biquad");
  base.machine = agu::builtin_machine("minimal2");
  for (const std::string& layout :
       engine::StrategyRegistry::builtin().layout_names()) {
    for (const std::string& strategy :
         engine::StrategyRegistry::builtin().allocation_names()) {
      SCOPED_TRACE(layout + "/" + strategy);
      engine::Request request = base;
      request.layout = layout;
      request.strategy = strategy;
      const engine::Result result = engine.run(request);
      ASSERT_TRUE(result.ok()) << result.error->message;
      EXPECT_TRUE(result.verified);
      EXPECT_EQ(result.layout, layout);
      EXPECT_EQ(result.strategy, strategy);
      EXPECT_GT(result.layout_extent, 0);
    }
  }
}

TEST(EngineStrategies, SerializationCarriesStrategyAndExtent) {
  engine::Engine engine;
  engine::Request request = paper_request();
  request.layout = "declaration-padded";
  request.strategy = "round-robin";
  const support::JsonValue json = support::JsonValue::parse(
      engine::result_to_json_line(engine.run(request)));
  EXPECT_EQ(json.find("layout")->as_string(), "declaration-padded");
  EXPECT_EQ(json.find("strategy")->as_string(), "round-robin");
  EXPECT_EQ(json.find("stages")
                ->find("lower")
                ->find("layout_extent")
                ->as_int(),
            64);
}

TEST(EngineStrategies, ExactStrategyProvesOptimality) {
  engine::Engine engine;
  engine::Request request = paper_request();
  request.strategy = "exact";
  const engine::Result result = engine.run(request);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.stats.phase2_exact);
  EXPECT_TRUE(result.stats.phase2_proven);
  EXPECT_EQ(result.allocation_cost, 2);
}

TEST(EngineStrategies, BaselinesNeverGetTheExactUpgrade) {
  // Regression guard: the naive/random-merge baselines must not be
  // silently repaired by the exact phase-2 search, whatever the
  // request's phase-2 mode says.
  engine::Engine engine;
  for (const char* strategy : {"naive", "random-merge"}) {
    SCOPED_TRACE(strategy);
    engine::Request request = paper_request();
    request.strategy = strategy;
    request.phase2.mode = core::Phase2Options::Mode::kExact;
    const engine::Result result = engine.run(request);
    ASSERT_TRUE(result.ok());
    EXPECT_FALSE(result.stats.phase2_exact);
    EXPECT_EQ(result.allocation_cost, 4);
  }
}

}  // namespace
}  // namespace dspaddr
