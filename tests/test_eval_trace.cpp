#include "eval/trace.hpp"

#include <gtest/gtest.h>

#include "agu/codegen.hpp"
#include "agu/simulator.hpp"
#include "core/allocator.hpp"
#include "eval/patterns.hpp"
#include "support/rng.hpp"

namespace dspaddr::eval {
namespace {

using ir::Access;
using ir::AccessSequence;

TEST(Trace, ExportsIterationMajorOrder) {
  const AccessSequence seq({Access{0, 1}, Access{10, 2}});
  const auto trace = to_trace(seq, 3);
  EXPECT_EQ(trace, (std::vector<std::int64_t>{0, 10, 1, 12, 2, 14}));
}

TEST(Trace, InferenceRoundTripsExport) {
  const AccessSequence seq(
      {Access{3, 1}, Access{-2, -1}, Access{7, 0}, Access{0, 4}});
  const auto trace = to_trace(seq, 5);
  const InferenceResult result = infer_sequence(trace, seq.size());
  ASSERT_TRUE(result.sequence.has_value()) << result.error;
  EXPECT_EQ(*result.sequence, seq);
}

TEST(Trace, InferenceRejectsBadShapes) {
  EXPECT_FALSE(infer_sequence({1, 2, 3}, 0).sequence.has_value());
  EXPECT_FALSE(infer_sequence({1, 2, 3}, 2).sequence.has_value());
  // One iteration only: strides unknown.
  EXPECT_FALSE(infer_sequence({1, 2}, 2).sequence.has_value());
  EXPECT_FALSE(infer_sequence({}, 2).sequence.has_value());
}

TEST(Trace, InferenceDetectsNonAffineTraces) {
  // Slot 0 jumps by +1 then +2: not affine.
  const std::vector<std::int64_t> trace{0, 5, 1, 6, 3, 7};
  const InferenceResult result = infer_sequence(trace, 2);
  EXPECT_FALSE(result.sequence.has_value());
  EXPECT_NE(result.error.find("not affine"), std::string::npos);
  EXPECT_NE(result.error.find("iteration 2"), std::string::npos);
}

TEST(Trace, SimulatorTraceMatchesExportedTrace) {
  // The AGU simulator's observed USE addresses are exactly the trace
  // export — two independent implementations of the same semantics.
  const auto seq = AccessSequence::from_offsets({1, 0, 2, -1, 1, 0, -2});
  core::ProblemConfig config;
  config.modify_range = 1;
  config.registers = 3;
  const core::Allocation a = core::RegisterAllocator(config).run(seq);
  const agu::Program p = agu::generate_code(seq, a);
  agu::Simulator::Options options;
  options.record_trace = true;
  const agu::SimResult r = agu::Simulator(options).run(p, seq, 9);
  ASSERT_TRUE(r.verified) << r.failure;
  EXPECT_EQ(r.trace, to_trace(seq, 9));
}

class TracePropertyTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(TracePropertyTest, InferenceIsExactOnAffineTraces) {
  support::Rng rng(GetParam() * 73 + 31);
  const std::size_t n = 1 + rng.index(12);
  std::vector<Access> accesses(n);
  for (auto& a : accesses) {
    a.offset = rng.uniform_int(-50, 50);
    a.stride = rng.uniform_int(-3, 3);
  }
  const AccessSequence seq(std::move(accesses));
  const std::uint64_t iterations = 2 + rng.index(10);
  const InferenceResult result =
      infer_sequence(to_trace(seq, iterations), n);
  ASSERT_TRUE(result.sequence.has_value()) << result.error;
  EXPECT_EQ(*result.sequence, seq);
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, TracePropertyTest,
                         ::testing::Range<std::uint64_t>(0, 25));

}  // namespace
}  // namespace dspaddr::eval
