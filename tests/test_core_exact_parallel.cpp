// The parallel exact solver's contract: `jobs` buys wall-clock, never
// different answers. Proven costs (and the proof itself) are identical
// at any jobs level; node counts and the witness assignment may vary.
// The suite name is matched by the CI TSan job's regex, so every test
// here also runs under ThreadSanitizer.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "agu/machines.hpp"
#include "core/allocator.hpp"
#include "core/exact.hpp"
#include "core/validate.hpp"
#include "eval/patterns.hpp"
#include "support/rng.hpp"

namespace dspaddr::core {
namespace {

using ir::AccessSequence;

const CostModel kM1{1, WrapPolicy::kCyclic};

AccessSequence hard_pattern(std::size_t accesses, std::uint64_t seed) {
  support::Rng rng(seed);
  eval::PatternSpec spec;
  spec.accesses = accesses;
  spec.offset_range = 8;
  spec.family = eval::PatternFamily::kSortedNoise;
  return eval::generate_pattern(spec, rng);
}

AccessSequence skewed_pattern(std::size_t accesses, std::uint64_t seed) {
  // Deep-unbalanced workload: long dominant ramps with rare far jumps
  // make one branch of the search tree much heavier than its siblings,
  // which is exactly the shape work-stealing exists for.
  support::Rng rng(seed);
  eval::PatternSpec spec;
  spec.accesses = accesses;
  spec.offset_range = 8;
  spec.family = eval::PatternFamily::kSkewedStrided;
  return eval::generate_pattern(spec, rng);
}

TEST(ParallelExact, ProvenCostsMatchSequentialAcrossJobs) {
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    const AccessSequence seq = hard_pattern(24, 0xA11E ^ seed);
    const ExactResult serial = exact_min_cost_allocation(seq, kM1, 3);
    ASSERT_TRUE(serial.proven) << "seed " << seed;
    for (const std::size_t jobs : {2u, 4u, 8u}) {
      ExactOptions options;
      options.jobs = jobs;
      const ExactResult parallel =
          exact_min_cost_allocation(seq, kM1, 3, options);
      ASSERT_TRUE(parallel.proven) << "seed " << seed << " jobs " << jobs;
      EXPECT_EQ(parallel.cost, serial.cost)
          << "seed " << seed << " jobs " << jobs;
      EXPECT_EQ(parallel.lower_bound, serial.lower_bound);
      validate_allocation(seq, parallel.paths, 3);
      EXPECT_EQ(total_cost(seq, parallel.paths, kM1), parallel.cost);
    }
  }
}

TEST(ParallelExact, FullBuiltinMachineCatalogAgreesAcrossJobsLevels) {
  // The satellite guarantee behind `--phase2-jobs`: on every catalog
  // machine (its own K, modify window and free widths), the proven
  // phase-2 cost and the total allocation cost are identical at jobs
  // 1, 4 and 8.
  const std::vector<agu::AguSpec> machines = agu::builtin_machines();
  ASSERT_FALSE(machines.empty());
  for (const agu::AguSpec& machine : machines) {
    const AccessSequence seq =
        hard_pattern(16, 0xCA7 ^ machine.address_registers());
    int serial_cost = 0;
    bool serial_proven = false;
    for (const std::size_t jobs : {1u, 4u, 8u}) {
      ProblemConfig config;
      config.registers = machine.address_registers();
      config.modify_range = machine.modify_range();
      config.modify_lo = machine.modify_lo;
      config.modify_hi = machine.modify_hi;
      config.free_widths = machine.free_widths;
      config.phase2.mode = Phase2Options::Mode::kExact;
      config.phase2.jobs = jobs;
      const Allocation a = RegisterAllocator(config).run(seq);
      if (jobs == 1) {
        serial_cost = a.cost();
        serial_proven = a.stats().phase2_proven;
      } else {
        EXPECT_EQ(a.cost(), serial_cost)
            << machine.name << " jobs=" << jobs;
        EXPECT_EQ(a.stats().phase2_proven, serial_proven)
            << machine.name << " jobs=" << jobs;
      }
    }
  }
}

TEST(ParallelExact, ProvenCostsMatchAcrossJobsOnSkewedStridedTrees) {
  // The work-stealing scheduler's contract on the workload it was
  // built for: deep unbalanced trees are split and stolen at whatever
  // schedule the OS produces, and the proven cost never moves.
  for (const std::uint64_t seed : {21u, 22u, 23u}) {
    const AccessSequence seq = skewed_pattern(26, 0x5EED ^ seed);
    const ExactResult serial = exact_min_cost_allocation(seq, kM1, 3);
    ASSERT_TRUE(serial.proven) << "seed " << seed;
    for (const std::size_t jobs : {2u, 8u}) {
      ExactOptions options;
      options.jobs = jobs;
      const ExactResult parallel =
          exact_min_cost_allocation(seq, kM1, 3, options);
      ASSERT_TRUE(parallel.proven) << "seed " << seed << " jobs " << jobs;
      EXPECT_EQ(parallel.cost, serial.cost)
          << "seed " << seed << " jobs " << jobs;
      EXPECT_EQ(parallel.lower_bound, serial.lower_bound);
      validate_allocation(seq, parallel.paths, 3);
      EXPECT_EQ(total_cost(seq, parallel.paths, kM1), parallel.cost);
    }
  }
}

TEST(ParallelExact, StealCountersAccountForEveryDonatedSubtree) {
  // Steal/split counts are schedule-dependent, but the accounting
  // identity is not: the pool executes the root task plus exactly one
  // task per donated split, and attempts dominate successes. The
  // answer repeats exactly even though the schedule does not.
  const AccessSequence seq = hard_pattern(32, 7);
  ExactOptions options;
  options.jobs = 4;
  const ExactResult first = exact_min_cost_allocation(seq, kM1, 3, options);
  const ExactResult second =
      exact_min_cost_allocation(seq, kM1, 3, options);
  ASSERT_TRUE(first.proven);
  ASSERT_TRUE(second.proven);
  EXPECT_EQ(first.subtree_tasks, first.splits + 1);
  EXPECT_EQ(second.subtree_tasks, second.splits + 1);
  EXPECT_GE(first.steal_attempts, first.steals);
  EXPECT_EQ(first.cost, second.cost);
  EXPECT_EQ(first.lower_bound, second.lower_bound);
}

TEST(ParallelExact, DeepUnbalancedTreesActuallyGetStolen) {
  // Donation is demand-driven (only when a worker is hungry), so a
  // single run can in principle finish before any thief wakes up; over
  // several deep skewed instances at jobs=8 the pool must both split
  // and steal at least once in aggregate.
  std::uint64_t total_splits = 0;
  std::uint64_t total_steals = 0;
  for (const std::uint64_t seed : {31u, 32u, 33u}) {
    const AccessSequence seq = skewed_pattern(30, 0xDEE9 ^ seed);
    ExactOptions options;
    options.jobs = 8;
    const ExactResult r = exact_min_cost_allocation(seq, kM1, 3, options);
    ASSERT_TRUE(r.proven) << "seed " << seed;
    total_splits += r.splits;
    total_steals += r.steals;
  }
  EXPECT_GT(total_splits, 0u);
  EXPECT_GT(total_steals, 0u);
}

TEST(ParallelExact, StealGrainNeverChangesTheProvenCost) {
  // The grain bounds how shallow a donated subtree may be; it is a
  // throughput knob, never a correctness knob.
  const AccessSequence seq = skewed_pattern(24, 0x96A1);
  const ExactResult serial = exact_min_cost_allocation(seq, kM1, 3);
  ASSERT_TRUE(serial.proven);
  for (const std::size_t grain : {1u, 4u, 32u}) {
    ExactOptions options;
    options.jobs = 4;
    options.steal_grain = grain;
    const ExactResult r = exact_min_cost_allocation(seq, kM1, 3, options);
    ASSERT_TRUE(r.proven) << "grain " << grain;
    EXPECT_EQ(r.cost, serial.cost) << "grain " << grain;
    EXPECT_EQ(r.lower_bound, serial.lower_bound) << "grain " << grain;
  }
}

TEST(ParallelExact, SequentialSolveReportsNoSubtreeTasks) {
  const AccessSequence seq = hard_pattern(20, 9);
  const ExactResult r = exact_min_cost_allocation(seq, kM1, 3);
  ASSERT_TRUE(r.proven);
  EXPECT_EQ(r.subtree_tasks, 0u);
  EXPECT_EQ(r.steals, 0u);
  EXPECT_EQ(r.steal_attempts, 0u);
  EXPECT_EQ(r.splits, 0u);
}

TEST(ParallelExact, NodeBudgetAbortKeepsValidIncumbent) {
  const AccessSequence seq = hard_pattern(40, 11);
  ExactOptions options;
  options.jobs = 4;
  options.max_nodes = 5'000;
  const ExactResult r = exact_min_cost_allocation(seq, kM1, 3, options);
  EXPECT_FALSE(r.proven);
  validate_allocation(seq, r.paths, 3);
  EXPECT_EQ(total_cost(seq, r.paths, kM1), r.cost);
  EXPECT_GE(r.gap(), 0);
}

TEST(ParallelExact, HonorsPinnedPrefix) {
  const AccessSequence seq = hard_pattern(24, 13);
  ExactOptions pinned;
  pinned.pinned_prefix = {0, 0, 1};
  ExactOptions parallel_pinned = pinned;
  parallel_pinned.jobs = 4;
  const ExactResult serial = exact_min_cost_allocation(seq, kM1, 3, pinned);
  const ExactResult parallel =
      exact_min_cost_allocation(seq, kM1, 3, parallel_pinned);
  ASSERT_TRUE(serial.proven);
  ASSERT_TRUE(parallel.proven);
  EXPECT_EQ(parallel.cost, serial.cost);
  validate_allocation(seq, parallel.paths, 3);
}

TEST(ParallelExact, WarmStartIsSharedWithEveryTask) {
  // The warm-start incumbent seeds the shared atomic before the
  // fan-out, so no task can record anything worse.
  const AccessSequence seq = hard_pattern(24, 17);
  ProblemConfig config;
  config.modify_range = 1;
  config.registers = 3;
  config.phase2.mode = Phase2Options::Mode::kHeuristic;
  const Allocation heuristic = RegisterAllocator(config).run(seq);

  ExactOptions options;
  options.jobs = 4;
  options.warm_start = heuristic.paths();
  const ExactResult r = exact_min_cost_allocation(seq, kM1, 3, options);
  ASSERT_TRUE(r.proven);
  EXPECT_LE(r.cost, heuristic.cost());
  validate_allocation(seq, r.paths, 3);
}

TEST(ParallelExact, ManyJobsOnTinySequencesDegradeToSequential) {
  // A tiny tree is never worth donating (every frame sits below the
  // steal grain), so the root task solves it alone: one executed task,
  // zero splits, and the sequential answer.
  const AccessSequence seq = AccessSequence::from_offsets({1, 0, 2, -1});
  ExactOptions options;
  options.jobs = 16;
  const ExactResult parallel =
      exact_min_cost_allocation(seq, kM1, 2, options);
  const ExactResult serial = exact_min_cost_allocation(seq, kM1, 2);
  ASSERT_TRUE(parallel.proven);
  EXPECT_EQ(parallel.cost, serial.cost);
  EXPECT_EQ(parallel.subtree_tasks, 1u);
  EXPECT_EQ(parallel.splits, 0u);
}

}  // namespace
}  // namespace dspaddr::core
