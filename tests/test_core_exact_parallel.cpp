// The parallel exact solver's contract: `jobs` buys wall-clock, never
// different answers. Proven costs (and the proof itself) are identical
// at any jobs level; node counts and the witness assignment may vary.
// The suite name is matched by the CI TSan job's regex, so every test
// here also runs under ThreadSanitizer.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "agu/machines.hpp"
#include "core/allocator.hpp"
#include "core/exact.hpp"
#include "core/validate.hpp"
#include "eval/patterns.hpp"
#include "support/rng.hpp"

namespace dspaddr::core {
namespace {

using ir::AccessSequence;

const CostModel kM1{1, WrapPolicy::kCyclic};

AccessSequence hard_pattern(std::size_t accesses, std::uint64_t seed) {
  support::Rng rng(seed);
  eval::PatternSpec spec;
  spec.accesses = accesses;
  spec.offset_range = 8;
  spec.family = eval::PatternFamily::kSortedNoise;
  return eval::generate_pattern(spec, rng);
}

TEST(ParallelExact, ProvenCostsMatchSequentialAcrossJobs) {
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    const AccessSequence seq = hard_pattern(24, 0xA11E ^ seed);
    const ExactResult serial = exact_min_cost_allocation(seq, kM1, 3);
    ASSERT_TRUE(serial.proven) << "seed " << seed;
    for (const std::size_t jobs : {2u, 4u, 8u}) {
      ExactOptions options;
      options.jobs = jobs;
      const ExactResult parallel =
          exact_min_cost_allocation(seq, kM1, 3, options);
      ASSERT_TRUE(parallel.proven) << "seed " << seed << " jobs " << jobs;
      EXPECT_EQ(parallel.cost, serial.cost)
          << "seed " << seed << " jobs " << jobs;
      EXPECT_EQ(parallel.lower_bound, serial.lower_bound);
      validate_allocation(seq, parallel.paths, 3);
      EXPECT_EQ(total_cost(seq, parallel.paths, kM1), parallel.cost);
    }
  }
}

TEST(ParallelExact, FullBuiltinMachineCatalogAgreesAcrossJobsLevels) {
  // The satellite guarantee behind `--phase2-jobs`: on every catalog
  // machine (its own K, modify window and free widths), the proven
  // phase-2 cost and the total allocation cost are identical at jobs
  // 1, 4 and 8.
  const std::vector<agu::AguSpec> machines = agu::builtin_machines();
  ASSERT_FALSE(machines.empty());
  for (const agu::AguSpec& machine : machines) {
    const AccessSequence seq =
        hard_pattern(16, 0xCA7 ^ machine.address_registers());
    int serial_cost = 0;
    bool serial_proven = false;
    for (const std::size_t jobs : {1u, 4u, 8u}) {
      ProblemConfig config;
      config.registers = machine.address_registers();
      config.modify_range = machine.modify_range();
      config.modify_lo = machine.modify_lo;
      config.modify_hi = machine.modify_hi;
      config.free_widths = machine.free_widths;
      config.phase2.mode = Phase2Options::Mode::kExact;
      config.phase2.jobs = jobs;
      const Allocation a = RegisterAllocator(config).run(seq);
      if (jobs == 1) {
        serial_cost = a.cost();
        serial_proven = a.stats().phase2_proven;
      } else {
        EXPECT_EQ(a.cost(), serial_cost)
            << machine.name << " jobs=" << jobs;
        EXPECT_EQ(a.stats().phase2_proven, serial_proven)
            << machine.name << " jobs=" << jobs;
      }
    }
  }
}

TEST(ParallelExact, SubtreeTasksAreDeterministicAndRepeatable) {
  // The frontier expansion is breadth-first with a deterministic move
  // order, so the fan-out itself (not just the answer) repeats exactly.
  const AccessSequence seq = hard_pattern(32, 7);
  ExactOptions options;
  options.jobs = 4;
  const ExactResult first = exact_min_cost_allocation(seq, kM1, 3, options);
  const ExactResult second =
      exact_min_cost_allocation(seq, kM1, 3, options);
  ASSERT_TRUE(first.proven);
  ASSERT_TRUE(second.proven);
  EXPECT_GT(first.subtree_tasks, 0u);
  EXPECT_EQ(first.subtree_tasks, second.subtree_tasks);
  EXPECT_EQ(first.cost, second.cost);
}

TEST(ParallelExact, SequentialSolveReportsNoSubtreeTasks) {
  const AccessSequence seq = hard_pattern(20, 9);
  const ExactResult r = exact_min_cost_allocation(seq, kM1, 3);
  ASSERT_TRUE(r.proven);
  EXPECT_EQ(r.subtree_tasks, 0u);
}

TEST(ParallelExact, NodeBudgetAbortKeepsValidIncumbent) {
  const AccessSequence seq = hard_pattern(40, 11);
  ExactOptions options;
  options.jobs = 4;
  options.max_nodes = 5'000;
  const ExactResult r = exact_min_cost_allocation(seq, kM1, 3, options);
  EXPECT_FALSE(r.proven);
  validate_allocation(seq, r.paths, 3);
  EXPECT_EQ(total_cost(seq, r.paths, kM1), r.cost);
  EXPECT_GE(r.gap(), 0);
}

TEST(ParallelExact, HonorsPinnedPrefix) {
  const AccessSequence seq = hard_pattern(24, 13);
  ExactOptions pinned;
  pinned.pinned_prefix = {0, 0, 1};
  ExactOptions parallel_pinned = pinned;
  parallel_pinned.jobs = 4;
  const ExactResult serial = exact_min_cost_allocation(seq, kM1, 3, pinned);
  const ExactResult parallel =
      exact_min_cost_allocation(seq, kM1, 3, parallel_pinned);
  ASSERT_TRUE(serial.proven);
  ASSERT_TRUE(parallel.proven);
  EXPECT_EQ(parallel.cost, serial.cost);
  validate_allocation(seq, parallel.paths, 3);
}

TEST(ParallelExact, WarmStartIsSharedWithEveryTask) {
  // The warm-start incumbent seeds the shared atomic before the
  // fan-out, so no task can record anything worse.
  const AccessSequence seq = hard_pattern(24, 17);
  ProblemConfig config;
  config.modify_range = 1;
  config.registers = 3;
  config.phase2.mode = Phase2Options::Mode::kHeuristic;
  const Allocation heuristic = RegisterAllocator(config).run(seq);

  ExactOptions options;
  options.jobs = 4;
  options.warm_start = heuristic.paths();
  const ExactResult r = exact_min_cost_allocation(seq, kM1, 3, options);
  ASSERT_TRUE(r.proven);
  EXPECT_LE(r.cost, heuristic.cost());
  validate_allocation(seq, r.paths, 3);
}

TEST(ParallelExact, ManyJobsOnTinySequencesDegradeToSequential) {
  // When the whole tree fits in the frontier expansion, the parallel
  // path answers without fanning out — and still proves.
  const AccessSequence seq = AccessSequence::from_offsets({1, 0, 2, -1});
  ExactOptions options;
  options.jobs = 16;
  const ExactResult parallel =
      exact_min_cost_allocation(seq, kM1, 2, options);
  const ExactResult serial = exact_min_cost_allocation(seq, kM1, 2);
  ASSERT_TRUE(parallel.proven);
  EXPECT_EQ(parallel.cost, serial.cost);
}

}  // namespace
}  // namespace dspaddr::core
