// Flag parsing and end-to-end behavior of the dspaddr CLI.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <sstream>

#include "agu/machine_desc.hpp"
#include "cli/app.hpp"
#include "cli/kernel_io.hpp"
#include "cli/options.hpp"
#include "cli/pipeline.hpp"
#include "support/json.hpp"

namespace dspaddr {
namespace {

const std::string kRoot = std::string(DSPADDR_SOURCE_DIR) + "/workloads/";

// ---------------------------------------------------------------- flags

TEST(CliOptions, RunDefaults) {
  const cli::RunOptions options =
      cli::parse_run_options({"--kernel", "f.c"});
  EXPECT_EQ(options.kernel_path, "f.c");
  EXPECT_FALSE(options.machine.has_value());
  EXPECT_FALSE(options.registers.has_value());
  EXPECT_FALSE(options.modify_range.has_value());
  EXPECT_EQ(options.format, cli::OutputFormat::kTable);
  EXPECT_FALSE(options.show_program);
}

TEST(CliOptions, RunAllFlags) {
  const cli::RunOptions options = cli::parse_run_options(
      {"--kernel", "f.kern", "--machine", "wide4", "--registers", "2",
       "--modify-range", "3", "--modify-registers", "4", "--iterations",
       "100", "--format", "csv", "--program"});
  EXPECT_EQ(options.kernel_path, "f.kern");
  EXPECT_EQ(options.machine, "wide4");
  EXPECT_EQ(options.registers, 2u);
  EXPECT_EQ(options.modify_range, 3);
  EXPECT_EQ(options.modify_registers, 4u);
  EXPECT_EQ(options.iterations, 100u);
  EXPECT_EQ(options.format, cli::OutputFormat::kCsv);
  EXPECT_TRUE(options.show_program);
}

TEST(CliOptions, MachineFileFlags) {
  const cli::RunOptions run = cli::parse_run_options(
      {"--kernel", "f.c", "--machine-file", "x.machine"});
  EXPECT_EQ(run.machine_file, "x.machine");

  const cli::BatchOptions batch = cli::parse_batch_options(
      {"--builtin", "fir", "--machine-file", "a.machine",
       "--machine-file=b.machine"});
  EXPECT_EQ(batch.machine_files,
            (std::vector<std::string>{"a.machine", "b.machine"}));

  const cli::CompareOptions compare = cli::parse_compare_options(
      {"--kernel", "fir", "--machine-file", "c.machine"});
  EXPECT_EQ(compare.machine_file, "c.machine");
}

TEST(CliOptions, MachinesSubcommand) {
  const cli::MachinesOptions list = cli::parse_machines_options({});
  EXPECT_EQ(list.format, cli::OutputFormat::kTable);
  EXPECT_TRUE(list.show.empty());

  const cli::MachinesOptions show = cli::parse_machines_options(
      {"show", "wide4", "--format", "json", "--machine-file", "m.machine"});
  EXPECT_EQ(show.show, "wide4");
  EXPECT_EQ(show.format, cli::OutputFormat::kJson);
  EXPECT_EQ(show.machine_files, (std::vector<std::string>{"m.machine"}));

  EXPECT_THROW(cli::parse_machines_options({"show"}), cli::UsageError);
  EXPECT_THROW(cli::parse_machines_options({"show", "a", "show", "b"}),
               cli::UsageError);
  EXPECT_THROW(cli::parse_machines_options({"frobnicate"}),
               cli::UsageError);
}

TEST(CliOptions, EqualsSyntax) {
  const cli::RunOptions options = cli::parse_run_options(
      {"--kernel=f.c", "--registers=8", "--format=csv"});
  EXPECT_EQ(options.kernel_path, "f.c");
  EXPECT_EQ(options.registers, 8u);
  EXPECT_EQ(options.format, cli::OutputFormat::kCsv);
}

TEST(CliOptions, Phase2AndTimeBudgetFlags) {
  const cli::RunOptions defaults =
      cli::parse_run_options({"--kernel", "f.c"});
  EXPECT_EQ(defaults.phase2, core::Phase2Options::Mode::kAuto);
  EXPECT_EQ(defaults.time_budget_ms, 0);

  const cli::RunOptions run = cli::parse_run_options(
      {"--kernel", "f.c", "--phase2", "exact", "--time-budget-ms", "250"});
  EXPECT_EQ(run.phase2, core::Phase2Options::Mode::kExact);
  EXPECT_EQ(run.time_budget_ms, 250);

  const cli::BatchOptions batch = cli::parse_batch_options(
      {"--builtin", "fir", "--phase2=heuristic", "--time-budget-ms=9"});
  EXPECT_EQ(batch.phase2, core::Phase2Options::Mode::kHeuristic);
  EXPECT_EQ(batch.time_budget_ms, 9);

  EXPECT_THROW(
      cli::parse_run_options({"--kernel", "f.c", "--phase2", "brute"}),
      cli::UsageError);
  EXPECT_THROW(cli::parse_run_options(
                   {"--kernel", "f.c", "--time-budget-ms", "-1"}),
               cli::UsageError);
}

TEST(CliOptions, Phase2JobsAndTiledFlags) {
  const cli::RunOptions defaults =
      cli::parse_run_options({"--kernel", "f.c"});
  EXPECT_EQ(defaults.phase2_jobs, 1u);

  const cli::RunOptions run = cli::parse_run_options(
      {"--kernel", "f.c", "--phase2", "tiled", "--phase2-jobs", "8"});
  EXPECT_EQ(run.phase2, core::Phase2Options::Mode::kTiled);
  EXPECT_EQ(run.phase2_jobs, 8u);

  const cli::BatchOptions batch = cli::parse_batch_options(
      {"--builtin", "fir", "--phase2=tiled", "--phase2-jobs=4"});
  EXPECT_EQ(batch.phase2, core::Phase2Options::Mode::kTiled);
  EXPECT_EQ(batch.phase2_jobs, 4u);
  EXPECT_EQ(cli::parse_batch_options({"--builtin", "fir"}).phase2_jobs, 1u);

  EXPECT_THROW(
      cli::parse_run_options({"--kernel", "f.c", "--phase2-jobs", "0"}),
      cli::UsageError);
  EXPECT_THROW(
      cli::parse_run_options({"--kernel", "f.c", "--phase2-jobs", "many"}),
      cli::UsageError);
  EXPECT_THROW(
      cli::parse_batch_options({"--builtin", "fir", "--phase2-jobs=0"}),
      cli::UsageError);
}

TEST(CliOptions, StealGrainAndWindowFlags) {
  const cli::RunOptions defaults =
      cli::parse_run_options({"--kernel", "f.c"});
  EXPECT_EQ(defaults.phase2_steal_grain, 0u);
  EXPECT_EQ(defaults.phase2_window, 0u);
  EXPECT_FALSE(defaults.phase2_window_auto);

  const cli::RunOptions run = cli::parse_run_options(
      {"--kernel", "f.c", "--phase2", "tiled", "--phase2-jobs", "4",
       "--phase2-steal-grain", "12", "--phase2-window", "24"});
  EXPECT_EQ(run.phase2_steal_grain, 12u);
  EXPECT_EQ(run.phase2_window, 24u);
  EXPECT_FALSE(run.phase2_window_auto);

  // "auto" turns the tuner on and leaves the starting width at its
  // default.
  const cli::RunOptions tuned = cli::parse_run_options(
      {"--kernel", "f.c", "--phase2=tiled", "--phase2-window=auto"});
  EXPECT_TRUE(tuned.phase2_window_auto);
  EXPECT_EQ(tuned.phase2_window, 0u);

  const cli::BatchOptions batch = cli::parse_batch_options(
      {"--builtin", "fir", "--phase2=tiled", "--phase2-window=auto",
       "--phase2-steal-grain=4"});
  EXPECT_TRUE(batch.phase2_window_auto);
  EXPECT_EQ(batch.phase2_steal_grain, 4u);

  EXPECT_THROW(cli::parse_run_options(
                   {"--kernel", "f.c", "--phase2-steal-grain", "0"}),
               cli::UsageError);
  EXPECT_THROW(
      cli::parse_run_options({"--kernel", "f.c", "--phase2-window", "4"}),
      cli::UsageError);  // below the minimum width of 8
  EXPECT_THROW(cli::parse_run_options(
                   {"--kernel", "f.c", "--phase2-window", "wide"}),
               cli::UsageError);
  EXPECT_THROW(
      cli::parse_batch_options({"--builtin", "fir", "--phase2-window=0"}),
      cli::UsageError);
}

TEST(CliOptions, RunRejectsBadInput) {
  EXPECT_THROW(cli::parse_run_options({}), cli::UsageError);
  EXPECT_THROW(cli::parse_run_options({"--kernel"}), cli::UsageError);
  EXPECT_THROW(cli::parse_run_options({"--kernel", "f.c", "--bogus"}),
               cli::UsageError);
  EXPECT_THROW(
      cli::parse_run_options({"--kernel", "f.c", "--registers", "0"}),
      cli::UsageError);
  EXPECT_THROW(
      cli::parse_run_options({"--kernel", "f.c", "--registers", "two"}),
      cli::UsageError);
  EXPECT_THROW(
      cli::parse_run_options({"--kernel", "f.c", "--format", "yaml"}),
      cli::UsageError);
  EXPECT_THROW(
      cli::parse_run_options({"--kernel", "f.c", "--modify-range", "-1"}),
      cli::UsageError);
}

TEST(CliOptions, BatchLists) {
  const cli::BatchOptions options = cli::parse_batch_options(
      {"--builtin", "fir,biquad", "--machines", "minimal2,wide4",
       "--registers", "1,2,4", "--modify-range", "1,2", "--jobs", "8",
       "--format", "table", "--out", "r.csv"});
  EXPECT_EQ(options.builtin_kernels,
            (std::vector<std::string>{"fir", "biquad"}));
  EXPECT_EQ(options.machines,
            (std::vector<std::string>{"minimal2", "wide4"}));
  EXPECT_EQ(options.register_counts, (std::vector<std::size_t>{1, 2, 4}));
  EXPECT_EQ(options.modify_ranges, (std::vector<std::int64_t>{1, 2}));
  EXPECT_EQ(options.jobs, 8u);
  EXPECT_EQ(options.format, cli::OutputFormat::kTable);
  EXPECT_EQ(options.output_path, "r.csv");
}

TEST(CliOptions, LayoutAndStrategyFlags) {
  const cli::RunOptions defaults =
      cli::parse_run_options({"--kernel", "f.c"});
  EXPECT_EQ(defaults.layout, "contiguous");
  EXPECT_EQ(defaults.strategy, "two-phase");

  const cli::RunOptions run = cli::parse_run_options(
      {"--kernel", "f.c", "--layout", "soa-liao", "--strategy", "naive"});
  EXPECT_EQ(run.layout, "soa-liao");
  EXPECT_EQ(run.strategy, "naive");

  const cli::BatchOptions batch = cli::parse_batch_options(
      {"--builtin", "fir", "--layout", "contiguous,goa",
       "--strategy=two-phase,round-robin"});
  EXPECT_EQ(batch.layouts,
            (std::vector<std::string>{"contiguous", "goa"}));
  EXPECT_EQ(batch.strategies,
            (std::vector<std::string>{"two-phase", "round-robin"}));

  // Unknown names fail at parse time, with the known sets in the text.
  EXPECT_THROW(
      cli::parse_run_options({"--kernel", "f.c", "--layout", "bogus"}),
      cli::UsageError);
  EXPECT_THROW(
      cli::parse_run_options({"--kernel", "f.c", "--strategy", "bogus"}),
      cli::UsageError);
  EXPECT_THROW(cli::parse_batch_options(
                   {"--builtin", "fir", "--strategy", "two-phase,nope"}),
               cli::UsageError);
}

TEST(CliOptions, CompareFlags) {
  const cli::CompareOptions defaults =
      cli::parse_compare_options({"--kernel", "fir"});
  EXPECT_EQ(defaults.kernel, "fir");
  EXPECT_TRUE(defaults.layouts.empty());
  EXPECT_TRUE(defaults.strategies.empty());
  EXPECT_EQ(defaults.format, cli::OutputFormat::kTable);

  const cli::CompareOptions options = cli::parse_compare_options(
      {"--kernel", "f.c", "--machine", "wide4", "--registers", "2",
       "--layout", "contiguous,soa-liao", "--strategy", "two-phase,naive",
       "--phase2", "heuristic", "--format", "json"});
  EXPECT_EQ(options.machine, "wide4");
  EXPECT_EQ(options.registers, 2u);
  EXPECT_EQ(options.layouts,
            (std::vector<std::string>{"contiguous", "soa-liao"}));
  EXPECT_EQ(options.strategies,
            (std::vector<std::string>{"two-phase", "naive"}));
  EXPECT_EQ(options.phase2, core::Phase2Options::Mode::kHeuristic);
  EXPECT_EQ(options.format, cli::OutputFormat::kJson);

  EXPECT_THROW(cli::parse_compare_options({}), cli::UsageError);
  EXPECT_THROW(cli::parse_compare_options({"--kernel", "f.c", "--bogus"}),
               cli::UsageError);
}

TEST(CliOptions, ListFlags) {
  EXPECT_EQ(cli::parse_list_options({}, "machines").format,
            cli::OutputFormat::kTable);
  EXPECT_EQ(cli::parse_list_options({"--format", "json"}, "machines").format,
            cli::OutputFormat::kJson);
  EXPECT_EQ(cli::parse_list_options({"--format=csv"}, "kernels").format,
            cli::OutputFormat::kCsv);
  EXPECT_THROW(cli::parse_list_options({"--bogus"}, "kernels"),
               cli::UsageError);
}

TEST(CliOptions, JsonFormat) {
  const cli::RunOptions run = cli::parse_run_options(
      {"--kernel", "f.c", "--format", "json"});
  EXPECT_EQ(run.format, cli::OutputFormat::kJson);
  // Batch stays table/CSV; JSON traffic goes through `serve`.
  EXPECT_THROW(
      cli::parse_batch_options({"--builtin", "fir", "--format", "json"}),
      cli::UsageError);
}

TEST(CliOptions, ServeFlags) {
  EXPECT_EQ(cli::parse_serve_options({}).cache_capacity, 256u);
  EXPECT_EQ(cli::parse_serve_options({"--cache-capacity", "0"})
                .cache_capacity,
            0u);
  EXPECT_EQ(cli::parse_serve_options({"--cache-capacity=9"}).cache_capacity,
            9u);
  EXPECT_EQ(cli::parse_serve_options({"--jobs", "8"}).jobs, 8u);
  EXPECT_EQ(cli::parse_serve_options({"--max-iterations=500"})
                .max_iterations,
            500);
  EXPECT_EQ(cli::parse_serve_options({}).max_iterations, 10'000'000);
  EXPECT_THROW(cli::parse_serve_options({"--bogus"}), cli::UsageError);
  EXPECT_THROW(cli::parse_serve_options({"--cache-capacity", "x"}),
               cli::UsageError);
  EXPECT_THROW(cli::parse_serve_options({"--jobs", "0"}), cli::UsageError);
  EXPECT_THROW(cli::parse_serve_options({"--max-iterations", "0"}),
               cli::UsageError);
}

TEST(CliOptions, StoreAndMetricsFlagsOnRunBatchServe) {
  const cli::RunOptions run = cli::parse_run_options(
      {"--kernel", "f.c", "--store", "cache.log", "--store-fsync",
       "--metrics-csv", "m.csv"});
  EXPECT_EQ(run.store_path, "cache.log");
  EXPECT_TRUE(run.store_fsync);
  EXPECT_EQ(run.metrics_csv, "m.csv");

  const cli::BatchOptions batch = cli::parse_batch_options(
      {"--builtin", "fir", "--store=cache.log", "--metrics-csv=m.csv"});
  EXPECT_EQ(batch.store_path, "cache.log");
  EXPECT_FALSE(batch.store_fsync);
  EXPECT_EQ(batch.metrics_csv, "m.csv");

  const cli::ServeOptions serve = cli::parse_serve_options(
      {"--store", "cache.log", "--store-fsync", "--metrics-csv=m.csv"});
  EXPECT_EQ(serve.store_path, "cache.log");
  EXPECT_TRUE(serve.store_fsync);
  EXPECT_EQ(serve.metrics_csv, "m.csv");

  // Defaults: no store, no fsync, no dump.
  EXPECT_TRUE(cli::parse_serve_options({}).store_path.empty());
  EXPECT_FALSE(cli::parse_serve_options({}).store_fsync);
  EXPECT_TRUE(cli::parse_serve_options({}).metrics_csv.empty());

  // --store-fsync is meaningless without a store on every command.
  EXPECT_THROW(
      cli::parse_run_options({"--kernel", "f.c", "--store-fsync"}),
      cli::UsageError);
  EXPECT_THROW(
      cli::parse_batch_options({"--builtin", "fir", "--store-fsync"}),
      cli::UsageError);
  EXPECT_THROW(cli::parse_serve_options({"--store-fsync"}),
               cli::UsageError);
}

TEST(CliOptions, JobsDefaultAndValidationAreSharedAcrossCommands) {
  // One helper backs --jobs on batch and serve: same default (the
  // hardware concurrency, at least 1) and the same rejections.
  EXPECT_GE(cli::default_jobs(), 1u);
  EXPECT_EQ(cli::parse_batch_options({"--builtin", "fir"}).jobs,
            cli::default_jobs());
  EXPECT_EQ(cli::parse_serve_options({}).jobs, cli::default_jobs());
  EXPECT_THROW(cli::parse_batch_options(
                   {"--builtin", "fir", "--jobs", "nope"}),
               cli::UsageError);
  EXPECT_THROW(cli::parse_serve_options({"--jobs", "nope"}),
               cli::UsageError);
  EXPECT_THROW(cli::parse_serve_options({"--jobs", "-2"}),
               cli::UsageError);
}

TEST(CliOptions, BatchRejectsBadInput) {
  // No kernels at all.
  EXPECT_THROW(cli::parse_batch_options({"--jobs", "2"}), cli::UsageError);
  EXPECT_THROW(cli::parse_batch_options({"--builtin", "fir", "--jobs", "0"}),
               cli::UsageError);
  EXPECT_THROW(
      cli::parse_batch_options({"--builtin", "fir,,biquad"}),
      cli::UsageError);
  EXPECT_THROW(
      cli::parse_batch_options({"--builtin", "fir", "--registers", "1,x"}),
      cli::UsageError);
}

// ------------------------------------------------------------ kernel IO

TEST(CliKernelIo, PathStem) {
  EXPECT_EQ(cli::path_stem("workloads/fir16.kern"), "fir16");
  EXPECT_EQ(cli::path_stem("paper_example.c"), "paper_example");
  EXPECT_EQ(cli::path_stem("/a/b/c.x.y"), "c.x");
  EXPECT_EQ(cli::path_stem("noext"), "noext");
}

TEST(CliKernelIo, LoadsBothFormats) {
  const ir::Kernel c = cli::load_kernel_file(kRoot + "paper_example.c");
  EXPECT_EQ(c.name(), "paper_example");
  EXPECT_EQ(c.accesses().size(), 7u);
  const ir::Kernel kern = cli::load_kernel_file(kRoot + "fir16.kern");
  EXPECT_EQ(kern.name(), "fir16");
}

TEST(CliKernelIo, MissingFileThrows) {
  EXPECT_THROW(cli::load_kernel_file(kRoot + "nope.c"), InvalidArgument);
}

// ------------------------------------------------------------- machine

TEST(CliPipeline, ResolveMachineAppliesOverrides) {
  cli::RunOptions options;
  options.machine = "wide4";
  options.registers = 2;
  options.modify_registers = 5;
  const agu::AguSpec machine = cli::resolve_machine(options);
  EXPECT_EQ(machine.name, "wide4");
  EXPECT_EQ(machine.address_registers(), 2u);
  EXPECT_EQ(machine.modify_registers(), 5u);
  EXPECT_EQ(machine.modify_range(), 2);  // kept from the machine
}

TEST(CliPipeline, ResolveMachineDefaultsToSingleRegister) {
  const agu::AguSpec machine = cli::resolve_machine(cli::RunOptions{});
  EXPECT_EQ(machine.address_registers(), 1u);
  EXPECT_EQ(machine.modify_registers(), 0u);
  EXPECT_EQ(machine.modify_range(), 1);
}

TEST(CliPipeline, ResolveMachineFromFile) {
  cli::RunOptions options;
  options.machine_file =
      std::string(DSPADDR_SOURCE_DIR) + "/workloads/machines/msp430x.machine";
  // Without --machine the file's first machine runs.
  const agu::AguSpec machine = cli::resolve_machine(options);
  EXPECT_EQ(machine.name, "msp430x");
  EXPECT_EQ(machine.modify_lo, 0);
  EXPECT_EQ(machine.modify_hi, 1);
  // With --machine, a file still leaves the catalog reachable.
  options.machine = "minimal2";
  EXPECT_EQ(cli::resolve_machine(options).name, "minimal2");
  options.machine = "nope";
  EXPECT_THROW(cli::resolve_machine(options), InvalidArgument);
}

// ----------------------------------------------------------- end to end

int run(const std::vector<std::string>& args, std::string& out,
        std::string& err) {
  std::ostringstream out_stream;
  std::ostringstream err_stream;
  const int code = cli::run_cli(args, out_stream, err_stream);
  out = out_stream.str();
  err = err_stream.str();
  return code;
}

TEST(CliApp, RunPaperExampleVerifies) {
  std::string out;
  std::string err;
  const int code = run({"run", "--kernel", kRoot + "paper_example.c",
                        "--registers", "2"},
                       out, err);
  EXPECT_EQ(code, 0) << err;
  EXPECT_NE(out.find("VERIFIED"), std::string::npos) << out;
  // K~ = 3 and the optimal K=2 cost of 2 from the paper's example.
  EXPECT_NE(out.find("K~=3"), std::string::npos) << out;
  EXPECT_NE(out.find("cost: 2/iteration"), std::string::npos) << out;
}

TEST(CliApp, RunReportsPhase2Provenance) {
  std::string out;
  std::string err;
  const int code = run({"run", "--kernel", kRoot + "paper_example.c",
                        "--registers", "2", "--phase2", "exact",
                        "--time-budget-ms", "5000"},
                       out, err);
  EXPECT_EQ(code, 0) << err;
  EXPECT_NE(out.find("phase 2 exact, proven optimal"), std::string::npos)
      << out;
}

TEST(CliApp, HeuristicPhase2ReportsNoProof) {
  std::string out;
  std::string err;
  const int code = run({"run", "--kernel", kRoot + "paper_example.c",
                        "--registers", "2", "--phase2", "heuristic"},
                       out, err);
  EXPECT_EQ(code, 0) << err;
  EXPECT_NE(out.find("phase 2 heuristic"), std::string::npos) << out;
}

TEST(CliApp, RunCsvMatchesBatchSchema) {
  std::string out;
  std::string err;
  const int code = run({"run", "--kernel", kRoot + "paper_example.c",
                        "--registers", "2", "--format", "csv"},
                       out, err);
  EXPECT_EQ(code, 0) << err;
  EXPECT_EQ(out.substr(0, 6), "kernel");
  EXPECT_NE(out.find("paper_example,custom,2,"), std::string::npos) << out;
}

TEST(CliApp, RunJsonFormatEmitsTheServeSchema) {
  std::string out;
  std::string err;
  const int code = run({"run", "--kernel", kRoot + "paper_example.c",
                        "--registers", "2", "--format", "json"},
                       out, err);
  EXPECT_EQ(code, 0) << err;
  const support::JsonValue json = support::JsonValue::parse(out);
  EXPECT_EQ(json.find("kernel")->find("name")->as_string(),
            "paper_example");
  EXPECT_EQ(json.find("machine")->find("registers")->as_int(), 2);
  const support::JsonValue* stages = json.find("stages");
  ASSERT_NE(stages, nullptr);
  EXPECT_EQ(stages->find("allocate")->find("cost")->as_int(), 2);
  EXPECT_TRUE(stages->find("simulate")->find("verified")->as_bool());
}

TEST(CliApp, RunJsonSurfacesExactSolverDiagnostics) {
  std::string out;
  std::string err;
  const int code = run({"run", "--kernel", kRoot + "paper_example.c",
                        "--registers", "2", "--phase2", "exact",
                        "--phase2-jobs", "2", "--format", "json"},
                       out, err);
  EXPECT_EQ(code, 0) << err;
  const support::JsonValue json = support::JsonValue::parse(out);
  const support::JsonValue* phase2 =
      json.find("stages")->find("allocate")->find("phase2");
  ASSERT_NE(phase2, nullptr) << out;
  EXPECT_TRUE(phase2->find("proven")->as_bool());
  ASSERT_NE(phase2->find("table_cap_hits"), nullptr) << out;
  ASSERT_NE(phase2->find("subtree_tasks"), nullptr) << out;
  EXPECT_GE(phase2->find("nodes")->as_int(), 1);
}

TEST(CliApp, RunJsonCarriesTimings) {
  std::string out;
  std::string err;
  const int code = run({"run", "--kernel", kRoot + "paper_example.c",
                        "--registers", "2", "--format", "json"},
                       out, err);
  EXPECT_EQ(code, 0) << err;
  const support::JsonValue json = support::JsonValue::parse(out);
  const support::JsonValue* timings = json.find("timings");
  ASSERT_NE(timings, nullptr) << out;
  EXPECT_EQ(timings->find("tier")->as_string(), "cold");
  ASSERT_NE(timings->find("total_ms"), nullptr);
  const support::JsonValue* stage_ms = timings->find("stage_ms");
  ASSERT_NE(stage_ms, nullptr);
  for (const char* stage :
       {"lower", "allocate", "plan", "codegen", "simulate", "metrics"}) {
    ASSERT_NE(stage_ms->find(stage), nullptr) << stage;
  }
}

TEST(CliApp, RunStoreWarmsAcrossInvocations) {
  const std::string store_path =
      testing::TempDir() + "dspaddr_cli_run_store.log";
  const std::string csv_path =
      testing::TempDir() + "dspaddr_cli_run_metrics.csv";
  std::remove(store_path.c_str());
  std::remove(csv_path.c_str());
  const std::vector<std::string> args = {
      "run",     "--kernel",    kRoot + "paper_example.c",
      "--registers", "2",       "--format",
      "json",    "--store",     store_path};
  std::string cold_out;
  std::string warm_out;
  std::string err;
  EXPECT_EQ(run(args, cold_out, err), 0) << err;
  // Second invocation = a fresh process in real life: same binary,
  // same flags, new engine. The answer comes from the store.
  std::vector<std::string> warm_args = args;
  warm_args.push_back("--metrics-csv");
  warm_args.push_back(csv_path);
  EXPECT_EQ(run(warm_args, warm_out, err), 0) << err;
  const support::JsonValue cold = support::JsonValue::parse(cold_out);
  const support::JsonValue warm = support::JsonValue::parse(warm_out);
  EXPECT_EQ(cold.find("timings")->find("tier")->as_string(), "cold");
  EXPECT_EQ(warm.find("timings")->find("tier")->as_string(), "store_hit");
  // Identical result, modulo the wall-clock timings member.
  EXPECT_EQ(warm.find("stages")->dump(), cold.find("stages")->dump());
  // The metrics dump exists and shows the store hit.
  std::ifstream csv(csv_path);
  ASSERT_TRUE(csv.good()) << csv_path;
  std::string contents((std::istreambuf_iterator<char>(csv)),
                       std::istreambuf_iterator<char>());
  EXPECT_NE(contents.find("histogram,engine.request_us.store_hit,1,"),
            std::string::npos)
      << contents;
  EXPECT_NE(contents.find("counter,store.hits,1"), std::string::npos)
      << contents;
  std::remove(store_path.c_str());
  std::remove(csv_path.c_str());
}

TEST(CliApp, BatchIsDeterministicAcrossJobs) {
  const std::vector<std::string> base = {
      "batch", "--builtin", "fir,biquad", "--machines", "minimal2,wide4",
      "--registers", "1,2"};
  std::string serial;
  std::string parallel;
  std::string err;
  auto with_jobs = [&](const std::string& jobs) {
    std::vector<std::string> args = base;
    args.push_back("--jobs");
    args.push_back(jobs);
    return args;
  };
  EXPECT_EQ(run(with_jobs("1"), serial, err), 0) << err;
  EXPECT_EQ(run(with_jobs("8"), parallel, err), 0) << err;
  EXPECT_EQ(serial, parallel);
  EXPECT_FALSE(serial.empty());
}

TEST(CliApp, RunWithBaselineStrategyReportsItsCost) {
  std::string out;
  std::string err;
  const int code = run({"run", "--kernel", kRoot + "paper_example.c",
                        "--registers", "2", "--strategy", "naive"},
                       out, err);
  EXPECT_EQ(code, 0) << err;
  // naive runs the real phase structure, so its phase stats are shown;
  // cost 4 is the paper's arbitrary-merge number.
  EXPECT_NE(out.find("allocation (naive: phase 1"), std::string::npos)
      << out;
  EXPECT_NE(out.find("cost: 4/iteration"), std::string::npos) << out;
  EXPECT_NE(out.find("VERIFIED"), std::string::npos) << out;

  // A placement baseline has no phases to report.
  const int rr_code = run({"run", "--kernel", kRoot + "paper_example.c",
                           "--registers", "2", "--strategy",
                           "round-robin"},
                          out, err);
  EXPECT_EQ(rr_code, 0) << err;
  EXPECT_NE(out.find("allocation (round-robin):"), std::string::npos)
      << out;
}

TEST(CliApp, CompareMarksTwoPhaseAsBest) {
  std::string out;
  std::string err;
  const int code = run({"compare", "--kernel", "paper_example",
                        "--registers", "2", "--format", "csv"},
                       out, err);
  EXPECT_EQ(code, 0) << err;
  // CSV columns: layout,strategy,...,best at index 10.
  EXPECT_NE(out.find("contiguous,two-phase,7,64,2,"), std::string::npos)
      << out;
  bool two_phase_best = false;
  std::istringstream lines(out);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.find(",two-phase,") != std::string::npos &&
        line.find(",yes,yes,") != std::string::npos) {
      two_phase_best = true;
    }
  }
  EXPECT_TRUE(two_phase_best) << out;
}

TEST(CliApp, CompareAcceptsFilesAndBuiltins) {
  std::string out;
  std::string err;
  // A workload file path works...
  EXPECT_EQ(run({"compare", "--kernel", kRoot + "paper_example.c",
                 "--registers", "2", "--strategy", "two-phase"},
                out, err),
            0)
      << err;
  EXPECT_NE(out.find("two-phase"), std::string::npos);
  // ...and a nonexistent name reports both interpretations failed.
  EXPECT_EQ(run({"compare", "--kernel", "no_such_kernel"}, out, err), 1);
  EXPECT_NE(err.find("neither"), std::string::npos) << err;
}

TEST(CliApp, CompareJsonCarriesReferenceAndRows) {
  std::string out;
  std::string err;
  const int code = run({"compare", "--kernel", "paper_example",
                        "--registers", "2", "--strategy",
                        "two-phase,naive", "--format", "json"},
                       out, err);
  EXPECT_EQ(code, 0) << err;
  const support::JsonValue json = support::JsonValue::parse(out);
  EXPECT_EQ(json.find("reference")->find("strategy")->as_string(),
            "two-phase");
  ASSERT_EQ(json.find("rows")->items().size(), 2u);
  EXPECT_EQ(json.find("rows")->items()[1].find("cost_delta")->as_int(), 2);
}

TEST(CliApp, MachinesAndKernelsHonorJsonFormat) {
  std::string out;
  std::string err;
  ASSERT_EQ(run({"machines", "--format", "json"}, out, err), 0) << err;
  const support::JsonValue machines = support::JsonValue::parse(out);
  ASSERT_TRUE(machines.is_array());
  ASSERT_FALSE(machines.items().empty());
  EXPECT_FALSE(machines.items()[0].find("name")->as_string().empty());
  EXPECT_GE(machines.items()[0].find("registers")->as_int(), 1);

  ASSERT_EQ(run({"kernels", "--format=json"}, out, err), 0) << err;
  const support::JsonValue kernels = support::JsonValue::parse(out);
  ASSERT_TRUE(kernels.is_array());
  bool has_fir = false;
  for (const support::JsonValue& kernel : kernels.items()) {
    if (kernel.find("name")->as_string() == "fir") {
      has_fir = true;
      EXPECT_EQ(kernel.find("arrays")->as_int(), 2);
    }
  }
  EXPECT_TRUE(has_fir);

  // CSV and bad flags are handled too.
  ASSERT_EQ(run({"machines", "--format", "csv"}, out, err), 0);
  EXPECT_EQ(out.substr(0, 5), "name,");
  EXPECT_EQ(run({"machines", "--format", "yaml"}, out, err), 2);
}

TEST(CliApp, MachinesShowRoundTrips) {
  std::string out;
  std::string err;
  ASSERT_EQ(run({"machines", "show", "wide4"}, out, err), 0) << err;
  // The text view is the canonical .machine form: parsing it back
  // yields the catalog spec exactly.
  const auto reparsed = agu::parse_machines(out, "show");
  ASSERT_EQ(reparsed.size(), 1u);
  EXPECT_EQ(reparsed[0], agu::builtin_machine("wide4"));

  ASSERT_EQ(run({"machines", "show", "wide4", "--format", "json"}, out,
                err),
            0)
      << err;
  EXPECT_EQ(agu::machine_from_json(support::JsonValue::parse(out)),
            agu::builtin_machine("wide4"));

  EXPECT_EQ(run({"machines", "show", "pdp11"}, out, err), 1);
  EXPECT_NE(err.find("unknown machine"), std::string::npos);
}

TEST(CliApp, MachinesListsFileMachines) {
  const std::string file = std::string(DSPADDR_SOURCE_DIR) +
                           "/workloads/machines/arm946e_wb.machine";
  std::string out;
  std::string err;
  ASSERT_EQ(run({"machines", "--machine-file", file}, out, err), 0) << err;
  EXPECT_NE(out.find("arm946e-wb"), std::string::npos);
  EXPECT_NE(out.find("pre"), std::string::npos);
  ASSERT_EQ(run({"machines", "show", "arm946e-wb", "--machine-file", file},
                out, err),
            0)
      << err;
  const auto reparsed = agu::parse_machines(out, "show");
  ASSERT_EQ(reparsed.size(), 1u);
  EXPECT_EQ(reparsed[0].addressing, agu::Addressing::kPreModify);
}

TEST(CliApp, RunHonorsMachineFile) {
  const std::string file = std::string(DSPADDR_SOURCE_DIR) +
                           "/workloads/machines/dsp56300.machine";
  std::string out;
  std::string err;
  const int code = run({"run", "--kernel", kRoot + "paper_example.c",
                        "--machine-file", file},
                       out, err);
  EXPECT_EQ(code, 0) << err;
  EXPECT_NE(out.find("machine: dsp56300"), std::string::npos) << out;
  EXPECT_NE(out.find("M=[-1, 3]"), std::string::npos) << out;
  EXPECT_NE(out.find("VERIFIED"), std::string::npos);
}

TEST(CliApp, BatchSweepsTheStrategyAxis) {
  std::string out;
  std::string err;
  const int code = run({"batch", "--builtin", "paper_example",
                        "--registers", "2", "--strategy",
                        "two-phase,naive", "--layout",
                        "contiguous,declaration-padded", "--machines",
                        "minimal2"},
                       out, err);
  EXPECT_EQ(code, 0) << err;
  // 1 kernel x 1 machine x 1 K x 1 M x 2 layouts x 2 strategies + header.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 5) << out;
  EXPECT_NE(out.find("contiguous,naive"), std::string::npos) << out;
  EXPECT_NE(out.find("declaration-padded,two-phase"), std::string::npos)
      << out;
}

TEST(CliApp, UnknownCommandFails) {
  std::string out;
  std::string err;
  EXPECT_EQ(run({"frobnicate"}, out, err), 2);
  EXPECT_NE(err.find("unknown command"), std::string::npos);
}

TEST(CliApp, UsageErrorsExitTwo) {
  std::string out;
  std::string err;
  EXPECT_EQ(run({"run"}, out, err), 2);
  EXPECT_NE(err.find("--kernel"), std::string::npos);
}

TEST(CliApp, HelpAndVersion) {
  std::string out;
  std::string err;
  EXPECT_EQ(run({"help"}, out, err), 0);
  EXPECT_NE(out.find("usage: dspaddr"), std::string::npos);
  EXPECT_NE(out.find("serve"), std::string::npos);
  EXPECT_EQ(run({"version"}, out, err), 0);
  EXPECT_NE(out.find("dspaddr "), std::string::npos);
  EXPECT_EQ(run({"machines"}, out, err), 0);
  EXPECT_NE(out.find("minimal2"), std::string::npos);
  EXPECT_EQ(run({"kernels"}, out, err), 0);
  EXPECT_NE(out.find("fir"), std::string::npos);
}

TEST(CliOptions, PortfolioRacingFlags) {
  const cli::RunOptions run = cli::parse_run_options(
      {"--kernel", "f.c", "--strategy", "auto", "--layout", "auto",
       "--jobs", "3", "--race-budget-ms", "25"});
  EXPECT_EQ(run.strategy, "auto");
  EXPECT_EQ(run.layout, "auto");
  EXPECT_EQ(run.jobs, 3u);
  EXPECT_EQ(run.race_budget_ms, 25);

  const cli::CompareOptions compare = cli::parse_compare_options(
      {"--kernel", "fir", "--strategy", "auto", "--jobs", "4",
       "--race-budget-ms", "10"});
  ASSERT_EQ(compare.strategies.size(), 1u);
  EXPECT_EQ(compare.strategies[0], "auto");
  EXPECT_EQ(compare.jobs, 4u);
  EXPECT_EQ(compare.race_budget_ms, 10);

  const cli::BatchOptions batch = cli::parse_batch_options(
      {"--builtin", "fir", "--strategy", "auto,two-phase",
       "--race-budget-ms", "7"});
  EXPECT_EQ(batch.race_budget_ms, 7);

  const cli::ServeOptions serve =
      cli::parse_serve_options({"--race-budget-ms", "15"});
  EXPECT_EQ(serve.race_budget_ms, 15);

  // Defaults: the deadline is off everywhere.
  EXPECT_EQ(cli::parse_run_options({"--kernel", "f.c"}).race_budget_ms, 0);
  EXPECT_EQ(cli::parse_serve_options({}).race_budget_ms, 0);
}

TEST(CliOptions, PortfolioFlagErrors) {
  // A negative or malformed deadline is a usage error.
  EXPECT_THROW(cli::parse_run_options(
                   {"--kernel", "f.c", "--race-budget-ms", "-1"}),
               cli::UsageError);
  EXPECT_THROW(cli::parse_run_options(
                   {"--kernel", "f.c", "--race-budget-ms", "soon"}),
               cli::UsageError);
  // compare: "auto" already covers every candidate, so mixing it into
  // a multi-element list is contradictory.
  EXPECT_THROW(cli::parse_compare_options(
                   {"--kernel", "fir", "--strategy", "auto,naive"}),
               cli::UsageError);
  EXPECT_THROW(cli::parse_compare_options(
                   {"--kernel", "fir", "--layout", "contiguous,auto"}),
               cli::UsageError);
}

TEST(CliApp, RunAutoRaceRendersThePortfolioTable) {
  std::string out;
  std::string err;
  EXPECT_EQ(run({"run", "--kernel", kRoot + "paper_example.c",
                 "--registers", "2", "--strategy", "auto", "--layout",
                 "auto"},
                out, err),
            0)
      << err;
  EXPECT_NE(out.find("portfolio race (winner "), std::string::npos) << out;
  EXPECT_NE(out.find("deltas vs winner"), std::string::npos);
}

}  // namespace
}  // namespace dspaddr
