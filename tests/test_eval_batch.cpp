// The batch runner's headline guarantee: the rendered output depends
// only on the grid, never on how many worker threads computed it.
#include <gtest/gtest.h>

#include "agu/machines.hpp"
#include "eval/batch.hpp"
#include "ir/kernels.hpp"

namespace dspaddr {
namespace {

eval::BatchConfig small_grid() {
  eval::BatchConfig config;
  config.kernels = {ir::builtin_kernel("fir"), ir::builtin_kernel("biquad"),
                    ir::builtin_kernel("matmul")};
  config.machines = {agu::builtin_machine("minimal2"),
                     agu::builtin_machine("wide4"),
                     agu::builtin_machine("adsp218x")};
  config.register_counts = {1, 2, 4};
  config.modify_ranges = {1, 2};
  return config;
}

TEST(EvalBatch, GridOrderIsKernelMajor) {
  eval::BatchConfig config = small_grid();
  config.jobs = 1;
  const eval::BatchResult result = eval::run_batch(config);
  ASSERT_EQ(result.rows.size(), 3u * 3u * 3u * 2u);
  // Kernel-major, then machine, then K, then M.
  EXPECT_EQ(result.rows[0].kernel, "fir");
  EXPECT_EQ(result.rows[0].machine, "minimal2");
  EXPECT_EQ(result.rows[0].registers, 1u);
  EXPECT_EQ(result.rows[0].modify_range, 1);
  EXPECT_EQ(result.rows[1].modify_range, 2);
  EXPECT_EQ(result.rows[2].registers, 2u);
  EXPECT_EQ(result.rows[6].machine, "wide4");
  EXPECT_EQ(result.rows[18].kernel, "biquad");
}

TEST(EvalBatch, CsvIsByteIdenticalAcrossThreadCounts) {
  eval::BatchConfig config = small_grid();
  config.jobs = 1;
  const std::string serial = eval::batch_to_csv(eval::run_batch(config)).to_string();
  for (const std::size_t jobs : {2u, 8u, 32u}) {
    config.jobs = jobs;
    const std::string parallel =
        eval::batch_to_csv(eval::run_batch(config)).to_string();
    EXPECT_EQ(serial, parallel) << "jobs=" << jobs;
  }
}

TEST(EvalBatch, AllCellsVerify) {
  eval::BatchConfig config = small_grid();
  config.jobs = 4;
  const eval::BatchResult result = eval::run_batch(config);
  EXPECT_EQ(result.failures, 0u);
  for (const eval::BatchRow& row : result.rows) {
    EXPECT_TRUE(row.verified) << row.kernel << " on " << row.machine
                              << " K=" << row.registers;
    EXPECT_TRUE(row.error.empty());
  }
}

TEST(EvalBatch, EmptyOverridesUseMachineValues) {
  eval::BatchConfig config;
  config.kernels = {ir::builtin_kernel("fir")};
  config.machines = {agu::builtin_machine("wide4")};
  const eval::BatchResult result = eval::run_batch(config);
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0].registers, 4u);
  EXPECT_EQ(result.rows[0].modify_range, 2);
}

TEST(EvalBatch, BadCellIsReportedNotFatal) {
  eval::BatchConfig config;
  config.kernels = {ir::builtin_kernel("fir")};
  agu::AguSpec broken = agu::builtin_machine("minimal2");
  broken.set_address_registers(0);
  config.machines = {broken, agu::builtin_machine("minimal2")};
  const eval::BatchResult result = eval::run_batch(config);
  ASSERT_EQ(result.rows.size(), 2u);
  EXPECT_EQ(result.failures, 1u);
  EXPECT_FALSE(result.rows[0].error.empty());
  EXPECT_TRUE(result.rows[1].verified);
}

TEST(EvalBatch, ErrorRowsRenderEmptyMetricFields) {
  eval::BatchConfig config;
  config.kernels = {ir::builtin_kernel("fir")};
  agu::AguSpec broken = agu::builtin_machine("minimal2");
  broken.set_address_registers(0);
  config.machines = {broken};
  const eval::BatchResult result = eval::run_batch(config);
  ASSERT_EQ(result.rows.size(), 1u);
  ASSERT_FALSE(result.rows[0].error.empty());

  const std::vector<std::string> fields =
      eval::batch_row_fields(result.rows[0]);
  ASSERT_EQ(fields.size(), eval::batch_csv_header().size());
  // Identity columns survive; every metric column is empty (not "0" /
  // "no", which would be indistinguishable from a genuine zero-cost
  // unverified result); the error column carries the message.
  EXPECT_EQ(fields[0], "fir");
  EXPECT_EQ(fields[1], "minimal2");
  EXPECT_EQ(fields[2], "0");
  EXPECT_EQ(fields[5], "contiguous");
  EXPECT_EQ(fields[6], "two-phase");
  for (std::size_t i = 7; i + 1 < fields.size(); ++i) {
    EXPECT_EQ(fields[i], "") << "column " << i;
  }
  EXPECT_FALSE(fields.back().empty());

  const std::string csv = eval::batch_to_csv(result).to_string();
  EXPECT_NE(csv.find("fir,minimal2,0,1,0,contiguous,two-phase,"
                     ",,,,,,,,,,,"),
            std::string::npos)
      << csv;
}

TEST(EvalBatch, RowSerializationIsSharedWithTheHeader) {
  // One row-serialization function backs both the batch CSV and the
  // CLI's single-run CSV; its field count must always match the header.
  eval::BatchRow row;
  row.kernel = "k";
  row.machine = "m";
  EXPECT_EQ(eval::batch_row_fields(row).size(),
            eval::batch_csv_header().size());
  row.error = "boom";
  EXPECT_EQ(eval::batch_row_fields(row).size(),
            eval::batch_csv_header().size());
}

TEST(EvalBatch, RejectsZeroJobs) {
  eval::BatchConfig config;
  config.jobs = 0;
  EXPECT_THROW(eval::run_batch(config), InvalidArgument);
}

TEST(EvalBatch, CsvSchemaIsStable) {
  const eval::BatchResult empty;
  const std::string csv = eval::batch_to_csv(empty).to_string();
  EXPECT_EQ(csv,
            "kernel,machine,registers,modify_range,modify_registers,"
            "layout,strategy,accesses,k_tilde,allocation_cost,"
            "residual_cost,phase2,proven,gap,phase2_nodes,table_cap_hits,"
            "size_reduction_percent,speed_reduction_percent,verified,"
            "error\n");
}

TEST(EvalBatch, ExactPhase2ProvesSmallKernelsAndStaysDeterministic) {
  eval::BatchConfig config = small_grid();
  config.phase2.mode = core::Phase2Options::Mode::kExact;
  config.jobs = 1;
  const eval::BatchResult serial = eval::run_batch(config);
  for (const eval::BatchRow& row : serial.rows) {
    ASSERT_TRUE(row.error.empty()) << row.error;
    EXPECT_TRUE(row.phase2_exact);
    EXPECT_TRUE(row.phase2_proven)
        << row.kernel << " on " << row.machine << " K=" << row.registers;
    EXPECT_EQ(row.phase2_gap, 0);
  }
  const std::string serial_csv = eval::batch_to_csv(serial).to_string();
  config.jobs = 8;
  const std::string parallel_csv =
      eval::batch_to_csv(eval::run_batch(config)).to_string();
  EXPECT_EQ(serial_csv, parallel_csv);
}

}  // namespace
}  // namespace dspaddr
