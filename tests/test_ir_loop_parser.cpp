#include "ir/loop_parser.hpp"

#include <gtest/gtest.h>

#include "core/allocator.hpp"
#include "ir/layout.hpp"

namespace dspaddr::ir {
namespace {

TEST(LoopParser, ParsesThePaperExampleVerbatim) {
  // The exact loop from section 2 of the paper (with N concrete).
  const Kernel k = parse_c_loop(R"(
int A[64];
for (i = 2; i <= 33; i++)
{ /* a_1 */ A[i+1];  /* offset 1 */
  /* a_2 */ A[i];    /* offset 0 */
  /* a_3 */ A[i+2];  /* offset 2 */
  /* a_4 */ A[i-1];  /* offset -1 */
  /* a_5 */ A[i+1];  /* offset 1 */
  /* a_6 */ A[i];    /* offset 0 */
  /* a_7 */ A[i-2];  /* offset -2 */
}
)",
                                "paper");
  EXPECT_EQ(k.name(), "paper");
  EXPECT_EQ(k.iterations(), 32);
  ASSERT_EQ(k.accesses().size(), 7u);
  // Offsets are the index at iteration 0 (i = 2).
  const std::vector<std::int64_t> expected{3, 2, 4, 1, 3, 2, 0};
  for (std::size_t a = 0; a < expected.size(); ++a) {
    EXPECT_EQ(k.accesses()[a].offset, expected[a]) << "a_" << (a + 1);
    EXPECT_EQ(k.accesses()[a].stride, 1);
  }
  // Distances between accesses (what the allocator sees) match the
  // paper's offsets 1 0 2 -1 1 0 -2 exactly.
  const AccessSequence lowered = lower(k);
  EXPECT_EQ(lowered.intra_distance(0, 1), -1);
  EXPECT_EQ(lowered.intra_distance(1, 2), 2);
  EXPECT_EQ(lowered.intra_distance(2, 3), -3);
}

TEST(LoopParser, AssignmentsReadRhsThenWriteLhs) {
  const Kernel k = parse_c_loop(R"(
int x[8], y[8];
for (i = 0; i < 8; i++) {
  y[i] = x[i] + x[i-1];
}
)");
  ASSERT_EQ(k.accesses().size(), 3u);
  EXPECT_EQ(k.accesses()[0].array, "x");
  EXPECT_FALSE(k.accesses()[0].is_write);
  EXPECT_EQ(k.accesses()[1].array, "x");
  EXPECT_EQ(k.accesses()[1].offset, -1);
  EXPECT_EQ(k.accesses()[2].array, "y");
  EXPECT_TRUE(k.accesses()[2].is_write);
  EXPECT_EQ(k.data_ops(), 1);
}

TEST(LoopParser, CountsDataOps) {
  const Kernel k = parse_c_loop(R"(
int a[8], b[8], c[8];
for (i = 0; i < 4; i++) {
  c[i] = a[i] * b[i] + a[i+1] * b[i+1] - 3;
}
)");
  // *, +, *, - : four operators.
  EXPECT_EQ(k.data_ops(), 4);
  EXPECT_EQ(k.accesses().size(), 5u);
}

TEST(LoopParser, AffineIndices) {
  const Kernel k = parse_c_loop(R"(
int m[64];
for (j = 1; j <= 8; j += 2) {
  m[2*j+3];
  m[-j+10];
  m[5];
  m[j];
}
)");
  ASSERT_EQ(k.accesses().size(), 4u);
  // j starts at 1, step 2.
  EXPECT_EQ(k.accesses()[0].offset, 2 * 1 + 3);
  EXPECT_EQ(k.accesses()[0].stride, 2 * 2);
  EXPECT_EQ(k.accesses()[1].offset, -1 + 10);
  EXPECT_EQ(k.accesses()[1].stride, -2);
  EXPECT_EQ(k.accesses()[2].offset, 5);
  EXPECT_EQ(k.accesses()[2].stride, 0);
  EXPECT_EQ(k.accesses()[3].offset, 1);
  EXPECT_EQ(k.accesses()[3].stride, 2);
  EXPECT_EQ(k.iterations(), 4);  // j = 1, 3, 5, 7
}

TEST(LoopParser, StrictLessThanCondition) {
  const Kernel k = parse_c_loop(R"(
int a[8];
for (i = 0; i < 5; i++) { a[i]; }
)");
  EXPECT_EQ(k.iterations(), 5);
}

TEST(LoopParser, MultipleArraysPerDeclaration) {
  const Kernel k = parse_c_loop(R"(
int a[8], b[16], c[4];
for (i = 0; i < 2; i++) { a[i]; b[i]; c[i]; }
)");
  EXPECT_EQ(k.arrays().size(), 3u);
  EXPECT_EQ(k.array("b").size, 16);
}

TEST(LoopParser, LineCommentsAndParens) {
  const Kernel k = parse_c_loop(R"(
int a[8];  // the input
for (i = 0; i < 4; i++) {
  a[i] = (a[i-1] + a[i+1]) * 2;  // smooth
}
)");
  EXPECT_EQ(k.accesses().size(), 3u);
  EXPECT_EQ(k.data_ops(), 2);
}

TEST(LoopParser, ParsedLoopAllocatesEndToEnd) {
  const Kernel k = parse_c_loop(R"(
int A[64];
for (i = 2; i <= 33; i++)
{ A[i+1]; A[i]; A[i+2]; A[i-1]; A[i+1]; A[i]; A[i-2]; }
)");
  core::ProblemConfig config;
  config.modify_range = 1;
  config.registers = 2;
  config.phase1.mode = core::Phase1Options::Mode::kExact;
  const core::Allocation a =
      core::RegisterAllocator(config).run(lower(k));
  EXPECT_EQ(a.cost(), 2);  // same as the hand-built paper sequence
}

struct LoopErrorCase {
  const char* label;
  const char* text;
  std::size_t line;
};

class LoopParserErrorTest
    : public ::testing::TestWithParam<LoopErrorCase> {};

TEST_P(LoopParserErrorTest, ReportsLineNumbers) {
  try {
    parse_c_loop(GetParam().text);
    FAIL() << "expected ParseError for " << GetParam().label;
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), GetParam().line) << e.what();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, LoopParserErrorTest,
    ::testing::Values(
        LoopErrorCase{"undeclared array",
                      "for (i = 0; i < 2; i++) { a[i]; }", 1},
        LoopErrorCase{"missing for", "int a[4];\na[0];\n", 2},
        LoopErrorCase{"bad loop var in condition",
                      "int a[4];\nfor (i = 0; j < 2; i++) { a[i]; }", 2},
        LoopErrorCase{"bad loop var in increment",
                      "int a[4];\nfor (i = 0; i < 2; j++) { a[i]; }", 2},
        LoopErrorCase{"zero iterations",
                      "int a[4];\nfor (i = 5; i < 2; i++) { a[i]; }", 2},
        LoopErrorCase{"negative step",
                      "int a[4];\nfor (i = 0; i < 9; i += -1) { a[i]; }",
                      2},
        LoopErrorCase{"unknown index variable",
                      "int a[4];\nfor (i = 0; i < 2; i++)\n{ a[k]; }", 3},
        LoopErrorCase{"empty body",
                      "int a[4];\nfor (i = 0; i < 2; i++) { }", 2},
        LoopErrorCase{"duplicate array", "int a[4], a[4];\n", 1},
        LoopErrorCase{"unterminated comment",
                      "int a[4]; /* oops\nfor...", 1},
        LoopErrorCase{"stray character",
                      "int a[4];\nfor (i = 0; i < 2; i++) { a[i] % 2; }",
                      2},
        LoopErrorCase{"trailing input",
                      "int a[4];\nfor (i = 0; i < 2; i++) { a[i]; }\n"
                      "extra", 3}),
    [](const ::testing::TestParamInfo<LoopErrorCase>& info) {
      std::string name = info.param.label;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace dspaddr::ir
