// The compare surface: strategy sets through a shared engine, delta
// semantics, best-cost markers, and the three renderings.
#include <gtest/gtest.h>

#include "agu/machines.hpp"
#include "engine/engine.hpp"
#include "engine/portfolio.hpp"
#include "engine/strategy.hpp"
#include "eval/compare.hpp"
#include "ir/kernels.hpp"
#include "support/json.hpp"

namespace dspaddr {
namespace {

eval::CompareConfig paper_config() {
  eval::CompareConfig config;
  config.kernel = ir::builtin_kernel("paper_example");
  config.machine.name = "custom";
  config.machine.set_address_registers(2);
  config.machine.set_modify_registers(0);
  config.machine.set_modify_range(1);
  return config;
}

TEST(Compare, DefaultsRunEveryRegisteredStrategy) {
  const eval::CompareResult result = eval::run_compare(paper_config());
  const std::vector<std::string> expected =
      engine::StrategyRegistry::builtin().allocation_names();
  ASSERT_EQ(result.rows.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(result.rows[i].strategy, expected[i]);
    EXPECT_EQ(result.rows[i].layout, engine::kDefaultLayout);
    EXPECT_TRUE(result.rows[i].ok());
  }
  EXPECT_EQ(result.failures, 0u);
  EXPECT_EQ(result.kernel, "paper_example");
  EXPECT_EQ(result.machine, "custom");
}

TEST(Compare, DeltasAreRelativeToTheTwoPhaseReference) {
  const eval::CompareResult result = eval::run_compare(paper_config());
  EXPECT_EQ(result.reference_layout, "contiguous");
  EXPECT_EQ(result.reference_strategy, "two-phase");
  const eval::CompareRow* two_phase = nullptr;
  const eval::CompareRow* naive = nullptr;
  for (const eval::CompareRow& row : result.rows) {
    if (row.strategy == "two-phase") two_phase = &row;
    if (row.strategy == "naive") naive = &row;
  }
  ASSERT_NE(two_phase, nullptr);
  ASSERT_NE(naive, nullptr);
  EXPECT_EQ(two_phase->cost_delta, 0);
  EXPECT_EQ(two_phase->cycle_delta, 0);
  // The paper's numbers: naive costs 4 vs the heuristic's 2.
  EXPECT_EQ(two_phase->allocation_cost, 2);
  EXPECT_EQ(naive->allocation_cost, 4);
  EXPECT_EQ(naive->cost_delta, 2);
  EXPECT_GT(naive->cycle_delta, 0);
  // two-phase is a cost minimum; naive is not.
  EXPECT_TRUE(two_phase->best_cost);
  EXPECT_FALSE(naive->best_cost);
}

TEST(Compare, LayoutAxisMultipliesTheRows) {
  eval::CompareConfig config = paper_config();
  config.layouts = {"contiguous", "declaration-padded"};
  config.strategies = {"two-phase", "naive"};
  const eval::CompareResult result = eval::run_compare(config);
  ASSERT_EQ(result.rows.size(), 4u);
  EXPECT_EQ(result.rows[0].layout, "contiguous");
  EXPECT_EQ(result.rows[0].strategy, "two-phase");
  EXPECT_EQ(result.rows[1].strategy, "naive");
  EXPECT_EQ(result.rows[2].layout, "declaration-padded");
  EXPECT_EQ(result.rows[3].layout, "declaration-padded");
}

TEST(Compare, SharedEngineServesRepeatsFromTheCache) {
  engine::Engine engine;
  eval::CompareConfig config = paper_config();
  config.strategies = {"two-phase", "naive"};
  const eval::CompareResult first = eval::run_compare(config, engine);
  const engine::CacheStats after_first = engine.cache_stats();
  EXPECT_EQ(after_first.hits, 0u);
  EXPECT_EQ(after_first.misses, 2u);
  const eval::CompareResult second = eval::run_compare(config, engine);
  const engine::CacheStats after_second = engine.cache_stats();
  EXPECT_EQ(after_second.hits, 2u);
  EXPECT_EQ(after_second.misses, 2u);
  ASSERT_EQ(first.rows.size(), second.rows.size());
  for (std::size_t i = 0; i < first.rows.size(); ++i) {
    EXPECT_EQ(first.rows[i].allocation_cost,
              second.rows[i].allocation_cost);
  }
}

TEST(Compare, PerCellFailuresStayInBand) {
  eval::CompareConfig config = paper_config();
  config.machine.set_address_registers(0);  // every cell fails to allocate
  config.strategies = {"two-phase", "naive"};
  const eval::CompareResult result = eval::run_compare(config);
  ASSERT_EQ(result.rows.size(), 2u);
  EXPECT_EQ(result.failures, 2u);
  for (const eval::CompareRow& row : result.rows) {
    EXPECT_FALSE(row.ok());
    EXPECT_FALSE(row.best_cost);
    EXPECT_NE(row.error.find("allocate:"), std::string::npos);
  }
}

TEST(Compare, RenderingsAgreeOnTheRowSet) {
  eval::CompareConfig config = paper_config();
  config.strategies = {"two-phase", "naive"};
  const eval::CompareResult result = eval::run_compare(config);

  const std::string table = eval::compare_to_table(result).to_string();
  EXPECT_NE(table.find("two-phase"), std::string::npos);
  EXPECT_NE(table.find("naive"), std::string::npos);
  EXPECT_NE(table.find("+2"), std::string::npos);  // naive's cost delta

  const std::string csv = eval::compare_to_csv(result).to_string();
  EXPECT_EQ(csv.substr(0, 6), "layout");
  EXPECT_NE(csv.find("contiguous,two-phase,7,64,2,"), std::string::npos)
      << csv;
  EXPECT_NE(csv.find("contiguous,naive,7,64,4,"), std::string::npos)
      << csv;

  const support::JsonValue json = eval::compare_to_json(result);
  EXPECT_EQ(json.find("kernel")->as_string(), "paper_example");
  EXPECT_EQ(json.find("reference")->find("strategy")->as_string(),
            "two-phase");
  ASSERT_EQ(json.find("rows")->items().size(), 2u);
  const support::JsonValue& naive_row = json.find("rows")->items()[1];
  EXPECT_EQ(naive_row.find("strategy")->as_string(), "naive");
  EXPECT_EQ(naive_row.find("cost_delta")->as_int(), 2);
  EXPECT_FALSE(naive_row.find("best")->as_bool());
  EXPECT_EQ(json.find("failures")->as_int(), 0);
}

TEST(Compare, ReferenceFallsBackWhenDefaultPairAbsent) {
  eval::CompareConfig config = paper_config();
  config.strategies = {"round-robin", "naive"};
  const eval::CompareResult result = eval::run_compare(config);
  EXPECT_EQ(result.reference_strategy, "round-robin");
  EXPECT_EQ(result.rows[0].cost_delta, 0);
}

TEST(Compare, ParallelGridIsByteIdenticalToSequential) {
  // The full layouts x strategies grid, rendered in every format, must
  // not depend on --jobs: cells land in pre-sized slots and deltas are
  // computed after the barrier.
  eval::CompareConfig config = paper_config();
  config.layouts = engine::StrategyRegistry::builtin().layout_names();
  const eval::CompareResult serial = eval::run_compare(config);
  for (const std::size_t jobs : {std::size_t{2}, std::size_t{8}}) {
    eval::CompareConfig parallel_config = config;
    parallel_config.jobs = jobs;
    const eval::CompareResult parallel = eval::run_compare(parallel_config);
    EXPECT_EQ(eval::compare_to_csv(parallel).to_string(),
              eval::compare_to_csv(serial).to_string())
        << "jobs=" << jobs;
    EXPECT_EQ(eval::compare_to_table(parallel).to_string(),
              eval::compare_to_table(serial).to_string())
        << "jobs=" << jobs;
    EXPECT_EQ(eval::compare_to_json(parallel).dump(),
              eval::compare_to_json(serial).dump())
        << "jobs=" << jobs;
  }
}

TEST(Compare, PortfolioReportRendersAsWinnerReferencedGrid) {
  eval::CompareConfig config = paper_config();
  engine::Engine engine(engine::Engine::Options{0});
  engine::PortfolioOptions options;
  options.learn = false;
  engine::Portfolio portfolio(engine, options);
  engine::Request request;
  request.kernel = config.kernel;
  request.machine = config.machine;
  request.layout = engine::kAutoStrategy;
  request.strategy = engine::kAutoStrategy;
  request.stop_after = engine::Stage::kPlan;
  engine::PortfolioReport report;
  ASSERT_TRUE(portfolio.run(request, &report).ok());

  const eval::CompareResult result = eval::compare_from_portfolio(
      report, config.kernel.name(), config.machine.name);
  EXPECT_EQ(result.rows.size(), report.racers.size());
  // Deltas are against the race winner, so the winner's row is zero
  // and marked best; no completed row beats it.
  EXPECT_EQ(result.reference_layout, report.winner_layout);
  EXPECT_EQ(result.reference_strategy, report.winner_strategy);
  bool winner_row_seen = false;
  for (const eval::CompareRow& row : result.rows) {
    if (row.layout == report.winner_layout &&
        row.strategy == report.winner_strategy) {
      winner_row_seen = true;
      EXPECT_EQ(row.cost_delta, 0);
      EXPECT_TRUE(row.best_cost);
    }
    if (row.error.empty()) {
      EXPECT_GE(row.cost_delta, 0);
    }
  }
  EXPECT_TRUE(winner_row_seen);
  // Cancelled and skipped racers are rendered but are not failures —
  // compare's exit code must stay 0 for a successful race.
  EXPECT_EQ(result.failures, 0u);
}

}  // namespace
}  // namespace dspaddr
