#include "agu/machines.hpp"

#include <gtest/gtest.h>

#include <set>

#include "ir/kernels.hpp"
#include "support/check.hpp"

namespace dspaddr::agu {
namespace {

TEST(Machines, CatalogIsWellFormed) {
  const auto machines = builtin_machines();
  EXPECT_GE(machines.size(), 6u);
  std::set<std::string> names;
  for (const AguSpec& machine : machines) {
    SCOPED_TRACE(machine.name);
    EXPECT_FALSE(machine.name.empty());
    EXPECT_FALSE(machine.description.empty());
    EXPECT_GE(machine.address_registers(), 1u);
    EXPECT_GE(machine.modify_range(), 1);
    names.insert(machine.name);
  }
  EXPECT_EQ(names.size(), machines.size()) << "duplicate machine names";
}

TEST(Machines, LookupByName) {
  const AguSpec c25 = builtin_machine("tms320c25");
  EXPECT_EQ(c25.address_registers(), 8u);
  EXPECT_EQ(c25.modify_registers(), 1u);
  EXPECT_THROW(builtin_machine("pdp11"), dspaddr::InvalidArgument);
  EXPECT_EQ(builtin_machine_names().size(), builtin_machines().size());
}

TEST(Machines, RunOnMachineVerifiesEverywhere) {
  // Every kernel on every machine must execute correctly and match the
  // analytic residual cost.
  for (const ir::Kernel& kernel : ir::builtin_kernels()) {
    for (const AguSpec& machine : builtin_machines()) {
      SCOPED_TRACE(kernel.name() + " on " + machine.name);
      const MachineRunReport report = run_on_machine(kernel, machine);
      EXPECT_TRUE(report.verified);
      EXPECT_GE(report.allocation_cost, report.residual_cost);
      EXPECT_GE(report.residual_cost, 0);
    }
  }
}

TEST(Machines, ModifyRegistersOnlyHelp) {
  // adsp218x is tms320c54x-shaped with 8 MRs instead of 1: residual
  // cost can only improve.
  const ir::Kernel kernel = ir::filter2d_3x3_kernel(32);
  const MachineRunReport one_mr =
      run_on_machine(kernel, builtin_machine("tms320c54x"));
  const MachineRunReport eight_mrs =
      run_on_machine(kernel, builtin_machine("adsp218x"));
  EXPECT_EQ(one_mr.allocation_cost, eight_mrs.allocation_cost);
  EXPECT_LE(eight_mrs.residual_cost, one_mr.residual_cost);
}

TEST(Machines, SmallMachineCostsMore) {
  // 2 registers without MRs can't beat 8 registers with MRs.
  const ir::Kernel kernel = ir::paper_example_kernel();
  const MachineRunReport small =
      run_on_machine(kernel, builtin_machine("minimal2"));
  const MachineRunReport large =
      run_on_machine(kernel, builtin_machine("adsp218x"));
  EXPECT_GE(small.residual_cost, large.residual_cost);
}

TEST(Machines, WiderImmediateRangeLowersAllocationCost) {
  // wide4 (M = 2, K = 4) vs a hypothetical M = 1, K = 4 machine.
  const ir::Kernel kernel = ir::paper_example_kernel();
  AguSpec narrow;
  narrow.name = "narrow4";
  narrow.description = "test";
  narrow.set_address_registers(4);
  narrow.set_modify_registers(0);
  narrow.set_modify_range(1);
  const MachineRunReport n = run_on_machine(kernel, narrow);
  const MachineRunReport w =
      run_on_machine(kernel, builtin_machine("wide4"));
  EXPECT_LE(w.allocation_cost, n.allocation_cost);
}

}  // namespace
}  // namespace dspaddr::agu
