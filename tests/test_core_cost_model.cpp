#include "core/cost_model.hpp"

#include <gtest/gtest.h>

namespace dspaddr::core {
namespace {

using ir::Access;
using ir::AccessSequence;

TEST(CostModel, IntraZeroCostWithinModifyRange) {
  const auto seq = AccessSequence::from_offsets({0, 1, 3, -2});
  const CostModel m1{1, WrapPolicy::kCyclic};
  EXPECT_EQ(intra_transition_cost(seq, 0, 1, m1), 0);   // d = 1
  EXPECT_EQ(intra_transition_cost(seq, 1, 2, m1), 1);   // d = 2
  EXPECT_EQ(intra_transition_cost(seq, 0, 3, m1), 1);   // d = -2
  EXPECT_EQ(intra_transition_cost(seq, 1, 1, m1), 0);   // d = 0
}

TEST(CostModel, BoundaryDistanceExactlyMIsFree) {
  const auto seq = AccessSequence::from_offsets({0, 3});
  const CostModel m3{3, WrapPolicy::kCyclic};
  EXPECT_TRUE(intra_zero_cost(seq, 0, 1, m3));
  const CostModel m2{2, WrapPolicy::kCyclic};
  EXPECT_FALSE(intra_zero_cost(seq, 0, 1, m2));
}

TEST(CostModel, ModifyRangeZeroOnlyFreeAtSameAddress) {
  const auto seq = AccessSequence::from_offsets({5, 5, 6});
  const CostModel m0{0, WrapPolicy::kCyclic};
  EXPECT_TRUE(intra_zero_cost(seq, 0, 1, m0));
  EXPECT_FALSE(intra_zero_cost(seq, 1, 2, m0));
}

TEST(CostModel, DifferentStridesAreNeverFree) {
  const AccessSequence seq({Access{0, 1}, Access{0, -1}});
  const CostModel wide{1000, WrapPolicy::kCyclic};
  EXPECT_EQ(intra_transition_cost(seq, 0, 1, wide), 1);
  EXPECT_EQ(wrap_transition_cost(seq, 1, 0, wide), 1);
}

TEST(CostModel, WrapCostUsesStrideAdjustedDistance) {
  // Offsets 1, -2, stride 1: wrap from a_2 (-2) to a_1 (1+1=2) is 4.
  const auto seq = AccessSequence::from_offsets({1, -2});
  const CostModel m1{1, WrapPolicy::kCyclic};
  EXPECT_EQ(wrap_transition_cost(seq, 1, 0, m1), 1);
  const CostModel m4{4, WrapPolicy::kCyclic};
  EXPECT_EQ(wrap_transition_cost(seq, 1, 0, m4), 0);
}

TEST(CostModel, SingletonWrapEqualsStride) {
  const auto unit = AccessSequence::from_offsets({7}, 1);
  const CostModel m1{1, WrapPolicy::kCyclic};
  EXPECT_EQ(wrap_transition_cost(unit, 0, 0, m1), 0);
  const auto wide = AccessSequence::from_offsets({7}, 5);
  EXPECT_EQ(wrap_transition_cost(wide, 0, 0, m1), 1);
}

TEST(CostModel, AcyclicPolicyNeverChargesWrap) {
  const auto seq = AccessSequence::from_offsets({100, -100});
  const CostModel acyclic{1, WrapPolicy::kAcyclic};
  EXPECT_EQ(wrap_transition_cost(seq, 0, 1, acyclic), 0);
  EXPECT_EQ(wrap_transition_cost(seq, 1, 0, acyclic), 0);
  // Intra charging is unaffected.
  EXPECT_EQ(intra_transition_cost(seq, 0, 1, acyclic), 1);
}

}  // namespace
}  // namespace dspaddr::core
