#include <gtest/gtest.h>

#include "agu/codegen.hpp"
#include "agu/simulator.hpp"
#include "core/allocator.hpp"
#include "eval/patterns.hpp"
#include "ir/kernels.hpp"
#include "ir/layout.hpp"
#include "support/rng.hpp"

namespace dspaddr::agu {
namespace {

using core::Allocation;
using core::ProblemConfig;
using ir::AccessSequence;

Allocation allocate(const AccessSequence& seq, std::int64_t m,
                    std::size_t k) {
  ProblemConfig config;
  config.modify_range = m;
  config.registers = k;
  return core::RegisterAllocator(config).run(seq);
}

TEST(Codegen, SetupLoadsFirstAddressPerRegister) {
  const auto seq = AccessSequence::from_offsets({1, 0, 2, -1, 1, 0, -2});
  const Allocation a = allocate(seq, 1, 2);
  const Program p = generate_code(seq, a);
  EXPECT_EQ(p.register_count, a.register_count());
  ASSERT_EQ(p.setup.size(), a.register_count());
  for (std::size_t r = 0; r < p.setup.size(); ++r) {
    EXPECT_EQ(p.setup[r].op, Opcode::kLdar);
    EXPECT_EQ(p.setup[r].value, seq[a.paths()[r].first()].offset);
  }
}

TEST(Codegen, BodyHasOneUsePerAccessInOrder) {
  const auto seq = AccessSequence::from_offsets({1, 0, 2, -1, 1, 0, -2});
  const Allocation a = allocate(seq, 1, 2);
  const Program p = generate_code(seq, a);
  std::vector<std::size_t> uses;
  for (const Instruction& instruction : p.body) {
    if (instruction.op == Opcode::kUse) uses.push_back(instruction.access);
  }
  ASSERT_EQ(uses.size(), seq.size());
  for (std::size_t i = 0; i < uses.size(); ++i) {
    EXPECT_EQ(uses[i], i);
  }
}

TEST(Codegen, ExtraBodyWordsEqualAnalyticCost) {
  const auto seq = AccessSequence::from_offsets({1, 0, 2, -1, 1, 0, -2});
  for (std::size_t k : {1, 2, 3}) {
    const Allocation a = allocate(seq, 1, k);
    const Program p = generate_code(seq, a);
    EXPECT_EQ(p.body_address_words(),
              static_cast<std::size_t>(a.cost()))
        << "k = " << k;
  }
}

TEST(Simulator, VerifiesPaperExampleAcrossIterations) {
  const auto seq = AccessSequence::from_offsets({1, 0, 2, -1, 1, 0, -2});
  const Allocation a = allocate(seq, 1, 2);
  const Program p = generate_code(seq, a);
  const SimResult r = Simulator{}.run(p, seq, 50);
  EXPECT_TRUE(r.verified) << r.failure;
  EXPECT_EQ(r.accesses_executed, 50u * seq.size());
  EXPECT_EQ(r.extra_instructions,
            50u * static_cast<std::uint64_t>(a.cost()));
}

TEST(Simulator, ZeroCostAllocationNeedsNoExtraInstructions) {
  const auto seq = AccessSequence::from_offsets({1, 0, 2, -1, 1, 0, -2});
  const Allocation a = allocate(seq, 1, seq.size());
  ASSERT_EQ(a.cost(), 0);
  const Program p = generate_code(seq, a);
  const SimResult r = Simulator{}.run(p, seq, 16);
  EXPECT_TRUE(r.verified) << r.failure;
  EXPECT_EQ(r.extra_instructions, 0u);
}

TEST(Simulator, TraceRecordsDemandedAddresses) {
  const auto seq = AccessSequence::from_offsets({0, 1});
  const Allocation a = allocate(seq, 1, 1);
  const Program p = generate_code(seq, a);
  Simulator::Options options;
  options.record_trace = true;
  const SimResult r = Simulator(options).run(p, seq, 2);
  EXPECT_TRUE(r.verified) << r.failure;
  // Iteration 0: addresses 0, 1; iteration 1: 1, 2.
  EXPECT_EQ(r.trace, (std::vector<std::int64_t>{0, 1, 1, 2}));
}

TEST(Simulator, DetectsCorruptedProgram) {
  const auto seq = AccessSequence::from_offsets({0, 5});
  const Allocation a = allocate(seq, 1, 1);
  Program p = generate_code(seq, a);
  // Break the ADAR that bridges the distance-5 gap.
  bool corrupted = false;
  for (Instruction& instruction : p.body) {
    if (instruction.op == Opcode::kAdar) {
      instruction.value += 1;
      corrupted = true;
      break;
    }
  }
  ASSERT_TRUE(corrupted);
  const SimResult r = Simulator{}.run(p, seq, 3);
  EXPECT_FALSE(r.verified);
  EXPECT_NE(r.failure.find("demanded"), std::string::npos);
}

TEST(Simulator, StopOnFailureFalseKeepsCounting) {
  const auto seq = AccessSequence::from_offsets({0, 5});
  const Allocation a = allocate(seq, 1, 1);
  Program p = generate_code(seq, a);
  for (Instruction& instruction : p.body) {
    if (instruction.op == Opcode::kAdar) instruction.value += 1;
  }
  Simulator::Options options;
  options.stop_on_failure = false;
  const SimResult r = Simulator(options).run(p, seq, 4);
  EXPECT_FALSE(r.verified);
  EXPECT_EQ(r.accesses_executed, 4u * seq.size());
}

TEST(Simulator, MixedStrideKernelUsesReloadAndStillVerifies) {
  // matmul has strides 1, n, 0 — reg transitions across strides need
  // RELOADs; the simulator must still see correct addresses everywhere.
  const ir::Kernel kernel = ir::matmul_kernel(6);
  const AccessSequence seq = ir::lower(kernel);
  const Allocation a = allocate(seq, 1, 2);
  const Program p = generate_code(seq, a);
  const SimResult r = Simulator{}.run(p, seq, 6);
  EXPECT_TRUE(r.verified) << r.failure;
}

class CodegenSimPropertyTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CodegenSimPropertyTest, SimulatedExtraCostMatchesAnalyticCost) {
  // The end-to-end contract (bench T5): per-iteration extra address
  // instructions == allocation cost, and every USE sees the demanded
  // address.
  support::Rng rng(GetParam() * 419 + 1);
  eval::PatternSpec spec;
  spec.accesses = 3 + rng.index(30);
  spec.offset_range = 1 + rng.uniform_int(0, 15);
  spec.family = static_cast<eval::PatternFamily>(rng.index(4));
  const auto seq = eval::generate_pattern(spec, rng);

  const std::int64_t m = 1 + rng.uniform_int(0, 3);
  const std::size_t k = 1 + rng.index(6);
  const Allocation a = allocate(seq, m, k);
  const Program p = generate_code(seq, a);

  const std::uint64_t iterations = 1 + rng.index(20);
  const SimResult r = Simulator{}.run(p, seq, iterations);
  EXPECT_TRUE(r.verified) << r.failure;
  EXPECT_EQ(r.extra_instructions,
            iterations * static_cast<std::uint64_t>(a.cost()));
  EXPECT_EQ(r.setup_instructions, a.register_count());
}

TEST_P(CodegenSimPropertyTest, AllBuiltinKernelsSimulateCorrectly) {
  const auto kernels = ir::builtin_kernels();
  const std::size_t index = GetParam() % kernels.size();
  const ir::Kernel& kernel = kernels[index];
  SCOPED_TRACE(kernel.name());
  const AccessSequence seq = ir::lower(kernel);

  support::Rng rng(GetParam());
  const std::int64_t m = 1 + rng.uniform_int(0, 2);
  const std::size_t k = 1 + rng.index(4);
  const Allocation a = allocate(seq, m, k);
  const Program p = generate_code(seq, a);
  const SimResult r = Simulator{}.run(
      p, seq, static_cast<std::uint64_t>(kernel.iterations()));
  EXPECT_TRUE(r.verified) << r.failure;
  EXPECT_EQ(r.extra_instructions,
            static_cast<std::uint64_t>(kernel.iterations()) *
                static_cast<std::uint64_t>(a.cost()));
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, CodegenSimPropertyTest,
                         ::testing::Range<std::uint64_t>(0, 40));

}  // namespace
}  // namespace dspaddr::agu
