#include "agu/program.hpp"

#include <gtest/gtest.h>

namespace dspaddr::agu {
namespace {

TEST(Instruction, LdarRendering) {
  const Instruction i{.op = Opcode::kLdar, .reg = 2, .value = -5};
  EXPECT_EQ(i.to_string(), "LDAR AR2, #-5");
}

TEST(Instruction, AdarRendering) {
  const Instruction i{.op = Opcode::kAdar, .reg = 0, .value = 7};
  EXPECT_EQ(i.to_string(), "ADAR AR0, #7");
}

TEST(Instruction, UseRenderingWithAndWithoutModify) {
  const Instruction plain{.op = Opcode::kUse, .reg = 1, .value = 0,
                          .access = 3};
  EXPECT_EQ(plain.to_string(), "USE AR1  ; a_4");
  const Instruction inc{.op = Opcode::kUse, .reg = 1, .value = 1,
                        .access = 0};
  EXPECT_EQ(inc.to_string(), "USE AR1  ; a_1, post-modify +1");
  const Instruction dec{.op = Opcode::kUse, .reg = 1, .value = -1,
                        .access = 0};
  EXPECT_EQ(dec.to_string(), "USE AR1  ; a_1, post-modify -1");
}

TEST(Instruction, ReloadRendering) {
  const Instruction same{.op = Opcode::kReload, .reg = 0, .access = 2};
  EXPECT_EQ(same.to_string(), "RELOAD AR0, &a_3");
  const Instruction next{.op = Opcode::kReload, .reg = 0, .access = 2,
                         .next_iteration = true};
  EXPECT_EQ(next.to_string(), "RELOAD AR0, &a_3 (next iteration)");
}

TEST(Program, AddressWordsCountOnlyExplicitInstructions) {
  Program p;
  p.register_count = 1;
  p.setup.push_back(Instruction{.op = Opcode::kLdar, .reg = 0, .value = 0});
  p.body.push_back(Instruction{.op = Opcode::kUse, .reg = 0, .value = 1});
  p.body.push_back(Instruction{.op = Opcode::kAdar, .reg = 0, .value = 9});
  p.body.push_back(
      Instruction{.op = Opcode::kReload, .reg = 0, .access = 0});
  EXPECT_EQ(p.setup_address_words(), 1u);
  EXPECT_EQ(p.body_address_words(), 2u);  // ADAR + RELOAD; USE is free
}

TEST(Program, ToStringListsSetupAndBody) {
  Program p;
  p.register_count = 1;
  p.setup.push_back(Instruction{.op = Opcode::kLdar, .reg = 0, .value = 3});
  p.body.push_back(Instruction{.op = Opcode::kUse, .reg = 0, .value = 0});
  const std::string text = p.to_string();
  EXPECT_NE(text.find("; setup"), std::string::npos);
  EXPECT_NE(text.find("; loop body"), std::string::npos);
  EXPECT_NE(text.find("LDAR AR0, #3"), std::string::npos);
}

TEST(Opcode, Names) {
  EXPECT_STREQ(to_string(Opcode::kLdar), "LDAR");
  EXPECT_STREQ(to_string(Opcode::kAdar), "ADAR");
  EXPECT_STREQ(to_string(Opcode::kUse), "USE");
  EXPECT_STREQ(to_string(Opcode::kReload), "RELOAD");
}

}  // namespace
}  // namespace dspaddr::agu
