#include "graph/path_cover.hpp"

#include <gtest/gtest.h>

#include "support/rng.hpp"

namespace dspaddr::graph {
namespace {

TEST(PathCover, ChainIsOnePath) {
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  const PathCover cover = minimum_path_cover_dag(g);
  ASSERT_EQ(cover.path_count(), 1u);
  EXPECT_EQ(cover.paths[0], (std::vector<NodeId>{0, 1, 2, 3}));
}

TEST(PathCover, AntichainNeedsOnePathPerNode) {
  Digraph g(5);
  const PathCover cover = minimum_path_cover_dag(g);
  EXPECT_EQ(cover.path_count(), 5u);
}

TEST(PathCover, DiamondNeedsTwoPaths) {
  // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3: one path through, one leftover.
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  EXPECT_EQ(minimum_path_cover_dag(g).path_count(), 2u);
}

TEST(PathCover, TwoIndependentChains) {
  Digraph g(6);
  g.add_edge(0, 2);
  g.add_edge(2, 4);
  g.add_edge(1, 3);
  g.add_edge(3, 5);
  EXPECT_EQ(minimum_path_cover_dag(g).path_count(), 2u);
}

TEST(PathCover, RejectsCyclicGraph) {
  Digraph g(2);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  EXPECT_THROW(minimum_path_cover_dag(g), InvalidArgument);
}

TEST(ValidatePathCover, AcceptsValidCover) {
  Digraph g(3);
  g.add_edge(0, 1);
  PathCover cover;
  cover.paths = {{0, 1}, {2}};
  EXPECT_NO_THROW(validate_path_cover(g, cover));
}

TEST(ValidatePathCover, RejectsMissingNode) {
  Digraph g(3);
  PathCover cover;
  cover.paths = {{0}, {1}};
  EXPECT_THROW(validate_path_cover(g, cover), InvariantViolation);
}

TEST(ValidatePathCover, RejectsDuplicateNode) {
  Digraph g(2);
  PathCover cover;
  cover.paths = {{0}, {0}, {1}};
  EXPECT_THROW(validate_path_cover(g, cover), InvariantViolation);
}

TEST(ValidatePathCover, RejectsNonEdgePair) {
  Digraph g(2);  // no edges
  PathCover cover;
  cover.paths = {{0, 1}};
  EXPECT_THROW(validate_path_cover(g, cover), InvariantViolation);
}

TEST(ValidatePathCover, RejectsEmptyPath) {
  Digraph g(1);
  PathCover cover;
  cover.paths = {{}, {0}};
  EXPECT_THROW(validate_path_cover(g, cover), InvariantViolation);
}

/// Oracle: minimum path cover of a DAG by exhaustive assignment of each
/// node to a path slot (tiny n).
std::size_t brute_force_cover(const Digraph& g) {
  const std::size_t n = g.node_count();
  std::vector<std::size_t> assignment(n, 0);
  std::size_t best = n;
  // Try every assignment of nodes to at most n path ids where each path
  // id's nodes, in index order, must form a chain of edges.
  const auto evaluate = [&]() {
    std::vector<std::vector<NodeId>> paths(n);
    for (NodeId v = 0; v < n; ++v) {
      paths[assignment[v]].push_back(v);
    }
    std::size_t used = 0;
    for (const auto& path : paths) {
      if (path.empty()) continue;
      ++used;
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        if (!g.has_edge(path[i], path[i + 1])) return;
      }
    }
    best = std::min(best, used);
  };
  // Odometer over assignments (n^n, n <= 6).
  while (true) {
    evaluate();
    std::size_t digit = 0;
    while (digit < n) {
      if (++assignment[digit] < n) break;
      assignment[digit] = 0;
      ++digit;
    }
    if (digit == n) break;
  }
  return best;
}

class PathCoverPropertyTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PathCoverPropertyTest, MatchesBruteForceOnRandomDags) {
  support::Rng rng(GetParam());
  const std::size_t n = 2 + rng.index(5);  // up to 6 nodes
  Digraph g(n);
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = i + 1; j < n; ++j) {
      if (rng.bernoulli(0.35)) g.add_edge(i, j);
    }
  }
  const PathCover cover = minimum_path_cover_dag(g);
  validate_path_cover(g, cover);
  EXPECT_EQ(cover.path_count(), brute_force_cover(g));
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, PathCoverPropertyTest,
                         ::testing::Range<std::uint64_t>(0, 30));

}  // namespace
}  // namespace dspaddr::graph
