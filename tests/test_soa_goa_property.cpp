// Property tests for general offset assignment (GOA): partition_cost
// cross-checked against exhaustive partition enumeration with exact
// per-register layouts, and the GoaResult accounting invariants.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <numeric>

#include "soa/goa.hpp"
#include "soa/liao.hpp"
#include "soa/scalar_sequence.hpp"
#include "support/rng.hpp"

namespace dspaddr::soa {
namespace {

ScalarSequence random_sequence(support::Rng& rng, std::size_t variables,
                               std::size_t length) {
  std::vector<VarId> accesses(length);
  for (auto& a : accesses) {
    a = static_cast<VarId>(rng.index(variables));
  }
  return ScalarSequence(std::move(accesses), variables);
}

/// Sum over registers of the *exact* (permutation-enumerated) SOA cost
/// of the register's projected subsequence — the lower-bound oracle
/// partition_cost (which lays out via the Liao heuristic) is checked
/// against.
std::int64_t exact_partition_cost(
    const ScalarSequence& seq,
    const std::vector<std::uint32_t>& register_of, std::size_t k) {
  std::int64_t total = 0;
  for (std::uint32_t reg = 0; reg < k; ++reg) {
    std::vector<bool> keep(seq.variable_count(), false);
    bool any = false;
    for (VarId v = 0; v < seq.variable_count(); ++v) {
      if (register_of[v] == reg) {
        keep[v] = true;
        any = true;
      }
    }
    if (!any) continue;
    total += exact_soa_cost(seq.project(keep));
  }
  return total;
}

/// Odometer over all k^n partitions; calls fn(register_of) for each.
template <typename Fn>
void for_each_partition(std::size_t variables, std::size_t k, Fn fn) {
  std::vector<std::uint32_t> register_of(variables, 0);
  while (true) {
    fn(register_of);
    std::size_t digit = 0;
    while (digit < variables) {
      if (++register_of[digit] < k) break;
      register_of[digit] = 0;
      ++digit;
    }
    if (digit == variables) break;
  }
}

class GoaPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GoaPropertyTest, PartitionCostNeverBeatsTheExactPerRegisterCost) {
  // partition_cost lays each register's group out with the Liao
  // heuristic; it can never undercut the exact per-register optimum,
  // and on these tiny groups (<= 4 variables) the heuristic is usually
  // exact — both directions bound it against the oracle.
  support::Rng rng(GetParam() * 7919 + 13);
  const std::size_t variables = 2 + rng.index(3);  // 2..4
  const std::size_t k = 1 + rng.index(3);          // 1..3
  const ScalarSequence seq =
      random_sequence(rng, variables, 4 + rng.index(10));

  for_each_partition(variables, k, [&](const auto& register_of) {
    const std::int64_t heuristic =
        partition_cost(seq, register_of, k, SoaTieBreak::kLeupers);
    const std::int64_t exact =
        exact_partition_cost(seq, register_of, k);
    EXPECT_GE(heuristic, exact)
        << "Liao layout undercut the exact optimum";
  });
}

TEST_P(GoaPropertyTest, ExactGoaCostIsTheMinimumOverAllPartitions) {
  // exact_goa_cost enumerates partitions with Liao layouts per
  // register; recompute the same minimum independently through
  // partition_cost and require equality.
  support::Rng rng(GetParam() * 104729 + 5);
  const std::size_t variables = 2 + rng.index(3);
  const std::size_t k = 1 + rng.index(2);  // 1..2
  const ScalarSequence seq =
      random_sequence(rng, variables, 5 + rng.index(8));

  std::int64_t best = std::numeric_limits<std::int64_t>::max();
  for_each_partition(variables, k, [&](const auto& register_of) {
    best = std::min(best, partition_cost(seq, register_of, k,
                                         SoaTieBreak::kLeupers));
  });
  EXPECT_EQ(exact_goa_cost(seq, k), best);
}

TEST_P(GoaPropertyTest, HeuristicGoaNeverBeatsExactAndStaysValid) {
  support::Rng rng(GetParam() * 31 + 3);
  const std::size_t variables = 2 + rng.index(3);
  const std::size_t k = 1 + rng.index(2);
  const ScalarSequence seq =
      random_sequence(rng, variables, 5 + rng.index(8));

  const GoaResult result = goa_allocate(seq, k);
  EXPECT_GE(result.total_cost, exact_goa_cost(seq, k));
  ASSERT_EQ(result.register_of.size(), variables);
  for (const std::uint32_t reg : result.register_of) {
    EXPECT_LT(reg, k);
  }
}

TEST_P(GoaPropertyTest, RegisterCostsSumToTotalCost) {
  // The accounting invariant: register_cost[] is a decomposition of
  // total_cost, and both agree with an independent partition_cost of
  // the returned partition.
  support::Rng rng(GetParam() * 65537 + 101);
  const std::size_t variables = 2 + rng.index(5);  // 2..6
  const std::size_t k = 1 + rng.index(4);          // 1..4
  const ScalarSequence seq =
      random_sequence(rng, variables, 6 + rng.index(20));

  const GoaResult result = goa_allocate(seq, k);
  ASSERT_EQ(result.register_cost.size(), k);
  const std::int64_t sum =
      std::accumulate(result.register_cost.begin(),
                      result.register_cost.end(), std::int64_t{0});
  EXPECT_EQ(sum, result.total_cost);
  EXPECT_EQ(partition_cost(seq, result.register_of, k,
                           SoaTieBreak::kLeupers),
            result.total_cost);
  for (const std::int64_t cost : result.register_cost) {
    EXPECT_GE(cost, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, GoaPropertyTest,
                         ::testing::Range<std::uint64_t>(0, 25));

}  // namespace
}  // namespace dspaddr::soa
