// Cross-module integration: textual kernel -> parser -> layout ->
// allocator -> code generator -> simulator, plus the metrics model.
#include <gtest/gtest.h>

#include "agu/codegen.hpp"
#include "agu/metrics.hpp"
#include "agu/simulator.hpp"
#include "core/allocator.hpp"
#include "core/validate.hpp"
#include "ir/kernels.hpp"
#include "ir/layout.hpp"
#include "ir/parser.hpp"
#include "soa/liao.hpp"

namespace dspaddr {
namespace {

core::ProblemConfig config_mk(std::int64_t m, std::size_t k) {
  core::ProblemConfig config;
  config.modify_range = m;
  config.registers = k;
  return config;
}

TEST(Integration, TextualKernelRunsEndToEnd) {
  const ir::Kernel kernel = ir::parse_kernel(R"(
kernel window3 "3-tap sliding window"
array x 64
array y 64
iterations 60
dataops 2
access x -1
access x 0
access x 1
access y 0 write
end
)");
  const ir::AccessSequence seq = ir::lower(kernel);
  const core::Allocation a =
      core::RegisterAllocator(config_mk(1, 2)).run(seq);
  const agu::Program p = agu::generate_code(seq, a);
  const agu::SimResult r = agu::Simulator{}.run(
      p, seq, static_cast<std::uint64_t>(kernel.iterations()));
  EXPECT_TRUE(r.verified) << r.failure;
  EXPECT_EQ(r.accesses_executed,
            static_cast<std::uint64_t>(kernel.iterations()) * seq.size());
}

TEST(Integration, SlidingWindowIsFreeWithTwoRegisters) {
  // x[i-1], x[i], x[i+1], y[i]: one register walks the window (the
  // three x taps are +-1 apart and wrap by +1), one walks y.
  const ir::Kernel kernel = ir::parse_kernel(R"(
kernel window3
array x 64
array y 64
iterations 60
access x -1
access x 0
access x 1
access y 0 write
end
)");
  const ir::AccessSequence seq = ir::lower(kernel);
  const core::Allocation a =
      core::RegisterAllocator(config_mk(1, 2)).run(seq);
  EXPECT_EQ(a.cost(), 0);
}

class KernelConfigTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(KernelConfigTest, EveryBuiltinKernelIsFullyConsistent) {
  const auto [m_int, k_int] = GetParam();
  const std::int64_t m = m_int;
  const std::size_t k = static_cast<std::size_t>(k_int);
  for (const ir::Kernel& kernel : ir::builtin_kernels()) {
    SCOPED_TRACE(kernel.name() + " M=" + std::to_string(m) +
                 " K=" + std::to_string(k));
    const ir::AccessSequence seq = ir::lower(kernel);
    const core::Allocation a =
        core::RegisterAllocator(config_mk(m, k)).run(seq);

    // (1) Structure.
    core::validate_allocation(seq, a.paths(), k);

    // (2) Executable semantics: the generated address program walks the
    //     exact addresses the kernel demands.
    const agu::Program p = agu::generate_code(seq, a);
    const std::uint64_t iterations =
        static_cast<std::uint64_t>(kernel.iterations());
    const agu::SimResult r = agu::Simulator{}.run(p, seq, iterations);
    EXPECT_TRUE(r.verified) << r.failure;

    // (3) Cost accounting: simulator, program text and analytic model
    //     agree.
    EXPECT_EQ(r.extra_instructions,
              iterations * static_cast<std::uint64_t>(a.cost()));
    EXPECT_EQ(p.body_address_words(), static_cast<std::size_t>(a.cost()));

    // (4) Metrics model consistency.
    const agu::CodeMetrics optimized = agu::optimized_metrics(kernel, a);
    const agu::CodeMetrics baseline = agu::baseline_metrics(kernel);
    EXPECT_GT(optimized.size_words, 0);
    EXPECT_LE(optimized.size_words,
              baseline.size_words +
                  static_cast<std::int64_t>(a.register_count()));
    EXPECT_LE(optimized.cycles, baseline.cycles);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, KernelConfigTest,
    ::testing::Combine(::testing::Values(1, 2, 4),
                       ::testing::Values(1, 2, 4, 8)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
      return "M" + std::to_string(std::get<0>(info.param)) + "_K" +
             std::to_string(std::get<1>(info.param));
    });

TEST(Integration, MetricsComparisonMatchesDirectComputation) {
  const ir::Kernel kernel = ir::fir_kernel(16, 64);
  const core::ProblemConfig config = config_mk(1, 4);
  const agu::AddressingComparison comparison =
      agu::compare_addressing(kernel, config);

  const ir::AccessSequence seq = ir::lower(kernel);
  const core::Allocation a = core::RegisterAllocator(config).run(seq);
  EXPECT_EQ(comparison.optimized.size_words,
            agu::optimized_metrics(kernel, a).size_words);
  EXPECT_EQ(comparison.baseline.cycles,
            agu::baseline_metrics(kernel).cycles);
  EXPECT_GE(comparison.speed_reduction_percent, 0.0);
  EXPECT_GE(comparison.size_reduction_percent, 0.0);
  // Address computation dominates the FIR inner loop: the speed gain
  // must be substantial and exceed the size gain (the 30/60 shape).
  EXPECT_GT(comparison.speed_reduction_percent, 25.0);
  EXPECT_GT(comparison.speed_reduction_percent,
            comparison.size_reduction_percent);
}

TEST(Integration, ScalarSoaIsASpecialCaseOfTheArrayProblem) {
  // A scalar access sequence under a fixed layout maps onto the array
  // problem: offsets = layout addresses, stride 0 (no loop movement),
  // acyclic wrap (straight-line code), K = 1 (one address register
  // walks all variables). The forced single-path allocation cost must
  // equal soa::layout_cost — two independent implementations of the
  // same cost.
  const soa::ScalarSequence scalar =
      soa::ScalarSequence::from_names({"a", "b", "c", "a", "d", "b",
                                       "a", "c", "d", "b", "c", "a"});
  const soa::Layout layout =
      soa::liao_layout(scalar, soa::SoaTieBreak::kLeupers);

  std::vector<ir::Access> accesses;
  for (soa::VarId v : scalar.accesses()) {
    accesses.push_back(ir::Access{layout[v], 0});
  }
  const ir::AccessSequence seq((std::vector<ir::Access>(accesses)));

  core::ProblemConfig config;
  config.modify_range = 1;
  config.registers = 1;
  config.wrap = core::WrapPolicy::kAcyclic;
  const core::Allocation a = core::RegisterAllocator(config).run(seq);
  EXPECT_EQ(a.cost(),
            static_cast<int>(soa::layout_cost(scalar, layout)));
}

TEST(Integration, BiquadZeroCostWithSixRegisters) {
  // With one register per access every path is a singleton or a free
  // pair, so six registers always admit a free schedule (M = 1 covers
  // the unit loop stride).
  const ir::Kernel kernel = ir::biquad_kernel(64);
  const ir::AccessSequence seq = ir::lower(kernel);
  const core::Allocation a =
      core::RegisterAllocator(config_mk(1, 6)).run(seq);
  EXPECT_EQ(a.cost(), 0);
}

}  // namespace
}  // namespace dspaddr
