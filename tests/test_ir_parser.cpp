#include "ir/parser.hpp"

#include <gtest/gtest.h>

#include "ir/kernels.hpp"
#include "ir/layout.hpp"

namespace dspaddr::ir {
namespace {

constexpr const char* kFirText = R"(
# FIR filter tap loop
kernel fir "FIR filter"
array h 16
array x 64
iterations 16
dataops 1
access h 0 stride 1
access x 0 stride -1
end
)";

TEST(Parser, ParsesSimpleKernel) {
  const Kernel k = parse_kernel(kFirText);
  EXPECT_EQ(k.name(), "fir");
  EXPECT_EQ(k.description(), "FIR filter");
  EXPECT_EQ(k.arrays().size(), 2u);
  EXPECT_EQ(k.iterations(), 16);
  EXPECT_EQ(k.data_ops(), 1);
  ASSERT_EQ(k.accesses().size(), 2u);
  EXPECT_EQ(k.accesses()[1].stride, -1);
}

TEST(Parser, ParsesMultipleKernels) {
  const std::string text = std::string(kFirText) + R"(
kernel second
array a 4
access a 0
end
)";
  const auto kernels = parse_kernels(text);
  ASSERT_EQ(kernels.size(), 2u);
  EXPECT_EQ(kernels[0].name(), "fir");
  EXPECT_EQ(kernels[1].name(), "second");
  EXPECT_EQ(kernels[1].description(), "");
}

TEST(Parser, HandlesWriteFlagAndTrailingComments) {
  const Kernel k = parse_kernel(R"(
kernel k
array y 8
access y 0 write   # store the result
end
)");
  EXPECT_TRUE(k.accesses()[0].is_write);
}

TEST(Parser, StrideAndWriteComposable) {
  const Kernel k = parse_kernel(R"(
kernel k
array y 8
access y 2 stride -2 write
end
)");
  EXPECT_EQ(k.accesses()[0].offset, 2);
  EXPECT_EQ(k.accesses()[0].stride, -2);
  EXPECT_TRUE(k.accesses()[0].is_write);
}

TEST(Parser, NegativeOffsets) {
  const Kernel k = parse_kernel(R"(
kernel k
array a 8
access a -3
end
)");
  EXPECT_EQ(k.accesses()[0].offset, -3);
}

TEST(Parser, EmptyInputYieldsNoKernels) {
  EXPECT_TRUE(parse_kernels("").empty());
  EXPECT_TRUE(parse_kernels("\n# only a comment\n").empty());
}

/// Each error case carries the 1-based line number of the offence.
struct ErrorCase {
  const char* label;
  const char* text;
  std::size_t line;
};

class ParserErrorTest : public ::testing::TestWithParam<ErrorCase> {};

TEST_P(ParserErrorTest, ReportsLineNumber) {
  const ErrorCase& c = GetParam();
  try {
    parse_kernels(c.text);
    FAIL() << "expected ParseError for " << c.label;
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), c.line) << e.what();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ParserErrorTest,
    ::testing::Values(
        ErrorCase{"unknown keyword", "kernel k\nfrobnicate\nend\n", 2},
        ErrorCase{"statement outside kernel", "array a 4\n", 1},
        ErrorCase{"nested kernel", "kernel a\nkernel b\n", 2},
        ErrorCase{"missing end", "kernel k\narray a 4\naccess a 0\n", 3},
        ErrorCase{"bad array size", "kernel k\narray a x\n", 2},
        ErrorCase{"zero array size", "kernel k\narray a 0\n", 2},
        ErrorCase{"duplicate array", "kernel k\narray a 4\narray a 4\n", 3},
        ErrorCase{"bad iteration count", "kernel k\niterations -2\n", 2},
        ErrorCase{"undeclared array access", "kernel k\naccess a 0\n", 2},
        ErrorCase{"bad offset", "kernel k\narray a 4\naccess a q\n", 3},
        ErrorCase{"stride without value",
                  "kernel k\narray a 4\naccess a 0 stride\n", 3},
        ErrorCase{"unexpected access token",
                  "kernel k\narray a 4\naccess a 0 blah\n", 3},
        ErrorCase{"end with arguments", "kernel k\narray a 4\naccess a 0\n"
                                        "end now\n", 4},
        ErrorCase{"kernel without accesses", "kernel k\narray a 4\nend\n",
                  3},
        ErrorCase{"unterminated string", "kernel k \"oops\n", 1},
        ErrorCase{"two strings", "kernel k \"a\" \"b\"\n", 1},
        ErrorCase{"usage kernel", "kernel\n", 1},
        ErrorCase{"usage array", "kernel k\narray a\n", 2},
        ErrorCase{"usage iterations", "kernel k\niterations\n", 2},
        ErrorCase{"usage access", "kernel k\narray a 4\naccess a\n", 3}),
    [](const ::testing::TestParamInfo<ErrorCase>& info) {
      std::string name = info.param.label;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(Parser, ParseKernelRejectsZeroOrMany) {
  EXPECT_THROW(parse_kernel(""), dspaddr::InvalidArgument);
  const std::string two = "kernel a\narray x 1\naccess x 0\nend\n"
                          "kernel b\narray y 1\naccess y 0\nend\n";
  EXPECT_THROW(parse_kernel(two), dspaddr::InvalidArgument);
}

TEST(Parser, RoundTripsAllBuiltinKernels) {
  for (const Kernel& k : builtin_kernels()) {
    SCOPED_TRACE(k.name());
    const Kernel reparsed = parse_kernel(to_text(k));
    EXPECT_EQ(reparsed, k);
    // Lowered sequences must match too (belt and braces).
    EXPECT_EQ(lower(reparsed), lower(k));
  }
}

}  // namespace
}  // namespace dspaddr::ir
