#include "support/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "support/check.hpp"

namespace dspaddr::support {
namespace {

TEST(RunningStats, EmptyAccumulatorIsNeutral) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.ci95_half_width(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(4.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 4.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
}

TEST(RunningStats, KnownSample) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.add(v);
  }
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 = 7: sum of squared deviations is 32.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, MatchesNaiveComputationOnStream) {
  RunningStats s;
  double sum = 0.0;
  std::vector<double> values;
  for (int i = 0; i < 500; ++i) {
    const double v = std::sin(i * 0.7) * 10 + i * 0.01;
    s.add(v);
    sum += v;
    values.push_back(v);
  }
  const double mean = sum / 500.0;
  double sq = 0.0;
  for (double v : values) {
    sq += (v - mean) * (v - mean);
  }
  EXPECT_NEAR(s.mean(), mean, 1e-9);
  EXPECT_NEAR(s.variance(), sq / 499.0, 1e-9);
}

TEST(RunningStats, Ci95ShrinksWithSamples) {
  RunningStats small;
  RunningStats large;
  for (int i = 0; i < 10; ++i) small.add(i % 3);
  for (int i = 0; i < 1000; ++i) large.add(i % 3);
  EXPECT_GT(small.ci95_half_width(), large.ci95_half_width());
}

TEST(Percentile, MedianAndExtremes) {
  std::vector<double> values{5, 1, 4, 2, 3};
  EXPECT_DOUBLE_EQ(percentile(values, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(percentile(values, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(values, 1.0), 5.0);
}

TEST(Percentile, InterpolatesBetweenPoints) {
  std::vector<double> values{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(values, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(percentile(values, 0.75), 7.5);
}

TEST(Percentile, RejectsBadInput) {
  EXPECT_THROW(percentile({}, 0.5), InvalidArgument);
  EXPECT_THROW(percentile({1.0}, -0.1), InvalidArgument);
  EXPECT_THROW(percentile({1.0}, 1.1), InvalidArgument);
}

TEST(PercentReduction, BasicAndZeroBaseline) {
  EXPECT_DOUBLE_EQ(percent_reduction(10.0, 6.0), 40.0);
  EXPECT_DOUBLE_EQ(percent_reduction(10.0, 10.0), 0.0);
  EXPECT_DOUBLE_EQ(percent_reduction(10.0, 12.0), -20.0);
  EXPECT_DOUBLE_EQ(percent_reduction(0.0, 5.0), 0.0);
}

}  // namespace
}  // namespace dspaddr::support
