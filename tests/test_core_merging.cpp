#include "core/merging.hpp"

#include <gtest/gtest.h>

#include "core/access_graph.hpp"
#include "core/branch_and_bound.hpp"
#include "core/validate.hpp"
#include "eval/patterns.hpp"
#include "support/rng.hpp"

namespace dspaddr::core {
namespace {

using ir::AccessSequence;

const CostModel kM1{1, WrapPolicy::kCyclic};

std::vector<Path> phase1_cover(const AccessSequence& seq,
                               const CostModel& model) {
  const AccessGraph g(seq, model);
  return compute_min_register_cover(g).cover;
}

TEST(Merging, NoopWhenAlreadyWithinLimit) {
  const auto seq = AccessSequence::from_offsets({0, 1});
  std::vector<Path> paths{Path({0, 1})};
  const auto merged =
      merge_to_register_limit(seq, kM1, paths, 4, MergeOptions{});
  EXPECT_EQ(merged, paths);
}

TEST(Merging, RejectsZeroRegisters) {
  const auto seq = AccessSequence::from_offsets({0});
  EXPECT_THROW(
      merge_to_register_limit(seq, kM1, {Path({0})}, 0, MergeOptions{}),
      dspaddr::InvalidArgument);
}

TEST(Merging, MergesDownToExactlyK) {
  const auto seq = AccessSequence::from_offsets({0, 10, 20, 30, 40});
  std::vector<Path> paths;
  for (std::size_t i = 0; i < 5; ++i) {
    paths.push_back(Path::singleton(i));
  }
  for (std::size_t k : {4, 2, 1}) {
    const auto merged =
        merge_to_register_limit(seq, kM1, paths, k, MergeOptions{});
    EXPECT_EQ(merged.size(), k);
    validate_allocation(seq, merged, k);
  }
}

TEST(Merging, TraceRecordsEveryStep) {
  const auto seq = AccessSequence::from_offsets({0, 10, 20, 30});
  std::vector<Path> paths;
  for (std::size_t i = 0; i < 4; ++i) {
    paths.push_back(Path::singleton(i));
  }
  std::vector<MergeStep> trace;
  merge_to_register_limit(seq, kM1, paths, 1, MergeOptions{}, &trace);
  EXPECT_EQ(trace.size(), 3u);
  // Total cost after the last step must equal the final allocation cost.
  const auto merged =
      merge_to_register_limit(seq, kM1, paths, 1, MergeOptions{});
  EXPECT_EQ(trace.back().total_cost_after,
            total_cost(seq, merged, kM1));
}

TEST(Merging, PaperExampleKTwoCostsTwo) {
  // From the cyclic-optimal 3-path cover of the worked example, the best
  // single merge costs 2 (merge the singleton (a_7) into either chain);
  // merging the two chains would cost 4.
  const auto seq = AccessSequence::from_offsets({1, 0, 2, -1, 1, 0, -2});
  Phase1Options exact;
  exact.mode = Phase1Options::Mode::kExact;
  const AccessGraph g(seq, kM1);
  const Phase1Result phase1 = compute_min_register_cover(g, exact);
  ASSERT_EQ(phase1.cover.size(), 3u);

  const auto merged = merge_to_register_limit(seq, kM1, phase1.cover, 2,
                                              MergeOptions{});
  EXPECT_EQ(merged.size(), 2u);
  EXPECT_EQ(total_cost(seq, merged, kM1), 2);
}

TEST(Merging, DeterministicAcrossRuns) {
  support::Rng rng(99);
  eval::PatternSpec spec;
  spec.accesses = 30;
  spec.offset_range = 10;
  const auto seq = eval::generate_pattern(spec, rng);
  const auto cover = phase1_cover(seq, kM1);
  const auto a = merge_to_register_limit(seq, kM1, cover, 3, MergeOptions{});
  const auto b = merge_to_register_limit(seq, kM1, cover, 3, MergeOptions{});
  EXPECT_EQ(a, b);
}

TEST(Merging, FirstPairStrategyMergesFrontPaths) {
  const auto seq = AccessSequence::from_offsets({0, 100, 200});
  std::vector<Path> paths{Path({0}), Path({1}), Path({2})};
  MergeOptions options;
  options.strategy = MergeStrategy::kFirstPair;
  const auto merged =
      merge_to_register_limit(seq, kM1, paths, 2, options);
  ASSERT_EQ(merged.size(), 2u);
  // First two paths merged: {0, 1} and {2}.
  EXPECT_EQ(merged[0].indices(), (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(merged[1].indices(), (std::vector<std::size_t>{2}));
}

TEST(Merging, RandomPairIsSeedDeterministic) {
  const auto seq = AccessSequence::from_offsets({0, 10, 20, 30, 40, 50});
  std::vector<Path> paths;
  for (std::size_t i = 0; i < 6; ++i) {
    paths.push_back(Path::singleton(i));
  }
  MergeOptions options;
  options.strategy = MergeStrategy::kRandomPair;
  options.seed = 7;
  const auto a = merge_to_register_limit(seq, kM1, paths, 2, options);
  const auto b = merge_to_register_limit(seq, kM1, paths, 2, options);
  EXPECT_EQ(a, b);
}

TEST(Merging, StrategyNamesAreStable) {
  EXPECT_STREQ(to_string(MergeStrategy::kMinMergedCost), "min-merged-cost");
  EXPECT_STREQ(to_string(MergeStrategy::kMinDelta), "min-delta");
  EXPECT_STREQ(to_string(MergeStrategy::kFirstPair), "first-pair");
  EXPECT_STREQ(to_string(MergeStrategy::kRandomPair), "random-pair");
}

class MergingPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(MergingPropertyTest, CostGuidedNeverLosesToArbitraryOrder) {
  support::Rng rng(GetParam() * 31 + 5);
  eval::PatternSpec spec;
  spec.accesses = 10 + rng.index(30);
  spec.offset_range = 1 + rng.uniform_int(0, 15);
  const auto seq = eval::generate_pattern(spec, rng);
  const auto cover = phase1_cover(seq, kM1);
  const std::size_t k = 1 + rng.index(4);

  MergeOptions paper;
  paper.strategy = MergeStrategy::kMinMergedCost;
  MergeOptions naive;
  naive.strategy = MergeStrategy::kFirstPair;

  const auto merged = merge_to_register_limit(seq, kM1, cover, k, paper);
  const auto arbitrary = merge_to_register_limit(seq, kM1, cover, k, naive);
  validate_allocation(seq, merged, k);
  validate_allocation(seq, arbitrary, k);

  // Greedy is not provably dominant step-by-step, but on these sizes it
  // must never be worse than merging blindly by more than a whisker; we
  // assert the strong form and would rather learn about violations.
  EXPECT_LE(total_cost(seq, merged, kM1),
            total_cost(seq, arbitrary, kM1));
}

TEST_P(MergingPropertyTest, CostIsMonotoneInRegisterPressure) {
  support::Rng rng(GetParam() * 97 + 3);
  eval::PatternSpec spec;
  spec.accesses = 12 + rng.index(20);
  spec.offset_range = 8;
  const auto seq = eval::generate_pattern(spec, rng);
  const auto cover = phase1_cover(seq, kM1);

  int previous = -1;
  for (std::size_t k = cover.size(); k >= 1; --k) {
    const auto merged =
        merge_to_register_limit(seq, kM1, cover, k, MergeOptions{});
    const int cost = total_cost(seq, merged, kM1);
    if (previous >= 0) {
      EXPECT_GE(cost, previous)
          << "cost should not drop when registers get scarcer (k=" << k
          << ")";
    }
    previous = cost;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, MergingPropertyTest,
                         ::testing::Range<std::uint64_t>(0, 25));

}  // namespace
}  // namespace dspaddr::core
