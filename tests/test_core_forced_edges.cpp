#include "core/forced_edges.hpp"

#include <gtest/gtest.h>

#include "eval/patterns.hpp"
#include "graph/matching.hpp"
#include "support/rng.hpp"

namespace dspaddr::core {
namespace {

using ir::AccessSequence;

const CostModel kM1{1, WrapPolicy::kCyclic};

TEST(ForcedEdges, ChainEdgesAreAllMandatory) {
  // 0-1-2-3 ramp: the only maximum matching chains everything.
  const auto seq = AccessSequence::from_offsets({0, 1, 2, 3});
  const AccessGraph g(seq, kM1);
  for (const ClassifiedEdge& edge : classify_edges(g)) {
    // Consecutive ramp edges are mandatory; the matching uses exactly
    // the three consecutive pairs.
    if (edge.to == edge.from + 1) {
      EXPECT_EQ(edge.role, EdgeRole::kMandatory)
          << edge.from << "->" << edge.to;
    }
  }
  EXPECT_EQ(mandatory_edge_count(g), 3u);
}

TEST(ForcedEdges, IsolatedNodesHaveNoEdges) {
  const auto seq = AccessSequence::from_offsets({0, 100, 200});
  const AccessGraph g(seq, kM1);
  EXPECT_TRUE(classify_edges(g).empty());
  EXPECT_EQ(mandatory_edge_count(g), 0u);
}

TEST(ForcedEdges, SkipEdgeOfATriangleIsUseless) {
  // Offsets 0, 0, 0 give edges (0,1), (0,2), (1,2). In the bipartite
  // split, left 0 matches right 1 or 2 and left 1 matches right 2; the
  // only size-2 matching is {0-1, 1-2} (choosing 0-2 starves left 1).
  // Hence 0-1 and 1-2 are mandatory and the skip edge 0-2 is useless.
  const auto seq = AccessSequence::from_offsets({0, 0, 0});
  const AccessGraph g(seq, kM1);
  const auto classified = classify_edges(g);
  ASSERT_EQ(classified.size(), 3u);
  for (const ClassifiedEdge& edge : classified) {
    if (edge.from == 0 && edge.to == 2) {
      EXPECT_EQ(edge.role, EdgeRole::kUseless);
    } else {
      EXPECT_EQ(edge.role, EdgeRole::kMandatory);
    }
  }
}

TEST(ForcedEdges, RoleNames) {
  EXPECT_STREQ(to_string(EdgeRole::kMandatory), "mandatory");
  EXPECT_STREQ(to_string(EdgeRole::kOptional), "optional");
  EXPECT_STREQ(to_string(EdgeRole::kUseless), "useless");
}

/// Oracle: enumerate all maximum matchings by brute force over edge
/// subsets, and check edge usage classification.
class ForcedEdgePropertyTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ForcedEdgePropertyTest, ClassificationMatchesEnumeration) {
  support::Rng rng(GetParam() * 211 + 5);
  eval::PatternSpec spec;
  spec.accesses = 3 + rng.index(5);  // up to 7 nodes
  spec.offset_range = 3;
  const AccessSequence seq = eval::generate_pattern(spec, rng);
  const AccessGraph g(seq, kM1);

  const auto edges = g.intra().edges();
  if (edges.size() > 16) return;  // keep the oracle tractable

  // Enumerate all matchings; record which edges appear in maximum ones.
  std::size_t best = 0;
  std::vector<std::size_t> used_in_maximum(edges.size(), 0);
  const std::size_t subsets = std::size_t{1} << edges.size();
  std::vector<std::size_t> max_matching_count(edges.size(), 0);
  std::size_t total_maximum = 0;
  for (std::size_t round = 0; round < 2; ++round) {
    for (std::size_t mask = 0; mask < subsets; ++mask) {
      std::vector<bool> left(seq.size(), false);
      std::vector<bool> right(seq.size(), false);
      std::size_t size = 0;
      bool valid = true;
      for (std::size_t e = 0; e < edges.size() && valid; ++e) {
        if (!(mask & (std::size_t{1} << e))) continue;
        const auto [u, v] = edges[e];
        if (left[u] || right[v]) {
          valid = false;
        } else {
          left[u] = right[v] = true;
          ++size;
        }
      }
      if (!valid) continue;
      if (round == 0) {
        best = std::max(best, size);
      } else if (size == best) {
        ++total_maximum;
        for (std::size_t e = 0; e < edges.size(); ++e) {
          if (mask & (std::size_t{1} << e)) ++max_matching_count[e];
        }
      }
    }
  }

  const auto classified = classify_edges(g);
  ASSERT_EQ(classified.size(), edges.size());
  for (std::size_t e = 0; e < edges.size(); ++e) {
    SCOPED_TRACE("edge " + std::to_string(edges[e].first) + "->" +
                 std::to_string(edges[e].second));
    if (max_matching_count[e] == total_maximum && total_maximum > 0) {
      EXPECT_EQ(classified[e].role, EdgeRole::kMandatory);
    } else if (max_matching_count[e] == 0) {
      EXPECT_EQ(classified[e].role, EdgeRole::kUseless);
    } else {
      EXPECT_EQ(classified[e].role, EdgeRole::kOptional);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, ForcedEdgePropertyTest,
                         ::testing::Range<std::uint64_t>(0, 30));

}  // namespace
}  // namespace dspaddr::core
