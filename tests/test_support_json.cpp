// The minimal JSON value backing --format=json and the serve protocol.
#include <gtest/gtest.h>

#include "support/json.hpp"

namespace dspaddr {
namespace {

using support::JsonValue;

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(JsonValue::parse("null").is_null());
  EXPECT_TRUE(JsonValue::parse("true").as_bool());
  EXPECT_FALSE(JsonValue::parse("false").as_bool());
  EXPECT_EQ(JsonValue::parse("42").as_int(), 42);
  EXPECT_EQ(JsonValue::parse("-7").as_int(), -7);
  EXPECT_DOUBLE_EQ(JsonValue::parse("2.5").as_double(), 2.5);
  EXPECT_DOUBLE_EQ(JsonValue::parse("1e3").as_double(), 1000.0);
  EXPECT_EQ(JsonValue::parse("\"hi\"").as_string(), "hi");
}

TEST(Json, IntegersStayIntegers) {
  EXPECT_TRUE(JsonValue::parse("42").is_int());
  EXPECT_FALSE(JsonValue::parse("42.0").is_int());
  EXPECT_TRUE(JsonValue::parse("42.0").is_number());
  // Integers convert through as_double for numeric consumers.
  EXPECT_DOUBLE_EQ(JsonValue::parse("42").as_double(), 42.0);
}

TEST(Json, ParsesNestedStructures) {
  const JsonValue value = JsonValue::parse(
      R"({"a": [1, 2, {"b": null}], "c": {"d": "x"}})");
  ASSERT_TRUE(value.is_object());
  const JsonValue* a = value.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->items().size(), 3u);
  EXPECT_EQ(a->items()[1].as_int(), 2);
  EXPECT_TRUE(a->items()[2].find("b")->is_null());
  EXPECT_EQ(value.find("c")->find("d")->as_string(), "x");
  EXPECT_EQ(value.find("missing"), nullptr);
}

TEST(Json, StringEscapes) {
  EXPECT_EQ(JsonValue::parse(R"("a\"b\\c\nd\t")").as_string(),
            "a\"b\\c\nd\t");
  EXPECT_EQ(JsonValue::parse(R"("A")").as_string(), "A");
  EXPECT_EQ(JsonValue::string("a\"b\nc").dump(), R"("a\"b\nc")");
  // Control characters escape as \u00xx.
  EXPECT_EQ(JsonValue::string(std::string(1, '\x01')).dump(),
            "\"\\u0001\"");
  EXPECT_EQ(JsonValue::parse("\"\\u0041\"").as_string(), "A");
}

TEST(Json, DumpIsCompactAndOrdered) {
  JsonValue object = JsonValue::object();
  object.set("b", JsonValue::number(std::int64_t{1}));
  object.set("a", JsonValue::number(std::int64_t{2}));
  JsonValue array = JsonValue::array();
  array.push_back(JsonValue::boolean(true));
  array.push_back(JsonValue::null());
  object.set("list", std::move(array));
  // Insertion order, not sorted; no whitespace.
  EXPECT_EQ(object.dump(), R"({"b":1,"a":2,"list":[true,null]})");
}

TEST(Json, SetReplacesInPlace) {
  JsonValue object = JsonValue::object();
  object.set("a", JsonValue::number(std::int64_t{1}));
  object.set("b", JsonValue::number(std::int64_t{2}));
  object.set("a", JsonValue::number(std::int64_t{3}));
  EXPECT_EQ(object.dump(), R"({"a":3,"b":2})");
}

TEST(Json, DoublesDumpShortestRoundTrip) {
  EXPECT_EQ(JsonValue::number(11.11).dump(), "11.11");
  EXPECT_EQ(JsonValue::number(0.5).dump(), "0.5");
  // A double without a fractional part keeps a marker so it parses
  // back as a double.
  EXPECT_EQ(JsonValue::number(3.0).dump(), "3.0");
  EXPECT_FALSE(JsonValue::parse(JsonValue::number(3.0).dump()).is_int());
}

TEST(Json, RoundTripsItsOwnDump) {
  const char* text =
      R"({"k":[1,2.5,"s",true,null],"o":{"x":-3},"e":""})";
  const JsonValue value = JsonValue::parse(text);
  EXPECT_EQ(JsonValue::parse(value.dump()).dump(), value.dump());
  EXPECT_EQ(value.dump(), text);
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW(JsonValue::parse(""), support::JsonParseError);
  EXPECT_THROW(JsonValue::parse("{"), support::JsonParseError);
  EXPECT_THROW(JsonValue::parse("[1,]"), support::JsonParseError);
  EXPECT_THROW(JsonValue::parse("{\"a\" 1}"), support::JsonParseError);
  EXPECT_THROW(JsonValue::parse("tru"), support::JsonParseError);
  EXPECT_THROW(JsonValue::parse("1 2"), support::JsonParseError);
  EXPECT_THROW(JsonValue::parse("\"unterminated"), support::JsonParseError);
  EXPECT_THROW(JsonValue::parse("nan"), support::JsonParseError);
  // Numbers need digits on both sides of '.' and in the exponent.
  EXPECT_THROW(JsonValue::parse(".5"), support::JsonParseError);
  EXPECT_THROW(JsonValue::parse("1."), support::JsonParseError);
  EXPECT_THROW(JsonValue::parse("1e"), support::JsonParseError);
  EXPECT_THROW(JsonValue::parse("-"), support::JsonParseError);
}

TEST(Json, BoundsNestingDepth) {
  // A hostile deeply-nested line must be a parse error, not a stack
  // overflow of the process (the serve loop parses untrusted input).
  const std::string hostile(100000, '[');
  EXPECT_THROW(JsonValue::parse(hostile), support::JsonParseError);
  const std::string mixed = std::string(5000, '[') + "{\"a\":" ;
  EXPECT_THROW(JsonValue::parse(mixed), support::JsonParseError);
  // Sane nesting still parses.
  std::string ok = "1";
  for (int i = 0; i < 100; ++i) {
    ok = "[" + ok + "]";
  }
  EXPECT_NO_THROW(JsonValue::parse(ok));
}

TEST(Json, IntegerOverflowFallsBackToDouble) {
  const JsonValue huge = JsonValue::parse("99999999999999999999");
  EXPECT_FALSE(huge.is_int());
  EXPECT_TRUE(huge.is_number());
  EXPECT_DOUBLE_EQ(huge.as_double(), 1e20);
  // Beyond double range is the one valid-looking number we reject.
  EXPECT_THROW(JsonValue::parse("1e999"), support::JsonParseError);
}

TEST(Json, TypeMismatchesThrow) {
  const JsonValue number = JsonValue::parse("1");
  EXPECT_THROW(number.as_string(), InvalidArgument);
  EXPECT_THROW(number.items(), InvalidArgument);
  EXPECT_THROW(JsonValue::parse("2.5").as_int(), InvalidArgument);
  EXPECT_THROW(JsonValue::null().as_bool(), InvalidArgument);
}

}  // namespace
}  // namespace dspaddr
