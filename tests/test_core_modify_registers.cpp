#include "core/modify_registers.hpp"

#include <gtest/gtest.h>

#include "agu/codegen.hpp"
#include "agu/simulator.hpp"
#include "eval/patterns.hpp"
#include "support/rng.hpp"

namespace dspaddr::core {
namespace {

using ir::AccessSequence;

Allocation allocate(const AccessSequence& seq, std::int64_t m,
                    std::size_t k) {
  ProblemConfig config;
  config.modify_range = m;
  config.registers = k;
  return RegisterAllocator(config).run(seq);
}

TEST(ModifyRegisters, ZeroCostAllocationNeedsNoPlan) {
  const auto seq = AccessSequence::from_offsets({0, 1, 2, 3});
  const Allocation a = allocate(seq, 1, 4);
  ASSERT_EQ(a.cost(), 0);
  const ModifyRegisterPlan plan = plan_modify_registers(seq, a, 4);
  EXPECT_TRUE(plan.values.empty());
  EXPECT_EQ(plan.covered_per_iteration, 0);
  EXPECT_EQ(plan.residual_cost, 0);
}

TEST(ModifyRegisters, SingleRepeatedDistanceIsFullyCovered) {
  // One register over offsets 0, 5, 10, 15: three intra hops of +5 and
  // a wrap of -14; one MR holding +5 covers three of four unit costs.
  const auto seq = AccessSequence::from_offsets({0, 5, 10, 15});
  const Allocation a = allocate(seq, 1, 1);
  ASSERT_EQ(a.cost(), 4);
  const ModifyRegisterPlan plan = plan_modify_registers(seq, a, 1);
  ASSERT_EQ(plan.values.size(), 1u);
  EXPECT_EQ(plan.values[0].value, 5);
  EXPECT_EQ(plan.values[0].covered, 3);
  EXPECT_EQ(plan.residual_cost, 1);
}

TEST(ModifyRegisters, SecondRegisterTakesTheWrap) {
  const auto seq = AccessSequence::from_offsets({0, 5, 10, 15});
  const Allocation a = allocate(seq, 1, 1);
  const ModifyRegisterPlan plan = plan_modify_registers(seq, a, 2);
  ASSERT_EQ(plan.values.size(), 2u);
  EXPECT_EQ(plan.values[1].value, -14);  // wrap: 0 + 1 - 15
  EXPECT_EQ(plan.residual_cost, 0);
}

TEST(ModifyRegisters, MorePlannedThanDistinctDistancesIsFine) {
  const auto seq = AccessSequence::from_offsets({0, 5});
  const Allocation a = allocate(seq, 1, 1);
  const ModifyRegisterPlan plan = plan_modify_registers(seq, a, 16);
  EXPECT_LE(plan.values.size(), 16u);
  EXPECT_EQ(plan.residual_cost, 0);
}

TEST(ModifyRegisters, TieBreaksTowardsSmallMagnitude) {
  // Distances +7 (once) and -2 (once): equal frequency, -2 wins first.
  const auto seq = AccessSequence::from_offsets({0, 7, 5});
  const Allocation a = allocate(seq, 1, 1);
  const ModifyRegisterPlan plan = plan_modify_registers(seq, a, 1);
  ASSERT_EQ(plan.values.size(), 1u);
  EXPECT_EQ(plan.values[0].value, -2);
}

TEST(ModifyRegisters, GeneratedCodeUsesMrAndVerifies) {
  const auto seq = AccessSequence::from_offsets({0, 5, 10, 15});
  const Allocation a = allocate(seq, 1, 1);
  const ModifyRegisterPlan plan = plan_modify_registers(seq, a, 2);
  const agu::Program p = agu::generate_code(seq, a, plan);

  EXPECT_EQ(p.modify_register_count, plan.values.size());
  // Setup: 1 LDAR + 2 LDMR.
  EXPECT_EQ(p.setup.size(), 3u);

  const agu::SimResult r = agu::Simulator{}.run(p, seq, 25);
  EXPECT_TRUE(r.verified) << r.failure;
  EXPECT_EQ(r.extra_instructions,
            25u * static_cast<std::uint64_t>(plan.residual_cost));
}

TEST(ModifyRegisters, PlanTextShowsInProgramListing) {
  const auto seq = AccessSequence::from_offsets({0, 5, 10, 15});
  const Allocation a = allocate(seq, 1, 1);
  const ModifyRegisterPlan plan = plan_modify_registers(seq, a, 1);
  const agu::Program p = agu::generate_code(seq, a, plan);
  const std::string text = p.to_string();
  EXPECT_NE(text.find("LDMR MR0, #5"), std::string::npos);
  EXPECT_NE(text.find("post-modify +MR0"), std::string::npos);
}

TEST(ModifyRegisters, SavingsComeFromActualTransitionCosts) {
  // Regression for the flat saving-of-1-per-histogram-entry accounting:
  // the credited savings must equal the summed actual costs of the
  // covered transitions, so covered + residual reproduces the
  // allocation cost exactly — also in the presence of transitions with
  // no constant distance, which cost 1 but can never be MR-covered.
  const AccessSequence seq({ir::Access{0, 1}, ir::Access{10, 2},
                            ir::Access{20, 1}});
  const Allocation a = allocate(seq, 1, 1);
  // Mixed strides: both intra transitions reload (no constant
  // distance), the wrap 20 -> 0+1 has constant distance -19.
  ASSERT_EQ(a.cost(), 3);
  const ModifyRegisterPlan plan = plan_modify_registers(seq, a, 4);
  ASSERT_EQ(plan.values.size(), 1u);
  EXPECT_EQ(plan.values[0].value, -19);
  EXPECT_EQ(plan.values[0].covered, 1);
  EXPECT_EQ(plan.covered_per_iteration, 1);
  EXPECT_EQ(plan.residual_cost, 2);
}

TEST(ModifyRegisters, CoveredPlusResidualEqualsAllocationCost) {
  support::Rng rng(2026);
  for (std::size_t trial = 0; trial < 50; ++trial) {
    eval::PatternSpec spec;
    spec.accesses = 4 + rng.index(20);
    spec.offset_range = 1 + rng.uniform_int(0, 20);
    spec.family = static_cast<eval::PatternFamily>(trial % 4);
    const auto seq = eval::generate_pattern(spec, rng);
    const Allocation a =
        allocate(seq, 1 + rng.uniform_int(0, 2), 1 + rng.index(4));
    const ModifyRegisterPlan plan =
        plan_modify_registers(seq, a, rng.index(5));
    int covered = 0;
    for (const ModifyRegister& mr : plan.values) {
      covered += mr.covered;
    }
    EXPECT_EQ(covered, plan.covered_per_iteration);
    EXPECT_EQ(plan.covered_per_iteration + plan.residual_cost, a.cost());
    EXPECT_GE(plan.residual_cost, 0);
  }
}

class ModifyRegisterPropertyTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ModifyRegisterPropertyTest, ResidualMatchesSimulatedCost) {
  support::Rng rng(GetParam() * 97 + 41);
  eval::PatternSpec spec;
  spec.accesses = 4 + rng.index(24);
  spec.offset_range = 1 + rng.uniform_int(0, 15);
  const auto seq = eval::generate_pattern(spec, rng);
  const Allocation a =
      allocate(seq, 1 + rng.uniform_int(0, 2), 1 + rng.index(4));
  const std::size_t mr_count = rng.index(5);

  const ModifyRegisterPlan plan = plan_modify_registers(seq, a, mr_count);
  EXPECT_LE(plan.residual_cost, a.cost());
  EXPECT_GE(plan.residual_cost, 0);

  const agu::Program p = agu::generate_code(seq, a, plan);
  const std::uint64_t iterations = 1 + rng.index(16);
  const agu::SimResult r = agu::Simulator{}.run(p, seq, iterations);
  EXPECT_TRUE(r.verified) << r.failure;
  EXPECT_EQ(r.extra_instructions,
            iterations * static_cast<std::uint64_t>(plan.residual_cost));
}

TEST_P(ModifyRegisterPropertyTest, CoverageIsMonotoneInMrCount) {
  support::Rng rng(GetParam() * 53 + 13);
  eval::PatternSpec spec;
  spec.accesses = 8 + rng.index(16);
  spec.offset_range = 12;
  const auto seq = eval::generate_pattern(spec, rng);
  const Allocation a = allocate(seq, 1, 2);

  int previous_residual = a.cost();
  for (std::size_t mrs = 0; mrs <= 4; ++mrs) {
    const ModifyRegisterPlan plan = plan_modify_registers(seq, a, mrs);
    EXPECT_LE(plan.residual_cost, previous_residual);
    previous_residual = plan.residual_cost;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, ModifyRegisterPropertyTest,
                         ::testing::Range<std::uint64_t>(0, 30));

}  // namespace
}  // namespace dspaddr::core
