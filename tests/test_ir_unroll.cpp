#include "ir/unroll.hpp"

#include <gtest/gtest.h>

#include "agu/codegen.hpp"
#include "agu/simulator.hpp"
#include "core/allocator.hpp"
#include "core/exact.hpp"
#include "eval/patterns.hpp"
#include "ir/kernels.hpp"
#include "ir/layout.hpp"
#include "support/rng.hpp"

namespace dspaddr::ir {
namespace {

TEST(Unroll, FactorOneIsIdentityOnOffsets) {
  const auto seq = AccessSequence::from_offsets({3, -1, 4});
  const AccessSequence unrolled = unroll(seq, 1);
  ASSERT_EQ(unrolled.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(unrolled[i].offset, seq[i].offset);
    EXPECT_EQ(unrolled[i].stride, seq[i].stride);
  }
}

TEST(Unroll, ShiftsCopiesByStride) {
  const auto seq = AccessSequence::from_offsets({0, 2});  // stride 1
  const AccessSequence unrolled = unroll(seq, 3);
  ASSERT_EQ(unrolled.size(), 6u);
  // Copies t = 0, 1, 2 shift offsets by t and scale the stride by 3.
  const std::vector<std::int64_t> expected_offsets{0, 2, 1, 3, 2, 4};
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(unrolled[i].offset, expected_offsets[i]) << i;
    EXPECT_EQ(unrolled[i].stride, 3) << i;
  }
}

TEST(Unroll, NegativeStrides) {
  const AccessSequence seq({Access{10, -2}});
  const AccessSequence unrolled = unroll(seq, 2);
  ASSERT_EQ(unrolled.size(), 2u);
  EXPECT_EQ(unrolled[0].offset, 10);
  EXPECT_EQ(unrolled[1].offset, 8);
  EXPECT_EQ(unrolled[0].stride, -4);
}

TEST(Unroll, RejectsZeroFactor) {
  const auto seq = AccessSequence::from_offsets({0});
  EXPECT_THROW(unroll(seq, 0), dspaddr::InvalidArgument);
}

TEST(UnrollKernel, DividesIterationsAndScalesDataOps) {
  const Kernel kernel = fir_kernel(16, 64);  // 16 iterations
  const Kernel unrolled = unroll(kernel, 4);
  EXPECT_EQ(unrolled.iterations(), 4);
  EXPECT_EQ(unrolled.data_ops(), kernel.data_ops() * 4);
  EXPECT_EQ(unrolled.accesses().size(), kernel.accesses().size() * 4);
  EXPECT_EQ(unrolled.name(), "fir_x4");
}

TEST(UnrollKernel, RejectsNonDivisibleFactor) {
  const Kernel kernel = fir_kernel(16, 64);
  EXPECT_THROW(unroll(kernel, 5), dspaddr::InvalidArgument);
}

TEST(UnrollKernel, LoweringCommutesWithUnrolling) {
  // lower(unroll(kernel)) == unroll(lower(kernel)): base folding and
  // body replication are independent.
  const Kernel kernel = biquad_kernel(64);
  const AccessSequence a = lower(unroll(kernel, 2));
  const AccessSequence b = unroll(lower(kernel), 2);
  EXPECT_EQ(a, b);
}

class UnrollPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(UnrollPropertyTest, UnrolledTraceEqualsOriginalTrace) {
  // The unrolled loop must touch exactly the same addresses in the same
  // order: u unrolled iterations cover u * N original accesses.
  support::Rng rng(GetParam() * 61 + 7);
  eval::PatternSpec spec;
  spec.accesses = 2 + rng.index(10);
  spec.offset_range = 8;
  const AccessSequence seq = eval::generate_pattern(spec, rng);
  const std::size_t factor = 1 + rng.index(4);
  const AccessSequence unrolled = unroll(seq, factor);

  const auto trace_of = [&](const AccessSequence& s,
                            std::uint64_t iterations) {
    core::ProblemConfig config;
    config.modify_range = 1;
    config.registers = 4;
    const core::Allocation a = core::RegisterAllocator(config).run(s);
    const agu::Program p = agu::generate_code(s, a);
    agu::Simulator::Options options;
    options.record_trace = true;
    const agu::SimResult r = agu::Simulator(options).run(p, s, iterations);
    EXPECT_TRUE(r.verified) << r.failure;
    return r.trace;
  };

  constexpr std::uint64_t kUnrolledIterations = 6;
  const auto original =
      trace_of(seq, kUnrolledIterations * factor);
  const auto transformed = trace_of(unrolled, kUnrolledIterations);
  EXPECT_EQ(original, transformed);
}

TEST_P(UnrollPropertyTest, OptimalUnrolledCostScalesAtMostLinearly) {
  // Provable: replicating an optimal allocation of the original body u
  // times yields an unrolled allocation of cost u * OPT (the
  // copy-boundary distance equals the original wrap distance, and the
  // unrolled wrap (o_first + u*s) - o_last(u-th copy) telescopes back
  // to the original wrap distance too). Hence OPT(unrolled) <= u * OPT.
  support::Rng rng(GetParam() * 151 + 19);
  eval::PatternSpec spec;
  spec.accesses = 3 + rng.index(5);  // up to 7, exact stays tractable
  spec.offset_range = 6;
  const AccessSequence seq = eval::generate_pattern(spec, rng);
  const core::CostModel model{1, core::WrapPolicy::kCyclic};

  const core::ExactResult base =
      core::exact_min_cost_allocation(seq, model, 2);
  ASSERT_TRUE(base.proven);

  constexpr std::size_t kFactor = 2;
  const AccessSequence unrolled = unroll(seq, kFactor);
  const core::ExactResult after =
      core::exact_min_cost_allocation(unrolled, model, 2);
  ASSERT_TRUE(after.proven);
  EXPECT_LE(after.cost, static_cast<int>(kFactor) * base.cost);
}

TEST_P(UnrollPropertyTest, HeuristicUnrolledCostStaysNearLinear) {
  // The heuristic carries no such guarantee, but must stay within a
  // small additive band of linear scaling (it may also do much better,
  // since wrap transitions amortize across copies).
  support::Rng rng(GetParam() * 151 + 19);
  eval::PatternSpec spec;
  spec.accesses = 3 + rng.index(8);
  spec.offset_range = 6;
  const AccessSequence seq = eval::generate_pattern(spec, rng);

  core::ProblemConfig config;
  config.modify_range = 1;
  config.registers = 2;
  // Pin phase 2 to the paper's heuristic: the default auto mode proves
  // small bodies optimal, which tightens base_cost below what the
  // heuristic achieves on the (larger) unrolled sequence and voids the
  // near-linear-band comparison.
  config.phase2.mode = core::Phase2Options::Mode::kHeuristic;
  const int base_cost = core::RegisterAllocator(config).run(seq).cost();

  for (const std::size_t factor : {2u, 4u}) {
    const AccessSequence unrolled = unroll(seq, factor);
    const int unrolled_cost =
        core::RegisterAllocator(config).run(unrolled).cost();
    EXPECT_LE(unrolled_cost,
              static_cast<int>(factor) * (base_cost + 2))
        << "factor " << factor;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, UnrollPropertyTest,
                         ::testing::Range<std::uint64_t>(0, 25));

}  // namespace
}  // namespace dspaddr::ir
