// store::ResultStore — the persistent result log: framing, crash
// recovery, shadowing, and the engine's two-tier (RAM over disk)
// cache behaviour built on top of it.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "agu/machines.hpp"
#include "engine/engine.hpp"
#include "engine/fingerprint.hpp"
#include "engine/result_codec.hpp"
#include "engine/serialize.hpp"
#include "engine/strategy.hpp"
#include "ir/kernels.hpp"
#include "ir/layout.hpp"
#include "store/result_store.hpp"
#include "support/check.hpp"

namespace dspaddr {
namespace {

std::string temp_path(const std::string& name) {
  const std::string path = testing::TempDir() + "dspaddr_store_" + name;
  std::remove(path.c_str());
  return path;
}

store::ResultStore::Options store_options(const std::string& path) {
  store::ResultStore::Options options;
  options.path = path;
  return options;
}

std::string read_bytes(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  EXPECT_TRUE(file.good()) << "cannot open " << path;
  return std::string(std::istreambuf_iterator<char>(file),
                     std::istreambuf_iterator<char>());
}

void write_bytes(const std::string& path, const std::string& bytes) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(file.good()) << "cannot open " << path;
  file.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(file.good());
}

void append_bytes(const std::string& path, const std::string& bytes) {
  std::ofstream file(path, std::ios::binary | std::ios::app);
  ASSERT_TRUE(file.good()) << "cannot open " << path;
  file.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(file.good());
}

std::string le32(std::uint32_t v) {
  std::string out(4, '\0');
  out[0] = static_cast<char>(v & 0xFF);
  out[1] = static_cast<char>((v >> 8) & 0xFF);
  out[2] = static_cast<char>((v >> 16) & 0xFF);
  out[3] = static_cast<char>((v >> 24) & 0xFF);
  return out;
}

/// A byte-exact record frame, as the store itself would write it.
std::string frame_record(const std::string& key, const std::string& value) {
  return le32(static_cast<std::uint32_t>(key.size())) +
         le32(static_cast<std::uint32_t>(value.size())) +
         le32(store::crc32(key + value)) + key + value;
}

// ------------------------------------------------------------------ crc

TEST(Store, Crc32MatchesReferenceVectors) {
  // The IEEE 802.3 check value: crc32("123456789") == 0xCBF43926.
  EXPECT_EQ(store::crc32(""), 0u);
  EXPECT_EQ(store::crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(store::crc32("a"), 0xE8B7BE43u);
  EXPECT_NE(store::crc32("abc"), store::crc32("abd"));
}

// ------------------------------------------------------------ basic API

TEST(Store, PutGetRoundTripsAndCounts) {
  const std::string path = temp_path("roundtrip.log");
  store::ResultStore db(store_options(path));
  EXPECT_FALSE(db.get("k").has_value());
  db.append("k", "value-1");
  db.append("other", std::string(100000, 'x'));
  EXPECT_EQ(db.get("k"), std::optional<std::string>("value-1"));
  EXPECT_EQ(db.get("other"), std::optional<std::string>(std::string(100000, 'x')));

  const store::StoreStats stats = db.stats();
  EXPECT_EQ(stats.records, 2u);
  EXPECT_EQ(stats.appended_records, 2u);
  EXPECT_EQ(stats.recovered_records, 0u);
  EXPECT_EQ(stats.truncated_bytes, 0u);
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_GT(stats.bytes, 100000u);
}

TEST(Store, ReopenRecoversEveryRecord) {
  const std::string path = temp_path("reopen.log");
  {
    store::ResultStore db(store_options(path));
    db.append("alpha", "one");
    db.append("beta", "two");
    db.append("gamma", std::string(4096, 'g'));
  }
  store::ResultStore db(store_options(path));
  EXPECT_EQ(db.get("alpha"), std::optional<std::string>("one"));
  EXPECT_EQ(db.get("beta"), std::optional<std::string>("two"));
  EXPECT_EQ(db.get("gamma"), std::optional<std::string>(std::string(4096, 'g')));
  const store::StoreStats stats = db.stats();
  EXPECT_EQ(stats.records, 3u);
  EXPECT_EQ(stats.recovered_records, 3u);
  EXPECT_EQ(stats.truncated_bytes, 0u);
}

TEST(Store, LaterRecordShadowsEarlier) {
  const std::string path = temp_path("shadow.log");
  {
    store::ResultStore db(store_options(path));
    db.append("k", "old");
    db.append("k", "new");
    EXPECT_EQ(db.get("k"), std::optional<std::string>("new"));
    EXPECT_EQ(db.stats().records, 1u);
  }
  // The shadowing survives a reopen: the scan applies records in file
  // order, so the later one wins again.
  store::ResultStore db(store_options(path));
  EXPECT_EQ(db.get("k"), std::optional<std::string>("new"));
  const store::StoreStats stats = db.stats();
  EXPECT_EQ(stats.records, 1u);
  EXPECT_EQ(stats.recovered_records, 2u);
}

TEST(Store, FsyncOptionStillRoundTrips) {
  const std::string path = temp_path("fsync.log");
  store::ResultStore::Options options = store_options(path);
  options.fsync_each_append = true;
  store::ResultStore db(options);
  db.append("k", "durable");
  EXPECT_EQ(db.get("k"), std::optional<std::string>("durable"));
}

// --------------------------------------------------------- crash safety

TEST(Store, TornFinalRecordIsDroppedAndTruncated) {
  const std::string path = temp_path("torn.log");
  {
    store::ResultStore db(store_options(path));
    db.append("kept-1", "value-1");
    db.append("kept-2", "value-2");
  }
  // Simulate a crash mid-append: a full frame header claiming a large
  // value, but only half the body present.
  const std::string torn = frame_record("lost", std::string(512, 'z'));
  append_bytes(path, torn.substr(0, torn.size() / 2));
  const std::uint64_t dirty_size = read_bytes(path).size();

  store::ResultStore db(store_options(path));
  EXPECT_EQ(db.get("kept-1"), std::optional<std::string>("value-1"));
  EXPECT_EQ(db.get("kept-2"), std::optional<std::string>("value-2"));
  EXPECT_FALSE(db.get("lost").has_value());
  const store::StoreStats stats = db.stats();
  EXPECT_EQ(stats.recovered_records, 2u);
  EXPECT_EQ(stats.truncated_bytes, torn.size() / 2);
  // The tail really was cut off the file, so the next append starts on
  // a clean frame boundary.
  EXPECT_EQ(read_bytes(path).size(), dirty_size - torn.size() / 2);
  db.append("after", "crash");
  EXPECT_EQ(db.get("after"), std::optional<std::string>("crash"));
}

TEST(Store, CorruptTailCrcIsDropped) {
  const std::string path = temp_path("corrupt.log");
  {
    store::ResultStore db(store_options(path));
    db.append("kept", "value");
    db.append("flipped", "payload-bytes");
  }
  // Flip one byte inside the final record's value.
  std::string bytes = read_bytes(path);
  bytes[bytes.size() - 1] = static_cast<char>(bytes[bytes.size() - 1] ^ 0x40);
  write_bytes(path, bytes);

  store::ResultStore db(store_options(path));
  EXPECT_EQ(db.get("kept"), std::optional<std::string>("value"));
  EXPECT_FALSE(db.get("flipped").has_value());
  const store::StoreStats stats = db.stats();
  EXPECT_EQ(stats.recovered_records, 1u);
  EXPECT_GT(stats.truncated_bytes, 0u);
}

TEST(Store, TruncatedHeaderMeansFreshLog) {
  const std::string path = temp_path("short_header.log");
  write_bytes(path, "DSPADDR");  // shorter than the 16-byte header
  store::ResultStore db(store_options(path));
  EXPECT_EQ(db.stats().records, 0u);
  EXPECT_EQ(db.stats().truncated_bytes, 7u);
  db.append("k", "v");
  EXPECT_EQ(db.get("k"), std::optional<std::string>("v"));
}

TEST(Store, ForeignMagicIsRefused) {
  const std::string path = temp_path("magic.log");
  write_bytes(path, std::string("NOTADSPL") + le32(1) + le32(0));
  EXPECT_THROW(store::ResultStore db(store_options(path)), Error);
}

TEST(Store, ForeignVersionIsRefused) {
  const std::string path = temp_path("version.log");
  write_bytes(path, std::string("DSPADDRL") + le32(999) + le32(0));
  EXPECT_THROW(store::ResultStore db(store_options(path)), Error);
}

// ----------------------------------------------------------- threading

TEST(Store, ConcurrentGetAndAppendAreSafe) {
  // Writers append disjoint key ranges while readers poll them; run
  // under TSan in CI. Values are self-describing so any cross-wiring
  // of index entries would surface as a mismatch.
  const std::string path = temp_path("concurrent.log");
  {
    store::ResultStore db(store_options(path));
    for (int i = 0; i < 32; ++i) {
      db.append("warm-" + std::to_string(i), "warm-value-" + std::to_string(i));
    }
  }
  store::ResultStore db(store_options(path));
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 64;
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&db, w] {
      for (int i = 0; i < kPerWriter; ++i) {
        const std::string key =
            "w" + std::to_string(w) + "-" + std::to_string(i);
        db.append(key, "value:" + key);
        const std::optional<std::string> back = db.get(key);
        ASSERT_TRUE(back.has_value());
        EXPECT_EQ(*back, "value:" + key);
      }
    });
  }
  // Readers hammer the warm-started (mmap-backed) records concurrently.
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&db] {
      for (int round = 0; round < 200; ++round) {
        const std::string key = "warm-" + std::to_string(round % 32);
        const std::optional<std::string> value = db.get(key);
        ASSERT_TRUE(value.has_value());
        EXPECT_EQ(*value, "warm-value-" + std::to_string(round % 32));
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(db.stats().records, 32u + kWriters * kPerWriter);
}

// --------------------------------------------------------- compaction

TEST(StoreCompaction, OpenRewritesLogWhenDeadBytesExceedThreshold) {
  const std::string path = temp_path("compact.log");
  {
    store::ResultStore db(store_options(path));
    for (int round = 0; round < 8; ++round) {
      for (int key = 0; key < 4; ++key) {
        db.append("key-" + std::to_string(key),
                  "value-" + std::to_string(key) + "-round-" +
                      std::to_string(round));
      }
    }
    // 7 of 8 rounds are shadowed dead weight.
    EXPECT_GT(db.stats().shadowed_bytes, 0u);
    EXPECT_EQ(db.stats().compactions, 0u);
  }
  const std::uint64_t fat_size = read_bytes(path).size();

  store::ResultStore::Options options = store_options(path);
  options.compact_min_bytes = 1;  // any dead byte triggers the rewrite
  store::ResultStore db(options);
  const store::StoreStats stats = db.stats();
  EXPECT_EQ(stats.compactions, 1u);
  EXPECT_GT(stats.compacted_bytes, 0u);
  EXPECT_EQ(stats.shadowed_bytes, 0u);
  EXPECT_EQ(stats.records, 4u);
  EXPECT_LT(stats.bytes, fat_size);
  EXPECT_EQ(read_bytes(path).size(), stats.bytes);
  // Every key still resolves to its most recent value.
  for (int key = 0; key < 4; ++key) {
    const std::optional<std::string> value =
        db.get("key-" + std::to_string(key));
    ASSERT_TRUE(value.has_value());
    EXPECT_EQ(*value, "value-" + std::to_string(key) + "-round-7");
  }
  // Appends after the rewrite land on a clean frame boundary.
  db.append("key-0", "post-compact");
  EXPECT_EQ(db.get("key-0").value(), "post-compact");
}

TEST(StoreCompaction, CleanLogBelowThresholdIsLeftAlone) {
  const std::string path = temp_path("compact_clean.log");
  {
    store::ResultStore db(store_options(path));
    for (int key = 0; key < 4; ++key) {
      db.append("key-" + std::to_string(key), "value");
    }
  }
  const std::string before = read_bytes(path);

  // No shadowed records: even a 1-byte threshold must not rewrite.
  store::ResultStore::Options options = store_options(path);
  options.compact_min_bytes = 1;
  store::ResultStore db(options);
  EXPECT_EQ(db.stats().compactions, 0u);
  EXPECT_EQ(db.stats().records, 4u);
  EXPECT_EQ(read_bytes(path), before);
}

TEST(StoreCompaction, DefaultThresholdIgnoresSmallShadowing) {
  const std::string path = temp_path("compact_small.log");
  {
    store::ResultStore db(store_options(path));
    db.append("key", "first");
    db.append("key", "second");
  }
  // A few dead bytes are nowhere near the 1 MiB default threshold.
  store::ResultStore db(store_options(path));
  EXPECT_EQ(db.stats().compactions, 0u);
  EXPECT_GT(db.stats().shadowed_bytes, 0u);
  EXPECT_EQ(db.get("key").value(), "second");
}

TEST(StoreCompaction, CompactedLogRoundTripsByteIdenticalReads) {
  const std::string path = temp_path("compact_identity.log");
  std::vector<std::string> expected;
  {
    store::ResultStore db(store_options(path));
    for (int key = 0; key < 16; ++key) {
      db.append("stale-" + std::to_string(key), std::string(64, 'x'));
    }
    for (int key = 0; key < 16; ++key) {
      const std::string value =
          "payload-" + std::to_string(key) + "-" +
          std::string(static_cast<std::size_t>(key) * 7, 'y');
      db.append("stale-" + std::to_string(key), value);
      expected.push_back(value);
    }
  }
  store::ResultStore::Options options = store_options(path);
  options.compact_min_bytes = 1;
  store::ResultStore compacted(options);
  ASSERT_EQ(compacted.stats().compactions, 1u);
  for (int key = 0; key < 16; ++key) {
    EXPECT_EQ(compacted.get("stale-" + std::to_string(key)).value(),
              expected[static_cast<std::size_t>(key)]);
  }
  // And the rewritten file is itself a clean, recoverable log.
  store::ResultStore reopened(store_options(path));
  EXPECT_EQ(reopened.stats().records, 16u);
  EXPECT_EQ(reopened.stats().truncated_bytes, 0u);
  EXPECT_EQ(reopened.stats().shadowed_bytes, 0u);
}

// ------------------------------------------------------ engine two-tier

engine::Request fir_request() {
  engine::Request request;
  request.kernel = ir::builtin_kernel("fir");
  request.machine = agu::builtin_machine("wide4");
  return request;
}

/// The exact key the engine stores `request` under: fingerprint v3 of
/// the lowered sequence (replicates the engine's lower step).
std::string engine_key(const engine::Request& request) {
  const engine::LayoutStrategy* layout_strategy =
      engine::StrategyRegistry::builtin().layout(request.layout);
  check_arg(layout_strategy != nullptr, "unknown layout");
  const ir::ArrayLayout layout =
      layout_strategy->place(request.kernel, request.machine);
  return engine::request_fingerprint(request,
                                     ir::lower(request.kernel, layout));
}

TEST(StoreEngine, SecondBootAnswersFromStoreByteIdentically) {
  const std::string path = temp_path("two_tier.log");
  std::string cold_json;
  {
    engine::Engine::Options options;
    options.store =
        std::make_shared<store::ResultStore>(store_options(path));
    engine::Engine engine(std::move(options));
    const engine::Result cold = engine.run(fir_request());
    ASSERT_TRUE(cold.ok());
    EXPECT_FALSE(cold.cache_hit);
    EXPECT_FALSE(cold.store_hit);
    cold_json = engine::result_to_json_line(cold);
  }
  // "Restart": a fresh engine (empty RAM tier) over the same log.
  engine::Engine::Options options;
  options.store = std::make_shared<store::ResultStore>(store_options(path));
  engine::Engine engine(std::move(options));
  const engine::Result warm = engine.run(fir_request());
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm.store_hit);
  EXPECT_FALSE(warm.cache_hit);
  EXPECT_EQ(engine::result_to_json_line(warm), cold_json);
  // Nothing was searched on the second boot.
  const engine::Phase2Totals totals = engine.phase2_totals();
  EXPECT_EQ(totals.nodes, 0u);
  EXPECT_EQ(totals.proven, 0u);
  // The store hit was promoted into the RAM tier: the next call is a
  // plain RAM hit, still byte-identical.
  const engine::Result ram = engine.run(fir_request());
  EXPECT_TRUE(ram.cache_hit);
  EXPECT_FALSE(ram.store_hit);
  EXPECT_EQ(engine::result_to_json_line(ram), cold_json);
}

TEST(StoreEngine, CapacityZeroStillUsesTheStore) {
  // `run --store` uses a capacity-0 engine: every repeat within and
  // across invocations must come from the disk tier.
  const std::string path = temp_path("cap0.log");
  const auto db = std::make_shared<store::ResultStore>(store_options(path));
  engine::Engine::Options options;
  options.cache_capacity = 0;
  options.store = db;
  engine::Engine engine(std::move(options));
  const engine::Result cold = engine.run(fir_request());
  ASSERT_TRUE(cold.ok());
  EXPECT_FALSE(cold.store_hit);
  const engine::Result warm = engine.run(fir_request());
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm.store_hit);
  EXPECT_FALSE(warm.cache_hit);
  EXPECT_EQ(engine::result_to_json_line(warm),
            engine::result_to_json_line(cold));
}

TEST(StoreEngine, ErroredResultsAreNotPersisted) {
  const std::string path = temp_path("errors.log");
  const auto db = std::make_shared<store::ResultStore>(store_options(path));
  engine::Engine::Options options;
  options.store = db;
  engine::Engine engine(std::move(options));
  engine::Request broken = fir_request();
  broken.machine.set_address_registers(0);
  const engine::Result result = engine.run(broken);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(db->stats().appended_records, 0u);
}

TEST(StoreEngine, UndecodableRecordIsRecomputedAndHealed) {
  const std::string path = temp_path("heal.log");
  const engine::Request request = fir_request();
  const std::string key = engine_key(request);
  std::string reference;
  {
    engine::Engine engine;
    reference = engine::result_to_json_line(engine.run(request));
  }
  {
    // Poison the log: a structurally valid record whose value is not a
    // codec payload.
    store::ResultStore db(store_options(path));
    db.append(key, "{\"not\":\"a result\"}");
  }
  engine::Engine::Options options;
  options.store = std::make_shared<store::ResultStore>(store_options(path));
  engine::Engine engine(std::move(options));
  const engine::Result result = engine.run(request);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result.store_hit);  // decode failed -> recomputed
  EXPECT_EQ(engine::result_to_json_line(result), reference);
  EXPECT_EQ(engine.metrics()->snapshot().counters.empty(), false);
  // The decode failure was counted and the recomputed result shadows
  // the poisoned record, so the *next* boot store-hits cleanly.
  std::uint64_t decode_errors = 0;
  for (const auto& [name, value] : engine.metrics()->snapshot().counters) {
    if (name == "engine.store.decode_errors") decode_errors = value;
  }
  EXPECT_EQ(decode_errors, 1u);

  engine::Engine::Options reopen_options;
  reopen_options.store =
      std::make_shared<store::ResultStore>(store_options(path));
  engine::Engine second(std::move(reopen_options));
  const engine::Result healed = second.run(request);
  EXPECT_TRUE(healed.store_hit);
  EXPECT_EQ(engine::result_to_json_line(healed), reference);
}

TEST(StoreEngine, WarmStartWhileWritingIsSafe) {
  // One engine serves store hits (mmap reads) while another appends
  // fresh results to the same shared store object; run under TSan in
  // CI. (Two *engines*, one store — the store itself is the shared
  // resource; one process per file still holds.)
  const std::string path = temp_path("warm_write.log");
  const char* kernels[] = {"fir", "biquad", "matmul", "dotprod"};
  {
    engine::Engine::Options options;
    options.store =
        std::make_shared<store::ResultStore>(store_options(path));
    engine::Engine engine(std::move(options));
    engine::Request request = fir_request();
    request.kernel = ir::builtin_kernel("fir");
    engine.run(request);
  }
  const auto db = std::make_shared<store::ResultStore>(store_options(path));
  engine::Engine::Options options;
  options.store = db;
  engine::Engine engine(std::move(options));
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&engine, &kernels, t] {
      for (int round = 0; round < 8; ++round) {
        engine::Request request;
        request.kernel = ir::builtin_kernel(kernels[(t + round) % 4]);
        request.machine = agu::builtin_machine("wide4");
        const engine::Result result = engine.run(request);
        EXPECT_TRUE(result.ok());
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(db->stats().records, 4u);
}

// ----------------------------------------------------------- the codec

TEST(StoreCodec, EncodeDecodeRoundTripsAllStages) {
  engine::Engine engine;
  const engine::Result result = engine.run(fir_request());
  ASSERT_TRUE(result.ok());
  engine::Result decoded = engine::decode_result(engine::encode_result(result));
  // The codec drops the request echo (kernel/machine) — re-apply it as
  // the engine does, then the JSON rendering must match exactly.
  decoded.kernel = result.kernel;
  decoded.machine = result.machine;
  EXPECT_EQ(engine::result_to_json_line(decoded),
            engine::result_to_json_line(result));
  // Wall-clock is never serialized.
  for (double ms : decoded.stage_ms) {
    EXPECT_EQ(ms, 0.0);
  }
}

TEST(StoreCodec, PrefixAndErroredResultsRoundTrip) {
  engine::Engine engine;
  engine::Request prefix = fir_request();
  prefix.stop_after = engine::Stage::kAllocate;
  const engine::Result result = engine.run(prefix);
  ASSERT_TRUE(result.ok());
  engine::Result decoded = engine::decode_result(engine::encode_result(result));
  decoded.kernel = result.kernel;
  decoded.machine = result.machine;
  EXPECT_EQ(engine::result_to_json_line(decoded),
            engine::result_to_json_line(result));

  engine::Request broken = fir_request();
  broken.machine.set_address_registers(0);
  const engine::Result errored = engine.run(broken);
  ASSERT_FALSE(errored.ok());
  engine::Result decoded_error =
      engine::decode_result(engine::encode_result(errored));
  decoded_error.kernel = errored.kernel;
  decoded_error.machine = errored.machine;
  EXPECT_EQ(engine::result_to_json_line(decoded_error),
            engine::result_to_json_line(errored));
}

TEST(StoreCodec, GarbageIsRejected) {
  EXPECT_THROW(engine::decode_result("not json"), Error);
  EXPECT_THROW(engine::decode_result("{}"), Error);
  EXPECT_THROW(engine::decode_result("{\"v\":999}"), Error);
}

}  // namespace
}  // namespace dspaddr
