#include "baselines/baselines.hpp"

#include <gtest/gtest.h>

#include "core/validate.hpp"
#include "eval/patterns.hpp"
#include "support/rng.hpp"

namespace dspaddr::baselines {
namespace {

using core::ProblemConfig;
using ir::AccessSequence;

const auto kPaperSeq =
    AccessSequence::from_offsets({1, 0, 2, -1, 1, 0, -2});

ProblemConfig config_with_k(std::size_t k) {
  ProblemConfig config;
  config.modify_range = 1;
  config.registers = k;
  return config;
}

TEST(Baselines, NaiveProducesValidAllocation) {
  const auto a = naive_allocate(kPaperSeq, config_with_k(2));
  core::validate_allocation(kPaperSeq, a.paths(), 2);
}

TEST(Baselines, NaiveIsDeterministic) {
  const auto a = naive_allocate(kPaperSeq, config_with_k(2));
  const auto b = naive_allocate(kPaperSeq, config_with_k(2));
  EXPECT_EQ(a.cost(), b.cost());
  EXPECT_EQ(a.paths(), b.paths());
}

TEST(Baselines, RandomMergeDependsOnlyOnSeed) {
  const auto a = random_merge_allocate(kPaperSeq, config_with_k(2), 5);
  const auto b = random_merge_allocate(kPaperSeq, config_with_k(2), 5);
  EXPECT_EQ(a.paths(), b.paths());
}

TEST(Baselines, RoundRobinAssignmentPattern) {
  const auto seq = AccessSequence::from_offsets({0, 1, 2, 3, 4, 5});
  const auto a = round_robin_allocate(seq, config_with_k(3));
  core::validate_allocation(seq, a.paths(), 3);
  for (std::size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(a.register_of(i), i % 3);
  }
}

TEST(Baselines, RoundRobinWithOneRegisterIsSinglePath) {
  const auto a = round_robin_allocate(kPaperSeq, config_with_k(1));
  EXPECT_EQ(a.register_count(), 1u);
  EXPECT_EQ(a.paths()[0].size(), kPaperSeq.size());
}

TEST(Baselines, GreedyOnlineUsesFreeTransitions) {
  // Ramp 0,1,2,3: one register tracks it for free even with K = 2.
  const auto seq = AccessSequence::from_offsets({0, 1, 2, 3});
  const auto a = greedy_online_allocate(seq, config_with_k(2));
  core::validate_allocation(seq, a.paths(), 2);
  EXPECT_EQ(a.intra_cost(), 0);
}

TEST(Baselines, AllAllocatorsCoverTheSequence) {
  for (const NamedAllocator& named : all_allocators()) {
    SCOPED_TRACE(named.name);
    const auto a = named.run(kPaperSeq, config_with_k(2));
    core::validate_allocation(kPaperSeq, a.paths(), 2);
  }
}

TEST(Baselines, ListContainsPaperAllocatorFirst) {
  const auto list = all_allocators();
  ASSERT_GE(list.size(), 5u);
  EXPECT_EQ(list[0].name, "path-merge");
}

class BaselinePropertyTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BaselinePropertyTest, PathMergeBeatsOrTiesNaive) {
  // The paper's headline comparison: cost-guided merging vs arbitrary
  // merging, same phase 1, same register limit.
  support::Rng rng(GetParam() * 257 + 11);
  eval::PatternSpec spec;
  spec.accesses = 8 + rng.index(40);
  spec.offset_range = 1 + rng.uniform_int(0, 12);
  const auto seq = eval::generate_pattern(spec, rng);

  ProblemConfig config;
  config.modify_range = 1 + rng.uniform_int(0, 2);
  config.registers = 1 + rng.index(6);

  const auto merged = core::RegisterAllocator(config).run(seq);
  const auto naive = naive_allocate(seq, config);
  EXPECT_LE(merged.cost(), naive.cost());
}

TEST_P(BaselinePropertyTest, EveryBaselineProducesValidAllocations) {
  support::Rng rng(GetParam() * 101 + 7);
  eval::PatternSpec spec;
  spec.accesses = 5 + rng.index(25);
  spec.offset_range = 10;
  spec.family = static_cast<eval::PatternFamily>(rng.index(4));
  const auto seq = eval::generate_pattern(spec, rng);

  ProblemConfig config;
  config.modify_range = 1 + rng.uniform_int(0, 3);
  config.registers = 1 + rng.index(5);

  for (const NamedAllocator& named : all_allocators(GetParam())) {
    SCOPED_TRACE(named.name);
    const auto a = named.run(seq, config);
    core::validate_allocation(seq, a.paths(), config.registers);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, BaselinePropertyTest,
                         ::testing::Range<std::uint64_t>(0, 30));

}  // namespace
}  // namespace dspaddr::baselines
