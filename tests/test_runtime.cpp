// The shared concurrent runtime: TaskPool (bounded queue,
// backpressure, exception capture, deterministic shutdown), StealPool
// (per-worker deques, demand-driven donation, deterministic victim
// order), OrderedCollector (re-sequencing out-of-order completions)
// and ShardedLruCache (striped counters, single-flight misses).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <numeric>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "runtime/ordered_collector.hpp"
#include "runtime/sharded_cache.hpp"
#include "runtime/steal_pool.hpp"
#include "runtime/task_pool.hpp"
#include "support/check.hpp"

namespace dspaddr {
namespace {

// -------------------------------------------------------------- TaskPool

TEST(TaskPool, RunsEveryTaskSubmittedFromManyThreads) {
  constexpr std::size_t kSubmitters = 8;
  constexpr std::size_t kTasksEach = 200;
  std::atomic<std::size_t> executed{0};

  runtime::TaskPool pool(4, 8);
  std::vector<std::thread> submitters;
  for (std::size_t t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&] {
      for (std::size_t i = 0; i < kTasksEach; ++i) {
        pool.submit([&] {
          executed.fetch_add(1, std::memory_order_relaxed);
        });
      }
    });
  }
  for (std::thread& submitter : submitters) {
    submitter.join();
  }
  pool.wait_idle();
  EXPECT_EQ(executed.load(), kSubmitters * kTasksEach);
  EXPECT_EQ(pool.failure_count(), 0u);
}

TEST(TaskPool, BoundedQueueBlocksTheSubmitterUntilASlotFrees) {
  // One worker is parked on a gate; the queue holds 2 more tasks, so
  // the 4th submission must block until the gate opens.
  std::mutex gate_mutex;
  std::condition_variable gate_cv;
  bool gate_open = false;
  const auto wait_for_gate = [&] {
    std::unique_lock<std::mutex> lock(gate_mutex);
    gate_cv.wait(lock, [&] { return gate_open; });
  };

  runtime::TaskPool pool(1, 2);
  std::atomic<bool> worker_busy{false};
  std::atomic<std::size_t> submitted{0};
  std::atomic<std::size_t> executed{0};
  pool.submit([&] {
    worker_busy = true;
    wait_for_gate();
    executed.fetch_add(1);
  });
  // Only start counting once the worker holds the gate task, so the
  // queue really has 2 free slots and the arithmetic below is exact.
  while (!worker_busy) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::thread submitter([&] {
    for (int i = 0; i < 3; ++i) {
      pool.submit([&] {
        wait_for_gate();
        executed.fetch_add(1);
      });
      submitted.fetch_add(1);
    }
  });
  // The submitter must get exactly two tasks in (filling the queue):
  // wait for that — scheduling may delay it arbitrarily — then give a
  // runaway third submission time to (wrongly) land before asserting
  // it is still blocked.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (submitted.load() < 2 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(submitted.load(), 2u);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(submitted.load(), 2u);
  {
    std::lock_guard<std::mutex> lock(gate_mutex);
    gate_open = true;
  }
  gate_cv.notify_all();
  submitter.join();
  EXPECT_EQ(submitted.load(), 3u);
  pool.wait_idle();
  EXPECT_EQ(executed.load(), 4u);
}

TEST(TaskPool, CapturesTaskExceptionsWithoutKillingWorkers) {
  runtime::TaskPool pool(2, 4);
  std::atomic<std::size_t> executed{0};
  for (int i = 0; i < 10; ++i) {
    if (i == 2 || i == 7) {
      pool.submit(
          [] { throw Error("task blew up"); });
    } else {
      pool.submit([&] { executed.fetch_add(1); });
    }
  }
  pool.wait_idle();
  // Workers survived the throwing tasks and drained everything else.
  EXPECT_EQ(executed.load(), 8u);
  EXPECT_EQ(pool.failure_count(), 2u);
  EXPECT_THROW(pool.rethrow_first_failure(), Error);
  // The failure list is kept: rethrowing is repeatable.
  EXPECT_THROW(pool.rethrow_first_failure(), Error);
}

TEST(TaskPool, ShutdownDrainsAcceptedWorkAndRejectsNewWork) {
  std::atomic<std::size_t> executed{0};
  runtime::TaskPool pool(1, 16);
  for (int i = 0; i < 10; ++i) {
    pool.submit([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      executed.fetch_add(1);
    });
  }
  pool.shutdown();
  // Deterministic: every accepted task finished before the join.
  EXPECT_EQ(executed.load(), 10u);
  EXPECT_THROW(pool.submit([] {}), Error);
  pool.shutdown();  // idempotent
}

TEST(TaskPool, RejectsDegenerateConfigurations) {
  EXPECT_THROW(runtime::TaskPool(0, 1), Error);
  EXPECT_THROW(runtime::TaskPool(1, 0), Error);
  runtime::TaskPool pool(1, 1);
  EXPECT_THROW(pool.submit(nullptr), Error);
  EXPECT_EQ(pool.worker_count(), 1u);
}

// ------------------------------------------------------------ StealDeque

TEST(StealDeque, OwnerPopsNewestWhileThievesTakeOldest) {
  runtime::StealDeque deque;
  std::vector<int> log;
  for (int i = 1; i <= 3; ++i) {
    deque.push_bottom([&log, i] { log.push_back(i); });
  }
  EXPECT_EQ(deque.size(), 3u);
  runtime::StealDeque::Task task;
  ASSERT_TRUE(deque.steal_top(task));  // thief end: oldest first
  task();
  ASSERT_TRUE(deque.pop_bottom(task));  // owner end: newest first
  task();
  ASSERT_TRUE(deque.pop_bottom(task));
  task();
  EXPECT_EQ(log, (std::vector<int>{1, 3, 2}));
  EXPECT_FALSE(deque.pop_bottom(task));
  EXPECT_FALSE(deque.steal_top(task));
  EXPECT_EQ(deque.size(), 0u);
}

TEST(StealDeque, OwnerAndConcurrentThievesPartitionEveryTask) {
  // One owner pushes and pops at the bottom while three thieves hammer
  // the top, including long stretches where the deque is empty: every
  // task must run exactly once and nothing may be lost or doubled.
  constexpr std::size_t kTasks = 2000;
  runtime::StealDeque deque;
  std::vector<std::atomic<int>> runs(kTasks);
  for (auto& run : runs) {
    run = 0;
  }
  std::atomic<std::size_t> executed{0};
  std::atomic<bool> owner_done{false};

  std::vector<std::thread> thieves;
  for (std::size_t t = 0; t < 3; ++t) {
    thieves.emplace_back([&] {
      runtime::StealDeque::Task task;
      while (executed.load() < kTasks) {
        if (deque.steal_top(task)) {
          task();
          executed.fetch_add(1);
        } else if (owner_done.load()) {
          // Owner finished pushing and the deque read empty: only
          // in-flight tasks remain, keep polling the counter.
          std::this_thread::yield();
        }
      }
    });
  }

  runtime::StealDeque::Task task;
  for (std::size_t i = 0; i < kTasks; ++i) {
    deque.push_bottom([&runs, &executed, i] {
      runs[i].fetch_add(1);
    });
    // Every few pushes the owner takes work back from the bottom, so
    // both ends contend on the same underlying deque.
    if (i % 4 == 3 && deque.pop_bottom(task)) {
      task();
      executed.fetch_add(1);
    }
  }
  owner_done = true;
  while (deque.pop_bottom(task)) {
    task();
    executed.fetch_add(1);
  }
  for (std::thread& thief : thieves) {
    thief.join();
  }
  EXPECT_EQ(executed.load(), kTasks);
  for (std::size_t i = 0; i < kTasks; ++i) {
    EXPECT_EQ(runs[i].load(), 1) << "task " << i;
  }
}

// ------------------------------------------------------------- StealPool

TEST(StealPool, ExecutesSubmittedAndDonatedTasks) {
  runtime::StealPool pool(4);
  EXPECT_EQ(pool.worker_count(), 4u);
  std::atomic<std::size_t> executed{0};
  pool.submit([&] {
    executed.fetch_add(1);
    // Donations from a worker thread land on that worker's own deque
    // and are either popped back or stolen — all must run.
    for (int i = 0; i < 8; ++i) {
      pool.donate([&] { executed.fetch_add(1); });
    }
  });
  pool.wait_done();
  EXPECT_EQ(executed.load(), 9u);
  const runtime::StealPoolStats stats = pool.stats();
  EXPECT_EQ(stats.executed, 9u);
  EXPECT_EQ(stats.donated, 8u);
  EXPECT_GE(stats.steal_attempts, stats.steals);
  EXPECT_EQ(pool.failure_count(), 0u);
}

TEST(StealPool, DonateOffAWorkerThreadFallsBackToSubmit) {
  runtime::StealPool pool(2);
  std::atomic<int> executed{0};
  pool.donate([&] { executed.fetch_add(1); });  // caller is not a worker
  pool.wait_done();
  EXPECT_EQ(executed.load(), 1);
  // Routed through submit(): counted as executed, not as a donation.
  EXPECT_EQ(pool.stats().donated, 0u);
  EXPECT_EQ(pool.stats().executed, 1u);
}

TEST(StealPool, ReportsHungerOnlyWhileWorkersOutnumberQueuedTasks) {
  runtime::StealPool pool(2);
  // Freshly idle pool: workers park and the pool reports hunger.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!pool.hungry() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(pool.hungry());
}

TEST(StealPool, WaitDoneIsImmediateWithNoWorkAndRepeatable) {
  runtime::StealPool pool(2);
  pool.wait_done();
  std::atomic<int> executed{0};
  pool.submit([&] { executed.fetch_add(1); });
  pool.wait_done();
  pool.wait_done();
  EXPECT_EQ(executed.load(), 1);
}

TEST(StealPool, CapturesTaskExceptionsAndRethrowsTheFirst) {
  runtime::StealPool pool(2);
  std::atomic<int> executed{0};
  pool.submit([] { throw Error("stolen task blew up"); });
  for (int i = 0; i < 4; ++i) {
    pool.submit([&] { executed.fetch_add(1); });
  }
  pool.wait_done();
  EXPECT_EQ(executed.load(), 4);
  EXPECT_EQ(pool.failure_count(), 1u);
  EXPECT_THROW(pool.rethrow_first_failure(), Error);
  // The failure list survives: rethrowing is repeatable.
  EXPECT_THROW(pool.rethrow_first_failure(), Error);
}

TEST(StealPool, ManySubmittersSaturateAllWorkers) {
  runtime::StealPool pool(4);
  constexpr std::size_t kSubmitters = 4;
  constexpr std::size_t kTasksEach = 250;
  std::atomic<std::size_t> executed{0};
  std::vector<std::thread> submitters;
  for (std::size_t t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&] {
      for (std::size_t i = 0; i < kTasksEach; ++i) {
        pool.submit([&] { executed.fetch_add(1); });
      }
    });
  }
  for (std::thread& submitter : submitters) {
    submitter.join();
  }
  pool.wait_done();
  EXPECT_EQ(executed.load(), kSubmitters * kTasksEach);
  EXPECT_EQ(pool.stats().executed, kSubmitters * kTasksEach);
  EXPECT_EQ(pool.failure_count(), 0u);
}

TEST(StealPool, RejectsDegenerateConfigurations) {
  EXPECT_THROW(runtime::StealPool(0), Error);
  runtime::StealPool pool(1);
  EXPECT_THROW(pool.submit(nullptr), Error);
  EXPECT_EQ(pool.worker_count(), 1u);
}

// ------------------------------------------------------ OrderedCollector

TEST(OrderedCollector, ResequencesAShuffledPermutation) {
  constexpr std::size_t kItems = 500;
  std::vector<std::size_t> order(kItems);
  std::iota(order.begin(), order.end(), 0u);
  std::mt19937 rng(1234);
  std::shuffle(order.begin(), order.end(), rng);

  runtime::OrderedCollector<std::size_t> collector;
  // Four producers push disjoint slices of the shuffled order while
  // the consumer pops concurrently; values must come out 0, 1, 2, ...
  std::vector<std::thread> producers;
  for (std::size_t t = 0; t < 4; ++t) {
    producers.emplace_back([&, t] {
      for (std::size_t i = t; i < kItems; i += 4) {
        collector.push(order[i], order[i] * 10);
      }
    });
  }
  std::size_t value = 0;
  for (std::size_t expected = 0; expected < kItems; ++expected) {
    ASSERT_TRUE(collector.pop(value));
    EXPECT_EQ(value, expected * 10);
  }
  for (std::thread& producer : producers) {
    producer.join();
  }
  EXPECT_EQ(collector.next_index(), kItems);
  collector.close();
  EXPECT_FALSE(collector.pop(value));
}

TEST(OrderedCollector, RejectsDuplicateAndStaleIndices) {
  runtime::OrderedCollector<int> collector;
  collector.push(0, 1);
  EXPECT_THROW(collector.push(0, 2), Error);  // still pending
  int value = 0;
  ASSERT_TRUE(collector.pop(value));
  EXPECT_THROW(collector.push(0, 3), Error);  // already consumed
}

TEST(OrderedCollector, ClosingWithAGapFailsLoudly) {
  runtime::OrderedCollector<int> collector;
  collector.push(1, 10);  // index 0 never arrives
  collector.close();
  int value = 0;
  EXPECT_THROW(collector.pop(value), Error);
}

TEST(OrderedCollector, CloseAfterDrainEndsThePopLoop) {
  runtime::OrderedCollector<std::string> collector;
  collector.push(0, "a");
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    collector.close();
  });
  std::string value;
  EXPECT_TRUE(collector.pop(value));
  EXPECT_EQ(value, "a");
  EXPECT_FALSE(collector.pop(value));  // blocks until close() lands
  closer.join();
}

// ------------------------------------------------------- ShardedLruCache

using IntCache = runtime::ShardedLruCache<int>;

std::shared_ptr<const int> payload(int value) {
  return std::make_shared<const int>(value);
}

TEST(ShardedCache, CountsHitsMissesAndEvictionsAcrossShards) {
  IntCache cache(4, 2);
  EXPECT_EQ(cache.shard_count(), 2u);
  EXPECT_EQ(cache.capacity(), 4u);
  for (int i = 0; i < 8; ++i) {
    const std::string key = "key" + std::to_string(i);
    EXPECT_EQ(cache.lookup_or_begin(key), nullptr);
    cache.publish(key, payload(i));
  }
  runtime::CacheCounters totals = cache.totals();
  EXPECT_EQ(totals.misses, 8u);
  EXPECT_EQ(totals.hits, 0u);
  // 8 inserts into 4 slots: exactly 4 evictions, whatever the hash
  // spread (each shard evicts its own overflow).
  EXPECT_EQ(totals.evictions, 4u);
  EXPECT_EQ(totals.entries, 4u);
  EXPECT_EQ(totals.capacity, 4u);
  // The per-shard split sums to the totals.
  std::uint64_t shard_misses = 0;
  std::size_t shard_capacity = 0;
  for (const runtime::CacheCounters& shard : cache.shard_counters()) {
    shard_misses += shard.misses;
    shard_capacity += shard.capacity;
  }
  EXPECT_EQ(shard_misses, totals.misses);
  EXPECT_EQ(shard_capacity, totals.capacity);
}

TEST(ShardedCache, ShardCountIsClampedToTheCapacity) {
  EXPECT_EQ(IntCache(2, 8).shard_count(), 2u);
  EXPECT_EQ(IntCache(16, 4).shard_count(), 4u);
  EXPECT_EQ(IntCache(5, 0).shard_count(), 1u);
}

TEST(ShardedCache, CapacityZeroDisablesCachingAndFlights) {
  IntCache cache(0, 8);
  EXPECT_EQ(cache.lookup_or_begin("k"), nullptr);
  EXPECT_EQ(cache.lookup_or_begin("k"), nullptr);  // no flight: no block
  cache.publish("k", payload(1));                  // no-op
  EXPECT_EQ(cache.lookup_or_begin("k"), nullptr);
  const runtime::CacheCounters totals = cache.totals();
  EXPECT_EQ(totals.hits, 0u);
  EXPECT_EQ(totals.misses, 0u);
  EXPECT_EQ(totals.entries, 0u);
}

TEST(ShardedCache, SingleFlightCoalescesConcurrentMisses) {
  IntCache cache(8, 4);
  constexpr std::size_t kThreads = 8;
  std::atomic<std::size_t> leaders{0};
  std::vector<int> seen(kThreads, -1);
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const std::shared_ptr<const int> value =
          cache.lookup_or_begin("hot");
      if (value == nullptr) {
        leaders.fetch_add(1);
        // Linger so the other threads really do pile onto the flight.
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        cache.publish("hot", payload(42));
        seen[t] = 42;
      } else {
        seen[t] = *value;
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(leaders.load(), 1u);
  for (const int value : seen) {
    EXPECT_EQ(value, 42);
  }
  const runtime::CacheCounters totals = cache.totals();
  EXPECT_EQ(totals.misses, 1u);
  EXPECT_EQ(totals.hits, kThreads - 1);
}

TEST(ShardedCache, AbortHandsLeadershipToAWaiter) {
  IntCache cache(8, 2);
  std::atomic<bool> first_led{false};
  std::atomic<bool> second_led{false};
  std::thread first([&] {
    ASSERT_EQ(cache.lookup_or_begin("k"), nullptr);
    first_led = true;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    cache.abort("k");
  });
  std::thread second([&] {
    while (!first_led) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    // Blocks on the first thread's flight, then takes over leadership
    // after the abort instead of receiving a value.
    const std::shared_ptr<const int> value = cache.lookup_or_begin("k");
    EXPECT_EQ(value, nullptr);
    second_led = true;
    cache.publish("k", payload(7));
  });
  first.join();
  second.join();
  EXPECT_TRUE(second_led.load());
  const runtime::CacheCounters totals = cache.totals();
  EXPECT_EQ(totals.misses, 2u);  // both leaderships counted
  const std::shared_ptr<const int> value = cache.lookup_or_begin("k");
  ASSERT_NE(value, nullptr);
  EXPECT_EQ(*value, 7);
}

TEST(ShardedCache, ClearReportsTheDropCountAndKeepsCounters) {
  IntCache cache(8, 2);
  for (int i = 0; i < 3; ++i) {
    const std::string key = "key" + std::to_string(i);
    EXPECT_EQ(cache.lookup_or_begin(key), nullptr);
    cache.publish(key, payload(i));
  }
  EXPECT_EQ(cache.clear(), 3u);
  EXPECT_EQ(cache.clear(), 0u);
  const runtime::CacheCounters totals = cache.totals();
  EXPECT_EQ(totals.entries, 0u);
  EXPECT_EQ(totals.misses, 3u);  // lifetime counters survive the clear
}

TEST(ShardedCache, ConcurrentMixedWorkloadKeepsCountersConsistent) {
  // 4 threads hammer 16 keys through a 8-entry cache: hits + misses
  // must equal the number of lookups, and every miss was either
  // published (entry or eviction) — the counter conservation law the
  // striping must not break.
  IntCache cache(8, 4);
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kRounds = 200;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::mt19937 rng(static_cast<unsigned>(t));
      std::uniform_int_distribution<int> pick(0, 15);
      for (std::size_t i = 0; i < kRounds; ++i) {
        const int id = pick(rng);
        const std::string key = "key" + std::to_string(id);
        if (cache.lookup_or_begin(key) == nullptr) {
          cache.publish(key, payload(id));
        }
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  const runtime::CacheCounters totals = cache.totals();
  EXPECT_EQ(totals.hits + totals.misses, kThreads * kRounds);
  EXPECT_EQ(totals.entries + totals.evictions, totals.misses);
  EXPECT_LE(totals.entries, 8u);
}

}  // namespace
}  // namespace dspaddr
