#include "ir/access_sequence.hpp"

#include <gtest/gtest.h>

#include "support/check.hpp"

namespace dspaddr::ir {
namespace {

TEST(AccessSequence, FromOffsetsDefaultsToUnitStride) {
  const auto seq = AccessSequence::from_offsets({1, 0, 2});
  ASSERT_EQ(seq.size(), 3u);
  EXPECT_EQ(seq[0], (Access{1, 1}));
  EXPECT_EQ(seq[1], (Access{0, 1}));
  EXPECT_EQ(seq[2], (Access{2, 1}));
}

TEST(AccessSequence, FromOffsetsCustomStride) {
  const auto seq = AccessSequence::from_offsets({0, 4}, 2);
  EXPECT_EQ(seq[0].stride, 2);
  EXPECT_EQ(seq[1].stride, 2);
}

TEST(AccessSequence, EmptySequence) {
  const AccessSequence seq;
  EXPECT_TRUE(seq.empty());
  EXPECT_EQ(seq.size(), 0u);
}

TEST(AccessSequence, IntraDistanceIsOffsetDifference) {
  const auto seq = AccessSequence::from_offsets({1, 0, 2, -1});
  EXPECT_EQ(seq.intra_distance(0, 1), -1);
  EXPECT_EQ(seq.intra_distance(1, 2), 2);
  EXPECT_EQ(seq.intra_distance(0, 3), -2);
  EXPECT_EQ(seq.intra_distance(2, 2), 0);
}

TEST(AccessSequence, WrapDistanceAddsStride) {
  // a_q last in iteration t, a_p first in iteration t+1:
  // distance = (o_p + s) - o_q.
  const auto seq = AccessSequence::from_offsets({1, 0, -2});
  EXPECT_EQ(seq.wrap_distance(2, 0), 1 + 1 - (-2));  // 4
  EXPECT_EQ(seq.wrap_distance(0, 0), 1);             // singleton: stride
  EXPECT_EQ(seq.wrap_distance(1, 2), -2 + 1 - 0);    // -1
}

TEST(AccessSequence, WrapDistanceUsesTargetStride) {
  const AccessSequence seq({Access{0, 2}, Access{3, 2}});
  EXPECT_EQ(seq.wrap_distance(1, 0), 0 + 2 - 3);
}

TEST(AccessSequence, MixedStridesHaveNoDistance) {
  const AccessSequence seq({Access{0, 1}, Access{0, -1}, Access{5, 1}});
  EXPECT_FALSE(seq.intra_distance(0, 1).has_value());
  EXPECT_FALSE(seq.wrap_distance(1, 0).has_value());
  EXPECT_TRUE(seq.intra_distance(0, 2).has_value());
}

TEST(AccessSequence, ZeroStrideAccessesHaveDistances) {
  const AccessSequence seq({Access{7, 0}, Access{7, 0}});
  EXPECT_EQ(seq.intra_distance(0, 1), 0);
  EXPECT_EQ(seq.wrap_distance(1, 0), 0);  // loop-invariant: stays put
}

TEST(AccessSequence, IndexingOutOfRangeThrows) {
  const auto seq = AccessSequence::from_offsets({1});
  EXPECT_THROW(seq[1], dspaddr::InvalidArgument);
  EXPECT_THROW(seq.intra_distance(0, 1), dspaddr::InvalidArgument);
  EXPECT_THROW(seq.wrap_distance(1, 0), dspaddr::InvalidArgument);
}

TEST(AccessSequence, EqualityComparesContent) {
  const auto a = AccessSequence::from_offsets({1, 2});
  const auto b = AccessSequence::from_offsets({1, 2});
  const auto c = AccessSequence::from_offsets({1, 3});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

}  // namespace
}  // namespace dspaddr::ir
