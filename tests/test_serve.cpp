// The JSON-lines serve loop: protocol, determinism, cache statistics,
// and resilience to malformed requests.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "cli/serve.hpp"
#include "support/json.hpp"
#include "support/strings.hpp"

namespace dspaddr {
namespace {

using support::JsonValue;

std::vector<std::string> serve_lines(const std::string& input,
                                     cli::ServeOptions options = {}) {
  std::istringstream in(input);
  std::ostringstream out;
  EXPECT_EQ(cli::run_serve(in, out, options), 0);
  std::vector<std::string> lines;
  for (const std::string& line : support::split(out.str(), '\n')) {
    if (!line.empty()) {
      lines.push_back(line);
    }
  }
  return lines;
}

TEST(Serve, AnswersOneLinePerRequest) {
  const std::vector<std::string> lines = serve_lines(
      "{\"id\":1,\"builtin\":\"fir\",\"machine\":\"wide4\"}\n"
      "\n"
      "{\"id\":2,\"builtin\":\"biquad\",\"registers\":2}\n");
  ASSERT_EQ(lines.size(), 2u);
  const JsonValue first = JsonValue::parse(lines[0]);
  EXPECT_EQ(first.find("id")->as_int(), 1);
  EXPECT_EQ(first.find("kernel")->find("name")->as_string(), "fir");
  EXPECT_EQ(first.find("error"), nullptr);
  EXPECT_TRUE(first.find("stages")
                  ->find("simulate")
                  ->find("verified")
                  ->as_bool());
  const JsonValue second = JsonValue::parse(lines[1]);
  EXPECT_EQ(second.find("id")->as_int(), 2);
  EXPECT_EQ(second.find("machine")->find("registers")->as_int(), 2);
}

TEST(Serve, RepeatedFixtureIsByteIdenticalAndHitsTheCache) {
  // The CI smoke's contract, in-process: the same fixture piped twice
  // through one serve session answers identically both times, and the
  // second pass runs from the cache.
  const std::string fixture =
      "{\"id\":1,\"builtin\":\"fir\",\"machine\":\"wide4\"}\n"
      "{\"id\":2,\"builtin\":\"biquad\",\"machine\":\"minimal2\"}\n"
      "{\"id\":3,\"builtin\":\"matmul\",\"registers\":2,"
      "\"stop_after\":\"plan\"}\n";
  const std::vector<std::string> lines =
      serve_lines(fixture + fixture + "{\"stats\":true}\n");
  ASSERT_EQ(lines.size(), 7u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(lines[i], lines[i + 3]) << "request " << (i + 1);
  }
  const JsonValue stats = JsonValue::parse(lines[6]);
  EXPECT_EQ(stats.find("stats")->find("hits")->as_int(), 3);
  EXPECT_EQ(stats.find("stats")->find("misses")->as_int(), 3);
}

TEST(Serve, StrategyAndLayoutFieldsSelectThePipeline) {
  const std::vector<std::string> lines = serve_lines(
      "{\"id\":1,\"builtin\":\"paper_example\",\"registers\":2,"
      "\"strategy\":\"naive\",\"layout\":\"declaration-padded\","
      "\"stop_after\":\"allocate\"}\n"
      "{\"id\":2,\"builtin\":\"paper_example\",\"registers\":2,"
      "\"stop_after\":\"allocate\"}\n"
      "{\"id\":3,\"builtin\":\"fir\",\"strategy\":\"bogus\"}\n"
      "{\"id\":4,\"builtin\":\"fir\",\"layout\":\"bogus\"}\n");
  ASSERT_EQ(lines.size(), 4u);
  const JsonValue naive = JsonValue::parse(lines[0]);
  EXPECT_EQ(naive.find("strategy")->as_string(), "naive");
  EXPECT_EQ(naive.find("layout")->as_string(), "declaration-padded");
  EXPECT_EQ(naive.find("stages")->find("allocate")->find("cost")->as_int(),
            4);
  const JsonValue two_phase = JsonValue::parse(lines[1]);
  EXPECT_EQ(two_phase.find("strategy")->as_string(), "two-phase");
  EXPECT_EQ(
      two_phase.find("stages")->find("allocate")->find("cost")->as_int(),
      2);
  // Unknown names are request errors answered in-band.
  for (int i = 2; i < 4; ++i) {
    const JsonValue error = JsonValue::parse(lines[i]);
    ASSERT_NE(error.find("error"), nullptr) << lines[i];
    EXPECT_EQ(error.find("error")->find("stage")->as_string(), "request");
  }
}

TEST(Serve, ClearCacheControlLineBoundsTheSession) {
  const std::vector<std::string> lines = serve_lines(
      "{\"id\":1,\"builtin\":\"fir\",\"machine\":\"wide4\"}\n"
      "{\"id\":2,\"stats\":true}\n"
      "{\"id\":3,\"clear_cache\":true}\n"
      "{\"id\":4,\"stats\":true}\n"
      "{\"id\":5,\"builtin\":\"fir\",\"machine\":\"wide4\"}\n"
      "{\"id\":6,\"clear_cache\":true,\"builtin\":\"fir\"}\n"
      "{\"id\":7,\"clear_cache\":false,\"builtin\":\"fir\","
      "\"machine\":\"wide4\"}\n");
  ASSERT_EQ(lines.size(), 7u);
  const JsonValue before = JsonValue::parse(lines[1]);
  EXPECT_EQ(before.find("stats")->find("entries")->as_int(), 1);
  const JsonValue cleared = JsonValue::parse(lines[2]);
  EXPECT_EQ(cleared.find("id")->as_int(), 3);
  EXPECT_TRUE(cleared.find("cleared")->as_bool());
  const JsonValue after = JsonValue::parse(lines[3]);
  EXPECT_EQ(after.find("stats")->find("entries")->as_int(), 0);
  // The rerun recomputes (a miss, not a hit) and answers identically
  // (modulo the id echo).
  const JsonValue rerun = JsonValue::parse(lines[4]);
  EXPECT_EQ(rerun.find("error"), nullptr);
  EXPECT_EQ(JsonValue::parse(lines[0]).find("stages")->dump(),
            rerun.find("stages")->dump());
  // clear_cache is a control line: it cannot carry request fields...
  const JsonValue mixed = JsonValue::parse(lines[5]);
  ASSERT_NE(mixed.find("error"), nullptr);
  // ...but a false value means "not a control line" and the request
  // fields run normally.
  const JsonValue not_control = JsonValue::parse(lines[6]);
  EXPECT_EQ(not_control.find("error"), nullptr) << lines[6];
  EXPECT_EQ(not_control.find("kernel")->find("name")->as_string(), "fir");
}

TEST(Serve, InlineKernelAndStopAfter) {
  const std::vector<std::string> lines = serve_lines(
      R"({"kernel":{"name":"tiny","iterations":4,)"
      R"("arrays":[{"name":"A","size":8}],)"
      R"("accesses":[{"array":"A","offset":0},{"array":"A","offset":2}]},)"
      R"("registers":1,"stop_after":"allocate"})"
      "\n");
  ASSERT_EQ(lines.size(), 1u);
  const JsonValue response = JsonValue::parse(lines[0]);
  EXPECT_EQ(response.find("kernel")->find("name")->as_string(), "tiny");
  EXPECT_EQ(response.find("stop_after")->as_string(), "allocate");
  EXPECT_NE(response.find("stages")->find("allocate"), nullptr);
  EXPECT_EQ(response.find("stages")->find("plan"), nullptr);
}

TEST(Serve, KernelFileRequest) {
  const std::string path =
      std::string(DSPADDR_SOURCE_DIR) + "/workloads/paper_example.c";
  const std::vector<std::string> lines = serve_lines(
      "{\"kernel_file\":\"" + path + "\",\"registers\":2}\n");
  ASSERT_EQ(lines.size(), 1u);
  const JsonValue response = JsonValue::parse(lines[0]);
  EXPECT_EQ(response.find("kernel")->find("name")->as_string(),
            "paper_example");
  EXPECT_EQ(response.find("stages")
                ->find("allocate")
                ->find("cost")
                ->as_int(),
            2);
}

TEST(Serve, BadRequestsAreAnsweredInBandAndTheLoopContinues) {
  const std::vector<std::string> lines = serve_lines(
      "this is not json\n"
      "{\"id\":7,\"builtin\":\"fir\",\"bogus\":1}\n"
      "{\"id\":8}\n"
      "{\"id\":9,\"builtin\":\"nope\"}\n"
      "{\"id\":10,\"builtin\":\"fir\",\"stop_after\":\"nope\"}\n"
      "{\"id\":11,\"builtin\":\"fir\"}\n");
  ASSERT_EQ(lines.size(), 6u);
  for (int i = 0; i < 5; ++i) {
    const JsonValue response = JsonValue::parse(lines[i]);
    const JsonValue* error = response.find("error");
    ASSERT_NE(error, nullptr) << lines[i];
    EXPECT_EQ(error->find("stage")->as_string(), "request");
    EXPECT_FALSE(error->find("message")->as_string().empty());
  }
  // The malformed line could not echo an id; the others do.
  EXPECT_EQ(JsonValue::parse(lines[0]).find("id"), nullptr);
  EXPECT_EQ(JsonValue::parse(lines[1]).find("id")->as_int(), 7);
  // The healthy request after all the bad ones still succeeds.
  const JsonValue last = JsonValue::parse(lines[5]);
  EXPECT_EQ(last.find("id")->as_int(), 11);
  EXPECT_EQ(last.find("error"), nullptr);
}

TEST(Serve, RejectsOutOfRangeOverrides) {
  const std::vector<std::string> lines = serve_lines(
      "{\"id\":1,\"builtin\":\"fir\",\"registers\":0}\n"
      // A service must bound the per-request simulation work — via the
      // override or via the kernel's own iteration count.
      "{\"id\":2,\"builtin\":\"fir\",\"iterations\":2000000000}\n"
      "{\"id\":3,\"kernel\":{\"iterations\":4000000000000,"
      "\"arrays\":[{\"name\":\"A\",\"size\":4}],"
      "\"accesses\":[{\"array\":\"A\"}]}}\n");
  ASSERT_EQ(lines.size(), 3u);
  for (const std::string& line : lines) {
    const JsonValue response = JsonValue::parse(line);
    const JsonValue* error = response.find("error");
    ASSERT_NE(error, nullptr) << line;
    EXPECT_EQ(error->find("stage")->as_string(), "request");
  }
}

TEST(Serve, HugeKernelIterationsAreFineForPipelinePrefixes) {
  // The cap guards the simulate stage only; an allocation-only request
  // on the same kernel is cheap and must go through.
  const std::vector<std::string> lines = serve_lines(
      "{\"kernel\":{\"iterations\":4000000000000,"
      "\"arrays\":[{\"name\":\"A\",\"size\":4}],"
      "\"accesses\":[{\"array\":\"A\"}]},"
      "\"stop_after\":\"allocate\"}\n");
  ASSERT_EQ(lines.size(), 1u);
  const JsonValue response = JsonValue::parse(lines[0]);
  EXPECT_EQ(response.find("error"), nullptr) << lines[0];
  EXPECT_NE(response.find("stages")->find("allocate"), nullptr);
}

TEST(Serve, StatsProbeCarriesNothingElse) {
  const std::vector<std::string> lines = serve_lines(
      "{\"id\":1,\"stats\":true,\"builtin\":\"fir\"}\n"
      "{\"stats\":true,\"bogus\":1}\n"
      "{\"id\":3,\"stats\":true}\n");
  ASSERT_EQ(lines.size(), 3u);
  // A kernel source alongside a stats probe must not be silently
  // dropped; an unknown key fails even on the stats path.
  EXPECT_NE(JsonValue::parse(lines[0]).find("error"), nullptr);
  EXPECT_NE(JsonValue::parse(lines[1]).find("error"), nullptr);
  const JsonValue clean = JsonValue::parse(lines[2]);
  EXPECT_EQ(clean.find("error"), nullptr);
  EXPECT_NE(clean.find("stats"), nullptr);
  EXPECT_EQ(clean.find("id")->as_int(), 3);
}

TEST(Serve, CacheCapacityZeroDisablesHits) {
  cli::ServeOptions options;
  options.cache_capacity = 0;
  const std::vector<std::string> lines = serve_lines(
      "{\"builtin\":\"fir\"}\n{\"builtin\":\"fir\"}\n{\"stats\":true}\n",
      options);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], lines[1]);
  const JsonValue stats = JsonValue::parse(lines[2]);
  EXPECT_EQ(stats.find("stats")->find("hits")->as_int(), 0);
  EXPECT_EQ(stats.find("stats")->find("capacity")->as_int(), 0);
}

}  // namespace
}  // namespace dspaddr
