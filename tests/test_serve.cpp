// The JSON-lines serve loop: protocol, determinism, cache statistics,
// and resilience to malformed requests.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "cli/serve.hpp"
#include "support/json.hpp"
#include "support/strings.hpp"

namespace dspaddr {
namespace {

using support::JsonValue;

std::vector<std::string> serve_lines(const std::string& input,
                                     cli::ServeOptions options = {}) {
  std::istringstream in(input);
  std::ostringstream out;
  EXPECT_EQ(cli::run_serve(in, out, options), 0);
  std::vector<std::string> lines;
  for (const std::string& line : support::split(out.str(), '\n')) {
    if (!line.empty()) {
      lines.push_back(line);
    }
  }
  return lines;
}

TEST(Serve, AnswersOneLinePerRequest) {
  const std::vector<std::string> lines = serve_lines(
      "{\"id\":1,\"builtin\":\"fir\",\"machine\":\"wide4\"}\n"
      "\n"
      "{\"id\":2,\"builtin\":\"biquad\",\"registers\":2}\n");
  ASSERT_EQ(lines.size(), 2u);
  const JsonValue first = JsonValue::parse(lines[0]);
  EXPECT_EQ(first.find("id")->as_int(), 1);
  EXPECT_EQ(first.find("kernel")->find("name")->as_string(), "fir");
  EXPECT_EQ(first.find("error"), nullptr);
  EXPECT_TRUE(first.find("stages")
                  ->find("simulate")
                  ->find("verified")
                  ->as_bool());
  const JsonValue second = JsonValue::parse(lines[1]);
  EXPECT_EQ(second.find("id")->as_int(), 2);
  EXPECT_EQ(second.find("machine")->find("registers")->as_int(), 2);
}

TEST(Serve, RepeatedFixtureIsByteIdenticalAndHitsTheCache) {
  // The CI smoke's contract, in-process: the same fixture piped twice
  // through one serve session answers identically both times, and the
  // second pass runs from the cache.
  const std::string fixture =
      "{\"id\":1,\"builtin\":\"fir\",\"machine\":\"wide4\"}\n"
      "{\"id\":2,\"builtin\":\"biquad\",\"machine\":\"minimal2\"}\n"
      "{\"id\":3,\"builtin\":\"matmul\",\"registers\":2,"
      "\"stop_after\":\"plan\"}\n";
  const std::vector<std::string> lines =
      serve_lines(fixture + fixture + "{\"stats\":true}\n");
  ASSERT_EQ(lines.size(), 7u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(lines[i], lines[i + 3]) << "request " << (i + 1);
  }
  const JsonValue stats = JsonValue::parse(lines[6]);
  EXPECT_EQ(stats.find("stats")->find("hits")->as_int(), 3);
  EXPECT_EQ(stats.find("stats")->find("misses")->as_int(), 3);
}

TEST(Serve, StrategyAndLayoutFieldsSelectThePipeline) {
  const std::vector<std::string> lines = serve_lines(
      "{\"id\":1,\"builtin\":\"paper_example\",\"registers\":2,"
      "\"strategy\":\"naive\",\"layout\":\"declaration-padded\","
      "\"stop_after\":\"allocate\"}\n"
      "{\"id\":2,\"builtin\":\"paper_example\",\"registers\":2,"
      "\"stop_after\":\"allocate\"}\n"
      "{\"id\":3,\"builtin\":\"fir\",\"strategy\":\"bogus\"}\n"
      "{\"id\":4,\"builtin\":\"fir\",\"layout\":\"bogus\"}\n");
  ASSERT_EQ(lines.size(), 4u);
  const JsonValue naive = JsonValue::parse(lines[0]);
  EXPECT_EQ(naive.find("strategy")->as_string(), "naive");
  EXPECT_EQ(naive.find("layout")->as_string(), "declaration-padded");
  EXPECT_EQ(naive.find("stages")->find("allocate")->find("cost")->as_int(),
            4);
  const JsonValue two_phase = JsonValue::parse(lines[1]);
  EXPECT_EQ(two_phase.find("strategy")->as_string(), "two-phase");
  EXPECT_EQ(
      two_phase.find("stages")->find("allocate")->find("cost")->as_int(),
      2);
  // Unknown names are request errors answered in-band.
  for (int i = 2; i < 4; ++i) {
    const JsonValue error = JsonValue::parse(lines[i]);
    ASSERT_NE(error.find("error"), nullptr) << lines[i];
    EXPECT_EQ(error.find("error")->find("stage")->as_string(), "request");
  }
}

TEST(Serve, ClearCacheControlLineBoundsTheSession) {
  const std::vector<std::string> lines = serve_lines(
      "{\"id\":1,\"builtin\":\"fir\",\"machine\":\"wide4\"}\n"
      "{\"id\":2,\"stats\":true}\n"
      "{\"id\":3,\"clear_cache\":true}\n"
      "{\"id\":4,\"stats\":true}\n"
      "{\"id\":5,\"builtin\":\"fir\",\"machine\":\"wide4\"}\n"
      "{\"id\":6,\"clear_cache\":true,\"builtin\":\"fir\"}\n"
      "{\"id\":7,\"clear_cache\":false,\"builtin\":\"fir\","
      "\"machine\":\"wide4\"}\n");
  ASSERT_EQ(lines.size(), 7u);
  const JsonValue before = JsonValue::parse(lines[1]);
  EXPECT_EQ(before.find("stats")->find("entries")->as_int(), 1);
  const JsonValue cleared = JsonValue::parse(lines[2]);
  EXPECT_EQ(cleared.find("id")->as_int(), 3);
  EXPECT_TRUE(cleared.find("cleared")->as_bool());
  // The drop count says how much the control line actually freed.
  EXPECT_EQ(cleared.find("dropped")->as_int(), 1);
  const JsonValue after = JsonValue::parse(lines[3]);
  EXPECT_EQ(after.find("stats")->find("entries")->as_int(), 0);
  // The rerun recomputes (a miss, not a hit) and answers identically
  // (modulo the id echo).
  const JsonValue rerun = JsonValue::parse(lines[4]);
  EXPECT_EQ(rerun.find("error"), nullptr);
  EXPECT_EQ(JsonValue::parse(lines[0]).find("stages")->dump(),
            rerun.find("stages")->dump());
  // clear_cache is a control line: it cannot carry request fields...
  const JsonValue mixed = JsonValue::parse(lines[5]);
  ASSERT_NE(mixed.find("error"), nullptr);
  // ...but a false value means "not a control line" and the request
  // fields run normally.
  const JsonValue not_control = JsonValue::parse(lines[6]);
  EXPECT_EQ(not_control.find("error"), nullptr) << lines[6];
  EXPECT_EQ(not_control.find("kernel")->find("name")->as_string(), "fir");
}

TEST(Serve, InlineKernelAndStopAfter) {
  const std::vector<std::string> lines = serve_lines(
      R"({"kernel":{"name":"tiny","iterations":4,)"
      R"("arrays":[{"name":"A","size":8}],)"
      R"("accesses":[{"array":"A","offset":0},{"array":"A","offset":2}]},)"
      R"("registers":1,"stop_after":"allocate"})"
      "\n");
  ASSERT_EQ(lines.size(), 1u);
  const JsonValue response = JsonValue::parse(lines[0]);
  EXPECT_EQ(response.find("kernel")->find("name")->as_string(), "tiny");
  EXPECT_EQ(response.find("stop_after")->as_string(), "allocate");
  EXPECT_NE(response.find("stages")->find("allocate"), nullptr);
  EXPECT_EQ(response.find("stages")->find("plan"), nullptr);
}

TEST(Serve, KernelFileRequest) {
  const std::string path =
      std::string(DSPADDR_SOURCE_DIR) + "/workloads/paper_example.c";
  const std::vector<std::string> lines = serve_lines(
      "{\"kernel_file\":\"" + path + "\",\"registers\":2}\n");
  ASSERT_EQ(lines.size(), 1u);
  const JsonValue response = JsonValue::parse(lines[0]);
  EXPECT_EQ(response.find("kernel")->find("name")->as_string(),
            "paper_example");
  EXPECT_EQ(response.find("stages")
                ->find("allocate")
                ->find("cost")
                ->as_int(),
            2);
}

TEST(Serve, MachineFileRequestLoadsAndOverrides) {
  const std::string path = std::string(DSPADDR_SOURCE_DIR) +
                           "/workloads/machines/dsp56300.machine";
  const std::vector<std::string> lines = serve_lines(
      "{\"id\":1,\"builtin\":\"fir\",\"machine_file\":\"" + path + "\"}\n"
      "{\"id\":2,\"builtin\":\"fir\",\"machine_file\":\"" + path +
      "\",\"registers\":2}\n"
      "{\"id\":3,\"builtin\":\"fir\",\"machine_file\":\"" + path +
      "\",\"machine\":\"minimal2\"}\n");
  ASSERT_EQ(lines.size(), 3u);
  const JsonValue loaded = JsonValue::parse(lines[0]);
  EXPECT_EQ(loaded.find("machine")->find("name")->as_string(), "dsp56300");
  EXPECT_EQ(loaded.find("machine")->find("modify_lo")->as_int(), -1);
  EXPECT_EQ(loaded.find("machine")->find("modify_hi")->as_int(), 3);
  const JsonValue overridden = JsonValue::parse(lines[1]);
  EXPECT_EQ(overridden.find("machine")->find("registers")->as_int(), 2);
  EXPECT_EQ(overridden.find("machine")->find("modify_hi")->as_int(), 3)
      << "a K override must not flatten the asymmetric window";
  // A file layers over the catalog; "machine" can still pick a builtin.
  const JsonValue builtin = JsonValue::parse(lines[2]);
  EXPECT_EQ(builtin.find("machine")->find("name")->as_string(), "minimal2");
}

TEST(Serve, InlineMachineSpecRequest) {
  const std::vector<std::string> lines = serve_lines(
      "{\"id\":1,\"builtin\":\"fir\",\"machine_spec\":"
      "{\"registers\":4,\"modify_lo\":0,\"modify_hi\":1}}\n"
      "{\"id\":2,\"builtin\":\"fir\",\"machine_spec\":"
      "{\"name\":\"inline\",\"classes\":[{\"name\":\"r\","
      "\"kind\":\"address\",\"count\":3}]}}\n"
      "{\"id\":3,\"builtin\":\"fir\",\"machine_spec\":{\"wheels\":3}}\n"
      "{\"id\":4,\"builtin\":\"fir\",\"machine\":\"wide4\","
      "\"machine_spec\":{\"registers\":4}}\n"
      "{\"id\":5,\"builtin\":\"fir\",\"machine\":\"pdp11\"}\n");
  ASSERT_EQ(lines.size(), 5u);
  const JsonValue flat = JsonValue::parse(lines[0]);
  EXPECT_EQ(flat.find("machine")->find("name")->as_string(), "custom");
  EXPECT_EQ(flat.find("machine")->find("modify_lo")->as_int(), 0);
  const JsonValue full = JsonValue::parse(lines[1]);
  EXPECT_EQ(full.find("machine")->find("name")->as_string(), "inline");
  EXPECT_EQ(full.find("machine")->find("registers")->as_int(), 3);
  // Unknown spec fields, spec+name conflicts and unknown machine names
  // are all in-band request errors; the loop keeps going.
  for (int i = 2; i < 5; ++i) {
    const JsonValue error = JsonValue::parse(lines[i]);
    ASSERT_NE(error.find("error"), nullptr) << lines[i];
    EXPECT_EQ(error.find("error")->find("stage")->as_string(), "request");
  }
  EXPECT_NE(JsonValue::parse(lines[4])
                .find("error")
                ->find("message")
                ->as_string()
                .find("unknown machine 'pdp11'"),
            std::string::npos);
}

TEST(Serve, BadRequestsAreAnsweredInBandAndTheLoopContinues) {
  const std::vector<std::string> lines = serve_lines(
      "this is not json\n"
      "{\"id\":7,\"builtin\":\"fir\",\"bogus\":1}\n"
      "{\"id\":8}\n"
      "{\"id\":9,\"builtin\":\"nope\"}\n"
      "{\"id\":10,\"builtin\":\"fir\",\"stop_after\":\"nope\"}\n"
      "{\"id\":11,\"builtin\":\"fir\"}\n");
  ASSERT_EQ(lines.size(), 6u);
  for (int i = 0; i < 5; ++i) {
    const JsonValue response = JsonValue::parse(lines[i]);
    const JsonValue* error = response.find("error");
    ASSERT_NE(error, nullptr) << lines[i];
    EXPECT_EQ(error->find("stage")->as_string(), "request");
    EXPECT_FALSE(error->find("message")->as_string().empty());
  }
  // The malformed line could not echo an id; the others do.
  EXPECT_EQ(JsonValue::parse(lines[0]).find("id"), nullptr);
  EXPECT_EQ(JsonValue::parse(lines[1]).find("id")->as_int(), 7);
  // The healthy request after all the bad ones still succeeds.
  const JsonValue last = JsonValue::parse(lines[5]);
  EXPECT_EQ(last.find("id")->as_int(), 11);
  EXPECT_EQ(last.find("error"), nullptr);
}

TEST(Serve, RejectsOutOfRangeOverrides) {
  const std::vector<std::string> lines = serve_lines(
      "{\"id\":1,\"builtin\":\"fir\",\"registers\":0}\n"
      // A service must bound the per-request simulation work — via the
      // override or via the kernel's own iteration count.
      "{\"id\":2,\"builtin\":\"fir\",\"iterations\":2000000000}\n"
      "{\"id\":3,\"kernel\":{\"iterations\":4000000000000,"
      "\"arrays\":[{\"name\":\"A\",\"size\":4}],"
      "\"accesses\":[{\"array\":\"A\"}]}}\n");
  ASSERT_EQ(lines.size(), 3u);
  for (const std::string& line : lines) {
    const JsonValue response = JsonValue::parse(line);
    const JsonValue* error = response.find("error");
    ASSERT_NE(error, nullptr) << line;
    EXPECT_EQ(error->find("stage")->as_string(), "request");
  }
}

TEST(Serve, HugeKernelIterationsAreFineForPipelinePrefixes) {
  // The cap guards the simulate stage only; an allocation-only request
  // on the same kernel is cheap and must go through.
  const std::vector<std::string> lines = serve_lines(
      "{\"kernel\":{\"iterations\":4000000000000,"
      "\"arrays\":[{\"name\":\"A\",\"size\":4}],"
      "\"accesses\":[{\"array\":\"A\"}]},"
      "\"stop_after\":\"allocate\"}\n");
  ASSERT_EQ(lines.size(), 1u);
  const JsonValue response = JsonValue::parse(lines[0]);
  EXPECT_EQ(response.find("error"), nullptr) << lines[0];
  EXPECT_NE(response.find("stages")->find("allocate"), nullptr);
}

TEST(Serve, StatsProbeCarriesNothingElse) {
  const std::vector<std::string> lines = serve_lines(
      "{\"id\":1,\"stats\":true,\"builtin\":\"fir\"}\n"
      "{\"stats\":true,\"bogus\":1}\n"
      "{\"id\":3,\"stats\":true}\n");
  ASSERT_EQ(lines.size(), 3u);
  // A kernel source alongside a stats probe must not be silently
  // dropped; an unknown key fails even on the stats path.
  EXPECT_NE(JsonValue::parse(lines[0]).find("error"), nullptr);
  EXPECT_NE(JsonValue::parse(lines[1]).find("error"), nullptr);
  const JsonValue clean = JsonValue::parse(lines[2]);
  EXPECT_EQ(clean.find("error"), nullptr);
  EXPECT_NE(clean.find("stats"), nullptr);
  EXPECT_EQ(clean.find("id")->as_int(), 3);
}

TEST(Serve, StatsProbeReportsEvictionsEntriesCapacityAndShards) {
  cli::ServeOptions options;
  // Sequential on purpose: with capacity 1, concurrent workers could
  // legitimately coalesce the repeated fir onto its first flight
  // before biquad evicts it — eviction counters are only
  // request-order-deterministic when nothing races the eviction.
  options.jobs = 1;
  options.cache_capacity = 1;  // one shard, so every new kernel evicts
  const std::vector<std::string> lines = serve_lines(
      "{\"builtin\":\"fir\"}\n"
      "{\"builtin\":\"biquad\"}\n"
      "{\"builtin\":\"fir\"}\n"
      "{\"stats\":true}\n",
      options);
  ASSERT_EQ(lines.size(), 4u);
  const JsonValue response = JsonValue::parse(lines[3]);
  const JsonValue* stats = response.find("stats");
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->find("hits")->as_int(), 0);
  EXPECT_EQ(stats->find("misses")->as_int(), 3);
  EXPECT_EQ(stats->find("evictions")->as_int(), 2);
  EXPECT_EQ(stats->find("entries")->as_int(), 1);
  EXPECT_EQ(stats->find("capacity")->as_int(), 1);
  ASSERT_NE(stats->find("shards"), nullptr);
  ASSERT_EQ(stats->find("shards")->items().size(), 1u);
  EXPECT_EQ(stats->find("shards")->items()[0].find("evictions")->as_int(),
            2);
}

TEST(Serve, MaxIterationsOptionTightensThePerRequestCap) {
  cli::ServeOptions options;
  options.max_iterations = 10;
  const std::vector<std::string> lines = serve_lines(
      "{\"id\":1,\"builtin\":\"fir\"}\n"
      "{\"id\":2,\"builtin\":\"fir\",\"iterations\":10,"
      "\"stop_after\":\"simulate\"}\n",
      options);
  ASSERT_EQ(lines.size(), 2u);
  // fir's own iteration count (16) now exceeds the cap: rejected
  // in-band; an explicit override at the cap passes.
  const JsonValue rejected = JsonValue::parse(lines[0]);
  ASSERT_NE(rejected.find("error"), nullptr);
  EXPECT_EQ(rejected.find("error")->find("stage")->as_string(), "request");
  EXPECT_NE(
      rejected.find("error")->find("message")->as_string().find(
          "--max-iterations"),
      std::string::npos);
  EXPECT_EQ(JsonValue::parse(lines[1]).find("error"), nullptr) << lines[1];
}

TEST(Serve, JobsLevelsAnswerAShuffledWorkloadByteIdentically) {
  // 200 requests — duplicates, pipeline prefixes, in-band errors and
  // interspersed stats probes — shuffled with a fixed seed, served at
  // --jobs 1 and --jobs 8: every output line must match, including the
  // cache counters (single-flight misses + pipeline draining before
  // control lines make them interleaving-independent).
  std::vector<std::string> pool;
  for (const char* kernel : {"fir", "biquad", "matmul", "dotprod"}) {
    for (const int registers : {1, 2, 4}) {
      for (const char* stop : {"allocate", "plan"}) {
        pool.push_back(std::string("{\"builtin\":\"") + kernel +
                       "\",\"registers\":" + std::to_string(registers) +
                       ",\"stop_after\":\"" + stop + "\"}");
      }
    }
  }
  pool.push_back("{\"builtin\":\"nope\"}");       // in-band error
  pool.push_back("{\"registers\":2}");            // no kernel source
  std::vector<std::string> requests;
  for (std::size_t i = 0; requests.size() < 200; ++i) {
    requests.push_back(pool[i % pool.size()]);
  }
  std::mt19937 rng(20260729);
  std::shuffle(requests.begin(), requests.end(), rng);
  std::string input;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    input += requests[i] + "\n";
    if ((i + 1) % 50 == 0) {
      input += "{\"stats\":true}\n";
    }
  }

  cli::ServeOptions serial;
  serial.jobs = 1;
  cli::ServeOptions parallel;
  parallel.jobs = 8;
  const std::vector<std::string> expected = serve_lines(input, serial);
  const std::vector<std::string> actual = serve_lines(input, parallel);
  ASSERT_EQ(expected.size(), 204u);
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(actual[i], expected[i]) << "line " << i;
  }
}

TEST(Serve, TiledPhase2AndJobsKnob) {
  const std::vector<std::string> lines = serve_lines(
      "{\"id\":1,\"builtin\":\"biquad\",\"registers\":2,"
      "\"phase2\":\"tiled\",\"phase2_jobs\":2}\n"
      "{\"id\":2,\"builtin\":\"biquad\",\"registers\":2,"
      "\"phase2\":\"exact\"}\n");
  ASSERT_EQ(lines.size(), 2u);
  const JsonValue tiled = JsonValue::parse(lines[0]);
  EXPECT_EQ(tiled.find("error"), nullptr) << lines[0];
  const JsonValue* phase2 =
      tiled.find("stages")->find("allocate")->find("phase2");
  ASSERT_NE(phase2, nullptr) << lines[0];
  EXPECT_GE(phase2->find("windows")->as_int(), 1);
  EXPECT_LE(phase2->find("windows_proven")->as_int(),
            phase2->find("windows")->as_int());
  ASSERT_NE(phase2->find("table_cap_hits"), nullptr) << lines[0];
  ASSERT_NE(phase2->find("subtree_tasks"), nullptr) << lines[0];
  // The same request at a different jobs level answers with the same
  // cost — `phase2_jobs` must never leak into the result.
  const std::vector<std::string> serial = serve_lines(
      "{\"id\":1,\"builtin\":\"biquad\",\"registers\":2,"
      "\"phase2\":\"tiled\",\"phase2_jobs\":1}\n");
  ASSERT_EQ(serial.size(), 1u);
  EXPECT_EQ(JsonValue::parse(serial[0])
                .find("stages")
                ->find("allocate")
                ->find("cost")
                ->as_int(),
            tiled.find("stages")->find("allocate")->find("cost")->as_int());
}

TEST(Serve, RejectsNonPositivePhase2Jobs) {
  const std::vector<std::string> lines = serve_lines(
      "{\"id\":1,\"builtin\":\"fir\",\"phase2_jobs\":0}\n"
      "{\"id\":2,\"builtin\":\"fir\"}\n");
  ASSERT_EQ(lines.size(), 2u);
  const JsonValue error = JsonValue::parse(lines[0]);
  ASSERT_NE(error.find("error"), nullptr) << lines[0];
  EXPECT_EQ(error.find("error")->find("stage")->as_string(), "request");
  // The loop survives the bad request.
  EXPECT_EQ(JsonValue::parse(lines[1]).find("error"), nullptr);
}

TEST(Serve, CacheCapacityZeroDisablesHits) {
  cli::ServeOptions options;
  options.cache_capacity = 0;
  const std::vector<std::string> lines = serve_lines(
      "{\"builtin\":\"fir\"}\n{\"builtin\":\"fir\"}\n{\"stats\":true}\n",
      options);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], lines[1]);
  const JsonValue stats = JsonValue::parse(lines[2]);
  EXPECT_EQ(stats.find("stats")->find("hits")->as_int(), 0);
  EXPECT_EQ(stats.find("stats")->find("capacity")->as_int(), 0);
}

TEST(Serve, StatsCarriesPhase2TotalsDeterministicallyAcrossJobs) {
  // The aggregate phase-2 block only counts *computed* runs, and
  // single-flight makes each unique fingerprint compute exactly once —
  // so the whole stats line is byte-identical at every jobs level.
  const std::string input =
      "{\"builtin\":\"fir\",\"registers\":2,\"phase2\":\"exact\","
      "\"stop_after\":\"allocate\"}\n"
      "{\"builtin\":\"fir\",\"registers\":2,\"phase2\":\"exact\","
      "\"stop_after\":\"allocate\"}\n"
      "{\"builtin\":\"biquad\",\"registers\":2,\"phase2\":\"tiled\","
      "\"stop_after\":\"allocate\"}\n"
      "{\"stats\":true}\n";
  cli::ServeOptions serial;
  serial.jobs = 1;
  cli::ServeOptions parallel;
  parallel.jobs = 8;
  const std::vector<std::string> expected = serve_lines(input, serial);
  const std::vector<std::string> actual = serve_lines(input, parallel);
  ASSERT_EQ(expected.size(), 4u);
  ASSERT_EQ(actual.size(), 4u);
  EXPECT_EQ(actual[3], expected[3]);
  const JsonValue stats = JsonValue::parse(expected[3]);
  const JsonValue* phase2 = stats.find("stats")->find("phase2");
  ASSERT_NE(phase2, nullptr) << expected[3];
  // Two exact-solver kernels computed once each (the repeat is a hit).
  EXPECT_GE(phase2->find("proven")->as_int(), 1);
  EXPECT_GE(phase2->find("nodes")->as_int(), 1);
  EXPECT_GE(phase2->find("windows")->as_int(), 1);
  ASSERT_NE(phase2->find("windows_proven"), nullptr);
  ASSERT_NE(phase2->find("subtree_tasks"), nullptr);
  // The legacy grep contract: "hits" is still the first stats member.
  EXPECT_NE(expected[3].find("\"stats\":{\"hits\":"), std::string::npos);
}

TEST(Serve, RestartOverSameStoreAnswersByteIdenticallyFromDisk) {
  // The acceptance contract: a serve restarted against the same
  // --store file answers previously-seen requests from the persistent
  // tier — byte-identical to the cold boot, with zero phase-2 nodes
  // searched on the second boot.
  const std::string path =
      testing::TempDir() + "dspaddr_serve_restart.log";
  std::remove(path.c_str());
  const std::string fixture =
      "{\"id\":1,\"builtin\":\"fir\",\"machine\":\"wide4\"}\n"
      "{\"id\":2,\"builtin\":\"biquad\",\"registers\":2,"
      "\"phase2\":\"exact\"}\n"
      "{\"id\":3,\"builtin\":\"matmul\",\"stop_after\":\"plan\"}\n";
  cli::ServeOptions options;
  options.store_path = path;
  const std::vector<std::string> first =
      serve_lines(fixture + "{\"stats\":true}\n", options);
  ASSERT_EQ(first.size(), 4u);
  const JsonValue cold_stats = JsonValue::parse(first[3]);
  EXPECT_GE(cold_stats.find("stats")->find("phase2")->find("nodes")->as_int(),
            1);
  ASSERT_NE(cold_stats.find("stats")->find("store"), nullptr);

  const std::vector<std::string> second =
      serve_lines(fixture + "{\"stats\":true}\n", options);
  ASSERT_EQ(second.size(), 4u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(second[i], first[i]) << "request " << (i + 1);
  }
  const JsonValue warm_stats = JsonValue::parse(second[3]);
  const JsonValue* store = warm_stats.find("stats")->find("store");
  ASSERT_NE(store, nullptr) << second[3];
  EXPECT_EQ(store->find("hits")->as_int(), 3);
  EXPECT_EQ(store->find("recovered_records")->as_int(), 3);
  EXPECT_EQ(store->find("truncated_bytes")->as_int(), 0);
  // Nothing was searched on the warm boot.
  const JsonValue* phase2 = warm_stats.find("stats")->find("phase2");
  EXPECT_EQ(phase2->find("nodes")->as_int(), 0);
  EXPECT_EQ(phase2->find("proven")->as_int(), 0);
  std::remove(path.c_str());
}

TEST(Serve, ClearCacheLeavesTheStoreTier) {
  const std::string path = testing::TempDir() + "dspaddr_serve_clear.log";
  std::remove(path.c_str());
  cli::ServeOptions options;
  options.store_path = path;
  const std::vector<std::string> lines = serve_lines(
      "{\"id\":1,\"builtin\":\"fir\"}\n"
      "{\"id\":2,\"clear_cache\":true}\n"
      "{\"id\":3,\"builtin\":\"fir\"}\n"
      "{\"id\":4,\"stats\":true}\n",
      options);
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_EQ(JsonValue::parse(lines[0]).find("stages")->dump(),
            JsonValue::parse(lines[2]).find("stages")->dump());
  const JsonValue stats = JsonValue::parse(lines[3]);
  // The rerun after clear_cache was answered from disk, not recomputed.
  EXPECT_EQ(stats.find("stats")->find("store")->find("hits")->as_int(), 1);
  EXPECT_EQ(stats.find("stats")->find("phase2")->find("proven")->as_int(),
            1);
  std::remove(path.c_str());
}

TEST(Serve, MetricsControlLineReportsTheRegistry) {
  const std::vector<std::string> lines = serve_lines(
      "{\"builtin\":\"fir\",\"machine\":\"wide4\"}\n"
      "{\"builtin\":\"fir\",\"machine\":\"wide4\"}\n"
      "{\"id\":9,\"metrics\":true}\n"
      "{\"metrics\":true,\"builtin\":\"fir\"}\n"
      "{\"metrics\":false,\"builtin\":\"fir\"}\n");
  ASSERT_EQ(lines.size(), 5u);
  const JsonValue response = JsonValue::parse(lines[2]);
  EXPECT_EQ(response.find("id")->as_int(), 9);
  const JsonValue* metrics = response.find("metrics");
  ASSERT_NE(metrics, nullptr) << lines[2];
  // Schema: engine instruments, serve transport instruments, cache
  // tier counters — all present with the documented names.
  const JsonValue* counters = metrics->find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_NE(counters->find("engine.phase2.proven"), nullptr);
  EXPECT_EQ(counters->find("serve.requests")->as_int(), 2);
  const JsonValue* histograms = metrics->find("histograms");
  ASSERT_NE(histograms, nullptr);
  for (const char* name :
       {"engine.stage_us.lower", "engine.stage_us.allocate",
        "engine.stage_us.simulate", "engine.request_us.cold",
        "engine.request_us.ram_hit", "engine.request_us.store_hit"}) {
    const JsonValue* histogram = histograms->find(name);
    ASSERT_NE(histogram, nullptr) << name;
    ASSERT_NE(histogram->find("p99_us"), nullptr) << name;
  }
  EXPECT_EQ(histograms->find("engine.request_us.cold")->find("count")
                ->as_int(),
            1);
  EXPECT_EQ(histograms->find("engine.request_us.ram_hit")->find("count")
                ->as_int(),
            1);
  const JsonValue* gauges = metrics->find("gauges");
  ASSERT_NE(gauges, nullptr);
  ASSERT_NE(gauges->find("serve.inflight"), nullptr);
  EXPECT_GE(gauges->find("serve.inflight")->find("max")->as_int(), 1);
  const JsonValue* cache = metrics->find("cache");
  ASSERT_NE(cache, nullptr);
  EXPECT_EQ(cache->find("hits")->as_int(), 1);
  // No store attached: the store block is absent, not null.
  EXPECT_EQ(metrics->find("store"), nullptr);
  // metrics is a control line: extra fields are in-band errors, and a
  // false value means "not a control line".
  EXPECT_NE(JsonValue::parse(lines[3]).find("error"), nullptr);
  EXPECT_EQ(JsonValue::parse(lines[4]).find("error"), nullptr);
  EXPECT_NE(JsonValue::parse(lines[4]).find("stages"), nullptr);
}

TEST(Serve, MetricsCsvIsWrittenOnExit) {
  const std::string csv_path =
      testing::TempDir() + "dspaddr_serve_metrics.csv";
  std::remove(csv_path.c_str());
  cli::ServeOptions options;
  options.metrics_csv = csv_path;
  serve_lines("{\"builtin\":\"fir\"}\n{\"builtin\":\"fir\"}\n", options);
  std::ifstream csv(csv_path);
  ASSERT_TRUE(csv.good()) << csv_path;
  std::string header;
  std::getline(csv, header);
  EXPECT_EQ(header,
            "kind,name,count,sum_us,max_us,p50_us,p95_us,p99_us,value,max");
  std::string body((std::istreambuf_iterator<char>(csv)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(body.find("histogram,engine.request_us.cold,"),
            std::string::npos);
  EXPECT_NE(body.find("counter,serve.requests,"), std::string::npos);
  EXPECT_NE(body.find("counter,cache.hits,"), std::string::npos);
  std::remove(csv_path.c_str());
}

TEST(Serve, AutoStrategyRacesAndLearnsAcrossRequests) {
  // One worker, so the requests are strictly sequential: the first
  // auto request runs a full race, the identical second one
  // short-circuits to the learned winner and answers byte-identically.
  cli::ServeOptions options;
  options.jobs = 1;
  const std::vector<std::string> lines = serve_lines(
      "{\"id\":1,\"builtin\":\"biquad\",\"registers\":2,"
      "\"strategy\":\"auto\",\"layout\":\"auto\","
      "\"stop_after\":\"plan\"}\n"
      "{\"id\":2,\"builtin\":\"biquad\",\"registers\":2,"
      "\"strategy\":\"auto\",\"layout\":\"auto\","
      "\"stop_after\":\"plan\"}\n"
      "{\"stats\":true}\n",
      options);
  ASSERT_EQ(lines.size(), 3u);
  const JsonValue first = JsonValue::parse(lines[0]);
  ASSERT_EQ(first.find("error"), nullptr) << lines[0];
  // The answer carries the resolved winner, not the literal "auto".
  EXPECT_NE(first.find("strategy")->as_string(), "auto");
  EXPECT_NE(first.find("layout")->as_string(), "auto");
  const std::string strip_id_first = lines[0].substr(lines[0].find(','));
  const std::string strip_id_second = lines[1].substr(lines[1].find(','));
  EXPECT_EQ(strip_id_first, strip_id_second);

  const JsonValue stats = JsonValue::parse(lines[2]);
  const JsonValue* portfolio = stats.find("stats")->find("portfolio");
  ASSERT_NE(portfolio, nullptr) << lines[2];
  EXPECT_EQ(portfolio->find("races")->as_int(), 1);
  EXPECT_EQ(portfolio->find("short_circuits")->as_int(), 1);
  EXPECT_EQ(portfolio->find("reraces")->as_int(), 0);
  EXPECT_EQ(portfolio->find("learned_entries")->as_int(), 1);
}

TEST(Serve, PortfolioMetricsAppearInTheRegistry) {
  const std::vector<std::string> lines = serve_lines(
      "{\"builtin\":\"fir\",\"strategy\":\"auto\","
      "\"stop_after\":\"plan\"}\n"
      "{\"metrics\":true}\n");
  ASSERT_EQ(lines.size(), 2u);
  const JsonValue metrics = JsonValue::parse(lines[1]);
  const JsonValue* counters = metrics.find("metrics")->find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->find("engine.portfolio.races")->as_int(), 1);
  EXPECT_GE(counters->find("engine.portfolio.racers_launched")->as_int(),
            1);
}

TEST(Serve, RaceBudgetRequiresAnAutoAxis) {
  const std::vector<std::string> lines = serve_lines(
      "{\"id\":1,\"builtin\":\"fir\",\"race_budget_ms\":5}\n"
      "{\"id\":2,\"builtin\":\"fir\",\"strategy\":\"auto\","
      "\"race_budget_ms\":0,\"stop_after\":\"plan\"}\n");
  ASSERT_EQ(lines.size(), 2u);
  const JsonValue fixed = JsonValue::parse(lines[0]);
  ASSERT_NE(fixed.find("error"), nullptr) << lines[0];
  EXPECT_EQ(fixed.find("error")->find("stage")->as_string(), "request");
  const JsonValue raced = JsonValue::parse(lines[1]);
  EXPECT_EQ(raced.find("error"), nullptr) << lines[1];
  EXPECT_NE(raced.find("strategy")->as_string(), "auto");
}

TEST(Serve, AutoRequestsStayDeterministicAcrossJobs) {
  const std::string fixture =
      "{\"builtin\":\"paper_example\",\"registers\":2,"
      "\"strategy\":\"auto\",\"layout\":\"auto\","
      "\"stop_after\":\"plan\"}\n";
  cli::ServeOptions serial;
  serial.jobs = 1;
  const std::vector<std::string> one = serve_lines(fixture, serial);
  cli::ServeOptions parallel;
  parallel.jobs = 4;
  const std::vector<std::string> four = serve_lines(fixture, parallel);
  ASSERT_EQ(one.size(), 1u);
  ASSERT_EQ(four.size(), 1u);
  // One request per session: the race winner (and so the whole answer)
  // is independent of the worker count.
  EXPECT_EQ(one[0], four[0]);
}

}  // namespace
}  // namespace dspaddr
