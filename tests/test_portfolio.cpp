// engine::Portfolio — strategy racing: deterministic winner selection
// at any jobs level, early cancellation under a race deadline, and the
// learned short-circuit / re-race lifecycle (RAM and store-backed).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "agu/machines.hpp"
#include "core/exact.hpp"
#include "core/validate.hpp"
#include "engine/engine.hpp"
#include "engine/portfolio.hpp"
#include "engine/strategy.hpp"
#include "eval/patterns.hpp"
#include "ir/kernels.hpp"
#include "store/result_store.hpp"
#include "support/rng.hpp"

namespace dspaddr {
namespace {

engine::Request auto_request(const ir::Kernel& kernel,
                             const std::string& machine = "minimal2") {
  engine::Request request;
  request.kernel = kernel;
  request.machine = agu::builtin_machine(machine);
  request.layout = engine::kAutoStrategy;
  request.strategy = engine::kAutoStrategy;
  request.stop_after = engine::Stage::kPlan;
  return request;
}

/// The reference winner: brute-force the fixed grid through a fresh
/// engine and take the minimum cost, ties to the first candidate in
/// canonical (layout-major registration) order.
std::pair<std::string, int> reference_winner(const engine::Request& base) {
  const engine::StrategyRegistry& registry =
      engine::StrategyRegistry::builtin();
  engine::Engine engine(engine::Engine::Options{0});
  std::string winner;
  int best = std::numeric_limits<int>::max();
  for (const std::string& layout : registry.layout_names()) {
    for (const std::string& strategy : registry.allocation_names()) {
      engine::Request request = base;
      request.layout = layout;
      request.strategy = strategy;
      const engine::Result result = engine.run(request);
      if (result.ok() && result.allocation_cost < best) {
        best = result.allocation_cost;
        winner = layout + "/" + strategy;
      }
    }
  }
  return {winner, best};
}

/// Every structural invariant one PortfolioReport must satisfy.
void check_report(const engine::PortfolioReport& report) {
  std::size_t launched = 0, cancelled = 0, skipped = 0, winners = 0;
  for (const engine::RacerReport& racer : report.racers) {
    const int states = (racer.completed ? 1 : 0) + (racer.cancelled ? 1 : 0) +
                       (racer.skipped ? 1 : 0) + (racer.ok() ? 0 : 1);
    EXPECT_LE(states, 1) << racer.layout << "/" << racer.strategy;
    if (!racer.skipped) ++launched;
    if (racer.cancelled) ++cancelled;
    if (racer.skipped) ++skipped;
    if (racer.winner) {
      ++winners;
      EXPECT_TRUE(racer.completed);
      EXPECT_EQ(racer.layout, report.winner_layout);
      EXPECT_EQ(racer.strategy, report.winner_strategy);
    }
  }
  EXPECT_EQ(launched, report.launched);
  EXPECT_EQ(cancelled, report.cancelled);
  EXPECT_EQ(skipped, report.skipped);
  EXPECT_EQ(winners, 1u);
}

TEST(Portfolio, WinnerMatchesBruteForceGrid) {
  for (const char* name : {"paper_example", "biquad", "matmul"}) {
    const ir::Kernel kernel = ir::builtin_kernel(name);
    const engine::Request request = auto_request(kernel);
    const auto [expected_pair, expected_cost] = reference_winner(request);

    engine::Engine engine(engine::Engine::Options{0});
    engine::PortfolioOptions options;
    options.learn = false;
    engine::Portfolio portfolio(engine, options);
    engine::PortfolioReport report;
    const engine::Result result = portfolio.run(request, &report);
    ASSERT_TRUE(result.ok()) << result.error->message;
    EXPECT_EQ(report.winner_layout + "/" + report.winner_strategy,
              expected_pair)
        << name;
    EXPECT_EQ(result.allocation_cost, expected_cost) << name;
    check_report(report);
  }
}

TEST(Portfolio, WinnerIdenticalAcrossJobsLevels) {
  const ir::Kernel kernel = ir::builtin_kernel("fft_butterfly");
  const engine::Request request = auto_request(kernel);
  std::string first_winner;
  int first_cost = 0;
  for (const std::size_t jobs : {std::size_t{1}, std::size_t{4},
                                 std::size_t{8}}) {
    engine::Engine engine(engine::Engine::Options{0});
    engine::PortfolioOptions options;
    options.jobs = jobs;
    options.learn = false;
    engine::Portfolio portfolio(engine, options);
    engine::PortfolioReport report;
    const engine::Result result = portfolio.run(request, &report);
    ASSERT_TRUE(result.ok()) << "jobs=" << jobs;
    check_report(report);
    const std::string winner =
        report.winner_layout + "/" + report.winner_strategy;
    if (jobs == 1) {
      first_winner = winner;
      first_cost = result.allocation_cost;
    } else {
      EXPECT_EQ(winner, first_winner) << "jobs=" << jobs;
      EXPECT_EQ(result.allocation_cost, first_cost) << "jobs=" << jobs;
    }
  }
}

TEST(Portfolio, TiesBreakToCanonicalCandidateOrder) {
  // On the paper example several pairs tie at the minimum cost; the
  // winner must be the first of them in layout-major registry order —
  // which is also what the brute-force reference (same iteration
  // order, strict <) selects.
  const ir::Kernel kernel = ir::builtin_kernel("paper_example");
  const engine::Request request = auto_request(kernel);
  const auto [expected_pair, expected_cost] = reference_winner(request);

  engine::Engine engine(engine::Engine::Options{0});
  engine::PortfolioOptions options;
  options.learn = false;
  engine::Portfolio portfolio(engine, options);
  engine::PortfolioReport report;
  const engine::Result result = portfolio.run(request, &report);
  ASSERT_TRUE(result.ok());
  std::size_t ties = 0;
  for (const engine::RacerReport& racer : report.racers) {
    if (racer.completed && racer.cost == expected_cost) ++ties;
  }
  EXPECT_GE(ties, 2u) << "kernel no longer exercises the tie-break";
  EXPECT_EQ(report.winner_layout + "/" + report.winner_strategy,
            expected_pair);
}

TEST(Portfolio, OneAxisAutoRacesOnlyThatAxis) {
  const ir::Kernel kernel = ir::builtin_kernel("biquad");
  engine::Request request = auto_request(kernel);
  request.layout = "contiguous";
  ASSERT_TRUE(engine::Portfolio::is_auto(request));

  engine::Engine engine(engine::Engine::Options{0});
  engine::PortfolioOptions options;
  options.learn = false;
  engine::Portfolio portfolio(engine, options);
  engine::PortfolioReport report;
  const engine::Result result = portfolio.run(request, &report);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(report.racers.size(),
            engine::StrategyRegistry::builtin().allocation_names().size());
  EXPECT_EQ(report.winner_layout, "contiguous");
  check_report(report);
}

TEST(Portfolio, FixedRequestIsAPlainEngineCall) {
  const ir::Kernel kernel = ir::builtin_kernel("fir");
  engine::Request request = auto_request(kernel);
  request.layout = "contiguous";
  request.strategy = "two-phase";
  EXPECT_FALSE(engine::Portfolio::is_auto(request));

  engine::Engine engine(engine::Engine::Options{0});
  engine::Portfolio portfolio(engine);
  engine::PortfolioReport report;
  const engine::Result result = portfolio.run(request, &report);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(report.racers.size(), 1u);
  EXPECT_EQ(portfolio.stats().races, 0u);
  EXPECT_EQ(engine.metrics()->counter("engine.portfolio.races").value(), 0u);
}

TEST(Portfolio, DeadlineRaceStaysSoundAndAnchorFinishes) {
  // A 1ms budget on the largest builtin kernel: whether any racer is
  // actually skipped is machine-dependent, but the result must stay a
  // valid winner, the canonical-first anchor must never be cancelled
  // or skipped (sequential race, no learned seed), and the report must
  // stay structurally consistent.
  const ir::Kernel kernel = ir::builtin_kernel("filter2d_3x3");
  const engine::Request request = auto_request(kernel);
  for (const std::size_t jobs : {std::size_t{1}, std::size_t{4}}) {
    engine::Engine engine(engine::Engine::Options{0});
    engine::PortfolioOptions options;
    options.jobs = jobs;
    options.learn = false;
    options.race_budget_ms = 1;
    engine::Portfolio portfolio(engine, options);
    engine::PortfolioReport report;
    const engine::Result result = portfolio.run(request, &report);
    ASSERT_TRUE(result.ok()) << "jobs=" << jobs;
    check_report(report);
    if (jobs == 1) {
      EXPECT_TRUE(report.racers.front().completed);
    }
    // The winner is the cost minimum over everything that completed —
    // cancelled and skipped racers never outrank it.
    for (const engine::RacerReport& racer : report.racers) {
      if (racer.completed) {
        EXPECT_GE(racer.cost, result.allocation_cost);
      }
    }
  }
}

TEST(Portfolio, PerRunBudgetOverridesConstructedDeadline) {
  const ir::Kernel kernel = ir::builtin_kernel("fir");
  const engine::Request request = auto_request(kernel);
  engine::Engine engine(engine::Engine::Options{0});
  engine::PortfolioOptions options;
  options.learn = false;
  options.race_budget_ms = 1;
  engine::Portfolio portfolio(engine, options);
  engine::PortfolioReport report;
  // Overriding with 0 disables the deadline: nothing may be skipped.
  const engine::Result result = portfolio.run(request, &report, 0);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(report.skipped, 0u);
  check_report(report);
}

TEST(Portfolio, SecondIdenticalRequestShortCircuitsToOneStrategy) {
  const ir::Kernel kernel = ir::builtin_kernel("biquad");
  const engine::Request request = auto_request(kernel);
  engine::Engine engine(engine::Engine::Options{0});
  engine::Portfolio portfolio(engine);  // learn on, confidence 1
  obs::Registry& metrics = *engine.metrics();

  engine::PortfolioReport cold;
  ASSERT_TRUE(portfolio.run(request, &cold).ok());
  EXPECT_FALSE(cold.short_circuit);
  EXPECT_FALSE(cold.learned_hit);
  EXPECT_FALSE(cold.feature_key.empty());
  const std::uint64_t launched_after_race =
      metrics.counter("engine.portfolio.racers_launched").value();
  EXPECT_EQ(launched_after_race, cold.launched);

  engine::PortfolioReport warm;
  const engine::Result result = portfolio.run(request, &warm);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(warm.short_circuit);
  EXPECT_TRUE(warm.learned_hit);
  EXPECT_EQ(warm.launched, 1u);
  EXPECT_EQ(warm.racers.size(), 1u);
  EXPECT_EQ(warm.winner_layout, cold.winner_layout);
  EXPECT_EQ(warm.winner_strategy, cold.winner_strategy);
  // Exactly one more strategy executed, through the portfolio's own
  // metrics: the acceptance check of the learned hot path.
  EXPECT_EQ(metrics.counter("engine.portfolio.racers_launched").value(),
            launched_after_race + 1);
  EXPECT_EQ(metrics.counter("engine.portfolio.short_circuits").value(), 1u);
  EXPECT_EQ(metrics.counter("engine.portfolio.races").value(), 1u);

  const engine::PortfolioStats stats = portfolio.stats();
  EXPECT_EQ(stats.races, 1u);
  EXPECT_EQ(stats.short_circuits, 1u);
  EXPECT_EQ(stats.learned_entries, 1u);
}

TEST(Portfolio, ReraceIntervalForcesPeriodicFullRace) {
  const ir::Kernel kernel = ir::builtin_kernel("dotprod");
  const engine::Request request = auto_request(kernel);
  engine::Engine engine(engine::Engine::Options{0});
  engine::PortfolioOptions options;
  options.rerace_interval = 2;
  engine::Portfolio portfolio(engine, options);

  ASSERT_TRUE(portfolio.run(request).ok());  // race 1 (learns)
  engine::PortfolioReport report;
  ASSERT_TRUE(portfolio.run(request, &report).ok());  // short-circuit 1
  EXPECT_TRUE(report.short_circuit);
  ASSERT_TRUE(portfolio.run(request, &report).ok());  // short-circuit 2
  EXPECT_TRUE(report.short_circuit);
  ASSERT_TRUE(portfolio.run(request, &report).ok());  // drift re-race
  EXPECT_FALSE(report.short_circuit);
  EXPECT_TRUE(report.reraced);
  ASSERT_TRUE(portfolio.run(request, &report).ok());  // uses reset: SC again
  EXPECT_TRUE(report.short_circuit);

  const engine::PortfolioStats stats = portfolio.stats();
  EXPECT_EQ(stats.races, 2u);
  EXPECT_EQ(stats.short_circuits, 3u);
  EXPECT_EQ(stats.reraces, 1u);
  EXPECT_EQ(engine.metrics()->counter("engine.portfolio.reraces").value(),
            1u);
}

TEST(Portfolio, LearnOffNeverShortCircuits) {
  const ir::Kernel kernel = ir::builtin_kernel("fir");
  const engine::Request request = auto_request(kernel);
  engine::Engine engine(engine::Engine::Options{0});
  engine::PortfolioOptions options;
  options.learn = false;
  engine::Portfolio portfolio(engine, options);

  engine::PortfolioReport report;
  ASSERT_TRUE(portfolio.run(request, &report).ok());
  ASSERT_TRUE(portfolio.run(request, &report).ok());
  EXPECT_FALSE(report.short_circuit);
  EXPECT_FALSE(report.learned_hit);
  const engine::PortfolioStats stats = portfolio.stats();
  EXPECT_EQ(stats.races, 2u);
  EXPECT_EQ(stats.short_circuits, 0u);
  EXPECT_EQ(stats.learned_entries, 0u);
}

TEST(Portfolio, LessonPersistsThroughTheResultStore) {
  const std::string path = testing::TempDir() + "dspaddr_portfolio_store";
  std::remove(path.c_str());
  const ir::Kernel kernel = ir::builtin_kernel("biquad");
  const engine::Request request = auto_request(kernel);

  std::string winner;
  {
    store::ResultStore::Options store_options;
    store_options.path = path;
    engine::Engine::Options engine_options;
    engine_options.store =
        std::make_shared<store::ResultStore>(store_options);
    engine::Engine engine(engine_options);
    engine::Portfolio portfolio(engine);
    engine::PortfolioReport report;
    ASSERT_TRUE(portfolio.run(request, &report).ok());
    EXPECT_FALSE(report.short_circuit);
    winner = report.winner_layout + "/" + report.winner_strategy;
  }

  // A fresh process image over the same log: the very first identical
  // request short-circuits off the persisted lesson (no race at all).
  store::ResultStore::Options store_options;
  store_options.path = path;
  engine::Engine::Options engine_options;
  engine_options.store = std::make_shared<store::ResultStore>(store_options);
  engine::Engine engine(engine_options);
  engine::Portfolio portfolio(engine);
  engine::PortfolioReport report;
  const engine::Result result = portfolio.run(request, &report);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(report.short_circuit);
  EXPECT_TRUE(report.learned_hit);
  EXPECT_EQ(report.winner_layout + "/" + report.winner_strategy, winner);
  const engine::PortfolioStats stats = portfolio.stats();
  EXPECT_EQ(stats.races, 0u);
  EXPECT_EQ(stats.short_circuits, 1u);
  std::remove(path.c_str());
}

TEST(Portfolio, PreRaisedStopFlagCutsStolenSubtreesPromptly) {
  // The racer-cancellation path under work-stealing: every donated
  // subtree re-checks the abort hook before it starts searching, so a
  // stop flag raised before the solve (a racer already lost) must cut
  // the whole jobs=8 pool after at most one ~1024-node cadence per
  // worker — not after the stolen subtrees run to completion.
  support::Rng rng(0xAB047);
  eval::PatternSpec spec;
  spec.accesses = 30;
  spec.offset_range = 8;
  spec.family = eval::PatternFamily::kSkewedStrided;
  const ir::AccessSequence seq = eval::generate_pattern(spec, rng);

  const std::atomic<bool> stop{true};
  core::ExactOptions options;
  options.jobs = 8;
  options.abort.stop = &stop;
  const core::CostModel model{1, core::WrapPolicy::kCyclic};
  const core::ExactResult r =
      core::exact_min_cost_allocation(seq, model, 3, options);
  EXPECT_TRUE(r.external_abort);
  EXPECT_FALSE(r.proven);
  // One cadence per worker is the most the pool may burn after the
  // flag is already up.
  EXPECT_LT(r.nodes, 8u * 1100u);
  // The warm incumbent survives the abort: still a valid allocation.
  core::validate_allocation(seq, r.paths, 3);
}

}  // namespace
}  // namespace dspaddr
