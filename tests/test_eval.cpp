#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <set>
#include <vector>

#include "eval/experiment.hpp"
#include "eval/patterns.hpp"
#include "support/check.hpp"

namespace dspaddr::eval {
namespace {

TEST(Patterns, GeneratesRequestedSize) {
  support::Rng rng(1);
  for (const PatternFamily family :
       {PatternFamily::kUniform, PatternFamily::kClustered,
        PatternFamily::kStrided, PatternFamily::kSortedNoise}) {
    PatternSpec spec;
    spec.accesses = 23;
    spec.offset_range = 9;
    spec.family = family;
    const auto seq = generate_pattern(spec, rng);
    EXPECT_EQ(seq.size(), 23u) << to_string(family);
  }
}

TEST(Patterns, OffsetsStayWithinRange) {
  support::Rng rng(2);
  for (const PatternFamily family :
       {PatternFamily::kUniform, PatternFamily::kClustered,
        PatternFamily::kStrided, PatternFamily::kSortedNoise}) {
    PatternSpec spec;
    spec.accesses = 200;
    spec.offset_range = 7;
    spec.family = family;
    const auto seq = generate_pattern(spec, rng);
    for (std::size_t i = 0; i < seq.size(); ++i) {
      EXPECT_GE(seq[i].offset, -7) << to_string(family);
      EXPECT_LE(seq[i].offset, 7) << to_string(family);
    }
  }
}

TEST(Patterns, AppliesStrideToAllAccesses) {
  support::Rng rng(3);
  PatternSpec spec;
  spec.accesses = 10;
  spec.stride = 4;
  const auto seq = generate_pattern(spec, rng);
  for (std::size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(seq[i].stride, 4);
  }
}

TEST(Patterns, DeterministicGivenRngState) {
  PatternSpec spec;
  spec.accesses = 50;
  support::Rng rng1(77);
  support::Rng rng2(77);
  EXPECT_EQ(generate_pattern(spec, rng1), generate_pattern(spec, rng2));
}

TEST(Patterns, DeterministicGivenRngStateForEveryFamily) {
  for (const PatternFamily family :
       {PatternFamily::kUniform, PatternFamily::kClustered,
        PatternFamily::kStrided, PatternFamily::kSortedNoise}) {
    PatternSpec spec;
    spec.accesses = 40;
    spec.offset_range = 9;
    spec.family = family;
    support::Rng rng1(404);
    support::Rng rng2(404);
    EXPECT_EQ(generate_pattern(spec, rng1), generate_pattern(spec, rng2))
        << to_string(family);
  }
}

TEST(Patterns, StridedSmallRangeStillSpreadsOverTheLattice) {
  // Regression: offset_range < 2 used to collapse every strided draw
  // onto the single lattice point 0 (the lattice was clamped to >= 2,
  // making steps = r / lattice zero).
  support::Rng rng(11);
  PatternSpec spec;
  spec.accesses = 64;
  spec.offset_range = 1;
  spec.family = PatternFamily::kStrided;
  const auto seq = generate_pattern(spec, rng);
  std::set<std::int64_t> distinct;
  for (std::size_t i = 0; i < seq.size(); ++i) {
    distinct.insert(seq[i].offset);
  }
  EXPECT_GE(distinct.size(), 2u);
}

TEST(Patterns, StridedWideRangeReachesMultipleLatticePoints) {
  support::Rng rng(12);
  PatternSpec spec;
  spec.accesses = 64;
  spec.offset_range = 8;
  spec.family = PatternFamily::kStrided;
  const auto seq = generate_pattern(spec, rng);
  bool beyond_jitter = false;
  for (std::size_t i = 0; i < seq.size(); ++i) {
    beyond_jitter = beyond_jitter || std::llabs(seq[i].offset) >= 2;
  }
  EXPECT_TRUE(beyond_jitter);
}

TEST(Patterns, SortedNoiseActuallyTransposesTheRamp) {
  // Regression: the transposition loop could draw the same index twice
  // (a self-swap), silently producing fewer transpositions than
  // intended. The result must be a genuine permutation of the ramp
  // that differs from it.
  support::Rng rng(13);
  PatternSpec spec;
  spec.accesses = 16;
  spec.offset_range = 8;
  spec.family = PatternFamily::kSortedNoise;
  const auto seq = generate_pattern(spec, rng);

  std::vector<std::int64_t> ramp(spec.accesses);
  for (std::size_t i = 0; i < ramp.size(); ++i) {
    ramp[i] = -8 + static_cast<std::int64_t>(
                       (2 * 8 * i) / (ramp.size() - 1));
  }
  std::vector<std::int64_t> offsets;
  for (std::size_t i = 0; i < seq.size(); ++i) {
    offsets.push_back(seq[i].offset);
  }
  EXPECT_NE(offsets, ramp);
  std::vector<std::int64_t> sorted_offsets = offsets;
  std::sort(sorted_offsets.begin(), sorted_offsets.end());
  EXPECT_EQ(sorted_offsets, ramp);  // same multiset, ramp is sorted
}

TEST(Patterns, SortedNoiseSingletonHasNoSwapsToMake) {
  support::Rng rng(14);
  PatternSpec spec;
  spec.accesses = 1;
  spec.family = PatternFamily::kSortedNoise;
  const auto seq = generate_pattern(spec, rng);
  EXPECT_EQ(seq.size(), 1u);
  EXPECT_EQ(seq[0].offset, 0);
}

TEST(Patterns, RejectsBadSpec) {
  support::Rng rng(1);
  PatternSpec empty;
  empty.accesses = 0;
  EXPECT_THROW(generate_pattern(empty, rng), dspaddr::InvalidArgument);
  PatternSpec negative;
  negative.offset_range = -1;
  EXPECT_THROW(generate_pattern(negative, rng), dspaddr::InvalidArgument);
}

TEST(Patterns, FamilyNames) {
  EXPECT_STREQ(to_string(PatternFamily::kUniform), "uniform");
  EXPECT_STREQ(to_string(PatternFamily::kClustered), "clustered");
  EXPECT_STREQ(to_string(PatternFamily::kStrided), "strided");
  EXPECT_STREQ(to_string(PatternFamily::kSortedNoise), "sorted-noise");
}

TEST(Sweep, SmokeGridProducesAllCells) {
  const SweepConfig config = SweepConfig::smoke_grid();
  const SweepResult result = run_random_pattern_sweep(config);
  EXPECT_EQ(result.cells.size(), config.access_counts.size() *
                                     config.modify_ranges.size() *
                                     config.register_counts.size());
  for (const CellResult& cell : result.cells) {
    EXPECT_EQ(cell.naive_cost.count(), config.trials);
    EXPECT_EQ(cell.merged_cost.count(), config.trials);
  }
}

TEST(Sweep, HeuristicNeverWorseOnAverage) {
  const SweepConfig config = SweepConfig::smoke_grid();
  const SweepResult result = run_random_pattern_sweep(config);
  for (const CellResult& cell : result.cells) {
    EXPECT_LE(cell.merged_cost.mean(), cell.naive_cost.mean())
        << "N=" << cell.cell.accesses << " M=" << cell.cell.modify_range
        << " K=" << cell.cell.registers;
  }
  EXPECT_GE(result.grand_mean_reduction_percent, 0.0);
}

TEST(Sweep, DeterministicInSeed) {
  SweepConfig config = SweepConfig::smoke_grid();
  config.trials = 5;
  const SweepResult a = run_random_pattern_sweep(config);
  const SweepResult b = run_random_pattern_sweep(config);
  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.cells[i].naive_cost.mean(),
                     b.cells[i].naive_cost.mean());
    EXPECT_DOUBLE_EQ(a.cells[i].merged_cost.mean(),
                     b.cells[i].merged_cost.mean());
  }
  EXPECT_DOUBLE_EQ(a.grand_mean_reduction_percent,
                   b.grand_mean_reduction_percent);
}

TEST(Sweep, TightRegisterBudgetShowsRealReduction) {
  // With K = 1..2 and modest M, merging decisions matter; the grand
  // mean reduction should be clearly positive (the paper reports ~40 %
  // on its full grid).
  SweepConfig config;
  config.access_counts = {20, 40};
  config.modify_ranges = {1};
  config.register_counts = {2};
  config.trials = 30;
  const SweepResult result = run_random_pattern_sweep(config);
  EXPECT_GT(result.grand_mean_reduction_percent, 10.0);
}

TEST(Sweep, RejectsZeroTrials) {
  SweepConfig config = SweepConfig::smoke_grid();
  config.trials = 0;
  EXPECT_THROW(run_random_pattern_sweep(config), dspaddr::InvalidArgument);
}

}  // namespace
}  // namespace dspaddr::eval
