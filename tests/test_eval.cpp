#include <gtest/gtest.h>

#include "eval/experiment.hpp"
#include "eval/patterns.hpp"
#include "support/check.hpp"

namespace dspaddr::eval {
namespace {

TEST(Patterns, GeneratesRequestedSize) {
  support::Rng rng(1);
  for (const PatternFamily family :
       {PatternFamily::kUniform, PatternFamily::kClustered,
        PatternFamily::kStrided, PatternFamily::kSortedNoise}) {
    PatternSpec spec;
    spec.accesses = 23;
    spec.offset_range = 9;
    spec.family = family;
    const auto seq = generate_pattern(spec, rng);
    EXPECT_EQ(seq.size(), 23u) << to_string(family);
  }
}

TEST(Patterns, OffsetsStayWithinRange) {
  support::Rng rng(2);
  for (const PatternFamily family :
       {PatternFamily::kUniform, PatternFamily::kClustered,
        PatternFamily::kStrided, PatternFamily::kSortedNoise}) {
    PatternSpec spec;
    spec.accesses = 200;
    spec.offset_range = 7;
    spec.family = family;
    const auto seq = generate_pattern(spec, rng);
    for (std::size_t i = 0; i < seq.size(); ++i) {
      EXPECT_GE(seq[i].offset, -7) << to_string(family);
      EXPECT_LE(seq[i].offset, 7) << to_string(family);
    }
  }
}

TEST(Patterns, AppliesStrideToAllAccesses) {
  support::Rng rng(3);
  PatternSpec spec;
  spec.accesses = 10;
  spec.stride = 4;
  const auto seq = generate_pattern(spec, rng);
  for (std::size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(seq[i].stride, 4);
  }
}

TEST(Patterns, DeterministicGivenRngState) {
  PatternSpec spec;
  spec.accesses = 50;
  support::Rng rng1(77);
  support::Rng rng2(77);
  EXPECT_EQ(generate_pattern(spec, rng1), generate_pattern(spec, rng2));
}

TEST(Patterns, RejectsBadSpec) {
  support::Rng rng(1);
  PatternSpec empty;
  empty.accesses = 0;
  EXPECT_THROW(generate_pattern(empty, rng), dspaddr::InvalidArgument);
  PatternSpec negative;
  negative.offset_range = -1;
  EXPECT_THROW(generate_pattern(negative, rng), dspaddr::InvalidArgument);
}

TEST(Patterns, FamilyNames) {
  EXPECT_STREQ(to_string(PatternFamily::kUniform), "uniform");
  EXPECT_STREQ(to_string(PatternFamily::kClustered), "clustered");
  EXPECT_STREQ(to_string(PatternFamily::kStrided), "strided");
  EXPECT_STREQ(to_string(PatternFamily::kSortedNoise), "sorted-noise");
}

TEST(Sweep, SmokeGridProducesAllCells) {
  const SweepConfig config = SweepConfig::smoke_grid();
  const SweepResult result = run_random_pattern_sweep(config);
  EXPECT_EQ(result.cells.size(), config.access_counts.size() *
                                     config.modify_ranges.size() *
                                     config.register_counts.size());
  for (const CellResult& cell : result.cells) {
    EXPECT_EQ(cell.naive_cost.count(), config.trials);
    EXPECT_EQ(cell.merged_cost.count(), config.trials);
  }
}

TEST(Sweep, HeuristicNeverWorseOnAverage) {
  const SweepConfig config = SweepConfig::smoke_grid();
  const SweepResult result = run_random_pattern_sweep(config);
  for (const CellResult& cell : result.cells) {
    EXPECT_LE(cell.merged_cost.mean(), cell.naive_cost.mean())
        << "N=" << cell.cell.accesses << " M=" << cell.cell.modify_range
        << " K=" << cell.cell.registers;
  }
  EXPECT_GE(result.grand_mean_reduction_percent, 0.0);
}

TEST(Sweep, DeterministicInSeed) {
  SweepConfig config = SweepConfig::smoke_grid();
  config.trials = 5;
  const SweepResult a = run_random_pattern_sweep(config);
  const SweepResult b = run_random_pattern_sweep(config);
  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.cells[i].naive_cost.mean(),
                     b.cells[i].naive_cost.mean());
    EXPECT_DOUBLE_EQ(a.cells[i].merged_cost.mean(),
                     b.cells[i].merged_cost.mean());
  }
  EXPECT_DOUBLE_EQ(a.grand_mean_reduction_percent,
                   b.grand_mean_reduction_percent);
}

TEST(Sweep, TightRegisterBudgetShowsRealReduction) {
  // With K = 1..2 and modest M, merging decisions matter; the grand
  // mean reduction should be clearly positive (the paper reports ~40 %
  // on its full grid).
  SweepConfig config;
  config.access_counts = {20, 40};
  config.modify_ranges = {1};
  config.register_counts = {2};
  config.trials = 30;
  const SweepResult result = run_random_pattern_sweep(config);
  EXPECT_GT(result.grand_mean_reduction_percent, 10.0);
}

TEST(Sweep, RejectsZeroTrials) {
  SweepConfig config = SweepConfig::smoke_grid();
  config.trials = 0;
  EXPECT_THROW(run_random_pattern_sweep(config), dspaddr::InvalidArgument);
}

}  // namespace
}  // namespace dspaddr::eval
