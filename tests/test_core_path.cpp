#include "core/path.hpp"

#include <gtest/gtest.h>

#include "support/check.hpp"

namespace dspaddr::core {
namespace {

TEST(Path, ConstructionRequiresStrictlyIncreasingIndices) {
  EXPECT_NO_THROW(Path({0, 2, 5}));
  EXPECT_THROW(Path({0, 2, 2}), dspaddr::InvalidArgument);
  EXPECT_THROW(Path({3, 1}), dspaddr::InvalidArgument);
}

TEST(Path, SingletonAndAccessors) {
  const Path p = Path::singleton(4);
  EXPECT_EQ(p.size(), 1u);
  EXPECT_EQ(p.first(), 4u);
  EXPECT_EQ(p.last(), 4u);
  EXPECT_EQ(p[0], 4u);
  EXPECT_THROW(p[1], dspaddr::InvalidArgument);
}

TEST(Path, EmptyPathAccessorsThrow) {
  const Path p;
  EXPECT_TRUE(p.empty());
  EXPECT_THROW(p.first(), dspaddr::InvalidArgument);
  EXPECT_THROW(p.last(), dspaddr::InvalidArgument);
}

TEST(Path, AppendEnforcesOrder) {
  Path p = Path::singleton(2);
  p.append(5);
  EXPECT_EQ(p.last(), 5u);
  EXPECT_THROW(p.append(5), dspaddr::InvalidArgument);
  EXPECT_THROW(p.append(1), dspaddr::InvalidArgument);
}

TEST(Path, MergeInterleavesInSequenceOrder) {
  // The paper's example: (a1, a4, a6) ⊕ (a3, a5) = (a1, a3, a4, a5, a6);
  // indices here are 0-based.
  const Path p1({0, 3, 5});
  const Path p2({2, 4});
  const Path merged = merge(p1, p2);
  EXPECT_EQ(merged.indices(), (std::vector<std::size_t>{0, 2, 3, 4, 5}));
}

TEST(Path, MergeIsSymmetric) {
  const Path p1({1, 7});
  const Path p2({3});
  EXPECT_EQ(merge(p1, p2), merge(p2, p1));
}

TEST(Path, MergeWithEmpty) {
  const Path p({2, 4});
  EXPECT_EQ(merge(p, Path()), p);
}

TEST(Path, MergeRejectsOverlap) {
  EXPECT_THROW(merge(Path({1, 2}), Path({2, 3})), dspaddr::InvalidArgument);
}

TEST(Path, ToStringUsesOneBasedAccessNames) {
  EXPECT_EQ(Path({0, 2}).to_string(), "(a_1, a_3)");
  EXPECT_EQ(Path().to_string(), "()");
}

TEST(PathCost, CountsUnitCostTransitions) {
  // Offsets: 1 0 2 -1 1 0 -2 (the paper example), M = 1.
  const auto seq = ir::AccessSequence::from_offsets({1, 0, 2, -1, 1, 0, -2});
  const CostModel model{1, WrapPolicy::kCyclic};

  // Path (a1, a3, a5, a6): offsets 1, 2, 1, 0 — intra free throughout;
  // wrap from offset 0 to offset 1+1 = 2 costs 1.
  const Path p({0, 2, 4, 5});
  EXPECT_EQ(path_intra_cost(seq, p, model), 0);
  EXPECT_EQ(path_wrap_cost(seq, p, model), 1);
  EXPECT_EQ(path_cost(seq, p, model), 1);

  // Path (a2, a3): offsets 0 -> 2, distance 2 > 1.
  const Path q({1, 2});
  EXPECT_EQ(path_intra_cost(seq, q, model), 1);
}

TEST(PathCost, AcyclicPolicyDropsWrap) {
  const auto seq = ir::AccessSequence::from_offsets({1, 0, 2, -1, 1, 0, -2});
  const CostModel acyclic{1, WrapPolicy::kAcyclic};
  const Path p({0, 2, 4, 5});
  EXPECT_EQ(path_cost(seq, p, acyclic), 0);
}

TEST(PathCost, EmptyAndSingleton) {
  const auto seq = ir::AccessSequence::from_offsets({3});
  const CostModel model{1, WrapPolicy::kCyclic};
  EXPECT_EQ(path_cost(seq, Path(), model), 0);
  // Singleton wrap: distance = stride = 1 <= M.
  EXPECT_EQ(path_cost(seq, Path::singleton(0), model), 0);
}

TEST(PathCost, TotalCostSumsPaths) {
  const auto seq = ir::AccessSequence::from_offsets({0, 5, 0, 5});
  const CostModel model{1, WrapPolicy::kCyclic};
  const std::vector<Path> paths{Path({0, 1}), Path({2, 3})};
  // Each path: intra 0 -> 5 costs 1; wrap 5 -> 0+1 distance -4 costs 1.
  EXPECT_EQ(total_cost(seq, paths, model), 4);
}

TEST(PathCost, MergeCostExampleFromPaper) {
  // Merging two zero-cost paths incurs at least one unit cost
  // (implication stated in section 3.2).
  const auto seq = ir::AccessSequence::from_offsets({1, 0, 2, -1, 1, 0, -2});
  const CostModel model{1, WrapPolicy::kCyclic};
  const Path a({0, 2});   // offsets 1, 2
  const Path b({1, 3});   // offsets 0, -1
  const Path merged = merge(a, b);
  EXPECT_GE(path_cost(seq, merged, model),
            path_cost(seq, a, model) + path_cost(seq, b, model));
}

}  // namespace
}  // namespace dspaddr::core
