#include "eval/report.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace dspaddr::eval {
namespace {

SweepResult small_sweep() {
  SweepConfig config = SweepConfig::smoke_grid();
  config.trials = 5;
  return run_random_pattern_sweep(config);
}

TEST(Report, CsvHasOneRowPerCell) {
  const SweepResult result = small_sweep();
  const support::CsvWriter csv = sweep_to_csv(result);
  EXPECT_EQ(csv.row_count(), result.cells.size());
  const std::string text = csv.to_string();
  EXPECT_NE(text.find("n,m,k,"), std::string::npos);
  // Header + rows, newline-terminated.
  std::size_t lines = 0;
  for (char c : text) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, result.cells.size() + 1);
}

TEST(Report, CsvIsMachineParsable) {
  const SweepResult result = small_sweep();
  const std::string text = sweep_to_csv(result).to_string();
  std::istringstream in(text);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));  // header
  std::size_t field_count = std::count(line.begin(), line.end(), ',') + 1;
  while (std::getline(in, line)) {
    EXPECT_EQ(
        static_cast<std::size_t>(
            std::count(line.begin(), line.end(), ',') + 1),
        field_count);
  }
}

TEST(Report, TableMirrorsCells) {
  const SweepResult result = small_sweep();
  const support::Table table = sweep_to_table(result);
  EXPECT_EQ(table.row_count(), result.cells.size());
  const std::string text = table.to_string();
  EXPECT_NE(text.find("path-merge cost"), std::string::npos);
}

TEST(Report, SummaryQuotesGrandAverage) {
  const SweepResult result = small_sweep();
  const std::string summary = sweep_summary(result);
  EXPECT_NE(summary.find("paper: ~40 %"), std::string::npos);
  EXPECT_NE(summary.find(std::to_string(result.cells.size())),
            std::string::npos);
}

}  // namespace
}  // namespace dspaddr::eval
