#include "support/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>
#include <vector>

namespace dspaddr::support {
namespace {

TEST(SplitMix64, ProducesKnownGoodStream) {
  // Reference values for seed 0 from the splitmix64 reference
  // implementation.
  std::uint64_t state = 0;
  EXPECT_EQ(splitmix64(state), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(splitmix64(state), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(splitmix64(state), 0x06c45d188009454fULL);
}

TEST(Rng, IsDeterministicForEqualSeeds) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DiffersAcrossSeeds) {
  Rng a(1);
  Rng b(2);
  int differences = 0;
  for (int i = 0; i < 16; ++i) {
    if (a() != b()) ++differences;
  }
  EXPECT_GT(differences, 0);
}

TEST(Rng, UniformIntStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.uniform_int(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, UniformIntSingletonRange) {
  Rng rng(7);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rng.uniform_int(3, 3), 3);
  }
}

TEST(Rng, UniformIntHitsAllValuesOfSmallRange) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 200; ++i) {
    seen.insert(rng.uniform_int(0, 3));
  }
  EXPECT_EQ(seen.size(), 4u);
}

TEST(Rng, UniformIntRejectsEmptyRange) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_int(2, 1), InvalidArgument);
}

TEST(Rng, UniformIntIsRoughlyBalanced) {
  Rng rng(13);
  constexpr int kDraws = 20000;
  std::vector<int> histogram(10, 0);
  for (int i = 0; i < kDraws; ++i) {
    ++histogram[static_cast<std::size_t>(rng.uniform_int(0, 9))];
  }
  for (int count : histogram) {
    // Expected 2000 per bucket; allow +-15 %.
    EXPECT_GT(count, 1700);
    EXPECT_LT(count, 2300);
  }
}

TEST(Rng, UniformRealInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform_real();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, IndexCoversRangeAndRejectsEmpty) {
  Rng rng(17);
  std::set<std::size_t> seen;
  for (int i = 0; i < 100; ++i) {
    const std::size_t v = rng.index(5);
    EXPECT_LT(v, 5u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_THROW(rng.index(0), InvalidArgument);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(23);
  std::vector<int> values(50);
  std::iota(values.begin(), values.end(), 0);
  std::vector<int> shuffled = values;
  rng.shuffle(shuffled);
  EXPECT_FALSE(std::equal(values.begin(), values.end(), shuffled.begin()) &&
               values.size() > 10);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(values, shuffled);
}

TEST(Rng, ShuffleEmptyAndSingleton) {
  Rng rng(29);
  std::vector<int> empty;
  rng.shuffle(empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{7};
  rng.shuffle(one);
  EXPECT_EQ(one, std::vector<int>{7});
}

}  // namespace
}  // namespace dspaddr::support
