// The engine API: stage-structured results, fingerprint caching, and
// byte-identical parity with the pre-refactor pipeline output.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <fstream>
#include <limits>
#include <sstream>
#include <thread>
#include <vector>

#include "agu/machines.hpp"
#include "cli/kernel_io.hpp"
#include "engine/engine.hpp"
#include "engine/fingerprint.hpp"
#include "engine/serialize.hpp"
#include "eval/batch.hpp"
#include "ir/kernels.hpp"
#include "ir/layout.hpp"

namespace dspaddr {
namespace {

const std::string kSourceRoot = std::string(DSPADDR_SOURCE_DIR);

engine::Request fir_request() {
  engine::Request request;
  request.kernel = ir::builtin_kernel("fir");
  request.machine = agu::builtin_machine("wide4");
  return request;
}

std::string read_file(const std::string& path) {
  std::ifstream file(path);
  EXPECT_TRUE(file.good()) << "cannot open " << path;
  std::ostringstream content;
  content << file.rdbuf();
  return content.str();
}

// ---------------------------------------------------------------- stages

TEST(EngineStages, NamesRoundTrip) {
  for (std::size_t i = 0; i < engine::kStageCount; ++i) {
    const engine::Stage stage = static_cast<engine::Stage>(i);
    EXPECT_EQ(engine::stage_from_name(engine::stage_name(stage)), stage);
  }
  EXPECT_FALSE(engine::stage_from_name("bogus").has_value());
}

TEST(EngineStages, FullRunCompletesAllStages) {
  engine::Engine engine;
  const engine::Result result = engine.run(fir_request());
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.verified);
  for (std::size_t i = 0; i < engine::kStageCount; ++i) {
    EXPECT_TRUE(result.stage_done(static_cast<engine::Stage>(i)));
  }
  EXPECT_GT(result.total_ms, 0.0);
}

TEST(EngineStages, StopAfterRunsOnlyThePrefix) {
  engine::Engine engine;
  engine::Request request = fir_request();
  request.stop_after = engine::Stage::kAllocate;
  const engine::Result result = engine.run(request);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.stage_done(engine::Stage::kLower));
  EXPECT_TRUE(result.stage_done(engine::Stage::kAllocate));
  EXPECT_FALSE(result.stage_done(engine::Stage::kPlan));
  EXPECT_FALSE(result.stage_done(engine::Stage::kSimulate));
  // Later-stage outputs keep their defaults.
  EXPECT_TRUE(result.program.setup.empty());
  EXPECT_TRUE(result.program.body.empty());
  EXPECT_FALSE(result.verified);
  EXPECT_EQ(result.iterations, 0u);
  // The prefix is a distinct cache entry from the full run.
  const engine::Result full = engine.run(fir_request());
  EXPECT_FALSE(full.cache_hit);
  EXPECT_TRUE(full.verified);
}

TEST(EngineStages, FailureIsStructuredNotThrown) {
  engine::Engine engine;
  engine::Request request = fir_request();
  request.machine.set_address_registers(0);
  engine::Result result;
  ASSERT_NO_THROW(result = engine.run(request));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error->stage, engine::Stage::kAllocate);
  EXPECT_FALSE(result.error->message.empty());
  // The stage before the failure completed; the failing one did not.
  EXPECT_TRUE(result.stage_done(engine::Stage::kLower));
  EXPECT_GT(result.accesses, 0u);
  EXPECT_FALSE(result.stage_done(engine::Stage::kAllocate));
}

// ----------------------------------------------------------- fingerprint

TEST(EngineFingerprint, IgnoresNamesButNotResources) {
  const engine::Request base = fir_request();
  const ir::AccessSequence seq = ir::lower(base.kernel);
  const std::string key = engine::request_fingerprint(base, seq);

  engine::Request renamed = base;
  renamed.machine.name = "elsewhere";
  EXPECT_EQ(engine::request_fingerprint(renamed, seq), key);

  engine::Request more_registers = base;
  more_registers.machine.set_address_registers(
      more_registers.machine.address_registers() + 1);
  EXPECT_NE(engine::request_fingerprint(more_registers, seq), key);

  // v3 keys on the full machine spec: a window with the same M
  // magnitude but a different shape must not alias the symmetric one,
  // and neither must free widths or the addressing mode.
  engine::Request asymmetric = base;
  asymmetric.machine.modify_lo = 0;
  EXPECT_NE(engine::request_fingerprint(asymmetric, seq), key);

  engine::Request widths = base;
  widths.machine.free_widths = {4};
  EXPECT_NE(engine::request_fingerprint(widths, seq), key);

  engine::Request pre = base;
  pre.machine.addressing = agu::Addressing::kPreModify;
  EXPECT_NE(engine::request_fingerprint(pre, seq), key);

  engine::Request other_phase2 = base;
  other_phase2.phase2.mode = core::Phase2Options::Mode::kHeuristic;
  EXPECT_NE(engine::request_fingerprint(other_phase2, seq), key);

  engine::Request prefix = base;
  prefix.stop_after = engine::Stage::kAllocate;
  EXPECT_NE(engine::request_fingerprint(prefix, seq), key);

  engine::Request more_iterations = base;
  more_iterations.iterations = 1000;
  EXPECT_NE(engine::request_fingerprint(more_iterations, seq), key);
}

// ----------------------------------------------------------------- cache

TEST(EngineCache, RepeatedRequestHitsAndIsEqual) {
  engine::Engine engine;
  const engine::Result first = engine.run(fir_request());
  const engine::Result second = engine.run(fir_request());
  EXPECT_FALSE(first.cache_hit);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(engine::result_to_json_line(first),
            engine::result_to_json_line(second));
  const engine::CacheStats stats = engine.cache_stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(EngineCache, HitAppliesTheCallersDecoration) {
  engine::Engine engine;
  engine.run(fir_request());

  engine::Request renamed = fir_request();
  renamed.machine.name = "twin";
  ir::Kernel twin("fir_twin", "structural twin of fir");
  for (const ir::ArrayDecl& array : renamed.kernel.arrays()) {
    twin.add_array(array.name, array.size);
  }
  twin.set_iterations(renamed.kernel.iterations());
  twin.set_data_ops(renamed.kernel.data_ops());
  for (const ir::KernelAccess& access : renamed.kernel.accesses()) {
    twin.add_access(access.array, access.offset, access.stride,
                    access.is_write);
  }
  renamed.kernel = twin;

  const engine::Result result = engine.run(renamed);
  EXPECT_TRUE(result.cache_hit);
  EXPECT_EQ(result.kernel.name(), "fir_twin");
  EXPECT_EQ(result.machine.name, "twin");
  const eval::BatchRow row = eval::row_from_result(result);
  EXPECT_EQ(row.kernel, "fir_twin");
  EXPECT_EQ(row.machine, "twin");
}

TEST(EngineCache, CapacityZeroDisablesCaching) {
  engine::Engine engine(engine::Engine::Options{0});
  engine.run(fir_request());
  const engine::Result second = engine.run(fir_request());
  EXPECT_FALSE(second.cache_hit);
  const engine::CacheStats stats = engine.cache_stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.entries, 0u);
}

TEST(EngineCache, LruEvictsTheColdestEntry) {
  // Pinned to one shard: LRU order is a per-shard property of the
  // striped cache, so only a single stripe makes "coldest" global.
  engine::Engine engine(engine::Engine::Options{2, 1});
  engine::Request biquad = fir_request();
  biquad.kernel = ir::builtin_kernel("biquad");
  engine::Request matmul = fir_request();
  matmul.kernel = ir::builtin_kernel("matmul");

  engine.run(fir_request());                     // {fir}
  engine.run(biquad);                            // {biquad, fir}
  EXPECT_TRUE(engine.run(fir_request()).cache_hit);  // {fir, biquad}
  engine.run(matmul);                            // {matmul, fir} — biquad out
  EXPECT_EQ(engine.cache_stats().entries, 2u);
  EXPECT_TRUE(engine.run(fir_request()).cache_hit);
  EXPECT_FALSE(engine.run(biquad).cache_hit);
}

TEST(EngineCache, ClearCacheForgetsResultsAndReportsTheDropCount) {
  engine::Engine engine;
  engine.run(fir_request());
  engine::Request biquad = fir_request();
  biquad.kernel = ir::builtin_kernel("biquad");
  engine.run(biquad);
  EXPECT_EQ(engine.clear_cache(), 2u);
  EXPECT_EQ(engine.cache_stats().entries, 0u);
  EXPECT_FALSE(engine.run(fir_request()).cache_hit);
  EXPECT_EQ(engine.clear_cache(), 1u);
}

TEST(EngineCache, StatsAggregateTheShardSplit) {
  // Per-shard capacity (16/4 = 4) holds every key even if all four
  // fingerprints hash into one shard: the test checks the aggregation,
  // not the hash distribution, so it must not depend on how the
  // fingerprint string happens to spread.
  engine::Engine engine(engine::Engine::Options{16, 4});
  for (const char* name : {"fir", "biquad", "matmul", "dotprod"}) {
    engine::Request request = fir_request();
    request.kernel = ir::builtin_kernel(name);
    engine.run(request);
    engine.run(request);
  }
  const engine::CacheStats stats = engine.cache_stats();
  EXPECT_EQ(stats.hits, 4u);
  EXPECT_EQ(stats.misses, 4u);
  EXPECT_EQ(stats.entries, 4u);
  EXPECT_EQ(stats.capacity, 16u);
  EXPECT_EQ(stats.evictions, 0u);
  ASSERT_EQ(stats.shards.size(), 4u);
  runtime::CacheCounters sum;
  for (const runtime::CacheCounters& shard : stats.shards) {
    sum.hits += shard.hits;
    sum.misses += shard.misses;
    sum.evictions += shard.evictions;
    sum.entries += shard.entries;
    sum.capacity += shard.capacity;
  }
  EXPECT_EQ(sum.hits, stats.hits);
  EXPECT_EQ(sum.misses, stats.misses);
  EXPECT_EQ(sum.entries, stats.entries);
  EXPECT_EQ(sum.capacity, stats.capacity);
}

TEST(EngineCache, EvictionsAreCounted) {
  // Capacity 1, one shard: every new fingerprint evicts the previous.
  engine::Engine engine(engine::Engine::Options{1, 1});
  for (const char* name : {"fir", "biquad", "matmul"}) {
    engine::Request request = fir_request();
    request.kernel = ir::builtin_kernel(name);
    engine.run(request);
  }
  const engine::CacheStats stats = engine.cache_stats();
  EXPECT_EQ(stats.misses, 3u);
  EXPECT_EQ(stats.evictions, 2u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(EngineCache, ConcurrentDuplicateMissesComputeOnce) {
  // Eight threads race the same cold request: single-flight, so
  // exactly one computes (one miss), the rest are answered as hits —
  // whatever the interleaving. That determinism is what lets serve
  // report byte-identical stats at every --jobs level.
  engine::Engine engine;
  constexpr std::size_t kThreads = 8;
  std::vector<std::string> seen(kThreads);
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      seen[t] = engine::result_to_json_line(engine.run(fir_request()));
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  for (std::size_t t = 1; t < kThreads; ++t) {
    EXPECT_EQ(seen[t], seen[0]);
  }
  const engine::CacheStats stats = engine.cache_stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, kThreads - 1);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(EngineCache, DeterministicUnderConcurrentRuns) {
  // Several workers hammer the same small request set on one shared
  // engine; every answer must equal the single-threaded reference.
  std::vector<engine::Request> requests;
  for (const char* name : {"fir", "biquad", "matmul", "dotprod"}) {
    engine::Request request;
    request.kernel = ir::builtin_kernel(name);
    request.machine = agu::builtin_machine("minimal2");
    requests.push_back(request);
  }
  std::vector<std::string> reference;
  {
    engine::Engine engine;
    for (const engine::Request& request : requests) {
      reference.push_back(engine::result_to_json_line(engine.run(request)));
    }
  }

  engine::Engine shared;
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kRounds = 5;
  std::vector<std::vector<std::string>> seen(kThreads);
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t round = 0; round < kRounds; ++round) {
        for (const engine::Request& request : requests) {
          seen[t].push_back(
              engine::result_to_json_line(shared.run(request)));
        }
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  for (std::size_t t = 0; t < kThreads; ++t) {
    ASSERT_EQ(seen[t].size(), kRounds * requests.size());
    for (std::size_t i = 0; i < seen[t].size(); ++i) {
      EXPECT_EQ(seen[t][i], reference[i % requests.size()]);
    }
  }
  const engine::CacheStats stats = shared.cache_stats();
  EXPECT_EQ(stats.hits + stats.misses, kThreads * kRounds * requests.size());
  EXPECT_GE(stats.misses, requests.size());
  EXPECT_EQ(stats.entries, requests.size());
}

TEST(EngineCache, WarmHitsAreFarFasterThanColdRuns) {
  // The bench measures this properly; here we only guard the order of
  // magnitude: a warm hit skips allocation + simulation entirely, so
  // even a conservative 5x margin holds with room to spare.
  engine::Request request;
  request.kernel = ir::builtin_kernel("paper_example");
  request.machine = agu::builtin_machine("minimal2");
  request.phase2.mode = core::Phase2Options::Mode::kExact;

  engine::Engine engine;
  using Clock = std::chrono::steady_clock;
  const auto cold_start = Clock::now();
  const engine::Result cold = engine.run(request);
  const double cold_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - cold_start)
          .count();
  ASSERT_FALSE(cold.cache_hit);

  // The *minimum* warm time is the robust statistic here: a mean is
  // inflated arbitrarily when the test is descheduled mid-loop on a
  // loaded runner, and it only takes one clean hit to prove the cache
  // path is an order of magnitude cheaper than recomputing.
  constexpr int kWarmRuns = 200;
  double warm_ms = std::numeric_limits<double>::infinity();
  for (int i = 0; i < kWarmRuns; ++i) {
    const auto warm_start = Clock::now();
    ASSERT_TRUE(engine.run(request).cache_hit);
    warm_ms = std::min(
        warm_ms, std::chrono::duration<double, std::milli>(Clock::now() -
                                                           warm_start)
                     .count());
  }
  EXPECT_GT(cold_ms, 5.0 * warm_ms)
      << "cold " << cold_ms << " ms vs warm (min) " << warm_ms << " ms";
}

// ---------------------------------------------------------------- parity

// The engine-backed batch runner must reproduce the pre-refactor CSV
// byte for byte (goldens captured from the last direct-pipeline build).

TEST(EngineParity, WorkloadGridMatchesGoldenCsv) {
  eval::BatchConfig config;
  for (const char* name :
       {"fir16.kern", "gradient.c", "paper_example.c", "smooth3.c",
        "stereo_mix.kern"}) {
    config.kernels.push_back(
        cli::load_kernel_file(kSourceRoot + "/workloads/" + name));
  }
  config.machines = agu::builtin_machines();
  config.jobs = 4;
  const std::string csv = eval::batch_to_csv(eval::run_batch(config)).to_string();
  EXPECT_EQ(csv, read_file(kSourceRoot + "/tests/golden/batch_workloads.csv"));
}

TEST(EngineParity, BuiltinGridMatchesGoldenCsv) {
  eval::BatchConfig config;
  config.kernels = {ir::builtin_kernel("fir"), ir::builtin_kernel("biquad"),
                    ir::builtin_kernel("matmul")};
  config.machines = {agu::builtin_machine("minimal2"),
                     agu::builtin_machine("wide4"),
                     agu::builtin_machine("adsp218x")};
  config.register_counts = {1, 2, 4};
  config.modify_ranges = {1, 2};
  config.jobs = 4;
  const std::string csv = eval::batch_to_csv(eval::run_batch(config)).to_string();
  EXPECT_EQ(csv,
            read_file(kSourceRoot + "/tests/golden/batch_small_grid.csv"));
}

TEST(EngineParity, MachineRegistryGridMatchesGoldenCsv) {
  // The whole machine registry — builtin catalog plus every shipped
  // file-only target — so asymmetric windows, free widths and
  // pre-modify addressing stay pinned byte for byte.
  agu::MachineRegistry registry = agu::MachineRegistry::with_builtins();
  for (const char* file : {"msp430x.machine", "arm946e.machine",
                           "dsp56300.machine", "arm946e_wb.machine"}) {
    registry.load_file(kSourceRoot + "/workloads/machines/" + file);
  }
  eval::BatchConfig config;
  config.kernels = {ir::builtin_kernel("fir"), ir::builtin_kernel("biquad")};
  config.machines = registry.all();
  config.jobs = 4;
  const std::string csv =
      eval::batch_to_csv(eval::run_batch(config)).to_string();
  EXPECT_EQ(csv, read_file(kSourceRoot +
                           "/tests/golden/batch_machines_grid.csv"));
}

TEST(EngineParity, SharedEngineAcrossSweepsKeepsCsvIdentical) {
  eval::BatchConfig config;
  config.kernels = {ir::builtin_kernel("fir"), ir::builtin_kernel("biquad")};
  config.machines = {agu::builtin_machine("minimal2"),
                     agu::builtin_machine("wide4")};
  config.register_counts = {1, 2};
  config.jobs = 4;

  engine::Engine engine;
  const std::string first =
      eval::batch_to_csv(eval::run_batch(config, engine)).to_string();
  const std::string second =
      eval::batch_to_csv(eval::run_batch(config, engine)).to_string();
  EXPECT_EQ(first, second);
  // The second sweep was answered from the cache.
  EXPECT_GE(engine.cache_stats().hits, 8u);
}

// ------------------------------------------------------------- serialize

TEST(EngineSerialize, JsonCarriesAllStages) {
  engine::Engine engine;
  const engine::Result result = engine.run(fir_request());
  const support::JsonValue json =
      support::JsonValue::parse(engine::result_to_json_line(result));
  EXPECT_EQ(json.find("kernel")->find("name")->as_string(), "fir");
  EXPECT_EQ(json.find("machine")->find("registers")->as_int(), 4);
  EXPECT_EQ(json.find("stop_after")->as_string(), "metrics");
  EXPECT_EQ(json.find("error"), nullptr);
  const support::JsonValue* stages = json.find("stages");
  ASSERT_NE(stages, nullptr);
  for (const char* stage :
       {"lower", "allocate", "plan", "codegen", "simulate", "metrics"}) {
    EXPECT_NE(stages->find(stage), nullptr) << stage;
  }
  EXPECT_TRUE(
      stages->find("simulate")->find("verified")->as_bool());
}

TEST(EngineSerialize, JsonOmitsStagesAfterStopOrError) {
  engine::Engine engine;
  engine::Request prefix = fir_request();
  prefix.stop_after = engine::Stage::kPlan;
  const support::JsonValue json = support::JsonValue::parse(
      engine::result_to_json_line(engine.run(prefix)));
  const support::JsonValue* stages = json.find("stages");
  ASSERT_NE(stages, nullptr);
  EXPECT_NE(stages->find("plan"), nullptr);
  EXPECT_EQ(stages->find("codegen"), nullptr);
  EXPECT_EQ(stages->find("simulate"), nullptr);

  engine::Request broken = fir_request();
  broken.machine.set_address_registers(0);
  const support::JsonValue failed = support::JsonValue::parse(
      engine::result_to_json_line(engine.run(broken)));
  ASSERT_NE(failed.find("error"), nullptr);
  EXPECT_EQ(failed.find("error")->find("stage")->as_string(), "allocate");
  EXPECT_NE(failed.find("stages")->find("lower"), nullptr);
  EXPECT_EQ(failed.find("stages")->find("allocate"), nullptr);
}

TEST(EngineSerialize, KernelFromJsonRoundTrips) {
  const support::JsonValue json = support::JsonValue::parse(R"({
    "name": "tiny", "iterations": 4, "data_ops": 2,
    "arrays": [{"name": "A", "size": 8}],
    "accesses": [{"array": "A", "offset": 1},
                 {"array": "A", "offset": 0, "stride": 2, "write": true}]
  })");
  const ir::Kernel kernel = engine::kernel_from_json(json);
  EXPECT_EQ(kernel.name(), "tiny");
  EXPECT_EQ(kernel.iterations(), 4);
  EXPECT_EQ(kernel.data_ops(), 2);
  ASSERT_EQ(kernel.accesses().size(), 2u);
  EXPECT_EQ(kernel.accesses()[1].stride, 2);
  EXPECT_TRUE(kernel.accesses()[1].is_write);

  EXPECT_THROW(
      engine::kernel_from_json(support::JsonValue::parse("{\"a\":1}")),
      Error);
  EXPECT_THROW(engine::kernel_from_json(support::JsonValue::parse("[]")),
               Error);
}

}  // namespace
}  // namespace dspaddr
