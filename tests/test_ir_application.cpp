#include "ir/application.hpp"

#include <gtest/gtest.h>

#include <set>

#include "agu/codegen.hpp"
#include "agu/metrics.hpp"
#include "agu/simulator.hpp"
#include "core/allocator.hpp"
#include "ir/kernels.hpp"
#include "ir/layout.hpp"
#include "support/check.hpp"

namespace dspaddr::ir {
namespace {

TEST(Application, BuilderValidation) {
  EXPECT_THROW(Application("", ""), dspaddr::InvalidArgument);
  Application app("a", "");
  EXPECT_THROW(app.add_kernel(Kernel("empty", "")),
               dspaddr::InvalidArgument);
  app.add_kernel(fir_kernel());
  EXPECT_EQ(app.size(), 1u);
}

TEST(Application, CatalogIsWellFormed) {
  const auto apps = builtin_applications();
  EXPECT_GE(apps.size(), 4u);
  std::set<std::string> names;
  for (const Application& app : apps) {
    SCOPED_TRACE(app.name());
    EXPECT_FALSE(app.name().empty());
    EXPECT_FALSE(app.description().empty());
    EXPECT_GE(app.size(), 3u) << "applications are multi-loop";
    names.insert(app.name());
  }
  EXPECT_EQ(names.size(), apps.size());
}

TEST(Application, LookupByName) {
  EXPECT_EQ(builtin_application("modem_frontend").name(),
            "modem_frontend");
  EXPECT_THROW(builtin_application("spreadsheet"),
               dspaddr::InvalidArgument);
}

TEST(Application, WholeProgramMetricsSumKernels) {
  const Application app = modem_frontend_app();
  core::ProblemConfig config;
  config.modify_range = 1;
  config.registers = 4;
  const agu::AddressingComparison whole =
      agu::compare_addressing(app, config);

  std::int64_t size_sum = 0;
  std::int64_t cycles_sum = 0;
  for (const Kernel& kernel : app.kernels()) {
    const agu::AddressingComparison part =
        agu::compare_addressing(kernel, config);
    size_sum += part.optimized.size_words;
    cycles_sum += part.optimized.cycles;
  }
  EXPECT_EQ(whole.optimized.size_words, size_sum);
  EXPECT_EQ(whole.optimized.cycles, cycles_sum);
  EXPECT_GT(whole.speed_reduction_percent, 0.0);
  EXPECT_GT(whole.size_reduction_percent, 0.0);
}

TEST(Application, EveryLoopOfEveryAppSimulatesCorrectly) {
  core::ProblemConfig config;
  config.modify_range = 1;
  config.registers = 4;
  for (const Application& app : builtin_applications()) {
    for (std::size_t loop = 0; loop < app.size(); ++loop) {
      const Kernel& kernel = app.kernels()[loop];
      SCOPED_TRACE(app.name() + " loop " + std::to_string(loop) + " (" +
                   kernel.name() + ")");
      const AccessSequence seq = lower(kernel);
      const core::Allocation a =
          core::RegisterAllocator(config).run(seq);
      const agu::Program p = agu::generate_code(seq, a);
      const agu::SimResult r = agu::Simulator{}.run(
          p, seq, static_cast<std::uint64_t>(kernel.iterations()));
      EXPECT_TRUE(r.verified) << r.failure;
    }
  }
}

TEST(Application, SpeedGainExceedsSizeGainProgramWide) {
  // The 30/60 asymmetry of [1] must survive aggregation.
  core::ProblemConfig config;
  config.modify_range = 1;
  config.registers = 8;
  for (const Application& app : builtin_applications()) {
    SCOPED_TRACE(app.name());
    const agu::AddressingComparison c =
        agu::compare_addressing(app, config);
    EXPECT_GT(c.speed_reduction_percent, c.size_reduction_percent);
  }
}

}  // namespace
}  // namespace dspaddr::ir
