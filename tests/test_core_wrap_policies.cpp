// Relationships between the cyclic (steady-state) and acyclic
// (matching-solvable) cost models — see DESIGN.md section 1.
#include <gtest/gtest.h>

#include "core/access_graph.hpp"
#include "core/allocator.hpp"
#include "core/branch_and_bound.hpp"
#include "eval/patterns.hpp"
#include "support/rng.hpp"

namespace dspaddr::core {
namespace {

using ir::AccessSequence;

TEST(WrapPolicies, AcyclicCostNeverExceedsCyclicForFixedPaths) {
  const auto seq = AccessSequence::from_offsets({1, 0, 2, -1, 1, 0, -2});
  const std::vector<Path> paths{Path({0, 2, 4, 5}), Path({1, 3, 6})};
  const CostModel cyclic{1, WrapPolicy::kCyclic};
  const CostModel acyclic{1, WrapPolicy::kAcyclic};
  EXPECT_LE(total_cost(seq, paths, acyclic),
            total_cost(seq, paths, cyclic));
}

TEST(WrapPolicies, PoliciesShareIntraEdges) {
  const auto seq = AccessSequence::from_offsets({4, -3, 2, 0, 1});
  const AccessGraph cyclic(seq, CostModel{2, WrapPolicy::kCyclic});
  const AccessGraph acyclic(seq, CostModel{2, WrapPolicy::kAcyclic});
  EXPECT_EQ(cyclic.intra().edges(), acyclic.intra().edges());
}

class WrapPolicyPropertyTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WrapPolicyPropertyTest, FixedAllocationCostsAreOrdered) {
  // For any fixed set of paths, dropping the wrap charge can only
  // lower the cost: cyclic >= acyclic >= intra-only lower bounds.
  support::Rng rng(GetParam() * 43 + 11);
  eval::PatternSpec spec;
  spec.accesses = 6 + rng.index(20);
  spec.offset_range = 8;
  const auto seq = eval::generate_pattern(spec, rng);

  ProblemConfig config;
  config.modify_range = 1 + rng.uniform_int(0, 2);
  config.registers = 1 + rng.index(4);
  const Allocation a = RegisterAllocator(config).run(seq);

  const CostModel cyclic{config.modify_range, WrapPolicy::kCyclic};
  const CostModel acyclic{config.modify_range, WrapPolicy::kAcyclic};
  EXPECT_LE(total_cost(seq, a.paths(), acyclic),
            total_cost(seq, a.paths(), cyclic));
  EXPECT_EQ(total_cost(seq, a.paths(), cyclic), a.cost());
}

TEST_P(WrapPolicyPropertyTest, AcyclicKTildeBoundsCyclicKTilde) {
  // Every zero-cost cyclic cover is also a zero-cost acyclic cover, so
  // the acyclic optimum (the matching bound) can never exceed the
  // cyclic optimum.
  support::Rng rng(GetParam() * 67 + 23);
  eval::PatternSpec spec;
  spec.accesses = 4 + rng.index(12);  // exact search stays cheap
  spec.offset_range = 5;
  const auto seq = eval::generate_pattern(spec, rng);
  const std::int64_t m = 1 + rng.uniform_int(0, 1);

  Phase1Options exact;
  exact.mode = Phase1Options::Mode::kExact;

  const AccessGraph acyclic_graph(seq, CostModel{m, WrapPolicy::kAcyclic});
  const Phase1Result acyclic =
      compute_min_register_cover(acyclic_graph, exact);

  const AccessGraph cyclic_graph(seq, CostModel{m, WrapPolicy::kCyclic});
  const Phase1Result cyclic =
      compute_min_register_cover(cyclic_graph, exact);

  ASSERT_TRUE(acyclic.k_tilde.has_value());
  ASSERT_TRUE(cyclic.k_tilde.has_value());  // unit stride, s <= M
  EXPECT_LE(*acyclic.k_tilde, *cyclic.k_tilde);
  // And the matching lower bound is exactly the acyclic optimum.
  EXPECT_EQ(cyclic.lower_bound, *acyclic.k_tilde);
}

TEST_P(WrapPolicyPropertyTest, AcyclicAllocatorOptimizesItsOwnObjective) {
  // The acyclic allocator's cost, measured acyclically, must not exceed
  // the cyclic allocator's paths measured acyclically (both start from
  // covers optimal for their models; for the acyclic model phase 1 is
  // exactly optimal, so with enough registers it is 0).
  support::Rng rng(GetParam() * 89 + 7);
  eval::PatternSpec spec;
  spec.accesses = 6 + rng.index(14);
  spec.offset_range = 6;
  const auto seq = eval::generate_pattern(spec, rng);

  ProblemConfig config;
  config.modify_range = 1;
  config.registers = seq.size();
  config.wrap = WrapPolicy::kAcyclic;
  const Allocation a = RegisterAllocator(config).run(seq);
  EXPECT_EQ(a.cost(), 0);  // K >= K~_acyclic always
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, WrapPolicyPropertyTest,
                         ::testing::Range<std::uint64_t>(0, 25));

}  // namespace
}  // namespace dspaddr::core
