#include "core/access_graph.hpp"

#include <gtest/gtest.h>

#include <set>

namespace dspaddr::core {
namespace {

using ir::Access;
using ir::AccessSequence;

TEST(AccessGraph, EmptySequence) {
  const AccessGraph g(AccessSequence{}, CostModel{1, WrapPolicy::kCyclic});
  EXPECT_EQ(g.node_count(), 0u);
}

TEST(AccessGraph, IntraEdgesOnlyForward) {
  const auto seq = AccessSequence::from_offsets({0, 1});
  const AccessGraph g(seq, CostModel{1, WrapPolicy::kCyclic});
  EXPECT_TRUE(g.intra().has_edge(0, 1));
  EXPECT_FALSE(g.intra().has_edge(1, 0));
}

TEST(AccessGraph, EdgeIffDistanceWithinRange) {
  const auto seq = AccessSequence::from_offsets({0, 2, 3});
  const AccessGraph g1(seq, CostModel{1, WrapPolicy::kCyclic});
  EXPECT_FALSE(g1.intra().has_edge(0, 1));  // d = 2
  EXPECT_TRUE(g1.intra().has_edge(1, 2));   // d = 1
  const AccessGraph g2(seq, CostModel{2, WrapPolicy::kCyclic});
  EXPECT_TRUE(g2.intra().has_edge(0, 1));
}

TEST(AccessGraph, WrapEdgesUnderCyclicPolicy) {
  const auto seq = AccessSequence::from_offsets({1, -2});
  const AccessGraph g(seq, CostModel{1, WrapPolicy::kCyclic});
  // a_2 -> a_1 next iteration: distance 1 + 1 - (-2) = 4.
  EXPECT_FALSE(g.wrap_edge(1, 0));
  // a_1 -> a_2 next iteration: distance -2 + 1 - 1 = -2.
  EXPECT_FALSE(g.wrap_edge(0, 1));
  // Singletons close at stride distance 1.
  EXPECT_TRUE(g.wrap_edge(0, 0));
  EXPECT_TRUE(g.wrap_edge(1, 1));
}

TEST(AccessGraph, WrapEdgesAlwaysPresentUnderAcyclicPolicy) {
  const auto seq = AccessSequence::from_offsets({1, -200});
  const AccessGraph g(seq, CostModel{1, WrapPolicy::kAcyclic});
  for (std::size_t a = 0; a < 2; ++a) {
    for (std::size_t b = 0; b < 2; ++b) {
      EXPECT_TRUE(g.wrap_edge(a, b));
    }
  }
}

TEST(AccessGraph, RejectsNegativeModifyRange) {
  const auto seq = AccessSequence::from_offsets({0});
  EXPECT_THROW(AccessGraph(seq, CostModel{-1, WrapPolicy::kCyclic}),
               dspaddr::InvalidArgument);
}

TEST(AccessGraph, PaperFigure1EdgeSet) {
  // The example loop of section 2 with M = 1: offsets 1, 0, 2, -1, 1,
  // 0, -2 for accesses a_1 .. a_7. Edges are exactly the pairs (i < j)
  // with |o_j - o_i| <= 1.
  const auto seq = ir::AccessSequence::from_offsets({1, 0, 2, -1, 1, 0, -2});
  const AccessGraph g(seq, CostModel{1, WrapPolicy::kCyclic});

  const std::set<std::pair<std::size_t, std::size_t>> expected{
      {0, 1}, {0, 2}, {0, 4}, {0, 5},  // a_1 -- a_2, a_3, a_5, a_6
      {1, 3}, {1, 4}, {1, 5},          // a_2 -- a_4, a_5, a_6
      {2, 4},                          // a_3 -- a_5
      {3, 5}, {3, 6},                  // a_4 -- a_6, a_7
      {4, 5},                          // a_5 -- a_6
  };
  std::set<std::pair<std::size_t, std::size_t>> actual;
  for (const auto& [from, to] : g.intra().edges()) {
    actual.emplace(from, to);
  }
  EXPECT_EQ(actual, expected);
  EXPECT_EQ(g.intra().edge_count(), 11u);
}

TEST(AccessGraph, PaperExamplePathIsZeroCostIntra) {
  // "The access subsequence (a_1, a_3, a_5, a_6) could be realized with
  // a single register using only auto-increment and auto-decrement."
  const auto seq = ir::AccessSequence::from_offsets({1, 0, 2, -1, 1, 0, -2});
  const AccessGraph g(seq, CostModel{1, WrapPolicy::kCyclic});
  EXPECT_TRUE(g.intra().has_edge(0, 2));
  EXPECT_TRUE(g.intra().has_edge(2, 4));
  EXPECT_TRUE(g.intra().has_edge(4, 5));
}

}  // namespace
}  // namespace dspaddr::core
