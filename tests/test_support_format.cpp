#include <gtest/gtest.h>

#include <sstream>

#include "support/check.hpp"
#include "support/csv.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

namespace dspaddr::support {
namespace {

TEST(Strings, Join) {
  EXPECT_EQ(join({}, ", "), "");
  EXPECT_EQ(join({"a"}, ", "), "a");
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(Strings, FormatFixedAndPercent) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(-0.5, 1), "-0.5");
  EXPECT_EQ(format_percent(41.26), "41.3 %");
  EXPECT_EQ(format_percent(41.26, 0), "41 %");
}

TEST(Strings, SplitKeepsEmptyFields) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split(",x,", ','), (std::vector<std::string>{"", "x", ""}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  a b  "), "a b");
  EXPECT_EQ(trim("\t\nx"), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(Csv, EscapesSpecialCharacters) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, WritesHeaderAndRows) {
  CsvWriter csv({"n", "cost"});
  csv.add_row({"10", "3"});
  csv.add_row({"20", "5"});
  EXPECT_EQ(csv.to_string(), "n,cost\n10,3\n20,5\n");
  EXPECT_EQ(csv.row_count(), 2u);
}

TEST(Csv, RejectsMismatchedRows) {
  CsvWriter csv({"a", "b"});
  EXPECT_THROW(csv.add_row({"only-one"}), InvalidArgument);
  EXPECT_THROW(CsvWriter({}), InvalidArgument);
}

TEST(Table, AlignsColumns) {
  Table table({"name", "value"});
  table.add_row({"x", "1"});
  table.add_row({"longer", "23"});
  const std::string text = table.to_string();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("------"), std::string::npos);
  // Right-aligned numeric column: "23" ends its line.
  EXPECT_NE(text.find("    23\n"), std::string::npos);
}

TEST(Table, RowCountIgnoresRules) {
  Table table({"a"});
  table.add_row({"1"});
  table.add_rule();
  table.add_row({"2"});
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(Table, RejectsBadRows) {
  Table table({"a", "b"});
  EXPECT_THROW(table.add_row({"1"}), InvalidArgument);
  EXPECT_THROW(Table({}), InvalidArgument);
  EXPECT_THROW(Table({"a"}, {Align::kLeft, Align::kRight}), InvalidArgument);
}

}  // namespace
}  // namespace dspaddr::support
