// obs — counters, gauges, histograms and the registry: bucket edges,
// percentile determinism, and thread-safety of the lock-free paths.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "support/check.hpp"

namespace dspaddr {
namespace {

TEST(Obs, CounterSumsAcrossStripes) {
  obs::Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.add();
  counter.add(41);
  EXPECT_EQ(counter.value(), 42u);
}

TEST(Obs, CounterIsExactUnderConcurrency) {
  obs::Counter counter;
  constexpr int kThreads = 8;
  constexpr int kAdds = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kAdds; ++i) {
        counter.add();
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(counter.value(),
            static_cast<std::uint64_t>(kThreads) * kAdds);
}

TEST(Obs, GaugeTracksLevelAndHighWatermark) {
  obs::Gauge gauge;
  gauge.record(3);
  gauge.record(7);
  gauge.record(2);
  EXPECT_EQ(gauge.value(), 2);
  EXPECT_EQ(gauge.max(), 7);
}

TEST(Obs, HistogramBucketEdges) {
  // Bucket 0 counts exactly 0; bucket i counts [2^(i-1), 2^i).
  obs::Histogram histogram;
  histogram.record_us(0);
  histogram.record_us(1);
  histogram.record_us(2);
  histogram.record_us(3);
  histogram.record_us(4);
  const obs::HistogramSnapshot snap = histogram.snapshot();
  EXPECT_EQ(snap.count, 5u);
  EXPECT_EQ(snap.sum_us, 10u);
  EXPECT_EQ(snap.max_us, 4u);
  ASSERT_EQ(snap.buckets.size(), obs::Histogram::kBuckets);
  EXPECT_EQ(snap.buckets[0], 1u);  // 0
  EXPECT_EQ(snap.buckets[1], 1u);  // [1, 2)
  EXPECT_EQ(snap.buckets[2], 2u);  // [2, 4)
  EXPECT_EQ(snap.buckets[3], 1u);  // [4, 8)
}

TEST(Obs, HistogramHugeValuesLandInTheOpenLastBucket) {
  obs::Histogram histogram;
  histogram.record_us(UINT64_MAX);
  const obs::HistogramSnapshot snap = histogram.snapshot();
  EXPECT_EQ(snap.buckets[obs::Histogram::kBuckets - 1], 1u);
  EXPECT_EQ(snap.max_us, UINT64_MAX);
}

TEST(Obs, PercentilesAreBucketUpperEdgesAndDeterministic) {
  obs::Histogram histogram;
  for (int i = 0; i < 90; ++i) {
    histogram.record_us(3);  // bucket 2: [2, 4), upper edge 4
  }
  for (int i = 0; i < 10; ++i) {
    histogram.record_us(1000);  // bucket 10: [512, 1024), upper edge 1024
  }
  const obs::HistogramSnapshot snap = histogram.snapshot();
  EXPECT_EQ(snap.percentile_us(50), 4u);
  EXPECT_EQ(snap.percentile_us(90), 4u);
  EXPECT_EQ(snap.percentile_us(95), 1024u);
  EXPECT_EQ(snap.percentile_us(99), 1024u);
  // Determinism: equal counts, equal answers — snapshot twice.
  const obs::HistogramSnapshot again = histogram.snapshot();
  EXPECT_EQ(again.percentile_us(95), snap.percentile_us(95));

  obs::Histogram empty;
  EXPECT_EQ(empty.snapshot().percentile_us(99), 0u);
}

TEST(Obs, HistogramConcurrentRecordKeepsTotals) {
  obs::Histogram histogram;
  constexpr int kThreads = 8;
  constexpr int kRecords = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram, t] {
      for (int i = 0; i < kRecords; ++i) {
        histogram.record_us(static_cast<std::uint64_t>(t + 1));
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  const obs::HistogramSnapshot snap = histogram.snapshot();
  EXPECT_EQ(snap.count, static_cast<std::uint64_t>(kThreads) * kRecords);
  std::uint64_t bucketed = 0;
  for (const std::uint64_t bucket : snap.buckets) {
    bucketed += bucket;
  }
  EXPECT_EQ(bucketed, snap.count);
  EXPECT_EQ(snap.max_us, static_cast<std::uint64_t>(kThreads));
}

TEST(Obs, RegistryPreservesRegistrationOrder) {
  obs::Registry registry;
  registry.counter("z.second");
  registry.histogram("a.third");
  registry.counter("m.first");  // counters and histograms interleave
  registry.gauge("g.depth");
  const obs::RegistrySnapshot snap = registry.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].first, "z.second");
  EXPECT_EQ(snap.counters[1].first, "m.first");
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].first, "a.third");
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].first, "g.depth");
}

TEST(Obs, RegistryIsIdempotentPerName) {
  obs::Registry registry;
  obs::Counter& first = registry.counter("requests");
  obs::Counter& second = registry.counter("requests");
  EXPECT_EQ(&first, &second);
  first.add(2);
  second.add(3);
  const obs::RegistrySnapshot snap = registry.snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].second, 5u);
}

TEST(Obs, RegistryRejectsKindMismatch) {
  obs::Registry registry;
  registry.counter("name");
  EXPECT_THROW(registry.gauge("name"), Error);
  EXPECT_THROW(registry.histogram("name"), Error);
}

TEST(Obs, RegistryConcurrentUseIsSafe) {
  // Registration (mutex) races recording (lock-free) and snapshots;
  // run under TSan in CI.
  obs::Registry registry;
  obs::Counter& shared = registry.counter("shared");
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&registry, &shared, t] {
      obs::Histogram& histogram =
          registry.histogram("h" + std::to_string(t % 2));
      for (int i = 0; i < 2000; ++i) {
        shared.add();
        histogram.record_us(static_cast<std::uint64_t>(i));
        if (i % 500 == 0) {
          registry.snapshot();
        }
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  const obs::RegistrySnapshot snap = registry.snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].second, 4u * 2000u);
  std::uint64_t recorded = 0;
  for (const auto& [name, histogram] : snap.histograms) {
    recorded += histogram.count;
  }
  EXPECT_EQ(recorded, 4u * 2000u);
}

}  // namespace
}  // namespace dspaddr
