#include "graph/digraph.hpp"

#include <gtest/gtest.h>

#include "graph/dsu.hpp"
#include "graph/topo.hpp"

namespace dspaddr::graph {
namespace {

TEST(Digraph, StartsEmpty) {
  Digraph g(3);
  EXPECT_EQ(g.node_count(), 3u);
  EXPECT_EQ(g.edge_count(), 0u);
  EXPECT_FALSE(g.has_edge(0, 1));
}

TEST(Digraph, AddEdgeIsDirected) {
  Digraph g(3);
  g.add_edge(0, 1);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(1, 0));
  EXPECT_EQ(g.out_degree(0), 1u);
  EXPECT_EQ(g.in_degree(1), 1u);
  EXPECT_EQ(g.in_degree(0), 0u);
}

TEST(Digraph, IgnoresParallelEdges) {
  Digraph g(2);
  g.add_edge(0, 1);
  g.add_edge(0, 1);
  EXPECT_EQ(g.edge_count(), 1u);
}

TEST(Digraph, SelfLoopAllowed) {
  Digraph g(1);
  g.add_edge(0, 0);
  EXPECT_TRUE(g.has_edge(0, 0));
}

TEST(Digraph, EdgesListsAll) {
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 3);
  const auto edges = g.edges();
  EXPECT_EQ(edges.size(), 3u);
  EXPECT_EQ(g.edge_count(), 3u);
}

TEST(Digraph, RejectsOutOfRangeNodes) {
  Digraph g(2);
  EXPECT_THROW(g.add_edge(0, 2), InvalidArgument);
  EXPECT_THROW(g.add_edge(5, 0), InvalidArgument);
  EXPECT_THROW(g.has_edge(0, 9), InvalidArgument);
  EXPECT_THROW(g.successors(2), InvalidArgument);
}

TEST(Topo, OrdersChain) {
  Digraph g(3);
  g.add_edge(2, 1);
  g.add_edge(1, 0);
  const auto order = topological_order(g);
  ASSERT_TRUE(order.has_value());
  EXPECT_EQ(*order, (std::vector<NodeId>{2, 1, 0}));
  EXPECT_TRUE(is_acyclic(g));
}

TEST(Topo, DetectsCycle) {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  EXPECT_FALSE(topological_order(g).has_value());
  EXPECT_FALSE(is_acyclic(g));
}

TEST(Topo, RespectsAllEdges) {
  Digraph g(6);
  g.add_edge(0, 3);
  g.add_edge(1, 3);
  g.add_edge(3, 4);
  g.add_edge(2, 4);
  g.add_edge(4, 5);
  const auto order = topological_order(g);
  ASSERT_TRUE(order.has_value());
  std::vector<std::size_t> position(6);
  for (std::size_t i = 0; i < order->size(); ++i) {
    position[(*order)[i]] = i;
  }
  for (const auto& [from, to] : g.edges()) {
    EXPECT_LT(position[from], position[to]);
  }
}

TEST(Dsu, UniteAndFind) {
  Dsu dsu(5);
  EXPECT_EQ(dsu.set_count(), 5u);
  EXPECT_TRUE(dsu.unite(0, 1));
  EXPECT_TRUE(dsu.unite(1, 2));
  EXPECT_FALSE(dsu.unite(0, 2));
  EXPECT_EQ(dsu.set_count(), 3u);
  EXPECT_TRUE(dsu.same(0, 2));
  EXPECT_FALSE(dsu.same(0, 3));
  EXPECT_EQ(dsu.size_of(1), 3u);
  EXPECT_EQ(dsu.size_of(4), 1u);
}

TEST(Dsu, RejectsOutOfRange) {
  Dsu dsu(2);
  EXPECT_THROW(dsu.find(2), InvalidArgument);
}

}  // namespace
}  // namespace dspaddr::graph
