#include <gtest/gtest.h>

#include <set>

#include "ir/kernel.hpp"
#include "ir/kernels.hpp"
#include "ir/layout.hpp"
#include "support/check.hpp"

namespace dspaddr::ir {
namespace {

TEST(Kernel, BuilderBasics) {
  Kernel k("test", "a test kernel");
  k.add_array("x", 8).add_array("y", 4);
  k.set_iterations(10).set_data_ops(2);
  k.add_access("x", 1).add_access("y", -1, -1, true);

  EXPECT_EQ(k.name(), "test");
  EXPECT_EQ(k.arrays().size(), 2u);
  EXPECT_EQ(k.iterations(), 10);
  EXPECT_EQ(k.data_ops(), 2);
  ASSERT_EQ(k.accesses().size(), 2u);
  EXPECT_EQ(k.accesses()[1].stride, -1);
  EXPECT_TRUE(k.accesses()[1].is_write);
  EXPECT_TRUE(k.has_array("x"));
  EXPECT_FALSE(k.has_array("z"));
  EXPECT_EQ(k.array("y").size, 4);
}

TEST(Kernel, RejectsInvalidConstruction) {
  EXPECT_THROW(Kernel("", ""), dspaddr::InvalidArgument);
  Kernel k("k", "");
  EXPECT_THROW(k.add_array("", 4), dspaddr::InvalidArgument);
  EXPECT_THROW(k.add_array("x", 0), dspaddr::InvalidArgument);
  k.add_array("x", 4);
  EXPECT_THROW(k.add_array("x", 4), dspaddr::InvalidArgument);
  EXPECT_THROW(k.set_iterations(0), dspaddr::InvalidArgument);
  EXPECT_THROW(k.add_access("missing", 0), dspaddr::InvalidArgument);
  EXPECT_THROW(k.set_data_ops(-1), dspaddr::InvalidArgument);
  EXPECT_THROW(k.array("missing"), dspaddr::InvalidArgument);
}

TEST(ArrayLayout, ContiguousPlacesInDeclarationOrder) {
  Kernel k("k", "");
  k.add_array("a", 10).add_array("b", 5).add_array("c", 1);
  const ArrayLayout layout = ArrayLayout::contiguous(k);
  EXPECT_EQ(layout.base_of("a"), 0);
  EXPECT_EQ(layout.base_of("b"), 10);
  EXPECT_EQ(layout.base_of("c"), 15);
  EXPECT_EQ(layout.extent(), 16);
}

TEST(ArrayLayout, ContiguousWithCustomBase) {
  Kernel k("k", "");
  k.add_array("a", 4);
  const ArrayLayout layout = ArrayLayout::contiguous(k, 100);
  EXPECT_EQ(layout.base_of("a"), 100);
}

TEST(ArrayLayout, UnplacedArrayThrows) {
  ArrayLayout layout;
  EXPECT_FALSE(layout.contains("x"));
  EXPECT_THROW(layout.base_of("x"), dspaddr::InvalidArgument);
}

TEST(Lower, FoldsBasesIntoOffsets) {
  Kernel k("k", "");
  k.add_array("a", 10).add_array("b", 10);
  k.add_access("a", 2);
  k.add_access("b", -1);
  const AccessSequence seq = lower(k);
  ASSERT_EQ(seq.size(), 2u);
  EXPECT_EQ(seq[0].offset, 2);
  EXPECT_EQ(seq[1].offset, 10 - 1);
}

TEST(Lower, PreservesStrides) {
  Kernel k("k", "");
  k.add_array("a", 8);
  k.add_access("a", 0, -3);
  const AccessSequence seq = lower(k);
  EXPECT_EQ(seq[0].stride, -3);
}

TEST(Lower, ExplicitLayoutMustCoverAllArrays) {
  Kernel k("k", "");
  k.add_array("a", 8);
  k.add_access("a", 0);
  ArrayLayout layout;
  EXPECT_THROW(lower(k, layout), dspaddr::InvalidArgument);
  layout.place("a", 42);
  const AccessSequence seq = lower(k, layout);
  EXPECT_EQ(seq[0].offset, 42);
}

TEST(BuiltinKernels, AllAreWellFormed) {
  const auto kernels = builtin_kernels();
  EXPECT_GE(kernels.size(), 12u);
  for (const Kernel& k : kernels) {
    SCOPED_TRACE(k.name());
    EXPECT_FALSE(k.name().empty());
    EXPECT_FALSE(k.accesses().empty());
    EXPECT_GT(k.iterations(), 0);
    // Lowering must succeed and produce one access per body access.
    const AccessSequence seq = lower(k);
    EXPECT_EQ(seq.size(), k.accesses().size());
  }
}

TEST(BuiltinKernels, NamesAreUniqueAndLookupWorks) {
  const auto names = builtin_kernel_names();
  std::set<std::string> unique(names.begin(), names.end());
  EXPECT_EQ(unique.size(), names.size());
  for (const std::string& name : names) {
    EXPECT_EQ(builtin_kernel(name).name(), name);
  }
  EXPECT_THROW(builtin_kernel("no-such-kernel"), dspaddr::InvalidArgument);
}

TEST(BuiltinKernels, PaperExampleHasFigureOffsets) {
  const Kernel k = paper_example_kernel();
  const AccessSequence seq = lower(k);
  const std::vector<std::int64_t> expected{1, 0, 2, -1, 1, 0, -2};
  ASSERT_EQ(seq.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(seq[i].offset, expected[i]) << "access " << i;
  }
}

TEST(BuiltinKernels, FirScansSignalBackwards) {
  const Kernel k = fir_kernel(16, 64);
  ASSERT_EQ(k.accesses().size(), 2u);
  EXPECT_EQ(k.accesses()[0].stride, 1);
  EXPECT_EQ(k.accesses()[1].stride, -1);
}

TEST(BuiltinKernels, MatmulUsesRowStride) {
  const Kernel k = matmul_kernel(8);
  // B[k][j] advances one row (8 elements) per k iteration.
  EXPECT_EQ(k.accesses()[1].stride, 8);
  // The accumulator slot is loop-invariant.
  EXPECT_EQ(k.accesses()[2].stride, 0);
}

TEST(BuiltinKernels, Filter2dHasNineTapsPlusWrite) {
  const Kernel k = filter2d_3x3_kernel(32);
  EXPECT_EQ(k.accesses().size(), 10u);
  EXPECT_TRUE(k.accesses().back().is_write);
}

TEST(BuiltinKernels, ParameterValidation) {
  EXPECT_THROW(fir_kernel(0, 8), dspaddr::InvalidArgument);
  EXPECT_THROW(biquad_kernel(2), dspaddr::InvalidArgument);
  EXPECT_THROW(matmul_kernel(0), dspaddr::InvalidArgument);
  EXPECT_THROW(filter2d_3x3_kernel(2), dspaddr::InvalidArgument);
}

}  // namespace
}  // namespace dspaddr::ir
