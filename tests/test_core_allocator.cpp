#include "core/allocator.hpp"

#include <gtest/gtest.h>

#include "core/validate.hpp"
#include "eval/patterns.hpp"
#include "support/rng.hpp"

namespace dspaddr::core {
namespace {

using ir::AccessSequence;

const auto kPaperSeq =
    AccessSequence::from_offsets({1, 0, 2, -1, 1, 0, -2});

ProblemConfig paper_config(std::size_t k) {
  ProblemConfig config;
  config.modify_range = 1;
  config.registers = k;
  config.phase1.mode = Phase1Options::Mode::kExact;
  return config;
}

TEST(RegisterAllocator, RejectsBadConfig) {
  EXPECT_THROW(RegisterAllocator(ProblemConfig{.modify_range = -1,
                                               .registers = 1}),
               dspaddr::InvalidArgument);
  EXPECT_THROW(RegisterAllocator(ProblemConfig{.modify_range = 1,
                                               .registers = 0}),
               dspaddr::InvalidArgument);
}

TEST(RegisterAllocator, EmptySequenceGivesEmptyAllocation) {
  const Allocation a =
      RegisterAllocator(paper_config(2)).run(AccessSequence{});
  EXPECT_EQ(a.register_count(), 0u);
  EXPECT_EQ(a.cost(), 0);
}

TEST(RegisterAllocator, PaperExampleWithEnoughRegistersIsFree) {
  const Allocation a = RegisterAllocator(paper_config(3)).run(kPaperSeq);
  EXPECT_EQ(a.cost(), 0);
  EXPECT_EQ(a.stats().k_tilde, std::size_t{3});
  EXPECT_LE(a.register_count(), 3u);
}

TEST(RegisterAllocator, PaperExampleWithTwoRegistersCostsTwo) {
  const Allocation a = RegisterAllocator(paper_config(2)).run(kPaperSeq);
  EXPECT_EQ(a.register_count(), 2u);
  EXPECT_EQ(a.cost(), 2);
  EXPECT_EQ(a.stats().merges, 1u);
}

TEST(RegisterAllocator, PaperExampleWithOneRegisterCostsFive) {
  // K = 1 forces the single path (a_1 .. a_7): four over-range intra
  // steps plus the wrap.
  const Allocation a = RegisterAllocator(paper_config(1)).run(kPaperSeq);
  EXPECT_EQ(a.register_count(), 1u);
  EXPECT_EQ(a.intra_cost(), 4);
  EXPECT_EQ(a.wrap_cost(), 1);
  EXPECT_EQ(a.cost(), 5);
}

TEST(RegisterAllocator, RegisterOfMapsEveryAccess) {
  const Allocation a = RegisterAllocator(paper_config(2)).run(kPaperSeq);
  for (std::size_t i = 0; i < kPaperSeq.size(); ++i) {
    const std::size_t r = a.register_of(i);
    ASSERT_LT(r, a.register_count());
    const auto& indices = a.paths()[r].indices();
    EXPECT_TRUE(std::find(indices.begin(), indices.end(), i) !=
                indices.end());
  }
  EXPECT_THROW(a.register_of(kPaperSeq.size()), dspaddr::InvalidArgument);
}

TEST(RegisterAllocator, RegisterOfFailsLoudlyOnUncoveredAccess) {
  // A malformed cover (access 2 on no path) must not silently read as
  // "access 2 is on AR0".
  const auto seq = AccessSequence::from_offsets({0, 1, 2, 3});
  const Allocation partial(seq, CostModel{1, WrapPolicy::kCyclic},
                           {Path({0, 1}), Path({3})}, {});
  EXPECT_EQ(partial.register_of(0), 0u);
  EXPECT_EQ(partial.register_of(3), 1u);
  EXPECT_THROW(partial.register_of(2), dspaddr::InvariantViolation);
}

TEST(RegisterAllocator, ExactPhase2UpgradesHeuristicMerges) {
  // Sweep random instances until the exact phase 2 strictly improves on
  // the heuristic at least once, and never worsens it.
  support::Rng rng(314);
  std::size_t improvements = 0;
  for (std::size_t trial = 0; trial < 40; ++trial) {
    eval::PatternSpec spec;
    spec.accesses = 10 + rng.index(8);
    spec.offset_range = 6;
    spec.family = static_cast<eval::PatternFamily>(trial % 4);
    const auto seq = eval::generate_pattern(spec, rng);

    ProblemConfig heuristic_config;
    heuristic_config.modify_range = 1;
    heuristic_config.registers = 2;
    heuristic_config.phase2.mode = Phase2Options::Mode::kHeuristic;
    const Allocation heuristic =
        RegisterAllocator(heuristic_config).run(seq);
    EXPECT_FALSE(heuristic.cost() > 0 &&
                 heuristic.stats().phase2_exact);

    ProblemConfig exact_config = heuristic_config;
    exact_config.phase2.mode = Phase2Options::Mode::kExact;
    const Allocation exact = RegisterAllocator(exact_config).run(seq);
    EXPECT_TRUE(exact.stats().phase2_exact);
    EXPECT_TRUE(exact.stats().phase2_proven);
    EXPECT_EQ(exact.stats().phase2_gap, 0);
    EXPECT_LE(exact.cost(), heuristic.cost());
    validate_allocation(seq, exact.paths(), 2);
    if (exact.cost() < heuristic.cost()) ++improvements;
  }
  EXPECT_GT(improvements, 0u);
}

TEST(RegisterAllocator, AutoPhase2SkipsLargeSequences) {
  support::Rng rng(99);
  eval::PatternSpec spec;
  spec.accesses = 40;  // above the auto exact_access_limit
  spec.offset_range = 10;
  const auto seq = eval::generate_pattern(spec, rng);

  ProblemConfig config;
  config.modify_range = 1;
  config.registers = 2;
  const Allocation a = RegisterAllocator(config).run(seq);
  if (a.cost() > 0) {
    EXPECT_FALSE(a.stats().phase2_exact);
    EXPECT_FALSE(a.stats().phase2_proven);
  }
}

TEST(RegisterAllocator, ZeroCostAllocationIsTriviallyProven) {
  const auto seq = AccessSequence::from_offsets({0, 1, 2, 3});
  ProblemConfig config;
  config.modify_range = 1;
  config.registers = 4;
  config.phase2.mode = Phase2Options::Mode::kHeuristic;
  const Allocation a = RegisterAllocator(config).run(seq);
  ASSERT_EQ(a.cost(), 0);
  EXPECT_TRUE(a.stats().phase2_proven);
  EXPECT_EQ(a.stats().phase2_nodes, 0u);
}

TEST(RegisterAllocator, ToStringMentionsEveryRegister) {
  const Allocation a = RegisterAllocator(paper_config(2)).run(kPaperSeq);
  const std::string text = a.to_string(kPaperSeq);
  EXPECT_NE(text.find("AR0"), std::string::npos);
  EXPECT_NE(text.find("AR1"), std::string::npos);
  EXPECT_NE(text.find("total cost 2"), std::string::npos);
}

TEST(RegisterAllocator, StatsExposePhase1Diagnostics) {
  const Allocation a = RegisterAllocator(paper_config(2)).run(kPaperSeq);
  EXPECT_TRUE(a.stats().phase1_exact);
  EXPECT_EQ(a.stats().lower_bound, 2u);
  ASSERT_TRUE(a.stats().upper_bound.has_value());
  EXPECT_GE(*a.stats().upper_bound, 3u);
}

class AllocatorPropertyTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AllocatorPropertyTest, AllocationIsAlwaysValid) {
  support::Rng rng(GetParam() * 131 + 17);
  eval::PatternSpec spec;
  spec.accesses = 5 + rng.index(40);
  spec.offset_range = 1 + rng.uniform_int(0, 20);
  spec.family = static_cast<eval::PatternFamily>(rng.index(4));
  const auto seq = eval::generate_pattern(spec, rng);

  ProblemConfig config;
  config.modify_range = 1 + rng.uniform_int(0, 3);
  config.registers = 1 + rng.index(8);
  const Allocation a = RegisterAllocator(config).run(seq);

  validate_allocation(seq, a.paths(), config.registers);
  EXPECT_EQ(a.cost(), a.intra_cost() + a.wrap_cost());
  EXPECT_GE(a.cost(), 0);
}

TEST_P(AllocatorPropertyTest, EnoughRegistersMeansZeroCost) {
  support::Rng rng(GetParam() * 61 + 29);
  eval::PatternSpec spec;
  spec.accesses = 4 + rng.index(16);
  spec.offset_range = 6;
  const auto seq = eval::generate_pattern(spec, rng);

  ProblemConfig config;
  config.modify_range = 1;
  config.registers = seq.size();  // K >= K~ always holds then
  config.phase1.mode = Phase1Options::Mode::kExact;
  const Allocation a = RegisterAllocator(config).run(seq);
  EXPECT_EQ(a.cost(), 0);
  ASSERT_TRUE(a.stats().k_tilde.has_value());
  EXPECT_EQ(a.register_count(), *a.stats().k_tilde);
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, AllocatorPropertyTest,
                         ::testing::Range<std::uint64_t>(0, 30));

}  // namespace
}  // namespace dspaddr::core
