#include "ir/access_sequence.hpp"

#include "support/check.hpp"

namespace dspaddr::ir {

AccessSequence::AccessSequence(std::vector<Access> accesses)
    : accesses_(std::move(accesses)) {}

AccessSequence AccessSequence::from_offsets(
    const std::vector<std::int64_t>& offsets, std::int64_t stride) {
  std::vector<Access> accesses;
  accesses.reserve(offsets.size());
  for (std::int64_t offset : offsets) {
    accesses.push_back(Access{offset, stride});
  }
  return AccessSequence(std::move(accesses));
}

const Access& AccessSequence::operator[](std::size_t i) const {
  check_index(i);
  return accesses_[i];
}

std::optional<std::int64_t> AccessSequence::intra_distance(
    std::size_t p, std::size_t q) const {
  check_index(p);
  check_index(q);
  if (accesses_[p].stride != accesses_[q].stride) return std::nullopt;
  return accesses_[q].offset - accesses_[p].offset;
}

std::optional<std::int64_t> AccessSequence::wrap_distance(
    std::size_t last, std::size_t first) const {
  check_index(last);
  check_index(first);
  if (accesses_[last].stride != accesses_[first].stride) return std::nullopt;
  return accesses_[first].offset + accesses_[first].stride -
         accesses_[last].offset;
}

void AccessSequence::check_index(std::size_t i) const {
  check_arg(i < accesses_.size(), "AccessSequence: index out of range");
}

}  // namespace dspaddr::ir
