// Multi-loop DSP applications.
//
// The "realistic DSP programs" of the paper's result section (via Liem
// et al. [1]) are not single loops but programs: chains of filter,
// transform and update loops. An Application is an ordered collection
// of kernels (one per loop nest), and the built-in catalog models
// typical signal-processing pipelines assembled from the kernel suite.
// Address-register allocation happens per loop (DSP address registers
// are reassigned between loops); code-size and cycle metrics aggregate
// across the whole program.
#pragma once

#include <string>
#include <vector>

#include "ir/kernel.hpp"

namespace dspaddr::ir {

/// An ordered multi-loop program.
class Application {
public:
  Application() = default;
  Application(std::string name, std::string description);

  const std::string& name() const { return name_; }
  const std::string& description() const { return description_; }

  Application& add_kernel(Kernel kernel);

  const std::vector<Kernel>& kernels() const { return kernels_; }
  std::size_t size() const { return kernels_.size(); }

private:
  std::string name_;
  std::string description_;
  std::vector<Kernel> kernels_;
};

/// Audio equalizer: biquad cascade + gain (vector ops).
Application audio_equalizer_app();

/// Modem front end: correlation sync, FIR channel filter, LMS echo
/// canceller update, dot-product power estimate.
Application modem_frontend_app();

/// Image pipeline: 3x3 filter, DCT blocks, matrix ops.
Application image_pipeline_app();

/// Spectral analyzer: windowing (vector multiply), FFT stages,
/// magnitude accumulation.
Application spectral_analyzer_app();

/// All built-in applications.
std::vector<Application> builtin_applications();

/// Lookup by name; throws InvalidArgument when unknown.
Application builtin_application(const std::string& name);

}  // namespace dspaddr::ir
