#include "ir/layout.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace dspaddr::ir {

ArrayLayout ArrayLayout::contiguous(const Kernel& kernel, std::int64_t base) {
  ArrayLayout layout;
  std::int64_t next = base;
  for (const ArrayDecl& array : kernel.arrays()) {
    layout.place(array.name, next);
    next += array.size;
  }
  layout.extent_ = next - base;
  return layout;
}

void ArrayLayout::place(const std::string& array, std::int64_t base) {
  check_arg(!array.empty(), "ArrayLayout: array name must not be empty");
  bases_[array] = base;
}

bool ArrayLayout::contains(const std::string& array) const {
  return bases_.count(array) != 0;
}

std::int64_t ArrayLayout::base_of(const std::string& array) const {
  const auto it = bases_.find(array);
  check_arg(it != bases_.end(),
            "ArrayLayout: array '" + array + "' has no placement");
  return it->second;
}

std::int64_t layout_extent(const Kernel& kernel, const ArrayLayout& layout) {
  bool any = false;
  std::int64_t lo = 0;
  std::int64_t hi = 0;
  for (const ArrayDecl& array : kernel.arrays()) {
    const std::int64_t base = layout.base_of(array.name);
    if (!any) {
      lo = base;
      hi = base + array.size;
      any = true;
    } else {
      lo = std::min(lo, base);
      hi = std::max(hi, base + array.size);
    }
  }
  return any ? hi - lo : 0;
}

AccessSequence lower(const Kernel& kernel, const ArrayLayout& layout) {
  std::vector<Access> accesses;
  accesses.reserve(kernel.accesses().size());
  for (const KernelAccess& ka : kernel.accesses()) {
    check_arg(layout.contains(ka.array),
              "lower: array '" + ka.array + "' has no placement");
    accesses.push_back(
        Access{layout.base_of(ka.array) + ka.offset, ka.stride});
  }
  return AccessSequence(std::move(accesses));
}

AccessSequence lower(const Kernel& kernel) {
  return lower(kernel, ArrayLayout::contiguous(kernel));
}

}  // namespace dspaddr::ir
