// The access sequence: the core input of the register-constrained
// address-computation problem (paper section 2).
//
// A loop body performs N array accesses a_1 .. a_N in a fixed order.
// Each access is characterized by its *effective offset* (its address at
// iteration 0, with array base addresses already folded in; see
// ir/layout.hpp) and its *stride* (how far its address advances per loop
// iteration; 1 for A[i + c] in a unit-stride loop, -1 for A[i - j]
// patterns scanned backwards, 0 for loop-invariant addresses).
//
// Address distances between two accesses handled consecutively by the
// same address register:
//   * within one iteration  (p before q):  o_q - o_p
//   * across the iteration boundary (q last in iteration t, p first in
//     iteration t+1):                      (o_p + s_p) - o_q
// Distances are only defined (constant over iterations) when both
// accesses have the same stride; transitions between different-stride
// accesses can never be a zero-cost post-modify and are reported as
// std::nullopt.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace dspaddr::ir {

/// One array access inside the loop body.
struct Access {
  /// Address at iteration 0 (array base folded in).
  std::int64_t offset = 0;
  /// Address advance per loop iteration.
  std::int64_t stride = 1;

  friend bool operator==(const Access& a, const Access& b) {
    return a.offset == b.offset && a.stride == b.stride;
  }
  friend bool operator!=(const Access& a, const Access& b) {
    return !(a == b);
  }
};

/// The ordered sequence of array accesses of one loop body.
class AccessSequence {
public:
  AccessSequence() = default;
  explicit AccessSequence(std::vector<Access> accesses);

  /// Convenience: all accesses share `stride` (the paper's setting, where
  /// every access is A[i + c] in a loop with increment `stride`).
  static AccessSequence from_offsets(const std::vector<std::int64_t>& offsets,
                                     std::int64_t stride = 1);

  std::size_t size() const { return accesses_.size(); }
  bool empty() const { return accesses_.empty(); }
  const Access& operator[](std::size_t i) const;
  const std::vector<Access>& accesses() const { return accesses_; }

  /// Address distance when access `q` directly follows access `p` within
  /// one iteration; nullopt when strides differ (never zero-cost).
  std::optional<std::int64_t> intra_distance(std::size_t p,
                                             std::size_t q) const;

  /// Address distance when access `first` (in iteration t+1) directly
  /// follows access `last` (in iteration t); nullopt when strides differ.
  std::optional<std::int64_t> wrap_distance(std::size_t last,
                                            std::size_t first) const;

  friend bool operator==(const AccessSequence& a, const AccessSequence& b) {
    return a.accesses_ == b.accesses_;
  }
  friend bool operator!=(const AccessSequence& a, const AccessSequence& b) {
    return !(a == b);
  }

private:
  void check_index(std::size_t i) const;

  std::vector<Access> accesses_;
};

}  // namespace dspaddr::ir
