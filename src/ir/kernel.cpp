#include "ir/kernel.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace dspaddr::ir {

Kernel::Kernel(std::string name, std::string description)
    : name_(std::move(name)), description_(std::move(description)) {
  check_arg(!name_.empty(), "Kernel: name must not be empty");
}

Kernel& Kernel::add_array(std::string name, std::int64_t size) {
  check_arg(!name.empty(), "Kernel: array name must not be empty");
  check_arg(size > 0, "Kernel: array size must be positive");
  check_arg(!has_array(name), "Kernel: duplicate array name '" + name + "'");
  arrays_.push_back(ArrayDecl{std::move(name), size});
  return *this;
}

Kernel& Kernel::set_iterations(std::int64_t iterations) {
  check_arg(iterations > 0, "Kernel: iteration count must be positive");
  iterations_ = iterations;
  return *this;
}

Kernel& Kernel::add_access(std::string array, std::int64_t offset,
                           std::int64_t stride, bool is_write) {
  check_arg(has_array(array),
            "Kernel: access to undeclared array '" + array + "'");
  accesses_.push_back(KernelAccess{std::move(array), offset, stride, is_write});
  return *this;
}

Kernel& Kernel::set_data_ops(std::int64_t data_ops) {
  check_arg(data_ops >= 0, "Kernel: data op count must be non-negative");
  data_ops_ = data_ops;
  return *this;
}

bool Kernel::has_array(const std::string& name) const {
  return std::any_of(arrays_.begin(), arrays_.end(),
                     [&](const ArrayDecl& a) { return a.name == name; });
}

const ArrayDecl& Kernel::array(const std::string& name) const {
  const auto it = std::find_if(arrays_.begin(), arrays_.end(),
                               [&](const ArrayDecl& a) {
                                 return a.name == name;
                               });
  check_arg(it != arrays_.end(),
            "Kernel: unknown array '" + name + "'");
  return *it;
}

}  // namespace dspaddr::ir
