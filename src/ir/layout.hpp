// Array placement and lowering of a Kernel to an AccessSequence.
//
// DSPs address data memory linearly; the paper assumes "a linear
// arrangement of array elements in a contiguous address space". The
// layout assigns each declared array a base address (contiguously in
// declaration order by default) and lowering folds those bases into the
// per-access effective offsets the allocator operates on. Accesses to
// different arrays then simply have far-apart effective offsets and are
// naturally never zero-cost neighbours unless the arrays are small and
// adjacent — exactly the physical situation on hardware.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

#include "ir/access_sequence.hpp"
#include "ir/kernel.hpp"

namespace dspaddr::ir {

/// Maps array names to base addresses in the linear data memory.
class ArrayLayout {
public:
  /// Contiguous placement in declaration order, starting at `base`.
  static ArrayLayout contiguous(const Kernel& kernel, std::int64_t base = 0);

  /// Explicit placement; every array of the kernel must be covered when
  /// used with `lower`.
  void place(const std::string& array, std::int64_t base);

  bool contains(const std::string& array) const;
  std::int64_t base_of(const std::string& array) const;

  /// Total extent [min_base, max(base+size)) if built via `contiguous`.
  std::int64_t extent() const { return extent_; }

private:
  std::unordered_map<std::string, std::int64_t> bases_;
  std::int64_t extent_ = 0;
};

/// Extent of `layout` over `kernel`'s arrays: max(base + size) -
/// min(base), i.e. the data-memory footprint including any padding
/// holes. Works for arbitrary placements, unlike ArrayLayout::extent()
/// which is only maintained by `contiguous`. 0 for a kernel without
/// arrays.
std::int64_t layout_extent(const Kernel& kernel, const ArrayLayout& layout);

/// Lowers the kernel body to an AccessSequence under `layout`: effective
/// offset = layout.base_of(array) + access.offset.
AccessSequence lower(const Kernel& kernel, const ArrayLayout& layout);

/// Lowers with the default contiguous layout.
AccessSequence lower(const Kernel& kernel);

}  // namespace dspaddr::ir
