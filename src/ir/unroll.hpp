// Loop unrolling — a classic DSP transformation that interacts with
// address-register allocation.
//
// Unrolling by factor u concatenates u copies of the body; the t-th
// copy's access a_k addresses offset o_k + t * s_k, and the unrolled
// loop advances every access by u * s_k per (unrolled) iteration. The
// allocator then sees a longer sequence with u times fewer wrap
// transitions per original iteration and more chances to chain accesses
// for free — bench_unrolling quantifies the per-original-iteration cost
// as u grows.
#pragma once

#include <cstddef>

#include "ir/access_sequence.hpp"
#include "ir/kernel.hpp"

namespace dspaddr::ir {

/// Unrolls an access sequence by `factor` (>= 1).
AccessSequence unroll(const AccessSequence& seq, std::size_t factor);

/// Unrolls a kernel by `factor`; the kernel's iteration count must be
/// divisible by `factor` (throws InvalidArgument otherwise). Array
/// declarations are preserved, the body is replicated with shifted
/// offsets, iterations shrink by `factor`, and data ops scale by it.
Kernel unroll(const Kernel& kernel, std::size_t factor);

}  // namespace dspaddr::ir
