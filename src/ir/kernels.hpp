// Built-in library of realistic DSP kernels.
//
// These are the workloads the paper's introduction motivates ("iterative
// accesses to data array elements within loops") and the substrate for
// bench T2 (code-size / speed shape of Liem et al. [1]). Every kernel
// models the *innermost* loop of the algorithm, which is where DSPs
// spend their cycles and where AGU post-modify addressing pays off.
#pragma once

#include <string>
#include <vector>

#include "ir/kernel.hpp"

namespace dspaddr::ir {

/// The worked example of the paper (Fig. 1): offsets 1, 0, 2, -1, 1, 0,
/// -2 on a single array A in a unit-stride loop.
Kernel paper_example_kernel();

/// FIR filter inner (tap) loop: acc += h[j] * x[i - j].
Kernel fir_kernel(std::int64_t taps = 16, std::int64_t block = 64);

/// Direct-form-II biquad IIR section over a sample block.
Kernel biquad_kernel(std::int64_t block = 64);

/// Full convolution inner loop: y[n] += x[k] * h[n - k].
Kernel convolution_kernel(std::int64_t signal = 64, std::int64_t taps = 16);

/// Cross-correlation inner loop: r[k] += x[i] * y[i + k].
Kernel correlation_kernel(std::int64_t window = 64, std::int64_t lag = 8);

/// Matrix multiply innermost (k) loop: C[i][j] += A[i][k] * B[k][j].
Kernel matmul_kernel(std::int64_t n = 8);

/// Matrix-vector product inner loop: y[i] += A[i][j] * x[j].
Kernel matvec_kernel(std::int64_t n = 16);

/// Radix-2 FFT butterfly loop over one stage.
Kernel fft_butterfly_kernel(std::int64_t half = 32);

/// 8-point DCT-II inner loop: y[k] += c[k*8 + j] * x[j].
Kernel dct8_kernel();

/// Dot product: acc += x[i] * y[i].
Kernel dotprod_kernel(std::int64_t length = 64);

/// Element-wise vector add: c[i] = a[i] + b[i].
Kernel vecadd_kernel(std::int64_t length = 64);

/// LMS adaptive filter coefficient update: h[j] += mu_e * x[i - j].
Kernel lms_update_kernel(std::int64_t taps = 16);

/// 3x3 image filter inner (column) loop over a row-major image.
Kernel filter2d_3x3_kernel(std::int64_t width = 32);

/// All built-in kernels with default parameters, for sweeps.
std::vector<Kernel> builtin_kernels();

/// Looks up a built-in kernel by name; throws InvalidArgument if absent.
Kernel builtin_kernel(const std::string& name);

/// Names of all built-in kernels.
std::vector<std::string> builtin_kernel_names();

}  // namespace dspaddr::ir
