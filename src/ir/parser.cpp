#include "ir/parser.hpp"

#include <charconv>
#include <optional>
#include <sstream>

#include "support/strings.hpp"

namespace dspaddr::ir {

namespace {

/// Tokens of one source line: whitespace-separated words, with one
/// optional trailing double-quoted string.
struct Line {
  std::size_t number = 0;
  std::vector<std::string> words;
  std::optional<std::string> quoted;
};

std::vector<Line> tokenize(std::string_view text) {
  std::vector<Line> lines;
  std::size_t line_number = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    std::string_view raw = text.substr(start, end - start);
    ++line_number;
    start = end + 1;

    // Strip comment (but not inside a quoted string).
    bool in_quotes = false;
    std::size_t cut = raw.size();
    for (std::size_t i = 0; i < raw.size(); ++i) {
      if (raw[i] == '"') in_quotes = !in_quotes;
      if (raw[i] == '#' && !in_quotes) {
        cut = i;
        break;
      }
    }
    raw = support::trim(raw.substr(0, cut));
    if (raw.empty()) {
      if (start > text.size()) break;
      continue;
    }

    Line line;
    line.number = line_number;
    std::size_t pos = 0;
    while (pos < raw.size()) {
      while (pos < raw.size() && std::isspace(static_cast<unsigned char>(
                                     raw[pos]))) {
        ++pos;
      }
      if (pos >= raw.size()) break;
      if (raw[pos] == '"') {
        const std::size_t close = raw.find('"', pos + 1);
        if (close == std::string_view::npos) {
          throw ParseError(line_number, "unterminated string literal");
        }
        if (line.quoted.has_value()) {
          throw ParseError(line_number, "more than one string literal");
        }
        line.quoted = std::string(raw.substr(pos + 1, close - pos - 1));
        pos = close + 1;
        continue;
      }
      const std::size_t word_start = pos;
      while (pos < raw.size() &&
             !std::isspace(static_cast<unsigned char>(raw[pos])) &&
             raw[pos] != '"') {
        ++pos;
      }
      line.words.emplace_back(raw.substr(word_start, pos - word_start));
    }
    lines.push_back(std::move(line));
    if (start > text.size()) break;
  }
  return lines;
}

std::int64_t parse_int(const Line& line, const std::string& word,
                       std::string_view what) {
  std::int64_t value = 0;
  const char* begin = word.data();
  const char* end = begin + word.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end) {
    throw ParseError(line.number, std::string(what) + ": expected an " +
                                      "integer, got '" + word + "'");
  }
  return value;
}

}  // namespace

std::vector<Kernel> parse_kernels(std::string_view text) {
  std::vector<Kernel> kernels;
  std::optional<Kernel> current;
  std::size_t last_line = 0;

  for (const Line& line : tokenize(text)) {
    last_line = line.number;
    const std::string& keyword = line.words.front();

    if (keyword == "kernel") {
      if (current.has_value()) {
        throw ParseError(line.number,
                         "'kernel' before previous kernel's 'end'");
      }
      if (line.words.size() != 2) {
        throw ParseError(line.number, "usage: kernel <name> [\"description\"]");
      }
      current.emplace(line.words[1], line.quoted.value_or(""));
      continue;
    }

    if (!current.has_value()) {
      throw ParseError(line.number,
                       "'" + keyword + "' outside of a kernel block");
    }

    try {
      if (keyword == "array") {
        if (line.words.size() != 3) {
          throw ParseError(line.number, "usage: array <name> <size>");
        }
        current->add_array(line.words[1],
                           parse_int(line, line.words[2], "array size"));
      } else if (keyword == "iterations") {
        if (line.words.size() != 2) {
          throw ParseError(line.number, "usage: iterations <count>");
        }
        current->set_iterations(
            parse_int(line, line.words[1], "iteration count"));
      } else if (keyword == "dataops") {
        if (line.words.size() != 2) {
          throw ParseError(line.number, "usage: dataops <count>");
        }
        current->set_data_ops(parse_int(line, line.words[1], "dataops"));
      } else if (keyword == "access") {
        if (line.words.size() < 3) {
          throw ParseError(
              line.number,
              "usage: access <array> <offset> [stride <s>] [write]");
        }
        const std::string& array = line.words[1];
        const std::int64_t offset =
            parse_int(line, line.words[2], "access offset");
        std::int64_t stride = 1;
        bool is_write = false;
        std::size_t i = 3;
        while (i < line.words.size()) {
          if (line.words[i] == "stride") {
            if (i + 1 >= line.words.size()) {
              throw ParseError(line.number, "'stride' needs a value");
            }
            stride = parse_int(line, line.words[i + 1], "stride");
            i += 2;
          } else if (line.words[i] == "write") {
            is_write = true;
            ++i;
          } else {
            throw ParseError(line.number,
                             "unexpected token '" + line.words[i] + "'");
          }
        }
        current->add_access(array, offset, stride, is_write);
      } else if (keyword == "end") {
        if (line.words.size() != 1) {
          throw ParseError(line.number, "'end' takes no arguments");
        }
        if (current->accesses().empty()) {
          throw ParseError(line.number, "kernel has no accesses");
        }
        kernels.push_back(std::move(*current));
        current.reset();
      } else {
        throw ParseError(line.number, "unknown keyword '" + keyword + "'");
      }
    } catch (const InvalidArgument& e) {
      // Re-tag semantic errors (duplicate array, bad size, ...) with the
      // source location.
      throw ParseError(line.number, e.what());
    }
  }

  if (current.has_value()) {
    throw ParseError(last_line, "missing 'end' for kernel '" +
                                    current->name() + "'");
  }
  return kernels;
}

Kernel parse_kernel(std::string_view text) {
  auto kernels = parse_kernels(text);
  check_arg(kernels.size() == 1,
            "parse_kernel: expected exactly one kernel, got " +
                std::to_string(kernels.size()));
  return std::move(kernels.front());
}

std::string to_text(const Kernel& kernel) {
  std::ostringstream out;
  out << "kernel " << kernel.name();
  if (!kernel.description().empty()) {
    out << " \"" << kernel.description() << "\"";
  }
  out << '\n';
  for (const ArrayDecl& array : kernel.arrays()) {
    out << "array " << array.name << ' ' << array.size << '\n';
  }
  out << "iterations " << kernel.iterations() << '\n';
  out << "dataops " << kernel.data_ops() << '\n';
  for (const KernelAccess& access : kernel.accesses()) {
    out << "access " << access.array << ' ' << access.offset;
    if (access.stride != 1) out << " stride " << access.stride;
    if (access.is_write) out << " write";
    out << '\n';
  }
  out << "end\n";
  return out.str();
}

}  // namespace dspaddr::ir
