// Parser for the textual kernel mini-language.
//
// Kernels can be described in a small line-based format so that
// examples and benches can load workloads from files or strings:
//
//   # FIR filter tap loop
//   kernel fir "FIR filter tap loop"
//   array h 16
//   array x 64
//   iterations 16
//   dataops 1
//   access h 0 stride 1
//   access x 0 stride -1
//   end
//
// One file may contain several kernels. Grammar (per line):
//   kernel <name> ["description"]
//   array <name> <size>
//   iterations <count>
//   dataops <count>
//   access <array> <offset> [stride <s>] [write]
//   end
// `#` starts a comment (whole line or trailing); blank lines are
// ignored. Errors carry the 1-based line number.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "ir/kernel.hpp"
#include "support/check.hpp"

namespace dspaddr::ir {

/// Thrown on malformed kernel text; `line()` is the 1-based source line.
class ParseError : public Error {
public:
  ParseError(std::size_t line, const std::string& message)
      : Error("line " + std::to_string(line) + ": " + message),
        line_(line) {}

  std::size_t line() const { return line_; }

private:
  std::size_t line_;
};

/// Parses kernel text; returns all kernels in declaration order.
std::vector<Kernel> parse_kernels(std::string_view text);

/// Parses text expected to contain exactly one kernel.
Kernel parse_kernel(std::string_view text);

/// Renders a kernel back to the mini-language (round-trips through
/// parse_kernel).
std::string to_text(const Kernel& kernel);

}  // namespace dspaddr::ir
