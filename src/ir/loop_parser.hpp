// C-like loop front-end.
//
// The paper presents its example as C source:
//
//   for (i = 2; i <= N; i++)
//   { /* a_1 */ A[i+1]  ...  }
//
// This parser accepts that style directly, so workloads can be written
// as (a small subset of) C instead of the line-based mini-language:
//
//   int A[64], B[64];
//   for (i = 2; i <= 61; i += 1) {
//     B[i] = A[i+1] + A[i] * A[i+2] - A[i-1];
//     A[i+1] = B[i] + A[i-2];
//   }
//
// Semantics mapped onto ir::Kernel:
//  * array declarations `int NAME[SIZE], ...;` precede one `for` loop;
//  * the loop variable is affine: `for (i = S; i <= E; i += D)` (also
//    `i < E`, `i++`); iterations are derived from S, E, D;
//  * statement forms: `ref;` (read) or `ref = expr;` (reads of `expr`
//    left-to-right, then the write of `ref`) — matching the order a DSP
//    evaluates operands and stores the result;
//  * index expressions are affine in the loop variable: `i`, `i+2`,
//    `2*i-1`, `-i`, or a constant; the access offset is the index at
//    iteration 0 and the stride is (index coefficient) * D;
//  * each arithmetic operator in an expression counts one data op.
//
// Errors throw ir::ParseError carrying the 1-based source line.
#pragma once

#include <string>
#include <string_view>

#include "ir/kernel.hpp"
#include "ir/parser.hpp"

namespace dspaddr::ir {

/// Parses one C-like loop into a Kernel named `name`.
Kernel parse_c_loop(std::string_view source, std::string name = "loop");

}  // namespace dspaddr::ir
