#include "ir/unroll.hpp"

#include "support/check.hpp"

namespace dspaddr::ir {

AccessSequence unroll(const AccessSequence& seq, std::size_t factor) {
  check_arg(factor >= 1, "unroll: factor must be at least 1");
  std::vector<Access> accesses;
  accesses.reserve(seq.size() * factor);
  for (std::size_t copy = 0; copy < factor; ++copy) {
    for (std::size_t k = 0; k < seq.size(); ++k) {
      const Access& a = seq[k];
      accesses.push_back(Access{
          a.offset + static_cast<std::int64_t>(copy) * a.stride,
          a.stride * static_cast<std::int64_t>(factor),
      });
    }
  }
  return AccessSequence(std::move(accesses));
}

Kernel unroll(const Kernel& kernel, std::size_t factor) {
  check_arg(factor >= 1, "unroll: factor must be at least 1");
  check_arg(kernel.iterations() % static_cast<std::int64_t>(factor) == 0,
            "unroll: iteration count not divisible by the unroll factor");
  Kernel unrolled(kernel.name() + "_x" + std::to_string(factor),
                  kernel.description().empty()
                      ? ""
                      : kernel.description() + " (unrolled x" +
                            std::to_string(factor) + ")");
  for (const ArrayDecl& array : kernel.arrays()) {
    unrolled.add_array(array.name, array.size);
  }
  unrolled.set_iterations(kernel.iterations() /
                          static_cast<std::int64_t>(factor));
  unrolled.set_data_ops(kernel.data_ops() *
                        static_cast<std::int64_t>(factor));
  for (std::size_t copy = 0; copy < factor; ++copy) {
    for (const KernelAccess& access : kernel.accesses()) {
      unrolled.add_access(
          access.array,
          access.offset + static_cast<std::int64_t>(copy) * access.stride,
          access.stride * static_cast<std::int64_t>(factor),
          access.is_write);
    }
  }
  return unrolled;
}

}  // namespace dspaddr::ir
