// A DSP kernel: a named single-loop computation over declared arrays.
//
// This is the program-level view used by examples, benches and the
// code-generation model. `ir::lower` (layout.hpp) folds the array
// layout into effective offsets, producing the AccessSequence the
// allocator consumes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dspaddr::ir {

/// An array declared by a kernel, placed in the linear address space by
/// ArrayLayout in declaration order.
struct ArrayDecl {
  std::string name;
  std::int64_t size = 0;

  friend bool operator==(const ArrayDecl& a, const ArrayDecl& b) {
    return a.name == b.name && a.size == b.size;
  }
  friend bool operator!=(const ArrayDecl& a, const ArrayDecl& b) {
    return !(a == b);
  }
};

/// One array access in the kernel's loop body, in body order.
struct KernelAccess {
  std::string array;
  /// Offset of the accessed element relative to the array's moving
  /// pointer at iteration 0 (e.g. -1 for x[i-1]).
  std::int64_t offset = 0;
  /// Address advance per loop iteration (e.g. -1 for x[i-j] inside a
  /// forward j-loop, 0 for a loop-invariant access).
  std::int64_t stride = 1;
  bool is_write = false;

  friend bool operator==(const KernelAccess& a, const KernelAccess& b) {
    return a.array == b.array && a.offset == b.offset &&
           a.stride == b.stride && a.is_write == b.is_write;
  }
  friend bool operator!=(const KernelAccess& a, const KernelAccess& b) {
    return !(a == b);
  }
};

/// A single-loop DSP kernel.
class Kernel {
public:
  Kernel() = default;
  Kernel(std::string name, std::string description);

  const std::string& name() const { return name_; }
  const std::string& description() const { return description_; }

  /// Declares an array; names must be unique and sizes positive.
  Kernel& add_array(std::string name, std::int64_t size);

  /// Sets the modeled loop's iteration count (> 0).
  Kernel& set_iterations(std::int64_t iterations);

  /// Appends an access to the loop body; the array must be declared.
  Kernel& add_access(std::string array, std::int64_t offset,
                     std::int64_t stride = 1, bool is_write = false);

  /// Number of pure data-path operations per iteration (MACs, adds, ...);
  /// used by the code-size/speed model of bench T2.
  Kernel& set_data_ops(std::int64_t data_ops);

  const std::vector<ArrayDecl>& arrays() const { return arrays_; }
  std::int64_t iterations() const { return iterations_; }
  const std::vector<KernelAccess>& accesses() const { return accesses_; }
  std::int64_t data_ops() const { return data_ops_; }

  bool has_array(const std::string& name) const;
  const ArrayDecl& array(const std::string& name) const;

  friend bool operator==(const Kernel& a, const Kernel& b) {
    return a.name_ == b.name_ && a.description_ == b.description_ &&
           a.arrays_ == b.arrays_ && a.iterations_ == b.iterations_ &&
           a.accesses_ == b.accesses_ && a.data_ops_ == b.data_ops_;
  }
  friend bool operator!=(const Kernel& a, const Kernel& b) {
    return !(a == b);
  }

private:
  std::string name_;
  std::string description_;
  std::vector<ArrayDecl> arrays_;
  std::int64_t iterations_ = 1;
  std::vector<KernelAccess> accesses_;
  std::int64_t data_ops_ = 0;
};

}  // namespace dspaddr::ir
