#include "ir/loop_parser.hpp"

#include <cctype>
#include <optional>
#include <vector>

#include "support/check.hpp"

namespace dspaddr::ir {

namespace {

enum class TokenKind {
  kIdent,
  kNumber,
  kPunct,  // single character: ( ) [ ] { } ; , = + - *
  kLe,     // <=
  kLt,     // <
  kPlusEq,
  kPlusPlus,
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
  std::int64_t number = 0;
  std::size_t line = 1;
};

class Lexer {
public:
  explicit Lexer(std::string_view source) : source_(source) {}

  std::vector<Token> run() {
    std::vector<Token> tokens;
    while (position_ < source_.size()) {
      const char c = source_[position_];
      if (c == '\n') {
        ++line_;
        ++position_;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++position_;
        continue;
      }
      if (c == '/' && peek(1) == '*') {
        skip_block_comment();
        continue;
      }
      if (c == '/' && peek(1) == '/') {
        while (position_ < source_.size() && source_[position_] != '\n') {
          ++position_;
        }
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        tokens.push_back(lex_ident());
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c))) {
        tokens.push_back(lex_number());
        continue;
      }
      tokens.push_back(lex_punct());
    }
    tokens.push_back(Token{TokenKind::kEnd, "", 0, line_});
    return tokens;
  }

private:
  char peek(std::size_t ahead) const {
    return position_ + ahead < source_.size() ? source_[position_ + ahead]
                                              : '\0';
  }

  void skip_block_comment() {
    const std::size_t start_line = line_;
    position_ += 2;
    while (position_ + 1 < source_.size() &&
           !(source_[position_] == '*' && source_[position_ + 1] == '/')) {
      if (source_[position_] == '\n') ++line_;
      ++position_;
    }
    if (position_ + 1 >= source_.size()) {
      throw ParseError(start_line, "unterminated /* comment");
    }
    position_ += 2;
  }

  Token lex_ident() {
    Token token{TokenKind::kIdent, "", 0, line_};
    while (position_ < source_.size() &&
           (std::isalnum(static_cast<unsigned char>(source_[position_])) ||
            source_[position_] == '_')) {
      token.text += source_[position_++];
    }
    return token;
  }

  Token lex_number() {
    Token token{TokenKind::kNumber, "", 0, line_};
    while (position_ < source_.size() &&
           std::isdigit(static_cast<unsigned char>(source_[position_]))) {
      token.text += source_[position_++];
    }
    token.number = std::stoll(token.text);
    return token;
  }

  Token lex_punct() {
    const char c = source_[position_];
    Token token{TokenKind::kPunct, std::string(1, c), 0, line_};
    if (c == '<' && peek(1) == '=') {
      token.kind = TokenKind::kLe;
      token.text = "<=";
      position_ += 2;
      return token;
    }
    if (c == '<') {
      token.kind = TokenKind::kLt;
      position_ += 1;
      return token;
    }
    if (c == '+' && peek(1) == '=') {
      token.kind = TokenKind::kPlusEq;
      token.text = "+=";
      position_ += 2;
      return token;
    }
    if (c == '+' && peek(1) == '+') {
      token.kind = TokenKind::kPlusPlus;
      token.text = "++";
      position_ += 2;
      return token;
    }
    constexpr std::string_view kAllowed = "()[]{};,=+-*";
    if (kAllowed.find(c) == std::string_view::npos) {
      throw ParseError(line_, std::string("unexpected character '") + c +
                                  "'");
    }
    ++position_;
    return token;
  }

  std::string_view source_;
  std::size_t position_ = 0;
  std::size_t line_ = 1;
};

/// An index expression affine in the loop variable: coeff * i + base.
struct AffineIndex {
  std::int64_t coeff = 0;
  std::int64_t base = 0;
};

class Parser {
public:
  Parser(std::vector<Token> tokens, std::string kernel_name)
      : tokens_(std::move(tokens)), kernel_(std::move(kernel_name), "") {}

  Kernel run() {
    while (current().kind == TokenKind::kIdent &&
           current().text == "int") {
      parse_declaration();
    }
    parse_for_header();
    expect_punct("{");
    while (!is_punct("}")) {
      parse_statement();
    }
    expect_punct("}");
    if (current().kind != TokenKind::kEnd) {
      throw ParseError(current().line,
                       "trailing input after the loop body");
    }
    if (kernel_.accesses().empty()) {
      throw ParseError(current().line, "loop body has no array accesses");
    }
    kernel_.set_data_ops(data_ops_);
    return std::move(kernel_);
  }

private:
  const Token& current() const { return tokens_[index_]; }
  const Token& lookahead(std::size_t n = 1) const {
    return tokens_[std::min(index_ + n, tokens_.size() - 1)];
  }
  void advance() {
    if (index_ + 1 < tokens_.size()) ++index_;
  }

  bool is_punct(std::string_view text) const {
    return current().kind == TokenKind::kPunct && current().text == text;
  }

  void expect_punct(std::string_view text) {
    if (!is_punct(text)) {
      throw ParseError(current().line, "expected '" + std::string(text) +
                                           "', got '" + current().text +
                                           "'");
    }
    advance();
  }

  std::string expect_ident() {
    if (current().kind != TokenKind::kIdent) {
      throw ParseError(current().line, "expected an identifier, got '" +
                                           current().text + "'");
    }
    std::string name = current().text;
    advance();
    return name;
  }

  std::int64_t expect_number() {
    bool negative = false;
    if (is_punct("-")) {
      negative = true;
      advance();
    }
    if (current().kind != TokenKind::kNumber) {
      throw ParseError(current().line,
                       "expected a number, got '" + current().text + "'");
    }
    const std::int64_t value = current().number;
    advance();
    return negative ? -value : value;
  }

  // int NAME[SIZE], NAME[SIZE], ...;
  void parse_declaration() {
    advance();  // 'int'
    while (true) {
      const std::size_t line = current().line;
      const std::string name = expect_ident();
      expect_punct("[");
      const std::int64_t size = expect_number();
      expect_punct("]");
      try {
        kernel_.add_array(name, size);
      } catch (const InvalidArgument& e) {
        throw ParseError(line, e.what());
      }
      if (is_punct(",")) {
        advance();
        continue;
      }
      expect_punct(";");
      break;
    }
  }

  // for (i = S; i <= E; i += D)  [also i < E, i++]
  void parse_for_header() {
    if (current().kind != TokenKind::kIdent || current().text != "for") {
      throw ParseError(current().line,
                       "expected 'for', got '" + current().text + "'");
    }
    const std::size_t line = current().line;
    advance();
    expect_punct("(");
    loop_var_ = expect_ident();
    expect_punct("=");
    start_ = expect_number();
    expect_punct(";");

    if (expect_ident() != loop_var_) {
      throw ParseError(line, "loop condition must test '" + loop_var_ +
                                 "'");
    }
    bool inclusive;
    if (current().kind == TokenKind::kLe) {
      inclusive = true;
    } else if (current().kind == TokenKind::kLt) {
      inclusive = false;
    } else {
      throw ParseError(current().line, "expected '<=' or '<'");
    }
    advance();
    const std::int64_t end = expect_number();
    expect_punct(";");

    if (expect_ident() != loop_var_) {
      throw ParseError(line, "loop increment must update '" + loop_var_ +
                                 "'");
    }
    if (current().kind == TokenKind::kPlusPlus) {
      step_ = 1;
      advance();
    } else if (current().kind == TokenKind::kPlusEq) {
      advance();
      step_ = expect_number();
      if (step_ <= 0) {
        throw ParseError(line, "loop step must be positive");
      }
    } else {
      throw ParseError(current().line, "expected '++' or '+='");
    }
    expect_punct(")");

    const std::int64_t limit = inclusive ? end : end - 1;
    if (limit < start_) {
      throw ParseError(line, "loop executes zero iterations");
    }
    kernel_.set_iterations((limit - start_) / step_ + 1);
  }

  // statement := ref ';' | ref '=' expr ';'
  void parse_statement() {
    const std::size_t line = current().line;
    const auto [array, index] = parse_ref();
    if (is_punct(";")) {
      advance();
      add_access(line, array, index, /*is_write=*/false);
      return;
    }
    expect_punct("=");
    parse_expression();
    expect_punct(";");
    add_access(line, array, index, /*is_write=*/true);
  }

  // expr := term (('+' | '-') term)*  — only the refs and operator
  // count matter; constants are folded away as immediates.
  void parse_expression() {
    parse_term();
    while (is_punct("+") || is_punct("-")) {
      advance();
      ++data_ops_;
      parse_term();
    }
  }

  // term := factor ('*' factor)*
  void parse_term() {
    parse_factor();
    while (is_punct("*")) {
      advance();
      ++data_ops_;
      parse_factor();
    }
  }

  // factor := ref | number | '(' expr ')'
  void parse_factor() {
    if (current().kind == TokenKind::kNumber || is_punct("-")) {
      expect_number();
      return;
    }
    if (is_punct("(")) {
      advance();
      parse_expression();
      expect_punct(")");
      return;
    }
    const std::size_t line = current().line;
    const auto [array, index] = parse_ref();
    add_access(line, array, index, /*is_write=*/false);
  }

  // ref := IDENT '[' affine ']'
  std::pair<std::string, AffineIndex> parse_ref() {
    const std::string array = expect_ident();
    expect_punct("[");
    const AffineIndex index = parse_affine();
    expect_punct("]");
    return {array, index};
  }

  // affine := part (('+' | '-') part)*   with
  // part := NUMBER ['*' i] | i | NUMBER
  AffineIndex parse_affine() {
    AffineIndex result;
    std::int64_t sign = 1;
    if (is_punct("-")) {
      sign = -1;
      advance();
    }
    parse_affine_part(result, sign);
    while (is_punct("+") || is_punct("-")) {
      sign = is_punct("+") ? 1 : -1;
      advance();
      parse_affine_part(result, sign);
    }
    return result;
  }

  void parse_affine_part(AffineIndex& result, std::int64_t sign) {
    if (current().kind == TokenKind::kNumber) {
      const std::int64_t value = expect_number();
      if (is_punct("*")) {
        advance();
        if (expect_ident() != loop_var_) {
          throw ParseError(current().line,
                           "index must be affine in '" + loop_var_ + "'");
        }
        result.coeff += sign * value;
      } else {
        result.base += sign * value;
      }
      return;
    }
    if (current().kind == TokenKind::kIdent) {
      if (current().text != loop_var_) {
        throw ParseError(current().line,
                         "unknown variable '" + current().text +
                             "' in index (only '" + loop_var_ +
                             "' and constants are allowed)");
      }
      advance();
      result.coeff += sign;
      return;
    }
    throw ParseError(current().line,
                     "malformed index expression at '" + current().text +
                         "'");
  }

  void add_access(std::size_t line, const std::string& array,
                  const AffineIndex& index, bool is_write) {
    try {
      kernel_.add_access(array, index.coeff * start_ + index.base,
                         index.coeff * step_, is_write);
    } catch (const InvalidArgument& e) {
      throw ParseError(line, e.what());
    }
  }

  std::vector<Token> tokens_;
  std::size_t index_ = 0;
  Kernel kernel_;
  std::string loop_var_;
  std::int64_t start_ = 0;
  std::int64_t step_ = 1;
  std::int64_t data_ops_ = 0;
};

}  // namespace

Kernel parse_c_loop(std::string_view source, std::string name) {
  Lexer lexer(source);
  Parser parser(lexer.run(), std::move(name));
  return parser.run();
}

}  // namespace dspaddr::ir
