#include "ir/kernels.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace dspaddr::ir {

Kernel paper_example_kernel() {
  Kernel k("paper_example",
           "Worked example of Basu/Leupers/Marwedel DATE'98, Fig. 1");
  k.add_array("A", 64).set_iterations(32).set_data_ops(3);
  for (std::int64_t offset : {1, 0, 2, -1, 1, 0, -2}) {
    k.add_access("A", offset);
  }
  return k;
}

Kernel fir_kernel(std::int64_t taps, std::int64_t block) {
  check_arg(taps > 0 && block > 0, "fir_kernel: sizes must be positive");
  Kernel k("fir", "FIR filter tap loop: acc += h[j] * x[i - j]");
  k.add_array("h", taps).add_array("x", block);
  k.set_iterations(taps).set_data_ops(1);
  // Coefficients are scanned forward, the signal window backwards.
  k.add_access("h", 0, 1);
  k.add_access("x", 0, -1);
  return k;
}

Kernel biquad_kernel(std::int64_t block) {
  check_arg(block > 2, "biquad_kernel: block must exceed filter order");
  Kernel k("biquad",
           "Direct-form IIR biquad: y[i] = b*x[i..i-2] - a*y[i-1..i-2]");
  k.add_array("x", block).add_array("y", block);
  k.set_iterations(block - 2).set_data_ops(5);
  k.add_access("x", 0);
  k.add_access("x", -1);
  k.add_access("x", -2);
  k.add_access("y", -1);
  k.add_access("y", -2);
  k.add_access("y", 0, 1, /*is_write=*/true);
  return k;
}

Kernel convolution_kernel(std::int64_t signal, std::int64_t taps) {
  check_arg(signal > 0 && taps > 0,
            "convolution_kernel: sizes must be positive");
  Kernel k("convolution", "Convolution inner loop: y[n] += x[k] * h[n - k]");
  k.add_array("x", signal).add_array("h", taps);
  k.set_iterations(taps).set_data_ops(1);
  k.add_access("x", 0, 1);
  k.add_access("h", 0, -1);
  return k;
}

Kernel correlation_kernel(std::int64_t window, std::int64_t lag) {
  check_arg(window > 0 && lag >= 0,
            "correlation_kernel: bad window or lag");
  Kernel k("correlation",
           "Cross-correlation inner loop: r[k] += x[i] * y[i + k]");
  k.add_array("x", window).add_array("y", window + lag);
  k.set_iterations(window).set_data_ops(1);
  k.add_access("x", 0, 1);
  k.add_access("y", lag, 1);
  return k;
}

Kernel matmul_kernel(std::int64_t n) {
  check_arg(n > 0, "matmul_kernel: n must be positive");
  Kernel k("matmul",
           "Matrix multiply k-loop: C[i][j] += A[i][k] * B[k][j] "
           "(row-major)");
  k.add_array("A", n * n).add_array("B", n * n).add_array("C", n * n);
  k.set_iterations(n).set_data_ops(1);
  k.add_access("A", 0, 1);    // A[i][k]: consecutive along k
  k.add_access("B", 0, n);    // B[k][j]: row stride n along k
  k.add_access("C", 0, 0);    // C[i][j]: loop-invariant accumulator slot
  return k;
}

Kernel matvec_kernel(std::int64_t n) {
  check_arg(n > 0, "matvec_kernel: n must be positive");
  Kernel k("matvec", "Matrix-vector j-loop: y[i] += A[i][j] * x[j]");
  k.add_array("A", n * n).add_array("x", n).add_array("y", n);
  k.set_iterations(n).set_data_ops(1);
  k.add_access("A", 0, 1);
  k.add_access("x", 0, 1);
  k.add_access("y", 0, 0, /*is_write=*/true);
  return k;
}

Kernel fft_butterfly_kernel(std::int64_t half) {
  check_arg(half > 0, "fft_butterfly_kernel: half must be positive");
  Kernel k("fft_butterfly",
           "Radix-2 FFT stage: butterfly on x[i], x[i + half] with "
           "twiddle w[k]");
  k.add_array("x", 2 * half).add_array("w", half);
  k.set_iterations(half).set_data_ops(4);
  k.add_access("x", 0, 1);
  k.add_access("x", half, 1);
  k.add_access("w", 0, 1);
  k.add_access("x", 0, 1, /*is_write=*/true);
  k.add_access("x", half, 1, /*is_write=*/true);
  return k;
}

Kernel dct8_kernel() {
  Kernel k("dct8", "8-point DCT-II inner loop: y[k] += c[k*8 + j] * x[j]");
  k.add_array("c", 64).add_array("x", 8).add_array("y", 8);
  k.set_iterations(8).set_data_ops(1);
  k.add_access("c", 0, 1);
  k.add_access("x", 0, 1);
  k.add_access("y", 0, 0, /*is_write=*/true);
  return k;
}

Kernel dotprod_kernel(std::int64_t length) {
  check_arg(length > 0, "dotprod_kernel: length must be positive");
  Kernel k("dotprod", "Dot product: acc += x[i] * y[i]");
  k.add_array("x", length).add_array("y", length);
  k.set_iterations(length).set_data_ops(1);
  k.add_access("x", 0, 1);
  k.add_access("y", 0, 1);
  return k;
}

Kernel vecadd_kernel(std::int64_t length) {
  check_arg(length > 0, "vecadd_kernel: length must be positive");
  Kernel k("vecadd", "Vector add: c[i] = a[i] + b[i]");
  k.add_array("a", length).add_array("b", length).add_array("c", length);
  k.set_iterations(length).set_data_ops(1);
  k.add_access("a", 0, 1);
  k.add_access("b", 0, 1);
  k.add_access("c", 0, 1, /*is_write=*/true);
  return k;
}

Kernel lms_update_kernel(std::int64_t taps) {
  check_arg(taps > 0, "lms_update_kernel: taps must be positive");
  Kernel k("lms_update",
           "LMS adaptive filter update: h[j] += mu_e * x[i - j]");
  k.add_array("h", taps).add_array("x", 4 * taps);
  k.set_iterations(taps).set_data_ops(2);
  k.add_access("h", 0, 1);                     // read h[j]
  k.add_access("x", 0, -1);                    // x window scanned backwards
  k.add_access("h", 0, 1, /*is_write=*/true);  // write back h[j]
  return k;
}

Kernel filter2d_3x3_kernel(std::int64_t width) {
  check_arg(width >= 3, "filter2d_3x3_kernel: width must be at least 3");
  const std::int64_t w = width;
  Kernel k("filter2d_3x3",
           "3x3 image filter column loop over a row-major image");
  k.add_array("img", 8 * w).add_array("out", 8 * w);
  k.set_iterations(w - 2).set_data_ops(9);
  // Nine taps of the window around img[r][c]; offsets relative to the
  // moving column position (origin at img[r][c] = img base + r*w + c,
  // folded to the array-relative form with r = 1, c = 1 at iteration 0).
  for (std::int64_t dr : {-1, 0, 1}) {
    for (std::int64_t dc : {-1, 0, 1}) {
      k.add_access("img", (1 + dr) * w + (1 + dc), 1);
    }
  }
  k.add_access("out", w + 1, 1, /*is_write=*/true);
  return k;
}

std::vector<Kernel> builtin_kernels() {
  return {
      paper_example_kernel(), fir_kernel(),          biquad_kernel(),
      convolution_kernel(),   correlation_kernel(),  matmul_kernel(),
      matvec_kernel(),        fft_butterfly_kernel(), dct8_kernel(),
      dotprod_kernel(),       vecadd_kernel(),       lms_update_kernel(),
      filter2d_3x3_kernel(),
  };
}

Kernel builtin_kernel(const std::string& name) {
  auto all = builtin_kernels();
  const auto it =
      std::find_if(all.begin(), all.end(),
                   [&](const Kernel& k) { return k.name() == name; });
  check_arg(it != all.end(), "builtin_kernel: unknown kernel '" + name + "'");
  return *it;
}

std::vector<std::string> builtin_kernel_names() {
  std::vector<std::string> names;
  for (const Kernel& k : builtin_kernels()) {
    names.push_back(k.name());
  }
  return names;
}

}  // namespace dspaddr::ir
