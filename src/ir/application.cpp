#include "ir/application.hpp"

#include <algorithm>

#include "ir/kernels.hpp"
#include "support/check.hpp"

namespace dspaddr::ir {

Application::Application(std::string name, std::string description)
    : name_(std::move(name)), description_(std::move(description)) {
  check_arg(!name_.empty(), "Application: name must not be empty");
}

Application& Application::add_kernel(Kernel kernel) {
  check_arg(!kernel.accesses().empty(),
            "Application: kernel has no accesses");
  kernels_.push_back(std::move(kernel));
  return *this;
}

Application audio_equalizer_app() {
  Application app("audio_equalizer",
                  "5-band biquad cascade with output gain staging");
  for (int band = 0; band < 5; ++band) {
    app.add_kernel(biquad_kernel(128));
  }
  app.add_kernel(vecadd_kernel(128));
  app.add_kernel(dotprod_kernel(128));  // output power metering
  return app;
}

Application modem_frontend_app() {
  Application app("modem_frontend",
                  "Symbol-sync correlator, channel FIR, LMS echo "
                  "canceller, power estimate");
  app.add_kernel(correlation_kernel(64, 8));
  app.add_kernel(fir_kernel(32, 128));
  app.add_kernel(lms_update_kernel(32));
  app.add_kernel(dotprod_kernel(64));
  return app;
}

Application image_pipeline_app() {
  Application app("image_pipeline",
                  "3x3 smoothing, 8x8 DCT blocks, matrix color "
                  "transform");
  app.add_kernel(filter2d_3x3_kernel(64));
  app.add_kernel(dct8_kernel());
  app.add_kernel(matmul_kernel(8));
  app.add_kernel(matvec_kernel(16));
  return app;
}

Application spectral_analyzer_app() {
  Application app("spectral_analyzer",
                  "Windowing, radix-2 FFT stages, magnitude "
                  "accumulation");
  app.add_kernel(vecadd_kernel(256));  // window multiply-add stage
  for (const std::int64_t half : {128, 64, 32}) {
    app.add_kernel(fft_butterfly_kernel(half));
  }
  app.add_kernel(dotprod_kernel(256));
  return app;
}

std::vector<Application> builtin_applications() {
  return {audio_equalizer_app(), modem_frontend_app(),
          image_pipeline_app(), spectral_analyzer_app()};
}

Application builtin_application(const std::string& name) {
  auto apps = builtin_applications();
  const auto it =
      std::find_if(apps.begin(), apps.end(),
                   [&](const Application& a) { return a.name() == name; });
  check_arg(it != apps.end(),
            "builtin_application: unknown application '" + name + "'");
  return *it;
}

}  // namespace dspaddr::ir
