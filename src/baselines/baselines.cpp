#include "baselines/baselines.hpp"

#include <limits>

#include "core/access_graph.hpp"
#include "core/validate.hpp"
#include "support/check.hpp"

namespace dspaddr::baselines {

namespace {

core::Allocation allocate_with_merge_strategy(
    const ir::AccessSequence& seq, const core::ProblemConfig& config,
    core::MergeStrategy strategy, std::uint64_t seed) {
  core::ProblemConfig modified = config;
  modified.merge.strategy = strategy;
  modified.merge.seed = seed;
  // A baseline must stay a baseline: without this, the default kAuto
  // phase-2 mode silently upgrades small instances to the exact
  // optimum and the "arbitrary merge" comparator measures nothing.
  modified.phase2.mode = core::Phase2Options::Mode::kHeuristic;
  return core::RegisterAllocator(modified).run(seq);
}

core::Allocation from_register_assignment(
    const ir::AccessSequence& seq, const core::ProblemConfig& config,
    const std::vector<std::size_t>& register_of) {
  std::vector<std::vector<std::size_t>> indices(config.registers);
  for (std::size_t i = 0; i < register_of.size(); ++i) {
    check_invariant(register_of[i] < config.registers,
                    "baseline: register index out of range");
    indices[register_of[i]].push_back(i);
  }
  std::vector<core::Path> paths;
  for (auto& list : indices) {
    if (!list.empty()) paths.emplace_back(std::move(list));
  }
  core::validate_allocation(seq, paths, config.registers);
  return core::Allocation(seq, config.cost_model(), std::move(paths), {});
}

}  // namespace

core::Allocation naive_allocate(const ir::AccessSequence& seq,
                                const core::ProblemConfig& config) {
  return allocate_with_merge_strategy(seq, config,
                                      core::MergeStrategy::kFirstPair, 1);
}

core::Allocation random_merge_allocate(const ir::AccessSequence& seq,
                                       const core::ProblemConfig& config,
                                       std::uint64_t seed) {
  return allocate_with_merge_strategy(seq, config,
                                      core::MergeStrategy::kRandomPair, seed);
}

core::Allocation round_robin_allocate(const ir::AccessSequence& seq,
                                      const core::ProblemConfig& config) {
  std::vector<std::size_t> register_of(seq.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    register_of[i] = i % config.registers;
  }
  return from_register_assignment(seq, config, register_of);
}

core::Allocation greedy_online_allocate(const ir::AccessSequence& seq,
                                        const core::ProblemConfig& config) {
  const core::CostModel model = config.cost_model();
  struct RegisterState {
    bool used = false;
    std::size_t last = 0;
  };
  std::vector<RegisterState> registers(config.registers);
  std::vector<std::size_t> register_of(seq.size());

  for (std::size_t i = 0; i < seq.size(); ++i) {
    std::size_t best = 0;
    // Rank candidates by (transition cost, |distance|); an unused
    // register is free (the before-loop setup is not charged).
    int best_cost = std::numeric_limits<int>::max();
    std::int64_t best_distance = std::numeric_limits<std::int64_t>::max();
    for (std::size_t r = 0; r < registers.size(); ++r) {
      int cost = 0;
      std::int64_t distance = 0;
      if (registers[r].used) {
        cost = core::intra_transition_cost(seq, registers[r].last, i, model);
        const auto d = seq.intra_distance(registers[r].last, i);
        distance = d.has_value() ? std::llabs(*d)
                                 : std::numeric_limits<std::int64_t>::max();
      }
      if (cost < best_cost ||
          (cost == best_cost && distance < best_distance)) {
        best = r;
        best_cost = cost;
        best_distance = distance;
      }
    }
    registers[best].used = true;
    registers[best].last = i;
    register_of[i] = best;
  }
  return from_register_assignment(seq, config, register_of);
}

std::vector<NamedAllocator> all_allocators(std::uint64_t random_seed) {
  std::vector<NamedAllocator> list;
  list.push_back({"path-merge",
                  [](const ir::AccessSequence& seq,
                     const core::ProblemConfig& config) {
                    return core::RegisterAllocator(config).run(seq);
                  }});
  list.push_back({"naive", naive_allocate});
  list.push_back({"random-merge",
                  [random_seed](const ir::AccessSequence& seq,
                                const core::ProblemConfig& config) {
                    return random_merge_allocate(seq, config, random_seed);
                  }});
  list.push_back({"round-robin", round_robin_allocate});
  list.push_back({"greedy-online", greedy_online_allocate});
  return list;
}

}  // namespace dspaddr::baselines
