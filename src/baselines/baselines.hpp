// Baseline address-register allocators the paper's heuristic is
// evaluated against.
//
// * naive_allocate       — the paper's comparator (section 4): phase 1
//                          as usual, then "repetitively merges two
//                          arbitrary paths until the register constraint
//                          is met" (deterministically the first two).
// * random_merge_allocate — same, but merging a random pair each step;
//                          averaging over seeds estimates the cost of an
//                          *expected* arbitrary merge order.
// * round_robin_allocate — no path model at all: access i goes to
//                          register i mod K (what a simple compiler
//                          back-end might do).
// * greedy_online_allocate — one left-to-right sweep placing each access
//                          on the register with the cheapest transition
//                          (nearest endpoint on ties).
//
// All baselines return a core::Allocation costed under the same model,
// so every comparison in the benches is apples-to-apples. The merge-
// based baselines pin the phase-2 mode to kHeuristic: the caller's
// exact-search options must never "repair" an arbitrary merge order,
// or the baseline would measure the exact solver instead of itself.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/allocator.hpp"
#include "ir/access_sequence.hpp"

namespace dspaddr::baselines {

/// The paper's "naive" comparator: arbitrary (first-pair) merges.
core::Allocation naive_allocate(const ir::AccessSequence& seq,
                                const core::ProblemConfig& config);

/// Arbitrary merges chosen uniformly at random (seeded).
core::Allocation random_merge_allocate(const ir::AccessSequence& seq,
                                       const core::ProblemConfig& config,
                                       std::uint64_t seed);

/// Access i -> register i mod K.
core::Allocation round_robin_allocate(const ir::AccessSequence& seq,
                                      const core::ProblemConfig& config);

/// Single online sweep, cheapest-transition-first placement.
core::Allocation greedy_online_allocate(const ir::AccessSequence& seq,
                                        const core::ProblemConfig& config);

/// A named allocator for table-driven benches and tests.
struct NamedAllocator {
  std::string name;
  std::function<core::Allocation(const ir::AccessSequence&,
                                 const core::ProblemConfig&)>
      run;
};

/// All baselines plus the paper's allocator ("path-merge"), in a fixed
/// presentation order.
std::vector<NamedAllocator> all_allocators(std::uint64_t random_seed = 1);

}  // namespace dspaddr::baselines
