// Rendering of sweep results to CSV and ASCII tables, so experiment
// outputs can be archived and diffed across runs.
#pragma once

#include <string>

#include "eval/experiment.hpp"
#include "support/csv.hpp"
#include "support/table.hpp"

namespace dspaddr::eval {

/// CSV with one row per sweep cell:
/// n,m,k,k_tilde_mean,naive_mean,naive_ci95,merged_mean,merged_ci95,
/// reduction_percent,constrained_trials,proven_trials.
support::CsvWriter sweep_to_csv(const SweepResult& result);

/// ASCII table mirroring the CSV (used by bench T1 and tools).
support::Table sweep_to_table(const SweepResult& result);

/// One-paragraph textual summary with the grand average (the paper's
/// headline number).
std::string sweep_summary(const SweepResult& result);

}  // namespace dspaddr::eval
