#include "eval/patterns.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace dspaddr::eval {

const char* to_string(PatternFamily family) {
  switch (family) {
    case PatternFamily::kUniform:
      return "uniform";
    case PatternFamily::kClustered:
      return "clustered";
    case PatternFamily::kStrided:
      return "strided";
    case PatternFamily::kSortedNoise:
      return "sorted-noise";
    case PatternFamily::kSkewedStrided:
      return "skewed-strided";
  }
  return "unknown";
}

ir::AccessSequence generate_pattern(const PatternSpec& spec,
                                    support::Rng& rng) {
  check_arg(spec.accesses > 0, "generate_pattern: need at least one access");
  check_arg(spec.offset_range >= 0,
            "generate_pattern: offset range must be non-negative");
  const std::int64_t r = spec.offset_range;
  std::vector<std::int64_t> offsets(spec.accesses);

  switch (spec.family) {
    case PatternFamily::kUniform:
      for (auto& offset : offsets) {
        offset = rng.uniform_int(-r, r);
      }
      break;
    case PatternFamily::kClustered: {
      // A handful of centers; each access picks a center and deviates
      // by at most 2 — mimics windowed stencil accesses.
      const std::size_t centers = std::max<std::size_t>(
          1, spec.accesses / 5);
      std::vector<std::int64_t> center(centers);
      for (auto& c : center) {
        c = rng.uniform_int(-r, r);
      }
      for (auto& offset : offsets) {
        const std::int64_t c = center[rng.index(centers)];
        offset = std::clamp(c + rng.uniform_int(-2, 2), -r, r);
      }
      break;
    }
    case PatternFamily::kStrided: {
      // Coarse lattice spacing, shrunk to 1 for tiny ranges so the
      // lattice keeps at least three points whenever r >= 1; with the
      // old unconditional clamp to >= 2, any r < 2 collapsed every
      // draw onto the single lattice point 0.
      const std::int64_t lattice =
          r == 0 ? 1
                 : std::min<std::int64_t>(r, std::max<std::int64_t>(2, r / 4));
      const std::int64_t steps = r / lattice;
      for (auto& offset : offsets) {
        offset = std::clamp(
            rng.uniform_int(-steps, steps) * lattice +
                rng.uniform_int(-1, 1),
            -r, r);
      }
      break;
    }
    case PatternFamily::kSortedNoise: {
      for (std::size_t i = 0; i < offsets.size(); ++i) {
        // Evenly spread ramp from -r to +r.
        offsets[i] = offsets.size() == 1
                         ? 0
                         : -r + static_cast<std::int64_t>(
                                    (2 * r * i) / (offsets.size() - 1));
      }
      // A few random transpositions break monotonicity. Drawing both
      // endpoints over the full index range allowed self-swaps, which
      // silently produced fewer transpositions than intended; draw the
      // second endpoint from the remaining indices instead.
      const std::size_t swaps =
          offsets.size() >= 2 ? offsets.size() / 4 : 0;
      for (std::size_t s = 0; s < swaps; ++s) {
        const std::size_t a = rng.index(offsets.size());
        std::size_t b = rng.index(offsets.size() - 1);
        if (b >= a) ++b;
        std::swap(offsets[a], offsets[b]);
      }
      break;
    }
    case PatternFamily::kSkewedStrided: {
      // Three stride-1 ramps anchored at -r, 0 and +r. Each access
      // continues the current ramp with high probability, but the
      // switch distribution is skewed: ramp 0 gets most of the stream,
      // the others only occasional visits. The result is a handful of
      // long monotone runs broken by large jumps — the "deep
      // unbalanced tree" workload for the parallel exact solver.
      const std::size_t ramps = 3;
      std::vector<std::int64_t> cursor = {-r, 0, r > 0 ? r : 0};
      std::size_t current = 0;
      for (auto& offset : offsets) {
        // 1-in-4 chance to switch ramps; of the switches, three
        // quarters return to the dominant ramp 0.
        if (rng.index(4) == 0) {
          const std::size_t draw = rng.index(8);
          current = draw < 6 ? 0 : 1 + (draw - 6) % (ramps - 1);
        }
        offset = std::clamp(cursor[current], -r, r);
        ++cursor[current];
        if (cursor[current] > r) {
          cursor[current] = -r;  // wrap the ramp inside the range
        }
      }
      break;
    }
  }
  return ir::AccessSequence::from_offsets(offsets, spec.stride);
}

}  // namespace dspaddr::eval
