#include "eval/patterns.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace dspaddr::eval {

const char* to_string(PatternFamily family) {
  switch (family) {
    case PatternFamily::kUniform:
      return "uniform";
    case PatternFamily::kClustered:
      return "clustered";
    case PatternFamily::kStrided:
      return "strided";
    case PatternFamily::kSortedNoise:
      return "sorted-noise";
  }
  return "unknown";
}

ir::AccessSequence generate_pattern(const PatternSpec& spec,
                                    support::Rng& rng) {
  check_arg(spec.accesses > 0, "generate_pattern: need at least one access");
  check_arg(spec.offset_range >= 0,
            "generate_pattern: offset range must be non-negative");
  const std::int64_t r = spec.offset_range;
  std::vector<std::int64_t> offsets(spec.accesses);

  switch (spec.family) {
    case PatternFamily::kUniform:
      for (auto& offset : offsets) {
        offset = rng.uniform_int(-r, r);
      }
      break;
    case PatternFamily::kClustered: {
      // A handful of centers; each access picks a center and deviates
      // by at most 2 — mimics windowed stencil accesses.
      const std::size_t centers = std::max<std::size_t>(
          1, spec.accesses / 5);
      std::vector<std::int64_t> center(centers);
      for (auto& c : center) {
        c = rng.uniform_int(-r, r);
      }
      for (auto& offset : offsets) {
        const std::int64_t c = center[rng.index(centers)];
        offset = std::clamp(c + rng.uniform_int(-2, 2), -r, r);
      }
      break;
    }
    case PatternFamily::kStrided: {
      const std::int64_t lattice = std::max<std::int64_t>(2, r / 4);
      for (auto& offset : offsets) {
        const std::int64_t steps = lattice == 0 ? 0 : r / lattice;
        offset = std::clamp(
            rng.uniform_int(-steps, steps) * lattice +
                rng.uniform_int(-1, 1),
            -r, r);
      }
      break;
    }
    case PatternFamily::kSortedNoise: {
      for (std::size_t i = 0; i < offsets.size(); ++i) {
        // Evenly spread ramp from -r to +r.
        offsets[i] = offsets.size() == 1
                         ? 0
                         : -r + static_cast<std::int64_t>(
                                    (2 * r * i) / (offsets.size() - 1));
      }
      // A few random transpositions break monotonicity.
      const std::size_t swaps = offsets.size() / 4;
      for (std::size_t s = 0; s < swaps; ++s) {
        std::swap(offsets[rng.index(offsets.size())],
                  offsets[rng.index(offsets.size())]);
      }
      break;
    }
  }
  return ir::AccessSequence::from_offsets(offsets, spec.stride);
}

}  // namespace dspaddr::eval
