#include "eval/batch.hpp"

#include <algorithm>
#include <atomic>
#include <thread>

#include "agu/codegen.hpp"
#include "agu/metrics.hpp"
#include "agu/simulator.hpp"
#include "core/allocator.hpp"
#include "core/modify_registers.hpp"
#include "ir/layout.hpp"
#include "support/check.hpp"
#include "support/strings.hpp"

namespace dspaddr::eval {
namespace {

/// One grid cell before execution.
struct BatchTask {
  const ir::Kernel* kernel = nullptr;
  agu::AguSpec machine;
  core::Phase2Options phase2;
};

std::vector<BatchTask> build_grid(const BatchConfig& config) {
  std::vector<BatchTask> tasks;
  for (const ir::Kernel& kernel : config.kernels) {
    for (const agu::AguSpec& machine : config.machines) {
      // An empty override sweeps exactly the machine's own value.
      const std::vector<std::size_t> registers =
          config.register_counts.empty()
              ? std::vector<std::size_t>{machine.address_registers}
              : config.register_counts;
      const std::vector<std::int64_t> ranges =
          config.modify_ranges.empty()
              ? std::vector<std::int64_t>{machine.modify_range}
              : config.modify_ranges;
      for (const std::size_t k : registers) {
        for (const std::int64_t m : ranges) {
          BatchTask task;
          task.kernel = &kernel;
          task.machine = machine;
          task.machine.address_registers = k;
          task.machine.modify_range = m;
          task.phase2 = config.phase2;
          tasks.push_back(task);
        }
      }
    }
  }
  return tasks;
}

BatchRow run_cell(const BatchTask& task) {
  BatchRow row;
  row.kernel = task.kernel->name();
  row.machine = task.machine.name;
  row.registers = task.machine.address_registers;
  row.modify_range = task.machine.modify_range;
  row.modify_registers = task.machine.modify_registers;
  try {
    const ir::AccessSequence seq = ir::lower(*task.kernel);
    row.accesses = seq.size();

    core::ProblemConfig config;
    config.modify_range = task.machine.modify_range;
    config.registers = task.machine.address_registers;
    config.phase2 = task.phase2;
    const core::Allocation allocation =
        core::RegisterAllocator(config).run(seq);
    row.k_tilde = allocation.stats().k_tilde;
    row.allocation_cost = allocation.cost();
    row.phase2_exact = allocation.stats().phase2_exact;
    row.phase2_proven = allocation.stats().phase2_proven;
    row.phase2_gap = allocation.stats().phase2_gap;
    row.phase2_nodes = allocation.stats().phase2_nodes;

    const core::ModifyRegisterPlan plan = core::plan_modify_registers(
        seq, allocation, task.machine.modify_registers);
    row.residual_cost = plan.residual_cost;

    const agu::Program program = agu::generate_code(seq, allocation, plan);
    const std::uint64_t iterations =
        static_cast<std::uint64_t>(task.kernel->iterations());
    const agu::SimResult sim = agu::Simulator{}.run(program, seq, iterations);
    row.verified =
        agu::verified_against_cost(sim, iterations, plan.residual_cost);

    const agu::AddressingComparison comparison =
        agu::compare_addressing(*task.kernel, allocation);
    row.size_reduction_percent = comparison.size_reduction_percent;
    row.speed_reduction_percent = comparison.speed_reduction_percent;
  } catch (const std::exception& e) {
    // Anything escaping the worker lambda would std::terminate the
    // whole sweep — keep the one-bad-cell-never-aborts contract.
    row.error = e.what();
  }
  return row;
}

}  // namespace

BatchResult run_batch(const BatchConfig& config) {
  check_arg(config.jobs >= 1, "run_batch: jobs must be >= 1");

  const std::vector<BatchTask> tasks = build_grid(config);
  BatchResult result;
  result.rows.resize(tasks.size());

  // Workers claim cells through a shared counter and write each result
  // into its grid slot; the output order is the grid order whatever the
  // interleaving.
  std::atomic<std::size_t> next{0};
  const auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= tasks.size()) {
        return;
      }
      result.rows[i] = run_cell(tasks[i]);
    }
  };

  const std::size_t thread_count =
      std::min<std::size_t>(config.jobs, std::max<std::size_t>(tasks.size(), 1));
  if (thread_count <= 1) {
    worker();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(thread_count);
    for (std::size_t t = 0; t < thread_count; ++t) {
      threads.emplace_back(worker);
    }
    for (std::thread& thread : threads) {
      thread.join();
    }
  }

  for (const BatchRow& row : result.rows) {
    if (!row.error.empty()) {
      ++result.failures;
    }
  }
  return result;
}

namespace {

std::string k_tilde_field(const BatchRow& row) {
  if (!row.error.empty() || !row.k_tilde.has_value()) {
    return "-";
  }
  return std::to_string(*row.k_tilde);
}

std::string phase2_field(const BatchRow& row) {
  if (!row.error.empty()) return "-";
  return row.phase2_exact ? "exact" : "heuristic";
}

std::string proven_field(const BatchRow& row) {
  if (!row.error.empty()) return "-";
  return row.phase2_proven ? "yes" : "no";
}

std::string gap_field(const BatchRow& row) {
  // The gap is only meaningful when the exact search ran: heuristic
  // cells have no lower bound to measure against.
  if (!row.error.empty() || !row.phase2_exact) return "-";
  return std::to_string(row.phase2_gap);
}

}  // namespace

support::CsvWriter batch_to_csv(const BatchResult& result) {
  support::CsvWriter csv({"kernel", "machine", "registers", "modify_range",
                          "modify_registers", "accesses", "k_tilde",
                          "allocation_cost", "residual_cost", "phase2",
                          "proven", "gap", "phase2_nodes",
                          "size_reduction_percent",
                          "speed_reduction_percent", "verified", "error"});
  for (const BatchRow& row : result.rows) {
    csv.add_row({
        row.kernel,
        row.machine,
        std::to_string(row.registers),
        std::to_string(row.modify_range),
        std::to_string(row.modify_registers),
        std::to_string(row.accesses),
        k_tilde_field(row),
        std::to_string(row.allocation_cost),
        std::to_string(row.residual_cost),
        phase2_field(row),
        proven_field(row),
        gap_field(row),
        std::to_string(row.phase2_nodes),
        support::format_fixed(row.size_reduction_percent, 2),
        support::format_fixed(row.speed_reduction_percent, 2),
        row.error.empty() ? (row.verified ? "yes" : "no") : "-",
        row.error,
    });
  }
  return csv;
}

support::Table batch_to_table(const BatchResult& result) {
  support::Table table({"kernel", "machine", "K", "M", "L", "N", "K~",
                        "cost", "residual", "phase2", "proven", "gap",
                        "size red.", "speed red.", "verified"});
  for (const BatchRow& row : result.rows) {
    if (!row.error.empty()) {
      table.add_row({row.kernel, row.machine, std::to_string(row.registers),
                     std::to_string(row.modify_range),
                     std::to_string(row.modify_registers), "-", "-", "-",
                     "-", "-", "-", "-", "-", "-",
                     "error: " + row.error});
      continue;
    }
    table.add_row({
        row.kernel,
        row.machine,
        std::to_string(row.registers),
        std::to_string(row.modify_range),
        std::to_string(row.modify_registers),
        std::to_string(row.accesses),
        k_tilde_field(row),
        std::to_string(row.allocation_cost),
        std::to_string(row.residual_cost),
        phase2_field(row),
        proven_field(row),
        gap_field(row),
        support::format_percent(row.size_reduction_percent),
        support::format_percent(row.speed_reduction_percent),
        row.verified ? "yes" : "no",
    });
  }
  return table;
}

}  // namespace dspaddr::eval
