#include "eval/batch.hpp"

#include <algorithm>
#include <memory>

#include "engine/portfolio.hpp"
#include "engine/serialize.hpp"
#include "engine/strategy.hpp"
#include "runtime/task_pool.hpp"
#include "support/check.hpp"
#include "support/strings.hpp"

namespace dspaddr::eval {
namespace {

/// One grid cell before execution.
struct BatchTask {
  const ir::Kernel* kernel = nullptr;
  agu::AguSpec machine;
  std::string layout;
  std::string strategy;
  core::Phase2Options phase2;
};

std::vector<BatchTask> build_grid(const BatchConfig& config) {
  // Empty strategy axes collapse to the defaults, like the K/M axes
  // collapse to each machine's own values.
  const std::vector<std::string> layouts =
      config.layouts.empty()
          ? std::vector<std::string>{engine::kDefaultLayout}
          : config.layouts;
  const std::vector<std::string> strategies =
      config.strategies.empty()
          ? std::vector<std::string>{engine::kDefaultStrategy}
          : config.strategies;

  std::vector<BatchTask> tasks;
  for (const ir::Kernel& kernel : config.kernels) {
    for (const agu::AguSpec& machine : config.machines) {
      // An empty override sweeps exactly the machine's own value.
      const std::vector<std::size_t> registers =
          config.register_counts.empty()
              ? std::vector<std::size_t>{machine.address_registers()}
              : config.register_counts;
      const std::vector<std::int64_t> ranges =
          config.modify_ranges.empty()
              ? std::vector<std::int64_t>{machine.modify_range()}
              : config.modify_ranges;
      for (const std::size_t k : registers) {
        for (const std::int64_t m : ranges) {
          for (const std::string& layout : layouts) {
            for (const std::string& strategy : strategies) {
              BatchTask task;
              task.kernel = &kernel;
              task.machine = machine;
              // Only explicit sweeps override the spec: an asymmetric
              // window or free widths survive the no-override path
              // untouched (set_modify_range would symmetrize them).
              if (!config.register_counts.empty()) {
                task.machine.set_address_registers(k);
              }
              if (!config.modify_ranges.empty()) {
                task.machine.set_modify_range(m);
              }
              task.layout = layout;
              task.strategy = strategy;
              task.phase2 = config.phase2;
              tasks.push_back(task);
            }
          }
        }
      }
    }
  }
  return tasks;
}

}  // namespace

BatchRow row_from_result(const engine::Result& result) {
  BatchRow row;
  row.kernel = result.kernel.name();
  row.machine = result.machine.name;
  row.registers = result.machine.address_registers();
  row.modify_range = result.machine.modify_range();
  row.modify_registers = result.machine.modify_registers();
  row.layout = result.layout;
  row.strategy = result.strategy;
  row.accesses = result.accesses;
  row.k_tilde = result.k_tilde;
  row.allocation_cost = result.allocation_cost;
  row.residual_cost = result.plan.residual_cost;
  row.phase2_exact = result.stats.phase2_exact;
  row.phase2_proven = result.stats.phase2_proven;
  row.phase2_gap = result.stats.phase2_gap;
  row.phase2_nodes = result.stats.phase2_nodes;
  row.phase2_table_cap_hits = result.stats.phase2_table_cap_hits;
  row.size_reduction_percent = result.size_reduction_percent;
  row.speed_reduction_percent = result.speed_reduction_percent;
  row.verified = result.verified;
  if (result.error.has_value()) {
    row.error = result.error->message;
  }
  return row;
}

BatchResult run_batch(const BatchConfig& config, engine::Engine& engine) {
  check_arg(config.jobs >= 1, "run_batch: jobs must be >= 1");

  const std::vector<BatchTask> tasks = build_grid(config);
  BatchResult result;
  result.rows.resize(tasks.size());

  // Auto cells race through one shared portfolio. Sequential racing
  // (jobs=1 — the grid already parallelizes across cells) with
  // learning off keeps each cell's winner a pure function of the cell,
  // so the CSV stays order- and jobs-independent.
  std::unique_ptr<engine::Portfolio> portfolio;
  const bool any_auto = std::any_of(
      tasks.begin(), tasks.end(), [](const BatchTask& task) {
        return task.layout == engine::kAutoStrategy ||
               task.strategy == engine::kAutoStrategy;
      });
  if (any_auto) {
    engine::PortfolioOptions portfolio_options;
    portfolio_options.jobs = 1;
    portfolio_options.learn = false;
    portfolio_options.race_budget_ms = config.race_budget_ms;
    portfolio = std::make_unique<engine::Portfolio>(engine,
                                                    portfolio_options);
  }

  // One runtime::TaskPool task per grid cell, each writing its own
  // pre-sized row slot; the output order is the grid order whatever
  // the interleaving. The engine is shared: cells differing only in
  // kernel or machine *names* (or plain repeats) are answered from its
  // cache, and concurrent duplicates coalesce into one computation
  // (single-flight). The bounded queue keeps the submission loop from
  // materializing closures for the whole grid at once.
  const std::size_t workers = std::min<std::size_t>(
      config.jobs, std::max<std::size_t>(tasks.size(), 1));
  runtime::TaskPool pool(workers, 2 * workers);
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    pool.submit([&engine, &result, &tasks, &portfolio, i] {
      engine::Request request;
      request.kernel = *tasks[i].kernel;
      request.machine = tasks[i].machine;
      request.layout = tasks[i].layout;
      request.strategy = tasks[i].strategy;
      request.phase2 = tasks[i].phase2;
      // An auto cell's row is the race winner's: layout/strategy show
      // what "auto" resolved to for that cell.
      result.rows[i] = row_from_result(engine::Portfolio::is_auto(request)
                                           ? portfolio->run(request)
                                           : engine.run(request));
    });
  }
  pool.wait_idle();
  // engine::Engine::run reports per-request failures in-band, so a
  // pool-level failure is a programming error worth surfacing loudly.
  pool.rethrow_first_failure();

  for (const BatchRow& row : result.rows) {
    if (!row.error.empty()) {
      ++result.failures;
    }
  }
  return result;
}

BatchResult run_batch(const BatchConfig& config) {
  // Size the private cache to the whole grid so every repeated cell is
  // a hit within this sweep.
  const std::size_t cells =
      std::max<std::size_t>(256, config.kernels.size() *
                                     config.machines.size() *
                                     std::max<std::size_t>(
                                         config.register_counts.size(), 1) *
                                     std::max<std::size_t>(
                                         config.modify_ranges.size(), 1) *
                                     std::max<std::size_t>(
                                         config.layouts.size(), 1) *
                                     std::max<std::size_t>(
                                         config.strategies.size(), 1));
  engine::Engine::Options options;
  options.cache_capacity = cells;
  options.store = config.store;
  engine::Engine engine(std::move(options));
  const BatchResult result = run_batch(config, engine);
  // Dumped here, not by the CLI layer, because the engine (and its
  // registry) is scoped to this call.
  if (!config.metrics_csv.empty()) {
    engine::write_metrics_csv(config.metrics_csv, engine);
  }
  return result;
}

namespace {

std::string k_tilde_field(const BatchRow& row) {
  if (!row.k_tilde.has_value()) {
    return "-";
  }
  return std::to_string(*row.k_tilde);
}

std::string phase2_field(const BatchRow& row) {
  return row.phase2_exact ? "exact" : "heuristic";
}

std::string proven_field(const BatchRow& row) {
  return row.phase2_proven ? "yes" : "no";
}

std::string gap_field(const BatchRow& row) {
  // The gap is only meaningful when the exact search ran: heuristic
  // cells have no lower bound to measure against.
  if (!row.phase2_exact) return "-";
  return std::to_string(row.phase2_gap);
}

}  // namespace

std::vector<std::string> batch_csv_header() {
  return {"kernel", "machine", "registers", "modify_range",
          "modify_registers", "layout", "strategy", "accesses", "k_tilde",
          "allocation_cost", "residual_cost", "phase2", "proven", "gap",
          "phase2_nodes", "table_cap_hits", "size_reduction_percent",
          "speed_reduction_percent", "verified", "error"};
}

std::vector<std::string> batch_row_fields(const BatchRow& row) {
  if (!row.error.empty()) {
    // Identity columns plus the error; every metric column is empty so
    // an errored cell can never be read as a zero-cost result.
    return {row.kernel, row.machine, std::to_string(row.registers),
            std::to_string(row.modify_range),
            std::to_string(row.modify_registers), row.layout, row.strategy,
            "", "", "", "", "", "", "", "", "", "", "", "", row.error};
  }
  return {
      row.kernel,
      row.machine,
      std::to_string(row.registers),
      std::to_string(row.modify_range),
      std::to_string(row.modify_registers),
      row.layout,
      row.strategy,
      std::to_string(row.accesses),
      k_tilde_field(row),
      std::to_string(row.allocation_cost),
      std::to_string(row.residual_cost),
      phase2_field(row),
      proven_field(row),
      gap_field(row),
      std::to_string(row.phase2_nodes),
      std::to_string(row.phase2_table_cap_hits),
      support::format_fixed(row.size_reduction_percent, 2),
      support::format_fixed(row.speed_reduction_percent, 2),
      row.verified ? "yes" : "no",
      row.error,
  };
}

support::CsvWriter batch_to_csv(const BatchResult& result) {
  support::CsvWriter csv(batch_csv_header());
  for (const BatchRow& row : result.rows) {
    csv.add_row(batch_row_fields(row));
  }
  return csv;
}

support::Table batch_to_table(const BatchResult& result) {
  support::Table table({"kernel", "machine", "K", "M", "L", "layout",
                        "strategy", "N", "K~", "cost", "residual", "phase2",
                        "proven", "gap", "size red.", "speed red.",
                        "verified"});
  for (const BatchRow& row : result.rows) {
    if (!row.error.empty()) {
      table.add_row({row.kernel, row.machine, std::to_string(row.registers),
                     std::to_string(row.modify_range),
                     std::to_string(row.modify_registers), row.layout,
                     row.strategy, "-", "-", "-", "-", "-", "-", "-", "-",
                     "-", "error: " + row.error});
      continue;
    }
    table.add_row({
        row.kernel,
        row.machine,
        std::to_string(row.registers),
        std::to_string(row.modify_range),
        std::to_string(row.modify_registers),
        row.layout,
        row.strategy,
        std::to_string(row.accesses),
        k_tilde_field(row),
        std::to_string(row.allocation_cost),
        std::to_string(row.residual_cost),
        phase2_field(row),
        proven_field(row),
        gap_field(row),
        support::format_percent(row.size_reduction_percent),
        support::format_percent(row.speed_reduction_percent),
        row.verified ? "yes" : "no",
    });
  }
  return table;
}

}  // namespace dspaddr::eval
