// Address traces: exporting the addresses a sequence touches and
// inferring an AccessSequence back from a raw trace.
//
// This is the bridge to real-world inputs: profile an existing binary
// (or a simulator) into "one address per access slot per iteration",
// and `infer_sequence` reconstructs the offsets and strides the
// allocator needs — no source required. Inference checks that the trace
// is affine (each slot advances by a constant per iteration) and
// reports the first violation otherwise.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ir/access_sequence.hpp"

namespace dspaddr::eval {

/// The addresses `seq` touches over `iterations` iterations, in
/// execution order (iteration-major, body order within an iteration).
std::vector<std::int64_t> to_trace(const ir::AccessSequence& seq,
                                   std::uint64_t iterations);

/// Result of trace inference.
struct InferenceResult {
  std::optional<ir::AccessSequence> sequence;
  /// Human-readable reason when inference failed.
  std::string error;
};

/// Reconstructs the access sequence from a trace of
/// `accesses_per_iteration`-sized iterations. Needs at least two
/// iterations to establish strides; the trace length must be a multiple
/// of `accesses_per_iteration`.
InferenceResult infer_sequence(const std::vector<std::int64_t>& trace,
                               std::size_t accesses_per_iteration);

}  // namespace dspaddr::eval
