// The statistical experiment of the paper's Results section (T1):
// random access patterns over a sweep of (N, M, K), path-merge heuristic
// versus the naive arbitrary-merge allocator, averaged over seeds.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/allocator.hpp"
#include "eval/patterns.hpp"
#include "support/stats.hpp"

namespace dspaddr::eval {

/// One sweep cell: a fixed (N, M, K) with `trials` random patterns.
struct SweepCell {
  std::size_t accesses = 10;   // N
  std::int64_t modify_range = 1;  // M
  std::size_t registers = 1;   // K
};

/// Sweep configuration.
struct SweepConfig {
  std::vector<std::size_t> access_counts;    // N values
  std::vector<std::int64_t> modify_ranges;   // M values
  std::vector<std::size_t> register_counts;  // K values
  std::size_t trials = 100;
  std::uint64_t seed = 0xD5FADD21;
  PatternSpec pattern;  // accesses overwritten per cell
  /// Phase-1 mode for both contenders (kAuto is exact for small N).
  core::Phase1Options phase1;
  /// Phase-2 mode of the path-merge contender. Defaults to the paper's
  /// pure heuristic so T1 keeps measuring merging, not the exact
  /// search; switch to kAuto/kExact to sweep proven-optimality rates.
  core::Phase2Options phase2 = heuristic_phase2();

  /// The paper's grid: N in {10..100 step 10}, M in {1,2,3},
  /// K in {1,2,4,8}, 100 trials.
  static SweepConfig paper_grid();
  /// A reduced grid for tests and quick runs.
  static SweepConfig smoke_grid();

 private:
  static core::Phase2Options heuristic_phase2() {
    core::Phase2Options options;
    options.mode = core::Phase2Options::Mode::kHeuristic;
    return options;
  }
};

/// Aggregated results of one cell.
struct CellResult {
  SweepCell cell;
  support::RunningStats naive_cost;
  support::RunningStats merged_cost;
  support::RunningStats k_tilde;
  /// Mean percentage reduction of merged vs naive (paper's ~40 %).
  double mean_reduction_percent = 0.0;
  /// Trials where merging was needed at all (K < K~).
  std::size_t constrained_trials = 0;
  /// Trials whose allocation cost was proven optimal (phase-2 exact
  /// search or a trivially free allocation).
  std::size_t proven_trials = 0;
};

/// Full sweep results.
struct SweepResult {
  std::vector<CellResult> cells;
  /// Grand average of per-cell mean reductions over constrained cells.
  double grand_mean_reduction_percent = 0.0;
};

/// Runs the sweep. Deterministic in `config.seed`.
SweepResult run_random_pattern_sweep(const SweepConfig& config);

}  // namespace dspaddr::eval
