// Random access-pattern generators (experiment workloads).
//
// The paper evaluates on "random access patterns and a variety of
// parameters N, M and K" without fixing a distribution; the uniform
// generator is the default reproduction, and the clustered / strided /
// sorted-noise families probe robustness of the conclusions to the
// workload shape (see DESIGN.md, substitutions).
#pragma once

#include <cstdint>
#include <string>

#include "ir/access_sequence.hpp"
#include "support/rng.hpp"

namespace dspaddr::eval {

enum class PatternFamily {
  /// Offsets i.i.d. uniform on [-offset_range, offset_range].
  kUniform,
  /// Offsets drawn around a few cluster centers (locality, like
  /// windowed filters).
  kClustered,
  /// Offsets on a coarse lattice plus small jitter (like interleaved
  /// multi-channel data).
  kStrided,
  /// A sorted ramp with random transpositions (almost-monotone sweeps).
  kSortedNoise,
  /// A few stride-1 ramps at far-apart bases, interleaved with a heavy
  /// skew toward one ramp. The far jumps defeat cheap suffix bounds
  /// early while the dominant ramp keeps one branch much deeper than
  /// its siblings, so branch-and-bound trees come out deep and
  /// unbalanced — the workload the work-stealing scheduler is for.
  kSkewedStrided,
};

const char* to_string(PatternFamily family);

/// Specification of one random pattern draw.
struct PatternSpec {
  std::size_t accesses = 10;            // N
  std::int64_t offset_range = 10;       // offsets within [-R, R]
  std::int64_t stride = 1;              // loop stride
  PatternFamily family = PatternFamily::kUniform;
};

/// Draws one access sequence from the family.
ir::AccessSequence generate_pattern(const PatternSpec& spec,
                                    support::Rng& rng);

}  // namespace dspaddr::eval
