// Multi-threaded batch experiment runner.
//
// Fans engine::Engine::run out over the cross product
// kernels x machines x register counts x modify ranges x layouts x
// allocation strategies on the shared runtime::TaskPool. All workers
// share one Engine, so kernels repeated across the machine grid hit
// the fingerprint cache. Rows are stored in grid order regardless of
// thread scheduling, so the rendered CSV is byte-identical across
// --jobs values — the property that makes sweep outputs diffable
// across runs and machines.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "agu/machines.hpp"
#include "core/allocator.hpp"
#include "engine/engine.hpp"
#include "ir/kernel.hpp"
#include "support/csv.hpp"
#include "support/table.hpp"

namespace dspaddr::eval {

/// The batch grid. Empty override vectors mean "use each machine's own
/// value" — the common case when comparing catalog AGUs as-is.
struct BatchConfig {
  std::vector<ir::Kernel> kernels;
  std::vector<agu::AguSpec> machines;
  /// Address-register counts K to sweep (empty: each machine's K).
  std::vector<std::size_t> register_counts;
  /// Modify ranges M to sweep (empty: each machine's M).
  std::vector<std::int64_t> modify_ranges;
  /// Layout strategies to sweep (empty: just engine::kDefaultLayout).
  /// An "auto" entry races every registered layout for that cell
  /// through the portfolio engine; the cell's row is the winner's.
  std::vector<std::string> layouts;
  /// Allocation strategies to sweep (empty: engine::kDefaultStrategy).
  /// "auto" entries race like layout ones.
  std::vector<std::string> strategies;
  /// Worker threads (>= 1). Never affects results, only wall time.
  std::size_t jobs = 1;
  /// Wall-clock deadline of each auto cell's race; 0 = none. Auto
  /// cells race sequentially with learning off, so with no deadline
  /// their rows stay byte-identical across jobs levels and reruns.
  std::int64_t race_budget_ms = 0;
  /// Phase-2 solver selection and budgets, applied to every cell. A
  /// nonzero time budget trades byte-identical reruns for a wall-clock
  /// cap; the node budget alone keeps the CSV deterministic.
  core::Phase2Options phase2;
  /// Persistent result store for the sweep's engine (--store); null =
  /// none. A later sweep over the same file answers repeated cells
  /// from disk. Ignored by the caller-owned-engine overload.
  std::shared_ptr<store::ResultStore> store;
  /// Write the sweep engine's metrics registry as CSV to this path
  /// before the engine dies (--metrics-csv); empty = no dump. Ignored
  /// by the caller-owned-engine overload.
  std::string metrics_csv;
};

/// One grid cell's outcome. When a pipeline stage fails (e.g. a
/// register count of 0), `error` carries the message, fields of the
/// stages that did complete keep their values and the rest stay at
/// their defaults — one bad cell never aborts the sweep. The CSV
/// renders every metric column of an errored row as an empty field so
/// a failure can never be mistaken for a genuine zero-cost result.
struct BatchRow {
  std::string kernel;
  std::string machine;
  std::size_t registers = 0;
  std::int64_t modify_range = 0;
  std::size_t modify_registers = 0;
  std::string layout;
  std::string strategy;
  std::size_t accesses = 0;
  /// K~ from phase 1 (nullopt when no zero-cost cover exists).
  std::optional<std::size_t> k_tilde;
  int allocation_cost = 0;
  /// Cost left after modify-register planning.
  int residual_cost = 0;
  /// Whether the exact phase-2 search ran for this cell.
  bool phase2_exact = false;
  /// Whether the allocation cost is provably optimal.
  bool phase2_proven = false;
  /// Anytime optimality gap (0 when proven; meaningless when the exact
  /// search did not run — rendered as "-" then).
  int phase2_gap = 0;
  /// Nodes explored by the phase-2 search.
  std::uint64_t phase2_nodes = 0;
  /// Dominance lookups refused insertion because the phase-2
  /// transposition table was at its cap (solver saturation signal).
  std::uint64_t phase2_table_cap_hits = 0;
  double size_reduction_percent = 0.0;
  double speed_reduction_percent = 0.0;
  bool verified = false;
  std::string error;
};

struct BatchResult {
  /// One row per grid cell, in kernel-major grid order.
  std::vector<BatchRow> rows;
  /// Rows whose pipeline threw.
  std::size_t failures = 0;
};

/// Runs the grid on `config.jobs` threads over a private Engine sized
/// to the grid. Deterministic: the result depends only on the grid,
/// never on scheduling (cached and recomputed cells are value-equal).
BatchResult run_batch(const BatchConfig& config);

/// Same, against a caller-owned Engine (shared cache across sweeps).
BatchResult run_batch(const BatchConfig& config, engine::Engine& engine);

/// Flattens one engine result into the row the CSV/table renderers
/// consume — the single conversion point shared by the batch runner
/// and the single-run CLI.
BatchRow row_from_result(const engine::Result& result);

/// Column names of the batch CSV schema.
std::vector<std::string> batch_csv_header();

/// One row's CSV fields, aligned with batch_csv_header(). Errored rows
/// render empty metric fields. Shared by batch_to_csv and the CLI's
/// single-run CSV so the two schemas cannot drift.
std::vector<std::string> batch_row_fields(const BatchRow& row);

/// CSV with one row per grid cell (stable header and field formatting).
support::CsvWriter batch_to_csv(const BatchResult& result);

/// ASCII table mirroring the CSV.
support::Table batch_to_table(const BatchResult& result);

}  // namespace dspaddr::eval
