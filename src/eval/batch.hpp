// Multi-threaded batch experiment runner.
//
// Fans the full pipeline (lower -> allocate -> MR plan -> codegen ->
// simulate -> metrics) out over the cross product
// kernels x machines x register counts x modify ranges on a small
// thread pool. Rows are stored in grid order regardless of thread
// scheduling, so the rendered CSV is byte-identical across --jobs
// values — the property that makes sweep outputs diffable across runs
// and machines.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "agu/machines.hpp"
#include "core/allocator.hpp"
#include "ir/kernel.hpp"
#include "support/csv.hpp"
#include "support/table.hpp"

namespace dspaddr::eval {

/// The batch grid. Empty override vectors mean "use each machine's own
/// value" — the common case when comparing catalog AGUs as-is.
struct BatchConfig {
  std::vector<ir::Kernel> kernels;
  std::vector<agu::AguSpec> machines;
  /// Address-register counts K to sweep (empty: each machine's K).
  std::vector<std::size_t> register_counts;
  /// Modify ranges M to sweep (empty: each machine's M).
  std::vector<std::int64_t> modify_ranges;
  /// Worker threads (>= 1). Never affects results, only wall time.
  std::size_t jobs = 1;
  /// Phase-2 solver selection and budgets, applied to every cell. A
  /// nonzero time budget trades byte-identical reruns for a wall-clock
  /// cap; the node budget alone keeps the CSV deterministic.
  core::Phase2Options phase2;
};

/// One grid cell's outcome. When the pipeline throws (e.g. a register
/// count of 0), `error` carries the message and the numeric fields stay
/// at their defaults — one bad cell never aborts the sweep.
struct BatchRow {
  std::string kernel;
  std::string machine;
  std::size_t registers = 0;
  std::int64_t modify_range = 0;
  std::size_t modify_registers = 0;
  std::size_t accesses = 0;
  /// K~ from phase 1 (nullopt when no zero-cost cover exists).
  std::optional<std::size_t> k_tilde;
  int allocation_cost = 0;
  /// Cost left after modify-register planning.
  int residual_cost = 0;
  /// Whether the exact phase-2 search ran for this cell.
  bool phase2_exact = false;
  /// Whether the allocation cost is provably optimal.
  bool phase2_proven = false;
  /// Anytime optimality gap (0 when proven; meaningless when the exact
  /// search did not run — rendered as "-" then).
  int phase2_gap = 0;
  /// Nodes explored by the phase-2 search.
  std::uint64_t phase2_nodes = 0;
  double size_reduction_percent = 0.0;
  double speed_reduction_percent = 0.0;
  bool verified = false;
  std::string error;
};

struct BatchResult {
  /// One row per grid cell, in kernel-major grid order.
  std::vector<BatchRow> rows;
  /// Rows whose pipeline threw.
  std::size_t failures = 0;
};

/// Runs the grid on `config.jobs` threads. Deterministic: the result
/// depends only on the grid, never on scheduling.
BatchResult run_batch(const BatchConfig& config);

/// CSV with one row per grid cell (stable header and field formatting).
support::CsvWriter batch_to_csv(const BatchResult& result);

/// ASCII table mirroring the CSV.
support::Table batch_to_table(const BatchResult& result);

}  // namespace dspaddr::eval
