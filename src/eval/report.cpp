#include "eval/report.hpp"

#include "support/strings.hpp"

namespace dspaddr::eval {

support::CsvWriter sweep_to_csv(const SweepResult& result) {
  support::CsvWriter csv({"n", "m", "k", "k_tilde_mean", "naive_mean",
                          "naive_ci95", "merged_mean", "merged_ci95",
                          "reduction_percent", "constrained_trials",
                          "proven_trials"});
  for (const CellResult& cell : result.cells) {
    csv.add_row({
        std::to_string(cell.cell.accesses),
        std::to_string(cell.cell.modify_range),
        std::to_string(cell.cell.registers),
        support::format_fixed(cell.k_tilde.mean(), 3),
        support::format_fixed(cell.naive_cost.mean(), 4),
        support::format_fixed(cell.naive_cost.ci95_half_width(), 4),
        support::format_fixed(cell.merged_cost.mean(), 4),
        support::format_fixed(cell.merged_cost.ci95_half_width(), 4),
        support::format_fixed(cell.mean_reduction_percent, 2),
        std::to_string(cell.constrained_trials),
        std::to_string(cell.proven_trials),
    });
  }
  return csv;
}

support::Table sweep_to_table(const SweepResult& result) {
  support::Table table({"N", "M", "K", "K~ (mean)", "naive cost",
                        "path-merge cost", "reduction", "proven"});
  for (const CellResult& cell : result.cells) {
    table.add_row({
        std::to_string(cell.cell.accesses),
        std::to_string(cell.cell.modify_range),
        std::to_string(cell.cell.registers),
        support::format_fixed(cell.k_tilde.mean(), 1),
        support::format_fixed(cell.naive_cost.mean(), 2),
        support::format_fixed(cell.merged_cost.mean(), 2),
        support::format_percent(cell.mean_reduction_percent),
        std::to_string(cell.proven_trials),
    });
  }
  return table;
}

std::string sweep_summary(const SweepResult& result) {
  std::size_t constrained_cells = 0;
  for (const CellResult& cell : result.cells) {
    if (cell.naive_cost.mean() > 0.0) ++constrained_cells;
  }
  return "Across " + std::to_string(result.cells.size()) +
         " sweep cells (" + std::to_string(constrained_cells) +
         " with nonzero naive cost), cost-guided path merging reduced "
         "the number of unit-cost address computations by " +
         support::format_percent(result.grand_mean_reduction_percent) +
         " on average (paper: ~40 %).";
}

}  // namespace dspaddr::eval
