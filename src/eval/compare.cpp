#include "eval/compare.hpp"

#include <limits>

#include "engine/strategy.hpp"
#include "support/check.hpp"

namespace dspaddr::eval {
namespace {

std::string delta_field(std::int64_t delta) {
  // Explicit '+' so a regression is visually distinct from the
  // reference row's 0.
  return delta > 0 ? "+" + std::to_string(delta) : std::to_string(delta);
}

}  // namespace

CompareResult run_compare(const CompareConfig& config,
                          engine::Engine& engine) {
  const std::vector<std::string> layouts =
      config.layouts.empty()
          ? std::vector<std::string>{engine::kDefaultLayout}
          : config.layouts;
  const std::vector<std::string> strategies =
      config.strategies.empty()
          ? engine::StrategyRegistry::builtin().allocation_names()
          : config.strategies;

  CompareResult result;
  result.kernel = config.kernel.name();
  result.machine = config.machine.name;

  for (const std::string& layout : layouts) {
    for (const std::string& strategy : strategies) {
      engine::Request request;
      request.kernel = config.kernel;
      request.machine = config.machine;
      request.layout = layout;
      request.strategy = strategy;
      request.phase2 = config.phase2;
      request.iterations = config.iterations;
      const engine::Result run = engine.run(request);

      CompareRow row;
      row.layout = layout;
      row.strategy = strategy;
      if (run.ok()) {
        row.accesses = run.accesses;
        row.layout_extent = run.layout_extent;
        row.allocation_cost = run.allocation_cost;
        row.residual_cost = run.plan.residual_cost;
        row.optimized_size_words = run.optimized_size_words;
        row.optimized_cycles = run.optimized_cycles;
        row.verified = run.verified;
      } else {
        row.error = std::string(engine::stage_name(run.error->stage)) +
                    ": " + run.error->message;
        ++result.failures;
      }
      result.rows.push_back(std::move(row));
    }
  }

  // The delta reference: the default pair when present, else the first
  // healthy cell, else plain cell 0.
  std::size_t reference = 0;
  bool found_default = false;
  for (std::size_t i = 0; i < result.rows.size(); ++i) {
    const CompareRow& row = result.rows[i];
    if (row.ok() && row.layout == engine::kDefaultLayout &&
        row.strategy == engine::kDefaultStrategy) {
      reference = i;
      found_default = true;
      break;
    }
  }
  if (!found_default) {
    for (std::size_t i = 0; i < result.rows.size(); ++i) {
      if (result.rows[i].ok()) {
        reference = i;
        break;
      }
    }
  }
  if (!result.rows.empty()) {
    const CompareRow& ref = result.rows[reference];
    result.reference_layout = ref.layout;
    result.reference_strategy = ref.strategy;
    int best = std::numeric_limits<int>::max();
    for (CompareRow& row : result.rows) {
      if (!row.ok()) {
        continue;
      }
      row.cost_delta = row.allocation_cost - ref.allocation_cost;
      row.cycle_delta = row.optimized_cycles - ref.optimized_cycles;
      best = std::min(best, row.allocation_cost);
    }
    for (CompareRow& row : result.rows) {
      row.best_cost = row.ok() && row.allocation_cost == best;
    }
  }
  return result;
}

CompareResult run_compare(const CompareConfig& config) {
  engine::Engine engine;
  return run_compare(config, engine);
}

support::Table compare_to_table(const CompareResult& result) {
  support::Table table({"layout", "strategy", "extent", "cost", "residual",
                        "size", "cycles", "d.cost", "d.cycles", "best",
                        "verified"});
  for (const CompareRow& row : result.rows) {
    if (!row.ok()) {
      table.add_row({row.layout, row.strategy, "-", "-", "-", "-", "-",
                     "-", "-", "-", "error: " + row.error});
      continue;
    }
    table.add_row({
        row.layout,
        row.strategy,
        std::to_string(row.layout_extent),
        std::to_string(row.allocation_cost),
        std::to_string(row.residual_cost),
        std::to_string(row.optimized_size_words),
        std::to_string(row.optimized_cycles),
        delta_field(row.cost_delta),
        delta_field(row.cycle_delta),
        row.best_cost ? "*" : "",
        row.verified ? "yes" : "no",
    });
  }
  return table;
}

support::CsvWriter compare_to_csv(const CompareResult& result) {
  support::CsvWriter csv({"layout", "strategy", "accesses", "layout_extent",
                          "allocation_cost", "residual_cost", "size_words",
                          "cycles", "cost_delta", "cycle_delta", "best",
                          "verified", "error"});
  for (const CompareRow& row : result.rows) {
    if (!row.ok()) {
      // Every metric column empty, like the batch CSV's error rows: an
      // errored cell must never read as a real "best"/"not best"
      // verdict (the CI greps rely on this failing loudly).
      csv.add_row({row.layout, row.strategy, "", "", "", "", "", "", "",
                   "", "", "", row.error});
      continue;
    }
    csv.add_row({
        row.layout,
        row.strategy,
        std::to_string(row.accesses),
        std::to_string(row.layout_extent),
        std::to_string(row.allocation_cost),
        std::to_string(row.residual_cost),
        std::to_string(row.optimized_size_words),
        std::to_string(row.optimized_cycles),
        std::to_string(row.cost_delta),
        std::to_string(row.cycle_delta),
        row.best_cost ? "yes" : "no",
        row.verified ? "yes" : "no",
        row.error,
    });
  }
  return csv;
}

support::JsonValue compare_to_json(const CompareResult& result) {
  using support::JsonValue;
  JsonValue json = JsonValue::object();
  json.set("kernel", JsonValue::string(result.kernel));
  json.set("machine", JsonValue::string(result.machine));
  JsonValue reference = JsonValue::object();
  reference.set("layout", JsonValue::string(result.reference_layout));
  reference.set("strategy", JsonValue::string(result.reference_strategy));
  json.set("reference", std::move(reference));
  JsonValue rows = JsonValue::array();
  for (const CompareRow& row : result.rows) {
    JsonValue cell = JsonValue::object();
    cell.set("layout", JsonValue::string(row.layout));
    cell.set("strategy", JsonValue::string(row.strategy));
    if (row.ok()) {
      cell.set("accesses", JsonValue::number(
                               static_cast<std::int64_t>(row.accesses)));
      cell.set("layout_extent", JsonValue::number(row.layout_extent));
      cell.set("allocation_cost",
               JsonValue::number(
                   static_cast<std::int64_t>(row.allocation_cost)));
      cell.set("residual_cost",
               JsonValue::number(
                   static_cast<std::int64_t>(row.residual_cost)));
      cell.set("size_words", JsonValue::number(row.optimized_size_words));
      cell.set("cycles", JsonValue::number(row.optimized_cycles));
      cell.set("cost_delta",
               JsonValue::number(static_cast<std::int64_t>(row.cost_delta)));
      cell.set("cycle_delta", JsonValue::number(row.cycle_delta));
      cell.set("best", JsonValue::boolean(row.best_cost));
      cell.set("verified", JsonValue::boolean(row.verified));
    } else {
      cell.set("error", JsonValue::string(row.error));
    }
    rows.push_back(std::move(cell));
  }
  json.set("rows", std::move(rows));
  json.set("failures",
           JsonValue::number(static_cast<std::int64_t>(result.failures)));
  return json;
}

}  // namespace dspaddr::eval
