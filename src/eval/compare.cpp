#include "eval/compare.hpp"

#include <algorithm>
#include <limits>

#include "engine/strategy.hpp"
#include "runtime/task_pool.hpp"
#include "support/check.hpp"

namespace dspaddr::eval {
namespace {

std::string delta_field(std::int64_t delta) {
  // Explicit '+' so a regression is visually distinct from the
  // reference row's 0.
  return delta > 0 ? "+" + std::to_string(delta) : std::to_string(delta);
}

/// Computes one grid cell into a finished row (minus the deltas, which
/// need the full grid).
CompareRow run_cell(const CompareConfig& config, engine::Engine& engine,
                    const std::string& layout, const std::string& strategy) {
  engine::Request request;
  request.kernel = config.kernel;
  request.machine = config.machine;
  request.layout = layout;
  request.strategy = strategy;
  request.phase2 = config.phase2;
  request.iterations = config.iterations;
  const engine::Result run = engine.run(request);

  CompareRow row;
  row.layout = layout;
  row.strategy = strategy;
  if (run.ok()) {
    row.accesses = run.accesses;
    row.layout_extent = run.layout_extent;
    row.allocation_cost = run.allocation_cost;
    row.residual_cost = run.plan.residual_cost;
    row.optimized_size_words = run.optimized_size_words;
    row.optimized_cycles = run.optimized_cycles;
    row.verified = run.verified;
  } else {
    row.error = std::string(engine::stage_name(run.error->stage)) + ": " +
                run.error->message;
  }
  return row;
}

/// The shared finalize step over fully populated rows: pick the delta
/// reference (the default pair when present, else the first healthy
/// row), fill the deltas, mark the best-cost rows and count failures.
void finalize_rows(CompareResult& result) {
  result.failures = 0;
  for (const CompareRow& row : result.rows) {
    if (!row.ok()) ++result.failures;
  }
  std::size_t reference = 0;
  bool found_default = false;
  for (std::size_t i = 0; i < result.rows.size(); ++i) {
    const CompareRow& row = result.rows[i];
    if (row.ok() && row.layout == engine::kDefaultLayout &&
        row.strategy == engine::kDefaultStrategy) {
      reference = i;
      found_default = true;
      break;
    }
  }
  if (!found_default) {
    for (std::size_t i = 0; i < result.rows.size(); ++i) {
      if (result.rows[i].ok()) {
        reference = i;
        break;
      }
    }
  }
  if (!result.rows.empty()) {
    const CompareRow& ref = result.rows[reference];
    result.reference_layout = ref.layout;
    result.reference_strategy = ref.strategy;
    int best = std::numeric_limits<int>::max();
    for (CompareRow& row : result.rows) {
      if (!row.ok()) {
        continue;
      }
      row.cost_delta = row.allocation_cost - ref.allocation_cost;
      row.cycle_delta = row.optimized_cycles - ref.optimized_cycles;
      best = std::min(best, row.allocation_cost);
    }
    for (CompareRow& row : result.rows) {
      row.best_cost = row.ok() && row.allocation_cost == best;
    }
  }
}

}  // namespace

CompareResult run_compare(const CompareConfig& config,
                          engine::Engine& engine) {
  const std::vector<std::string> layouts =
      config.layouts.empty()
          ? std::vector<std::string>{engine::kDefaultLayout}
          : config.layouts;
  const std::vector<std::string> strategies =
      config.strategies.empty()
          ? engine::StrategyRegistry::builtin().allocation_names()
          : config.strategies;

  CompareResult result;
  result.kernel = config.kernel.name();
  result.machine = config.machine.name;

  // The (layout, strategy) grid in layout-major request order. Each
  // cell lands in its pre-sized slot, so the parallel path below fills
  // exactly the rows the sequential loop would — byte-identical output
  // at any jobs level (the engine cache is single-flight, so even
  // duplicate cells compute once either way).
  std::vector<std::pair<std::size_t, std::size_t>> cells;
  cells.reserve(layouts.size() * strategies.size());
  for (std::size_t l = 0; l < layouts.size(); ++l) {
    for (std::size_t s = 0; s < strategies.size(); ++s) {
      cells.emplace_back(l, s);
    }
  }
  result.rows.resize(cells.size());

  if (config.jobs <= 1 || cells.size() <= 1) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      result.rows[i] = run_cell(config, engine, layouts[cells[i].first],
                                strategies[cells[i].second]);
    }
  } else {
    const std::size_t workers = std::min(config.jobs, cells.size());
    runtime::TaskPool pool(workers, 2 * workers);
    for (std::size_t i = 0; i < cells.size(); ++i) {
      pool.submit([&config, &engine, &result, &layouts, &strategies, &cells,
                   i] {
        result.rows[i] = run_cell(config, engine, layouts[cells[i].first],
                                  strategies[cells[i].second]);
      });
    }
    pool.wait_idle();
    pool.shutdown();
    pool.rethrow_first_failure();
  }

  finalize_rows(result);
  return result;
}

CompareResult run_compare(const CompareConfig& config) {
  engine::Engine engine;
  return run_compare(config, engine);
}

CompareResult compare_from_portfolio(const engine::PortfolioReport& report,
                                     const std::string& kernel,
                                     const std::string& machine) {
  CompareResult result;
  result.kernel = kernel;
  result.machine = machine;
  result.rows.reserve(report.racers.size());
  for (const engine::RacerReport& racer : report.racers) {
    CompareRow row;
    row.layout = racer.layout;
    row.strategy = racer.strategy;
    if (racer.completed) {
      row.accesses = racer.accesses;
      row.layout_extent = racer.layout_extent;
      row.allocation_cost = racer.cost;
      row.residual_cost = racer.residual_cost;
      row.optimized_size_words = racer.optimized_size_words;
      row.optimized_cycles = racer.optimized_cycles;
      row.verified = racer.verified;
    } else if (racer.cancelled) {
      row.error = "cancelled (lost the race)";
    } else if (racer.skipped) {
      row.error = "skipped (race deadline)";
    } else {
      row.error = racer.error;
    }
    result.rows.push_back(std::move(row));
  }
  // Deltas against the *winner* — the portfolio's question is "how
  // much worse is each alternative", not "how far from the paper's
  // default". Cancelled/skipped racers are the race working as
  // designed, not failures; only genuine per-racer errors count.
  result.failures = 0;
  for (const engine::RacerReport& racer : report.racers) {
    if (!racer.completed && !racer.cancelled && !racer.skipped) {
      ++result.failures;
    }
  }
  const CompareRow* winner_row = nullptr;
  for (std::size_t i = 0; i < result.rows.size(); ++i) {
    if (report.racers[i].winner && result.rows[i].ok()) {
      winner_row = &result.rows[i];
      break;
    }
  }
  if (winner_row != nullptr) {
    result.reference_layout = winner_row->layout;
    result.reference_strategy = winner_row->strategy;
    int best = std::numeric_limits<int>::max();
    for (CompareRow& row : result.rows) {
      if (!row.ok()) continue;
      row.cost_delta = row.allocation_cost - winner_row->allocation_cost;
      row.cycle_delta =
          row.optimized_cycles - winner_row->optimized_cycles;
      best = std::min(best, row.allocation_cost);
    }
    for (CompareRow& row : result.rows) {
      row.best_cost = row.ok() && row.allocation_cost == best;
    }
  }
  return result;
}

support::Table compare_to_table(const CompareResult& result) {
  support::Table table({"layout", "strategy", "extent", "cost", "residual",
                        "size", "cycles", "d.cost", "d.cycles", "best",
                        "verified"});
  for (const CompareRow& row : result.rows) {
    if (!row.ok()) {
      table.add_row({row.layout, row.strategy, "-", "-", "-", "-", "-",
                     "-", "-", "-", "error: " + row.error});
      continue;
    }
    table.add_row({
        row.layout,
        row.strategy,
        std::to_string(row.layout_extent),
        std::to_string(row.allocation_cost),
        std::to_string(row.residual_cost),
        std::to_string(row.optimized_size_words),
        std::to_string(row.optimized_cycles),
        delta_field(row.cost_delta),
        delta_field(row.cycle_delta),
        row.best_cost ? "*" : "",
        row.verified ? "yes" : "no",
    });
  }
  return table;
}

support::CsvWriter compare_to_csv(const CompareResult& result) {
  support::CsvWriter csv({"layout", "strategy", "accesses", "layout_extent",
                          "allocation_cost", "residual_cost", "size_words",
                          "cycles", "cost_delta", "cycle_delta", "best",
                          "verified", "error"});
  for (const CompareRow& row : result.rows) {
    if (!row.ok()) {
      // Every metric column empty, like the batch CSV's error rows: an
      // errored cell must never read as a real "best"/"not best"
      // verdict (the CI greps rely on this failing loudly).
      csv.add_row({row.layout, row.strategy, "", "", "", "", "", "", "",
                   "", "", "", row.error});
      continue;
    }
    csv.add_row({
        row.layout,
        row.strategy,
        std::to_string(row.accesses),
        std::to_string(row.layout_extent),
        std::to_string(row.allocation_cost),
        std::to_string(row.residual_cost),
        std::to_string(row.optimized_size_words),
        std::to_string(row.optimized_cycles),
        std::to_string(row.cost_delta),
        std::to_string(row.cycle_delta),
        row.best_cost ? "yes" : "no",
        row.verified ? "yes" : "no",
        row.error,
    });
  }
  return csv;
}

support::JsonValue compare_to_json(const CompareResult& result) {
  using support::JsonValue;
  JsonValue json = JsonValue::object();
  json.set("kernel", JsonValue::string(result.kernel));
  json.set("machine", JsonValue::string(result.machine));
  JsonValue reference = JsonValue::object();
  reference.set("layout", JsonValue::string(result.reference_layout));
  reference.set("strategy", JsonValue::string(result.reference_strategy));
  json.set("reference", std::move(reference));
  JsonValue rows = JsonValue::array();
  for (const CompareRow& row : result.rows) {
    JsonValue cell = JsonValue::object();
    cell.set("layout", JsonValue::string(row.layout));
    cell.set("strategy", JsonValue::string(row.strategy));
    if (row.ok()) {
      cell.set("accesses", JsonValue::number(
                               static_cast<std::int64_t>(row.accesses)));
      cell.set("layout_extent", JsonValue::number(row.layout_extent));
      cell.set("allocation_cost",
               JsonValue::number(
                   static_cast<std::int64_t>(row.allocation_cost)));
      cell.set("residual_cost",
               JsonValue::number(
                   static_cast<std::int64_t>(row.residual_cost)));
      cell.set("size_words", JsonValue::number(row.optimized_size_words));
      cell.set("cycles", JsonValue::number(row.optimized_cycles));
      cell.set("cost_delta",
               JsonValue::number(static_cast<std::int64_t>(row.cost_delta)));
      cell.set("cycle_delta", JsonValue::number(row.cycle_delta));
      cell.set("best", JsonValue::boolean(row.best_cost));
      cell.set("verified", JsonValue::boolean(row.verified));
    } else {
      cell.set("error", JsonValue::string(row.error));
    }
    rows.push_back(std::move(cell));
  }
  json.set("rows", std::move(rows));
  json.set("failures",
           JsonValue::number(static_cast<std::int64_t>(result.failures)));
  return json;
}

}  // namespace dspaddr::eval
