#include "eval/trace.hpp"

#include <sstream>

#include "support/check.hpp"

namespace dspaddr::eval {

std::vector<std::int64_t> to_trace(const ir::AccessSequence& seq,
                                   std::uint64_t iterations) {
  std::vector<std::int64_t> trace;
  trace.reserve(seq.size() * iterations);
  for (std::uint64_t t = 0; t < iterations; ++t) {
    for (std::size_t k = 0; k < seq.size(); ++k) {
      trace.push_back(seq[k].offset +
                      static_cast<std::int64_t>(t) * seq[k].stride);
    }
  }
  return trace;
}

InferenceResult infer_sequence(const std::vector<std::int64_t>& trace,
                               std::size_t accesses_per_iteration) {
  InferenceResult result;
  if (accesses_per_iteration == 0) {
    result.error = "accesses_per_iteration must be positive";
    return result;
  }
  if (trace.empty() || trace.size() % accesses_per_iteration != 0) {
    result.error = "trace length is not a multiple of the body size";
    return result;
  }
  const std::size_t iterations = trace.size() / accesses_per_iteration;
  if (iterations < 2) {
    result.error = "need at least two iterations to infer strides";
    return result;
  }

  std::vector<ir::Access> accesses(accesses_per_iteration);
  for (std::size_t k = 0; k < accesses_per_iteration; ++k) {
    accesses[k].offset = trace[k];
    accesses[k].stride = trace[accesses_per_iteration + k] - trace[k];
  }
  // Verify affinity over the whole trace.
  for (std::size_t t = 0; t < iterations; ++t) {
    for (std::size_t k = 0; k < accesses_per_iteration; ++k) {
      const std::int64_t expected =
          accesses[k].offset +
          static_cast<std::int64_t>(t) * accesses[k].stride;
      const std::int64_t actual = trace[t * accesses_per_iteration + k];
      if (actual != expected) {
        std::ostringstream message;
        message << "trace is not affine: iteration " << t << ", slot "
                << k << " touches " << actual << ", affine model expects "
                << expected;
        result.error = message.str();
        return result;
      }
    }
  }
  result.sequence = ir::AccessSequence(std::move(accesses));
  return result;
}

}  // namespace dspaddr::eval
