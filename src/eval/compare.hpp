// The comparison surface: one kernel, one machine, a set of (layout,
// allocation-strategy) pairs run through a shared engine::Engine, with
// per-cell cost/cycles deltas against the reference strategy.
//
// This is the paper's evaluation story as a first-class API — its
// two-phase heuristic against the naive baselines, under any of the
// registered memory layouts. `dspaddr compare` renders the result as a
// delta table, CSV or JSON; tests and the CI smoke assert on the
// `best_cost` markers (two-phase must be a cost minimum).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "agu/machines.hpp"
#include "core/allocator.hpp"
#include "engine/engine.hpp"
#include "engine/portfolio.hpp"
#include "ir/kernel.hpp"
#include "support/csv.hpp"
#include "support/json.hpp"
#include "support/table.hpp"

namespace dspaddr::eval {

struct CompareConfig {
  ir::Kernel kernel;
  agu::AguSpec machine;
  /// Layouts to run (empty: just engine::kDefaultLayout).
  std::vector<std::string> layouts;
  /// Allocation strategies to run (empty: every registered strategy,
  /// in registration order).
  std::vector<std::string> strategies;
  core::Phase2Options phase2;
  std::optional<std::uint64_t> iterations;
  /// Worker threads for the (layouts x strategies) grid; 1 runs
  /// sequentially. Cells land in pre-sized slots and the engine cache
  /// is single-flight, so the output is byte-identical at any level.
  std::size_t jobs = 1;
};

/// One (layout, strategy) cell. Deltas are "this row minus the
/// reference row" — negative deltas mean the row beats the reference.
struct CompareRow {
  std::string layout;
  std::string strategy;
  std::size_t accesses = 0;
  std::int64_t layout_extent = 0;
  int allocation_cost = 0;
  int residual_cost = 0;
  std::int64_t optimized_size_words = 0;
  std::int64_t optimized_cycles = 0;
  bool verified = false;
  int cost_delta = 0;
  std::int64_t cycle_delta = 0;
  /// True when this row's allocation cost is the minimum of the run
  /// (ties all marked).
  bool best_cost = false;
  std::string error;

  bool ok() const { return error.empty(); }
};

struct CompareResult {
  std::string kernel;
  std::string machine;
  /// The delta reference: the default (layout, strategy) pair when it
  /// is part of the run, else the first cell.
  std::string reference_layout;
  std::string reference_strategy;
  /// Rows in (layout-major, strategy) request order.
  std::vector<CompareRow> rows;
  std::size_t failures = 0;
};

/// Runs the (layouts x strategies) set on `engine`. Cells share the
/// engine's result cache, so comparing against an already-served
/// strategy is free. Per-cell failures land in the row's `error`.
CompareResult run_compare(const CompareConfig& config,
                          engine::Engine& engine);

/// Same, through a private engine.
CompareResult run_compare(const CompareConfig& config);

/// The delta table of a portfolio race (engine::Portfolio): one row
/// per racer in canonical candidate order, deltas against the winning
/// pair, the winner's row(s) marked best. Cancelled and skipped racers
/// render as non-ok rows ("cancelled (lost the race)" / "skipped
/// (race deadline)") — which racers those are is timing-dependent, so
/// their rows deliberately carry no cost.
CompareResult compare_from_portfolio(const engine::PortfolioReport& report,
                                     const std::string& kernel,
                                     const std::string& machine);

/// Delta table; the best-cost row(s) are marked with '*'.
support::Table compare_to_table(const CompareResult& result);

/// CSV: layout,strategy,accesses,layout_extent,allocation_cost,
/// residual_cost,size_words,cycles,cost_delta,cycle_delta,best,
/// verified,error.
support::CsvWriter compare_to_csv(const CompareResult& result);

/// {"kernel", "machine", "reference": {"layout", "strategy"},
///  "rows": [{...one member per CSV column...}]}.
support::JsonValue compare_to_json(const CompareResult& result);

}  // namespace dspaddr::eval
