#include "eval/experiment.hpp"

#include "baselines/baselines.hpp"
#include "support/check.hpp"

namespace dspaddr::eval {

SweepConfig SweepConfig::paper_grid() {
  SweepConfig config;
  config.access_counts = {10, 20, 30, 40, 50, 60, 70, 80, 90, 100};
  config.modify_ranges = {1, 2, 3};
  config.register_counts = {1, 2, 4, 8};
  config.trials = 100;
  return config;
}

SweepConfig SweepConfig::smoke_grid() {
  SweepConfig config;
  config.access_counts = {10, 20};
  config.modify_ranges = {1, 2};
  config.register_counts = {2, 4};
  config.trials = 10;
  return config;
}

SweepResult run_random_pattern_sweep(const SweepConfig& config) {
  check_arg(config.trials > 0, "sweep: need at least one trial");
  SweepResult result;
  support::RunningStats grand;

  for (std::size_t n : config.access_counts) {
    for (std::int64_t m : config.modify_ranges) {
      for (std::size_t k : config.register_counts) {
        CellResult cell_result;
        cell_result.cell = SweepCell{n, m, k};

        core::ProblemConfig problem;
        problem.modify_range = m;
        problem.registers = k;
        problem.phase1 = config.phase1;
        problem.phase2 = config.phase2;

        // Per-cell generator stream: decorrelated across cells, stable
        // under reordering of the sweep loops.
        std::uint64_t cell_seed = config.seed;
        cell_seed ^= 0x9e3779b97f4a7c15ULL * n;
        cell_seed ^= 0xbf58476d1ce4e5b9ULL * static_cast<std::uint64_t>(m);
        cell_seed ^= 0x94d049bb133111ebULL * k;
        support::Rng rng(cell_seed);

        PatternSpec spec = config.pattern;
        spec.accesses = n;

        for (std::size_t trial = 0; trial < config.trials; ++trial) {
          const ir::AccessSequence seq = generate_pattern(spec, rng);

          const core::Allocation merged =
              core::RegisterAllocator(problem).run(seq);
          const core::Allocation naive =
              baselines::naive_allocate(seq, problem);

          cell_result.naive_cost.add(naive.cost());
          cell_result.merged_cost.add(merged.cost());
          if (merged.stats().k_tilde.has_value()) {
            cell_result.k_tilde.add(
                static_cast<double>(*merged.stats().k_tilde));
          }
          if (merged.stats().k_tilde.has_value() &&
              *merged.stats().k_tilde > k) {
            ++cell_result.constrained_trials;
          }
          if (merged.stats().phase2_proven) {
            ++cell_result.proven_trials;
          }
        }

        const double mean_naive = cell_result.naive_cost.mean();
        const double mean_merged = cell_result.merged_cost.mean();
        cell_result.mean_reduction_percent =
            support::percent_reduction(mean_naive, mean_merged);
        if (mean_naive > 0.0) {
          grand.add(cell_result.mean_reduction_percent);
        }
        result.cells.push_back(std::move(cell_result));
      }
    }
  }
  result.grand_mean_reduction_percent = grand.mean();
  return result;
}

}  // namespace dspaddr::eval
