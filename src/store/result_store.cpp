#include "store/result_store.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>
#include <vector>

#include "support/check.hpp"

namespace dspaddr::store {
namespace {

constexpr char kMagic[8] = {'D', 'S', 'P', 'A', 'D', 'D', 'R', 'L'};
constexpr std::uint64_t kHeaderSize = 16;
constexpr std::uint64_t kFrameSize = 12;  // key_len + value_len + crc
/// Sanity bounds on frame lengths: a torn tail whose garbage decodes
/// to a huge length must not be chased past the end of the file as if
/// it were a record still being written.
constexpr std::uint32_t kMaxKeyLen = 1u << 20;
constexpr std::uint32_t kMaxValueLen = 1u << 28;

const std::array<std::uint32_t, 256>& crc_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

void put_u32(std::string& out, std::uint32_t value) {
  out.push_back(static_cast<char>(value & 0xFF));
  out.push_back(static_cast<char>((value >> 8) & 0xFF));
  out.push_back(static_cast<char>((value >> 16) & 0xFF));
  out.push_back(static_cast<char>((value >> 24) & 0xFF));
}

std::uint32_t read_u32(const char* bytes) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[0])) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[1]))
          << 8) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[2]))
          << 16) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[3]))
          << 24);
}

void write_all(int fd, const char* data, std::size_t size,
               std::uint64_t offset, const std::string& path) {
  while (size > 0) {
    const ssize_t written =
        ::pwrite(fd, data, size, static_cast<off_t>(offset));
    if (written < 0) {
      if (errno == EINTR) {
        continue;
      }
      throw Error("store '" + path +
                  "': write failed: " + std::strerror(errno));
    }
    data += written;
    size -= static_cast<std::size_t>(written);
    offset += static_cast<std::uint64_t>(written);
  }
}

void read_all(int fd, char* data, std::size_t size, std::uint64_t offset,
              const std::string& path) {
  while (size > 0) {
    const ssize_t got = ::pread(fd, data, size, static_cast<off_t>(offset));
    if (got < 0 && errno == EINTR) {
      continue;
    }
    check_invariant(got > 0, "store '" + path +
                                 "': short read of an indexed record");
    data += got;
    size -= static_cast<std::size_t>(got);
    offset += static_cast<std::uint64_t>(got);
  }
}

}  // namespace

std::uint32_t crc32(std::string_view data) {
  const auto& table = crc_table();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const char ch : data) {
    crc = table[(crc ^ static_cast<unsigned char>(ch)) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

ResultStore::ResultStore(Options options) : options_(std::move(options)) {
  check_arg(!options_.path.empty(), "store: path must not be empty");
  fd_ = ::open(options_.path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd_ < 0) {
    throw Error("store '" + options_.path +
                "': cannot open: " + std::strerror(errno));
  }
  struct stat st {};
  if (::fstat(fd_, &st) != 0) {
    const std::string message = std::strerror(errno);
    ::close(fd_);
    throw Error("store '" + options_.path + "': cannot stat: " + message);
  }
  std::uint64_t file_size = static_cast<std::uint64_t>(st.st_size);

  try {
    if (file_size == 0) {
      // Fresh log: stamp the header.
      std::string header(kMagic, sizeof(kMagic));
      put_u32(header, kFormatVersion);
      put_u32(header, 0);
      write_all(fd_, header.data(), header.size(), 0, options_.path);
      if (options_.fsync_each_append) {
        ::fsync(fd_);
      }
      append_offset_ = kHeaderSize;
      return;
    }

    if (file_size < kHeaderSize) {
      // A crash before even the 16-byte header completed: nothing to
      // recover, so restart the log on a clean header.
      check_invariant(::ftruncate(fd_, 0) == 0,
                      "store '" + options_.path +
                          "': cannot truncate torn header");
      std::string header(kMagic, sizeof(kMagic));
      put_u32(header, kFormatVersion);
      put_u32(header, 0);
      write_all(fd_, header.data(), header.size(), 0, options_.path);
      if (options_.fsync_each_append) {
        ::fsync(fd_);
      }
      truncated_bytes_ = file_size;
      append_offset_ = kHeaderSize;
      return;
    }
    // Map the file as it exists now; appends never need remapping
    // because post-open records are served from memory.
    void* mapped = ::mmap(nullptr, file_size, PROT_READ, MAP_PRIVATE, fd_, 0);
    if (mapped != MAP_FAILED) {
      map_ = static_cast<const char*>(mapped);
      map_size_ = file_size;
    }

    std::string header(kHeaderSize, '\0');
    if (map_ != nullptr) {
      std::memcpy(header.data(), map_, kHeaderSize);
    } else {
      read_all(fd_, header.data(), kHeaderSize, 0, options_.path);
    }
    check_arg(std::memcmp(header.data(), kMagic, sizeof(kMagic)) == 0,
              "store '" + options_.path +
                  "': not a dspaddr result log (bad magic)");
    const std::uint32_t version = read_u32(header.data() + 8);
    check_arg(version == kFormatVersion,
              "store '" + options_.path + "': format version " +
                  std::to_string(version) + " (this build reads version " +
                  std::to_string(kFormatVersion) + ")");

    append_offset_ = scan_and_index(file_size);
    if (append_offset_ < file_size) {
      // Torn or corrupt tail: measure it, then cut the file back to
      // the last complete record so the next append starts clean.
      truncated_bytes_ = file_size - append_offset_;
      check_invariant(
          ::ftruncate(fd_, static_cast<off_t>(append_offset_)) == 0,
          "store '" + options_.path + "': cannot truncate torn tail");
    }
    // Enough dead weight (shadowed records + the tail just dropped)?
    // Rewrite the live records and swap atomically before serving.
    if (options_.compact_min_bytes > 0 &&
        shadowed_bytes_ + truncated_bytes_ >= options_.compact_min_bytes &&
        shadowed_bytes_ > 0) {
      compact();
    }
  } catch (...) {
    if (map_ != nullptr) {
      ::munmap(const_cast<char*>(map_), map_size_);
    }
    ::close(fd_);
    throw;
  }
}

ResultStore::~ResultStore() {
  if (map_ != nullptr) {
    ::munmap(const_cast<char*>(map_), map_size_);
  }
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

std::uint64_t ResultStore::scan_and_index(std::uint64_t file_size) {
  std::uint64_t offset = kHeaderSize;
  std::vector<char> frame(kFrameSize);
  std::string record;
  while (offset + kFrameSize <= file_size) {
    const char* frame_bytes;
    if (map_ != nullptr) {
      frame_bytes = map_ + offset;
    } else {
      read_all(fd_, frame.data(), kFrameSize, offset, options_.path);
      frame_bytes = frame.data();
    }
    const std::uint32_t key_len = read_u32(frame_bytes);
    const std::uint32_t value_len = read_u32(frame_bytes + 4);
    const std::uint32_t stored_crc = read_u32(frame_bytes + 8);
    if (key_len == 0 || key_len > kMaxKeyLen || value_len > kMaxValueLen) {
      break;  // garbage lengths: torn tail starts here
    }
    const std::uint64_t body = static_cast<std::uint64_t>(key_len) + value_len;
    if (offset + kFrameSize + body > file_size) {
      break;  // record extends past EOF: torn tail
    }
    const char* body_bytes;
    if (map_ != nullptr) {
      body_bytes = map_ + offset + kFrameSize;
    } else {
      record.resize(body);
      read_all(fd_, record.data(), body, offset + kFrameSize, options_.path);
      body_bytes = record.data();
    }
    if (crc32(std::string_view(body_bytes, body)) != stored_crc) {
      break;  // partially flushed or corrupt: torn tail
    }
    Location location;
    location.offset = offset + kFrameSize + key_len;
    location.length = value_len;
    // Later records shadow earlier ones — the log is append-only, so
    // "update" is simply "append again". A shadowed record is dead
    // weight; its full frame size feeds the compaction decision.
    std::string key(body_bytes, key_len);
    const auto existing = index_.find(key);
    if (existing != index_.end()) {
      shadowed_bytes_ +=
          kFrameSize + key.size() + existing->second.length;
    }
    index_[std::move(key)] = location;
    ++recovered_records_;
    offset += kFrameSize + body;
  }
  return offset;
}

void ResultStore::compact() {
  // Live records in original log order (ascending value offset), so
  // the compacted file reads like the log always had exactly one
  // record per key. Constructor-only: everything is pre-open, mapped
  // (or pread-able) state.
  std::vector<std::pair<const std::string*, const Location*>> live;
  live.reserve(index_.size());
  for (const auto& entry : index_) {
    live.emplace_back(&entry.first, &entry.second);
  }
  std::sort(live.begin(), live.end(),
            [](const auto& a, const auto& b) {
              return a.second->offset < b.second->offset;
            });

  const std::string temp_path = options_.path + ".compact";
  const int temp_fd =
      ::open(temp_path.c_str(), O_RDWR | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (temp_fd < 0) {
    return;  // best-effort: keep serving the uncompacted log
  }

  try {
    std::string header(kMagic, sizeof(kMagic));
    put_u32(header, kFormatVersion);
    put_u32(header, 0);
    write_all(temp_fd, header.data(), header.size(), 0, temp_path);

    std::unordered_map<std::string, Location> new_index;
    new_index.reserve(live.size());
    std::uint64_t offset = kHeaderSize;
    std::string value;
    for (const auto& [key, location] : live) {
      if (map_ != nullptr) {
        value.assign(map_ + location->offset, location->length);
      } else {
        value.resize(location->length);
        read_all(fd_, value.data(), location->length, location->offset,
                 options_.path);
      }
      std::string frame;
      frame.reserve(kFrameSize + key->size() + value.size());
      put_u32(frame, static_cast<std::uint32_t>(key->size()));
      put_u32(frame, static_cast<std::uint32_t>(value.size()));
      put_u32(frame, crc32(*key + value));
      frame += *key;
      frame += value;
      write_all(temp_fd, frame.data(), frame.size(), offset, temp_path);
      Location new_location;
      new_location.offset = offset + kFrameSize + key->size();
      new_location.length = static_cast<std::uint32_t>(value.size());
      new_index.emplace(*key, new_location);
      offset += frame.size();
    }
    if (::fsync(temp_fd) != 0) {
      throw Error("store '" + temp_path +
                  "': fsync failed: " + std::strerror(errno));
    }
    if (::rename(temp_path.c_str(), options_.path.c_str()) != 0) {
      throw Error("store '" + options_.path +
                  "': rename failed: " + std::strerror(errno));
    }

    // The swap is durable; retire the old file's map and descriptor
    // and serve from the compacted one.
    if (map_ != nullptr) {
      ::munmap(const_cast<char*>(map_), map_size_);
      map_ = nullptr;
      map_size_ = 0;
    }
    ::close(fd_);
    fd_ = temp_fd;
    if (offset > 0) {
      void* mapped =
          ::mmap(nullptr, offset, PROT_READ, MAP_PRIVATE, temp_fd, 0);
      if (mapped != MAP_FAILED) {
        map_ = static_cast<const char*>(mapped);
        map_size_ = offset;
      }
    }
    compacted_bytes_ += (append_offset_ - offset);
    append_offset_ = offset;
    index_ = std::move(new_index);
    shadowed_bytes_ = 0;
    ++compactions_;
  } catch (...) {
    ::close(temp_fd);
    ::unlink(temp_path.c_str());
    // The original file, map and index are untouched — keep serving.
  }
}

std::optional<std::string> ResultStore::get(const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  const Location& location = it->second;
  if (location.appended) {
    return appended_values_[location.appended_index];
  }
  if (map_ != nullptr) {
    return std::string(map_ + location.offset, location.length);
  }
  std::string value(location.length, '\0');
  read_all(fd_, value.data(), location.length, location.offset,
           options_.path);
  return value;
}

void ResultStore::append(const std::string& key, std::string_view value) {
  check_arg(!key.empty() && key.size() <= kMaxKeyLen,
            "store: key must be non-empty and at most 1 MiB");
  check_arg(value.size() <= kMaxValueLen,
            "store: value exceeds the 256 MiB record limit");
  std::string body;
  body.reserve(key.size() + value.size());
  body += key;
  body.append(value.data(), value.size());

  std::string frame;
  frame.reserve(kFrameSize + body.size());
  put_u32(frame, static_cast<std::uint32_t>(key.size()));
  put_u32(frame, static_cast<std::uint32_t>(value.size()));
  put_u32(frame, crc32(body));
  frame += body;

  std::lock_guard<std::mutex> lock(mutex_);
  write_all(fd_, frame.data(), frame.size(), append_offset_, options_.path);
  if (options_.fsync_each_append) {
    check_invariant(::fsync(fd_) == 0,
                    "store '" + options_.path + "': fsync failed");
  }
  append_offset_ += frame.size();
  appended_bytes_ += frame.size();
  ++appended_records_;

  Location location;
  location.appended = true;
  location.appended_index = appended_values_.size();
  appended_values_.emplace_back(value);
  const auto existing = index_.find(key);
  if (existing != index_.end()) {
    shadowed_bytes_ += kFrameSize + key.size() + existing->second.length;
  }
  index_[key] = location;
}

StoreStats ResultStore::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  StoreStats stats;
  stats.records = index_.size();
  stats.bytes = append_offset_;
  stats.recovered_records = recovered_records_;
  stats.appended_records = appended_records_;
  stats.appended_bytes = appended_bytes_;
  stats.truncated_bytes = truncated_bytes_;
  stats.shadowed_bytes = shadowed_bytes_;
  stats.compactions = compactions_;
  stats.compacted_bytes = compacted_bytes_;
  stats.hits = hits_;
  stats.misses = misses_;
  return stats;
}

}  // namespace dspaddr::store
