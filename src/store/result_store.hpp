// store::ResultStore — the persistent fingerprint→result log under the
// engine's RAM cache.
//
// An append-only, versioned key/value log on disk: each record frames
// one (fingerprint, serialized result) pair behind a CRC-32 so the
// reader can tell a complete record from a torn one. The file survives
// process restarts — a serve fleet bounced under load warm-starts from
// the log instead of recompiling its whole traffic mix — and survives
// crashes mid-append: on open the log is scanned record by record, the
// in-memory index is rebuilt, and a truncated or corrupt tail (the
// partially flushed final record of a killed writer) is measured,
// dropped and truncated away so the next append starts on a clean
// frame boundary. Every record that was fully written before the crash
// is recovered.
//
// Layout (all integers little-endian, as written by the host — the log
// is a node-local cache, not an interchange format):
//
//   header   : 8-byte magic "DSPADDRL", u32 format version, u32 zero
//   record   : u32 key_len, u32 value_len, u32 crc32(key||value),
//              key bytes, value bytes
//
// Reads go through one mmap of the file as it existed at open();
// records appended later are served from the in-memory index (they
// are also what the RAM tier just computed, so the double-home is
// cheap). Appends take a mutex (one writer at a time), optionally
// fsync per record (Options::fsync_each_append — durability against
// power loss at a syscall per result), and a later record for an
// existing key simply shadows the earlier one, so re-computation after
// a decode failure self-heals the log.
//
// The store is deliberately generic (string keys, string values): the
// engine keys it by fingerprint v3 (engine/fingerprint.hpp), so a
// machine-spec or strategy change can never alias a stale result, and
// serializes results via engine/result_codec.hpp. One process per log
// file — the store does no cross-process locking.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

namespace dspaddr::store {

/// CRC-32 (IEEE 802.3, reflected) over `data` — the per-record frame
/// checksum. Exposed so tests can craft corrupt records byte by byte.
std::uint32_t crc32(std::string_view data);

/// Operational counters of one store, for `{"stats":true}` /
/// `{"metrics":true}` and the --metrics-csv dump.
struct StoreStats {
  /// Distinct keys currently resolvable (shadowed duplicates count
  /// once).
  std::size_t records = 0;
  /// Current log file size in bytes (header + every retained record).
  std::uint64_t bytes = 0;
  /// Complete records recovered by the open() scan.
  std::size_t recovered_records = 0;
  /// Records appended since open().
  std::uint64_t appended_records = 0;
  /// Bytes appended since open().
  std::uint64_t appended_bytes = 0;
  /// Bytes of torn/corrupt tail dropped by the open() scan (0 after a
  /// clean shutdown).
  std::uint64_t truncated_bytes = 0;
  /// Bytes currently held by shadowed (re-appended) records — dead
  /// weight a compaction would reclaim.
  std::uint64_t shadowed_bytes = 0;
  /// Log rewrites performed by open() (Options::compact_min_bytes).
  std::uint64_t compactions = 0;
  /// Bytes reclaimed by those rewrites.
  std::uint64_t compacted_bytes = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
};

class ResultStore {
 public:
  /// Bumped whenever the record framing or the result codec changes
  /// incompatibly; a file with any other version is refused loudly.
  static constexpr std::uint32_t kFormatVersion = 1;

  struct Options {
    std::string path;
    /// fsync after every append: durable against power loss, one
    /// syscall per new result. Off by default — the log is a cache,
    /// and a torn tail is recovered on the next open anyway.
    bool fsync_each_append = false;
    /// Compaction threshold: when the open() scan finds at least this
    /// many dead bytes (shadowed records + dropped torn tail), the
    /// live records are rewritten in log order to `<path>.compact` and
    /// atomically swapped in. 0 disables compaction. Best-effort: a
    /// rewrite failure keeps serving the uncompacted log.
    std::uint64_t compact_min_bytes = 1 << 20;
  };

  /// Opens (or creates) the log at `options.path`, scans it, builds
  /// the index and maps the scanned region. Throws dspaddr::Error when
  /// the file cannot be opened/created or carries a foreign version.
  explicit ResultStore(Options options);
  ~ResultStore();

  ResultStore(const ResultStore&) = delete;
  ResultStore& operator=(const ResultStore&) = delete;

  /// The value most recently appended under `key`, or nullopt. Counts
  /// a hit or a miss.
  std::optional<std::string> get(const std::string& key);

  /// Appends one record and indexes it (shadowing any earlier record
  /// with the same key). Throws dspaddr::Error on write failure.
  void append(const std::string& key, std::string_view value);

  StoreStats stats() const;

  const std::string& path() const { return options_.path; }

 private:
  struct Location {
    /// Offset of the value bytes inside the mapped region (valid when
    /// !appended).
    std::uint64_t offset = 0;
    std::uint32_t length = 0;
    /// Index into appended_values_ when the record postdates open().
    bool appended = false;
    std::size_t appended_index = 0;
  };

  /// Scans the file, fills the index, returns the offset of the first
  /// byte past the last complete record.
  std::uint64_t scan_and_index(std::uint64_t file_size);

  /// Rewrites the live records (in log order) to `<path>.compact`,
  /// fsyncs, renames over the log and re-opens the compacted file.
  /// Constructor-only (no locking). Best-effort: on any failure the
  /// original file, map and index stay in service.
  void compact();

  Options options_;
  int fd_ = -1;

  mutable std::mutex mutex_;
  std::unordered_map<std::string, Location> index_;
  /// Values appended since open(), addressed by Location::appended_index.
  std::deque<std::string> appended_values_;

  /// The file's bytes as of open(); reads of recovered records come
  /// from here. Null when the file held no records at open (or mmap is
  /// unavailable), in which case recovered reads fall back to pread.
  const char* map_ = nullptr;
  std::uint64_t map_size_ = 0;

  std::uint64_t append_offset_ = 0;
  std::size_t recovered_records_ = 0;
  std::uint64_t truncated_bytes_ = 0;
  std::uint64_t shadowed_bytes_ = 0;
  std::uint64_t compactions_ = 0;
  std::uint64_t compacted_bytes_ = 0;
  std::uint64_t appended_records_ = 0;
  std::uint64_t appended_bytes_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace dspaddr::store
