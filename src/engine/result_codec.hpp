// Full-fidelity serialization of engine::Result for the persistent
// result store (store/result_store.hpp).
//
// This codec is NOT the response schema (engine/serialize.hpp renders
// that summary view): it round-trips every field a later process needs
// to serve the result as if it had just been computed — allocation
// text, the modify-register plan, the complete address program, the
// simulation verdict and the paper metrics. Three kinds of fields are
// deliberately excluded:
//
//  * kernel and machine: the fingerprint key ignores their names, so
//    the engine re-applies the *requesting* kernel/machine on a store
//    hit, exactly as it does on a RAM hit;
//  * wall-clock measurements (stage_ms, total_ms,
//    stats.phase2_nodes_per_sec): never serialized, so a store-served
//    response is byte-identical to the cold response (see
//    engine/serialize.hpp and README);
//  * per-call flags (cache_hit, store_hit): properties of the lookup,
//    not the result.
//
// The encoding is versioned ("v") independently of the store's record
// framing; decode_result throws dspaddr::Error on any malformed or
// foreign-version value, which the engine treats as a miss and
// recomputes (the re-append then shadows the bad record).
#pragma once

#include <string>
#include <string_view>

#include "engine/engine.hpp"

namespace dspaddr::engine {

/// Compact JSON line carrying every non-excluded field of `result`.
std::string encode_result(const Result& result);

/// Inverse of encode_result. The returned Result carries an empty
/// kernel/machine (the caller re-decorates from its request). Throws
/// dspaddr::Error on malformed input or a foreign codec version.
Result decode_result(std::string_view encoded);

}  // namespace dspaddr::engine
