// The reusable optimization engine: the paper's pass sequence
// (lower -> allocation -> MR planning -> codegen -> simulation
// -> metrics) as a library-level API, with the layout and allocation
// passes pluggable via named strategies (engine/strategy.hpp):
// Request.layout picks how arrays are placed in memory before lowering
// (contiguous | declaration-padded | soa-liao | goa) and
// Request.strategy picks the allocator (two-phase | exact | naive |
// random-merge | round-robin | greedy-online). The defaults reproduce
// the paper's fixed pipeline byte for byte.
//
// Every driver — the `dspaddr run` CLI, the batch sweep runner, the
// JSON-lines `dspaddr serve` loop, examples and benches — builds an
// engine::Request and calls Engine::run, so the pipeline exists exactly
// once and cannot drift between surfaces.
//
//   engine::Engine engine;
//   engine::Request request;
//   request.kernel = ir::builtin_kernel("fir");
//   request.machine = agu::builtin_machine("wide4");
//   engine::Result result = engine.run(request);
//
// The Engine is thread-safe and memoizes results in a mutex-striped,
// single-flight LRU cache keyed by a canonical fingerprint of (lowered
// access sequence, machine resources, options) — see
// engine/fingerprint.hpp and runtime/sharded_cache.hpp. Repeated
// kernels across a sweep grid or a serve workload hit the cache, and
// concurrent duplicates are computed exactly once; per-shard and
// aggregate hit/miss/eviction counters are exposed for benchmarking.
// `Request.stop_after` runs a pass-sequence prefix (e.g.
// allocation-only for sweeps that never simulate).
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "agu/machines.hpp"
#include "agu/program.hpp"
#include "agu/simulator.hpp"
#include "core/allocator.hpp"
#include "core/modify_registers.hpp"
#include "engine/strategy.hpp"
#include "ir/kernel.hpp"
#include "obs/metrics.hpp"
#include "runtime/sharded_cache.hpp"
#include "store/result_store.hpp"

namespace dspaddr::engine {

/// The pipeline's stages, in execution order.
enum class Stage {
  kLower = 0,
  kAllocate = 1,
  kPlan = 2,
  kCodegen = 3,
  kSimulate = 4,
  kMetrics = 5,
};

inline constexpr std::size_t kStageCount = 6;

/// "lower", "allocate", "plan", "codegen", "simulate", "metrics".
const char* stage_name(Stage stage);

/// Inverse of stage_name; nullopt for unknown names.
std::optional<Stage> stage_from_name(std::string_view name);

/// Everything one pipeline run needs.
struct Request {
  ir::Kernel kernel;
  agu::AguSpec machine;
  /// Memory-layout strategy placing the kernel's arrays before
  /// lowering; resolved against StrategyRegistry::builtin(). Unknown
  /// names fail the lower stage.
  std::string layout = kDefaultLayout;
  /// Allocation strategy mapping accesses onto the K address
  /// registers; resolved against StrategyRegistry::builtin(). Unknown
  /// names fail the allocate stage.
  std::string strategy = kDefaultStrategy;
  /// Phase-2 solver selection and budgets. A nonzero time budget makes
  /// the exact search nondeterministic, which also voids the cache's
  /// cached-equals-recomputed guarantee — leave it at 0 when
  /// byte-identical reruns matter.
  core::Phase2Options phase2;
  /// Simulated iterations; the kernel's own count when unset.
  std::optional<std::uint64_t> iterations;
  /// Last stage to run (inclusive); later stages keep default values.
  Stage stop_after = Stage::kMetrics;
};

/// Where and why a run failed. The engine never throws for per-request
/// problems: a failed stage is recorded here and earlier stages'
/// outputs stay valid — the structured replacement for the old
/// thrown-in-`run`-vs-swallowed-in-`batch` inconsistency.
struct StageError {
  Stage stage = Stage::kLower;
  std::string message;
};

/// Per-stage outputs of one run, retained for every completed stage.
struct Result {
  /// Request echo (also applied on cache hits, so a hit for a renamed
  /// kernel or machine still reports the caller's names).
  ir::Kernel kernel;
  agu::AguSpec machine;
  Stage stop_after = Stage::kMetrics;
  /// The strategies that actually ran (request echo; part of the cache
  /// fingerprint, so a hit always carries the right names).
  std::string layout;
  std::string strategy;

  // kLower
  std::size_t accesses = 0;
  /// Data-memory footprint of the placed arrays (max(base + size) -
  /// min(base)); padding-aware, see ir::layout_extent.
  std::int64_t layout_extent = 0;

  // kAllocate
  std::optional<std::size_t> k_tilde;
  core::AllocationStats stats;
  int allocation_cost = 0;
  int intra_cost = 0;
  int wrap_cost = 0;
  /// Register -> path rendering of the allocation.
  std::string allocation_text;

  // kPlan
  core::ModifyRegisterPlan plan;

  // kCodegen
  agu::Program program;

  // kSimulate
  std::uint64_t iterations = 0;
  agu::SimResult sim;
  bool verified = false;

  // kMetrics
  std::int64_t baseline_size_words = 0;
  std::int64_t baseline_cycles = 0;
  std::int64_t optimized_size_words = 0;
  std::int64_t optimized_cycles = 0;
  double size_reduction_percent = 0.0;
  double speed_reduction_percent = 0.0;

  /// Set when a stage failed; stages before it completed normally.
  std::optional<StageError> error;

  /// Wall time each stage spent computing, indexed by Stage. On a cache
  /// hit these are the *original* computation times (what the hit
  /// saved); `total_ms` is always this call's wall time.
  std::array<double, kStageCount> stage_ms{};
  double total_ms = 0.0;
  /// True when this call was answered from the RAM result cache.
  bool cache_hit = false;
  /// True when this call was answered from the persistent store (the
  /// disk tier under the RAM cache): the result was decoded from the
  /// log instead of recomputed, and promoted into the RAM tier.
  bool store_hit = false;

  bool ok() const { return !error.has_value(); }

  /// Whether `stage` ran to completion in this result.
  bool stage_done(Stage stage) const;
};

/// Cache counters, for benchmarking and the serve `stats` request.
/// Aggregated over the mutex-striped shards; `shards` carries the
/// per-shard split (runtime::ShardedLruCache).
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::size_t entries = 0;
  std::size_t capacity = 0;
  std::vector<runtime::CacheCounters> shards;
};

/// Aggregate phase-2 counters over every result this engine *computed*
/// (RAM and store hits add nothing — nothing was searched). Because the
/// cache is single-flight, each unique fingerprint is computed exactly
/// once, so these totals are deterministic across jobs levels (node
/// counts additionally require phase2_jobs == 1, the documented
/// sequential-determinism caveat).
struct Phase2Totals {
  std::uint64_t proven = 0;
  std::uint64_t nodes = 0;
  std::uint64_t windows = 0;
  std::uint64_t windows_proven = 0;
  std::uint64_t subtree_tasks = 0;
  /// Work-stealing totals of parallel phase-2 solves. Deterministic at
  /// phase2_jobs == 1 (exactly 0, like node counts); schedule-dependent
  /// above it — donations happen exactly when workers go hungry.
  std::uint64_t steals = 0;
  std::uint64_t steal_attempts = 0;
  std::uint64_t splits = 0;
};

/// Thread-safe pipeline runner with a fingerprint-keyed result cache.
/// One Engine is meant to be shared: by all batch workers, by the
/// whole lifetime of a serve process. The cache is mutex-striped
/// (runtime::ShardedLruCache), so concurrent lookups of different
/// fingerprints never serialize on one lock, and single-flight:
/// concurrent misses on the same fingerprint compute once — the first
/// thread leads, the rest wait and count as hits, which keeps the
/// counters deterministic whatever the interleaving.
class Engine {
public:
  struct Options {
    Options() = default;
    /// Cache sizing shorthand — Options{capacity} / Options{capacity,
    /// shards}; store and metrics are set member-wise.
    explicit Options(std::size_t capacity, std::size_t shards = 8)
        : cache_capacity(capacity), cache_shards(shards) {}

    /// Maximum cached results; 0 disables caching entirely.
    std::size_t cache_capacity = 256;
    /// Mutex stripes of the cache (clamped to [1, cache_capacity]).
    /// More shards, less lock contention; eviction is per-shard LRU.
    std::size_t cache_shards = 8;
    /// Persistent disk tier under the RAM cache (store/result_store):
    /// single-flight misses probe it before computing and write freshly
    /// computed ok() results through; null runs RAM-only. Shared so
    /// several engines (e.g. successive boots in one test) can hand the
    /// store around.
    std::shared_ptr<store::ResultStore> store;
    /// Metrics registry the engine registers its instruments in
    /// (obs/metrics.hpp); null gives the engine a private registry —
    /// instrumentation is always on. Pass a shared registry so one
    /// surface (serve) can aggregate engine and transport metrics.
    std::shared_ptr<obs::Registry> metrics;
  };

  Engine() : Engine(Options{}) {}
  explicit Engine(Options options);

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Runs the pass sequence (or a cached equivalent) for `request`.
  /// Per-request failures come back as Result::error, never as an
  /// exception.
  Result run(const Request& request);

  CacheStats cache_stats() const;

  /// Phase-2 work actually performed by this engine (see Phase2Totals).
  Phase2Totals phase2_totals() const;

  /// The disk tier, when attached (Options::store).
  const std::shared_ptr<store::ResultStore>& store() const { return store_; }

  /// The registry holding the engine's instruments (never null).
  const std::shared_ptr<obs::Registry>& metrics() const { return metrics_; }

  /// Drops every cached RAM entry; returns how many entries were
  /// dropped. Counters keep their lifetime totals; the disk tier is
  /// untouched (it re-fills the RAM tier on the next miss).
  std::size_t clear_cache();

private:
  Options options_;

  /// Entries are shared immutable payloads so that lookups only bump a
  /// refcount under a shard lock; the (potentially large) Result copy
  /// for the caller happens outside the lock.
  runtime::ShardedLruCache<Result> cache_;

  std::shared_ptr<store::ResultStore> store_;
  std::shared_ptr<obs::Registry> metrics_;

  // Instruments resolved once at construction (references are stable
  // for the registry's lifetime), so the hot path never locks the
  // registry.
  std::array<obs::Histogram*, kStageCount> stage_us_{};
  obs::Histogram* request_us_cold_ = nullptr;
  obs::Histogram* request_us_ram_hit_ = nullptr;
  obs::Histogram* request_us_store_hit_ = nullptr;
  obs::Counter* phase2_proven_ = nullptr;
  obs::Counter* phase2_nodes_ = nullptr;
  obs::Counter* phase2_windows_ = nullptr;
  obs::Counter* phase2_windows_proven_ = nullptr;
  obs::Counter* phase2_subtree_tasks_ = nullptr;
  obs::Counter* phase2_steals_ = nullptr;
  obs::Counter* phase2_steal_attempts_ = nullptr;
  obs::Counter* phase2_splits_ = nullptr;
  obs::Counter* store_decode_errors_ = nullptr;
  obs::Counter* store_append_errors_ = nullptr;
};

}  // namespace dspaddr::engine
