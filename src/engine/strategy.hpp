// Pluggable layout and allocation strategies behind a name-keyed
// registry — the engine's two variation points.
//
// The paper's evaluation is comparative by nature: its two-phase
// heuristic against naive arbitrary-merge allocation, under a chosen
// memory layout. This module lifts both axes out of the engine's
// hard-coded pass sequence:
//
//  * a LayoutStrategy places every declared array in the linear data
//    memory (ir::ArrayLayout) before lowering — contiguous declaration
//    order, padded declaration order, or an access-pattern-driven order
//    from the offset-assignment literature (Liao SOA, Leupers/Marwedel
//    GOA over the machine's K registers);
//  * an AllocationStrategy maps the lowered AccessSequence onto the K
//    address registers — the paper's two-phase allocator (default), the
//    forced exact branch-and-bound, or one of the baselines the paper
//    is measured against (naive, random-merge, round-robin,
//    greedy-online).
//
// Strategies are looked up by name in StrategyRegistry::builtin();
// engine::Request carries the names and the cache fingerprint includes
// them, so two strategies can never share a cache entry. Tests may
// register additional strategies on a private registry.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "agu/machines.hpp"
#include "core/allocator.hpp"
#include "ir/access_sequence.hpp"
#include "ir/kernel.hpp"
#include "ir/layout.hpp"

namespace dspaddr::engine {

/// Chooses the memory placement of a kernel's arrays. Implementations
/// must be deterministic and stateless: the same (kernel, machine)
/// always produces the same layout, a property both the result cache
/// and batch determinism rely on.
class LayoutStrategy {
public:
  virtual ~LayoutStrategy() = default;

  virtual std::string_view name() const = 0;
  virtual std::string_view description() const = 0;

  /// Places every declared array of `kernel`. `machine` supplies the
  /// addressing resources for register-aware layouts (GOA partitions
  /// over K address registers); layouts that ignore it must still
  /// accept it.
  virtual ir::ArrayLayout place(const ir::Kernel& kernel,
                                const agu::AguSpec& machine) const = 0;
};

/// Maps a lowered access sequence onto the K address registers.
/// Implementations must be deterministic for a fixed (seq, config).
class AllocationStrategy {
public:
  virtual ~AllocationStrategy() = default;

  virtual std::string_view name() const = 0;
  virtual std::string_view description() const = 0;

  /// Whether this strategy runs the paper's phase structure (zero-cost
  /// cover, then merging), i.e. whether the phase-1/phase-2 fields of
  /// AllocationStats describe it. Renderers use this to decide whether
  /// a phase report is meaningful.
  virtual bool reports_phases() const { return false; }

  virtual core::Allocation allocate(const ir::AccessSequence& seq,
                                    const core::ProblemConfig& config)
      const = 0;
};

/// Name-keyed strategy catalog. `builtin()` holds the built-in set and
/// is what the engine consults; tests can build private registries and
/// extend them. Registration is not thread-safe — populate a registry
/// before sharing it.
class StrategyRegistry {
public:
  StrategyRegistry() = default;

  StrategyRegistry(const StrategyRegistry&) = delete;
  StrategyRegistry& operator=(const StrategyRegistry&) = delete;

  /// The process-wide registry preloaded with the built-in strategies
  /// (layouts: contiguous, declaration-padded, soa-liao, goa;
  /// allocations: two-phase, exact, naive, random-merge, round-robin,
  /// greedy-online).
  static const StrategyRegistry& builtin();

  /// Registers a strategy; throws InvalidArgument on duplicate names.
  void add_layout(std::unique_ptr<LayoutStrategy> strategy);
  void add_allocation(std::unique_ptr<AllocationStrategy> strategy);

  /// Lookup by name; nullptr when unknown.
  const LayoutStrategy* layout(std::string_view name) const;
  const AllocationStrategy* allocation(std::string_view name) const;

  /// Names in registration order (the presentation order of `compare`).
  std::vector<std::string> layout_names() const;
  std::vector<std::string> allocation_names() const;

private:
  std::vector<std::unique_ptr<LayoutStrategy>> layouts_;
  std::vector<std::unique_ptr<AllocationStrategy>> allocations_;
};

/// The default strategy names — the pre-registry pipeline's behavior.
inline constexpr const char* kDefaultLayout = "contiguous";
inline constexpr const char* kDefaultStrategy = "two-phase";

/// "contiguous, declaration-padded, soa-liao, goa" — for error texts.
std::string known_layout_names();
/// "two-phase, exact, naive, ..." — for error texts.
std::string known_strategy_names();

}  // namespace dspaddr::engine
