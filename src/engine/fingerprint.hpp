// Canonical request fingerprints for the engine's result cache.
//
// Two requests with equal fingerprints produce value-identical results
// up to *decoration* (the kernel and machine names echoed back into the
// Result), so the fingerprint deliberately covers only what the
// pipeline computes from:
//  * the lowered access sequence (offset/stride pairs) — not the kernel
//    name, so a renamed kernel with the same access pattern still hits;
//  * the kernel's data-op count and iteration count (both feed the
//    code-size/speed metrics) plus the simulated iteration count;
//  * the machine's K / L / M resources — not its catalog name, so two
//    catalog entries with equal resources share cache entries;
//  * the layout and allocation strategy names — distinct strategies
//    never share an entry, even when they lower identically;
//  * the phase-2 solver options and the requested stage prefix.
#pragma once

#include <string>

#include "ir/access_sequence.hpp"

namespace dspaddr::engine {

struct Request;

/// Canonical cache key of `request` given its lowered sequence.
std::string request_fingerprint(const Request& request,
                                const ir::AccessSequence& lowered);

/// Feature key of `request` for the portfolio's learned-winner table
/// (engine/portfolio.hpp): the problem *shape* — access count, machine
/// resources (K, modify window, free widths) and the stride profile of
/// `lowered` — deliberately excluding the strategy pair (the table maps
/// shapes to winning pairs) and the exact offsets (so similar kernels
/// share a lesson). Callers pass the sequence lowered under one fixed
/// layout so the key is layout-independent.
std::string request_feature_key(const Request& request,
                                const ir::AccessSequence& lowered);

}  // namespace dspaddr::engine
