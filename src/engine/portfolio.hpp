// The portfolio engine: `--strategy=auto` / `--layout=auto` as a race.
//
// A fixed (layout, allocation) pair is one point in the registry's
// 4 x 6 strategy space; which point wins is a property of the kernel's
// access pattern, not something a caller should have to know. The
// portfolio expands every `auto` axis into its registered candidates,
// races them — concurrently on a runtime::TaskPool when `jobs > 1` —
// under one optional wall-clock deadline, and returns the best-cost
// result with a per-racer report the compare surface renders as a
// delta table.
//
// Losers die early instead of burning their budget: all racers share a
// stop flag and an incumbent-cost bound wired into the phase-2 search
// via core::SearchAbortHook. The bound cut is *strict* (a racer is
// cancelled only when its proven lower bound exceeds the incumbent),
// so any racer whose final cost would tie the eventual minimum always
// runs to completion — which makes winner selection deterministic at
// any jobs level and any race order: the winner is the completed
// racer of minimum cost, ties broken by the canonical candidate order
// (layout-major registry registration order). A wall-clock deadline
// (`race_budget_ms`) trades that determinism for latency, exactly like
// the solver's own time budget; the first racer in race order is the
// anchor and ignores the stop flag, so a deadline never yields zero
// results.
//
// The portfolio also learns from traffic: a feature-keyed table
// (engine::request_feature_key — problem shape, not identity) of
// historical winners, write-through persisted in the engine's result
// store when one is attached (feature keys live under the "pf1|"
// prefix, disjoint from the "v3|" fingerprints). A remembered winner
// seeds the race order; once its win streak reaches `confidence`, the
// hot path short-circuits to that single strategy, with a full re-race
// every `rerace_interval` short-circuits to catch drift.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "engine/engine.hpp"
#include "obs/metrics.hpp"

namespace dspaddr::engine {

/// The request value that turns an axis (or both) into a race.
inline constexpr const char* kAutoStrategy = "auto";

struct PortfolioOptions {
  /// Racers in flight: 1 races sequentially (still with the incumbent
  /// bound cutting later candidates), > 1 fans racers onto a TaskPool.
  std::size_t jobs = 1;
  /// Wall-clock race deadline in milliseconds; 0 disables it. A
  /// deadline makes which racers finish machine-dependent (the winner
  /// among *finished* racers is still deterministic in their costs).
  std::int64_t race_budget_ms = 0;
  /// Learn winners from traffic. Off runs every race from scratch —
  /// what the batch grid uses so cell results cannot depend on
  /// execution order.
  bool learn = true;
  /// Win streak after which a remembered winner short-circuits the
  /// race to a single strategy.
  std::uint64_t confidence = 1;
  /// Short-circuits between drift re-races; 0 never re-races.
  std::uint64_t rerace_interval = 32;
};

/// One candidate's outcome in a race.
struct RacerReport {
  std::string layout;
  std::string strategy;
  /// Allocation cost (valid when `completed`).
  int cost = 0;
  bool proven = false;
  bool verified = false;
  std::size_t accesses = 0;
  std::int64_t layout_extent = 0;
  int residual_cost = 0;
  std::int64_t optimized_size_words = 0;
  std::int64_t optimized_cycles = 0;
  /// Ran to completion (neither cancelled nor skipped nor errored).
  bool completed = false;
  /// Cancelled mid-flight by the stop flag or the incumbent bound.
  /// Which racers get cancelled is timing-dependent — cancelled rows
  /// carry no cost in any rendered output.
  bool cancelled = false;
  /// Never started (sequential race past the deadline).
  bool skipped = false;
  bool winner = false;
  std::string error;

  bool ok() const { return error.empty(); }
};

/// Everything one Portfolio::run decided, for rendering and tests.
struct PortfolioReport {
  /// Racers in canonical candidate order (layout-major registry
  /// registration order) — not race order.
  std::vector<RacerReport> racers;
  std::string winner_layout;
  std::string winner_strategy;
  /// The learned-table key of this request's problem shape.
  std::string feature_key;
  /// A remembered winner seeded the race order.
  bool learned_hit = false;
  /// The race collapsed to exactly one strategy (learned, confident).
  bool short_circuit = false;
  /// This race was a scheduled drift re-race.
  bool reraced = false;
  std::size_t launched = 0;
  std::size_t cancelled = 0;
  std::size_t skipped = 0;
};

/// Deterministic portfolio counters for the serve `{"stats":true}`
/// block (cancellation counts are timing-dependent and live only in
/// the metrics registry).
struct PortfolioStats {
  std::uint64_t races = 0;
  std::uint64_t short_circuits = 0;
  std::uint64_t reraces = 0;
  std::size_t learned_entries = 0;
};

/// Races strategy candidates through a shared engine::Engine. Thread-
/// safe: serve's workers share one Portfolio (each run builds its own
/// race pool, so running inside another TaskPool's worker never
/// deadlocks). Completed racers publish into the engine's result cache
/// as usual — a race warms every (layout, strategy) cell it finishes.
class Portfolio {
public:
  explicit Portfolio(Engine& engine, PortfolioOptions options = {});

  Portfolio(const Portfolio&) = delete;
  Portfolio& operator=(const Portfolio&) = delete;

  /// True when `request` asks for a race on either axis.
  static bool is_auto(const Request& request) {
    return request.layout == kAutoStrategy ||
           request.strategy == kAutoStrategy;
  }

  /// Runs the race (or the learned short-circuit) and returns the
  /// winner's engine::Result; `report`, when given, receives the full
  /// per-racer breakdown. Requests with neither axis `auto` run as a
  /// single plain engine call. `race_budget_ms` overrides the
  /// constructed deadline for this run (serve's per-request member).
  Result run(const Request& request, PortfolioReport* report = nullptr,
             std::optional<std::int64_t> race_budget_ms = std::nullopt);

  PortfolioStats stats() const;

  Engine& engine() { return engine_; }
  const PortfolioOptions& options() const { return options_; }

private:
  struct LearnedEntry {
    std::string layout;
    std::string strategy;
    std::uint64_t streak = 0;
    /// Short-circuits served since the last full race (RAM-only: a
    /// restart re-races once before short-circuiting again).
    std::uint64_t uses = 0;
  };

  /// RAM-first, store-backed lookup of the learned winner for `key`.
  bool lookup_learned(const std::string& key, LearnedEntry& out);
  /// Records `layout`/`strategy` winning for `key` (streak bump on a
  /// repeat, reset to 1 on a change) and persists it.
  void record_win(const std::string& key, const std::string& layout,
                  const std::string& strategy);

  Engine& engine_;
  PortfolioOptions options_;

  mutable std::mutex learned_mutex_;
  std::unordered_map<std::string, LearnedEntry> learned_;

  obs::Counter* races_ = nullptr;
  obs::Counter* racers_launched_ = nullptr;
  obs::Counter* racers_cancelled_ = nullptr;
  obs::Counter* short_circuits_ = nullptr;
  obs::Counter* reraces_ = nullptr;
  obs::Histogram* race_us_ = nullptr;
  /// Win counter per (layout, strategy) pair, keyed "layout/strategy";
  /// pre-registered in registry order so the metrics schema is fixed.
  std::unordered_map<std::string, obs::Counter*> wins_;
};

}  // namespace dspaddr::engine
