#include "engine/portfolio.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <limits>
#include <utility>

#include "engine/fingerprint.hpp"
#include "engine/strategy.hpp"
#include "ir/layout.hpp"
#include "runtime/task_pool.hpp"
#include "support/check.hpp"

namespace dspaddr::engine {
namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t us_since(Clock::time_point start) {
  const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
      Clock::now() - start);
  return us.count() <= 0 ? 0 : static_cast<std::uint64_t>(us.count());
}

struct Candidate {
  std::string layout;
  std::string strategy;
};

/// Expands the request's `auto` axes against the builtin registry in
/// canonical (layout-major registration) order — the tie-break order
/// of winner selection.
std::vector<Candidate> expand_candidates(const Request& request) {
  const StrategyRegistry& registry = StrategyRegistry::builtin();
  const std::vector<std::string> layouts =
      request.layout == kAutoStrategy
          ? registry.layout_names()
          : std::vector<std::string>{request.layout};
  const std::vector<std::string> strategies =
      request.strategy == kAutoStrategy
          ? registry.allocation_names()
          : std::vector<std::string>{request.strategy};
  std::vector<Candidate> candidates;
  candidates.reserve(layouts.size() * strategies.size());
  for (const std::string& layout : layouts) {
    for (const std::string& strategy : strategies) {
      candidates.push_back(Candidate{layout, strategy});
    }
  }
  return candidates;
}

/// The learned-table key: the problem shape under the fixed default
/// layout, so one key covers every candidate of the race.
std::string feature_key_of(const Request& request) {
  const LayoutStrategy* layout =
      StrategyRegistry::builtin().layout(kDefaultLayout);
  check_invariant(layout != nullptr,
                  "portfolio: default layout missing from the registry");
  const ir::ArrayLayout placed =
      layout->place(request.kernel, request.machine);
  const ir::AccessSequence lowered = ir::lower(request.kernel, placed);
  return request_feature_key(request, lowered);
}

/// Serialized learned record: "layout\nstrategy\nstreak".
std::string encode_learned(const std::string& layout,
                           const std::string& strategy,
                           std::uint64_t streak) {
  return layout + "\n" + strategy + "\n" + std::to_string(streak);
}

bool decode_learned(const std::string& value, std::string& layout,
                    std::string& strategy, std::uint64_t& streak) {
  const std::size_t first = value.find('\n');
  if (first == std::string::npos) return false;
  const std::size_t second = value.find('\n', first + 1);
  if (second == std::string::npos) return false;
  layout = value.substr(0, first);
  strategy = value.substr(first + 1, second - first - 1);
  try {
    streak = std::stoull(value.substr(second + 1));
  } catch (const std::exception&) {
    return false;
  }
  return layout.find('\n') == std::string::npos && !layout.empty() &&
         !strategy.empty();
}

}  // namespace

Portfolio::Portfolio(Engine& engine, PortfolioOptions options)
    : engine_(engine), options_(options) {
  // Fixed registration order (counters, histogram, then the win grid
  // in registry order) — the deterministic schema promise of
  // obs::Registry.
  obs::Registry& metrics = *engine_.metrics();
  races_ = &metrics.counter("engine.portfolio.races");
  racers_launched_ = &metrics.counter("engine.portfolio.racers_launched");
  racers_cancelled_ = &metrics.counter("engine.portfolio.racers_cancelled");
  short_circuits_ = &metrics.counter("engine.portfolio.short_circuits");
  reraces_ = &metrics.counter("engine.portfolio.reraces");
  race_us_ = &metrics.histogram("engine.portfolio.race_us");
  const StrategyRegistry& registry = StrategyRegistry::builtin();
  for (const std::string& layout : registry.layout_names()) {
    for (const std::string& strategy : registry.allocation_names()) {
      const std::string pair = layout + "/" + strategy;
      wins_[pair] = &metrics.counter("engine.portfolio.wins." + pair);
    }
  }
}

bool Portfolio::lookup_learned(const std::string& key, LearnedEntry& out) {
  {
    const std::lock_guard<std::mutex> lock(learned_mutex_);
    const auto it = learned_.find(key);
    if (it != learned_.end()) {
      out = it->second;
      return true;
    }
  }
  // RAM miss: a prior boot may have persisted the lesson. The store is
  // shared with result records; feature keys live under their own
  // "pf1|" prefix so the namespaces never collide.
  const std::shared_ptr<store::ResultStore>& store = engine_.store();
  if (store == nullptr) return false;
  const std::optional<std::string> value = store->get(key);
  if (!value.has_value()) return false;
  LearnedEntry entry;
  if (!decode_learned(*value, entry.layout, entry.strategy, entry.streak)) {
    return false;
  }
  const std::lock_guard<std::mutex> lock(learned_mutex_);
  const auto [it, inserted] = learned_.emplace(key, entry);
  out = it->second;
  return true;
}

void Portfolio::record_win(const std::string& key, const std::string& layout,
                           const std::string& strategy) {
  std::uint64_t streak = 1;
  {
    const std::lock_guard<std::mutex> lock(learned_mutex_);
    LearnedEntry& entry = learned_[key];
    if (entry.layout == layout && entry.strategy == strategy) {
      streak = ++entry.streak;
    } else {
      entry.layout = layout;
      entry.strategy = strategy;
      entry.streak = 1;
    }
    entry.uses = 0;
  }
  const std::shared_ptr<store::ResultStore>& store = engine_.store();
  if (store != nullptr) {
    try {
      store->append(key, encode_learned(layout, strategy, streak));
    } catch (const std::exception&) {
      // Append errors degrade learning to RAM-only, like the engine's
      // own write-through.
    }
  }
}

Result Portfolio::run(const Request& request, PortfolioReport* report,
                      std::optional<std::int64_t> race_budget_ms) {
  const std::int64_t budget_ms =
      race_budget_ms.value_or(options_.race_budget_ms);
  const Clock::time_point start = Clock::now();
  PortfolioReport local;
  PortfolioReport& rep = report != nullptr ? *report : local;
  rep = PortfolioReport{};

  const std::vector<Candidate> candidates = expand_candidates(request);
  check_invariant(!candidates.empty(), "portfolio: no candidates");

  // A one-candidate "race" (both axes fixed) — and any request that
  // stops before allocation, where cost does not exist to compare —
  // is a plain engine call.
  if (candidates.size() == 1 ||
      static_cast<int>(request.stop_after) <
          static_cast<int>(Stage::kAllocate)) {
    Request fixed = request;
    fixed.layout = candidates.front().layout;
    fixed.strategy = candidates.front().strategy;
    Result result = engine_.run(fixed);
    RacerReport racer;
    racer.layout = fixed.layout;
    racer.strategy = fixed.strategy;
    if (result.ok()) {
      racer.completed = true;
      racer.winner = true;
      racer.cost = result.allocation_cost;
      racer.proven = result.stats.phase2_proven;
      racer.verified = result.verified;
      racer.accesses = result.accesses;
      racer.layout_extent = result.layout_extent;
      racer.residual_cost = result.plan.residual_cost;
      racer.optimized_size_words = result.optimized_size_words;
      racer.optimized_cycles = result.optimized_cycles;
      rep.winner_layout = fixed.layout;
      rep.winner_strategy = fixed.strategy;
    } else {
      racer.error = std::string(stage_name(result.error->stage)) + ": " +
                    result.error->message;
    }
    rep.racers.push_back(std::move(racer));
    rep.launched = 1;
    return result;
  }

  std::string feature_key;
  if (options_.learn) {
    try {
      feature_key = feature_key_of(request);
    } catch (const std::exception&) {
      // A kernel that cannot lower has no shape to learn from; the
      // race below surfaces the error through its racers.
    }
  }
  rep.feature_key = feature_key;

  LearnedEntry learned;
  bool have_learned = false;
  if (options_.learn && !feature_key.empty() &&
      lookup_learned(feature_key, learned)) {
    // The lesson only applies when the remembered pair is actually in
    // this race (a fixed axis may exclude it).
    for (const Candidate& candidate : candidates) {
      if (candidate.layout == learned.layout &&
          candidate.strategy == learned.strategy) {
        have_learned = true;
        break;
      }
    }
  }
  rep.learned_hit = have_learned;

  bool rerace_due = false;
  if (have_learned && learned.streak >= options_.confidence) {
    rerace_due = options_.rerace_interval > 0 &&
                 learned.uses >= options_.rerace_interval;
    if (!rerace_due) {
      // Confident short-circuit: the hot path runs exactly one
      // strategy. A failed run falls through to a full race rather
      // than fossilizing a broken lesson.
      Request fixed = request;
      fixed.layout = learned.layout;
      fixed.strategy = learned.strategy;
      Result result = engine_.run(fixed);
      if (result.ok()) {
        {
          const std::lock_guard<std::mutex> lock(learned_mutex_);
          ++learned_[feature_key].uses;
        }
        short_circuits_->add();
        racers_launched_->add();
        RacerReport racer;
        racer.layout = fixed.layout;
        racer.strategy = fixed.strategy;
        racer.completed = true;
        racer.winner = true;
        racer.cost = result.allocation_cost;
        racer.proven = result.stats.phase2_proven;
        racer.verified = result.verified;
        racer.accesses = result.accesses;
        racer.layout_extent = result.layout_extent;
        racer.residual_cost = result.plan.residual_cost;
        racer.optimized_size_words = result.optimized_size_words;
        racer.optimized_cycles = result.optimized_cycles;
        rep.racers.push_back(std::move(racer));
        rep.winner_layout = fixed.layout;
        rep.winner_strategy = fixed.strategy;
        rep.short_circuit = true;
        rep.launched = 1;
        race_us_->record_us(us_since(start));
        return result;
      }
    }
  }
  if (rerace_due) {
    rep.reraced = true;
    reraces_->add();
  }

  // --- The full race. ---
  races_->add();
  const std::size_t n = candidates.size();

  // Race order: the remembered winner first (it sets a tight incumbent
  // bound early, so losers die at their root), then canonical order.
  // Winner selection below ignores this order entirely.
  std::vector<std::size_t> race_order(n);
  for (std::size_t i = 0; i < n; ++i) race_order[i] = i;
  if (have_learned) {
    for (std::size_t i = 0; i < n; ++i) {
      if (candidates[i].layout == learned.layout &&
          candidates[i].strategy == learned.strategy) {
        std::rotate(race_order.begin(), race_order.begin() + i,
                    race_order.begin() + i + 1);
        break;
      }
    }
  }

  struct Slot {
    Result result;
    bool ran = false;
  };
  std::vector<Slot> slots(n);
  std::atomic<bool> stop{false};
  std::atomic<int> bound{std::numeric_limits<int>::max()};

  // One racer: a plain engine run with the shared hook armed. The
  // anchor (first in race order) ignores the stop flag so a deadline
  // always leaves at least one finished result; the strict cost-bound
  // cut applies to everyone (a racer it kills could never have won or
  // tied, see the header).
  const auto run_racer = [&](std::size_t index, bool anchor) {
    Request racer_request = request;
    racer_request.layout = candidates[index].layout;
    racer_request.strategy = candidates[index].strategy;
    racer_request.phase2.abort.stop = anchor ? nullptr : &stop;
    racer_request.phase2.abort.cost_bound = &bound;
    Result result = engine_.run(racer_request);
    if (result.ok() && !result.stats.phase2_external_abort &&
        result.stage_done(Stage::kAllocate)) {
      int cost = result.allocation_cost;
      int current = bound.load(std::memory_order_relaxed);
      while (cost < current && !bound.compare_exchange_weak(
                                   current, cost, std::memory_order_relaxed)) {
      }
    }
    slots[index].result = std::move(result);
    slots[index].ran = true;
  };

  if (options_.jobs > 1) {
    std::mutex done_mutex;
    std::condition_variable done_cv;
    std::size_t remaining = n;
    {
      runtime::TaskPool pool(std::min(options_.jobs, n), n);
      for (std::size_t position = 0; position < n; ++position) {
        const std::size_t index = race_order[position];
        const bool anchor = position == 0;
        pool.submit([&, index, anchor] {
          run_racer(index, anchor);
          const std::lock_guard<std::mutex> lock(done_mutex);
          --remaining;
          done_cv.notify_all();
        });
      }
      if (budget_ms > 0) {
        std::unique_lock<std::mutex> lock(done_mutex);
        if (!done_cv.wait_for(lock, std::chrono::milliseconds(budget_ms),
                              [&] { return remaining == 0; })) {
          // Deadline: every non-anchor racer dies at its next budget
          // check; the anchor runs on so the race never returns empty.
          stop.store(true, std::memory_order_relaxed);
        }
      }
      pool.shutdown();
      pool.rethrow_first_failure();
    }
  } else {
    // Sequential race: the incumbent bound from earlier finishers cuts
    // later candidates at their root. The deadline here skips racers
    // not yet started (a running solve is only bounded by its own
    // phase-2 budgets — nothing concurrent can flip the stop flag).
    const bool deadline_armed = budget_ms > 0;
    const Clock::time_point deadline =
        start + std::chrono::milliseconds(budget_ms);
    bool have_result = false;
    for (std::size_t position = 0; position < n; ++position) {
      const std::size_t index = race_order[position];
      if (have_result && deadline_armed && Clock::now() >= deadline) {
        continue;  // skipped: reported below as such
      }
      run_racer(index, !have_result);
      const Slot& slot = slots[index];
      have_result = have_result ||
                    (slot.result.ok() &&
                     !slot.result.stats.phase2_external_abort);
    }
  }

  // Winner: minimum cost among completed racers, ties to the first in
  // canonical candidate order — a pure function of the completed
  // costs, independent of jobs and race order (see the header for why
  // bound-cancelled racers can never have tied the minimum).
  std::size_t winner = n;
  int best_cost = std::numeric_limits<int>::max();
  for (std::size_t i = 0; i < n; ++i) {
    if (!slots[i].ran) continue;
    const Result& result = slots[i].result;
    if (!result.ok() || result.stats.phase2_external_abort) continue;
    if (result.allocation_cost < best_cost) {
      best_cost = result.allocation_cost;
      winner = i;
    }
  }

  rep.racers.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    RacerReport racer;
    racer.layout = candidates[i].layout;
    racer.strategy = candidates[i].strategy;
    if (!slots[i].ran) {
      racer.skipped = true;
      ++rep.skipped;
    } else {
      ++rep.launched;
      const Result& result = slots[i].result;
      if (!result.ok()) {
        racer.error = std::string(stage_name(result.error->stage)) + ": " +
                      result.error->message;
      } else if (result.stats.phase2_external_abort) {
        racer.cancelled = true;
        ++rep.cancelled;
      } else {
        racer.completed = true;
        racer.cost = result.allocation_cost;
        racer.proven = result.stats.phase2_proven;
        racer.verified = result.verified;
        racer.accesses = result.accesses;
        racer.layout_extent = result.layout_extent;
        racer.residual_cost = result.plan.residual_cost;
        racer.optimized_size_words = result.optimized_size_words;
        racer.optimized_cycles = result.optimized_cycles;
      }
    }
    racer.winner = i == winner;
    rep.racers.push_back(std::move(racer));
  }

  racers_launched_->add(rep.launched);
  racers_cancelled_->add(rep.cancelled);
  race_us_->record_us(us_since(start));

  if (winner == n) {
    // Every racer errored (the anchor always runs, so something ran):
    // surface the first error in canonical order.
    for (std::size_t i = 0; i < n; ++i) {
      if (slots[i].ran) return std::move(slots[i].result);
    }
    Request fixed = request;
    fixed.layout = candidates.front().layout;
    fixed.strategy = candidates.front().strategy;
    return engine_.run(fixed);
  }

  rep.winner_layout = candidates[winner].layout;
  rep.winner_strategy = candidates[winner].strategy;
  const auto win_counter =
      wins_.find(candidates[winner].layout + "/" + candidates[winner].strategy);
  if (win_counter != wins_.end()) {
    win_counter->second->add();
  }
  if (options_.learn && !feature_key.empty()) {
    record_win(feature_key, candidates[winner].layout,
               candidates[winner].strategy);
  }
  return std::move(slots[winner].result);
}

PortfolioStats Portfolio::stats() const {
  PortfolioStats stats;
  stats.races = races_->value();
  stats.short_circuits = short_circuits_->value();
  stats.reraces = reraces_->value();
  {
    const std::lock_guard<std::mutex> lock(learned_mutex_);
    stats.learned_entries = learned_.size();
  }
  return stats;
}

}  // namespace dspaddr::engine
