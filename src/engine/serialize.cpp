#include "engine/serialize.hpp"

#include <fstream>

#include "agu/machine_desc.hpp"
#include "support/check.hpp"

namespace dspaddr::engine {
namespace {

using support::JsonValue;

JsonValue from_size(std::size_t value) {
  return JsonValue::number(static_cast<std::int64_t>(value));
}

JsonValue from_u64(std::uint64_t value) {
  return JsonValue::number(static_cast<std::int64_t>(value));
}

JsonValue kernel_summary(const ir::Kernel& kernel) {
  JsonValue json = JsonValue::object();
  json.set("name", JsonValue::string(kernel.name()));
  json.set("arrays", from_size(kernel.arrays().size()));
  json.set("accesses", from_size(kernel.accesses().size()));
  json.set("iterations", JsonValue::number(kernel.iterations()));
  json.set("data_ops", JsonValue::number(kernel.data_ops()));
  return json;
}

JsonValue machine_summary(const agu::AguSpec& machine) {
  // The full declarative spec: round-trips through
  // agu::machine_from_json and still carries the flat
  // registers/modify_registers/modify_range summary older consumers
  // read.
  return agu::machine_to_json(machine);
}

JsonValue allocate_stage(const Result& result) {
  JsonValue json = JsonValue::object();
  json.set("k_tilde", result.k_tilde.has_value()
                          ? from_size(*result.k_tilde)
                          : JsonValue::null());
  json.set("cost", JsonValue::number(
                       static_cast<std::int64_t>(result.allocation_cost)));
  json.set("intra_cost",
           JsonValue::number(static_cast<std::int64_t>(result.intra_cost)));
  json.set("wrap_cost",
           JsonValue::number(static_cast<std::int64_t>(result.wrap_cost)));
  json.set("phase1_exact", JsonValue::boolean(result.stats.phase1_exact));
  json.set("merges", from_size(result.stats.merges));
  JsonValue phase2 = JsonValue::object();
  phase2.set("exact", JsonValue::boolean(result.stats.phase2_exact));
  phase2.set("proven", JsonValue::boolean(result.stats.phase2_proven));
  phase2.set("gap", JsonValue::number(
                        static_cast<std::int64_t>(result.stats.phase2_gap)));
  phase2.set("lower_bound",
             JsonValue::number(static_cast<std::int64_t>(
                 result.stats.phase2_lower_bound)));
  phase2.set("nodes", from_u64(result.stats.phase2_nodes));
  phase2.set("table_cap_hits", from_u64(result.stats.phase2_table_cap_hits));
  phase2.set("subtree_tasks", from_u64(result.stats.phase2_subtree_tasks));
  // Like subtree_tasks and node counts, the work-stealing counters are
  // schedule-dependent at phase2_jobs > 1 (and exactly 0 at jobs == 1);
  // the cost/proof fields above never vary with jobs.
  phase2.set("steals", from_u64(result.stats.phase2_steals));
  phase2.set("steal_attempts",
             from_u64(result.stats.phase2_steal_attempts));
  phase2.set("splits", from_u64(result.stats.phase2_splits));
  phase2.set("windows", from_size(result.stats.phase2_windows));
  phase2.set("windows_proven",
             from_size(result.stats.phase2_windows_proven));
  JsonValue widths = JsonValue::array();
  for (const std::size_t width : result.stats.phase2_window_widths) {
    widths.push_back(from_size(width));
  }
  phase2.set("window_widths", std::move(widths));
  // phase2_nodes_per_sec (and the worker busy time behind the bench's
  // idle fraction) is wall-clock derived and deliberately NOT
  // serialized: responses stay byte-identical across reruns and jobs
  // levels (modulo the documented node-count variance).
  json.set("phase2", std::move(phase2));
  return json;
}

JsonValue plan_stage(const Result& result) {
  JsonValue json = JsonValue::object();
  JsonValue values = JsonValue::array();
  for (const core::ModifyRegister& mr : result.plan.values) {
    JsonValue entry = JsonValue::object();
    entry.set("value", JsonValue::number(mr.value));
    entry.set("covered",
              JsonValue::number(static_cast<std::int64_t>(mr.covered)));
    values.push_back(std::move(entry));
  }
  json.set("modify_registers", std::move(values));
  json.set("covered_per_iteration",
           JsonValue::number(static_cast<std::int64_t>(
               result.plan.covered_per_iteration)));
  json.set("residual_cost",
           JsonValue::number(
               static_cast<std::int64_t>(result.plan.residual_cost)));
  return json;
}

JsonValue codegen_stage(const Result& result) {
  JsonValue json = JsonValue::object();
  json.set("setup_instructions", from_size(result.program.setup.size()));
  json.set("body_instructions", from_size(result.program.body.size()));
  json.set("setup_address_words",
           from_size(result.program.setup_address_words()));
  json.set("body_address_words",
           from_size(result.program.body_address_words()));
  return json;
}

JsonValue simulate_stage(const Result& result) {
  JsonValue json = JsonValue::object();
  json.set("iterations", from_u64(result.iterations));
  json.set("verified", JsonValue::boolean(result.verified));
  if (!result.sim.failure.empty()) {
    json.set("failure", JsonValue::string(result.sim.failure));
  }
  json.set("accesses_executed", from_u64(result.sim.accesses_executed));
  json.set("extra_instructions", from_u64(result.sim.extra_instructions));
  json.set("address_cycles", from_u64(result.sim.address_cycles));
  return json;
}

JsonValue metrics_stage(const Result& result) {
  JsonValue json = JsonValue::object();
  json.set("baseline_size_words",
           JsonValue::number(result.baseline_size_words));
  json.set("optimized_size_words",
           JsonValue::number(result.optimized_size_words));
  json.set("baseline_cycles", JsonValue::number(result.baseline_cycles));
  json.set("optimized_cycles", JsonValue::number(result.optimized_cycles));
  json.set("size_reduction_percent",
           JsonValue::number(result.size_reduction_percent));
  json.set("speed_reduction_percent",
           JsonValue::number(result.speed_reduction_percent));
  return json;
}

}  // namespace

support::JsonValue result_to_json(const Result& result) {
  JsonValue json = JsonValue::object();
  json.set("kernel", kernel_summary(result.kernel));
  json.set("machine", machine_summary(result.machine));
  json.set("layout", JsonValue::string(result.layout));
  json.set("strategy", JsonValue::string(result.strategy));
  json.set("stop_after", JsonValue::string(stage_name(result.stop_after)));
  if (result.error.has_value()) {
    JsonValue error = JsonValue::object();
    error.set("stage", JsonValue::string(stage_name(result.error->stage)));
    error.set("message", JsonValue::string(result.error->message));
    json.set("error", std::move(error));
  }
  JsonValue stages = JsonValue::object();
  if (result.stage_done(Stage::kLower)) {
    JsonValue lower = JsonValue::object();
    lower.set("accesses", from_size(result.accesses));
    lower.set("layout_extent", JsonValue::number(result.layout_extent));
    stages.set("lower", std::move(lower));
  }
  if (result.stage_done(Stage::kAllocate)) {
    stages.set("allocate", allocate_stage(result));
  }
  if (result.stage_done(Stage::kPlan)) {
    stages.set("plan", plan_stage(result));
  }
  if (result.stage_done(Stage::kCodegen)) {
    stages.set("codegen", codegen_stage(result));
  }
  if (result.stage_done(Stage::kSimulate)) {
    stages.set("simulate", simulate_stage(result));
  }
  if (result.stage_done(Stage::kMetrics)) {
    stages.set("metrics", metrics_stage(result));
  }
  json.set("stages", std::move(stages));
  return json;
}

std::string result_to_json_line(const Result& result) {
  return result_to_json(result).dump();
}

support::JsonValue cache_stats_to_json(const CacheStats& stats) {
  const auto counters_json = [](std::uint64_t hits, std::uint64_t misses,
                                std::uint64_t evictions,
                                std::size_t entries, std::size_t capacity) {
    JsonValue json = JsonValue::object();
    json.set("hits", from_u64(hits));
    json.set("misses", from_u64(misses));
    json.set("evictions", from_u64(evictions));
    json.set("entries", from_size(entries));
    json.set("capacity", from_size(capacity));
    return json;
  };
  JsonValue json = counters_json(stats.hits, stats.misses, stats.evictions,
                                 stats.entries, stats.capacity);
  JsonValue shards = JsonValue::array();
  for (const runtime::CacheCounters& shard : stats.shards) {
    shards.push_back(counters_json(shard.hits, shard.misses,
                                   shard.evictions, shard.entries,
                                   shard.capacity));
  }
  json.set("shards", std::move(shards));
  return json;
}

support::JsonValue phase2_totals_to_json(const Phase2Totals& totals) {
  JsonValue json = JsonValue::object();
  json.set("proven", from_u64(totals.proven));
  json.set("nodes", from_u64(totals.nodes));
  json.set("windows", from_u64(totals.windows));
  json.set("windows_proven", from_u64(totals.windows_proven));
  json.set("subtree_tasks", from_u64(totals.subtree_tasks));
  json.set("steals", from_u64(totals.steals));
  json.set("steal_attempts", from_u64(totals.steal_attempts));
  json.set("splits", from_u64(totals.splits));
  return json;
}

support::JsonValue store_stats_to_json(const store::StoreStats& stats) {
  JsonValue json = JsonValue::object();
  json.set("records", from_size(stats.records));
  json.set("bytes", from_u64(stats.bytes));
  json.set("recovered_records", from_size(stats.recovered_records));
  json.set("appended_records", from_u64(stats.appended_records));
  json.set("appended_bytes", from_u64(stats.appended_bytes));
  json.set("truncated_bytes", from_u64(stats.truncated_bytes));
  json.set("shadowed_bytes", from_u64(stats.shadowed_bytes));
  json.set("compactions", from_u64(stats.compactions));
  json.set("compacted_bytes", from_u64(stats.compacted_bytes));
  json.set("hits", from_u64(stats.hits));
  json.set("misses", from_u64(stats.misses));
  return json;
}

support::JsonValue portfolio_stats_to_json(const PortfolioStats& stats) {
  JsonValue json = JsonValue::object();
  json.set("races", from_u64(stats.races));
  json.set("short_circuits", from_u64(stats.short_circuits));
  json.set("reraces", from_u64(stats.reraces));
  json.set("learned_entries", from_size(stats.learned_entries));
  return json;
}

namespace {

JsonValue histogram_summary(const obs::HistogramSnapshot& snapshot) {
  JsonValue json = JsonValue::object();
  json.set("count", from_u64(snapshot.count));
  json.set("sum_us", from_u64(snapshot.sum_us));
  json.set("max_us", from_u64(snapshot.max_us));
  json.set("p50_us", from_u64(snapshot.percentile_us(50.0)));
  json.set("p95_us", from_u64(snapshot.percentile_us(95.0)));
  json.set("p99_us", from_u64(snapshot.percentile_us(99.0)));
  return json;
}

}  // namespace

support::JsonValue metrics_report_json(const obs::RegistrySnapshot& snapshot,
                                       const CacheStats& cache,
                                       const store::StoreStats* store) {
  JsonValue json = JsonValue::object();
  JsonValue counters = JsonValue::object();
  for (const auto& [name, value] : snapshot.counters) {
    counters.set(name, from_u64(value));
  }
  json.set("counters", std::move(counters));
  JsonValue gauges = JsonValue::object();
  for (const auto& [name, levels] : snapshot.gauges) {
    JsonValue gauge = JsonValue::object();
    gauge.set("value", JsonValue::number(levels.first));
    gauge.set("max", JsonValue::number(levels.second));
    gauges.set(name, std::move(gauge));
  }
  json.set("gauges", std::move(gauges));
  JsonValue histograms = JsonValue::object();
  for (const auto& [name, hist] : snapshot.histograms) {
    histograms.set(name, histogram_summary(hist));
  }
  json.set("histograms", std::move(histograms));
  // The tier counters ride along so one probe answers "where did my
  // requests go" without a second round trip; shards are a stats-level
  // detail and stay out.
  JsonValue tier = JsonValue::object();
  tier.set("hits", from_u64(cache.hits));
  tier.set("misses", from_u64(cache.misses));
  tier.set("evictions", from_u64(cache.evictions));
  tier.set("entries", from_size(cache.entries));
  tier.set("capacity", from_size(cache.capacity));
  json.set("cache", std::move(tier));
  if (store != nullptr) {
    json.set("store", store_stats_to_json(*store));
  }
  return json;
}

std::string metrics_report_csv(const obs::RegistrySnapshot& snapshot,
                               const CacheStats& cache,
                               const store::StoreStats* store) {
  std::string csv =
      "kind,name,count,sum_us,max_us,p50_us,p95_us,p99_us,value,max\n";
  const auto counter_row = [&](const std::string& name,
                               std::uint64_t value) {
    csv += "counter," + name + "," + std::to_string(value) + ",,,,,,,\n";
  };
  for (const auto& [name, value] : snapshot.counters) {
    counter_row(name, value);
  }
  for (const auto& [name, levels] : snapshot.gauges) {
    csv += "gauge," + name + ",,,,,,," + std::to_string(levels.first) + "," +
           std::to_string(levels.second) + "\n";
  }
  for (const auto& [name, hist] : snapshot.histograms) {
    csv += "histogram," + name + "," + std::to_string(hist.count) + "," +
           std::to_string(hist.sum_us) + "," + std::to_string(hist.max_us) +
           "," + std::to_string(hist.percentile_us(50.0)) + "," +
           std::to_string(hist.percentile_us(95.0)) + "," +
           std::to_string(hist.percentile_us(99.0)) + ",,\n";
  }
  counter_row("cache.hits", cache.hits);
  counter_row("cache.misses", cache.misses);
  counter_row("cache.evictions", cache.evictions);
  counter_row("cache.entries", cache.entries);
  counter_row("cache.capacity", cache.capacity);
  if (store != nullptr) {
    counter_row("store.records", store->records);
    counter_row("store.bytes", store->bytes);
    counter_row("store.recovered_records", store->recovered_records);
    counter_row("store.appended_records", store->appended_records);
    counter_row("store.appended_bytes", store->appended_bytes);
    counter_row("store.truncated_bytes", store->truncated_bytes);
    counter_row("store.shadowed_bytes", store->shadowed_bytes);
    counter_row("store.compactions", store->compactions);
    counter_row("store.compacted_bytes", store->compacted_bytes);
    counter_row("store.hits", store->hits);
    counter_row("store.misses", store->misses);
  }
  return csv;
}

void write_metrics_csv(const std::string& path, const Engine& engine) {
  const std::optional<store::StoreStats> store_stats =
      engine.store() != nullptr
          ? std::optional<store::StoreStats>(engine.store()->stats())
          : std::nullopt;
  std::ofstream file(path, std::ios::trunc);
  check_arg(file.good(),
            "--metrics-csv: cannot open '" + path + "' for writing");
  file << metrics_report_csv(
      engine.metrics()->snapshot(), engine.cache_stats(),
      store_stats.has_value() ? &*store_stats : nullptr);
  file.flush();
  check_arg(file.good(), "--metrics-csv: failed writing '" + path + "'");
}

ir::Kernel kernel_from_json(const support::JsonValue& json) {
  check_arg(json.is_object(), "kernel: expected a JSON object");

  std::string name = "inline";
  if (const JsonValue* value = json.find("name")) {
    name = value->as_string();
  }
  std::string description;
  if (const JsonValue* value = json.find("description")) {
    description = value->as_string();
  }
  ir::Kernel kernel(std::move(name), std::move(description));

  const JsonValue* arrays = json.find("arrays");
  check_arg(arrays != nullptr && arrays->is_array(),
            "kernel: 'arrays' must be an array of {name, size}");
  for (const JsonValue& entry : arrays->items()) {
    const JsonValue* array_name = entry.find("name");
    const JsonValue* array_size = entry.find("size");
    check_arg(array_name != nullptr && array_size != nullptr,
              "kernel: each array needs 'name' and 'size'");
    kernel.add_array(array_name->as_string(), array_size->as_int());
  }

  if (const JsonValue* iterations = json.find("iterations")) {
    kernel.set_iterations(iterations->as_int());
  }
  if (const JsonValue* data_ops = json.find("data_ops")) {
    kernel.set_data_ops(data_ops->as_int());
  }

  const JsonValue* accesses = json.find("accesses");
  check_arg(accesses != nullptr && accesses->is_array(),
            "kernel: 'accesses' must be an array of {array, offset, "
            "stride, write}");
  for (const JsonValue& entry : accesses->items()) {
    const JsonValue* array = entry.find("array");
    check_arg(array != nullptr, "kernel: each access needs 'array'");
    std::int64_t offset = 0;
    if (const JsonValue* value = entry.find("offset")) {
      offset = value->as_int();
    }
    std::int64_t stride = 1;
    if (const JsonValue* value = entry.find("stride")) {
      stride = value->as_int();
    }
    bool is_write = false;
    if (const JsonValue* value = entry.find("write")) {
      is_write = value->as_bool();
    }
    kernel.add_access(array->as_string(), offset, stride, is_write);
  }
  return kernel;
}

}  // namespace dspaddr::engine
