#include "engine/fingerprint.hpp"

#include <algorithm>
#include <cstdlib>
#include <vector>

#include "engine/engine.hpp"

namespace dspaddr::engine {

std::string request_fingerprint(const Request& request,
                                const ir::AccessSequence& lowered) {
  const std::uint64_t sim_iterations = request.iterations.value_or(
      static_cast<std::uint64_t>(request.kernel.iterations()));

  std::string key;
  key.reserve(128 + lowered.size() * 8);
  // v2: layout and allocation strategies joined the key — two strategy
  // pairs must never share a cache entry, even when they happen to
  // lower to the same sequence (e.g. single-array kernels, where every
  // layout is the identity).
  // v3: the machine's bare (K, L, M) triple was replaced by its full
  // structural key, so machines that agree on the triple but differ in
  // window asymmetry, free widths or addressing mode never alias.
  key += "v3|layout=";
  key += request.layout;
  key += "|strat=";
  key += request.strategy;
  key += "|seq=";
  for (const ir::Access& access : lowered.accesses()) {
    key += std::to_string(access.offset);
    key += ':';
    key += std::to_string(access.stride);
    key += ',';
  }
  key += "|ops=";
  key += std::to_string(request.kernel.data_ops());
  key += "|it=";
  key += std::to_string(request.kernel.iterations());
  key += "|sim=";
  key += std::to_string(sim_iterations);
  key += "|machine=";
  key += request.machine.structural_key();
  key += "|p2=";
  key += std::to_string(static_cast<int>(request.phase2.mode));
  key += ',';
  key += std::to_string(request.phase2.exact_access_limit);
  key += ',';
  key += std::to_string(request.phase2.max_nodes);
  key += ',';
  key += std::to_string(request.phase2.time_budget_ms);
  // The jobs level (and steal grain) never changes costs, but the
  // serialized diagnostics (node counts, subtree tasks, steal counts)
  // do vary with them — and the tile geometry, auto-width included,
  // changes the allocation itself — so none of them may alias in the
  // cache.
  key += ',';
  key += std::to_string(request.phase2.jobs);
  key += ',';
  key += std::to_string(request.phase2.steal_grain);
  key += ',';
  key += std::to_string(request.phase2.tile_width);
  key += ',';
  key += std::to_string(request.phase2.tile_overlap);
  key += ',';
  key += request.phase2.tile_width_auto ? "auto" : "fixed";
  key += "|stop=";
  key += std::to_string(static_cast<int>(request.stop_after));
  return key;
}

std::string request_feature_key(const Request& request,
                                const ir::AccessSequence& lowered) {
  // The stride profile: distinct |stride| magnitudes in ascending
  // order, capped so pathological kernels cannot blow up the key. Two
  // kernels sweeping the same array shapes at different bases share a
  // profile — which is exactly the aliasing the learned table wants.
  constexpr std::size_t kMaxProfile = 8;
  std::vector<std::int64_t> profile;
  for (const ir::Access& access : lowered.accesses()) {
    profile.push_back(std::llabs(access.stride));
  }
  std::sort(profile.begin(), profile.end());
  profile.erase(std::unique(profile.begin(), profile.end()), profile.end());
  if (profile.size() > kMaxProfile) profile.resize(kMaxProfile);

  std::string key;
  key.reserve(96);
  key += "pf1|n=";
  key += std::to_string(lowered.size());
  key += "|k=";
  key += std::to_string(request.machine.address_registers());
  key += "|l=";
  key += std::to_string(request.machine.modify_registers());
  key += "|w=";
  key += std::to_string(request.machine.modify_lo);
  key += ':';
  key += std::to_string(request.machine.modify_hi);
  key += "|free=";
  for (const std::int64_t width : request.machine.free_widths) {
    key += std::to_string(width);
    key += ',';
  }
  key += "|strides=";
  for (const std::int64_t stride : profile) {
    key += std::to_string(stride);
    key += ',';
  }
  key += "|p2=";
  key += std::to_string(static_cast<int>(request.phase2.mode));
  key += "|stop=";
  key += std::to_string(static_cast<int>(request.stop_after));
  return key;
}

}  // namespace dspaddr::engine
