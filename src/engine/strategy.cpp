#include "engine/strategy.hpp"

#include <algorithm>

#include "baselines/baselines.hpp"
#include "soa/goa.hpp"
#include "soa/liao.hpp"
#include "soa/scalar_sequence.hpp"
#include "support/check.hpp"
#include "support/strings.hpp"

namespace dspaddr::engine {
namespace {

// ------------------------------------------------------------- layouts

/// The kernel's body as a scalar access sequence over its *arrays*:
/// variable v is the v-th declared array, accesses in body order. This
/// is the projection the offset-assignment heuristics operate on — the
/// inter-array transition structure, with intra-array offsets folded
/// away.
soa::ScalarSequence array_access_sequence(const ir::Kernel& kernel) {
  std::vector<soa::VarId> accesses;
  accesses.reserve(kernel.accesses().size());
  for (const ir::KernelAccess& access : kernel.accesses()) {
    for (std::size_t v = 0; v < kernel.arrays().size(); ++v) {
      if (kernel.arrays()[v].name == access.array) {
        accesses.push_back(static_cast<soa::VarId>(v));
        break;
      }
    }
  }
  return soa::ScalarSequence(std::move(accesses), kernel.arrays().size());
}

/// Places the kernel's arrays contiguously in the given declaration-
/// index order.
ir::ArrayLayout place_in_order(const ir::Kernel& kernel,
                               const std::vector<soa::VarId>& order) {
  ir::ArrayLayout layout;
  std::int64_t next = 0;
  for (const soa::VarId v : order) {
    const ir::ArrayDecl& array = kernel.arrays()[v];
    layout.place(array.name, next);
    next += array.size;
  }
  return layout;
}

class ContiguousLayout final : public LayoutStrategy {
public:
  std::string_view name() const override { return "contiguous"; }
  std::string_view description() const override {
    return "declaration order, contiguous (the paper's assumption)";
  }
  ir::ArrayLayout place(const ir::Kernel& kernel,
                        const agu::AguSpec&) const override {
    return ir::ArrayLayout::contiguous(kernel);
  }
};

class DeclarationPaddedLayout final : public LayoutStrategy {
public:
  std::string_view name() const override { return "declaration-padded"; }
  std::string_view description() const override {
    return "declaration order with one guard word between arrays";
  }
  ir::ArrayLayout place(const ir::Kernel& kernel,
                        const agu::AguSpec&) const override {
    // The guard word keeps the last element of one array and the first
    // of the next from ever being auto-increment neighbours — the
    // conservative placement a section-per-array linker produces.
    ir::ArrayLayout layout;
    std::int64_t next = 0;
    for (const ir::ArrayDecl& array : kernel.arrays()) {
      layout.place(array.name, next);
      next += array.size + 1;
    }
    return layout;
  }
};

class SoaLiaoLayout final : public LayoutStrategy {
public:
  std::string_view name() const override { return "soa-liao"; }
  std::string_view description() const override {
    return "arrays ordered by Liao SOA over the inter-array access graph";
  }
  ir::ArrayLayout place(const ir::Kernel& kernel,
                        const agu::AguSpec&) const override {
    const soa::ScalarSequence seq = array_access_sequence(kernel);
    const soa::Layout soa_layout =
        soa::liao_layout(seq, soa::SoaTieBreak::kLeupers);
    return place_in_order(kernel, soa::layout_order(soa_layout));
  }
};

class GoaLayout final : public LayoutStrategy {
public:
  std::string_view name() const override { return "goa"; }
  std::string_view description() const override {
    return "arrays grouped by a GOA partition over the machine's K "
           "registers, SOA-ordered within each group";
  }
  ir::ArrayLayout place(const ir::Kernel& kernel,
                        const agu::AguSpec& machine) const override {
    const soa::ScalarSequence seq = array_access_sequence(kernel);
    // A K of 0 is an allocation-stage error; clamp so the layout itself
    // stays well-defined and the allocator reports the real problem.
    const std::size_t k = std::max<std::size_t>(
        std::min(machine.address_registers(), kernel.arrays().size()), 1);
    const soa::GoaResult goa = soa::goa_allocate(seq, k);

    // Concatenate the register groups; within a group, order by the SOA
    // layout of the group's projected subsequence.
    std::vector<soa::VarId> order;
    order.reserve(kernel.arrays().size());
    for (std::uint32_t reg = 0; reg < k; ++reg) {
      std::vector<bool> keep(seq.variable_count(), false);
      bool any = false;
      for (soa::VarId v = 0; v < seq.variable_count(); ++v) {
        if (goa.register_of[v] == reg) {
          keep[v] = true;
          any = true;
        }
      }
      if (!any) {
        continue;
      }
      const soa::Layout group_layout = soa::liao_layout(
          seq.project(keep), soa::SoaTieBreak::kLeupers);
      for (const soa::VarId v : soa::layout_order(group_layout)) {
        if (keep[v]) {
          order.push_back(v);
        }
      }
    }
    return place_in_order(kernel, order);
  }
};

// --------------------------------------------------------- allocations

/// random-merge needs a seed; keep it pinned so the strategy stays a
/// pure function of its inputs (cache correctness and batch
/// determinism both require this).
constexpr std::uint64_t kRandomMergeSeed = 1;

class TwoPhaseStrategy final : public AllocationStrategy {
public:
  std::string_view name() const override { return "two-phase"; }
  std::string_view description() const override {
    return "the paper's two-phase allocator (phase-2 solver per "
           "Phase2Options)";
  }
  bool reports_phases() const override { return true; }
  core::Allocation allocate(const ir::AccessSequence& seq,
                            const core::ProblemConfig& config)
      const override {
    return core::RegisterAllocator(config).run(seq);
  }
};

class ExactStrategy final : public AllocationStrategy {
public:
  std::string_view name() const override { return "exact"; }
  std::string_view description() const override {
    return "two-phase with the exact phase-2 branch-and-bound forced on";
  }
  bool reports_phases() const override { return true; }
  core::Allocation allocate(const ir::AccessSequence& seq,
                            const core::ProblemConfig& config)
      const override {
    core::ProblemConfig forced = config;
    forced.phase2.mode = core::Phase2Options::Mode::kExact;
    return core::RegisterAllocator(forced).run(seq);
  }
};

/// Adapter for the free-function baselines in src/baselines/.
class BaselineStrategy final : public AllocationStrategy {
public:
  using Fn = core::Allocation (*)(const ir::AccessSequence&,
                                  const core::ProblemConfig&);

  BaselineStrategy(std::string name, std::string description, Fn fn,
                   bool reports_phases)
      : name_(std::move(name)),
        description_(std::move(description)),
        fn_(fn),
        reports_phases_(reports_phases) {}

  std::string_view name() const override { return name_; }
  std::string_view description() const override { return description_; }
  bool reports_phases() const override { return reports_phases_; }
  core::Allocation allocate(const ir::AccessSequence& seq,
                            const core::ProblemConfig& config)
      const override {
    return fn_(seq, config);
  }

private:
  std::string name_;
  std::string description_;
  Fn fn_;
  bool reports_phases_;
};

core::Allocation random_merge_seeded(const ir::AccessSequence& seq,
                                     const core::ProblemConfig& config) {
  return baselines::random_merge_allocate(seq, config, kRandomMergeSeed);
}

std::unique_ptr<StrategyRegistry> make_builtin_registry() {
  auto registry = std::make_unique<StrategyRegistry>();
  registry->add_layout(std::make_unique<ContiguousLayout>());
  registry->add_layout(std::make_unique<DeclarationPaddedLayout>());
  registry->add_layout(std::make_unique<SoaLiaoLayout>());
  registry->add_layout(std::make_unique<GoaLayout>());

  registry->add_allocation(std::make_unique<TwoPhaseStrategy>());
  registry->add_allocation(std::make_unique<ExactStrategy>());
  // The merge-based baselines genuinely run the phase structure (their
  // K~/merge stats are real); the placement baselines have no phases.
  registry->add_allocation(std::make_unique<BaselineStrategy>(
      "naive", "phase 1, then arbitrary first-pair merges (paper's "
      "comparator)",
      baselines::naive_allocate, /*reports_phases=*/true));
  registry->add_allocation(std::make_unique<BaselineStrategy>(
      "random-merge", "phase 1, then seeded random-pair merges",
      random_merge_seeded, /*reports_phases=*/true));
  registry->add_allocation(std::make_unique<BaselineStrategy>(
      "round-robin", "access i on register i mod K, no path model",
      baselines::round_robin_allocate, /*reports_phases=*/false));
  registry->add_allocation(std::make_unique<BaselineStrategy>(
      "greedy-online", "one sweep, cheapest-transition placement",
      baselines::greedy_online_allocate, /*reports_phases=*/false));
  return registry;
}

}  // namespace

const StrategyRegistry& StrategyRegistry::builtin() {
  static const std::unique_ptr<StrategyRegistry> registry =
      make_builtin_registry();
  return *registry;
}

void StrategyRegistry::add_layout(std::unique_ptr<LayoutStrategy> strategy) {
  check_arg(strategy != nullptr, "add_layout: null strategy");
  check_arg(layout(strategy->name()) == nullptr,
            "add_layout: duplicate strategy name '" +
                std::string(strategy->name()) + "'");
  layouts_.push_back(std::move(strategy));
}

void StrategyRegistry::add_allocation(
    std::unique_ptr<AllocationStrategy> strategy) {
  check_arg(strategy != nullptr, "add_allocation: null strategy");
  check_arg(allocation(strategy->name()) == nullptr,
            "add_allocation: duplicate strategy name '" +
                std::string(strategy->name()) + "'");
  allocations_.push_back(std::move(strategy));
}

const LayoutStrategy* StrategyRegistry::layout(
    std::string_view name) const {
  for (const std::unique_ptr<LayoutStrategy>& strategy : layouts_) {
    if (strategy->name() == name) {
      return strategy.get();
    }
  }
  return nullptr;
}

const AllocationStrategy* StrategyRegistry::allocation(
    std::string_view name) const {
  for (const std::unique_ptr<AllocationStrategy>& strategy : allocations_) {
    if (strategy->name() == name) {
      return strategy.get();
    }
  }
  return nullptr;
}

std::vector<std::string> StrategyRegistry::layout_names() const {
  std::vector<std::string> names;
  names.reserve(layouts_.size());
  for (const std::unique_ptr<LayoutStrategy>& strategy : layouts_) {
    names.emplace_back(strategy->name());
  }
  return names;
}

std::vector<std::string> StrategyRegistry::allocation_names() const {
  std::vector<std::string> names;
  names.reserve(allocations_.size());
  for (const std::unique_ptr<AllocationStrategy>& strategy : allocations_) {
    names.emplace_back(strategy->name());
  }
  return names;
}

std::string known_layout_names() {
  return support::join(StrategyRegistry::builtin().layout_names(), ", ");
}

std::string known_strategy_names() {
  return support::join(StrategyRegistry::builtin().allocation_names(), ", ");
}

}  // namespace dspaddr::engine
