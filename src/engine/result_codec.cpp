#include "engine/result_codec.hpp"

#include <utility>

#include "support/check.hpp"
#include "support/json.hpp"

namespace dspaddr::engine {
namespace {

using support::JsonValue;

constexpr std::int64_t kCodecVersion = 1;

JsonValue from_size(std::size_t value) {
  return JsonValue::number(static_cast<std::int64_t>(value));
}

JsonValue from_u64(std::uint64_t value) {
  return JsonValue::number(static_cast<std::int64_t>(value));
}

JsonValue from_int(int value) {
  return JsonValue::number(static_cast<std::int64_t>(value));
}

// Instructions are dense: one array [op, reg, value, access,
// next_iteration, mr] per instruction, opcodes/addressing as integers.
// The codec version (not names) gates compatibility — this is a
// node-local cache format, not an interchange format.
JsonValue instruction_to_json(const agu::Instruction& instruction) {
  JsonValue json = JsonValue::array();
  json.push_back(from_int(static_cast<int>(instruction.op)));
  json.push_back(from_size(instruction.reg));
  json.push_back(JsonValue::number(instruction.value));
  json.push_back(from_size(instruction.access));
  json.push_back(JsonValue::boolean(instruction.next_iteration));
  json.push_back(from_int(instruction.mr));
  return json;
}

agu::Instruction instruction_from_json(const JsonValue& json) {
  check_arg(json.is_array() && json.items().size() == 6,
            "result codec: instruction must be a 6-element array");
  const auto& items = json.items();
  agu::Instruction instruction;
  const std::int64_t op = items[0].as_int();
  check_arg(op >= 0 && op <= static_cast<std::int64_t>(agu::Opcode::kLdmr),
            "result codec: unknown opcode");
  instruction.op = static_cast<agu::Opcode>(op);
  instruction.reg = static_cast<std::size_t>(items[1].as_int());
  instruction.value = items[2].as_int();
  instruction.access = static_cast<std::size_t>(items[3].as_int());
  instruction.next_iteration = items[4].as_bool();
  instruction.mr = static_cast<std::int32_t>(items[5].as_int());
  return instruction;
}

JsonValue program_to_json(const agu::Program& program) {
  JsonValue json = JsonValue::object();
  JsonValue setup = JsonValue::array();
  for (const agu::Instruction& instruction : program.setup) {
    setup.push_back(instruction_to_json(instruction));
  }
  json.set("setup", std::move(setup));
  JsonValue body = JsonValue::array();
  for (const agu::Instruction& instruction : program.body) {
    body.push_back(instruction_to_json(instruction));
  }
  json.set("body", std::move(body));
  json.set("registers", from_size(program.register_count));
  json.set("modify_registers", from_size(program.modify_register_count));
  json.set("addressing", from_int(static_cast<int>(program.addressing)));
  return json;
}

agu::Program program_from_json(const JsonValue& json) {
  check_arg(json.is_object(), "result codec: 'program' must be an object");
  agu::Program program;
  const JsonValue* setup = json.find("setup");
  const JsonValue* body = json.find("body");
  check_arg(setup != nullptr && setup->is_array() && body != nullptr &&
                body->is_array(),
            "result codec: program needs 'setup' and 'body' arrays");
  for (const JsonValue& entry : setup->items()) {
    program.setup.push_back(instruction_from_json(entry));
  }
  for (const JsonValue& entry : body->items()) {
    program.body.push_back(instruction_from_json(entry));
  }
  const JsonValue* registers = json.find("registers");
  const JsonValue* modify = json.find("modify_registers");
  const JsonValue* addressing = json.find("addressing");
  check_arg(registers != nullptr && modify != nullptr &&
                addressing != nullptr,
            "result codec: program needs registers/modify_registers/"
            "addressing");
  program.register_count = static_cast<std::size_t>(registers->as_int());
  program.modify_register_count = static_cast<std::size_t>(modify->as_int());
  const std::int64_t mode = addressing->as_int();
  check_arg(mode >= 0 &&
                mode <= static_cast<std::int64_t>(agu::Addressing::kPreModify),
            "result codec: unknown addressing mode");
  program.addressing = static_cast<agu::Addressing>(mode);
  return program;
}

JsonValue stats_to_json(const core::AllocationStats& stats) {
  JsonValue json = JsonValue::object();
  json.set("k_tilde", stats.k_tilde.has_value() ? from_size(*stats.k_tilde)
                                                : JsonValue::null());
  json.set("lower_bound", from_size(stats.lower_bound));
  json.set("upper_bound", stats.upper_bound.has_value()
                              ? from_size(*stats.upper_bound)
                              : JsonValue::null());
  json.set("phase1_exact", JsonValue::boolean(stats.phase1_exact));
  json.set("search_nodes", from_u64(stats.search_nodes));
  json.set("merges", from_size(stats.merges));
  json.set("phase2_exact", JsonValue::boolean(stats.phase2_exact));
  json.set("phase2_proven", JsonValue::boolean(stats.phase2_proven));
  json.set("phase2_nodes", from_u64(stats.phase2_nodes));
  json.set("phase2_lower_bound", from_int(stats.phase2_lower_bound));
  json.set("phase2_gap", from_int(stats.phase2_gap));
  json.set("phase2_table_cap_hits", from_u64(stats.phase2_table_cap_hits));
  json.set("phase2_subtree_tasks", from_u64(stats.phase2_subtree_tasks));
  json.set("phase2_steals", from_u64(stats.phase2_steals));
  json.set("phase2_steal_attempts", from_u64(stats.phase2_steal_attempts));
  json.set("phase2_splits", from_u64(stats.phase2_splits));
  json.set("phase2_windows", from_size(stats.phase2_windows));
  json.set("phase2_windows_proven", from_size(stats.phase2_windows_proven));
  JsonValue widths = JsonValue::array();
  for (const std::size_t width : stats.phase2_window_widths) {
    widths.push_back(from_size(width));
  }
  json.set("phase2_window_widths", std::move(widths));
  // phase2_nodes_per_sec is wall-clock derived: never serialized.
  return json;
}

core::AllocationStats stats_from_json(const JsonValue& json) {
  check_arg(json.is_object(), "result codec: 'stats' must be an object");
  const auto required = [&](const char* key) -> const JsonValue& {
    const JsonValue* value = json.find(key);
    check_arg(value != nullptr,
              std::string("result codec: stats missing '") + key + "'");
    return *value;
  };
  core::AllocationStats stats;
  const JsonValue& k_tilde = required("k_tilde");
  if (!k_tilde.is_null()) {
    stats.k_tilde = static_cast<std::size_t>(k_tilde.as_int());
  }
  stats.lower_bound =
      static_cast<std::size_t>(required("lower_bound").as_int());
  const JsonValue& upper_bound = required("upper_bound");
  if (!upper_bound.is_null()) {
    stats.upper_bound = static_cast<std::size_t>(upper_bound.as_int());
  }
  stats.phase1_exact = required("phase1_exact").as_bool();
  stats.search_nodes =
      static_cast<std::uint64_t>(required("search_nodes").as_int());
  stats.merges = static_cast<std::size_t>(required("merges").as_int());
  stats.phase2_exact = required("phase2_exact").as_bool();
  stats.phase2_proven = required("phase2_proven").as_bool();
  stats.phase2_nodes =
      static_cast<std::uint64_t>(required("phase2_nodes").as_int());
  stats.phase2_lower_bound =
      static_cast<int>(required("phase2_lower_bound").as_int());
  stats.phase2_gap = static_cast<int>(required("phase2_gap").as_int());
  stats.phase2_table_cap_hits =
      static_cast<std::uint64_t>(required("phase2_table_cap_hits").as_int());
  stats.phase2_subtree_tasks =
      static_cast<std::uint64_t>(required("phase2_subtree_tasks").as_int());
  // Records written before the work-stealing fields existed fail the
  // required() check above on an *earlier* key only if that key is
  // also absent; these three are new, so they get the same strict
  // treatment — a stale store entry decodes as corrupt and the engine
  // self-heals by recomputing and re-appending.
  stats.phase2_steals =
      static_cast<std::uint64_t>(required("phase2_steals").as_int());
  stats.phase2_steal_attempts =
      static_cast<std::uint64_t>(required("phase2_steal_attempts").as_int());
  stats.phase2_splits =
      static_cast<std::uint64_t>(required("phase2_splits").as_int());
  stats.phase2_windows =
      static_cast<std::size_t>(required("phase2_windows").as_int());
  stats.phase2_windows_proven =
      static_cast<std::size_t>(required("phase2_windows_proven").as_int());
  const JsonValue& widths = required("phase2_window_widths");
  check_arg(widths.is_array(),
            "result codec: 'phase2_window_widths' must be an array");
  for (const JsonValue& width : widths.items()) {
    stats.phase2_window_widths.push_back(
        static_cast<std::size_t>(width.as_int()));
  }
  return stats;
}

JsonValue plan_to_json(const core::ModifyRegisterPlan& plan) {
  JsonValue json = JsonValue::object();
  JsonValue values = JsonValue::array();
  for (const core::ModifyRegister& mr : plan.values) {
    JsonValue entry = JsonValue::array();
    entry.push_back(JsonValue::number(mr.value));
    entry.push_back(from_int(mr.covered));
    values.push_back(std::move(entry));
  }
  json.set("values", std::move(values));
  json.set("covered_per_iteration", from_int(plan.covered_per_iteration));
  json.set("residual_cost", from_int(plan.residual_cost));
  return json;
}

core::ModifyRegisterPlan plan_from_json(const JsonValue& json) {
  check_arg(json.is_object(), "result codec: 'plan' must be an object");
  core::ModifyRegisterPlan plan;
  const JsonValue* values = json.find("values");
  const JsonValue* covered = json.find("covered_per_iteration");
  const JsonValue* residual = json.find("residual_cost");
  check_arg(values != nullptr && values->is_array() && covered != nullptr &&
                residual != nullptr,
            "result codec: plan needs values/covered_per_iteration/"
            "residual_cost");
  for (const JsonValue& entry : values->items()) {
    check_arg(entry.is_array() && entry.items().size() == 2,
              "result codec: plan value must be a [value, covered] pair");
    core::ModifyRegister mr;
    mr.value = entry.items()[0].as_int();
    mr.covered = static_cast<int>(entry.items()[1].as_int());
    plan.values.push_back(mr);
  }
  plan.covered_per_iteration = static_cast<int>(covered->as_int());
  plan.residual_cost = static_cast<int>(residual->as_int());
  return plan;
}

JsonValue sim_to_json(const agu::SimResult& sim) {
  JsonValue json = JsonValue::object();
  json.set("verified", JsonValue::boolean(sim.verified));
  if (!sim.failure.empty()) {
    json.set("failure", JsonValue::string(sim.failure));
  }
  json.set("iterations", from_u64(sim.iterations));
  json.set("accesses_executed", from_u64(sim.accesses_executed));
  json.set("setup_instructions", from_u64(sim.setup_instructions));
  json.set("extra_instructions", from_u64(sim.extra_instructions));
  json.set("address_cycles", from_u64(sim.address_cycles));
  // The trace is only recorded under Simulator::Options::record_trace,
  // which the engine never enables: not serialized.
  return json;
}

agu::SimResult sim_from_json(const JsonValue& json) {
  check_arg(json.is_object(), "result codec: 'sim' must be an object");
  const auto required = [&](const char* key) -> const JsonValue& {
    const JsonValue* value = json.find(key);
    check_arg(value != nullptr,
              std::string("result codec: sim missing '") + key + "'");
    return *value;
  };
  agu::SimResult sim;
  sim.verified = required("verified").as_bool();
  if (const JsonValue* failure = json.find("failure")) {
    sim.failure = failure->as_string();
  }
  sim.iterations = static_cast<std::uint64_t>(required("iterations").as_int());
  sim.accesses_executed =
      static_cast<std::uint64_t>(required("accesses_executed").as_int());
  sim.setup_instructions =
      static_cast<std::uint64_t>(required("setup_instructions").as_int());
  sim.extra_instructions =
      static_cast<std::uint64_t>(required("extra_instructions").as_int());
  sim.address_cycles =
      static_cast<std::uint64_t>(required("address_cycles").as_int());
  return sim;
}

}  // namespace

std::string encode_result(const Result& result) {
  JsonValue json = JsonValue::object();
  json.set("v", JsonValue::number(kCodecVersion));
  json.set("stop_after", JsonValue::string(stage_name(result.stop_after)));
  json.set("layout", JsonValue::string(result.layout));
  json.set("strategy", JsonValue::string(result.strategy));
  if (result.error.has_value()) {
    JsonValue error = JsonValue::object();
    error.set("stage", JsonValue::string(stage_name(result.error->stage)));
    error.set("message", JsonValue::string(result.error->message));
    json.set("error", std::move(error));
  }
  json.set("accesses", from_size(result.accesses));
  json.set("layout_extent", JsonValue::number(result.layout_extent));
  json.set("k_tilde", result.k_tilde.has_value() ? from_size(*result.k_tilde)
                                                 : JsonValue::null());
  json.set("stats", stats_to_json(result.stats));
  json.set("allocation_cost", from_int(result.allocation_cost));
  json.set("intra_cost", from_int(result.intra_cost));
  json.set("wrap_cost", from_int(result.wrap_cost));
  json.set("allocation_text", JsonValue::string(result.allocation_text));
  json.set("plan", plan_to_json(result.plan));
  json.set("program", program_to_json(result.program));
  json.set("iterations", from_u64(result.iterations));
  json.set("sim", sim_to_json(result.sim));
  json.set("verified", JsonValue::boolean(result.verified));
  JsonValue metrics = JsonValue::object();
  metrics.set("baseline_size_words",
              JsonValue::number(result.baseline_size_words));
  metrics.set("baseline_cycles", JsonValue::number(result.baseline_cycles));
  metrics.set("optimized_size_words",
              JsonValue::number(result.optimized_size_words));
  metrics.set("optimized_cycles", JsonValue::number(result.optimized_cycles));
  metrics.set("size_reduction_percent",
              JsonValue::number(result.size_reduction_percent));
  metrics.set("speed_reduction_percent",
              JsonValue::number(result.speed_reduction_percent));
  json.set("metrics", std::move(metrics));
  return json.dump();
}

Result decode_result(std::string_view encoded) {
  const JsonValue json = JsonValue::parse(encoded);
  check_arg(json.is_object(), "result codec: expected a JSON object");
  const auto required = [&](const char* key) -> const JsonValue& {
    const JsonValue* value = json.find(key);
    check_arg(value != nullptr,
              std::string("result codec: missing '") + key + "'");
    return *value;
  };
  check_arg(required("v").as_int() == kCodecVersion,
            "result codec: foreign codec version");

  Result result;
  const std::optional<Stage> stop_after =
      stage_from_name(required("stop_after").as_string());
  check_arg(stop_after.has_value(), "result codec: unknown stop_after stage");
  result.stop_after = *stop_after;
  result.layout = required("layout").as_string();
  result.strategy = required("strategy").as_string();
  if (const JsonValue* error = json.find("error")) {
    const JsonValue* stage = error->find("stage");
    const JsonValue* message = error->find("message");
    check_arg(stage != nullptr && message != nullptr,
              "result codec: error needs 'stage' and 'message'");
    const std::optional<Stage> error_stage =
        stage_from_name(stage->as_string());
    check_arg(error_stage.has_value(), "result codec: unknown error stage");
    result.error = StageError{*error_stage, message->as_string()};
  }
  result.accesses = static_cast<std::size_t>(required("accesses").as_int());
  result.layout_extent = required("layout_extent").as_int();
  const JsonValue& k_tilde = required("k_tilde");
  if (!k_tilde.is_null()) {
    result.k_tilde = static_cast<std::size_t>(k_tilde.as_int());
  }
  result.stats = stats_from_json(required("stats"));
  result.allocation_cost = static_cast<int>(required("allocation_cost").as_int());
  result.intra_cost = static_cast<int>(required("intra_cost").as_int());
  result.wrap_cost = static_cast<int>(required("wrap_cost").as_int());
  result.allocation_text = required("allocation_text").as_string();
  result.plan = plan_from_json(required("plan"));
  result.program = program_from_json(required("program"));
  result.iterations =
      static_cast<std::uint64_t>(required("iterations").as_int());
  result.sim = sim_from_json(required("sim"));
  result.verified = required("verified").as_bool();
  const JsonValue& metrics = required("metrics");
  check_arg(metrics.is_object(), "result codec: 'metrics' must be an object");
  const auto metric = [&](const char* key) -> const JsonValue& {
    const JsonValue* value = metrics.find(key);
    check_arg(value != nullptr,
              std::string("result codec: metrics missing '") + key + "'");
    return *value;
  };
  result.baseline_size_words = metric("baseline_size_words").as_int();
  result.baseline_cycles = metric("baseline_cycles").as_int();
  result.optimized_size_words = metric("optimized_size_words").as_int();
  result.optimized_cycles = metric("optimized_cycles").as_int();
  result.size_reduction_percent = metric("size_reduction_percent").as_double();
  result.speed_reduction_percent =
      metric("speed_reduction_percent").as_double();
  return result;
}

}  // namespace dspaddr::engine
