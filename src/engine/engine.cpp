#include "engine/engine.hpp"

#include <chrono>
#include <vector>

#include "agu/codegen.hpp"
#include "agu/metrics.hpp"
#include "engine/fingerprint.hpp"
#include "engine/strategy.hpp"
#include "ir/layout.hpp"
#include "support/check.hpp"

namespace dspaddr::engine {
namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

constexpr const char* kStageNames[kStageCount] = {
    "lower", "allocate", "plan", "codegen", "simulate", "metrics"};

}  // namespace

const char* stage_name(Stage stage) {
  return kStageNames[static_cast<std::size_t>(stage)];
}

std::optional<Stage> stage_from_name(std::string_view name) {
  for (std::size_t i = 0; i < kStageCount; ++i) {
    if (name == kStageNames[i]) {
      return static_cast<Stage>(i);
    }
  }
  return std::nullopt;
}

bool Result::stage_done(Stage stage) const {
  if (static_cast<int>(stage) > static_cast<int>(stop_after)) {
    return false;
  }
  if (error.has_value() &&
      static_cast<int>(stage) >= static_cast<int>(error->stage)) {
    return false;
  }
  return true;
}

Result Engine::run(const Request& request) {
  const Clock::time_point start = Clock::now();
  Result result;
  result.kernel = request.kernel;
  result.machine = request.machine;
  result.stop_after = request.stop_after;
  result.layout = request.layout;
  result.strategy = request.strategy;

  // Runs one stage's body, converting any exception into the result's
  // structured error; returns whether the next stage should run.
  const auto run_stage = [&](Stage stage, const auto& body) {
    const Clock::time_point stage_start = Clock::now();
    bool ok = true;
    try {
      body();
    } catch (const std::exception& e) {
      result.error = StageError{stage, e.what()};
      ok = false;
    }
    result.stage_ms[static_cast<std::size_t>(stage)] = ms_since(stage_start);
    return ok &&
           static_cast<int>(stage) < static_cast<int>(request.stop_after);
  };

  // Lowering runs outside the cache: the fingerprint is defined over
  // the lowered sequence, so a kernel that fails to lower is answered
  // directly (and such failures are cheap to recompute anyway).
  ir::AccessSequence seq;
  bool proceed = run_stage(Stage::kLower, [&] {
    const LayoutStrategy* layout_strategy =
        StrategyRegistry::builtin().layout(request.layout);
    check_arg(layout_strategy != nullptr,
              "unknown layout strategy '" + request.layout + "' (" +
                  known_layout_names() + ")");
    const ir::ArrayLayout layout =
        layout_strategy->place(request.kernel, request.machine);
    result.layout_extent = ir::layout_extent(request.kernel, layout);
    seq = ir::lower(request.kernel, layout);
    result.accesses = seq.size();
  });
  if (result.error.has_value()) {
    result.total_ms = ms_since(start);
    return result;
  }

  const std::string key = request_fingerprint(request, seq);
  if (const std::shared_ptr<const Result> cached = cache_lookup(key)) {
    Result out = *cached;
    // Re-apply this request's decoration: the fingerprint ignores
    // kernel and machine names, so the cached payload may stem from a
    // differently-named twin.
    out.kernel = request.kernel;
    out.machine = request.machine;
    out.cache_hit = true;
    out.total_ms = ms_since(start);
    return out;
  }

  std::optional<core::Allocation> allocation;
  if (proceed) {
    proceed = run_stage(Stage::kAllocate, [&] {
      const AllocationStrategy* strategy =
          StrategyRegistry::builtin().allocation(request.strategy);
      check_arg(strategy != nullptr,
                "unknown allocation strategy '" + request.strategy +
                    "' (" + known_strategy_names() + ")");
      core::ProblemConfig config;
      config.modify_range = request.machine.modify_range;
      config.registers = request.machine.address_registers;
      config.phase2 = request.phase2;
      allocation.emplace(strategy->allocate(seq, config));
      result.stats = allocation->stats();
      result.k_tilde = result.stats.k_tilde;
      result.allocation_cost = allocation->cost();
      result.intra_cost = allocation->intra_cost();
      result.wrap_cost = allocation->wrap_cost();
      result.allocation_text = allocation->to_string(seq);
    });
  }
  if (proceed) {
    proceed = run_stage(Stage::kPlan, [&] {
      result.plan = core::plan_modify_registers(
          seq, *allocation, request.machine.modify_registers);
    });
  }
  if (proceed) {
    proceed = run_stage(Stage::kCodegen, [&] {
      result.program = agu::generate_code(seq, *allocation, result.plan);
    });
  }
  if (proceed) {
    proceed = run_stage(Stage::kSimulate, [&] {
      result.iterations = request.iterations.value_or(
          static_cast<std::uint64_t>(request.kernel.iterations()));
      result.sim =
          agu::Simulator{}.run(result.program, seq, result.iterations);
      result.verified = agu::verified_against_cost(
          result.sim, result.iterations, result.plan.residual_cost);
    });
  }
  if (proceed) {
    run_stage(Stage::kMetrics, [&] {
      const agu::AddressingComparison comparison =
          agu::compare_addressing(request.kernel, *allocation);
      result.baseline_size_words = comparison.baseline.size_words;
      result.baseline_cycles = comparison.baseline.cycles;
      result.optimized_size_words = comparison.optimized.size_words;
      result.optimized_cycles = comparison.optimized.cycles;
      result.size_reduction_percent = comparison.size_reduction_percent;
      result.speed_reduction_percent = comparison.speed_reduction_percent;
    });
  }

  result.total_ms = ms_since(start);
  cache_insert(key, result);
  return result;
}

std::shared_ptr<const Result> Engine::cache_lookup(const std::string& key) {
  if (options_.cache_capacity == 0) {
    return nullptr;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++hits_;
  return lru_.front().second;
}

void Engine::cache_insert(const std::string& key, const Result& result) {
  if (options_.cache_capacity == 0) {
    return;
  }
  // The deep copy into the shared payload happens before taking the
  // lock; so does the deallocation of any evicted entry (kept alive in
  // `evicted` until after the unlock).
  auto payload = std::make_shared<const Result>(result);
  std::vector<std::shared_ptr<const Result>> evicted;
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    // Two threads missed the same key concurrently and both computed
    // the (deterministic, hence equal) result; keep the first entry.
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(payload));
  index_[key] = lru_.begin();
  while (lru_.size() > options_.cache_capacity) {
    evicted.push_back(std::move(lru_.back().second));
    index_.erase(lru_.back().first);
    lru_.pop_back();
  }
}

CacheStats Engine::cache_stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  CacheStats stats;
  stats.hits = hits_;
  stats.misses = misses_;
  stats.entries = lru_.size();
  stats.capacity = options_.cache_capacity;
  return stats;
}

void Engine::clear_cache() {
  std::lock_guard<std::mutex> lock(mutex_);
  lru_.clear();
  index_.clear();
}

}  // namespace dspaddr::engine
