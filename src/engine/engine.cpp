#include "engine/engine.hpp"

#include <chrono>
#include <memory>

#include "agu/codegen.hpp"
#include "agu/metrics.hpp"
#include "engine/fingerprint.hpp"
#include "engine/result_codec.hpp"
#include "engine/strategy.hpp"
#include "ir/layout.hpp"
#include "support/check.hpp"

namespace dspaddr::engine {
namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

std::uint64_t to_us(double ms) {
  return ms <= 0.0 ? 0 : static_cast<std::uint64_t>(ms * 1000.0);
}

constexpr const char* kStageNames[kStageCount] = {
    "lower", "allocate", "plan", "codegen", "simulate", "metrics"};

}  // namespace

const char* stage_name(Stage stage) {
  return kStageNames[static_cast<std::size_t>(stage)];
}

std::optional<Stage> stage_from_name(std::string_view name) {
  for (std::size_t i = 0; i < kStageCount; ++i) {
    if (name == kStageNames[i]) {
      return static_cast<Stage>(i);
    }
  }
  return std::nullopt;
}

Engine::Engine(Options options)
    : options_(std::move(options)),
      cache_(options_.cache_capacity, options_.cache_shards),
      store_(options_.store),
      metrics_(options_.metrics ? options_.metrics
                                : std::make_shared<obs::Registry>()) {
  // Fixed registration order: stage histograms in stage order, then
  // tiers, then counters — the deterministic schema the metrics JSON
  // and CSV surfaces promise.
  for (std::size_t i = 0; i < kStageCount; ++i) {
    stage_us_[i] = &metrics_->histogram(
        std::string("engine.stage_us.") + kStageNames[i]);
  }
  request_us_cold_ = &metrics_->histogram("engine.request_us.cold");
  request_us_ram_hit_ = &metrics_->histogram("engine.request_us.ram_hit");
  request_us_store_hit_ = &metrics_->histogram("engine.request_us.store_hit");
  phase2_proven_ = &metrics_->counter("engine.phase2.proven");
  phase2_nodes_ = &metrics_->counter("engine.phase2.nodes");
  phase2_windows_ = &metrics_->counter("engine.phase2.windows");
  phase2_windows_proven_ = &metrics_->counter("engine.phase2.windows_proven");
  phase2_subtree_tasks_ = &metrics_->counter("engine.phase2.subtree_tasks");
  phase2_steals_ = &metrics_->counter("engine.phase2.steals");
  phase2_steal_attempts_ = &metrics_->counter("engine.phase2.steal_attempts");
  phase2_splits_ = &metrics_->counter("engine.phase2.splits");
  store_decode_errors_ = &metrics_->counter("engine.store.decode_errors");
  store_append_errors_ = &metrics_->counter("engine.store.append_errors");
}

bool Result::stage_done(Stage stage) const {
  if (static_cast<int>(stage) > static_cast<int>(stop_after)) {
    return false;
  }
  if (error.has_value() &&
      static_cast<int>(stage) >= static_cast<int>(error->stage)) {
    return false;
  }
  return true;
}

Result Engine::run(const Request& request) {
  const Clock::time_point start = Clock::now();
  Result result;
  result.kernel = request.kernel;
  result.machine = request.machine;
  result.stop_after = request.stop_after;
  result.layout = request.layout;
  result.strategy = request.strategy;

  // Runs one stage's body, converting any exception into the result's
  // structured error; returns whether the next stage should run.
  const auto run_stage = [&](Stage stage, const auto& body) {
    const Clock::time_point stage_start = Clock::now();
    bool ok = true;
    try {
      body();
    } catch (const std::exception& e) {
      result.error = StageError{stage, e.what()};
      ok = false;
    }
    const double stage_ms = ms_since(stage_start);
    result.stage_ms[static_cast<std::size_t>(stage)] = stage_ms;
    stage_us_[static_cast<std::size_t>(stage)]->record_us(to_us(stage_ms));
    return ok &&
           static_cast<int>(stage) < static_cast<int>(request.stop_after);
  };

  // Lowering runs outside the cache: the fingerprint is defined over
  // the lowered sequence, so a kernel that fails to lower is answered
  // directly (and such failures are cheap to recompute anyway).
  ir::AccessSequence seq;
  bool proceed = run_stage(Stage::kLower, [&] {
    const LayoutStrategy* layout_strategy =
        StrategyRegistry::builtin().layout(request.layout);
    check_arg(layout_strategy != nullptr,
              "unknown layout strategy '" + request.layout + "' (" +
                  known_layout_names() + ")");
    const ir::ArrayLayout layout =
        layout_strategy->place(request.kernel, request.machine);
    result.layout_extent = ir::layout_extent(request.kernel, layout);
    seq = ir::lower(request.kernel, layout);
    result.accesses = seq.size();
  });
  if (result.error.has_value()) {
    result.total_ms = ms_since(start);
    request_us_cold_->record_us(to_us(result.total_ms));
    return result;
  }

  // The post-lower stage chain, deferred into a closure so a cache hit
  // skips it entirely and the single-flight leader path below can wrap
  // it in one place.
  std::optional<core::Allocation> allocation;
  const auto run_stages = [&] {
    if (proceed) {
      proceed = run_stage(Stage::kAllocate, [&] {
        const AllocationStrategy* strategy =
            StrategyRegistry::builtin().allocation(request.strategy);
        check_arg(strategy != nullptr,
                  "unknown allocation strategy '" + request.strategy +
                      "' (" + known_strategy_names() + ")");
        core::ProblemConfig config;
        config.modify_range = request.machine.modify_range();
        config.modify_lo = request.machine.modify_lo;
        config.modify_hi = request.machine.modify_hi;
        config.free_widths = request.machine.free_widths;
        config.registers = request.machine.address_registers();
        config.phase2 = request.phase2;
        allocation.emplace(strategy->allocate(seq, config));
        result.stats = allocation->stats();
        result.k_tilde = result.stats.k_tilde;
        result.allocation_cost = allocation->cost();
        result.intra_cost = allocation->intra_cost();
        result.wrap_cost = allocation->wrap_cost();
        result.allocation_text = allocation->to_string(seq);
      });
    }
    if (proceed) {
      proceed = run_stage(Stage::kPlan, [&] {
        result.plan = core::plan_modify_registers(
            seq, *allocation, request.machine.modify_registers());
      });
    }
    if (proceed) {
      proceed = run_stage(Stage::kCodegen, [&] {
        result.program = agu::generate_code(seq, *allocation, result.plan,
                                            request.machine.addressing);
      });
    }
    if (proceed) {
      proceed = run_stage(Stage::kSimulate, [&] {
        result.iterations = request.iterations.value_or(
            static_cast<std::uint64_t>(request.kernel.iterations()));
        result.sim =
            agu::Simulator{}.run(result.program, seq, result.iterations);
        result.verified = agu::verified_against_cost(
            result.sim, result.iterations, result.plan.residual_cost);
      });
    }
    if (proceed) {
      run_stage(Stage::kMetrics, [&] {
        const agu::AddressingComparison comparison =
            agu::compare_addressing(request.kernel, *allocation);
        result.baseline_size_words = comparison.baseline.size_words;
        result.baseline_cycles = comparison.baseline.cycles;
        result.optimized_size_words = comparison.optimized.size_words;
        result.optimized_cycles = comparison.optimized.cycles;
        result.size_reduction_percent = comparison.size_reduction_percent;
        result.speed_reduction_percent = comparison.speed_reduction_percent;
      });
    }
  };

  const std::string key = request_fingerprint(request, seq);
  // A nullptr return makes this thread the key's single-flight leader:
  // it must publish (or abort) the key so that threads concurrently
  // missing the same fingerprint — which block inside lookup_or_begin
  // instead of recomputing — are woken with the shared payload.
  if (const std::shared_ptr<const Result> cached =
          cache_.lookup_or_begin(key)) {
    Result out = *cached;
    // Re-apply this request's decoration: the fingerprint ignores
    // kernel and machine names, so the cached payload may stem from a
    // differently-named twin.
    out.kernel = request.kernel;
    out.machine = request.machine;
    out.cache_hit = true;
    out.total_ms = ms_since(start);
    request_us_ram_hit_->record_us(to_us(out.total_ms));
    return out;
  }

  // This thread leads the key. With a disk tier attached, probe it
  // before computing: a prior boot (or a RAM-evicted entry) may carry
  // the answer. A hit is decoded, promoted into the RAM tier and
  // served with zero phase-2 work expended; a record that fails to
  // decode (foreign codec version, torn semantics the CRC cannot see)
  // is counted, recomputed, and the re-append below shadows it.
  if (store_ != nullptr) {
    if (const std::optional<std::string> stored = store_->get(key)) {
      std::optional<Result> decoded;
      try {
        decoded = decode_result(*stored);
      } catch (const std::exception&) {
        store_decode_errors_->add();
      }
      if (decoded.has_value()) {
        try {
          cache_.publish(key, std::make_shared<const Result>(*decoded));
        } catch (...) {
          cache_.abort(key);
          throw;
        }
        Result out = std::move(*decoded);
        out.kernel = request.kernel;
        out.machine = request.machine;
        out.store_hit = true;
        out.total_ms = ms_since(start);
        request_us_store_hit_->record_us(to_us(out.total_ms));
        return out;
      }
    }
  }

  try {
    run_stages();
  } catch (...) {
    // Stage bodies capture their own exceptions; this guards the rare
    // out-of-stage failure (e.g. bad_alloc) so waiters are not stuck
    // on a flight that will never resolve.
    cache_.abort(key);
    throw;
  }

  // An externally cancelled phase-2 solve (portfolio racing,
  // Phase2Options::abort) produced a valid allocation but not *the*
  // answer for this fingerprint — the hook is not part of the key, so
  // publishing or persisting it would let a cancelled racer's
  // incumbent impersonate the deterministic result. Abort the flight
  // (a concurrent waiter takes over leadership and computes for real)
  // and hand the partial result back without counting its phase-2
  // work.
  if (result.stats.phase2_external_abort) {
    cache_.abort(key);
    result.total_ms = ms_since(start);
    request_us_cold_->record_us(to_us(result.total_ms));
    return result;
  }

  // Phase-2 totals accumulate on computed runs only; hits of either
  // tier add nothing (see Phase2Totals).
  if (result.stage_done(Stage::kAllocate)) {
    if (result.stats.phase2_proven) {
      phase2_proven_->add();
    }
    phase2_nodes_->add(result.stats.phase2_nodes);
    phase2_windows_->add(result.stats.phase2_windows);
    phase2_windows_proven_->add(result.stats.phase2_windows_proven);
    phase2_subtree_tasks_->add(result.stats.phase2_subtree_tasks);
    phase2_steals_->add(result.stats.phase2_steals);
    phase2_steal_attempts_->add(result.stats.phase2_steal_attempts);
    phase2_splits_->add(result.stats.phase2_splits);
  }

  result.total_ms = ms_since(start);
  request_us_cold_->record_us(to_us(result.total_ms));
  try {
    cache_.publish(key, std::make_shared<const Result>(result));
  } catch (...) {
    cache_.abort(key);
    throw;
  }
  // Write-through after publishing, so single-flight waiters are never
  // held behind disk I/O. Only ok() results persist — failures are
  // cheap to recompute and should not fossilize. Append errors (disk
  // full, permissions) degrade the store to read-only rather than
  // failing the request.
  if (store_ != nullptr && result.ok()) {
    try {
      store_->append(key, encode_result(result));
    } catch (const std::exception&) {
      store_append_errors_->add();
    }
  }
  return result;
}

Phase2Totals Engine::phase2_totals() const {
  Phase2Totals totals;
  totals.proven = phase2_proven_->value();
  totals.nodes = phase2_nodes_->value();
  totals.windows = phase2_windows_->value();
  totals.windows_proven = phase2_windows_proven_->value();
  totals.subtree_tasks = phase2_subtree_tasks_->value();
  totals.steals = phase2_steals_->value();
  totals.steal_attempts = phase2_steal_attempts_->value();
  totals.splits = phase2_splits_->value();
  return totals;
}

CacheStats Engine::cache_stats() const {
  // One shard snapshot backs both the split and the aggregate, so the
  // totals always equal the sum of the shards even while runs land
  // concurrently.
  CacheStats stats;
  stats.shards = cache_.shard_counters();
  for (const runtime::CacheCounters& shard : stats.shards) {
    stats.hits += shard.hits;
    stats.misses += shard.misses;
    stats.evictions += shard.evictions;
    stats.entries += shard.entries;
    stats.capacity += shard.capacity;
  }
  return stats;
}

std::size_t Engine::clear_cache() { return cache_.clear(); }

}  // namespace dspaddr::engine
