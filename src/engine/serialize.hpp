// JSON serialization of engine results and requests.
//
// One schema backs both machine-readable surfaces: `dspaddr run
// --format=json` emits exactly the object a `dspaddr serve` response
// carries (serve adds an optional "id" echo). The serialization is
// deterministic — member order is fixed and per-call data (cache_hit,
// wall times) is deliberately excluded, so identical requests always
// produce byte-identical lines; the serve CI smoke depends on this.
//
// Schema (stages appear only when they ran; `error` only on failure):
//   {"kernel": {"name", "arrays", "accesses", "iterations", "data_ops"},
//    "machine": {"name", "description", "classes", "modify_lo",
//                "modify_hi", "inc", "dec", "addressing",
//                "registers", "modify_registers", "modify_range"}
//               (the full declarative spec, agu::machine_to_json),
//    "layout": "contiguous",
//    "strategy": "two-phase",
//    "stop_after": "metrics",
//    "error": {"stage", "message"},
//    "stages": {
//      "lower":    {"accesses", "layout_extent"},
//      "allocate": {"k_tilde", "cost", "intra_cost", "wrap_cost",
//                   "phase1_exact", "merges",
//                   "phase2": {"exact", "proven", "gap", "lower_bound",
//                              "nodes", "table_cap_hits",
//                              "subtree_tasks", "windows",
//                              "windows_proven"}},
//      "plan":     {"modify_registers": [{"value", "covered"}, ...],
//                   "covered_per_iteration", "residual_cost"},
//      "codegen":  {"setup_instructions", "body_instructions",
//                   "setup_address_words", "body_address_words"},
//      "simulate": {"iterations", "verified", "failure",
//                   "accesses_executed", "extra_instructions",
//                   "address_cycles"},
//      "metrics":  {"baseline_size_words", "optimized_size_words",
//                   "baseline_cycles", "optimized_cycles",
//                   "size_reduction_percent",
//                   "speed_reduction_percent"}}}
#pragma once

#include <string>

#include "engine/engine.hpp"
#include "engine/portfolio.hpp"
#include "ir/kernel.hpp"
#include "support/json.hpp"

namespace dspaddr::engine {

/// The result as a JSON object (see the schema above).
support::JsonValue result_to_json(const Result& result);

/// The cache counters as a JSON object — the serve `{"stats":true}`
/// response body: aggregate {"hits", "misses", "evictions", "entries",
/// "capacity"} plus a "shards" array with the same fields per shard.
support::JsonValue cache_stats_to_json(const CacheStats& stats);

/// Aggregate phase-2 work as a JSON object: {"proven", "nodes",
/// "windows", "windows_proven", "subtree_tasks"}. Deterministic across
/// jobs levels (see engine::Phase2Totals).
support::JsonValue phase2_totals_to_json(const Phase2Totals& totals);

/// Persistent-store counters as a JSON object: {"records", "bytes",
/// "recovered_records", "appended_records", "appended_bytes",
/// "truncated_bytes", "shadowed_bytes", "compactions",
/// "compacted_bytes", "hits", "misses"}.
support::JsonValue store_stats_to_json(const store::StoreStats& stats);

/// Portfolio counters as a JSON object: {"races", "short_circuits",
/// "reraces", "learned_entries"} — the deterministic subset (see
/// engine::PortfolioStats); cancellation counts are timing-dependent
/// and live only in the metrics registry.
support::JsonValue portfolio_stats_to_json(const PortfolioStats& stats);

/// The serve `{"metrics":true}` response body: {"counters": {name:
/// value}, "gauges": {name: {"value", "max"}}, "histograms": {name:
/// {"count", "sum_us", "max_us", "p50_us", "p95_us", "p99_us"}},
/// "cache": cache_stats_to_json (sans shards), "store":
/// store_stats_to_json (only when `store` is non-null)}. Member order
/// follows instrument registration order — the schema is deterministic;
/// the values are wall-clock measurements and are never byte-compared.
support::JsonValue metrics_report_json(const obs::RegistrySnapshot& snapshot,
                                       const CacheStats& cache,
                                       const store::StoreStats* store);

/// The --metrics-csv rendering of the same report: header
/// `kind,name,count,sum_us,max_us,p50_us,p95_us,p99_us,value,max`, one
/// row per instrument (unused columns empty), then cache.* / store.*
/// counters as counter rows. Ends with a newline.
std::string metrics_report_csv(const obs::RegistrySnapshot& snapshot,
                               const CacheStats& cache,
                               const store::StoreStats* store);

/// Writes metrics_report_csv for `engine` (registry snapshot, cache
/// counters, store counters when attached) to `path` — the shared
/// implementation of every surface's --metrics-csv flag. Throws Error
/// when the file cannot be written.
void write_metrics_csv(const std::string& path, const Engine& engine);

/// Compact one-line rendering of result_to_json (no trailing newline).
std::string result_to_json_line(const Result& result);

/// Parses an inline kernel object:
///   {"name"?, "description"?, "iterations"?, "data_ops"?,
///    "arrays": [{"name", "size"}, ...],
///    "accesses": [{"array", "offset"?, "stride"?, "write"?}, ...]}
/// Throws Error on malformed input.
ir::Kernel kernel_from_json(const support::JsonValue& json);

}  // namespace dspaddr::engine
