// JSON serialization of engine results and requests.
//
// One schema backs both machine-readable surfaces: `dspaddr run
// --format=json` emits exactly the object a `dspaddr serve` response
// carries (serve adds an optional "id" echo). The serialization is
// deterministic — member order is fixed and per-call data (cache_hit,
// wall times) is deliberately excluded, so identical requests always
// produce byte-identical lines; the serve CI smoke depends on this.
//
// Schema (stages appear only when they ran; `error` only on failure):
//   {"kernel": {"name", "arrays", "accesses", "iterations", "data_ops"},
//    "machine": {"name", "description", "classes", "modify_lo",
//                "modify_hi", "inc", "dec", "addressing",
//                "registers", "modify_registers", "modify_range"}
//               (the full declarative spec, agu::machine_to_json),
//    "layout": "contiguous",
//    "strategy": "two-phase",
//    "stop_after": "metrics",
//    "error": {"stage", "message"},
//    "stages": {
//      "lower":    {"accesses", "layout_extent"},
//      "allocate": {"k_tilde", "cost", "intra_cost", "wrap_cost",
//                   "phase1_exact", "merges",
//                   "phase2": {"exact", "proven", "gap", "lower_bound",
//                              "nodes", "table_cap_hits",
//                              "subtree_tasks", "windows",
//                              "windows_proven"}},
//      "plan":     {"modify_registers": [{"value", "covered"}, ...],
//                   "covered_per_iteration", "residual_cost"},
//      "codegen":  {"setup_instructions", "body_instructions",
//                   "setup_address_words", "body_address_words"},
//      "simulate": {"iterations", "verified", "failure",
//                   "accesses_executed", "extra_instructions",
//                   "address_cycles"},
//      "metrics":  {"baseline_size_words", "optimized_size_words",
//                   "baseline_cycles", "optimized_cycles",
//                   "size_reduction_percent",
//                   "speed_reduction_percent"}}}
#pragma once

#include <string>

#include "engine/engine.hpp"
#include "ir/kernel.hpp"
#include "support/json.hpp"

namespace dspaddr::engine {

/// The result as a JSON object (see the schema above).
support::JsonValue result_to_json(const Result& result);

/// The cache counters as a JSON object — the serve `{"stats":true}`
/// response body: aggregate {"hits", "misses", "evictions", "entries",
/// "capacity"} plus a "shards" array with the same fields per shard.
support::JsonValue cache_stats_to_json(const CacheStats& stats);

/// Compact one-line rendering of result_to_json (no trailing newline).
std::string result_to_json_line(const Result& result);

/// Parses an inline kernel object:
///   {"name"?, "description"?, "iterations"?, "data_ops"?,
///    "arrays": [{"name", "size"}, ...],
///    "accesses": [{"array", "offset"?, "stride"?, "write"?}, ...]}
/// Throws Error on malformed input.
ir::Kernel kernel_from_json(const support::JsonValue& json);

}  // namespace dspaddr::engine
