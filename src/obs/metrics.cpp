#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace dspaddr::obs {

std::size_t Counter::stripe_index() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t index =
      next.fetch_add(1, std::memory_order_relaxed) % kStripes;
  return index;
}

std::size_t Histogram::bucket_index(std::uint64_t us) {
  if (us == 0) {
    return 0;
  }
  // Bucket i >= 1 covers [2^(i-1), 2^i); values past the last edge
  // land in the final (open-ended) bucket.
  std::size_t index = 1;
  while (index < kBuckets - 1 && us >= (std::uint64_t{1} << index)) {
    ++index;
  }
  return index;
}

void Histogram::record_us(std::uint64_t us) {
  buckets_[bucket_index(us)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_us_.fetch_add(us, std::memory_order_relaxed);
  std::uint64_t seen = max_us_.load(std::memory_order_relaxed);
  while (us > seen &&
         !max_us_.compare_exchange_weak(seen, us,
                                        std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  snap.buckets.resize(kBuckets);
  for (std::size_t i = 0; i < kBuckets; ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum_us = sum_us_.load(std::memory_order_relaxed);
  snap.max_us = max_us_.load(std::memory_order_relaxed);
  return snap;
}

std::uint64_t HistogramSnapshot::bucket_upper_us(std::size_t i) {
  return std::uint64_t{1} << std::min<std::size_t>(i, 62);
}

std::uint64_t HistogramSnapshot::percentile_us(double p) const {
  // Sum the snapshot's own buckets rather than trusting `count`: the
  // two may disagree by in-flight increments when snapshotted under
  // concurrent writers, and the percentile must stay internally
  // consistent with the bucket walk below.
  std::uint64_t total = 0;
  for (const std::uint64_t bucket : buckets) {
    total += bucket;
  }
  if (total == 0) {
    return 0;
  }
  const double clamped = std::min(100.0, std::max(0.0, p));
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(clamped / 100.0 *
                                              static_cast<double>(total))));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    seen += buckets[i];
    if (seen >= rank) {
      return bucket_upper_us(i);
    }
  }
  return bucket_upper_us(buckets.size() - 1);
}

Registry::Entry& Registry::find_or_add(const std::string& name, Kind kind) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const std::unique_ptr<Entry>& entry : entries_) {
    if (entry->name == name) {
      check_arg(entry->kind == kind,
                "metric '" + name +
                    "' already registered as a different instrument kind");
      return *entry;
    }
  }
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->kind = kind;
  switch (kind) {
    case Kind::kCounter:
      entry->counter = std::make_unique<Counter>();
      break;
    case Kind::kGauge:
      entry->gauge = std::make_unique<Gauge>();
      break;
    case Kind::kHistogram:
      entry->histogram = std::make_unique<Histogram>();
      break;
  }
  entries_.push_back(std::move(entry));
  return *entries_.back();
}

Counter& Registry::counter(const std::string& name) {
  return *find_or_add(name, Kind::kCounter).counter;
}

Gauge& Registry::gauge(const std::string& name) {
  return *find_or_add(name, Kind::kGauge).gauge;
}

Histogram& Registry::histogram(const std::string& name) {
  return *find_or_add(name, Kind::kHistogram).histogram;
}

RegistrySnapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  RegistrySnapshot snap;
  for (const std::unique_ptr<Entry>& entry : entries_) {
    switch (entry->kind) {
      case Kind::kCounter:
        snap.counters.emplace_back(entry->name, entry->counter->value());
        break;
      case Kind::kGauge:
        snap.gauges.emplace_back(
            entry->name, std::make_pair(entry->gauge->value(),
                                        entry->gauge->max()));
        break;
      case Kind::kHistogram:
        snap.histograms.emplace_back(entry->name,
                                     entry->histogram->snapshot());
        break;
    }
  }
  return snap;
}

}  // namespace dspaddr::obs
