// obs — the always-on operational metrics layer of the serving stack.
//
// Modeled on GCC's timevar.h philosophy: instrumentation cheap enough
// to leave enabled in production builds, so per-stage latency and
// cache-tier behaviour are observable on every request instead of only
// under a profiler. Three lock-free instruments, all safe to hammer
// from many worker threads:
//
//  * Counter   — a monotonic sum, striped over cache-line-padded
//                atomics so concurrent workers never bounce one line;
//  * Gauge     — an instantaneous level (queue depth, in-flight
//                window occupancy) with a high-watermark;
//  * Histogram — fixed power-of-two latency buckets in microseconds
//                (bucket i counts values in [2^(i-1), 2^i), bucket 0
//                counts 0), aggregated only on read. Percentiles are
//                computed from the bucket counts and reported as the
//                containing bucket's upper edge, so two snapshots of
//                identical counts always render identical JSON.
//
// Instruments live in a Registry that preserves registration order —
// snapshots, the serve `{"metrics":true}` JSON and the `--metrics-csv`
// dump all iterate in that order, so the *schema* of the output is
// deterministic (the values are wall-clock measurements and are
// deliberately never part of cached results or byte-compared
// responses; see engine/serialize.hpp).
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace dspaddr::obs {

/// A monotonically increasing sum. add() is wait-free; value() sums
/// the stripes and may race concurrent adds (counters are monotonic,
/// so a reader only ever under-counts in-flight increments).
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    stripes_[stripe_index()].value.fetch_add(n, std::memory_order_relaxed);
  }

  std::uint64_t value() const {
    std::uint64_t sum = 0;
    for (const Stripe& stripe : stripes_) {
      sum += stripe.value.load(std::memory_order_relaxed);
    }
    return sum;
  }

 private:
  static constexpr std::size_t kStripes = 16;

  struct alignas(64) Stripe {
    std::atomic<std::uint64_t> value{0};
  };

  /// Each thread is pinned round-robin to one stripe on first use.
  static std::size_t stripe_index();

  std::array<Stripe, kStripes> stripes_{};
};

/// An instantaneous level with a high-watermark. record() publishes a
/// new level; the watermark only grows.
class Gauge {
 public:
  void record(std::int64_t level) {
    value_.store(level, std::memory_order_relaxed);
    std::int64_t seen = max_.load(std::memory_order_relaxed);
    while (level > seen &&
           !max_.compare_exchange_weak(seen, level,
                                       std::memory_order_relaxed)) {
    }
  }

  std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  std::int64_t max() const { return max_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
  std::atomic<std::int64_t> max_{0};
};

/// Point-in-time view of one histogram (see Histogram::snapshot).
struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum_us = 0;
  std::uint64_t max_us = 0;
  std::vector<std::uint64_t> buckets;

  /// Upper edge (exclusive) of bucket `i` in microseconds: 2^i, with
  /// the last bucket clamped open-ended.
  static std::uint64_t bucket_upper_us(std::size_t i);

  /// The upper edge of the bucket containing the p-th percentile rank
  /// (p in (0, 100]); 0 when the histogram is empty. Deterministic in
  /// the bucket counts.
  std::uint64_t percentile_us(double p) const;
};

/// Fixed-bucket latency histogram (microseconds). record() touches one
/// bucket counter plus the count/sum/max atomics — no locks, no
/// allocation — so it is safe on the per-request hot path.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 32;

  void record_us(std::uint64_t us);

  HistogramSnapshot snapshot() const;

 private:
  static std::size_t bucket_index(std::uint64_t us);

  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_us_{0};
  std::atomic<std::uint64_t> max_us_{0};
};

/// Everything one registry knows, frozen at snapshot time, in
/// registration order.
struct RegistrySnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  /// name -> (value, max)
  std::vector<std::pair<std::string, std::pair<std::int64_t, std::int64_t>>>
      gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
};

/// Owns a fixed set of named instruments. Registration (setup time)
/// takes a mutex; the returned references are stable for the registry's
/// lifetime, so the hot path holds them and never looks anything up.
/// Registering a name twice returns the existing instrument (two
/// surfaces sharing a registry can idempotently claim their metrics);
/// a name registered as a different kind throws.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  RegistrySnapshot snapshot() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };

  struct Entry {
    std::string name;
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& find_or_add(const std::string& name, Kind kind);

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Entry>> entries_;
};

}  // namespace dspaddr::obs
