#include "support/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace dspaddr::support {
namespace {

void check_type(bool condition, std::string_view what) {
  if (!condition) {
    throw InvalidArgument("JsonValue: value is not " + std::string(what));
  }
}

/// Shortest "%.{p}g" rendering that parses back to exactly `value`.
std::string dump_double(double value) {
  if (!std::isfinite(value)) {
    // JSON has no Infinity/NaN; null is the conventional stand-in.
    return "null";
  }
  char buffer[64];
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buffer, sizeof(buffer), "%.*g", precision, value);
    if (std::strtod(buffer, nullptr) == value) {
      break;
    }
  }
  std::string text(buffer);
  // Ensure the result reads back as a number with a fractional part so
  // that dump/parse round-trips preserve the double-ness of the value.
  if (text.find_first_of(".eE") == std::string::npos) {
    text += ".0";
  }
  return text;
}

/// Containers deeper than this fail to parse: the recursive-descent
/// parser must not let one hostile line (e.g. 100k '[') overflow the
/// stack of a long-lived serve process.
constexpr int kMaxParseDepth = 256;

/// Recursive-descent parser over a string_view with position tracking.
class Parser {
public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) {
      fail("trailing characters after JSON value");
    }
    return value;
  }

private:
  [[noreturn]] void fail(const std::string& message) const {
    throw JsonParseError("JSON parse error at offset " +
                         std::to_string(pos_) + ": " + message);
  }

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
    }
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(std::string("expected '") + c + "', got '" + text_[pos_] + "'");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) {
      return false;
    }
    pos_ += literal.size();
    return true;
  }

  JsonValue parse_value() {
    skip_whitespace();
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return JsonValue::string(parse_string());
      case 't':
        if (consume_literal("true")) return JsonValue::boolean(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return JsonValue::boolean(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return JsonValue::null();
        fail("invalid literal");
      default:
        return parse_number();
    }
  }

  /// RAII depth guard shared by parse_object / parse_array.
  struct DepthGuard {
    explicit DepthGuard(Parser& parser) : parser_(parser) {
      if (++parser_.depth_ > kMaxParseDepth) {
        parser_.fail("nesting deeper than " +
                     std::to_string(kMaxParseDepth) + " levels");
      }
    }
    ~DepthGuard() { --parser_.depth_; }
    Parser& parser_;
  };

  JsonValue parse_object() {
    const DepthGuard guard(*this);
    expect('{');
    JsonValue object = JsonValue::object();
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return object;
    }
    for (;;) {
      skip_whitespace();
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      object.set(std::move(key), parse_value());
      skip_whitespace();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return object;
      }
      fail("expected ',' or '}' in object");
    }
  }

  JsonValue parse_array() {
    const DepthGuard guard(*this);
    expect('[');
    JsonValue array = JsonValue::array();
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return array;
    }
    for (;;) {
      array.push_back(parse_value());
      skip_whitespace();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return array;
      }
      fail("expected ',' or ']' in array");
    }
  }

  void append_utf8(std::string& out, unsigned code_point) {
    if (code_point < 0x80) {
      out += static_cast<char>(code_point);
    } else if (code_point < 0x800) {
      out += static_cast<char>(0xC0 | (code_point >> 6));
      out += static_cast<char>(0x80 | (code_point & 0x3F));
    } else {
      out += static_cast<char>(0xE0 | (code_point >> 12));
      out += static_cast<char>(0x80 | ((code_point >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code_point & 0x3F));
    }
  }

  std::string parse_string() {
    if (peek() != '"') {
      fail("expected string");
    }
    ++pos_;
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) {
        fail("unterminated string");
      }
      const char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) {
        fail("unterminated escape");
      }
      const char escape = text_[pos_++];
      switch (escape) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            fail("truncated \\u escape");
          }
          unsigned code_point = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code_point <<= 4;
            if (h >= '0' && h <= '9') {
              code_point |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code_point |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code_point |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("invalid hex digit in \\u escape");
            }
          }
          // Surrogate pairs are out of scope for this protocol; map
          // them to U+FFFD rather than emitting invalid UTF-8.
          if (code_point >= 0xD800 && code_point <= 0xDFFF) {
            code_point = 0xFFFD;
          }
          append_utf8(out, code_point);
          break;
        }
        default:
          fail("invalid escape character");
      }
    }
  }

  /// Consumes a digit run; the grammar requires at least one digit at
  /// every position a run may appear.
  std::size_t take_digits() {
    std::size_t count = 0;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
      ++count;
    }
    return count;
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      ++pos_;
    }
    if (take_digits() == 0) {
      fail("invalid number: expected a digit");
    }
    bool is_double = false;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      is_double = true;
      ++pos_;
      if (take_digits() == 0) {
        fail("invalid number: expected a digit after '.'");
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      is_double = true;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (take_digits() == 0) {
        fail("invalid number: expected a digit in the exponent");
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    if (!is_double) {
      try {
        return JsonValue::number(std::int64_t{std::stoll(token)});
      } catch (const std::out_of_range&) {
        // Falls through: an integer beyond int64 is still a valid JSON
        // number, representable (with precision loss) as a double.
      } catch (const std::exception&) {
        fail("invalid number");
      }
    }
    try {
      return JsonValue::number(std::stod(token));
    } catch (const std::out_of_range&) {
      // Magnitude beyond double range; JSON cannot carry infinity, so
      // this is the one syntactically-valid number we reject.
      fail("number out of range");
    } catch (const std::exception&) {
      fail("invalid number");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

void dump_value(const JsonValue& value, std::string& out) {
  switch (value.type()) {
    case JsonValue::Type::kNull:
      out += "null";
      return;
    case JsonValue::Type::kBool:
      out += value.as_bool() ? "true" : "false";
      return;
    case JsonValue::Type::kInt:
      out += std::to_string(value.as_int());
      return;
    case JsonValue::Type::kDouble:
      out += dump_double(value.as_double());
      return;
    case JsonValue::Type::kString:
      out += '"';
      out += json_escape(value.as_string());
      out += '"';
      return;
    case JsonValue::Type::kArray: {
      out += '[';
      bool first = true;
      for (const JsonValue& item : value.items()) {
        if (!first) out += ',';
        first = false;
        dump_value(item, out);
      }
      out += ']';
      return;
    }
    case JsonValue::Type::kObject: {
      out += '{';
      bool first = true;
      for (const JsonValue::Member& member : value.members()) {
        if (!first) out += ',';
        first = false;
        out += '"';
        out += json_escape(member.first);
        out += "\":";
        dump_value(member.second, out);
      }
      out += '}';
      return;
    }
  }
}

}  // namespace

JsonValue JsonValue::boolean(bool value) {
  JsonValue v;
  v.type_ = Type::kBool;
  v.bool_ = value;
  return v;
}

JsonValue JsonValue::number(std::int64_t value) {
  JsonValue v;
  v.type_ = Type::kInt;
  v.int_ = value;
  return v;
}

JsonValue JsonValue::number(double value) {
  JsonValue v;
  v.type_ = Type::kDouble;
  v.double_ = value;
  return v;
}

JsonValue JsonValue::string(std::string value) {
  JsonValue v;
  v.type_ = Type::kString;
  v.string_ = std::move(value);
  return v;
}

JsonValue JsonValue::array() {
  JsonValue v;
  v.type_ = Type::kArray;
  return v;
}

JsonValue JsonValue::object() {
  JsonValue v;
  v.type_ = Type::kObject;
  return v;
}

bool JsonValue::as_bool() const {
  check_type(type_ == Type::kBool, "a bool");
  return bool_;
}

std::int64_t JsonValue::as_int() const {
  check_type(type_ == Type::kInt, "an integer");
  return int_;
}

double JsonValue::as_double() const {
  check_type(is_number(), "a number");
  return type_ == Type::kInt ? static_cast<double>(int_) : double_;
}

const std::string& JsonValue::as_string() const {
  check_type(type_ == Type::kString, "a string");
  return string_;
}

const JsonValue::Array& JsonValue::items() const {
  check_type(type_ == Type::kArray, "an array");
  return array_;
}

const JsonValue::Object& JsonValue::members() const {
  check_type(type_ == Type::kObject, "an object");
  return object_;
}

void JsonValue::push_back(JsonValue value) {
  check_type(type_ == Type::kArray, "an array");
  array_.push_back(std::move(value));
}

void JsonValue::set(std::string key, JsonValue value) {
  check_type(type_ == Type::kObject, "an object");
  for (Member& member : object_) {
    if (member.first == key) {
      member.second = std::move(value);
      return;
    }
  }
  object_.emplace_back(std::move(key), std::move(value));
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (type_ != Type::kObject) {
    return nullptr;
  }
  for (const Member& member : object_) {
    if (member.first == key) {
      return &member.second;
    }
  }
  return nullptr;
}

std::string JsonValue::dump() const {
  std::string out;
  dump_value(*this, out);
  return out;
}

JsonValue JsonValue::parse(std::string_view text) {
  return Parser(text).parse_document();
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace dspaddr::support
