// Lightweight precondition / invariant checking for the dspaddr library.
//
// The library reports contract violations by throwing exceptions derived
// from dspaddr::Error so that callers (tests, tools, long-running sweeps)
// can recover from a single bad input without tearing the process down.
#pragma once

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>
#include <string_view>

namespace dspaddr {

/// Base class of all exceptions thrown by the dspaddr library.
class Error : public std::runtime_error {
public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a function argument violates its documented contract.
class InvalidArgument : public Error {
public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Thrown when an internal invariant is found broken (a library bug or
/// corrupted input structure, e.g. an allocation that does not cover the
/// access sequence).
class InvariantViolation : public Error {
public:
  explicit InvariantViolation(const std::string& what) : Error(what) {}
};

/// Throws InvalidArgument with `message` unless `condition` holds.
void check_arg(bool condition, std::string_view message);

/// Throws InvariantViolation with `message` unless `condition` holds.
void check_invariant(bool condition, std::string_view message);

/// Checked narrowing conversion in the spirit of gsl::narrow: throws
/// InvalidArgument if the value does not round-trip.
template <typename To, typename From>
To narrow(From value) {
  const To result = static_cast<To>(value);
  if (static_cast<From>(result) != value ||
      ((result < To{}) != (value < From{}))) {
    throw InvalidArgument("narrowing conversion lost information");
  }
  return result;
}

}  // namespace dspaddr
