#include "support/check.hpp"

namespace dspaddr {

void check_arg(bool condition, std::string_view message) {
  if (!condition) {
    throw InvalidArgument(std::string(message));
  }
}

void check_invariant(bool condition, std::string_view message) {
  if (!condition) {
    throw InvariantViolation(std::string(message));
  }
}

}  // namespace dspaddr
