#include "support/table.hpp"

#include <algorithm>
#include <sstream>

#include "support/check.hpp"

namespace dspaddr::support {

Table::Table(std::vector<std::string> header, std::vector<Align> alignment)
    : header_(std::move(header)), alignment_(std::move(alignment)) {
  check_arg(!header_.empty(), "Table: header must not be empty");
  if (alignment_.empty()) {
    alignment_.assign(header_.size(), Align::kRight);
    alignment_.front() = Align::kLeft;
  }
  check_arg(alignment_.size() == header_.size(),
            "Table: alignment width does not match header");
}

void Table::add_row(std::vector<std::string> row) {
  check_arg(row.size() == header_.size(),
            "Table: row width does not match header");
  rows_.push_back(Row{std::move(row), false});
}

void Table::add_rule() {
  rows_.push_back(Row{{}, true});
}

std::size_t Table::row_count() const {
  std::size_t count = 0;
  for (const auto& row : rows_) {
    if (!row.is_rule) ++count;
  }
  return count;
}

void Table::write(std::ostream& out) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    width[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    if (row.is_rule) continue;
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      width[c] = std::max(width[c], row.cells[c].size());
    }
  }

  const auto write_cells = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) out << "  ";
      const std::string& cell = cells[c];
      const std::size_t pad = width[c] - cell.size();
      if (alignment_[c] == Align::kRight) {
        out << std::string(pad, ' ') << cell;
      } else {
        out << cell;
        if (c + 1 < cells.size()) out << std::string(pad, ' ');
      }
    }
    out << '\n';
  };

  const auto write_rule = [&] {
    for (std::size_t c = 0; c < width.size(); ++c) {
      if (c > 0) out << "  ";
      out << std::string(width[c], '-');
    }
    out << '\n';
  };

  write_cells(header_);
  write_rule();
  for (const auto& row : rows_) {
    if (row.is_rule) {
      write_rule();
    } else {
      write_cells(row.cells);
    }
  }
}

std::string Table::to_string() const {
  std::ostringstream out;
  write(out);
  return out.str();
}

}  // namespace dspaddr::support
