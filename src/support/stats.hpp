// Streaming statistics used by the experiment harness.
#pragma once

#include <cstddef>
#include <vector>

namespace dspaddr::support {

/// Welford-style accumulator: numerically stable mean/variance over a
/// stream of doubles, plus min/max.
class RunningStats {
public:
  void add(double value);

  std::size_t count() const { return count_; }
  double mean() const;
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;
  /// Half-width of the normal-approximation 95 % confidence interval.
  double ci95_half_width() const;

private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exact percentile (linear interpolation) of a sample; `q` in [0, 1].
double percentile(std::vector<double> values, double q);

/// Percentage reduction of `optimized` relative to `baseline`; returns 0
/// when the baseline is 0 (nothing to reduce).
double percent_reduction(double baseline, double optimized);

}  // namespace dspaddr::support
