// Minimal CSV writer for exporting experiment results.
#pragma once

#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace dspaddr::support {

/// Accumulates rows and writes RFC-4180-style CSV (quotes fields that
/// contain commas, quotes or newlines).
class CsvWriter {
public:
  explicit CsvWriter(std::vector<std::string> header);

  /// Appends a row; must have exactly as many fields as the header.
  void add_row(std::vector<std::string> row);

  std::size_t row_count() const { return rows_.size(); }

  void write(std::ostream& out) const;
  std::string to_string() const;

private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Escapes one CSV field per RFC 4180.
std::string csv_escape(std::string_view field);

}  // namespace dspaddr::support
