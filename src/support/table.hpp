// ASCII table formatter used by benches and examples to print
// paper-style result tables.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace dspaddr::support {

/// Column alignment inside a Table.
enum class Align { kLeft, kRight };

/// Accumulates rows of string cells and renders them with padded,
/// aligned columns and a header rule:
///
///   N    M  K  naive  merged  reduction
///   ---  -  -  -----  ------  ---------
///   10   1  2   3.20    1.95     39.1 %
class Table {
public:
  explicit Table(std::vector<std::string> header,
                 std::vector<Align> alignment = {});

  void add_row(std::vector<std::string> row);

  /// Adds a horizontal rule between row groups.
  void add_rule();

  std::size_t row_count() const;

  void write(std::ostream& out) const;
  std::string to_string() const;

private:
  struct Row {
    std::vector<std::string> cells;
    bool is_rule = false;
  };

  std::vector<std::string> header_;
  std::vector<Align> alignment_;
  std::vector<Row> rows_;
};

}  // namespace dspaddr::support
