// Small string-formatting helpers shared by reports and error messages.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace dspaddr::support {

/// Joins `parts` with `separator` ("a, b, c").
std::string join(const std::vector<std::string>& parts,
                 std::string_view separator);

/// Fixed-point formatting with `digits` decimals ("3.14").
std::string format_fixed(double value, int digits);

/// "41.3 %"-style percentage formatting.
std::string format_percent(double value, int digits = 1);

/// Splits on a single character, keeping empty fields.
std::vector<std::string> split(std::string_view text, char separator);

/// Removes leading/trailing ASCII whitespace.
std::string_view trim(std::string_view text);

}  // namespace dspaddr::support
