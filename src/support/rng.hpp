// Deterministic pseudo-random number generation for experiments.
//
// All randomized parts of the library (workload generators, randomized
// baselines, property-test sweeps) draw from this generator so that every
// experiment in EXPERIMENTS.md is reproducible from a printed seed.
// The engine is xoshiro256** seeded via splitmix64, which is small, fast
// and has no measurable bias for the sizes used here.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "support/check.hpp"

namespace dspaddr::support {

/// splitmix64 step; used for seeding and as a cheap stateless mixer.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** engine with a std::uniform_random_bit_generator interface.
class Rng {
public:
  using result_type = std::uint64_t;

  /// Seeds the four lanes from `seed` via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()();

  /// Uniform integer in the inclusive range [lo, hi].
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [0, 1).
  double uniform_real();

  /// Bernoulli draw with probability `p` of returning true.
  bool bernoulli(double p);

  /// Uniformly selects an index in [0, size).
  std::size_t index(std::size_t size);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& values) {
    if (values.empty()) return;
    for (std::size_t i = values.size() - 1; i > 0; --i) {
      std::swap(values[i], values[index(i + 1)]);
    }
  }

private:
  std::array<std::uint64_t, 4> state_;
};

}  // namespace dspaddr::support
