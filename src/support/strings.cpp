#include "support/strings.hpp"

#include <cctype>
#include <cstdio>

namespace dspaddr::support {

std::string join(const std::vector<std::string>& parts,
                 std::string_view separator) {
  std::string result;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) result += separator;
    result += parts[i];
  }
  return result;
}

std::string format_fixed(double value, int digits) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.*f", digits, value);
  return buffer;
}

std::string format_percent(double value, int digits) {
  return format_fixed(value, digits) + " %";
}

std::vector<std::string> split(std::string_view text, char separator) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(separator, start);
    if (pos == std::string_view::npos) {
      fields.emplace_back(text.substr(start));
      return fields;
    }
    fields.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view text) {
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.front()))) {
    text.remove_prefix(1);
  }
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.back()))) {
    text.remove_suffix(1);
  }
  return text;
}

}  // namespace dspaddr::support
