#include "support/csv.hpp"

#include <sstream>

#include "support/check.hpp"

namespace dspaddr::support {

CsvWriter::CsvWriter(std::vector<std::string> header)
    : header_(std::move(header)) {
  check_arg(!header_.empty(), "CsvWriter: header must not be empty");
}

void CsvWriter::add_row(std::vector<std::string> row) {
  check_arg(row.size() == header_.size(),
            "CsvWriter: row width does not match header");
  rows_.push_back(std::move(row));
}

void CsvWriter::write(std::ostream& out) const {
  const auto write_row = [&out](const std::vector<std::string>& fields) {
    for (std::size_t i = 0; i < fields.size(); ++i) {
      if (i > 0) out << ',';
      out << csv_escape(fields[i]);
    }
    out << '\n';
  };
  write_row(header_);
  for (const auto& row : rows_) {
    write_row(row);
  }
}

std::string CsvWriter::to_string() const {
  std::ostringstream out;
  write(out);
  return out.str();
}

std::string csv_escape(std::string_view field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) return std::string(field);
  std::string quoted = "\"";
  for (char c : field) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

}  // namespace dspaddr::support
