// Minimal JSON value: parse, build, dump.
//
// Backs the machine-readable surfaces of the tool — `dspaddr run
// --format=json` and the JSON-lines `dspaddr serve` protocol — without
// pulling in an external dependency. Scope is deliberately small:
//  * objects preserve insertion order (deterministic dumps, the property
//    the serve smoke test relies on);
//  * numbers distinguish integers (int64) from doubles; doubles dump as
//    the shortest representation that round-trips;
//  * `dump()` is compact (no whitespace), one value per line by
//    construction — exactly what a JSON-lines protocol needs.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "support/check.hpp"

namespace dspaddr::support {

/// Thrown by JsonValue::parse on malformed input.
class JsonParseError : public Error {
public:
  explicit JsonParseError(const std::string& what) : Error(what) {}
};

/// One JSON value (null, bool, integer, double, string, array, object).
class JsonValue {
public:
  enum class Type {
    kNull,
    kBool,
    kInt,
    kDouble,
    kString,
    kArray,
    kObject,
  };

  using Array = std::vector<JsonValue>;
  using Member = std::pair<std::string, JsonValue>;
  /// Insertion-ordered members (small objects; linear find is fine).
  using Object = std::vector<Member>;

  JsonValue() = default;
  static JsonValue null() { return JsonValue{}; }
  static JsonValue boolean(bool value);
  static JsonValue number(std::int64_t value);
  static JsonValue number(double value);
  static JsonValue string(std::string value);
  static JsonValue array();
  static JsonValue object();

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_int() const { return type_ == Type::kInt; }
  bool is_number() const {
    return type_ == Type::kInt || type_ == Type::kDouble;
  }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; throw InvalidArgument on a type mismatch.
  bool as_bool() const;
  std::int64_t as_int() const;
  /// Any number as double (integers convert).
  double as_double() const;
  const std::string& as_string() const;
  const Array& items() const;
  const Object& members() const;

  /// Appends to an array (value must be an array).
  void push_back(JsonValue value);

  /// Sets `key` on an object: replaces an existing member in place,
  /// appends otherwise.
  void set(std::string key, JsonValue value);

  /// Object member lookup; nullptr when absent (or not an object).
  const JsonValue* find(std::string_view key) const;

  /// Compact deterministic serialization (member order preserved).
  std::string dump() const;

  /// Parses exactly one JSON value; throws JsonParseError on malformed
  /// input or trailing non-whitespace.
  static JsonValue parse(std::string_view text);

private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

/// Escapes one string per RFC 8259 (quotes, backslash, control chars).
std::string json_escape(std::string_view text);

}  // namespace dspaddr::support
