#include "support/stats.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace dspaddr::support {

void RunningStats::add(double value) {
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

double RunningStats::mean() const {
  return count_ == 0 ? 0.0 : mean_;
}

double RunningStats::variance() const {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const {
  return std::sqrt(variance());
}

double RunningStats::min() const {
  return min_;
}

double RunningStats::max() const {
  return max_;
}

double RunningStats::ci95_half_width() const {
  if (count_ < 2) return 0.0;
  return 1.959964 * stddev() / std::sqrt(static_cast<double>(count_));
}

double percentile(std::vector<double> values, double q) {
  check_arg(!values.empty(), "percentile: empty sample");
  check_arg(q >= 0.0 && q <= 1.0, "percentile: q outside [0, 1]");
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

double percent_reduction(double baseline, double optimized) {
  if (baseline == 0.0) return 0.0;
  return 100.0 * (baseline - optimized) / baseline;
}

}  // namespace dspaddr::support
