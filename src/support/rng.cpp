#include "support/rng.hpp"

namespace dspaddr::support {

namespace {

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& lane : state_) {
    lane = splitmix64(sm);
  }
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  check_arg(lo <= hi, "uniform_int: empty range");
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>((*this)());
  }
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = max() - max() % span;
  std::uint64_t draw = (*this)();
  while (draw >= limit) {
    draw = (*this)();
  }
  return lo + static_cast<std::int64_t>(draw % span);
}

double Rng::uniform_real() {
  // 53 high-quality bits into [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

bool Rng::bernoulli(double p) {
  return uniform_real() < p;
}

std::size_t Rng::index(std::size_t size) {
  check_arg(size > 0, "index: empty range");
  return static_cast<std::size_t>(
      uniform_int(0, static_cast<std::int64_t>(size) - 1));
}

}  // namespace dspaddr::support
