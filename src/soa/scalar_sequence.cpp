#include "soa/scalar_sequence.hpp"

#include <algorithm>
#include <cstdlib>
#include <tuple>
#include <unordered_map>

#include "support/check.hpp"

namespace dspaddr::soa {

ScalarSequence::ScalarSequence(std::vector<VarId> accesses,
                               std::size_t variable_count)
    : accesses_(std::move(accesses)), variable_count_(variable_count) {
  for (VarId v : accesses_) {
    check_arg(v < variable_count_,
              "ScalarSequence: access to undeclared variable");
  }
}

ScalarSequence ScalarSequence::from_names(
    const std::vector<std::string>& names) {
  std::unordered_map<std::string, VarId> ids;
  std::vector<VarId> accesses;
  accesses.reserve(names.size());
  for (const std::string& name : names) {
    const auto [it, inserted] =
        ids.emplace(name, static_cast<VarId>(ids.size()));
    accesses.push_back(it->second);
  }
  return ScalarSequence(std::move(accesses), ids.size());
}

VarId ScalarSequence::operator[](std::size_t i) const {
  check_arg(i < accesses_.size(), "ScalarSequence: index out of range");
  return accesses_[i];
}

std::vector<std::size_t> ScalarSequence::frequencies() const {
  std::vector<std::size_t> freq(variable_count_, 0);
  for (VarId v : accesses_) {
    ++freq[v];
  }
  return freq;
}

ScalarSequence ScalarSequence::project(const std::vector<bool>& keep) const {
  check_arg(keep.size() == variable_count_,
            "project: keep mask size mismatch");
  std::vector<VarId> projected;
  for (VarId v : accesses_) {
    if (keep[v]) projected.push_back(v);
  }
  return ScalarSequence(std::move(projected), variable_count_);
}

WeightedAccessGraph::WeightedAccessGraph(const ScalarSequence& seq)
    : n_(seq.variable_count()), weights_(n_ * n_, 0) {
  for (std::size_t i = 0; i + 1 < seq.size(); ++i) {
    const VarId u = seq[i];
    const VarId v = seq[i + 1];
    if (u == v) continue;
    ++weights_[index(u, v)];
  }
}

std::size_t WeightedAccessGraph::index(VarId u, VarId v) const {
  check_arg(u < n_ && v < n_, "WeightedAccessGraph: variable out of range");
  if (u > v) std::swap(u, v);
  return static_cast<std::size_t>(u) * n_ + v;
}

std::int64_t WeightedAccessGraph::weight(VarId u, VarId v) const {
  if (u == v) return 0;
  return weights_[index(u, v)];
}

std::vector<WeightedAccessGraph::Edge> WeightedAccessGraph::edges() const {
  std::vector<Edge> result;
  for (VarId u = 0; u < n_; ++u) {
    for (VarId v = u + 1; v < n_; ++v) {
      const std::int64_t w = weights_[static_cast<std::size_t>(u) * n_ + v];
      if (w > 0) result.push_back(Edge{u, v, w});
    }
  }
  return result;
}

std::int64_t layout_cost(const ScalarSequence& seq, const Layout& layout) {
  check_arg(layout.size() == seq.variable_count(),
            "layout_cost: layout size mismatch");
  std::int64_t cost = 0;
  for (std::size_t i = 0; i + 1 < seq.size(); ++i) {
    const std::int64_t distance =
        layout[seq[i + 1]] - layout[seq[i]];
    if (std::llabs(distance) > 1) ++cost;
  }
  return cost;
}

Layout identity_layout(std::size_t variable_count) {
  Layout layout(variable_count);
  for (std::size_t v = 0; v < variable_count; ++v) {
    layout[v] = static_cast<std::int64_t>(v);
  }
  return layout;
}

std::vector<VarId> layout_order(const Layout& layout) {
  std::vector<VarId> order(layout.size());
  for (std::size_t v = 0; v < layout.size(); ++v) {
    order[v] = static_cast<VarId>(v);
  }
  std::sort(order.begin(), order.end(), [&](VarId a, VarId b) {
    return std::tie(layout[a], a) < std::tie(layout[b], b);
  });
  return order;
}

}  // namespace dspaddr::soa
