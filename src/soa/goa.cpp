#include "soa/goa.hpp"

#include <algorithm>
#include <numeric>
#include <tuple>

#include "support/check.hpp"

namespace dspaddr::soa {

namespace {

std::int64_t register_soa_cost(const ScalarSequence& seq,
                               const std::vector<std::uint32_t>& register_of,
                               std::uint32_t reg, SoaTieBreak tie_break) {
  std::vector<bool> keep(seq.variable_count(), false);
  bool any = false;
  for (VarId v = 0; v < seq.variable_count(); ++v) {
    if (register_of[v] == reg) {
      keep[v] = true;
      any = true;
    }
  }
  if (!any) return 0;
  const ScalarSequence projected = seq.project(keep);
  return layout_cost(projected, liao_layout(projected, tie_break));
}

}  // namespace

std::int64_t partition_cost(const ScalarSequence& seq,
                            const std::vector<std::uint32_t>& register_of,
                            std::size_t k, SoaTieBreak tie_break) {
  check_arg(register_of.size() == seq.variable_count(),
            "partition_cost: partition size mismatch");
  std::int64_t total = 0;
  for (std::uint32_t reg = 0; reg < k; ++reg) {
    total += register_soa_cost(seq, register_of, reg, tie_break);
  }
  return total;
}

namespace {

/// Round-robin seed + first-improvement local search for exactly
/// `registers` registers.
std::vector<std::uint32_t> local_search_partition(
    const ScalarSequence& seq, std::size_t registers,
    const GoaOptions& options) {
  const std::size_t n = seq.variable_count();

  // Seed: variables by descending frequency, round-robin over registers.
  std::vector<VarId> by_frequency(n);
  std::iota(by_frequency.begin(), by_frequency.end(), VarId{0});
  const std::vector<std::size_t> freq = seq.frequencies();
  std::sort(by_frequency.begin(), by_frequency.end(),
            [&](VarId a, VarId b) {
              return std::tie(freq[b], a) < std::tie(freq[a], b);
            });
  std::vector<std::uint32_t> register_of(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    register_of[by_frequency[i]] =
        static_cast<std::uint32_t>(i % registers);
  }

  std::vector<std::int64_t> cost_of(registers);
  for (std::uint32_t reg = 0; reg < registers; ++reg) {
    cost_of[reg] =
        register_soa_cost(seq, register_of, reg, options.tie_break);
  }
  for (std::size_t sweep = 0; sweep < options.max_sweeps; ++sweep) {
    bool improved = false;
    for (VarId v = 0; v < n; ++v) {
      const std::uint32_t from = register_of[v];
      for (std::uint32_t to = 0; to < registers; ++to) {
        if (to == from) continue;
        register_of[v] = to;
        const std::int64_t new_from = register_soa_cost(
            seq, register_of, from, options.tie_break);
        const std::int64_t new_to =
            register_soa_cost(seq, register_of, to, options.tie_break);
        if (new_from + new_to < cost_of[from] + cost_of[to]) {
          cost_of[from] = new_from;
          cost_of[to] = new_to;
          improved = true;
          break;  // v moved; try the next variable
        }
        register_of[v] = from;
      }
    }
    if (!improved) break;
  }
  return register_of;
}

}  // namespace

GoaResult goa_allocate(const ScalarSequence& seq, std::size_t k,
                       const GoaOptions& options) {
  check_arg(k >= 1, "goa_allocate: need at least one register");

  // Using fewer than k registers is always allowed, so the best
  // partition over 1 .. k registers is kept: this makes the result
  // monotone in k by construction (an extra register never hurts).
  std::vector<std::uint32_t> best;
  std::int64_t best_cost = 0;
  for (std::size_t registers = 1; registers <= k; ++registers) {
    std::vector<std::uint32_t> candidate =
        local_search_partition(seq, registers, options);
    const std::int64_t cost =
        partition_cost(seq, candidate, k, options.tie_break);
    if (best.empty() || cost < best_cost) {
      best = std::move(candidate);
      best_cost = cost;
    }
  }

  GoaResult result;
  result.register_of = std::move(best);
  result.register_cost.resize(k);
  for (std::uint32_t reg = 0; reg < k; ++reg) {
    std::vector<bool> keep(seq.variable_count(), false);
    for (VarId v = 0; v < seq.variable_count(); ++v) {
      if (result.register_of[v] == reg) keep[v] = true;
    }
    const ScalarSequence projected = seq.project(keep);
    result.register_cost[reg] =
        projected.size() == 0
            ? 0
            : layout_cost(projected,
                          liao_layout(projected, options.tie_break));
  }
  result.total_cost = std::accumulate(result.register_cost.begin(),
                                      result.register_cost.end(),
                                      std::int64_t{0});
  return result;
}

std::int64_t exact_goa_cost(const ScalarSequence& seq, std::size_t k,
                            SoaTieBreak tie_break,
                            std::uint64_t max_states) {
  const std::size_t n = seq.variable_count();
  std::uint64_t states = 1;
  for (std::size_t i = 0; i < n; ++i) {
    states *= k;
    check_arg(states <= max_states,
              "exact_goa_cost: state space too large for enumeration");
  }

  std::vector<std::uint32_t> register_of(n, 0);
  std::int64_t best = partition_cost(seq, register_of, k, tie_break);
  while (true) {
    // Odometer increment over base-k digits.
    std::size_t digit = 0;
    while (digit < n) {
      if (++register_of[digit] < k) break;
      register_of[digit] = 0;
      ++digit;
    }
    if (digit == n) break;
    best = std::min(best, partition_cost(seq, register_of, k, tie_break));
  }
  return best;
}

}  // namespace dspaddr::soa
