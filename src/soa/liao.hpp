// Liao's simple-offset-assignment heuristic (PLDI'95 [4]) with the
// Leupers/Marwedel tie-break refinement (ICCAD'96 [5]).
//
// SOA seeks a memory layout of scalar variables maximizing the access-
// graph weight "covered" by layout adjacency: a maximum-weight
// Hamiltonian path problem, solved greedily in Kruskal style — take
// edges by descending weight, rejecting any that would give a vertex
// degree > 2 or close a cycle; the chosen edges form disjoint chains
// that are concatenated into the final layout order.
//
// The tie-break variant orders equal-weight edges by the weight of the
// still-selectable edges they would exclude (lower exclusion first), a
// simplified form of the Leupers/Marwedel tie-break that measurably
// improves over naive ordering on dense graphs.
#pragma once

#include "soa/scalar_sequence.hpp"
#include "support/rng.hpp"

namespace dspaddr::soa {

enum class SoaTieBreak {
  /// Stable order (by vertex ids) among equal weights — plain Liao.
  kNone,
  /// Prefer the equal-weight edge excluding the least selectable weight.
  kLeupers,
};

/// Computes a layout via the greedy max-weight path cover.
Layout liao_layout(const ScalarSequence& seq,
                   SoaTieBreak tie_break = SoaTieBreak::kNone);

/// Uniformly random permutation layout (baseline for bench T6).
Layout random_layout(std::size_t variable_count, support::Rng& rng);

/// Exact minimum SOA cost by permutation enumeration — only for tiny
/// variable counts (throws beyond `max_variables`). Reference for
/// property tests.
std::int64_t exact_soa_cost(const ScalarSequence& seq,
                            std::size_t max_variables = 9);

}  // namespace dspaddr::soa
