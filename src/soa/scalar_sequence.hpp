// Scalar-variable access sequences for (simple/general) offset
// assignment — the complementary optimization the paper cites as
// [4] (Liao et al., PLDI'95) and [5] (Leupers/Marwedel, ICCAD'96).
//
// Where the array problem allocates *accesses* to address registers for
// a fixed memory layout, the scalar problem chooses the *memory layout*
// of program variables so that consecutive accesses are reachable by
// auto-increment/decrement (distance <= 1).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dspaddr::soa {

using VarId = std::uint32_t;

/// An access sequence over scalar variables 0 .. variable_count-1.
class ScalarSequence {
public:
  ScalarSequence() = default;
  ScalarSequence(std::vector<VarId> accesses, std::size_t variable_count);

  /// Builds from variable names ("a b c a b"): ids in first-appearance
  /// order.
  static ScalarSequence from_names(const std::vector<std::string>& names);

  std::size_t size() const { return accesses_.size(); }
  std::size_t variable_count() const { return variable_count_; }
  const std::vector<VarId>& accesses() const { return accesses_; }
  VarId operator[](std::size_t i) const;

  /// Number of accesses of each variable.
  std::vector<std::size_t> frequencies() const;

  /// Projection onto a variable subset (keep[v] == true), preserving
  /// order; ids are *not* renumbered.
  ScalarSequence project(const std::vector<bool>& keep) const;

private:
  std::vector<VarId> accesses_;
  std::size_t variable_count_ = 0;
};

/// Weighted undirected access graph: w(u, v) = number of adjacent
/// occurrences of u and v in the sequence (u != v).
class WeightedAccessGraph {
public:
  explicit WeightedAccessGraph(const ScalarSequence& seq);

  std::size_t variable_count() const { return n_; }
  std::int64_t weight(VarId u, VarId v) const;

  struct Edge {
    VarId u, v;
    std::int64_t weight;
  };
  /// All positive-weight edges.
  std::vector<Edge> edges() const;

private:
  std::size_t n_ = 0;
  std::vector<std::int64_t> weights_;  // upper triangle, row-major
  std::size_t index(VarId u, VarId v) const;
};

/// A memory layout: offset_of[v] is variable v's address. Offsets must
/// be a permutation of 0 .. n-1.
using Layout = std::vector<std::int64_t>;

/// Cost of `layout` for `seq`: transitions between consecutive accesses
/// whose address distance exceeds 1 (the classic auto-inc/dec range).
std::int64_t layout_cost(const ScalarSequence& seq, const Layout& layout);

/// Declaration-order layout (offset v for variable v).
Layout identity_layout(std::size_t variable_count);

/// Variables in address order: the inverse view of a layout, i.e. the
/// ids sorted by ascending offset. What memory-placement consumers
/// (e.g. the engine's soa-liao/goa layout strategies) need.
std::vector<VarId> layout_order(const Layout& layout);

}  // namespace dspaddr::soa
