#include "soa/liao.hpp"

#include <algorithm>
#include <numeric>
#include <tuple>

#include "graph/dsu.hpp"
#include "support/check.hpp"

namespace dspaddr::soa {

namespace {

using Edge = WeightedAccessGraph::Edge;

/// Weight of still-selectable edges incident to u or v that selecting
/// (u, v) could exclude (degree saturation).
std::int64_t exclusion_weight(const WeightedAccessGraph& graph,
                              const Edge& edge) {
  std::int64_t total = 0;
  const std::size_t n = graph.variable_count();
  for (VarId w = 0; w < n; ++w) {
    if (w != edge.u && w != edge.v) {
      total += graph.weight(edge.u, w);
      total += graph.weight(edge.v, w);
    }
  }
  return total;
}

}  // namespace

Layout liao_layout(const ScalarSequence& seq, SoaTieBreak tie_break) {
  const std::size_t n = seq.variable_count();
  const WeightedAccessGraph graph(seq);
  std::vector<Edge> edges = graph.edges();

  if (tie_break == SoaTieBreak::kNone) {
    std::sort(edges.begin(), edges.end(),
              [](const Edge& a, const Edge& b) {
                return std::tie(b.weight, a.u, a.v) <
                       std::tie(a.weight, b.u, b.v);
              });
  } else {
    std::vector<std::int64_t> exclusion(edges.size());
    for (std::size_t i = 0; i < edges.size(); ++i) {
      exclusion[i] = exclusion_weight(graph, edges[i]);
    }
    std::vector<std::size_t> order(edges.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                if (edges[a].weight != edges[b].weight) {
                  return edges[a].weight > edges[b].weight;
                }
                if (exclusion[a] != exclusion[b]) {
                  return exclusion[a] < exclusion[b];
                }
                return std::tie(edges[a].u, edges[a].v) <
                       std::tie(edges[b].u, edges[b].v);
              });
    std::vector<Edge> sorted;
    sorted.reserve(edges.size());
    for (std::size_t i : order) sorted.push_back(edges[i]);
    edges = std::move(sorted);
  }

  // Kruskal-style chain building.
  std::vector<int> degree(n, 0);
  std::vector<std::vector<VarId>> adjacency(n);
  graph::Dsu components(n);
  for (const Edge& edge : edges) {
    if (degree[edge.u] >= 2 || degree[edge.v] >= 2) continue;
    if (components.same(edge.u, edge.v)) continue;
    components.unite(edge.u, edge.v);
    ++degree[edge.u];
    ++degree[edge.v];
    adjacency[edge.u].push_back(edge.v);
    adjacency[edge.v].push_back(edge.u);
  }

  // Walk each chain from an endpoint; isolated variables become length-1
  // chains. Concatenate in order of chain discovery.
  Layout layout(n, -1);
  std::int64_t next_offset = 0;
  std::vector<bool> visited(n, false);
  const auto walk = [&](VarId start) {
    VarId prev = start;
    VarId node = start;
    while (true) {
      visited[node] = true;
      layout[node] = next_offset++;
      VarId next = node;
      for (VarId neighbor : adjacency[node]) {
        if (neighbor != prev && !visited[neighbor]) {
          next = neighbor;
          break;
        }
      }
      if (next == node) break;
      prev = node;
      node = next;
    }
  };
  for (VarId v = 0; v < n; ++v) {
    if (!visited[v] && degree[v] <= 1) walk(v);
  }
  // Defensive: cycles cannot occur (DSU check), but cover stragglers.
  for (VarId v = 0; v < n; ++v) {
    if (!visited[v]) walk(v);
  }
  return layout;
}

Layout random_layout(std::size_t variable_count, support::Rng& rng) {
  std::vector<std::int64_t> offsets(variable_count);
  std::iota(offsets.begin(), offsets.end(), std::int64_t{0});
  rng.shuffle(offsets);
  return offsets;
}

std::int64_t exact_soa_cost(const ScalarSequence& seq,
                            std::size_t max_variables) {
  const std::size_t n = seq.variable_count();
  check_arg(n <= max_variables,
            "exact_soa_cost: too many variables for enumeration");
  Layout layout = identity_layout(n);
  std::int64_t best = layout_cost(seq, layout);
  while (std::next_permutation(layout.begin(), layout.end())) {
    best = std::min(best, layout_cost(seq, layout));
  }
  return best;
}

}  // namespace dspaddr::soa
