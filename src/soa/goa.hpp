// General offset assignment (GOA): SOA with k address registers
// (Leupers/Marwedel ICCAD'96 [5]).
//
// Variables are partitioned among k address registers; each register
// serves the subsequence of accesses to its variables, laid out by SOA.
// The heuristic seeds the partition by descending access frequency
// (round-robin) and then runs a first-improvement local search that
// moves single variables between registers while the total cost drops.
// An exact enumerator over partitions is provided for tiny instances as
// the property-test oracle.
#pragma once

#include <cstdint>
#include <vector>

#include "soa/liao.hpp"
#include "soa/scalar_sequence.hpp"

namespace dspaddr::soa {

struct GoaOptions {
  SoaTieBreak tie_break = SoaTieBreak::kLeupers;
  /// Local-search sweep limit (each sweep tries every (variable,
  /// register) move once).
  std::size_t max_sweeps = 8;
};

struct GoaResult {
  /// register_of[v] in [0, k).
  std::vector<std::uint32_t> register_of;
  /// Per-register SOA cost of the projected subsequence.
  std::vector<std::int64_t> register_cost;
  std::int64_t total_cost = 0;
};

/// Cost of a fixed partition: sum over registers of the SOA cost of the
/// projected subsequence (layout via liao_layout with `tie_break`).
std::int64_t partition_cost(const ScalarSequence& seq,
                            const std::vector<std::uint32_t>& register_of,
                            std::size_t k, SoaTieBreak tie_break);

/// Heuristic GOA allocation of `seq` onto `k` registers.
GoaResult goa_allocate(const ScalarSequence& seq, std::size_t k,
                       const GoaOptions& options = {});

/// Exact minimum over all partitions (layout still via liao per
/// register); throws when k^variable_count would exceed `max_states`.
std::int64_t exact_goa_cost(const ScalarSequence& seq, std::size_t k,
                            SoaTieBreak tie_break = SoaTieBreak::kLeupers,
                            std::uint64_t max_states = 2'000'000);

}  // namespace dspaddr::soa
