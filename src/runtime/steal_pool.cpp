#include "runtime/steal_pool.hpp"

#include <chrono>
#include <utility>

#include "support/check.hpp"

namespace dspaddr::runtime {

namespace {

// Which pool (if any) the current thread is a worker of, and its slot
// index there. donate() uses this to reach the caller's own deque;
// a thread can only ever be a worker of one pool at a time.
thread_local const StealPool* tls_pool = nullptr;
thread_local std::size_t tls_worker = 0;

}  // namespace

void StealDeque::push_bottom(Task task) {
  std::lock_guard<std::mutex> lock(mutex_);
  items_.push_back(std::move(task));
}

bool StealDeque::pop_bottom(Task& out) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (items_.empty()) {
    return false;
  }
  out = std::move(items_.back());
  items_.pop_back();
  return true;
}

bool StealDeque::steal_top(Task& out) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (items_.empty()) {
    return false;
  }
  out = std::move(items_.front());
  items_.pop_front();
  return true;
}

std::size_t StealDeque::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return items_.size();
}

StealPool::StealPool(std::size_t workers) {
  check_arg(workers >= 1, "StealPool: needs at least one worker");
  slots_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    slots_.push_back(std::make_unique<Slot>());
  }
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

StealPool::~StealPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) {
      worker.join();
    }
  }
}

void StealPool::submit(Task task) {
  check_arg(task != nullptr, "StealPool: cannot submit an empty task");
  {
    std::lock_guard<std::mutex> lock(mutex_);
    check_arg(!stopping_, "StealPool: submit after shutdown");
  }
  const std::size_t target =
      next_seed_.fetch_add(1, std::memory_order_relaxed) % slots_.size();
  in_flight_.fetch_add(1, std::memory_order_relaxed);
  queued_.fetch_add(1, std::memory_order_relaxed);
  slots_[target]->deque.push_bottom(std::move(task));
  // Pairing the notify with the mutex closes the sleep race: a parker
  // re-checks queued_ under this mutex before waiting, so it either
  // sees our increment or is already in wait() when we notify.
  {
    std::lock_guard<std::mutex> lock(mutex_);
  }
  work_ready_.notify_one();
}

void StealPool::donate(Task task) {
  if (tls_pool != this) {
    submit(std::move(task));
    return;
  }
  donated_.fetch_add(1, std::memory_order_relaxed);
  in_flight_.fetch_add(1, std::memory_order_relaxed);
  queued_.fetch_add(1, std::memory_order_relaxed);
  slots_[tls_worker]->deque.push_bottom(std::move(task));
  {
    std::lock_guard<std::mutex> lock(mutex_);
  }
  work_ready_.notify_one();
}

bool StealPool::hungry() const {
  return idle_.load(std::memory_order_relaxed) >
         queued_.load(std::memory_order_relaxed);
}

void StealPool::wait_done() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] {
    return in_flight_.load(std::memory_order_acquire) == 0;
  });
}

StealPoolStats StealPool::stats() const {
  StealPoolStats stats;
  stats.steals = steals_.load(std::memory_order_relaxed);
  stats.steal_attempts = steal_attempts_.load(std::memory_order_relaxed);
  stats.donated = donated_.load(std::memory_order_relaxed);
  stats.executed = executed_.load(std::memory_order_relaxed);
  stats.busy_us = busy_us_.load(std::memory_order_relaxed);
  return stats;
}

std::size_t StealPool::failure_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return failures_.size();
}

void StealPool::rethrow_first_failure() {
  std::exception_ptr first;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!failures_.empty()) {
      first = failures_.front();
    }
  }
  if (first) {
    std::rethrow_exception(first);
  }
}

bool StealPool::try_steal(std::size_t thief, Task& out) {
  // Deterministic probe order: the next worker ring-wise, then the
  // one after, so contention spreads instead of piling on slot 0.
  for (std::size_t step = 1; step < slots_.size(); ++step) {
    const std::size_t victim = (thief + step) % slots_.size();
    steal_attempts_.fetch_add(1, std::memory_order_relaxed);
    if (slots_[victim]->deque.steal_top(out)) {
      steals_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

void StealPool::run_task(Task& task) {
  const auto start = std::chrono::steady_clock::now();
  try {
    task();
  } catch (...) {
    std::lock_guard<std::mutex> lock(mutex_);
    failures_.push_back(std::current_exception());
  }
  // Release the closure's captures before reporting completion: a
  // caller returning from wait_done() must not race task destructors.
  task = nullptr;
  const auto end = std::chrono::steady_clock::now();
  busy_us_.fetch_add(
      static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(end - start)
              .count()),
      std::memory_order_relaxed);
  executed_.fetch_add(1, std::memory_order_relaxed);
  if (in_flight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard<std::mutex> lock(mutex_);
    all_done_.notify_all();
  }
}

void StealPool::worker_loop(std::size_t index) {
  tls_pool = this;
  tls_worker = index;
  for (;;) {
    Task task;
    bool got = slots_[index]->deque.pop_bottom(task);
    if (!got) {
      got = try_steal(index, task);
    }
    if (got) {
      queued_.fetch_sub(1, std::memory_order_relaxed);
      run_task(task);
      continue;
    }
    // Nothing anywhere: park. The re-check of queued_ under the mutex
    // pairs with the notify in submit()/donate(), so a task published
    // between our failed probes and the wait cannot be slept through.
    std::unique_lock<std::mutex> lock(mutex_);
    if (stopping_ && queued_.load(std::memory_order_relaxed) == 0) {
      return;
    }
    if (queued_.load(std::memory_order_relaxed) > 0) {
      continue;  // re-probe without parking
    }
    idle_.fetch_add(1, std::memory_order_relaxed);
    work_ready_.wait(lock, [this] {
      return stopping_ || queued_.load(std::memory_order_relaxed) > 0;
    });
    idle_.fetch_sub(1, std::memory_order_relaxed);
  }
}

}  // namespace dspaddr::runtime
