// runtime::TaskPool — the one worker pool every concurrent surface of
// the project shares: the batch grid runner fans its cells over it and
// the pipelined `dspaddr serve` loop runs its requests on it, so
// threading exists once, below every consumer, instead of as one-off
// loops per driver.
//
// A fixed set of worker threads drains a bounded FIFO queue. submit()
// blocks while the queue is full — backpressure, so a fast producer
// (e.g. the serve reader thread) can never buffer unbounded work
// behind a slow consumer. An exception a task throws is captured per
// task (a throwing task never takes a worker thread down); the pool
// records every captured failure and rethrow_first_failure() surfaces
// the earliest one to the caller after a drain. Shutdown is
// deterministic: shutdown() (and the destructor) finishes every
// already-accepted task before joining — accepted work is never
// dropped, and submitting after shutdown fails loudly.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dspaddr::runtime {

class TaskPool {
 public:
  /// Starts `workers` threads (>= 1) over a queue holding at most
  /// `queue_capacity` pending tasks (>= 1).
  TaskPool(std::size_t workers, std::size_t queue_capacity);

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  /// shutdown(): drains the queue, then joins.
  ~TaskPool();

  /// Enqueues `task`, blocking while the queue is at capacity. Throws
  /// InvalidArgument once the pool is shut down — a closed pool never
  /// quietly drops work.
  void submit(std::function<void()> task);

  /// Blocks until the queue is empty and no task is running. Other
  /// threads may keep submitting; "idle" is an instant, not a state.
  void wait_idle();

  /// Finishes every accepted task, then joins the workers. Idempotent.
  void shutdown();

  std::size_t worker_count() const { return workers_.size(); }

  /// Tasks queued but not yet picked up by a worker — the
  /// backpressure level a metrics gauge samples. An instant, not a
  /// state.
  std::size_t queue_depth() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
  }

  /// How many tasks have thrown so far.
  std::size_t failure_count() const;

  /// Rethrows the earliest captured task exception (completion order),
  /// if any. The failure list is kept, so repeated calls rethrow the
  /// same exception.
  void rethrow_first_failure();

 private:
  void worker_loop();

  mutable std::mutex mutex_;
  std::condition_variable task_ready_;   // a task was queued / stopping
  std::condition_variable space_ready_;  // a queue slot was freed
  std::condition_variable idle_;         // queue empty, nothing running
  std::deque<std::function<void()>> queue_;
  std::vector<std::exception_ptr> failures_;
  std::size_t queue_capacity_;
  std::size_t running_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace dspaddr::runtime
