// runtime::OrderedCollector<T> — re-sequences out-of-order completions
// back into submission order.
//
// Producers (typically TaskPool workers) push (sequence index, value)
// pairs in whatever order they finish; one consumer pops values
// strictly in index order 0, 1, 2, ... — the piece that lets a
// pipelined service answer concurrently computed requests in exactly
// the order they arrived, byte for byte.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <map>
#include <mutex>
#include <utility>

#include "support/check.hpp"

namespace dspaddr::runtime {

/// One consumer, any number of producers. Indices must be dense and
/// unique: every index in [0, max pushed] is pushed exactly once, or
/// the consumer would wait forever on the gap — closing with a gap
/// still pending trips an invariant check instead of deadlocking.
template <typename T>
class OrderedCollector {
 public:
  /// Hands index `seq`'s value over; values ahead of their turn wait
  /// inside the collector. Rejects indices already consumed or pushed,
  /// and pushes after close().
  void push(std::size_t seq, T value) {
    std::lock_guard<std::mutex> lock(mutex_);
    check_arg(!closed_, "OrderedCollector: push after close");
    check_arg(seq >= next_, "OrderedCollector: index pushed twice");
    const bool inserted = pending_.emplace(seq, std::move(value)).second;
    check_arg(inserted, "OrderedCollector: index pushed twice");
    if (seq == next_) {
      ready_.notify_one();
    }
  }

  /// Blocks until the next value in sequence is available (true) or
  /// the collector is closed and drained (false).
  bool pop(T& out) {
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
      if (!pending_.empty() && pending_.begin()->first == next_) {
        out = std::move(pending_.begin()->second);
        pending_.erase(pending_.begin());
        ++next_;
        return true;
      }
      if (closed_) {
        check_invariant(pending_.empty(),
                        "OrderedCollector: closed with a sequence gap");
        return false;
      }
      ready_.wait(lock);
    }
  }

  /// Declares the sequence complete: no further push() will come, and
  /// pop() returns false once everything pushed has been consumed.
  void close() {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    ready_.notify_all();
  }

  /// The index the consumer will pop next (everything below it has
  /// been handed out) — a progress probe for tests and diagnostics.
  std::size_t next_index() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return next_;
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  /// Completed values waiting for their turn, keyed by index; the map
  /// keeps them sorted so the head is always the candidate for next_.
  std::map<std::size_t, T> pending_;
  std::size_t next_ = 0;
  bool closed_ = false;
};

}  // namespace dspaddr::runtime
