// runtime::StealPool — a work-stealing pool for irregular tree
// searches, complementing the FIFO TaskPool. Every worker owns a
// Chase–Lev-style deque: the owner pushes and pops at the *bottom*
// (LIFO, so its own work stays depth-first and cache-hot) while idle
// workers steal from the *top* (FIFO, so a thief takes the oldest —
// and for a branch-and-bound search the shallowest, largest — donated
// subtree). Victims are probed in a deterministic order (owner+1,
// owner+2, … mod N), so the only nondeterminism is which donations
// exist at steal time, never the probe sequence.
//
// The pool is demand-driven: a busy worker consults hungry() — "are
// more workers idle than tasks queued?" — and donates work only when
// it would actually be picked up, which keeps task-creation overhead
// proportional to the number of steals rather than the tree size.
// Exceptions are captured per task (TaskPool discipline) and
// rethrow_first_failure() surfaces the earliest one after wait_done().
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace dspaddr::runtime {

/// One worker's task deque. The owner pushes/pops at the bottom;
/// thieves take from the top. A small mutex serializes the ends — the
/// deque holds whole subtree searches, so operations are rare compared
/// to the work they carry and lock-free CAS choreography would buy
/// nothing but audit burden here.
class StealDeque {
 public:
  using Task = std::function<void()>;

  /// Owner end: newest work last.
  void push_bottom(Task task);

  /// Owner end: returns the most recently pushed task, or false when
  /// the deque is empty.
  bool pop_bottom(Task& out);

  /// Thief end: returns the oldest task, or false when empty.
  bool steal_top(Task& out);

  std::size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::deque<Task> items_;
};

/// Schedule-dependent counters (meaningful totals, not invariants):
/// how often workers went hunting, how often they scored, and how
/// much work was donated. busy_us sums wall time spent inside tasks
/// across all workers, so 1 - busy_us / (workers * wall_us) is the
/// pool's idle fraction over a solve.
struct StealPoolStats {
  std::uint64_t steals = 0;
  std::uint64_t steal_attempts = 0;
  std::uint64_t donated = 0;
  std::uint64_t executed = 0;
  std::uint64_t busy_us = 0;
};

class StealPool {
 public:
  using Task = std::function<void()>;

  explicit StealPool(std::size_t workers);

  StealPool(const StealPool&) = delete;
  StealPool& operator=(const StealPool&) = delete;

  /// Finishes every accepted task, then joins.
  ~StealPool();

  /// Seeds work from outside the pool; tasks are dealt round-robin
  /// across worker deques. Throws InvalidArgument after shutdown.
  void submit(Task task);

  /// Called from a worker thread mid-task to publish a stealable
  /// subtask onto its own deque (falls back to submit() semantics off
  /// a worker thread). The donation is immediately visible to thieves.
  void donate(Task task);

  /// True while more workers are idle than tasks are queued — the
  /// signal a busy worker polls to decide whether donating would
  /// actually feed anyone. Approximate by design (both counters move
  /// concurrently); a false positive costs one cheap extra task.
  bool hungry() const;

  /// Blocks until every accepted task (submitted or donated) has
  /// finished. Safe to call repeatedly.
  void wait_done();

  std::size_t worker_count() const { return slots_.size(); }

  StealPoolStats stats() const;

  std::size_t failure_count() const;

  /// Rethrows the earliest captured task exception, if any. Call
  /// after wait_done(); the failure list is kept across calls.
  void rethrow_first_failure();

 private:
  struct Slot {
    StealDeque deque;
  };

  void worker_loop(std::size_t index);
  bool try_steal(std::size_t thief, Task& out);
  void run_task(Task& task);

  // Stable addresses for per-worker deques.
  std::vector<std::unique_ptr<Slot>> slots_;

  std::atomic<std::size_t> queued_{0};     // in a deque, not yet picked
  std::atomic<std::size_t> in_flight_{0};  // queued + running
  std::atomic<std::size_t> idle_{0};       // parked workers
  std::atomic<std::size_t> next_seed_{0};  // round-robin submit target

  std::atomic<std::uint64_t> steals_{0};
  std::atomic<std::uint64_t> steal_attempts_{0};
  std::atomic<std::uint64_t> donated_{0};
  std::atomic<std::uint64_t> executed_{0};
  std::atomic<std::uint64_t> busy_us_{0};

  mutable std::mutex mutex_;
  std::condition_variable work_ready_;  // a task was enqueued / stopping
  std::condition_variable all_done_;    // in_flight_ hit zero
  std::vector<std::exception_ptr> failures_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace dspaddr::runtime
