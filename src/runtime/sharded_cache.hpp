// runtime::ShardedLruCache — a mutex-striped, single-flight LRU cache.
//
// The key space is partitioned over N independent shards
// (hash(key) mod N), each with its own mutex, LRU list and counters,
// so concurrent lookups of different keys never contend on one global
// lock — the scaling fix for many workers sharing one engine::Engine.
// Total capacity is split across the shards (eviction is therefore
// per-shard LRU, not global LRU); counters aggregate across shards and
// are also exposed per shard.
//
// Lookups are single-flight: the first thread to miss a key becomes
// its leader (lookup_or_begin returns nullptr) and must publish() or
// abort() that key; a thread missing the same key meanwhile blocks
// until the leader resolves it, then counts as a hit. Duplicate work
// is never computed twice, and the hit/miss counters depend only on
// the key sequence, not on thread interleaving — the property that
// keeps serve `{"stats":true}` probes byte-identical across --jobs
// levels (given the working set fits the capacity, so nothing is
// evicted and re-missed).
//
// A capacity of 0 disables the cache entirely: every lookup_or_begin
// returns nullptr without registering a flight or counting, and
// publish()/abort() are no-ops.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

namespace dspaddr::runtime {

/// Counters of one shard (or, summed, of the whole cache).
struct CacheCounters {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::size_t entries = 0;
  std::size_t capacity = 0;
};

template <typename Value>
class ShardedLruCache {
 public:
  /// `capacity` entries total (0 disables caching) spread over up to
  /// `shards` stripes. The shard count is clamped to [1, capacity] so
  /// no shard ever has capacity zero.
  ShardedLruCache(std::size_t capacity, std::size_t shards)
      : capacity_(capacity) {
    std::size_t count = shards < 1 ? 1 : shards;
    if (capacity != 0 && count > capacity) {
      count = capacity;
    }
    shards_.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      shards_.push_back(std::make_unique<Shard>());
      // Distribute the capacity as evenly as integers allow; the first
      // capacity % count shards carry one extra entry.
      shards_.back()->capacity =
          capacity / count + (i < capacity % count ? 1 : 0);
    }
  }

  ShardedLruCache(const ShardedLruCache&) = delete;
  ShardedLruCache& operator=(const ShardedLruCache&) = delete;

  /// Returns the cached payload (a hit, promoting the entry), or
  /// nullptr, which makes the caller the key's leader: it MUST later
  /// publish() or abort() the same key. Blocks while another thread
  /// leads the same key; waiters resume with the published payload and
  /// count as hits (or take over leadership after an abort()).
  std::shared_ptr<const Value> lookup_or_begin(const std::string& key) {
    if (capacity_ == 0) {
      return nullptr;
    }
    Shard& shard = shard_for(key);
    std::unique_lock<std::mutex> lock(shard.mutex);
    for (;;) {
      const auto it = shard.index.find(key);
      if (it != shard.index.end()) {
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
        ++shard.hits;
        return shard.lru.front().second;
      }
      if (shard.flights.insert(key).second) {
        ++shard.misses;
        return nullptr;
      }
      shard.resolved.wait(lock);
    }
  }

  /// Resolves the caller's flight on `key` with `value`: inserts it
  /// (evicting per-shard LRU overflow) and wakes the key's waiters.
  void publish(const std::string& key, std::shared_ptr<const Value> value) {
    if (capacity_ == 0) {
      return;
    }
    Shard& shard = shard_for(key);
    // Evicted payloads die after the unlock, not under the lock.
    std::vector<std::shared_ptr<const Value>> evicted;
    {
      std::lock_guard<std::mutex> lock(shard.mutex);
      shard.flights.erase(key);
      if (shard.index.find(key) == shard.index.end()) {
        shard.lru.emplace_front(key, std::move(value));
        shard.index[key] = shard.lru.begin();
        while (shard.lru.size() > shard.capacity) {
          evicted.push_back(std::move(shard.lru.back().second));
          shard.index.erase(shard.lru.back().first);
          shard.lru.pop_back();
          ++shard.evictions;
        }
      }
      shard.resolved.notify_all();
    }
  }

  /// Resolves the caller's flight on `key` without a value (the
  /// computation failed): one of the waiters takes over as leader.
  void abort(const std::string& key) {
    if (capacity_ == 0) {
      return;
    }
    Shard& shard = shard_for(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.flights.erase(key);
    shard.resolved.notify_all();
  }

  /// Drops every cached entry (in-progress flights are unaffected);
  /// returns how many entries were dropped. Counters keep their
  /// lifetime totals.
  std::size_t clear() {
    std::size_t dropped = 0;
    for (const std::unique_ptr<Shard>& shard : shards_) {
      std::list<Entry> stale;  // payloads die after the unlock
      {
        std::lock_guard<std::mutex> lock(shard->mutex);
        dropped += shard->lru.size();
        shard->index.clear();
        stale.splice(stale.begin(), shard->lru);
      }
    }
    return dropped;
  }

  /// Counters summed over all shards; `capacity` is the total.
  CacheCounters totals() const {
    CacheCounters sum;
    for (const CacheCounters& shard : shard_counters()) {
      sum.hits += shard.hits;
      sum.misses += shard.misses;
      sum.evictions += shard.evictions;
      sum.entries += shard.entries;
      sum.capacity += shard.capacity;
    }
    return sum;
  }

  /// One counter block per shard, in shard order.
  std::vector<CacheCounters> shard_counters() const {
    std::vector<CacheCounters> counters;
    counters.reserve(shards_.size());
    for (const std::unique_ptr<Shard>& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mutex);
      CacheCounters c;
      c.hits = shard->hits;
      c.misses = shard->misses;
      c.evictions = shard->evictions;
      c.entries = shard->lru.size();
      c.capacity = shard->capacity;
      counters.push_back(c);
    }
    return counters;
  }

  std::size_t shard_count() const { return shards_.size(); }
  std::size_t capacity() const { return capacity_; }

 private:
  using Entry = std::pair<std::string, std::shared_ptr<const Value>>;

  struct Shard {
    mutable std::mutex mutex;
    std::condition_variable resolved;
    /// Most-recently-used first; the map indexes into the list.
    std::list<Entry> lru;
    std::unordered_map<std::string, typename std::list<Entry>::iterator>
        index;
    /// Keys currently being computed by a leader.
    std::unordered_set<std::string> flights;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::size_t capacity = 0;
  };

  Shard& shard_for(const std::string& key) {
    return *shards_[std::hash<std::string>{}(key) % shards_.size()];
  }

  std::size_t capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace dspaddr::runtime
