#include "runtime/task_pool.hpp"

#include <utility>

#include "support/check.hpp"

namespace dspaddr::runtime {

TaskPool::TaskPool(std::size_t workers, std::size_t queue_capacity)
    : queue_capacity_(queue_capacity) {
  check_arg(workers >= 1, "TaskPool: needs at least one worker");
  check_arg(queue_capacity >= 1, "TaskPool: needs a nonzero queue");
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

TaskPool::~TaskPool() { shutdown(); }

void TaskPool::submit(std::function<void()> task) {
  check_arg(task != nullptr, "TaskPool: cannot submit an empty task");
  std::unique_lock<std::mutex> lock(mutex_);
  space_ready_.wait(lock, [this] {
    return stopping_ || queue_.size() < queue_capacity_;
  });
  check_arg(!stopping_, "TaskPool: submit after shutdown");
  queue_.push_back(std::move(task));
  task_ready_.notify_one();
}

void TaskPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && running_ == 0; });
}

void TaskPool::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  task_ready_.notify_all();
  space_ready_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) {
      worker.join();
    }
  }
}

std::size_t TaskPool::failure_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return failures_.size();
}

void TaskPool::rethrow_first_failure() {
  std::exception_ptr first;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!failures_.empty()) {
      first = failures_.front();
    }
  }
  if (first) {
    std::rethrow_exception(first);
  }
}

void TaskPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_ready_.wait(lock,
                       [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stopping_ and fully drained
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++running_;
      space_ready_.notify_one();
    }
    try {
      task();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      failures_.push_back(std::current_exception());
    }
    // Release the closure's captures before reporting idle: a caller
    // returning from wait_idle() must not race task destructors.
    task = nullptr;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --running_;
      if (queue_.empty() && running_ == 0) {
        idle_.notify_all();
      }
    }
  }
}

}  // namespace dspaddr::runtime
