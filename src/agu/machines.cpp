#include "agu/machines.hpp"

#include <algorithm>

#include "agu/codegen.hpp"
#include "agu/simulator.hpp"
#include "ir/layout.hpp"
#include "support/check.hpp"

namespace dspaddr::agu {

std::vector<AguSpec> builtin_machines() {
  return {
      AguSpec{"tms320c25",
              "TI TMS320C2x-class ARAU: 8 auxiliary registers, "
              "inc/dec by 1, one index register",
              8, 1, 1},
      AguSpec{"tms320c54x",
              "TI TMS320C54x-class: 8 auxiliary registers, AR0 usable "
              "as index",
              8, 1, 1},
      AguSpec{"adsp218x",
              "ADSP-218x-class DAGs: 2x4 index registers with 2x4 "
              "modify registers",
              8, 8, 1},
      AguSpec{"dsp56002",
              "Motorola DSP56k-class: 8 R registers with 8 N offset "
              "registers",
              8, 8, 1},
      AguSpec{"minimal2",
              "Cost-sensitive core: 2 address registers, no modify "
              "registers",
              2, 0, 1},
      AguSpec{"wide4",
              "AGU with short-immediate modify (|d| <= 2), 4 address "
              "registers",
              4, 0, 2},
  };
}

AguSpec builtin_machine(const std::string& name) {
  auto machines = builtin_machines();
  const auto it =
      std::find_if(machines.begin(), machines.end(),
                   [&](const AguSpec& m) { return m.name == name; });
  check_arg(it != machines.end(),
            "builtin_machine: unknown machine '" + name + "'");
  return *it;
}

std::vector<std::string> builtin_machine_names() {
  std::vector<std::string> names;
  for (const AguSpec& machine : builtin_machines()) {
    names.push_back(machine.name);
  }
  return names;
}

MachineRunReport run_on_machine(const ir::Kernel& kernel,
                                const AguSpec& machine) {
  check_arg(machine.address_registers >= 1,
            "run_on_machine: machine needs an address register");

  const ir::AccessSequence seq = ir::lower(kernel);

  core::ProblemConfig config;
  config.modify_range = machine.modify_range;
  config.registers = machine.address_registers;
  const core::Allocation allocation =
      core::RegisterAllocator(config).run(seq);

  const core::ModifyRegisterPlan plan = core::plan_modify_registers(
      seq, allocation, machine.modify_registers);

  const Program program = generate_code(seq, allocation, plan);
  const std::uint64_t iterations =
      static_cast<std::uint64_t>(kernel.iterations());
  const SimResult sim = Simulator{}.run(program, seq, iterations);

  MachineRunReport report;
  report.machine = machine;
  report.allocation_cost = allocation.cost();
  report.residual_cost = plan.residual_cost;
  report.verified = verified_against_cost(sim, iterations, plan.residual_cost);
  return report;
}

}  // namespace dspaddr::agu
