#include "agu/machines.hpp"

#include "agu/codegen.hpp"
#include "agu/simulator.hpp"
#include "ir/layout.hpp"
#include "support/check.hpp"

namespace dspaddr::agu {

std::vector<AguSpec> builtin_machines() {
  return MachineRegistry::builtin().all();
}

AguSpec builtin_machine(const std::string& name) {
  return MachineRegistry::builtin().get(name);
}

std::vector<std::string> builtin_machine_names() {
  return MachineRegistry::builtin().names();
}

MachineRunReport run_on_machine(const ir::Kernel& kernel,
                                const AguSpec& machine) {
  check_arg(machine.address_registers() >= 1,
            "run_on_machine: machine needs an address register");

  const ir::AccessSequence seq = ir::lower(kernel);

  core::ProblemConfig config;
  config.modify_range = machine.modify_range();
  config.modify_lo = machine.modify_lo;
  config.modify_hi = machine.modify_hi;
  config.free_widths = machine.free_widths;
  config.registers = machine.address_registers();
  const core::Allocation allocation =
      core::RegisterAllocator(config).run(seq);

  const core::ModifyRegisterPlan plan = core::plan_modify_registers(
      seq, allocation, machine.modify_registers());

  const Program program =
      generate_code(seq, allocation, plan, machine.addressing);
  const std::uint64_t iterations =
      static_cast<std::uint64_t>(kernel.iterations());
  const SimResult sim = Simulator{}.run(program, seq, iterations);

  MachineRunReport report;
  report.machine = machine;
  report.allocation_cost = allocation.cost();
  report.residual_cost = plan.residual_cost;
  report.verified = verified_against_cost(sim, iterations, plan.residual_cost);
  return report;
}

}  // namespace dspaddr::agu
