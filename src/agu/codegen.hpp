// Address code generation from an allocation.
//
// Turns a core::Allocation into the AGU instruction stream that realizes
// it. Under post-modify addressing (the paper's model): one LDAR per
// used register in the setup, and per body access a USE with the
// post-modify towards the register's next access — plus an ADAR (equal
// strides, distance beyond the free window) or RELOAD (different
// strides) when the move is not free. Under pre-modify addressing the
// same transitions are realized on the *incoming* edge: each USE
// applies the modify from the register's previous access before the
// memory operand, fixups precede their USE, and the setup LDARs
// compensate for the first iteration's wrap modify. Either way the
// number of ADAR/RELOAD instructions in the body equals the
// allocation's analytic cost; the simulator asserts this equivalence
// end-to-end.
#pragma once

#include "agu/program.hpp"
#include "core/allocator.hpp"
#include "core/modify_registers.hpp"
#include "ir/access_sequence.hpp"

namespace dspaddr::agu {

/// Generates the address program realizing `allocation` on `seq`.
/// The allocation must cover `seq` (validated by the allocator).
Program generate_code(const ir::AccessSequence& seq,
                      const core::Allocation& allocation,
                      Addressing addressing = Addressing::kPostModify);

/// Modify-register variant: transitions whose distance is held in one
/// of the planned MRs modify through that MR instead of spending an
/// ADAR; the setup loads each MR once. The per-iteration extra
/// instruction count of the result equals `plan.residual_cost`.
Program generate_code(const ir::AccessSequence& seq,
                      const core::Allocation& allocation,
                      const core::ModifyRegisterPlan& plan,
                      Addressing addressing = Addressing::kPostModify);

}  // namespace dspaddr::agu
