#include "agu/simulator.hpp"

#include <sstream>

#include "support/check.hpp"

namespace dspaddr::agu {

namespace {

std::int64_t demanded_address(const ir::AccessSequence& seq,
                              std::size_t access, std::uint64_t iteration) {
  const ir::Access& a = seq[access];
  return a.offset + static_cast<std::int64_t>(iteration) * a.stride;
}

}  // namespace

SimResult Simulator::run(const Program& program,
                         const ir::AccessSequence& seq,
                         std::uint64_t iterations) const {
  check_arg(program.register_count > 0 || seq.empty(),
            "Simulator: program has no registers");
  SimResult result;
  result.iterations = iterations;

  std::vector<std::int64_t> ar(program.register_count, 0);
  std::vector<std::int64_t> mr(program.modify_register_count, 0);

  const auto fail = [&](const std::string& message) {
    if (result.verified) {
      result.verified = false;
      result.failure = message;
    }
  };

  for (const Instruction& instruction : program.setup) {
    if (instruction.op == Opcode::kLdar) {
      check_arg(instruction.reg < ar.size(),
                "Simulator: setup register out of range");
      ar[instruction.reg] = instruction.value;
    } else if (instruction.op == Opcode::kLdmr) {
      check_arg(instruction.reg < mr.size(),
                "Simulator: setup modify register out of range");
      mr[instruction.reg] = instruction.value;
    } else {
      throw InvalidArgument(
          "Simulator: setup may only contain LDAR / LDMR");
    }
    ++result.setup_instructions;
    ++result.address_cycles;
  }

  for (std::uint64_t t = 0; t < iterations; ++t) {
    for (const Instruction& instruction : program.body) {
      check_arg(instruction.reg < ar.size(),
                "Simulator: body register out of range");
      switch (instruction.op) {
        case Opcode::kLdar:
          ar[instruction.reg] = instruction.value;
          ++result.extra_instructions;
          ++result.address_cycles;
          break;
        case Opcode::kAdar:
          ar[instruction.reg] += instruction.value;
          ++result.extra_instructions;
          ++result.address_cycles;
          break;
        case Opcode::kReload:
          ar[instruction.reg] = demanded_address(
              seq, instruction.access,
              instruction.next_iteration ? t + 1 : t);
          ++result.extra_instructions;
          ++result.address_cycles;
          break;
        case Opcode::kUse: {
          // Pre-modify machines apply the modify before the memory
          // operand; post-modify machines after the address check.
          const bool pre =
              program.addressing == Addressing::kPreModify;
          if (pre) {
            if (instruction.mr >= 0) {
              check_arg(
                  static_cast<std::size_t>(instruction.mr) < mr.size(),
                  "Simulator: USE references unloaded modify register");
              ar[instruction.reg] += mr[static_cast<std::size_t>(
                  instruction.mr)];
            } else {
              ar[instruction.reg] += instruction.value;
            }
          }
          const std::int64_t demanded =
              demanded_address(seq, instruction.access, t);
          if (ar[instruction.reg] != demanded) {
            std::ostringstream message;
            message << "iteration " << t << ", access a_"
                    << (instruction.access + 1) << ": AR"
                    << instruction.reg << " holds "
                    << ar[instruction.reg] << ", demanded " << demanded;
            fail(message.str());
            if (options_.stop_on_failure) return result;
          }
          if (options_.record_trace) {
            result.trace.push_back(ar[instruction.reg]);
          }
          ++result.accesses_executed;
          if (!pre) {
            if (instruction.mr >= 0) {
              check_arg(
                  static_cast<std::size_t>(instruction.mr) < mr.size(),
                  "Simulator: USE references unloaded modify register");
              ar[instruction.reg] += mr[static_cast<std::size_t>(
                  instruction.mr)];
            } else {
              ar[instruction.reg] += instruction.value;
            }
          }
          break;
        }
        case Opcode::kLdmr:
          throw InvalidArgument("Simulator: LDMR not allowed in the body");
      }
    }
  }
  return result;
}

}  // namespace dspaddr::agu
