#include "agu/asm_parser.hpp"

#include <charconv>
#include <string>

#include "support/strings.hpp"

namespace dspaddr::agu {

namespace {

using ir::ParseError;

/// Cursor over one source line.
struct LineCursor {
  std::string_view text;
  std::size_t pos = 0;
  std::size_t line = 0;

  void skip_spaces() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
  }

  bool at_end() {
    skip_spaces();
    return pos >= text.size();
  }

  bool try_literal(std::string_view literal) {
    skip_spaces();
    if (text.substr(pos, literal.size()) != literal) return false;
    pos += literal.size();
    return true;
  }

  void expect_literal(std::string_view literal) {
    if (!try_literal(literal)) {
      throw ParseError(line, "expected '" + std::string(literal) +
                                 "' in '" + std::string(text) + "'");
    }
  }

  std::int64_t expect_integer(std::string_view what) {
    skip_spaces();
    std::int64_t value = 0;
    const char* begin = text.data() + pos;
    const char* end = text.data() + text.size();
    const auto [ptr, ec] = std::from_chars(begin, end, value);
    if (ec != std::errc{}) {
      throw ParseError(line, std::string(what) + ": expected an integer");
    }
    pos += static_cast<std::size_t>(ptr - begin);
    return value;
  }

  std::size_t expect_register(std::string_view prefix,
                              std::string_view what) {
    expect_literal(prefix);
    const std::int64_t index = expect_integer(what);
    if (index < 0) {
      throw ParseError(line, std::string(what) + ": negative index");
    }
    return static_cast<std::size_t>(index);
  }
};

}  // namespace

Program parse_program(std::string_view text) {
  Program program;
  bool in_setup = true;
  bool saw_section = false;

  std::size_t line_number = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    std::string_view raw = text.substr(start, end - start);
    ++line_number;
    const bool last = end >= text.size();
    start = end + 1;

    std::string_view trimmed = support::trim(raw);
    if (trimmed.empty()) {
      if (last) break;
      continue;
    }

    // Section markers.
    if (trimmed.front() == ';') {
      const std::string_view marker = support::trim(trimmed.substr(1));
      if (marker == "setup") {
        in_setup = true;
        saw_section = true;
      } else if (marker == "loop body") {
        in_setup = false;
        saw_section = true;
      } else {
        throw ParseError(line_number,
                         "unknown section marker '; " +
                             std::string(marker) + "'");
      }
      if (last) break;
      continue;
    }

    LineCursor cursor{trimmed, 0, line_number};
    Instruction instruction;

    if (cursor.try_literal("LDAR")) {
      instruction.op = Opcode::kLdar;
      instruction.reg = cursor.expect_register("AR", "address register");
      cursor.expect_literal(",");
      cursor.expect_literal("#");
      instruction.value = cursor.expect_integer("immediate");
    } else if (cursor.try_literal("LDMR")) {
      instruction.op = Opcode::kLdmr;
      instruction.reg = cursor.expect_register("MR", "modify register");
      cursor.expect_literal(",");
      cursor.expect_literal("#");
      instruction.value = cursor.expect_integer("immediate");
      program.modify_register_count =
          std::max(program.modify_register_count, instruction.reg + 1);
    } else if (cursor.try_literal("ADAR")) {
      instruction.op = Opcode::kAdar;
      instruction.reg = cursor.expect_register("AR", "address register");
      cursor.expect_literal(",");
      cursor.expect_literal("#");
      instruction.value = cursor.expect_integer("immediate");
    } else if (cursor.try_literal("RELOAD")) {
      instruction.op = Opcode::kReload;
      instruction.reg = cursor.expect_register("AR", "address register");
      cursor.expect_literal(",");
      cursor.expect_literal("&a_");
      const std::int64_t access = cursor.expect_integer("access id");
      if (access < 1) {
        throw ParseError(line_number, "access ids are 1-based");
      }
      instruction.access = static_cast<std::size_t>(access - 1);
      if (cursor.try_literal("(next iteration)")) {
        instruction.next_iteration = true;
      }
    } else if (cursor.try_literal("USE")) {
      instruction.op = Opcode::kUse;
      instruction.reg = cursor.expect_register("AR", "address register");
      cursor.expect_literal(";");
      cursor.expect_literal("a_");
      const std::int64_t access = cursor.expect_integer("access id");
      if (access < 1) {
        throw ParseError(line_number, "access ids are 1-based");
      }
      instruction.access = static_cast<std::size_t>(access - 1);
      if (cursor.try_literal(",")) {
        cursor.expect_literal("post-modify");
        if (cursor.try_literal("+MR")) {
          const std::int64_t mr = cursor.expect_integer("modify register");
          if (mr < 0) {
            throw ParseError(line_number, "negative modify register");
          }
          instruction.mr = static_cast<std::int32_t>(mr);
          program.modify_register_count = std::max(
              program.modify_register_count,
              static_cast<std::size_t>(mr) + 1);
        } else {
          // to_string prints an explicit sign: "+1" / "-1"; from_chars
          // only understands '-', so consume a leading '+' manually.
          cursor.try_literal("+");
          instruction.value = cursor.expect_integer("post-modify");
        }
      }
    } else {
      throw ParseError(line_number,
                       "unknown mnemonic in '" + std::string(trimmed) +
                           "'");
    }

    if (!cursor.at_end()) {
      throw ParseError(line_number,
                       "trailing input in '" + std::string(trimmed) + "'");
    }
    if (instruction.op != Opcode::kLdmr) {
      program.register_count =
          std::max(program.register_count, instruction.reg + 1);
    }
    (in_setup ? program.setup : program.body).push_back(instruction);
    if (last) break;
  }

  if (!saw_section) {
    throw ParseError(1, "program has no '; setup' / '; loop body' "
                        "section markers");
  }
  return program;
}

}  // namespace dspaddr::agu
