// Declarative machine descriptions (MachineSpec v2).
//
// The paper abstracts an AGU to the (K, L, M) triple; real address
// generation units differ along more axes: named register classes
// (address vs. modify vs. index registers), asymmetric free modify
// windows (post-increment-only machines reach [0, hi]), dedicated free
// auto-inc/dec widths, and pre- vs. post-modify addressing. MachineSpec
// captures all of these, and a small line-based text format
// (`workloads/machines/*.machine`) makes adding a machine a data change
// instead of a C++ patch:
//
//   # ARM9-flavoured post-indexed load/store unit
//   machine arm946e
//   description ARM9E-class post-indexed addressing, 4 pointer registers
//   class r address 4
//   modify-range -1 1
//   inc 4
//   addressing post
//
// Directives: `machine <name>` opens a definition (several per file are
// allowed); `description <text>` is free-form; `class <name>
// address|modify|index <count>` declares a register class;
// `modify-range <lo> <hi>` (or the symmetric `modify-range <m>`) sets
// the free modify window; `inc <w>...` / `dec <w>...` add dedicated
// free widths; `addressing post|pre` selects the modify timing. `#`
// starts a comment. Malformed input fails loudly with a single
// `file:line: message` diagnostic.
//
// MachineRegistry layers file-loaded machines over the builtin catalog
// (itself expressed in this format and parsed at startup, so there is
// exactly one way a machine comes into existence).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "agu/program.hpp"
#include "core/cost_model.hpp"
#include "support/json.hpp"

namespace dspaddr::agu {

/// Role of a register class in address generation.
enum class RegClassKind {
  /// Pointer registers the allocator distributes accesses over (K).
  kAddress,
  /// Offset registers usable as free post-modify amounts (L).
  kModify,
  /// Index registers; counted into L (they hold one reusable modify
  /// amount each, like the C2x ARAU's index register).
  kIndex,
};

const char* to_string(RegClassKind kind);

/// One named register class, e.g. "r address 8".
struct RegisterClass {
  std::string name;
  RegClassKind kind = RegClassKind::kAddress;
  std::size_t count = 0;

  friend bool operator==(const RegisterClass& a, const RegisterClass& b) {
    return a.name == b.name && a.kind == b.kind && a.count == b.count;
  }
  friend bool operator!=(const RegisterClass& a, const RegisterClass& b) {
    return !(a == b);
  }
};

/// One declarative AGU description. The paper's (K, L, M) triple is
/// derived: K = sum of address-class counts, L = sum of modify- and
/// index-class counts, M = the furthest reach of the modify window.
struct MachineSpec {
  std::string name;
  std::string description;
  /// Register classes in declaration order.
  std::vector<RegisterClass> classes = {{"ar", RegClassKind::kAddress, 1}};
  /// Free modify window [modify_lo, modify_hi]; must contain 0.
  std::int64_t modify_lo = -1;
  std::int64_t modify_hi = 1;
  /// Dedicated free signed widths outside the window (sorted, unique).
  std::vector<std::int64_t> free_widths;
  Addressing addressing = Addressing::kPostModify;

  /// K: address registers available to the allocator.
  std::size_t address_registers() const;
  /// L: modify registers available to the post-pass planner.
  std::size_t modify_registers() const;
  /// M: max(-modify_lo, modify_hi) — the paper's magnitude, used for
  /// display and symmetric sweeps.
  std::int64_t modify_range() const;

  /// Collapses the address classes to a single class of `count`
  /// registers (keeping the first class's name). Count 0 is allowed so
  /// sweeps can probe degenerate machines; the allocator rejects it at
  /// run time, in-band.
  void set_address_registers(std::size_t count);
  /// Replaces the modify/index classes with one class of `count`
  /// modify registers (none when 0).
  void set_modify_registers(std::size_t count);
  /// Sets the symmetric window [-m, m], clearing nothing else.
  void set_modify_range(std::int64_t m);

  /// The cost model this machine induces.
  core::CostModel cost_model(
      core::WrapPolicy wrap = core::WrapPolicy::kCyclic) const;

  /// Cache-identity key: everything that affects results, nothing that
  /// decorates them (machine name, description and class names are
  /// excluded, like kernel names are excluded from the engine
  /// fingerprint).
  std::string structural_key() const;

  /// Throws InvalidArgument unless the spec is well-formed: a
  /// non-empty name, at least one address register, per-class counts
  /// >= 1, unique class names, a window containing 0, nonzero widths.
  void validate() const;

  friend bool operator==(const MachineSpec& a, const MachineSpec& b) {
    return a.name == b.name && a.description == b.description &&
           a.classes == b.classes && a.modify_lo == b.modify_lo &&
           a.modify_hi == b.modify_hi && a.free_widths == b.free_widths &&
           a.addressing == b.addressing;
  }
  friend bool operator!=(const MachineSpec& a, const MachineSpec& b) {
    return !(a == b);
  }
};

/// Parses machine definitions from `text`; `origin` names the source in
/// diagnostics ("file.machine:12: unknown directive 'foo'"). Every
/// returned spec is validated.
std::vector<MachineSpec> parse_machines(const std::string& text,
                                        const std::string& origin);

/// Reads and parses one `.machine` file.
std::vector<MachineSpec> load_machine_file(const std::string& path);

/// Canonical text rendering; parse_machines(machine_to_text(s)) yields
/// exactly `s` back (the shipped builtin files are in this form).
std::string machine_to_text(const MachineSpec& spec);

/// Full declarative spec as JSON, including the derived K/L/M summary;
/// machine_from_json(machine_to_json(s)) == s.
support::JsonValue machine_to_json(const MachineSpec& spec);

/// Builds a spec from JSON. Accepts the full schema emitted by
/// machine_to_json and the legacy flat form {"registers",
/// "modify_registers", "modify_range"}; unknown fields are rejected
/// in-band with InvalidArgument.
MachineSpec machine_from_json(const support::JsonValue& json);

/// Ordered collection of machines: the builtin catalog plus any
/// file-loaded targets, with later additions overriding earlier ones
/// of the same name (files can respecialize a builtin).
class MachineRegistry {
 public:
  MachineRegistry() = default;

  /// Adds one spec; an existing machine of the same name is replaced
  /// in place (its catalog position is kept).
  void add(MachineSpec spec);
  /// Parses `text` and adds every definition; returns how many.
  std::size_t add_text(const std::string& text, const std::string& origin);
  /// Loads one `.machine` file; returns how many machines it defined.
  std::size_t load_file(const std::string& path);

  /// Lookup; nullptr when unknown.
  const MachineSpec* find(const std::string& name) const;
  /// Lookup; throws InvalidArgument listing the known names.
  MachineSpec get(const std::string& name) const;

  std::vector<std::string> names() const;
  const std::vector<MachineSpec>& all() const { return machines_; }
  std::size_t size() const { return machines_.size(); }

  /// The immutable builtin catalog (parsed once from its embedded
  /// `.machine` source).
  static const MachineRegistry& builtin();
  /// A mutable copy of the builtin catalog to layer files onto.
  static MachineRegistry with_builtins();

 private:
  std::vector<MachineSpec> machines_;
};

}  // namespace dspaddr::agu
