#include "agu/machine_desc.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <optional>
#include <sstream>

#include "support/check.hpp"
#include "support/strings.hpp"

namespace dspaddr::agu {

namespace {

/// The builtin catalog, expressed in the same format as shipped
/// `.machine` files (each also exists under workloads/machines/ and is
/// proven byte-identical to this text by the parity tests). Register
/// counts approximate the addressing resources of well-known parts,
/// normalized to the paper's single-memory model.
constexpr const char* kBuiltinCatalog = R"(machine tms320c25
description TI TMS320C2x-class ARAU: 8 auxiliary registers, inc/dec by 1, one index register
class ar address 8
class ix index 1
modify-range -1 1

machine tms320c54x
description TI TMS320C54x-class: 8 auxiliary registers, AR0 usable as index
class ar address 8
class ar0 index 1
modify-range -1 1

machine adsp218x
description ADSP-218x-class DAGs: 2x4 index registers with 2x4 modify registers
class i address 8
class m modify 8
modify-range -1 1

machine dsp56002
description Motorola DSP56k-class: 8 R registers with 8 N offset registers
class r address 8
class n modify 8
modify-range -1 1

machine minimal2
description Cost-sensitive core: 2 address registers, no modify registers
class ar address 2
modify-range -1 1

machine wide4
description AGU with short-immediate modify (|d| <= 2), 4 address registers
class ar address 4
modify-range -2 2
)";

std::vector<std::string> tokenize(std::string_view text) {
  std::vector<std::string> tokens;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() &&
           std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    const std::size_t start = i;
    while (i < text.size() &&
           !std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    if (i > start) {
      tokens.emplace_back(text.substr(start, i - start));
    }
  }
  return tokens;
}

std::optional<std::int64_t> parse_int64(const std::string& token) {
  if (token.empty()) return std::nullopt;
  try {
    std::size_t consumed = 0;
    const long long value = std::stoll(token, &consumed);
    if (consumed != token.size()) return std::nullopt;
    return static_cast<std::int64_t>(value);
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

std::optional<RegClassKind> parse_kind(const std::string& token) {
  if (token == "address") return RegClassKind::kAddress;
  if (token == "modify") return RegClassKind::kModify;
  if (token == "index") return RegClassKind::kIndex;
  return std::nullopt;
}

void normalize_widths(std::vector<std::int64_t>& widths) {
  std::sort(widths.begin(), widths.end());
  widths.erase(std::unique(widths.begin(), widths.end()), widths.end());
}

}  // namespace

const char* to_string(RegClassKind kind) {
  switch (kind) {
    case RegClassKind::kAddress:
      return "address";
    case RegClassKind::kModify:
      return "modify";
    case RegClassKind::kIndex:
      return "index";
  }
  return "?";
}

std::size_t MachineSpec::address_registers() const {
  std::size_t count = 0;
  for (const RegisterClass& cls : classes) {
    if (cls.kind == RegClassKind::kAddress) count += cls.count;
  }
  return count;
}

std::size_t MachineSpec::modify_registers() const {
  std::size_t count = 0;
  for (const RegisterClass& cls : classes) {
    if (cls.kind != RegClassKind::kAddress) count += cls.count;
  }
  return count;
}

std::int64_t MachineSpec::modify_range() const {
  return std::max(-modify_lo, modify_hi);
}

void MachineSpec::set_address_registers(std::size_t count) {
  std::string name = "ar";
  std::size_t insert_at = 0;
  for (std::size_t i = 0; i < classes.size(); ++i) {
    if (classes[i].kind == RegClassKind::kAddress) {
      name = classes[i].name;
      insert_at = i;
      break;
    }
  }
  classes.erase(std::remove_if(classes.begin(), classes.end(),
                               [](const RegisterClass& cls) {
                                 return cls.kind == RegClassKind::kAddress;
                               }),
                classes.end());
  insert_at = std::min(insert_at, classes.size());
  classes.insert(classes.begin() + static_cast<std::ptrdiff_t>(insert_at),
                 RegisterClass{name, RegClassKind::kAddress, count});
}

void MachineSpec::set_modify_registers(std::size_t count) {
  std::string name = "mr";
  for (const RegisterClass& cls : classes) {
    if (cls.kind != RegClassKind::kAddress) {
      name = cls.name;
      break;
    }
  }
  classes.erase(std::remove_if(classes.begin(), classes.end(),
                               [](const RegisterClass& cls) {
                                 return cls.kind != RegClassKind::kAddress;
                               }),
                classes.end());
  if (count > 0) {
    classes.push_back(RegisterClass{name, RegClassKind::kModify, count});
  }
}

void MachineSpec::set_modify_range(std::int64_t m) {
  modify_lo = -m;
  modify_hi = m;
}

core::CostModel MachineSpec::cost_model(core::WrapPolicy wrap) const {
  return core::CostModel{modify_lo, modify_hi, free_widths, wrap};
}

std::string MachineSpec::structural_key() const {
  std::string key = "cls=";
  for (const RegisterClass& cls : classes) {
    switch (cls.kind) {
      case RegClassKind::kAddress:
        key += 'a';
        break;
      case RegClassKind::kModify:
        key += 'm';
        break;
      case RegClassKind::kIndex:
        key += 'i';
        break;
    }
    key += std::to_string(cls.count);
    key += ',';
  }
  key += "|lo=";
  key += std::to_string(modify_lo);
  key += "|hi=";
  key += std::to_string(modify_hi);
  key += "|fw=";
  for (const std::int64_t width : free_widths) {
    key += std::to_string(width);
    key += ',';
  }
  key += "|mode=";
  key += to_string(addressing);
  return key;
}

void MachineSpec::validate() const {
  check_arg(!name.empty(), "machine name must be non-empty");
  check_arg(modify_lo <= 0 && 0 <= modify_hi,
            "modify range [" + std::to_string(modify_lo) + ", " +
                std::to_string(modify_hi) + "] must contain 0");
  for (std::size_t i = 0; i < classes.size(); ++i) {
    check_arg(!classes[i].name.empty(), "register class name must be non-empty");
    check_arg(classes[i].count >= 1,
              "register class '" + classes[i].name +
                  "' must have at least one register");
    for (std::size_t j = i + 1; j < classes.size(); ++j) {
      check_arg(classes[i].name != classes[j].name,
                "duplicate register class '" + classes[i].name + "'");
    }
  }
  check_arg(address_registers() >= 1, "needs at least one address register");
  for (const std::int64_t width : free_widths) {
    check_arg(width != 0, "free widths must be nonzero");
  }
}

std::vector<MachineSpec> parse_machines(const std::string& text,
                                        const std::string& origin) {
  std::vector<MachineSpec> specs;
  MachineSpec current;
  bool open = false;
  std::size_t open_line = 0;

  const auto fail = [&](std::size_t line, const std::string& message) {
    throw InvalidArgument(origin + ":" + std::to_string(line) + ": " +
                          message);
  };

  const auto finalize = [&] {
    if (!open) return;
    if (current.classes.empty()) {
      // No `class` directive: same default as a fresh MachineSpec, so
      // `machine x` alone is the minimal single-pointer AGU.
      current.classes = MachineSpec{}.classes;
    }
    normalize_widths(current.free_widths);
    try {
      current.validate();
    } catch (const InvalidArgument& error) {
      fail(open_line,
           "machine '" + current.name + "': " + std::string(error.what()));
    }
    for (const MachineSpec& existing : specs) {
      if (existing.name == current.name) {
        fail(open_line, "duplicate machine '" + current.name + "'");
      }
    }
    specs.push_back(current);
    open = false;
  };

  const std::vector<std::string> lines = support::split(text, '\n');
  for (std::size_t n = 0; n < lines.size(); ++n) {
    const std::size_t line_no = n + 1;
    std::string line = lines[n];
    if (const std::size_t hash = line.find('#'); hash != std::string::npos) {
      line.erase(hash);
    }
    const std::vector<std::string> tokens = tokenize(line);
    if (tokens.empty()) continue;
    const std::string& directive = tokens[0];

    if (directive == "machine") {
      finalize();
      if (tokens.size() != 2) {
        fail(line_no, "'machine' takes exactly one name");
      }
      current = MachineSpec{};
      current.classes.clear();
      current.name = tokens[1];
      open = true;
      open_line = line_no;
      continue;
    }
    if (!open) {
      fail(line_no, "directive '" + directive + "' before 'machine'");
    }

    if (directive == "description") {
      std::string_view rest = support::trim(line);
      rest.remove_prefix(directive.size());
      current.description = std::string(support::trim(rest));
    } else if (directive == "class") {
      if (tokens.size() != 4) {
        fail(line_no, "'class' takes <name> <address|modify|index> <count>");
      }
      const std::optional<RegClassKind> kind = parse_kind(tokens[2]);
      if (!kind.has_value()) {
        fail(line_no, "unknown register class kind '" + tokens[2] +
                          "' (want address, modify or index)");
      }
      const std::optional<std::int64_t> count = parse_int64(tokens[3]);
      if (!count.has_value() || *count < 1) {
        fail(line_no, "class '" + tokens[1] +
                          "' needs a register count >= 1, got '" + tokens[3] +
                          "'");
      }
      for (const RegisterClass& cls : current.classes) {
        if (cls.name == tokens[1]) {
          fail(line_no, "duplicate register class '" + tokens[1] + "'");
        }
      }
      current.classes.push_back(RegisterClass{
          tokens[1], *kind, static_cast<std::size_t>(*count)});
    } else if (directive == "modify-range") {
      if (tokens.size() == 2) {
        const std::optional<std::int64_t> m = parse_int64(tokens[1]);
        if (!m.has_value() || *m < 0) {
          fail(line_no, "'modify-range <m>' needs an integer m >= 0");
        }
        current.modify_lo = -*m;
        current.modify_hi = *m;
      } else if (tokens.size() == 3) {
        const std::optional<std::int64_t> lo = parse_int64(tokens[1]);
        const std::optional<std::int64_t> hi = parse_int64(tokens[2]);
        if (!lo.has_value() || !hi.has_value()) {
          fail(line_no, "'modify-range' bounds must be integers");
        }
        if (*lo > *hi) {
          fail(line_no, "inverted modify range [" + tokens[1] + ", " +
                            tokens[2] + "]");
        }
        if (*lo > 0 || *hi < 0) {
          fail(line_no, "modify range [" + tokens[1] + ", " + tokens[2] +
                            "] must contain 0");
        }
        current.modify_lo = *lo;
        current.modify_hi = *hi;
      } else {
        fail(line_no, "'modify-range' takes <m> or <lo> <hi>");
      }
    } else if (directive == "inc" || directive == "dec") {
      if (tokens.size() < 2) {
        fail(line_no, "'" + directive + "' needs at least one width");
      }
      for (std::size_t i = 1; i < tokens.size(); ++i) {
        const std::optional<std::int64_t> width = parse_int64(tokens[i]);
        if (!width.has_value() || *width < 1) {
          fail(line_no, "'" + directive + "' widths must be integers >= 1");
        }
        current.free_widths.push_back(directive == "inc" ? *width : -*width);
      }
    } else if (directive == "addressing") {
      if (tokens.size() != 2 ||
          (tokens[1] != "post" && tokens[1] != "pre")) {
        fail(line_no, "'addressing' takes post or pre");
      }
      current.addressing = tokens[1] == "pre" ? Addressing::kPreModify
                                              : Addressing::kPostModify;
    } else {
      fail(line_no, "unknown directive '" + directive + "'");
    }
  }
  finalize();
  check_arg(!specs.empty(), origin + ": no machine definitions found");
  return specs;
}

std::vector<MachineSpec> load_machine_file(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  check_arg(file.good(), "cannot open machine file '" + path + "'");
  std::ostringstream content;
  content << file.rdbuf();
  return parse_machines(content.str(), path);
}

std::string machine_to_text(const MachineSpec& spec) {
  std::ostringstream out;
  out << "machine " << spec.name << '\n';
  if (!spec.description.empty()) {
    out << "description " << spec.description << '\n';
  }
  for (const RegisterClass& cls : spec.classes) {
    out << "class " << cls.name << ' ' << to_string(cls.kind) << ' '
        << cls.count << '\n';
  }
  out << "modify-range " << spec.modify_lo << ' ' << spec.modify_hi << '\n';
  std::vector<std::int64_t> inc;
  std::vector<std::int64_t> dec;
  for (const std::int64_t width : spec.free_widths) {
    (width > 0 ? inc : dec).push_back(width > 0 ? width : -width);
  }
  std::sort(inc.begin(), inc.end());
  std::sort(dec.begin(), dec.end());
  if (!inc.empty()) {
    out << "inc";
    for (const std::int64_t width : inc) out << ' ' << width;
    out << '\n';
  }
  if (!dec.empty()) {
    out << "dec";
    for (const std::int64_t width : dec) out << ' ' << width;
    out << '\n';
  }
  if (spec.addressing == Addressing::kPreModify) {
    out << "addressing pre\n";
  }
  return out.str();
}

support::JsonValue machine_to_json(const MachineSpec& spec) {
  using support::JsonValue;
  JsonValue json = JsonValue::object();
  json.set("name", JsonValue::string(spec.name));
  json.set("description", JsonValue::string(spec.description));
  JsonValue classes = JsonValue::array();
  for (const RegisterClass& cls : spec.classes) {
    JsonValue entry = JsonValue::object();
    entry.set("name", JsonValue::string(cls.name));
    entry.set("kind", JsonValue::string(to_string(cls.kind)));
    entry.set("count",
              JsonValue::number(static_cast<std::int64_t>(cls.count)));
    classes.push_back(std::move(entry));
  }
  json.set("classes", std::move(classes));
  json.set("modify_lo", JsonValue::number(spec.modify_lo));
  json.set("modify_hi", JsonValue::number(spec.modify_hi));
  JsonValue inc = JsonValue::array();
  JsonValue dec = JsonValue::array();
  for (const std::int64_t width : spec.free_widths) {
    if (width > 0) {
      inc.push_back(JsonValue::number(width));
    } else {
      dec.push_back(JsonValue::number(-width));
    }
  }
  json.set("inc", std::move(inc));
  json.set("dec", std::move(dec));
  json.set("addressing", JsonValue::string(to_string(spec.addressing)));
  // Derived (K, L, M) summary for consumers of the legacy flat shape;
  // machine_from_json ignores these when `classes` is present.
  json.set("registers", JsonValue::number(static_cast<std::int64_t>(
                            spec.address_registers())));
  json.set("modify_registers", JsonValue::number(static_cast<std::int64_t>(
                                   spec.modify_registers())));
  json.set("modify_range", JsonValue::number(spec.modify_range()));
  return json;
}

namespace {

std::int64_t int_member(const support::JsonValue& json, const char* key,
                        std::int64_t fallback) {
  const support::JsonValue* value = json.find(key);
  if (value == nullptr || value->is_null()) return fallback;
  check_arg(value->is_int(),
            std::string("machine spec: '") + key + "' must be an integer");
  return value->as_int();
}

std::string string_member(const support::JsonValue& json, const char* key,
                          const std::string& fallback) {
  const support::JsonValue* value = json.find(key);
  if (value == nullptr || value->is_null()) return fallback;
  check_arg(value->is_string(),
            std::string("machine spec: '") + key + "' must be a string");
  return value->as_string();
}

}  // namespace

MachineSpec machine_from_json(const support::JsonValue& json) {
  using support::JsonValue;
  check_arg(json.is_object(), "machine spec: expected a JSON object");
  static const char* kKnownKeys[] = {
      "name",      "description", "classes",          "modify_lo",
      "modify_hi", "modify_range", "inc",             "dec",
      "addressing", "registers",   "modify_registers"};
  for (const JsonValue::Member& member : json.members()) {
    bool known = false;
    for (const char* key : kKnownKeys) {
      if (member.first == key) {
        known = true;
        break;
      }
    }
    check_arg(known,
              "machine spec: unknown field '" + member.first + "'");
  }

  MachineSpec spec;
  spec.classes.clear();
  spec.name = string_member(json, "name", "");
  spec.description = string_member(json, "description", "");

  if (const JsonValue* classes = json.find("classes");
      classes != nullptr && !classes->is_null()) {
    check_arg(classes->is_array(),
              "machine spec: 'classes' must be an array");
    for (const JsonValue& entry : classes->items()) {
      check_arg(entry.is_object(),
                "machine spec: each class must be an object");
      for (const JsonValue::Member& member : entry.members()) {
        check_arg(member.first == "name" || member.first == "kind" ||
                      member.first == "count",
                  "machine spec: unknown class field '" + member.first + "'");
      }
      RegisterClass cls;
      cls.name = string_member(entry, "name", "");
      const std::string kind = string_member(entry, "kind", "address");
      const std::optional<RegClassKind> parsed = parse_kind(kind);
      check_arg(parsed.has_value(),
                "machine spec: unknown register class kind '" + kind + "'");
      cls.kind = *parsed;
      const std::int64_t count = int_member(entry, "count", 1);
      check_arg(count >= 0, "machine spec: class count must be >= 0");
      cls.count = static_cast<std::size_t>(count);
      spec.classes.push_back(std::move(cls));
    }
  } else {
    const std::int64_t registers = int_member(json, "registers", 1);
    check_arg(registers >= 0, "machine spec: 'registers' must be >= 0");
    spec.classes.push_back(RegisterClass{
        "ar", RegClassKind::kAddress, static_cast<std::size_t>(registers)});
    const std::int64_t modify = int_member(json, "modify_registers", 0);
    check_arg(modify >= 0, "machine spec: 'modify_registers' must be >= 0");
    if (modify > 0) {
      spec.classes.push_back(RegisterClass{
          "mr", RegClassKind::kModify, static_cast<std::size_t>(modify)});
    }
  }

  const std::int64_t symmetric = int_member(json, "modify_range", 1);
  spec.modify_lo = int_member(json, "modify_lo", -symmetric);
  spec.modify_hi = int_member(json, "modify_hi", symmetric);

  const auto read_widths = [&](const char* key, std::int64_t sign) {
    const JsonValue* widths = json.find(key);
    if (widths == nullptr || widths->is_null()) return;
    check_arg(widths->is_array(),
              std::string("machine spec: '") + key + "' must be an array");
    for (const JsonValue& width : widths->items()) {
      check_arg(width.is_int() && width.as_int() >= 1,
                std::string("machine spec: '") + key +
                    "' widths must be integers >= 1");
      spec.free_widths.push_back(sign * width.as_int());
    }
  };
  read_widths("inc", 1);
  read_widths("dec", -1);
  normalize_widths(spec.free_widths);

  const std::string addressing = string_member(json, "addressing", "post");
  check_arg(addressing == "post" || addressing == "pre",
            "machine spec: 'addressing' must be 'post' or 'pre'");
  spec.addressing = addressing == "pre" ? Addressing::kPreModify
                                        : Addressing::kPostModify;
  return spec;
}

void MachineRegistry::add(MachineSpec spec) {
  for (MachineSpec& existing : machines_) {
    if (existing.name == spec.name) {
      existing = std::move(spec);
      return;
    }
  }
  machines_.push_back(std::move(spec));
}

std::size_t MachineRegistry::add_text(const std::string& text,
                                      const std::string& origin) {
  const std::vector<MachineSpec> specs = parse_machines(text, origin);
  for (const MachineSpec& spec : specs) {
    add(spec);
  }
  return specs.size();
}

std::size_t MachineRegistry::load_file(const std::string& path) {
  const std::vector<MachineSpec> specs = load_machine_file(path);
  for (const MachineSpec& spec : specs) {
    add(spec);
  }
  return specs.size();
}

const MachineSpec* MachineRegistry::find(const std::string& name) const {
  for (const MachineSpec& machine : machines_) {
    if (machine.name == name) return &machine;
  }
  return nullptr;
}

MachineSpec MachineRegistry::get(const std::string& name) const {
  const MachineSpec* machine = find(name);
  check_arg(machine != nullptr,
            "unknown machine '" + name + "' (known: " +
                support::join(names(), ", ") + ")");
  return *machine;
}

std::vector<std::string> MachineRegistry::names() const {
  std::vector<std::string> names;
  names.reserve(machines_.size());
  for (const MachineSpec& machine : machines_) {
    names.push_back(machine.name);
  }
  return names;
}

const MachineRegistry& MachineRegistry::builtin() {
  static const MachineRegistry registry = [] {
    MachineRegistry catalog;
    catalog.add_text(kBuiltinCatalog, "<builtin>");
    return catalog;
  }();
  return registry;
}

MachineRegistry MachineRegistry::with_builtins() { return builtin(); }

}  // namespace dspaddr::agu
