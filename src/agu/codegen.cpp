#include "agu/codegen.hpp"

#include <cstdlib>

#include "support/check.hpp"

namespace dspaddr::agu {

namespace {

/// Shared generator; `mr_values` maps a distance to the MR index that
/// holds it (empty for the plain variant).
Program generate_impl(
    const ir::AccessSequence& seq, const core::Allocation& allocation,
    const std::vector<std::int64_t>& mr_values) {
  const core::CostModel& model = allocation.model();
  const auto& paths = allocation.paths();

  const auto mr_holding = [&mr_values](std::int64_t distance) {
    for (std::size_t m = 0; m < mr_values.size(); ++m) {
      if (mr_values[m] == distance) return static_cast<std::int32_t>(m);
    }
    return std::int32_t{-1};
  };

  Program program;
  program.register_count = paths.size();
  program.modify_register_count = mr_values.size();

  // Setup: point every register at its path's first access
  // (iteration 0) and load the planned modify registers.
  for (std::size_t r = 0; r < paths.size(); ++r) {
    program.setup.push_back(Instruction{
        .op = Opcode::kLdar,
        .reg = r,
        .value = seq[paths[r].first()].offset,
    });
  }
  for (std::size_t m = 0; m < mr_values.size(); ++m) {
    program.setup.push_back(Instruction{
        .op = Opcode::kLdmr, .reg = m, .value = mr_values[m]});
  }

  // Per-register position of the *next* use, to find each access's
  // successor within its path.
  std::vector<std::size_t> position_in_path(paths.size(), 0);

  for (std::size_t i = 0; i < seq.size(); ++i) {
    const std::size_t r = allocation.register_of(i);
    const core::Path& path = paths[r];
    std::size_t& pos = position_in_path[r];
    check_invariant(pos < path.size() && path[pos] == i,
                    "generate_code: allocation out of sync with sequence");

    const bool is_last_in_path = (pos + 1 == path.size());
    const std::size_t next_access = is_last_in_path ? path.first()
                                                    : path[pos + 1];
    const auto distance = is_last_in_path
                              ? seq.wrap_distance(i, next_access)
                              : seq.intra_distance(i, next_access);

    Instruction use{.op = Opcode::kUse, .reg = r, .value = 0, .access = i};
    if (distance.has_value() &&
        std::llabs(*distance) <= model.modify_range) {
      // Free post-modify straight to the next use.
      use.value = *distance;
      program.body.push_back(use);
    } else if (distance.has_value() && mr_holding(*distance) >= 0) {
      // A planned modify register holds exactly this distance: the
      // post-modify rides through it for free.
      use.mr = mr_holding(*distance);
      program.body.push_back(use);
    } else if (distance.has_value()) {
      // Same stride but beyond the modify range: USE then one ADAR.
      program.body.push_back(use);
      program.body.push_back(Instruction{
          .op = Opcode::kAdar, .reg = r, .value = *distance});
    } else {
      // Different strides: no constant modify exists; recompute.
      program.body.push_back(use);
      program.body.push_back(Instruction{
          .op = Opcode::kReload,
          .reg = r,
          .value = 0,
          .access = next_access,
          .next_iteration = is_last_in_path,
      });
    }
    ++pos;
  }
  return program;
}

}  // namespace

Program generate_code(const ir::AccessSequence& seq,
                      const core::Allocation& allocation) {
  return generate_impl(seq, allocation, {});
}

Program generate_code(const ir::AccessSequence& seq,
                      const core::Allocation& allocation,
                      const core::ModifyRegisterPlan& plan) {
  std::vector<std::int64_t> values;
  values.reserve(plan.values.size());
  for (const core::ModifyRegister& mr : plan.values) {
    values.push_back(mr.value);
  }
  return generate_impl(seq, allocation, values);
}

}  // namespace dspaddr::agu
