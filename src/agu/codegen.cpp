#include "agu/codegen.hpp"

#include "support/check.hpp"

namespace dspaddr::agu {

namespace {

/// Shared generator; `mr_values` maps a distance to the MR index that
/// holds it (empty for the plain variant).
Program generate_impl(
    const ir::AccessSequence& seq, const core::Allocation& allocation,
    const std::vector<std::int64_t>& mr_values, Addressing addressing) {
  const core::CostModel& model = allocation.model();
  const auto& paths = allocation.paths();
  const bool pre = addressing == Addressing::kPreModify;

  const auto mr_holding = [&mr_values](std::int64_t distance) {
    for (std::size_t m = 0; m < mr_values.size(); ++m) {
      if (mr_values[m] == distance) return static_cast<std::int32_t>(m);
    }
    return std::int32_t{-1};
  };

  Program program;
  program.register_count = paths.size();
  program.modify_register_count = mr_values.size();
  program.addressing = addressing;

  // Setup: point every register at its path's first access
  // (iteration 0) and load the planned modify registers. Pre-modify
  // machines apply the wrap modify *before* the first access of every
  // iteration — including iteration 0 — so their setup value
  // compensates by the wrap distance (when one exists; otherwise a
  // RELOAD precedes the first USE and overwrites the register anyway).
  for (std::size_t r = 0; r < paths.size(); ++r) {
    const core::Path& path = paths[r];
    std::int64_t value = seq[path.first()].offset;
    if (pre) {
      const auto wrap =
          seq.wrap_distance(path[path.size() - 1], path.first());
      if (wrap.has_value()) value -= *wrap;
    }
    program.setup.push_back(Instruction{
        .op = Opcode::kLdar,
        .reg = r,
        .value = value,
    });
  }
  for (std::size_t m = 0; m < mr_values.size(); ++m) {
    program.setup.push_back(Instruction{
        .op = Opcode::kLdmr, .reg = m, .value = mr_values[m]});
  }

  // Per-register position of the *next* use, to find each access's
  // successor within its path.
  std::vector<std::size_t> position_in_path(paths.size(), 0);

  for (std::size_t i = 0; i < seq.size(); ++i) {
    const std::size_t r = allocation.register_of(i);
    const core::Path& path = paths[r];
    std::size_t& pos = position_in_path[r];
    check_invariant(pos < path.size() && path[pos] == i,
                    "generate_code: allocation out of sync with sequence");

    // The transition this USE realizes: outgoing (towards the next
    // access) under post-modify, incoming (from the previous access)
    // under pre-modify. Both walks charge every path edge plus the
    // wrap edge exactly once per iteration, so the extra-instruction
    // count matches the analytic cost either way.
    const bool at_edge = pre ? (pos == 0) : (pos + 1 == path.size());
    const std::size_t partner =
        pre ? (at_edge ? path[path.size() - 1] : path[pos - 1])
            : (at_edge ? path.first() : path[pos + 1]);
    const auto distance =
        pre ? (at_edge ? seq.wrap_distance(partner, i)
                       : seq.intra_distance(partner, i))
            : (at_edge ? seq.wrap_distance(i, partner)
                       : seq.intra_distance(i, partner));

    Instruction use{.op = Opcode::kUse, .reg = r, .value = 0, .access = i};
    if (distance.has_value() && model.free_distance(*distance)) {
      // Free modify straight along the transition.
      use.value = *distance;
      program.body.push_back(use);
    } else if (distance.has_value() && mr_holding(*distance) >= 0) {
      // A planned modify register holds exactly this distance: the
      // modify rides through it for free.
      use.mr = mr_holding(*distance);
      program.body.push_back(use);
    } else if (distance.has_value()) {
      // Same stride but outside the free window: one ADAR. It follows
      // the USE under post-modify and precedes it under pre-modify
      // (the register must be correct before the access).
      const Instruction adar{
          .op = Opcode::kAdar, .reg = r, .value = *distance};
      if (pre) program.body.push_back(adar);
      program.body.push_back(use);
      if (!pre) program.body.push_back(adar);
    } else {
      // Different strides: no constant modify exists; recompute. Under
      // pre-modify the RELOAD targets this access in the *current*
      // iteration and precedes its USE.
      const Instruction reload{
          .op = Opcode::kReload,
          .reg = r,
          .value = 0,
          .access = pre ? i : partner,
          .next_iteration = pre ? false : at_edge,
      };
      if (pre) program.body.push_back(reload);
      program.body.push_back(use);
      if (!pre) program.body.push_back(reload);
    }
    ++pos;
  }
  return program;
}

}  // namespace

Program generate_code(const ir::AccessSequence& seq,
                      const core::Allocation& allocation,
                      Addressing addressing) {
  return generate_impl(seq, allocation, {}, addressing);
}

Program generate_code(const ir::AccessSequence& seq,
                      const core::Allocation& allocation,
                      const core::ModifyRegisterPlan& plan,
                      Addressing addressing) {
  std::vector<std::int64_t> values;
  values.reserve(plan.values.size());
  for (const core::ModifyRegister& mr : plan.values) {
    values.push_back(mr.value);
  }
  return generate_impl(seq, allocation, values, addressing);
}

}  // namespace dspaddr::agu
