// Catalog of AGU configurations modeled after real DSP families.
//
// The paper's cost model is parameterized by the number of address
// registers K and the free modify range M; real AGUs also differ in how
// many modify registers they offer, how asymmetric their free modify
// window is, and when the modify applies. The catalog is data: each
// machine is a declarative MachineSpec (see agu/machine_desc.hpp),
// parsed from the same `.machine` format as file-loaded targets, so
// benches can answer: *how does the same kernel fare across AGUs?*
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "agu/machine_desc.hpp"
#include "core/allocator.hpp"
#include "core/modify_registers.hpp"
#include "ir/kernel.hpp"

namespace dspaddr::agu {

/// One AGU configuration. Historically a bare {K, L, M} triple; now the
/// full declarative spec (the triple is derived from it).
using AguSpec = MachineSpec;

/// Representative AGU configurations (MachineRegistry::builtin()).
std::vector<AguSpec> builtin_machines();

/// Lookup by name; throws InvalidArgument when unknown.
AguSpec builtin_machine(const std::string& name);

/// Names of all catalog entries.
std::vector<std::string> builtin_machine_names();

/// Outcome of compiling one kernel for one machine.
struct MachineRunReport {
  AguSpec machine;
  /// Unit-cost address computations per iteration before MR planning.
  int allocation_cost = 0;
  /// ... and after using the machine's modify registers.
  int residual_cost = 0;
  /// Simulator agreement (addresses verified and instruction counts
  /// matching the analytic model).
  bool verified = false;
};

/// Lowers, allocates, plans MRs, generates code and simulates `kernel`
/// on `machine` for the kernel's iteration count.
MachineRunReport run_on_machine(const ir::Kernel& kernel,
                                const AguSpec& machine);

}  // namespace dspaddr::agu
