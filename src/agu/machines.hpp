// Catalog of AGU configurations modeled after real DSP families.
//
// The paper's cost model is parameterized by the number of address
// registers K and the free modify range M; real AGUs also differ in how
// many modify registers they offer. This catalog pins down a handful of
// representative configurations (approximations of the addressing
// resources of well-known parts — register counts from the respective
// family manuals, all normalized to the paper's single-memory model) so
// benches can answer: *how does the same kernel fare across AGUs?*
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/allocator.hpp"
#include "core/modify_registers.hpp"
#include "ir/kernel.hpp"

namespace dspaddr::agu {

/// One AGU configuration.
struct AguSpec {
  std::string name;
  std::string description;
  /// K: address registers available to the allocator.
  std::size_t address_registers = 1;
  /// L: modify registers available to the post-pass planner.
  std::size_t modify_registers = 0;
  /// M: free immediate post-modify range.
  std::int64_t modify_range = 1;
};

/// Representative AGU configurations.
std::vector<AguSpec> builtin_machines();

/// Lookup by name; throws InvalidArgument when unknown.
AguSpec builtin_machine(const std::string& name);

/// Names of all catalog entries.
std::vector<std::string> builtin_machine_names();

/// Outcome of compiling one kernel for one machine.
struct MachineRunReport {
  AguSpec machine;
  /// Unit-cost address computations per iteration before MR planning.
  int allocation_cost = 0;
  /// ... and after using the machine's modify registers.
  int residual_cost = 0;
  /// Simulator agreement (addresses verified and instruction counts
  /// matching the analytic model).
  bool verified = false;
};

/// Lowers, allocates, plans MRs, generates code and simulates `kernel`
/// on `machine` for the kernel's iteration count.
MachineRunReport run_on_machine(const ir::Kernel& kernel,
                                const AguSpec& machine);

}  // namespace dspaddr::agu
