// Parser for the textual AGU assembly emitted by Program::to_string().
//
// Round-tripping programs through text lets users hand-write or patch
// address programs and validate them on the simulator, and lets tests
// treat the listing format as a stable interface:
//
//   ; setup
//     LDAR AR0, #1
//     LDMR MR0, #5
//   ; loop body
//     USE AR0  ; a_1, post-modify +1
//     USE AR0  ; a_2, post-modify +MR0
//     ADAR AR0, #-3
//     RELOAD AR0, &a_3 (next iteration)
//
// Comments after ';' are significant for USE (they carry the access id
// and post-modify) — exactly what to_string() prints. Errors throw
// ir::ParseError with the 1-based line.
#pragma once

#include <string_view>

#include "agu/program.hpp"
#include "ir/parser.hpp"

namespace dspaddr::agu {

/// Parses a textual AGU program; inverse of Program::to_string().
Program parse_program(std::string_view text);

}  // namespace dspaddr::agu
